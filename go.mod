module lams

go 1.22
