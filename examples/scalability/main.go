// Scalability: the paper's §5.3 study — model the smoothing execution time
// on 1..32 Westmere-EX cores for ORI/BFS/RDR orderings and print the
// speedup and gain curves of Figures 12 and 13.
package main

import (
	"context"
	"fmt"
	"log"

	"lams/internal/perfmodel"
	"lams/internal/stats"
	"lams/pkg/lams"
)

func main() {
	const meshName = "crake"
	ctx := context.Background()
	m, err := lams.GenerateMesh(meshName, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n\n", meshName, m.Summary())

	model := perfmodel.ForMeshSize(m.NumVerts())
	cores := []int{1, 2, 4, 8, 16, 24, 32}
	times := map[string][]float64{}

	for _, ordName := range []string{"ORI", "BFS", "RDR"} {
		re, err := lams.Reorder(m, ordName)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range cores {
			_, tb, err := lams.SmoothTraced(ctx, re.Mesh.Clone(), p, 2)
			if err != nil {
				log.Fatal(err)
			}
			est, err := model.Run(tb)
			if err != nil {
				log.Fatal(err)
			}
			times[ordName] = append(times[ordName], est.Seconds)
		}
	}

	base := times["ORI"][0]
	t := &stats.Table{Header: []string{"cores", "ORI speedup", "BFS speedup", "RDR speedup", "RDR gain vs ORI %", "RDR gain vs BFS %"}}
	for i, p := range cores {
		t.AddRow(p,
			perfmodel.Speedup(base, times["ORI"][i]),
			perfmodel.Speedup(base, times["BFS"][i]),
			perfmodel.Speedup(base, times["RDR"][i]),
			100*perfmodel.Gain(times["ORI"][i], times["RDR"][i]),
			100*perfmodel.Gain(times["BFS"][i], times["RDR"][i]))
	}
	fmt.Print(t.String())
	fmt.Println("\npaper shape: RDR dominates at every core count; gain vs ORI 20-30%.")
}
