// PDE pipeline: the finite-element-method workflow the paper's introduction
// motivates. A solver needs a high-quality mesh; this example generates the
// lake domain, smooths it to a quality target with the RDR-reordered mesh,
// verifies element quality statistics a PDE solver would care about
// (minimum angle, aspect ratio), and writes the result in Triangle format
// for downstream tools.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lams/internal/core"
	"lams/internal/mesh"
	"lams/internal/quality"
	"lams/internal/smooth"
	"lams/internal/stats"
)

func main() {
	m, err := core.BuildMesh("lake", 30000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated:", m.Summary())

	report("before smoothing", m)

	// Reorder for locality, then smooth toward a quality goal.
	re, err := core.ReorderByName(m, "RDR")
	if err != nil {
		log.Fatal(err)
	}
	res, err := smooth.Run(re.Mesh, smooth.Options{
		GoalQuality: 0.72,
		MaxIters:    200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoothed %d iterations: global quality %.4f -> %.4f\n",
		res.Iterations, res.InitialQuality, res.FinalQuality)

	report("after smoothing", re.Mesh)

	out := filepath.Join(os.TempDir(), "lake-smoothed")
	if err := re.Mesh.SaveFiles(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s.node / %s.ele\n", out, out)
}

// report prints the per-triangle quality statistics a solver cares about:
// the worst element, the 5th percentile, and the mean, for each metric.
func report(label string, m *mesh.Mesh) {
	fmt.Printf("%s:\n", label)
	for _, met := range []quality.Metric{quality.EdgeRatio{}, quality.MinAngle{}, quality.AspectRatio{}} {
		tq := quality.TriangleQualities(m, met)
		lo, _ := stats.MinMax(tq)
		fmt.Printf("  %-18s min %.4f  p5 %.4f  mean %.4f\n",
			met.Name(), lo, stats.Quantile(tq, 0.05), stats.Mean(tq))
	}
}
