// PDE pipeline: the finite-element-method workflow the paper's introduction
// motivates. A solver needs a high-quality mesh; this example runs the
// public pipeline API end to end — generate the lake domain, reorder with
// RDR, smooth to a quality target — then verifies element quality
// statistics a PDE solver would care about (minimum angle, aspect ratio)
// and writes the result in Triangle format for downstream tools.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lams/internal/stats"
	"lams/pkg/lams"
)

func main() {
	ctx := context.Background()
	m, err := lams.GenerateMesh("lake", 30000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated:", m.Summary())

	report("before smoothing", m)

	// Reorder for locality, then smooth toward a quality goal — one
	// pipeline call.
	res, err := lams.Run(ctx,
		lams.FromMesh(m),
		lams.WithOrdering("RDR"),
		lams.WithSmoothing(
			lams.WithGoalQuality(0.72),
			lams.WithMaxIterations(200)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoothed %d iterations: global quality %.4f -> %.4f\n",
		res.Smooth.Iterations, res.Smooth.InitialQuality, res.Smooth.FinalQuality)

	report("after smoothing", res.Mesh)

	out := filepath.Join(os.TempDir(), "lake-smoothed")
	if err := res.Mesh.SaveFiles(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s.node / %s.ele\n", out, out)
}

// report prints the per-triangle quality statistics a solver cares about:
// the worst element, the 5th percentile, and the mean, for each metric.
func report(label string, m *lams.Mesh) {
	fmt.Printf("%s:\n", label)
	for _, met := range []lams.Metric{lams.EdgeRatio{}, lams.MinAngle{}, lams.AspectRatio{}} {
		tq := lams.TriangleQualities(m, met)
		lo, _ := stats.MinMax(tq)
		fmt.Printf("  %-18s min %.4f  p5 %.4f  mean %.4f\n",
			met.Name(), lo, stats.Quantile(tq, 0.05), stats.Mean(tq))
	}
}
