// Quickstart: generate a mesh, reorder it with RDR, smooth it, and compare
// against the original ordering — the paper's headline workflow in a dozen
// lines of public-API calls.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lams/pkg/lams"
)

func main() {
	ctx := context.Background()

	// Build the carabiner test mesh (M1 in the paper) at laptop scale.
	m, err := lams.GenerateMesh("carabiner", 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh:", m.Summary())

	for _, ordering := range []string{"ORI", "BFS", "RDR"} {
		re, err := lams.Reorder(m, ordering)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := lams.Smooth(ctx, re.Mesh,
			lams.WithMaxIterations(20),
			lams.WithTolerance(-1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s order %8v  smooth %8v  quality %.4f -> %.4f (%d iterations)\n",
			ordering, re.OrderTime.Round(time.Millisecond),
			time.Since(start).Round(time.Millisecond),
			res.InitialQuality, res.FinalQuality, res.Iterations)
	}
}
