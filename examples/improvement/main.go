// Mesh improvement: the companion operations the paper's conclusion names —
// edge swapping [5] and untangling [6] — combined with reordered smoothing
// into a full quality-improvement pipeline: untangle, smooth (RDR-ordered),
// swap edges, smooth again.
package main

import (
	"fmt"
	"log"

	"lams/internal/core"
	"lams/internal/improve"
	"lams/internal/quality"
	"lams/internal/smooth"
)

func main() {
	m, err := core.BuildMesh("stress", 15000)
	if err != nil {
		log.Fatal(err)
	}
	met := quality.EdgeRatio{}
	fmt.Printf("generated: %s, quality %.4f\n", m.Summary(), quality.Global(m, met))

	// Stage 0: the generator cannot produce tangles, but a production
	// pipeline always checks.
	if res := improve.Untangle(m, 20); res.InvertedBefore > 0 {
		fmt.Printf("untangled %d -> %d inverted elements in %d sweeps\n",
			res.InvertedBefore, res.InvertedAfter, res.Iterations)
	} else {
		fmt.Println("no inverted elements")
	}

	// Stage 1: RDR-ordered Laplacian smoothing.
	re, err := core.ReorderByName(m, "RDR")
	if err != nil {
		log.Fatal(err)
	}
	s1, err := smooth.Run(re.Mesh, smooth.Options{MaxIters: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoothing pass 1: %.4f -> %.4f (%d iterations)\n",
		s1.InitialQuality, s1.FinalQuality, s1.Iterations)

	// Stage 2: edge swapping unlocks improvements smoothing alone cannot
	// reach (connectivity changes).
	swapped, sw, err := improve.SwapEdges(re.Mesh, met, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge swapping: %d flips in %d passes, quality %.4f -> %.4f\n",
		sw.Flips, sw.Passes, sw.InitialQuality, sw.FinalQuality)

	// Stage 3: smooth the swapped mesh (re-reordered: connectivity changed).
	re2, err := core.ReorderByName(swapped, "RDR")
	if err != nil {
		log.Fatal(err)
	}
	s2, err := smooth.Run(re2.Mesh, smooth.Options{MaxIters: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoothing pass 2: %.4f -> %.4f (%d iterations)\n",
		s2.InitialQuality, s2.FinalQuality, s2.Iterations)
	fmt.Printf("pipeline total: %.4f -> %.4f\n", quality.Global(m, met), s2.FinalQuality)
}
