// Mesh improvement: the companion operations the paper's conclusion names —
// edge swapping [5] and untangling [6] — combined with reordered smoothing
// into a full quality-improvement pipeline: untangle, smooth (RDR-ordered),
// swap edges, smooth again.
package main

import (
	"context"
	"fmt"
	"log"

	"lams/internal/improve"
	"lams/pkg/lams"
)

func main() {
	ctx := context.Background()
	m, err := lams.GenerateMesh("stress", 15000)
	if err != nil {
		log.Fatal(err)
	}
	met := lams.EdgeRatio{}
	fmt.Printf("generated: %s, quality %.4f\n", m.Summary(), lams.GlobalQuality(m, met))

	// Stage 0: the generator cannot produce tangles, but a production
	// pipeline always checks.
	if res := improve.Untangle(m, 20); res.InvertedBefore > 0 {
		fmt.Printf("untangled %d -> %d inverted elements in %d sweeps\n",
			res.InvertedBefore, res.InvertedAfter, res.Iterations)
	} else {
		fmt.Println("no inverted elements")
	}

	// Stage 1: RDR-ordered Laplacian smoothing.
	re, err := lams.Reorder(m, "RDR")
	if err != nil {
		log.Fatal(err)
	}
	s1, err := lams.Smooth(ctx, re.Mesh, lams.WithMaxIterations(20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoothing pass 1: %.4f -> %.4f (%d iterations)\n",
		s1.InitialQuality, s1.FinalQuality, s1.Iterations)

	// Stage 2: edge swapping unlocks improvements smoothing alone cannot
	// reach (connectivity changes).
	swapped, sw, err := improve.SwapEdges(re.Mesh, met, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge swapping: %d flips in %d passes, quality %.4f -> %.4f\n",
		sw.Flips, sw.Passes, sw.InitialQuality, sw.FinalQuality)

	// Stage 3: smooth the swapped mesh (re-reordered: connectivity changed).
	re2, err := lams.Reorder(swapped, "RDR")
	if err != nil {
		log.Fatal(err)
	}
	s2, err := lams.Smooth(ctx, re2.Mesh, lams.WithMaxIterations(20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoothing pass 2: %.4f -> %.4f (%d iterations)\n",
		s2.InitialQuality, s2.FinalQuality, s2.Iterations)
	fmt.Printf("pipeline total: %.4f -> %.4f\n", lams.GlobalQuality(m, met), s2.FinalQuality)
}
