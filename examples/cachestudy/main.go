// Cache study: the anatomy of the paper's §5.2 — trace the smoother under
// several orderings, measure reuse-distance quantiles at cache-line
// granularity, replay the traces through the simulated Westmere-EX
// hierarchy, and convert misses into Eq. (2) penalty cycles. All through
// the public AnalyzeLocality API.
package main

import (
	"context"
	"fmt"
	"log"

	"lams/internal/stats"
	"lams/pkg/lams"
)

func main() {
	const meshName = "ocean"
	ctx := context.Background()
	m, err := lams.GenerateMesh(meshName, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n\n", meshName, m.Summary())

	cfg := lams.ScaledCache(m.NumVerts())
	fmt.Printf("cache model (scaled to mesh): L1 %dB, L2 %dB, L3 %dB, %d vertex records per %dB line\n\n",
		cfg.Levels[0].SizeBytes, cfg.Levels[1].SizeBytes, cfg.Levels[2].SizeBytes,
		cfg.VertsPerLine(), cfg.LineBytes)

	t := &stats.Table{Header: []string{"ordering", "mean RD", "q50", "q90", "max",
		"L1 miss%", "L2 miss%", "L3 miss%", "penalty Mcycles"}}
	for _, ordName := range []string{"RANDOM", "ORI", "DFS", "BFS", "RCM", "HILBERT", "RDR"} {
		re, err := lams.Reorder(m, ordName)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := lams.AnalyzeLocality(ctx, re.Mesh,
			lams.WithAnalysisIterations(2),
			lams.WithAnalysisCache(cfg))
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(ordName, rep.MeanReuseDistance, rep.ReuseQ50, rep.ReuseQ90, rep.MaxReuseDistance,
			100*rep.MissRates[0], 100*rep.MissRates[1], 100*rep.MissRates[2],
			rep.PenaltyCycles/1e6)
	}
	fmt.Print(t.String())
	fmt.Println("\nexpected shape (paper §5.2): RDR < BFS < ORI < RANDOM in penalty;")
	fmt.Println("RDR collapses the reuse-distance quantiles to single digits.")
}
