// Cache study: the anatomy of the paper's §5.2 — trace the smoother under
// several orderings, measure reuse-distance quantiles at cache-line
// granularity, replay the traces through the simulated Westmere-EX
// hierarchy, and convert misses into Eq. (2) penalty cycles.
package main

import (
	"fmt"
	"log"

	"lams/internal/cache"
	"lams/internal/core"
	"lams/internal/reuse"
	"lams/internal/stats"
)

func main() {
	const meshName = "ocean"
	m, err := core.BuildMesh(meshName, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n\n", meshName, m.Summary())

	cfg := cache.Scaled(m.NumVerts())
	fmt.Printf("cache model (scaled to mesh): L1 %dB, L2 %dB, L3 %dB, %d vertex records per %dB line\n\n",
		cfg.Levels[0].SizeBytes, cfg.Levels[1].SizeBytes, cfg.Levels[2].SizeBytes,
		cfg.VertsPerLine(), cfg.LineBytes)

	t := &stats.Table{Header: []string{"ordering", "mean RD", "q50", "q90", "max",
		"L1 miss%", "L2 miss%", "L3 miss%", "penalty Mcycles"}}
	for _, ordName := range []string{"RANDOM", "ORI", "DFS", "BFS", "RCM", "HILBERT", "RDR"} {
		re, err := core.ReorderByName(m, ordName)
		if err != nil {
			log.Fatal(err)
		}
		_, tb, err := core.SmoothTraced(re.Mesh, 1, 2)
		if err != nil {
			log.Fatal(err)
		}

		dists := reuse.StackDistances(reuse.Blocks(tb.Core(0), cfg.VertsPerLine()))
		sum := reuse.Summarize(dists)
		qs, err := reuse.Quantiles(dists, []float64{0.5, 0.9, 1})
		if err != nil {
			log.Fatal(err)
		}

		sim, err := cache.NewSim(cfg, 1)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.RunTrace(tb); err != nil {
			log.Fatal(err)
		}
		st := sim.Stats()
		t.AddRow(ordName, sum.Mean, qs[0], qs[1], qs[2],
			100*st[0].MissRate(), 100*st[1].MissRate(), 100*st[2].MissRate(),
			sim.CorePenaltyCycles(0)/1e6)
	}
	fmt.Print(t.String())
	fmt.Println("\nexpected shape (paper §5.2): RDR < BFS < ORI < RANDOM in penalty;")
	fmt.Println("RDR collapses the reuse-distance quantiles to single digits.")
}
