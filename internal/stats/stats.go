// Package stats provides the small statistical and text-rendering helpers
// the experiment harness uses: means, geometric means, quantiles, and
// fixed-width ASCII tables and series for terminal reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// Quantile returns the smallest value v in xs such that at least a
// proportion q of xs is <= v. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Table renders rows as a fixed-width text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = FormatFloat(x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be useful.
func FormatFloat(x float64) string {
	switch {
	case x == math.Trunc(x) && math.Abs(x) < 1e15:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.1f", x)
	case math.Abs(x) >= 0.01:
		return fmt.Sprintf("%.4g", x)
	default:
		return fmt.Sprintf("%.3e", x)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Sparkline renders xs as a unicode mini-chart, handy for reuse-distance
// profiles in terminal reports.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := MinMax(xs)
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}
