package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Errorf("minmax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("empty minmax")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := Quantile(xs, 0.001); got != 1 {
		t.Errorf("min-ish = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestTable(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("x", 1.5)
	tab.AddRow("longer-name", 123456.0)
	s := tab.String()
	if !strings.Contains(s, "name") || !strings.Contains(s, "longer-name") {
		t.Errorf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
	// Columns align: all lines have the same prefix width for column 1.
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("separator line: %q", lines[1])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{1234.5, "1234.5"},
		{0.25, "0.25"},
		{1e-9, "1.000e-09"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline runes = %d", len([]rune(s)))
	}
	flat := Sparkline([]float64{5, 5, 5})
	runes := []rune(flat)
	if runes[0] != runes[1] || runes[1] != runes[2] {
		t.Error("flat series should render uniformly")
	}
}
