// Package partition implements domain decomposition for the smoothing
// engines: it splits a mesh into k vertex partitions, computes the halo
// (ghost) vertices each partition needs from its neighbors, and derives
// deterministic send/receive exchange lists for the per-sweep halo
// exchange.
//
// The decomposition is designed around the Jacobi bit-identity contract
// the schedule and reduction layers already enforce: every update within a
// sweep reads the previous sweep's coordinates, so *where* a vertex is
// computed cannot change *what* is computed — provided each partition sees
// its owned vertices' complete neighborhoods. The layout therefore gives
// each partition the closure of elements incident to its owned vertices;
// the vertices of those elements that belong to other partitions are the
// ghosts, refreshed between sweeps by an Exchanger.
//
// Partitioning strategies live behind a self-registering registry
// mirroring the ordering and schedule registries: each strategy registers
// itself from its defining file's init function, so adding one is a
// one-file change. The built-ins are greedy BFS growth ("bfs", the
// default) and recursive coordinate bisection ("bisect").
package partition

import (
	"fmt"
	"sort"
	"sync"

	"lams/internal/mesh"
)

// Input is the mesh view the partitioners and the layout builder consume:
// enough of the Mesh/TetMesh shape (elements, adjacency, boundary flags,
// coordinates) to decompose either dimension through one code path. The
// accessor closures return shared sub-slices; callers must not modify
// them.
type Input struct {
	// NumVerts and NumElems are the global vertex and element counts.
	NumVerts int
	NumElems int
	// ElemSize is the number of vertices per element: 3 for triangle
	// meshes, 4 for tetrahedral meshes.
	ElemSize int
	// Elem returns the vertex indices of element e.
	Elem func(e int32) []int32
	// Neighbors returns the sorted adjacency list of vertex v.
	Neighbors func(v int32) []int32
	// OnBoundary reports whether vertex v lies on the mesh boundary.
	// Boundary vertices never move, so they are excluded from the
	// exchange lists (their ghost copies stay valid for a whole run).
	OnBoundary func(v int32) bool
	// Coord returns the position of vertex v, zero-padded to three axes.
	Coord func(v int32) [3]float64
}

// FromMesh adapts a triangle mesh to the partitioning view.
func FromMesh(m *mesh.Mesh) Input {
	return Input{
		NumVerts:   m.NumVerts(),
		NumElems:   m.NumTris(),
		ElemSize:   3,
		Elem:       func(e int32) []int32 { return m.Tris[e][:] },
		Neighbors:  m.Neighbors,
		OnBoundary: m.OnBoundary,
		Coord: func(v int32) [3]float64 {
			p := m.Coords[v]
			return [3]float64{p.X, p.Y, 0}
		},
	}
}

// FromTetMesh adapts a tetrahedral mesh to the partitioning view.
func FromTetMesh(m *mesh.TetMesh) Input {
	return Input{
		NumVerts:   m.NumVerts(),
		NumElems:   m.NumTets(),
		ElemSize:   4,
		Elem:       func(e int32) []int32 { return m.Tets[e][:] },
		Neighbors:  m.Neighbors,
		OnBoundary: m.OnBoundary,
		Coord: func(v int32) [3]float64 {
			p := m.Coords[v]
			return [3]float64{p.X, p.Y, p.Z}
		},
	}
}

// Partitioner assigns every vertex to one of k partitions. Implementations
// must be deterministic: the same Input and k always produce the same
// assignment (the equivalence harness and the lamsd engine pool both rely
// on this).
type Partitioner interface {
	// Name returns the registered strategy name.
	Name() string
	// Assign returns owner[v] in [0, k) for every vertex. Every partition
	// receives at least one vertex; callers must ensure 1 <= k <= NumVerts.
	Assign(in Input, k int) ([]int32, error)
}

// Built-in partitioner names.
const (
	// BFS is the default: greedy breadth-first growth from the
	// lowest-index unassigned seed to balanced size targets, using only
	// the mesh topology.
	BFS = "bfs"
	// Bisect is recursive coordinate bisection: split along the axis of
	// largest extent at the size-proportional median, recurse.
	Bisect = "bisect"
)

// The strategy registry; mirrors the schedule registry in internal/parallel.

var partitioners = struct {
	sync.RWMutex
	factories map[string]func() Partitioner
}{factories: make(map[string]func() Partitioner)}

// partitionerOrder fixes the presentation order of the built-ins in Names:
// bfs (the default) first, then bisect. Later registrations sort
// alphabetically after them.
var partitionerOrder = map[string]int{BFS: 0, Bisect: 1}

// Register makes the strategy produced by factory available through ByName
// under the given name. It panics on an empty name, a nil factory, or a
// duplicate registration — programmer errors caught at init time.
func Register(name string, factory func() Partitioner) {
	if name == "" {
		panic("partition: Register with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("partition: Register(%q) with nil factory", name))
	}
	partitioners.Lock()
	defer partitioners.Unlock()
	if _, dup := partitioners.factories[name]; dup {
		panic(fmt.Sprintf("partition: strategy %q registered twice", name))
	}
	partitioners.factories[name] = factory
}

// ByName returns a fresh instance of the named strategy ("" selects the
// default, BFS).
func ByName(name string) (Partitioner, error) {
	if name == "" {
		name = BFS
	}
	partitioners.RLock()
	factory, ok := partitioners.factories[name]
	partitioners.RUnlock()
	if !ok {
		return nil, fmt.Errorf("partition: unknown partitioner %q (known: %v)", name, Names())
	}
	return factory(), nil
}

// Names lists the registered strategy names: the built-ins in presentation
// order, then any further registrations alphabetically.
func Names() []string {
	partitioners.RLock()
	out := make([]string, 0, len(partitioners.factories))
	for name := range partitioners.factories {
		out = append(out, name)
	}
	partitioners.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		ri, iKnown := partitionerOrder[out[i]]
		rj, jKnown := partitionerOrder[out[j]]
		switch {
		case iKnown && jKnown:
			return ri < rj
		case iKnown:
			return true
		case jKnown:
			return false
		default:
			return out[i] < out[j]
		}
	})
	return out
}

// targets returns the per-partition owned-vertex size targets: n/k each,
// with the remainder spread one extra over the first n%k partitions.
func targets(n, k int) []int {
	t := make([]int, k)
	base, rem := n/k, n%k
	for i := range t {
		t[i] = base
		if i < rem {
			t[i]++
		}
	}
	return t
}
