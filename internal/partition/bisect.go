package partition

import (
	"fmt"
	"sort"
)

func init() {
	Register(Bisect, func() Partitioner { return bisectPartitioner{} })
}

// bisectPartitioner is recursive coordinate bisection: split the vertex
// set along the axis of largest coordinate extent at the size-proportional
// cut, recurse on both halves. Sorting is by (coordinate, index) — a total
// order — so the assignment is deterministic even with duplicate
// coordinates. Non-power-of-two counts split the partition budget
// unevenly (k/2 vs k-k/2) with the vertex cut placed proportionally.
type bisectPartitioner struct{}

func (bisectPartitioner) Name() string { return Bisect }

func (bisectPartitioner) Assign(in Input, k int) ([]int32, error) {
	n := in.NumVerts
	if k < 1 || k > n {
		return nil, fmt.Errorf("partition: bisect: k=%d out of range [1,%d]", k, n)
	}
	owner := make([]int32, n)
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	bisectRec(in, ids, 0, k, owner)
	return owner, nil
}

func bisectRec(in Input, ids []int32, base, parts int, owner []int32) {
	if parts == 1 {
		for _, v := range ids {
			owner[v] = int32(base)
		}
		return
	}
	// Axis of largest extent; ties resolve to the lower axis index.
	lo := in.Coord(ids[0])
	hi := lo
	for _, v := range ids[1:] {
		c := in.Coord(v)
		for a := 0; a < 3; a++ {
			lo[a] = min(lo[a], c[a])
			hi[a] = max(hi[a], c[a])
		}
	}
	axis := 0
	for a := 1; a < 3; a++ {
		if hi[a]-lo[a] > hi[axis]-lo[axis] {
			axis = a
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := in.Coord(ids[i])[axis], in.Coord(ids[j])[axis]
		if ci != cj {
			return ci < cj
		}
		return ids[i] < ids[j]
	})
	// Cut proportionally to the partition budgets; len(ids) >= parts
	// guarantees both sides keep at least one vertex per partition.
	kl := parts / 2
	nl := len(ids) * kl / parts
	bisectRec(in, ids[:nl], base, kl, owner)
	bisectRec(in, ids[nl:], base+kl, parts-kl, owner)
}
