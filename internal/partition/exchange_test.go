package partition

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestChanExchangerRoutesPayloads runs several rounds of a full halo
// exchange on a real layout with one goroutine per partition (the driver's
// shape) and checks every received payload is exactly what the owning
// partition sent for that link and round.
func TestChanExchangerRoutesPayloads(t *testing.T) {
	in := FromMesh(gen2D(t, 600))
	l, err := New(in, 4, BFS)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewChanExchanger(l, 2)
	value := func(v int32, round, axis int) float64 {
		return float64(v)*10 + float64(round) + float64(axis)/10
	}
	const rounds = 3
	ctx := context.Background()
	errs := make([]error, l.K)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for p := range l.Parts {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				part := &l.Parts[p]
				out := make([][]float64, len(part.Sends))
				for i, lk := range part.Sends {
					buf := make([]float64, 2*len(lk.Verts))
					for j, v := range lk.Verts {
						buf[2*j], buf[2*j+1] = value(v, round, 0), value(v, round, 1)
					}
					out[i] = buf
				}
				incoming, err := ex.Exchange(ctx, p, out)
				if err != nil {
					errs[p] = err
					return
				}
				for i, lk := range part.Recvs {
					for j, v := range lk.Verts {
						if incoming[i][2*j] != value(v, round, 0) || incoming[i][2*j+1] != value(v, round, 1) {
							t.Errorf("round %d: part %d received wrong payload for vertex %d from %d", round, p, v, lk.Peer)
							return
						}
					}
				}
			}(p)
		}
		wg.Wait()
		for p, err := range errs {
			if err != nil {
				t.Fatalf("round %d: part %d: %v", round, p, err)
			}
		}
	}
}

// TestChanExchangerCancellation cancels a round in which one partition
// never shows up: the waiting partitions must return ctx.Err() instead of
// deadlocking, and after Reset the exchanger must serve a clean round.
func TestChanExchangerCancellation(t *testing.T) {
	in := FromMesh(gen2D(t, 400))
	l, err := New(in, 3, BFS)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewChanExchanger(l, 2)
	outFor := func(p int) [][]float64 {
		part := &l.Parts[p]
		out := make([][]float64, len(part.Sends))
		for i, lk := range part.Sends {
			out[i] = make([]float64, 2*len(lk.Verts))
		}
		return out
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, l.K)
	// Partitions 1.. run the round; partition 0 never calls Exchange, so
	// the others block on its payloads until the cancellation lands.
	for p := 1; p < l.K; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_, errs[p] = ex.Exchange(ctx, p, outFor(p))
		}(p)
	}
	time.AfterFunc(10*time.Millisecond, cancel)
	wg.Wait()
	for p := 1; p < l.K; p++ {
		if errs[p] != context.Canceled {
			t.Fatalf("part %d: err = %v, want context.Canceled", p, errs[p])
		}
	}

	// The abandoned round left payloads in some slots; Reset must clear
	// them so a full round succeeds afterwards.
	ex.Reset()
	ctx = context.Background()
	for p := range l.Parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_, errs[p] = ex.Exchange(ctx, p, outFor(p))
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("post-reset round: part %d: %v", p, err)
		}
	}
}
