package partition

import "fmt"

func init() {
	Register(BFS, func() Partitioner { return bfsPartitioner{} })
}

// bfsPartitioner grows each partition by breadth-first search from the
// lowest-index unassigned vertex until the partition reaches its size
// target, then seeds the next one. Frontier vertices are visited in FIFO
// order and neighbors pushed in adjacency (ascending-index) order, so the
// assignment is fully determined by the topology. Partitions come out
// connected whenever the remaining unassigned region is; on a disconnected
// remainder the partition re-seeds at the lowest unassigned index and
// keeps growing.
type bfsPartitioner struct{}

func (bfsPartitioner) Name() string { return BFS }

func (bfsPartitioner) Assign(in Input, k int) ([]int32, error) {
	n := in.NumVerts
	if k < 1 || k > n {
		return nil, fmt.Errorf("partition: bfs: k=%d out of range [1,%d]", k, n)
	}
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = -1
	}
	want := targets(n, k)
	queue := make([]int32, 0, n)
	seed := int32(0) // lowest index that might still be unassigned
	for p := 0; p < k; p++ {
		size := 0
		queue = queue[:0]
		for size < want[p] {
			if len(queue) == 0 {
				// Fresh seed: the lowest-index unassigned vertex.
				for owner[seed] != -1 {
					seed++
				}
				queue = append(queue, seed)
			}
			v := queue[0]
			queue = queue[1:]
			if owner[v] != -1 {
				continue
			}
			owner[v] = int32(p)
			size++
			for _, w := range in.Neighbors(v) {
				if owner[w] == -1 {
					queue = append(queue, w)
				}
			}
		}
	}
	return owner, nil
}
