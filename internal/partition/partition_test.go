package partition

import (
	"strings"
	"testing"

	"lams/internal/mesh"
)

func gen2D(t testing.TB, n int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Generate("carabiner", n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func gen3D(t testing.TB, cells int) *mesh.TetMesh {
	t.Helper()
	m, err := mesh.GenerateTetCube(cells, cells, cells, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 2 || names[0] != BFS || names[1] != Bisect {
		t.Fatalf("Names() = %v, want [bfs bisect ...]", names)
	}
	p, err := ByName("")
	if err != nil || p.Name() != BFS {
		t.Fatalf("ByName(\"\") = %v, %v; want the bfs default", p, err)
	}
	if _, err := ByName("metis"); err == nil {
		t.Fatal("unknown partitioner accepted")
	} else {
		for _, want := range []string{"metis", "bfs", "bisect"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	}
}

// TestAssignDeterministicAndBalanced checks, for every registered strategy
// and both dimensions, that assignments are reproducible, in range, and
// that every partition receives at least one vertex with sizes near n/k
// (bfs hits its targets exactly; bisect's proportional cuts stay within
// the rounding of the recursion).
func TestAssignDeterministicAndBalanced(t *testing.T) {
	inputs := map[string]Input{
		"2d": FromMesh(gen2D(t, 900)),
		"3d": FromTetMesh(gen3D(t, 6)),
	}
	for dim, in := range inputs {
		for _, name := range Names() {
			p, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 3, 8} {
				owner, err := p.Assign(in, k)
				if err != nil {
					t.Fatalf("%s/%s/k=%d: %v", dim, name, k, err)
				}
				again, err := p.Assign(in, k)
				if err != nil {
					t.Fatal(err)
				}
				sizes := make([]int, k)
				for v, o := range owner {
					if o != again[v] {
						t.Fatalf("%s/%s/k=%d: assignment not deterministic at vertex %d", dim, name, k, v)
					}
					if o < 0 || int(o) >= k {
						t.Fatalf("%s/%s/k=%d: vertex %d assigned to %d", dim, name, k, v, o)
					}
					sizes[o]++
				}
				want := in.NumVerts / k
				for part, size := range sizes {
					if size == 0 {
						t.Fatalf("%s/%s/k=%d: partition %d is empty", dim, name, k, part)
					}
					if name == BFS && size != want && size != want+1 {
						t.Errorf("%s/bfs/k=%d: partition %d has %d vertices, want %d or %d", dim, k, part, size, want, want+1)
					}
					if size < want/2 || size > 2*want+1 {
						t.Errorf("%s/%s/k=%d: partition %d has %d vertices, far from the %d target", dim, name, k, part, size, want)
					}
				}
			}
		}
	}
}

// TestLayoutInvariants builds and validates full layouts for every
// strategy × partition count × dimension — the cover/disjointness/
// halo-closure/exchange-symmetry contract Validate enforces.
func TestLayoutInvariants(t *testing.T) {
	inputs := map[string]Input{
		"2d": FromMesh(gen2D(t, 900)),
		"3d": FromTetMesh(gen3D(t, 6)),
	}
	for dim, in := range inputs {
		for _, name := range Names() {
			for _, k := range []int{1, 2, 3, 8} {
				l, err := New(in, k, name)
				if err != nil {
					t.Fatalf("%s/%s/k=%d: %v", dim, name, k, err)
				}
				if err := l.Validate(in); err != nil {
					t.Fatalf("%s/%s/k=%d: %v", dim, name, k, err)
				}
				st := l.Stats()
				if st.K != k || len(st.Parts) != k {
					t.Fatalf("%s/%s/k=%d: stats %+v", dim, name, k, st)
				}
				if k == 1 && (st.GhostFraction != 0 || st.Parts[0].Peers != 0) {
					t.Errorf("%s/%s/k=1: single partition has ghosts/peers: %+v", dim, name, st)
				}
				if k > 1 && st.GhostFraction == 0 {
					t.Errorf("%s/%s/k=%d: no ghosts in a multi-partition layout", dim, name, k)
				}
			}
		}
	}
}

// TestValidateCatchesCorruption corrupts a valid layout in several ways
// and checks Validate reports each.
func TestValidateCatchesCorruption(t *testing.T) {
	in := FromMesh(gen2D(t, 400))
	fresh := func() *Layout {
		l, err := New(in, 3, BFS)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	corrupt := map[string]func(l *Layout){
		"owner flip":    func(l *Layout) { l.Owner[l.Parts[1].Owned[0]] = 0 },
		"dropped ghost": func(l *Layout) { l.Parts[1].Ghosts = l.Parts[1].Ghosts[1:] },
		"dropped elem":  func(l *Layout) { l.Parts[0].Elems = l.Parts[0].Elems[:len(l.Parts[0].Elems)-1] },
		"asymmetric link": func(l *Layout) {
			if len(l.Parts[0].Sends) == 0 || len(l.Parts[0].Sends[0].Verts) == 0 {
				t.Fatal("expected part 0 to send something")
			}
			l.Parts[0].Sends[0].Verts = l.Parts[0].Sends[0].Verts[:len(l.Parts[0].Sends[0].Verts)-1]
		},
	}
	for name, mutate := range corrupt {
		l := fresh()
		if err := l.Validate(in); err != nil {
			t.Fatalf("fresh layout invalid: %v", err)
		}
		mutate(l)
		if err := l.Validate(in); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// TestLocalMeshPreservesNeighborOrder is the bit-identity foundation: for
// every owned movable vertex of every partition, the local mesh's
// adjacency mapped back through l2g must equal the global adjacency —
// same neighbors, same order — and the local boundary classification must
// agree for owned vertices (the element closure keeps their incidence
// complete).
func TestLocalMeshPreservesNeighborOrder(t *testing.T) {
	m := gen2D(t, 900)
	in := FromMesh(m)
	for _, name := range Names() {
		l, err := New(in, 5, name)
		if err != nil {
			t.Fatal(err)
		}
		for p := range l.Parts {
			local, l2g, err := BuildLocal(m, &l.Parts[p])
			if err != nil {
				t.Fatal(err)
			}
			if err := local.Validate(); err != nil {
				t.Fatalf("%s/part %d: local mesh invalid: %v", name, p, err)
			}
			g2l := make(map[int32]int32, len(l2g))
			for lo, g := range l2g {
				g2l[g] = int32(lo)
			}
			for _, g := range l.Parts[p].Owned {
				lo := g2l[g]
				if local.IsBoundary[lo] != m.IsBoundary[g] {
					t.Fatalf("%s/part %d: owned vertex %d boundary status differs locally", name, p, g)
				}
				want := m.Neighbors(g)
				got := local.Neighbors(lo)
				if len(got) != len(want) {
					t.Fatalf("%s/part %d: vertex %d has %d local neighbors, want %d", name, p, g, len(got), len(want))
				}
				for i := range got {
					if l2g[got[i]] != want[i] {
						t.Fatalf("%s/part %d: vertex %d neighbor %d is %d locally, want %d", name, p, g, i, l2g[got[i]], want[i])
					}
				}
			}
		}
	}
}

// TestLocalTetMeshPreservesNeighborOrder is the 3D twin of the above.
func TestLocalTetMeshPreservesNeighborOrder(t *testing.T) {
	m := gen3D(t, 5)
	in := FromTetMesh(m)
	l, err := New(in, 4, Bisect)
	if err != nil {
		t.Fatal(err)
	}
	for p := range l.Parts {
		local, l2g, err := BuildLocalTet(m, &l.Parts[p])
		if err != nil {
			t.Fatal(err)
		}
		if err := local.Validate(); err != nil {
			t.Fatalf("part %d: local mesh invalid: %v", p, err)
		}
		g2l := make(map[int32]int32, len(l2g))
		for lo, g := range l2g {
			g2l[g] = int32(lo)
		}
		for _, g := range l.Parts[p].Owned {
			lo := g2l[g]
			if local.IsBoundary[lo] != m.IsBoundary[g] {
				t.Fatalf("part %d: owned vertex %d boundary status differs locally", p, g)
			}
			want := m.Neighbors(g)
			got := local.Neighbors(lo)
			if len(got) != len(want) {
				t.Fatalf("part %d: vertex %d has %d local neighbors, want %d", p, g, len(got), len(want))
			}
			for i := range got {
				if l2g[got[i]] != want[i] {
					t.Fatalf("part %d: vertex %d neighbor order differs locally", p, g)
				}
			}
		}
	}
}
