package partition

import (
	"lams/internal/geom"
	"lams/internal/mesh"
)

// localIndex merges a part's owned and ghost lists into the local→global
// vertex map and returns it with the inverse (global→local, -1 elsewhere).
// Both inputs are ascending and disjoint, so the merge is ascending: local
// index order mirrors global index order. That monotonicity is the
// bit-identity foundation — the local mesh's sorted adjacency lists visit
// a vertex's neighbors in exactly the global mesh's order, so each Jacobi
// update performs the same floating-point operations in the same order.
func localIndex(numVerts int, part *Part) (l2g []int32, g2l []int32) {
	l2g = make([]int32, 0, len(part.Owned)+len(part.Ghosts))
	i, j := 0, 0
	for i < len(part.Owned) && j < len(part.Ghosts) {
		if part.Owned[i] < part.Ghosts[j] {
			l2g = append(l2g, part.Owned[i])
			i++
		} else {
			l2g = append(l2g, part.Ghosts[j])
			j++
		}
	}
	l2g = append(l2g, part.Owned[i:]...)
	l2g = append(l2g, part.Ghosts[j:]...)
	g2l = make([]int32, numVerts)
	for v := range g2l {
		g2l[v] = -1
	}
	for l, g := range l2g {
		g2l[g] = int32(l)
	}
	return l2g, g2l
}

// BuildLocal constructs the part's local triangle mesh — its element
// closure re-indexed over the ascending union of owned and ghost vertices
// — and returns it with the local→global vertex map. The local mesh's
// coordinates are copies; refresh them from the global mesh before use.
func BuildLocal(m *mesh.Mesh, part *Part) (*mesh.Mesh, []int32, error) {
	l2g, g2l := localIndex(m.NumVerts(), part)
	coords := make([]geom.Point, len(l2g))
	for l, g := range l2g {
		coords[l] = m.Coords[g]
	}
	tris := make([][3]int32, len(part.Elems))
	for i, e := range part.Elems {
		tv := m.Tris[e]
		tris[i] = [3]int32{g2l[tv[0]], g2l[tv[1]], g2l[tv[2]]}
	}
	lm, err := mesh.New(coords, tris)
	if err != nil {
		return nil, nil, err
	}
	return lm, l2g, nil
}

// BuildLocalTet is BuildLocal for tetrahedral meshes.
func BuildLocalTet(m *mesh.TetMesh, part *Part) (*mesh.TetMesh, []int32, error) {
	l2g, g2l := localIndex(m.NumVerts(), part)
	coords := make([]geom.Point3, len(l2g))
	for l, g := range l2g {
		coords[l] = m.Coords[g]
	}
	tets := make([][4]int32, len(part.Elems))
	for i, e := range part.Elems {
		tv := m.Tets[e]
		tets[i] = [4]int32{g2l[tv[0]], g2l[tv[1]], g2l[tv[2]], g2l[tv[3]]}
	}
	lm, err := mesh.NewTet(coords, tets)
	if err != nil {
		return nil, nil, err
	}
	return lm, l2g, nil
}
