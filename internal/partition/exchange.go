package partition

import (
	"context"

	"lams/internal/faultinject"
)

// Exchanger moves halo coordinate payloads between partitions at a sweep
// barrier. It is the seam a future wire transport (partitions sharded
// across processes or machines) plugs into; the in-process implementation
// is NewChanExchanger.
//
// Protocol: within one round, every partition calls Exchange exactly once
// from its own goroutine — outgoing[i] is the flat coordinate payload for
// the partition's Sends[i] link (len(Verts) vertices × the coordinate
// dimension, vertex-major), and the returned incoming[i] matches its
// Recvs[i] link the same way. Rounds are separated by a barrier among all
// partitions (the smoothing driver's sweep barrier): outgoing buffers must
// stay untouched until that barrier, and incoming buffers belong to the
// exchanger and are valid until the partition's next call.
type Exchanger interface {
	Exchange(ctx context.Context, part int, outgoing [][]float64) ([][]float64, error)
}

// ChanExchanger is the in-process Exchanger: one single-slot buffered
// channel per directed link of the layout. A round's sends all complete
// without blocking (every slot is empty at the round barrier), so
// partitions never deadlock regardless of the order their goroutines are
// scheduled in; receives block only until the peer's send lands.
// Cancellation mid-exchange returns ctx.Err() immediately — any payload
// left in a slot is simply abandoned with the run.
type ChanExchanger struct {
	sendCh  [][]chan []float64 // [part][i] channel of the part's Sends[i] link
	recvCh  [][]chan []float64 // [part][i] channel of the part's Recvs[i] link
	recvBuf [][][]float64      // [part][i] owned storage the incoming payload is copied into

	// Faults, when non-nil, is consulted before the send and receive
	// halves of every Exchange (faultinject.PointExchangeSend/Recv) —
	// the rehearsal for wire-transport failures. Set it only between
	// rounds (the driver does so alongside Reset).
	Faults *faultinject.Set
}

// NewChanExchanger wires a channel exchanger for the layout's links. dim
// is the coordinate dimension of the payloads (2 or 3).
func NewChanExchanger(l *Layout, dim int) *ChanExchanger {
	e := &ChanExchanger{
		sendCh:  make([][]chan []float64, l.K),
		recvCh:  make([][]chan []float64, l.K),
		recvBuf: make([][][]float64, l.K),
	}
	for p := range l.Parts {
		part := &l.Parts[p]
		e.sendCh[p] = make([]chan []float64, len(part.Sends))
		e.recvCh[p] = make([]chan []float64, len(part.Recvs))
		e.recvBuf[p] = make([][]float64, len(part.Recvs))
		for i, lk := range part.Recvs {
			e.recvBuf[p][i] = make([]float64, dim*len(lk.Verts))
		}
	}
	for p := range l.Parts {
		for i, lk := range l.Parts[p].Sends {
			ch := make(chan []float64, 1)
			e.sendCh[p][i] = ch
			for j, rk := range l.Parts[lk.Peer].Recvs {
				if rk.Peer == p {
					e.recvCh[lk.Peer][j] = ch
				}
			}
		}
	}
	return e
}

// Reset drains any payload a canceled round left in a channel slot,
// restoring the empty-slots state a fresh round requires. Callers that
// reuse one exchanger across runs call it before each run; it must not
// run concurrently with Exchange.
func (e *ChanExchanger) Reset() {
	for _, chs := range e.sendCh {
		for _, ch := range chs {
			select {
			case <-ch:
			default:
			}
		}
	}
}

// Exchange implements Exchanger: send every outgoing payload, then receive
// (and copy into owned buffers) every incoming one.
func (e *ChanExchanger) Exchange(ctx context.Context, part int, outgoing [][]float64) ([][]float64, error) {
	if err := e.Faults.Fire(faultinject.PointExchangeSend); err != nil {
		return nil, err
	}
	for i, ch := range e.sendCh[part] {
		select {
		case ch <- outgoing[i]:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := e.Faults.Fire(faultinject.PointExchangeRecv); err != nil {
		return nil, err
	}
	incoming := e.recvBuf[part]
	for i, ch := range e.recvCh[part] {
		select {
		case msg := <-ch:
			copy(incoming[i], msg)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return incoming, nil
}
