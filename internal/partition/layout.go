package partition

import (
	"fmt"
	"sort"
)

// Link is one directed halo-exchange edge: the vertices whose coordinates
// one partition sends to (or receives from) a peer each sweep. Verts holds
// global vertex indices in ascending order; the sender owns them, the
// receiver holds them as ghosts. The lists on both ends of a directed edge
// are identical, so payloads need no per-vertex framing — position in the
// list is the identity.
type Link struct {
	// Peer is the partition index on the other end.
	Peer int
	// Verts are the exchanged vertices (global indices, ascending). Only
	// movable (globally interior) vertices are exchanged: boundary
	// coordinates never change, so their ghost copies stay valid.
	Verts []int32
}

// Part is one partition of a mesh: the vertices it owns (and is alone
// responsible for updating), the ghost vertices it reads but does not own,
// the closure of elements incident to its owned vertices, and its
// exchange lists. All index slices are ascending global indices.
type Part struct {
	// Index is this partition's position in Layout.Parts.
	Index int
	// Owned lists the vertices assigned to this partition.
	Owned []int32
	// Ghosts lists the vertices of this partition's elements owned by
	// other partitions.
	Ghosts []int32
	// Elems lists every element incident to at least one owned vertex.
	// This closure makes each owned vertex's neighborhood locally
	// complete: a globally interior owned vertex sees all of its elements
	// and neighbors, so its local Jacobi update is bit-identical to the
	// global one.
	Elems []int32
	// Sends[i] holds the owned vertices whose coordinates this partition
	// sends to Sends[i].Peer after each sweep; Recvs[i] the ghosts it
	// receives from Recvs[i].Peer. Both are sorted by peer.
	Sends []Link
	Recvs []Link
}

// Layout is a complete decomposition of one mesh: the per-vertex owner map
// plus the derived Parts.
type Layout struct {
	// K is the partition count.
	K int
	// Owner maps every vertex to the partition that owns it.
	Owner []int32
	// Parts holds the per-partition index sets and exchange lists.
	Parts []Part
}

// New partitions the input with the named strategy ("" selects BFS) and
// builds the full layout. k must be in [1, NumVerts].
func New(in Input, k int, strategy string) (*Layout, error) {
	p, err := ByName(strategy)
	if err != nil {
		return nil, err
	}
	owner, err := p.Assign(in, k)
	if err != nil {
		return nil, err
	}
	return Build(in, owner, k)
}

// Build derives the per-partition structure from a vertex→owner
// assignment: owned and ghost vertex sets, element closures, and the
// symmetric send/receive exchange lists.
func Build(in Input, owner []int32, k int) (*Layout, error) {
	if len(owner) != in.NumVerts {
		return nil, fmt.Errorf("partition: owner map has %d entries, mesh has %d vertices", len(owner), in.NumVerts)
	}
	if k < 1 {
		return nil, fmt.Errorf("partition: k=%d out of range", k)
	}
	l := &Layout{K: k, Owner: owner, Parts: make([]Part, k)}
	for p := range l.Parts {
		l.Parts[p].Index = p
	}
	for v, p := range owner {
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("partition: vertex %d assigned to partition %d, want [0,%d)", v, p, k)
		}
		l.Parts[p].Owned = append(l.Parts[p].Owned, int32(v))
	}
	for p := range l.Parts {
		if len(l.Parts[p].Owned) == 0 {
			return nil, fmt.Errorf("partition: partition %d owns no vertices", p)
		}
	}

	// Element closure: element e belongs to every partition owning one of
	// its vertices. Iterating elements in ascending order keeps each
	// Elems list sorted for free.
	var mark [8]int32 // distinct owners seen in the current element
	for e := int32(0); e < int32(in.NumElems); e++ {
		seen := mark[:0]
		for _, v := range in.Elem(e) {
			p := owner[v]
			dup := false
			for _, q := range seen {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				seen = append(seen, p)
				l.Parts[p].Elems = append(l.Parts[p].Elems, e)
			}
		}
	}

	// Ghosts: the foreign vertices of each partition's elements. The
	// stamp array dedupes without a per-partition set allocation.
	stamp := make([]int32, in.NumVerts)
	for i := range stamp {
		stamp[i] = -1
	}
	for p := range l.Parts {
		part := &l.Parts[p]
		for _, e := range part.Elems {
			for _, v := range in.Elem(e) {
				if owner[v] != int32(p) && stamp[v] != int32(p) {
					stamp[v] = int32(p)
					part.Ghosts = append(part.Ghosts, v)
				}
			}
		}
		sort.Slice(part.Ghosts, func(i, j int) bool { return part.Ghosts[i] < part.Ghosts[j] })
	}

	// Exchange lists: partition q receives each of its movable ghosts
	// from the ghost's owner. Iterating receivers in ascending partition
	// order and their ghost lists in ascending vertex order makes every
	// Verts list ascending and both endpoints of a directed edge
	// identical by construction.
	sends := make([]map[int]*Link, k) // sender -> receiver -> link
	for q := range l.Parts {
		var recvs map[int]*Link
		for _, g := range l.Parts[q].Ghosts {
			if in.OnBoundary(g) {
				continue
			}
			p := int(owner[g])
			if recvs == nil {
				recvs = make(map[int]*Link)
			}
			lk := recvs[p]
			if lk == nil {
				lk = &Link{Peer: p}
				recvs[p] = lk
				if sends[p] == nil {
					sends[p] = make(map[int]*Link)
				}
			}
			lk.Verts = append(lk.Verts, g)
		}
		for p, lk := range recvs {
			l.Parts[q].Recvs = append(l.Parts[q].Recvs, Link{Peer: p, Verts: lk.Verts})
			sends[p][q] = &Link{Peer: q, Verts: lk.Verts}
		}
		sort.Slice(l.Parts[q].Recvs, func(i, j int) bool { return l.Parts[q].Recvs[i].Peer < l.Parts[q].Recvs[j].Peer })
	}
	for p := range l.Parts {
		for q, lk := range sends[p] {
			l.Parts[p].Sends = append(l.Parts[p].Sends, Link{Peer: q, Verts: lk.Verts})
		}
		sort.Slice(l.Parts[p].Sends, func(i, j int) bool { return l.Parts[p].Sends[i].Peer < l.Parts[p].Sends[j].Peer })
	}
	return l, nil
}

// Validate checks the layout invariants against the mesh it was built
// from: the owned sets cover the vertices disjointly, each element closure
// is exactly the elements incident to owned vertices and every element is
// covered, ghosts are exactly the foreign vertices of the closure, halo
// closure holds (every neighbor of a movable owned vertex is locally
// present), and the exchange lists are symmetric and cover every movable
// ghost exactly once.
func (l *Layout) Validate(in Input) error {
	if len(l.Owner) != in.NumVerts {
		return fmt.Errorf("partition: owner map has %d entries, mesh has %d vertices", len(l.Owner), in.NumVerts)
	}
	if len(l.Parts) != l.K {
		return fmt.Errorf("partition: %d parts, K=%d", len(l.Parts), l.K)
	}
	ownedTotal := 0
	for p := range l.Parts {
		part := &l.Parts[p]
		if part.Index != p {
			return fmt.Errorf("partition: part %d has Index %d", p, part.Index)
		}
		ownedTotal += len(part.Owned)
		prev := int32(-1)
		for _, v := range part.Owned {
			if v <= prev {
				return fmt.Errorf("partition: part %d owned list not ascending", p)
			}
			prev = v
			if l.Owner[v] != int32(p) {
				return fmt.Errorf("partition: vertex %d in part %d owned list but Owner says %d", v, p, l.Owner[v])
			}
		}
	}
	if ownedTotal != in.NumVerts {
		return fmt.Errorf("partition: owned sets cover %d of %d vertices", ownedTotal, in.NumVerts)
	}

	elemCover := make([]bool, in.NumElems)
	for p := range l.Parts {
		part := &l.Parts[p]
		inClosure := func(e int32) bool {
			for _, v := range in.Elem(e) {
				if l.Owner[v] == int32(p) {
					return true
				}
			}
			return false
		}
		prev := int32(-1)
		for _, e := range part.Elems {
			if e <= prev {
				return fmt.Errorf("partition: part %d element list not ascending", p)
			}
			prev = e
			if !inClosure(e) {
				return fmt.Errorf("partition: part %d holds element %d with no owned vertex", p, e)
			}
			elemCover[e] = true
		}
		// The converse — every incident element present — via counting:
		// count the elements with an owned vertex and compare.
		want := 0
		for e := int32(0); e < int32(in.NumElems); e++ {
			if inClosure(e) {
				want++
			}
		}
		if want != len(part.Elems) {
			return fmt.Errorf("partition: part %d closure has %d elements, want %d", p, len(part.Elems), want)
		}

		// Ghosts: exactly the foreign vertices of the closure, ascending.
		foreign := map[int32]bool{}
		for _, e := range part.Elems {
			for _, v := range in.Elem(e) {
				if l.Owner[v] != int32(p) {
					foreign[v] = true
				}
			}
		}
		if len(foreign) != len(part.Ghosts) {
			return fmt.Errorf("partition: part %d has %d ghosts, want %d", p, len(part.Ghosts), len(foreign))
		}
		prev = -1
		for _, g := range part.Ghosts {
			if g <= prev {
				return fmt.Errorf("partition: part %d ghost list not ascending", p)
			}
			prev = g
			if !foreign[g] {
				return fmt.Errorf("partition: part %d ghost %d is not a foreign closure vertex", p, g)
			}
		}

		// Halo closure: movable owned vertices see all their neighbors.
		local := map[int32]bool{}
		for _, v := range part.Owned {
			local[v] = true
		}
		for _, g := range part.Ghosts {
			local[g] = true
		}
		for _, v := range part.Owned {
			if in.OnBoundary(v) {
				continue
			}
			for _, w := range in.Neighbors(v) {
				if !local[w] {
					return fmt.Errorf("partition: part %d misses neighbor %d of movable owned vertex %d", p, w, v)
				}
			}
		}
	}
	for e, ok := range elemCover {
		if !ok {
			return fmt.Errorf("partition: element %d belongs to no partition", e)
		}
	}

	// Exchange lists: symmetric, owned-by-sender, movable, and covering
	// every movable ghost exactly once.
	for p := range l.Parts {
		for _, lk := range l.Parts[p].Sends {
			if lk.Peer < 0 || lk.Peer >= l.K || lk.Peer == p {
				return fmt.Errorf("partition: part %d send link to invalid peer %d", p, lk.Peer)
			}
			for _, v := range lk.Verts {
				if l.Owner[v] != int32(p) {
					return fmt.Errorf("partition: part %d sends vertex %d it does not own", p, v)
				}
				if in.OnBoundary(v) {
					return fmt.Errorf("partition: part %d sends boundary vertex %d", p, v)
				}
			}
			// The matching receive on the peer.
			var match *Link
			for i := range l.Parts[lk.Peer].Recvs {
				if l.Parts[lk.Peer].Recvs[i].Peer == p {
					match = &l.Parts[lk.Peer].Recvs[i]
					break
				}
			}
			if match == nil {
				return fmt.Errorf("partition: part %d sends to %d but %d has no matching receive", p, lk.Peer, lk.Peer)
			}
			if len(match.Verts) != len(lk.Verts) {
				return fmt.Errorf("partition: link %d->%d length mismatch: %d vs %d", p, lk.Peer, len(lk.Verts), len(match.Verts))
			}
			for i := range lk.Verts {
				if lk.Verts[i] != match.Verts[i] {
					return fmt.Errorf("partition: link %d->%d vertex mismatch at %d", p, lk.Peer, i)
				}
			}
		}
		seen := map[int32]bool{}
		for _, lk := range l.Parts[p].Recvs {
			for _, g := range lk.Verts {
				if seen[g] {
					return fmt.Errorf("partition: part %d receives ghost %d twice", p, g)
				}
				seen[g] = true
				if l.Owner[g] != int32(lk.Peer) {
					return fmt.Errorf("partition: part %d receives ghost %d from %d, owner is %d", p, g, lk.Peer, l.Owner[g])
				}
			}
		}
		for _, g := range l.Parts[p].Ghosts {
			if !in.OnBoundary(g) && !seen[g] {
				return fmt.Errorf("partition: part %d movable ghost %d is not received from anyone", p, g)
			}
		}
	}
	return nil
}

// PartStats summarizes one partition for reports; the JSON field names are
// part of the lamsbench -json schema.
type PartStats struct {
	Owned  int `json:"owned"`
	Ghosts int `json:"ghosts"`
	Elems  int `json:"elems"`
	// SendVerts is the total per-sweep outbound halo payload in vertices.
	SendVerts int `json:"send_verts"`
	// Peers is the number of partitions this one exchanges with.
	Peers int `json:"peers"`
}

// Stats summarizes the whole layout for reports.
type Stats struct {
	K int `json:"k"`
	// GhostFraction is total ghosts over total owned vertices — the
	// replication overhead of the decomposition.
	GhostFraction float64     `json:"ghost_fraction"`
	Parts         []PartStats `json:"parts"`
}

// Stats computes the layout summary.
func (l *Layout) Stats() Stats {
	s := Stats{K: l.K, Parts: make([]PartStats, l.K)}
	ghosts := 0
	for p := range l.Parts {
		part := &l.Parts[p]
		ps := PartStats{Owned: len(part.Owned), Ghosts: len(part.Ghosts), Elems: len(part.Elems), Peers: len(part.Recvs)}
		for _, lk := range part.Sends {
			ps.SendVerts += len(lk.Verts)
		}
		ghosts += ps.Ghosts
		s.Parts[p] = ps
	}
	if len(l.Owner) > 0 {
		s.GhostFraction = float64(ghosts) / float64(len(l.Owner))
	}
	return s
}
