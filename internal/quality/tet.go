package quality

import (
	"math"

	"lams/internal/geom"
	"lams/internal/mesh"
)

// Tetrahedral quality metrics — the 3D counterparts of the triangle metrics,
// with the same normalization contract: every metric maps a tet to [0, 1],
// 1 for the regular (equilateral) tetrahedron, 0 for a degenerate or
// inverted one. Vertex quality is the average over attached tets and global
// quality the average vertex quality, exactly as §3.2 aggregates triangles.

// TetMetric maps a tetrahedron to a quality value in [0, 1].
type TetMetric interface {
	// Tet returns the quality of tetrahedron (a, b, c, d).
	Tet(a, b, c, d geom.Point3) float64
	// Name identifies the metric in reports.
	Name() string
}

// MeanRatio3 is the normalized mean-ratio metric for tetrahedra,
// 12*(3V)^(2/3) / Σ l_i² over the six edges: 1 for the regular tetrahedron,
// approaching 0 as the tet degenerates, and 0 for flat or inverted tets
// (negative orientation). It is the standard algebraic shape measure of
// Liu and Joe and the default 3D smoothing metric here.
type MeanRatio3 struct{}

// Name implements TetMetric.
func (MeanRatio3) Name() string { return "mean-ratio" }

// Tet implements TetMetric.
func (MeanRatio3) Tet(a, b, c, d geom.Point3) float64 {
	vol6 := geom.Orient3DValue(a, b, c, d)
	if vol6 <= 0 {
		return 0
	}
	s := a.Dist2(b) + a.Dist2(c) + a.Dist2(d) + b.Dist2(c) + b.Dist2(d) + c.Dist2(d)
	if s == 0 {
		return 0
	}
	// vol6 is 6V, so 3V = vol6/2.
	return 12 * math.Cbrt((vol6/2)*(vol6/2)) / s
}

// EdgeRatio3 is the edge-length-ratio metric lifted to tetrahedra: the ratio
// of the shortest to the longest of the six edges, 1 for the regular tet.
// Like its 2D namesake it is orientation-blind and cheap — the natural
// driver for the RDR ordering's initial qualities when smoothing 3D meshes
// with the paper's metric family.
type EdgeRatio3 struct{}

// Name implements TetMetric.
func (EdgeRatio3) Name() string { return "edge-length-ratio" }

// Tet implements TetMetric.
func (EdgeRatio3) Tet(a, b, c, d geom.Point3) float64 {
	e := [6]float64{a.Dist(b), a.Dist(c), a.Dist(d), b.Dist(c), b.Dist(d), c.Dist(d)}
	lo, hi := e[0], e[0]
	for _, l := range e[1:] {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi == 0 {
		return 0
	}
	return lo / hi
}

// TetQualities returns the metric value of every tetrahedron.
func TetQualities(m *mesh.TetMesh, met TetMetric) []float64 {
	out := make([]float64, m.NumTets())
	for i, tv := range m.Tets {
		out[i] = met.Tet(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]], m.Coords[tv[3]])
	}
	return out
}

// TetVertexQualities returns the quality of every vertex: the average metric
// value of the tets attached to it (§3.2, lifted to 3D).
func TetVertexQualities(m *mesh.TetMesh, met TetMetric) []float64 {
	tetQ := TetQualities(m, met)
	out := make([]float64, m.NumVerts())
	for v := int32(0); v < int32(m.NumVerts()); v++ {
		ts := m.VertTets(v)
		if len(ts) == 0 {
			continue
		}
		var s float64
		for _, t := range ts {
			s += tetQ[t]
		}
		out[v] = s / float64(len(ts))
	}
	return out
}

// TetVertexQuality recomputes the quality of a single vertex from the
// current coordinates (used by incremental updates during smoothing).
func TetVertexQuality(m *mesh.TetMesh, met TetMetric, v int32) float64 {
	ts := m.VertTets(v)
	if len(ts) == 0 {
		return 0
	}
	var s float64
	for _, t := range ts {
		tv := m.Tets[t]
		s += met.Tet(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]], m.Coords[tv[3]])
	}
	return s / float64(len(ts))
}

// TetGlobal returns the mesh-wide quality: the average vertex quality.
func TetGlobal(m *mesh.TetMesh, met TetMetric) float64 {
	vq := TetVertexQualities(m, met)
	if len(vq) == 0 {
		return 0
	}
	var s float64
	for _, q := range vq {
		s += q
	}
	return s / float64(len(vq))
}

// TetQualities is like the package-level TetQualities but writes into the
// scratch buffer. The result is valid until the next call on s.
func (s *Scratch) TetQualities(m *mesh.TetMesh, met TetMetric) []float64 {
	s.tri = grow(s.tri, m.NumTets())
	for i, tv := range m.Tets {
		s.tri[i] = met.Tet(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]], m.Coords[tv[3]])
	}
	return s.tri
}

// TetVertexQualities is like the package-level TetVertexQualities but writes
// into the scratch buffers. The result is valid until the next call on s.
func (s *Scratch) TetVertexQualities(m *mesh.TetMesh, met TetMetric) []float64 {
	tetQ := s.TetQualities(m, met)
	s.vert = grow(s.vert, m.NumVerts())
	for v := int32(0); v < int32(m.NumVerts()); v++ {
		ts := m.VertTets(v)
		if len(ts) == 0 {
			s.vert[v] = 0
			continue
		}
		var sum float64
		for _, t := range ts {
			sum += tetQ[t]
		}
		s.vert[v] = sum / float64(len(ts))
	}
	return s.vert
}

// TetGlobal is like the package-level TetGlobal but allocation-free after
// the scratch buffers have grown to the mesh's size.
func (s *Scratch) TetGlobal(m *mesh.TetMesh, met TetMetric) float64 {
	vq := s.TetVertexQualities(m, met)
	if len(vq) == 0 {
		return 0
	}
	var sum float64
	for _, q := range vq {
		sum += q
	}
	return sum / float64(len(vq))
}
