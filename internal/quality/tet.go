package quality

import (
	"context"
	"math"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/parallel"
)

// Tetrahedral quality metrics — the 3D counterparts of the triangle metrics,
// with the same normalization contract: every metric maps a tet to [0, 1],
// 1 for the regular (equilateral) tetrahedron, 0 for a degenerate or
// inverted one. Vertex quality is the average over attached tets and global
// quality the average vertex quality, exactly as §3.2 aggregates triangles.

// TetMetric maps a tetrahedron to a quality value in [0, 1].
type TetMetric interface {
	// Tet returns the quality of tetrahedron (a, b, c, d).
	Tet(a, b, c, d geom.Point3) float64
	// Name identifies the metric in reports.
	Name() string
}

// MeanRatio3 is the normalized mean-ratio metric for tetrahedra,
// 12*(3V)^(2/3) / Σ l_i² over the six edges: 1 for the regular tetrahedron,
// approaching 0 as the tet degenerates, and 0 for flat or inverted tets
// (negative orientation). It is the standard algebraic shape measure of
// Liu and Joe and the default 3D smoothing metric here.
type MeanRatio3 struct{}

// Name implements TetMetric.
func (MeanRatio3) Name() string { return "mean-ratio" }

// Tet implements TetMetric.
func (MeanRatio3) Tet(a, b, c, d geom.Point3) float64 {
	vol6 := geom.Orient3DValue(a, b, c, d)
	if vol6 <= 0 {
		return 0
	}
	s := a.Dist2(b) + a.Dist2(c) + a.Dist2(d) + b.Dist2(c) + b.Dist2(d) + c.Dist2(d)
	if s == 0 {
		return 0
	}
	// vol6 is 6V, so 3V = vol6/2.
	return 12 * math.Cbrt((vol6/2)*(vol6/2)) / s
}

// EdgeRatio3 is the edge-length-ratio metric lifted to tetrahedra: the ratio
// of the shortest to the longest of the six edges, 1 for the regular tet.
// Like its 2D namesake it is orientation-blind and cheap — the natural
// driver for the RDR ordering's initial qualities when smoothing 3D meshes
// with the paper's metric family.
type EdgeRatio3 struct{}

// Name implements TetMetric.
func (EdgeRatio3) Name() string { return "edge-length-ratio" }

// Tet implements TetMetric.
func (EdgeRatio3) Tet(a, b, c, d geom.Point3) float64 {
	e := [6]float64{a.Dist(b), a.Dist(c), a.Dist(d), b.Dist(c), b.Dist(d), c.Dist(d)}
	lo, hi := e[0], e[0]
	for _, l := range e[1:] {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi == 0 {
		return 0
	}
	return lo / hi
}

// TetQualities returns the metric value of every tetrahedron.
func TetQualities(m *mesh.TetMesh, met TetMetric) []float64 {
	out := make([]float64, m.NumTets())
	for i, tv := range m.Tets {
		out[i] = met.Tet(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]], m.Coords[tv[3]])
	}
	return out
}

// TetVertexQualities returns the quality of every vertex: the average metric
// value of the tets attached to it (§3.2, lifted to 3D).
func TetVertexQualities(m *mesh.TetMesh, met TetMetric) []float64 {
	tetQ := TetQualities(m, met)
	out := make([]float64, m.NumVerts())
	for v := int32(0); v < int32(m.NumVerts()); v++ {
		ts := m.VertTets(v)
		if len(ts) == 0 {
			continue
		}
		var s float64
		for _, t := range ts {
			s += tetQ[t]
		}
		out[v] = s / float64(len(ts))
	}
	return out
}

// TetVertexQuality recomputes the quality of a single vertex from the
// current coordinates (used by incremental updates during smoothing).
func TetVertexQuality(m *mesh.TetMesh, met TetMetric, v int32) float64 {
	ts := m.VertTets(v)
	if len(ts) == 0 {
		return 0
	}
	var s float64
	for _, t := range ts {
		tv := m.Tets[t]
		s += met.Tet(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]], m.Coords[tv[3]])
	}
	return s / float64(len(ts))
}

// TetGlobal returns the mesh-wide quality: the average vertex quality. Like
// the 2D Global, the vertex qualities are summed with the blocked order
// parallel.SumBlocked defines, so the value is bit-identical to
// Scratch.TetGlobal and to the parallel reduction at every worker count and
// schedule.
func TetGlobal(m *mesh.TetMesh, met TetMetric) float64 {
	vq := TetVertexQualities(m, met)
	if len(vq) == 0 {
		return 0
	}
	return parallel.SumBlocked(vq) / float64(len(vq))
}

// boxedTetMetric is the 3D twin of boxedMetric.
type boxedTetMetric struct{ TetMetric }

// BoxTetMetric wraps met so every quality pass takes the interface-dispatch
// path even for the built-in tet metrics; see BoxMetric.
func BoxTetMetric(met TetMetric) TetMetric { return boxedTetMetric{met} }

// tetRange fills s.tri for tetrahedra [lo, hi), devirtualizing the built-in
// metrics: MeanRatio3.Tet's body is replayed inline — operation for
// operation, so the values stay bit-identical — and EdgeRatio3 gets a
// concrete direct call (its Tet is array-bound and benefits less from
// manual inlining); everything else dispatches through the interface.
func (s *Scratch) tetRange(m *mesh.TetMesh, met TetMetric, lo, hi int) {
	coords, tri := m.Coords, s.tri
	switch met.(type) {
	case MeanRatio3:
		for i, tv := range m.Tets[lo:hi] {
			a, b, c, d := coords[tv[0]], coords[tv[1]], coords[tv[2]], coords[tv[3]]
			q := 0.0
			if vol6 := geom.Orient3DValue(a, b, c, d); vol6 > 0 {
				s := a.Dist2(b) + a.Dist2(c) + a.Dist2(d) + b.Dist2(c) + b.Dist2(d) + c.Dist2(d)
				if s != 0 {
					// vol6 is 6V, so 3V = vol6/2 (matching MeanRatio3.Tet).
					q = 12 * math.Cbrt((vol6/2)*(vol6/2)) / s
				}
			}
			tri[lo+i] = q
		}
	case EdgeRatio3:
		for i, tv := range m.Tets[lo:hi] {
			tri[lo+i] = EdgeRatio3{}.Tet(coords[tv[0]], coords[tv[1]], coords[tv[2]], coords[tv[3]])
		}
	default:
		for i, tv := range m.Tets[lo:hi] {
			tri[lo+i] = met.Tet(coords[tv[0]], coords[tv[1]], coords[tv[2]], coords[tv[3]])
		}
	}
}

// tetRangeSoA is tetRange over the structure-of-arrays coordinate mirrors
// with the devirtualized MeanRatio3 body replayed on points assembled from
// the raw slices — bit-identical to tetRange over an equal m.Coords; the 3D
// twin of triRangeSoA.
func (s *Scratch) tetRangeSoA(m *mesh.TetMesh, x, y, z []float64, lo, hi int) {
	tri := s.tri
	for i, tv := range m.Tets[lo:hi] {
		a := geom.Point3{X: x[tv[0]], Y: y[tv[0]], Z: z[tv[0]]}
		b := geom.Point3{X: x[tv[1]], Y: y[tv[1]], Z: z[tv[1]]}
		c := geom.Point3{X: x[tv[2]], Y: y[tv[2]], Z: z[tv[2]]}
		d := geom.Point3{X: x[tv[3]], Y: y[tv[3]], Z: z[tv[3]]}
		q := 0.0
		if vol6 := geom.Orient3DValue(a, b, c, d); vol6 > 0 {
			s := a.Dist2(b) + a.Dist2(c) + a.Dist2(d) + b.Dist2(c) + b.Dist2(d) + c.Dist2(d)
			if s != 0 {
				// vol6 is 6V, so 3V = vol6/2 (matching MeanRatio3.Tet).
				q = 12 * math.Cbrt((vol6/2)*(vol6/2)) / s
			}
		}
		tri[lo+i] = q
	}
}

// globalSum3 is the 3D twin of globalSum: it stages the per-tet metric pass
// and runs the same generic two-stage pipeline (see pass.go).
func (s *Scratch) globalSum3(ctx context.Context, m *mesh.TetMesh, met TetMetric, workers int, sched parallel.Scheduler) (float64, error) {
	s.pkind, s.ptm, s.ptmt = passTet, m, met
	s.pstart, s.plist = m.TetStart, m.TetList
	return s.passSum(ctx, m.NumTets(), m.NumVerts(), workers, sched)
}

// globalSumSoA3 is the 3D twin of globalSumSoA: the tet stage is tetRangeSoA
// (MeanRatio3), the vertex-average and reduction are the shared code, so the
// sum is bit-identical to globalSum3 over an equal m.Coords.
func (s *Scratch) globalSumSoA3(ctx context.Context, m *mesh.TetMesh, x, y, z []float64, workers int, sched parallel.Scheduler) (float64, error) {
	s.pkind, s.ptm, s.px, s.py, s.pz = passTetSoA, m, x, y, z
	s.pstart, s.plist = m.TetStart, m.TetList
	return s.passSum(ctx, m.NumTets(), m.NumVerts(), workers, sched)
}

// TetGlobalParallelSoA is TetGlobalParallel with the MeanRatio3 metric
// evaluated over the engines' SoA coordinate mirrors (x[i], y[i], z[i] is
// vertex i) instead of m.Coords — m's connectivity is used, its coordinates
// are ignored. Bit-identical to TetGlobalParallel with quality.MeanRatio3
// over an equal m.Coords, at every worker count and schedule.
func (s *Scratch) TetGlobalParallelSoA(ctx context.Context, m *mesh.TetMesh, x, y, z []float64, workers int, sched parallel.Scheduler) (float64, error) {
	sum, err := s.globalSumSoA3(ctx, m, x, y, z, workers, sched)
	if err != nil {
		return 0, err
	}
	nv := m.NumVerts()
	if nv == 0 {
		return 0, nil
	}
	return sum / float64(nv), nil
}

// TetVertexQualitiesParallelSoA is TetVertexQualitiesParallel with the
// MeanRatio3 metric over the SoA coordinate mirrors; see
// TetGlobalParallelSoA. The slice is valid until the next call on s.
func (s *Scratch) TetVertexQualitiesParallelSoA(ctx context.Context, m *mesh.TetMesh, x, y, z []float64, workers int, sched parallel.Scheduler) ([]float64, error) {
	if _, err := s.globalSumSoA3(ctx, m, x, y, z, workers, sched); err != nil {
		return nil, err
	}
	return s.vert, nil
}

// TetQualities is like the package-level TetQualities but writes into the
// scratch buffer. The result is valid until the next call on s.
func (s *Scratch) TetQualities(m *mesh.TetMesh, met TetMetric) []float64 {
	s.tri = grow(s.tri, m.NumTets())
	s.tetRange(m, met, 0, m.NumTets())
	return s.tri
}

// TetVertexQualities is like the package-level TetVertexQualities but writes
// into the scratch buffers. The result is valid until the next call on s.
func (s *Scratch) TetVertexQualities(m *mesh.TetMesh, met TetMetric) []float64 {
	vq, _ := s.TetVertexQualitiesParallel(context.Background(), m, met, 1, nil)
	return vq
}

// TetVertexQualitiesParallel is the 3D twin of VertexQualitiesParallel:
// bit-identical to the serial pass at every worker count and schedule.
func (s *Scratch) TetVertexQualitiesParallel(ctx context.Context, m *mesh.TetMesh, met TetMetric, workers int, sched parallel.Scheduler) ([]float64, error) {
	if _, err := s.globalSum3(ctx, m, met, workers, sched); err != nil {
		return nil, err
	}
	return s.vert, nil
}

// TetGlobal is like the package-level TetGlobal but allocation-free after
// the scratch buffers have grown to the mesh's size.
func (s *Scratch) TetGlobal(m *mesh.TetMesh, met TetMetric) float64 {
	g, _ := s.TetGlobalParallel(context.Background(), m, met, 1, nil)
	return g
}

// TetGlobalParallel is the 3D twin of GlobalParallel: the tet-metric pass,
// the vertex-average pass, and the blocked reduction distributed across
// workers, bit-identical to the serial TetGlobal at every worker count and
// schedule.
func (s *Scratch) TetGlobalParallel(ctx context.Context, m *mesh.TetMesh, met TetMetric, workers int, sched parallel.Scheduler) (float64, error) {
	sum, err := s.globalSum3(ctx, m, met, workers, sched)
	if err != nil {
		return 0, err
	}
	nv := m.NumVerts()
	if nv == 0 {
		return 0, nil
	}
	return sum / float64(nv), nil
}
