// Package quality implements the mesh quality metrics of the paper: the
// edge-length ratio of Knupp [7] (the metric the paper smooths with and the
// key that drives the RDR ordering), plus minimum-angle and aspect-ratio
// metrics used by the ablation studies.
//
// All metrics map a triangle to [0, 1], where 1 is the equilateral ideal.
// Vertex quality is the average metric over the triangles attached to the
// vertex; global quality is the average of all vertex qualities — exactly as
// §3.2 defines them.
package quality

import (
	"context"
	"math"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/parallel"
)

// Metric maps a triangle to a quality value in [0, 1].
type Metric interface {
	// Triangle returns the quality of triangle (a, b, c).
	Triangle(a, b, c geom.Point) float64
	// Name identifies the metric in reports.
	Name() string
}

// EdgeRatio is the edge-length ratio metric: the ratio of the shortest to
// the longest edge of the triangle. It is 1 for an equilateral triangle and
// approaches 0 as the triangle degenerates.
type EdgeRatio struct{}

// Name implements Metric.
func (EdgeRatio) Name() string { return "edge-length-ratio" }

// Triangle implements Metric.
func (EdgeRatio) Triangle(a, b, c geom.Point) float64 {
	e0 := a.Dist(b)
	e1 := b.Dist(c)
	e2 := c.Dist(a)
	lo := math.Min(e0, math.Min(e1, e2))
	hi := math.Max(e0, math.Max(e1, e2))
	if hi == 0 {
		return 0
	}
	return lo / hi
}

// MinAngle is the normalized minimum-angle metric: the smallest interior
// angle divided by 60 degrees.
type MinAngle struct{}

// Name implements Metric.
func (MinAngle) Name() string { return "min-angle" }

// Triangle implements Metric.
func (MinAngle) Triangle(a, b, c geom.Point) float64 {
	ang := func(p, q, r geom.Point) float64 {
		u, v := q.Sub(p), r.Sub(p)
		nu, nv := u.Norm(), v.Norm()
		if nu == 0 || nv == 0 {
			return 0
		}
		cos := u.Dot(v) / (nu * nv)
		cos = math.Max(-1, math.Min(1, cos))
		return math.Acos(cos)
	}
	m := math.Min(ang(a, b, c), math.Min(ang(b, c, a), ang(c, a, b)))
	return m / (math.Pi / 3)
}

// AspectRatio is the normalized area-to-edge metric
// 4*sqrt(3)*area / (sum of squared edge lengths), which is 1 for an
// equilateral triangle and 0 for a degenerate one.
type AspectRatio struct{}

// Name implements Metric.
func (AspectRatio) Name() string { return "aspect-ratio" }

// Triangle implements Metric.
func (AspectRatio) Triangle(a, b, c geom.Point) float64 {
	area := geom.TriangleArea(a, b, c)
	s := a.Dist2(b) + b.Dist2(c) + c.Dist2(a)
	if s == 0 {
		return 0
	}
	return 4 * math.Sqrt(3) * area / s
}

// TriangleQualities returns the metric value of every triangle.
func TriangleQualities(m *mesh.Mesh, met Metric) []float64 {
	out := make([]float64, m.NumTris())
	for i, tv := range m.Tris {
		out[i] = met.Triangle(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]])
	}
	return out
}

// VertexQualities returns the quality of every vertex: the average metric
// value of the triangles attached to it (§3.2).
func VertexQualities(m *mesh.Mesh, met Metric) []float64 {
	triQ := TriangleQualities(m, met)
	out := make([]float64, m.NumVerts())
	for v := int32(0); v < int32(m.NumVerts()); v++ {
		ts := m.VertTris(v)
		if len(ts) == 0 {
			continue
		}
		var s float64
		for _, t := range ts {
			s += triQ[t]
		}
		out[v] = s / float64(len(ts))
	}
	return out
}

// VertexQuality recomputes the quality of a single vertex from the current
// coordinates (used by incremental updates during smoothing).
func VertexQuality(m *mesh.Mesh, met Metric, v int32) float64 {
	ts := m.VertTris(v)
	if len(ts) == 0 {
		return 0
	}
	var s float64
	for _, t := range ts {
		tv := m.Tris[t]
		s += met.Triangle(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]])
	}
	return s / float64(len(ts))
}

// Global returns the mesh-wide quality: the average vertex quality (§3.2).
// The vertex qualities are summed with the blocked order parallel.SumBlocked
// defines, so the value is bit-identical to Scratch.Global and to the
// parallel reduction at every worker count and schedule.
func Global(m *mesh.Mesh, met Metric) float64 {
	vq := VertexQualities(m, met)
	if len(vq) == 0 {
		return 0
	}
	return parallel.SumBlocked(vq) / float64(len(vq))
}

// boxedMetric hides a metric's concrete type behind one more indirection so
// the devirtualized fast paths do not recognize it and the generic
// interface-dispatch loops run instead.
type boxedMetric struct{ Metric }

// BoxMetric wraps met so every quality pass takes the interface-dispatch
// path even for the built-in metrics. It exists for the fast-path
// equivalence tests and the before/after benchmarks (smooth's NoFastPath
// ablation); results are bit-identical to the unboxed metric.
func BoxMetric(met Metric) Metric { return boxedMetric{met} }

// Scratch holds reusable buffers for repeated quality evaluations, so a
// convergence loop that re-measures global quality every iteration does not
// reallocate two O(n) slices per sweep. It also owns the ordered-reduction
// scratch and the prebuilt worker bodies of the parallel passes, keeping
// repeated parallel measurements allocation-free in steady state. The zero
// value is ready to use; a Scratch is not safe for concurrent use.
type Scratch struct {
	tri, vert []float64
	red       parallel.OrderedReducer

	// Descriptor of the staged element pass (set on entry, cleared on exit
	// so a parked Scratch does not pin the last-measured mesh): which range
	// body runs, its dimension-specific parameters, and the CSR incidence
	// the shared vertex-average pass reads. See pass.go.
	pkind passKind
	pm    *mesh.Mesh
	pmet  Metric
	ptm   *mesh.TetMesh
	ptmt  TetMetric

	// SoA coordinate views of the staged pass (the smoothing engines'
	// structure-of-arrays mirrors); px/py in 2D, plus pz in 3D.
	px, py, pz []float64

	// CSR vertex-to-element incidence of the staged pass (TriStart/TriList
	// or TetStart/TetList).
	pstart, plist []int32

	// Prebuilt pass bodies (one-time closures over the receiver), so
	// steady-state parallel passes hand the scheduler existing func values.
	elemBody func(worker int, c parallel.Chunk)
	avgBody  func(worker, block int, span parallel.Chunk) float64
}

// triRange fills s.tri for triangles [lo, hi). The built-in default metric
// is devirtualized: EdgeRatio.Triangle's body is replayed inline —
// operation for operation, so the values stay bit-identical — instead of
// dispatching through the interface per triangle (Triangle itself is past
// the inliner's budget, so even a concrete call would pay a frame per
// element).
func (s *Scratch) triRange(m *mesh.Mesh, met Metric, lo, hi int) {
	coords, tri := m.Coords, s.tri
	if _, ok := met.(EdgeRatio); ok {
		for i, tv := range m.Tris[lo:hi] {
			a, b, c := coords[tv[0]], coords[tv[1]], coords[tv[2]]
			e0 := a.Dist(b)
			e1 := b.Dist(c)
			e2 := c.Dist(a)
			elo := math.Min(e0, math.Min(e1, e2))
			ehi := math.Max(e0, math.Max(e1, e2))
			q := 0.0
			if ehi != 0 {
				q = elo / ehi
			}
			tri[lo+i] = q
		}
		return
	}
	for i, tv := range m.Tris[lo:hi] {
		tri[lo+i] = met.Triangle(coords[tv[0]], coords[tv[1]], coords[tv[2]])
	}
}

// triRangeSoA is triRange over the structure-of-arrays coordinate mirrors
// the smoothing engines keep (x[i], y[i] is vertex i): the metric is the
// devirtualized EdgeRatio body, replayed operation for operation on points
// assembled from the raw slices, so the values are bit-identical to triRange
// over an equal m.Coords. SoA callers opt in per metric — this pass exists
// only for the metric the 2D fast path devirtualizes.
func (s *Scratch) triRangeSoA(m *mesh.Mesh, x, y []float64, lo, hi int) {
	tri := s.tri
	for i, tv := range m.Tris[lo:hi] {
		a := geom.Point{X: x[tv[0]], Y: y[tv[0]]}
		b := geom.Point{X: x[tv[1]], Y: y[tv[1]]}
		c := geom.Point{X: x[tv[2]], Y: y[tv[2]]}
		e0 := a.Dist(b)
		e1 := b.Dist(c)
		e2 := c.Dist(a)
		elo := math.Min(e0, math.Min(e1, e2))
		ehi := math.Max(e0, math.Max(e1, e2))
		q := 0.0
		if ehi != 0 {
			q = elo / ehi
		}
		tri[lo+i] = q
	}
}

// globalSum stages the per-triangle metric pass and runs the generic
// two-stage pipeline (see pass.go): bit-identical to the serial pass at
// every worker count and schedule.
func (s *Scratch) globalSum(ctx context.Context, m *mesh.Mesh, met Metric, workers int, sched parallel.Scheduler) (float64, error) {
	s.pkind, s.pm, s.pmet = passTri, m, met
	s.pstart, s.plist = m.TriStart, m.TriList
	return s.passSum(ctx, m.NumTris(), m.NumVerts(), workers, sched)
}

// globalSumSoA is globalSum over the SoA coordinate mirrors with the
// EdgeRatio metric: the triangle stage is triRangeSoA, the vertex-average
// stage and the blocked reduction are the same code as the interface path
// (they read only s.tri and the CSR incidence), so the sum is bit-identical
// to globalSum over an equal m.Coords.
func (s *Scratch) globalSumSoA(ctx context.Context, m *mesh.Mesh, x, y []float64, workers int, sched parallel.Scheduler) (float64, error) {
	s.pkind, s.pm, s.px, s.py = passTriSoA, m, x, y
	s.pstart, s.plist = m.TriStart, m.TriList
	return s.passSum(ctx, m.NumTris(), m.NumVerts(), workers, sched)
}

// GlobalParallelSoA is GlobalParallel with the EdgeRatio metric evaluated
// over the engines' SoA coordinate mirrors (x[i], y[i] is vertex i) instead
// of m.Coords — m's connectivity is used, its coordinates are ignored. The
// value is bit-identical to GlobalParallel with quality.EdgeRatio over an
// equal m.Coords, at every worker count and schedule.
func (s *Scratch) GlobalParallelSoA(ctx context.Context, m *mesh.Mesh, x, y []float64, workers int, sched parallel.Scheduler) (float64, error) {
	sum, err := s.globalSumSoA(ctx, m, x, y, workers, sched)
	if err != nil {
		return 0, err
	}
	nv := m.NumVerts()
	if nv == 0 {
		return 0, nil
	}
	return sum / float64(nv), nil
}

// VertexQualitiesParallelSoA is VertexQualitiesParallel with the EdgeRatio
// metric over the SoA coordinate mirrors; see GlobalParallelSoA. The slice
// is valid until the next call on s.
func (s *Scratch) VertexQualitiesParallelSoA(ctx context.Context, m *mesh.Mesh, x, y []float64, workers int, sched parallel.Scheduler) ([]float64, error) {
	if _, err := s.globalSumSoA(ctx, m, x, y, workers, sched); err != nil {
		return nil, err
	}
	return s.vert, nil
}

// TriangleQualities is like the package-level TriangleQualities but writes
// into the scratch buffer. The result is valid until the next call on s.
func (s *Scratch) TriangleQualities(m *mesh.Mesh, met Metric) []float64 {
	s.tri = grow(s.tri, m.NumTris())
	s.triRange(m, met, 0, m.NumTris())
	return s.tri
}

// VertexQualities is like the package-level VertexQualities but writes into
// the scratch buffers. The result is valid until the next call on s.
func (s *Scratch) VertexQualities(m *mesh.Mesh, met Metric) []float64 {
	vq, _ := s.VertexQualitiesParallel(context.Background(), m, met, 1, nil)
	return vq
}

// VertexQualitiesParallel is VertexQualities with both passes distributed
// across workers by sched (nil or workers <= 1 runs serially, inline).
// Per-vertex values are computed independently, so the result is
// bit-identical to the serial pass at every worker count and schedule. The
// slice is valid until the next call on s. On cancellation it returns
// ctx.Err() and the buffer contents are unspecified.
func (s *Scratch) VertexQualitiesParallel(ctx context.Context, m *mesh.Mesh, met Metric, workers int, sched parallel.Scheduler) ([]float64, error) {
	if _, err := s.globalSum(ctx, m, met, workers, sched); err != nil {
		return nil, err
	}
	return s.vert, nil
}

// Global is like the package-level Global but allocation-free after the
// scratch buffers have grown to the mesh's size.
func (s *Scratch) Global(m *mesh.Mesh, met Metric) float64 {
	g, _ := s.GlobalParallel(context.Background(), m, met, 1, nil)
	return g
}

// GlobalParallel is Global with the metric pass, the vertex-average pass,
// and the final reduction distributed across workers by sched (nil or
// workers <= 1 runs serially, inline, and never fails). Partial sums follow
// the fixed ReduceBlock tiling and are combined in block order, so the
// value is bit-identical to the serial Global at every worker count and
// schedule — the property that lets the sweep engines parallelize
// measurement without perturbing convergence.
func (s *Scratch) GlobalParallel(ctx context.Context, m *mesh.Mesh, met Metric, workers int, sched parallel.Scheduler) (float64, error) {
	sum, err := s.globalSum(ctx, m, met, workers, sched)
	if err != nil {
		return 0, err
	}
	nv := m.NumVerts()
	if nv == 0 {
		return 0, nil
	}
	return sum / float64(nv), nil
}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
