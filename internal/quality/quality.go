// Package quality implements the mesh quality metrics of the paper: the
// edge-length ratio of Knupp [7] (the metric the paper smooths with and the
// key that drives the RDR ordering), plus minimum-angle and aspect-ratio
// metrics used by the ablation studies.
//
// All metrics map a triangle to [0, 1], where 1 is the equilateral ideal.
// Vertex quality is the average metric over the triangles attached to the
// vertex; global quality is the average of all vertex qualities — exactly as
// §3.2 defines them.
package quality

import (
	"math"

	"lams/internal/geom"
	"lams/internal/mesh"
)

// Metric maps a triangle to a quality value in [0, 1].
type Metric interface {
	// Triangle returns the quality of triangle (a, b, c).
	Triangle(a, b, c geom.Point) float64
	// Name identifies the metric in reports.
	Name() string
}

// EdgeRatio is the edge-length ratio metric: the ratio of the shortest to
// the longest edge of the triangle. It is 1 for an equilateral triangle and
// approaches 0 as the triangle degenerates.
type EdgeRatio struct{}

// Name implements Metric.
func (EdgeRatio) Name() string { return "edge-length-ratio" }

// Triangle implements Metric.
func (EdgeRatio) Triangle(a, b, c geom.Point) float64 {
	e0 := a.Dist(b)
	e1 := b.Dist(c)
	e2 := c.Dist(a)
	lo := math.Min(e0, math.Min(e1, e2))
	hi := math.Max(e0, math.Max(e1, e2))
	if hi == 0 {
		return 0
	}
	return lo / hi
}

// MinAngle is the normalized minimum-angle metric: the smallest interior
// angle divided by 60 degrees.
type MinAngle struct{}

// Name implements Metric.
func (MinAngle) Name() string { return "min-angle" }

// Triangle implements Metric.
func (MinAngle) Triangle(a, b, c geom.Point) float64 {
	ang := func(p, q, r geom.Point) float64 {
		u, v := q.Sub(p), r.Sub(p)
		nu, nv := u.Norm(), v.Norm()
		if nu == 0 || nv == 0 {
			return 0
		}
		cos := u.Dot(v) / (nu * nv)
		cos = math.Max(-1, math.Min(1, cos))
		return math.Acos(cos)
	}
	m := math.Min(ang(a, b, c), math.Min(ang(b, c, a), ang(c, a, b)))
	return m / (math.Pi / 3)
}

// AspectRatio is the normalized area-to-edge metric
// 4*sqrt(3)*area / (sum of squared edge lengths), which is 1 for an
// equilateral triangle and 0 for a degenerate one.
type AspectRatio struct{}

// Name implements Metric.
func (AspectRatio) Name() string { return "aspect-ratio" }

// Triangle implements Metric.
func (AspectRatio) Triangle(a, b, c geom.Point) float64 {
	area := geom.TriangleArea(a, b, c)
	s := a.Dist2(b) + b.Dist2(c) + c.Dist2(a)
	if s == 0 {
		return 0
	}
	return 4 * math.Sqrt(3) * area / s
}

// TriangleQualities returns the metric value of every triangle.
func TriangleQualities(m *mesh.Mesh, met Metric) []float64 {
	out := make([]float64, m.NumTris())
	for i, tv := range m.Tris {
		out[i] = met.Triangle(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]])
	}
	return out
}

// VertexQualities returns the quality of every vertex: the average metric
// value of the triangles attached to it (§3.2).
func VertexQualities(m *mesh.Mesh, met Metric) []float64 {
	triQ := TriangleQualities(m, met)
	out := make([]float64, m.NumVerts())
	for v := int32(0); v < int32(m.NumVerts()); v++ {
		ts := m.VertTris(v)
		if len(ts) == 0 {
			continue
		}
		var s float64
		for _, t := range ts {
			s += triQ[t]
		}
		out[v] = s / float64(len(ts))
	}
	return out
}

// VertexQuality recomputes the quality of a single vertex from the current
// coordinates (used by incremental updates during smoothing).
func VertexQuality(m *mesh.Mesh, met Metric, v int32) float64 {
	ts := m.VertTris(v)
	if len(ts) == 0 {
		return 0
	}
	var s float64
	for _, t := range ts {
		tv := m.Tris[t]
		s += met.Triangle(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]])
	}
	return s / float64(len(ts))
}

// Global returns the mesh-wide quality: the average vertex quality (§3.2).
func Global(m *mesh.Mesh, met Metric) float64 {
	vq := VertexQualities(m, met)
	if len(vq) == 0 {
		return 0
	}
	var s float64
	for _, q := range vq {
		s += q
	}
	return s / float64(len(vq))
}

// Scratch holds reusable buffers for repeated quality evaluations, so a
// convergence loop that re-measures global quality every iteration does not
// reallocate two O(n) slices per sweep. The zero value is ready to use; a
// Scratch is not safe for concurrent use.
type Scratch struct {
	tri, vert []float64
}

// TriangleQualities is like the package-level TriangleQualities but writes
// into the scratch buffer. The result is valid until the next call on s.
func (s *Scratch) TriangleQualities(m *mesh.Mesh, met Metric) []float64 {
	s.tri = grow(s.tri, m.NumTris())
	for i, tv := range m.Tris {
		s.tri[i] = met.Triangle(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]])
	}
	return s.tri
}

// VertexQualities is like the package-level VertexQualities but writes into
// the scratch buffers. The result is valid until the next call on s.
func (s *Scratch) VertexQualities(m *mesh.Mesh, met Metric) []float64 {
	triQ := s.TriangleQualities(m, met)
	s.vert = grow(s.vert, m.NumVerts())
	for v := int32(0); v < int32(m.NumVerts()); v++ {
		ts := m.VertTris(v)
		if len(ts) == 0 {
			s.vert[v] = 0
			continue
		}
		var sum float64
		for _, t := range ts {
			sum += triQ[t]
		}
		s.vert[v] = sum / float64(len(ts))
	}
	return s.vert
}

// Global is like the package-level Global but allocation-free after the
// scratch buffers have grown to the mesh's size.
func (s *Scratch) Global(m *mesh.Mesh, met Metric) float64 {
	vq := s.VertexQualities(m, met)
	if len(vq) == 0 {
		return 0
	}
	var sum float64
	for _, q := range vq {
		sum += q
	}
	return sum / float64(len(vq))
}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
