package quality

import (
	"context"
	"fmt"
	"testing"

	"lams/internal/mesh"
	"lams/internal/parallel"
)

func genQualMesh(t testing.TB, n int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Generate("carabiner", n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func genQualTetMesh(t testing.TB, cells int) *mesh.TetMesh {
	t.Helper()
	m, err := mesh.GenerateTetCube(cells, cells, cells, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGlobalParallelEquivalence is the measurement-side determinism
// harness: for every built-in metric, every registered schedule, and
// workers 1–16, the parallel global quality and per-vertex qualities must
// be bit-identical to the serial Scratch pass, to the package-level
// functions, and to the boxed (interface-dispatch) pass. The mesh spans
// several ReduceBlock tiles, so the ordered reduction's block combination
// is actually exercised.
func TestGlobalParallelEquivalence(t *testing.T) {
	m := genQualMesh(t, 6000)
	ctx := context.Background()
	for _, met := range []Metric{EdgeRatio{}, MinAngle{}, AspectRatio{}} {
		var ref Scratch
		wantG := ref.Global(m, met)
		wantV := append([]float64(nil), ref.VertexQualities(m, met)...)
		if pkgG := Global(m, met); pkgG != wantG {
			t.Fatalf("%s: package Global = %v, Scratch.Global = %v (want bit-identical)", met.Name(), pkgG, wantG)
		}
		var boxed Scratch
		if bg := boxed.Global(m, BoxMetric(met)); bg != wantG {
			t.Fatalf("%s: boxed (interface-path) Global = %v, want bit-identical %v", met.Name(), bg, wantG)
		}
		for _, schedule := range parallel.Schedules() {
			for _, workers := range []int{1, 2, 4, 8, 16} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", met.Name(), schedule, workers), func(t *testing.T) {
					sched, err := parallel.SchedulerByName(schedule)
					if err != nil {
						t.Fatal(err)
					}
					var s Scratch
					g, err := s.GlobalParallel(ctx, m, met, workers, sched)
					if err != nil {
						t.Fatal(err)
					}
					if g != wantG {
						t.Errorf("GlobalParallel = %v, want bit-identical %v", g, wantG)
					}
					vq, err := s.VertexQualitiesParallel(ctx, m, met, workers, sched)
					if err != nil {
						t.Fatal(err)
					}
					for v := range wantV {
						if vq[v] != wantV[v] {
							t.Fatalf("vertex %d quality = %v, want bit-identical %v", v, vq[v], wantV[v])
						}
					}
				})
			}
		}
	}
}

// TestTetGlobalParallelEquivalence is the 3D twin of
// TestGlobalParallelEquivalence.
func TestTetGlobalParallelEquivalence(t *testing.T) {
	m := genQualTetMesh(t, 14) // 3375 verts, several ReduceBlock tiles
	ctx := context.Background()
	for _, met := range []TetMetric{MeanRatio3{}, EdgeRatio3{}} {
		var ref Scratch
		wantG := ref.TetGlobal(m, met)
		wantV := append([]float64(nil), ref.TetVertexQualities(m, met)...)
		if pkgG := TetGlobal(m, met); pkgG != wantG {
			t.Fatalf("%s: package TetGlobal = %v, Scratch.TetGlobal = %v (want bit-identical)", met.Name(), pkgG, wantG)
		}
		var boxed Scratch
		if bg := boxed.TetGlobal(m, BoxTetMetric(met)); bg != wantG {
			t.Fatalf("%s: boxed (interface-path) TetGlobal = %v, want bit-identical %v", met.Name(), bg, wantG)
		}
		for _, schedule := range parallel.Schedules() {
			for _, workers := range []int{1, 2, 4, 8, 16} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", met.Name(), schedule, workers), func(t *testing.T) {
					sched, err := parallel.SchedulerByName(schedule)
					if err != nil {
						t.Fatal(err)
					}
					var s Scratch
					g, err := s.TetGlobalParallel(ctx, m, met, workers, sched)
					if err != nil {
						t.Fatal(err)
					}
					if g != wantG {
						t.Errorf("TetGlobalParallel = %v, want bit-identical %v", g, wantG)
					}
					vq, err := s.TetVertexQualitiesParallel(ctx, m, met, workers, sched)
					if err != nil {
						t.Fatal(err)
					}
					for v := range wantV {
						if vq[v] != wantV[v] {
							t.Fatalf("vertex %d quality = %v, want bit-identical %v", v, vq[v], wantV[v])
						}
					}
				})
			}
		}
	}
}

// TestGlobalParallelMixedDimensions reuses one Scratch alternately for 2D
// and 3D parallel measurements — the shape lamsd's pooled engines see when
// one Smoother serves both mesh kinds — and checks neither leaks state
// into the other.
func TestGlobalParallelMixedDimensions(t *testing.T) {
	m2 := genQualMesh(t, 2500)
	m3 := genQualTetMesh(t, 9)
	ctx := context.Background()
	var ref Scratch
	want2 := ref.Global(m2, EdgeRatio{})
	want3 := ref.TetGlobal(m3, MeanRatio3{})
	sched, err := parallel.SchedulerByName(parallel.ScheduleStealing)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for i := 0; i < 3; i++ {
		g2, err := s.GlobalParallel(ctx, m2, EdgeRatio{}, 8, sched)
		if err != nil {
			t.Fatal(err)
		}
		if g2 != want2 {
			t.Fatalf("round %d: 2D quality = %v, want %v", i, g2, want2)
		}
		g3, err := s.TetGlobalParallel(ctx, m3, MeanRatio3{}, 8, sched)
		if err != nil {
			t.Fatal(err)
		}
		if g3 != want3 {
			t.Fatalf("round %d: 3D quality = %v, want %v", i, g3, want3)
		}
	}
}

// TestGlobalParallelCancellation checks a canceled context surfaces as
// ctx.Err() from the parallel pass.
func TestGlobalParallelCancellation(t *testing.T) {
	m := genQualMesh(t, 2000)
	sched, err := parallel.SchedulerByName(parallel.ScheduleStatic)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var s Scratch
	if _, err := s.GlobalParallel(ctx, m, EdgeRatio{}, 4, sched); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestGlobalParallelSteadyStateAllocs pins the parallel measurement pass's
// steady-state allocation budget: after the scratch buffers have grown and
// the pass bodies are prebuilt, repeated parallel measurements must stay at
// (essentially) zero allocations — the property that keeps the converge
// loop's steady state at today's near-zero overall budget.
func TestGlobalParallelSteadyStateAllocs(t *testing.T) {
	m := genQualMesh(t, 6000)
	m3 := genQualTetMesh(t, 12)
	ctx := context.Background()
	for _, schedule := range parallel.Schedules() {
		t.Run(schedule, func(t *testing.T) {
			sched, err := parallel.SchedulerByName(schedule)
			if err != nil {
				t.Fatal(err)
			}
			var s Scratch
			if _, err := s.GlobalParallel(ctx, m, EdgeRatio{}, 8, sched); err != nil {
				t.Fatal(err)
			}
			if _, err := s.TetGlobalParallel(ctx, m3, MeanRatio3{}, 8, sched); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := s.GlobalParallel(ctx, m, EdgeRatio{}, 8, sched); err != nil {
					t.Fatal(err)
				}
				if _, err := s.TetGlobalParallel(ctx, m3, MeanRatio3{}, 8, sched); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Errorf("schedule %s: %.0f allocs per steady-state 2D+3D parallel measurement, want <= 2", schedule, allocs)
			}
		})
	}
}

// TestGlobalParallelRaceStress hammers the parallel quality passes under
// the stealing schedule with oversubscribed workers — the CI -race leg runs
// this repeatedly so steal interleavings that partition the block range
// differently every time get their chances to trip the detector. Values
// must stay bit-identical throughout.
func TestGlobalParallelRaceStress(t *testing.T) {
	m := genQualMesh(t, 4000)
	m3 := genQualTetMesh(t, 10)
	ctx := context.Background()
	sched, err := parallel.SchedulerByName(parallel.ScheduleStealing)
	if err != nil {
		t.Fatal(err)
	}
	var ref Scratch
	want2 := ref.Global(m, EdgeRatio{})
	want3 := ref.TetGlobal(m3, MeanRatio3{})
	var s Scratch
	for i := 0; i < 30; i++ {
		g2, err := s.GlobalParallel(ctx, m, EdgeRatio{}, 16, sched)
		if err != nil {
			t.Fatal(err)
		}
		if g2 != want2 {
			t.Fatalf("round %d: 2D quality = %v, want bit-identical %v", i, g2, want2)
		}
		g3, err := s.TetGlobalParallel(ctx, m3, MeanRatio3{}, 16, sched)
		if err != nil {
			t.Fatal(err)
		}
		if g3 != want3 {
			t.Fatalf("round %d: 3D quality = %v, want bit-identical %v", i, g3, want3)
		}
	}
}
