package quality

import (
	"math"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
)

// regularTet returns the vertices of a regular tetrahedron with unit edges,
// positively oriented.
func regularTet() [4]geom.Point3 {
	h := math.Sqrt(3) / 2
	pts := [4]geom.Point3{
		{X: 0, Y: 0, Z: 0},
		{X: 1, Y: 0, Z: 0},
		{X: 0.5, Y: h, Z: 0},
		{X: 0.5, Y: math.Sqrt(3) / 6, Z: math.Sqrt(2.0 / 3.0)},
	}
	if geom.Orient3D(pts[0], pts[1], pts[2], pts[3]) != geom.CounterClockwise {
		pts[1], pts[2] = pts[2], pts[1]
	}
	return pts
}

func TestTetMetricsNormalization(t *testing.T) {
	reg := regularTet()
	for _, met := range []TetMetric{MeanRatio3{}, EdgeRatio3{}} {
		if q := met.Tet(reg[0], reg[1], reg[2], reg[3]); math.Abs(q-1) > 1e-12 {
			t.Errorf("%s(regular tet) = %v, want 1", met.Name(), q)
		}
		// A squashed tet scores strictly between 0 and 1.
		squash := reg[3]
		squash.Z *= 0.2
		q := met.Tet(reg[0], reg[1], reg[2], squash)
		if q <= 0 || q >= 1 {
			t.Errorf("%s(squashed tet) = %v, want in (0,1)", met.Name(), q)
		}
		if met.Name() == "" {
			t.Error("metric has empty name")
		}
	}
}

func TestMeanRatio3DegenerateIsZero(t *testing.T) {
	reg := regularTet()
	// Flat tet: the volume term zeroes the mean ratio. (EdgeRatio3, like its
	// 2D namesake, is deliberately blind to flatness — it only sees edges.)
	if q := (MeanRatio3{}).Tet(reg[0], reg[1], reg[2], geom.Midpoint3(reg[0], reg[1])); q != 0 {
		t.Errorf("mean ratio of flat tet = %v, want 0", q)
	}
	// Swapping two vertices inverts the orientation.
	if q := (MeanRatio3{}).Tet(reg[0], reg[2], reg[1], reg[3]); q != 0 {
		t.Errorf("mean ratio of inverted tet = %v, want 0", q)
	}
	// EdgeRatio3 is orientation-blind by design.
	if q := (EdgeRatio3{}).Tet(reg[0], reg[2], reg[1], reg[3]); math.Abs(q-1) > 1e-12 {
		t.Errorf("edge ratio of inverted regular tet = %v, want 1", q)
	}
}

func TestMeanRatio3ScaleInvariant(t *testing.T) {
	reg := regularTet()
	for _, s := range []float64{0.01, 3, 1000} {
		q := (MeanRatio3{}).Tet(reg[0].Scale(s), reg[1].Scale(s), reg[2].Scale(s), reg[3].Scale(s))
		if math.Abs(q-1) > 1e-9 {
			t.Errorf("scale %g: mean ratio = %v, want 1", s, q)
		}
	}
}

func TestTetAggregation(t *testing.T) {
	m, err := mesh.GenerateTetCube(3, 3, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	met := MeanRatio3{}
	tq := TetQualities(m, met)
	if len(tq) != m.NumTets() {
		t.Fatalf("tet qualities length %d", len(tq))
	}
	for i, q := range tq {
		if q <= 0 || q > 1 {
			t.Fatalf("tet %d quality %v outside (0,1]", i, q)
		}
	}
	vq := TetVertexQualities(m, met)
	if len(vq) != m.NumVerts() {
		t.Fatalf("vertex qualities length %d", len(vq))
	}
	// Spot check one vertex against the single-vertex recomputation.
	for _, v := range []int32{0, int32(m.NumVerts() / 2), int32(m.NumVerts() - 1)} {
		if got, want := TetVertexQuality(m, met, v), vq[v]; got != want {
			t.Errorf("vertex %d quality %v != bulk %v", v, got, want)
		}
	}
	g := TetGlobal(m, met)
	if g <= 0 || g > 1 {
		t.Errorf("global quality %v", g)
	}
	var sum float64
	for _, q := range vq {
		sum += q
	}
	if math.Abs(g-sum/float64(len(vq))) > 1e-15 {
		t.Errorf("global %v is not the mean vertex quality", g)
	}
}

func TestTetScratchMatchesPackageLevel(t *testing.T) {
	m, err := mesh.GenerateTetCube(3, 2, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	met := MeanRatio3{}
	if got, want := s.TetGlobal(m, met), TetGlobal(m, met); got != want {
		t.Errorf("scratch global %v != %v", got, want)
	}
	a := s.TetVertexQualities(m, met)
	b := TetVertexQualities(m, met)
	for i := range b {
		if a[i] != b[i] {
			t.Fatalf("vertex %d scratch quality differs", i)
		}
	}
	// The scratch also still serves 2D meshes afterwards (shared buffers).
	m2, err := mesh.Generate("carabiner", 300)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Global(m2, EdgeRatio{}), Global(m2, EdgeRatio{}); got != want {
		t.Errorf("2D scratch global after tet use: %v != %v", got, want)
	}
}
