package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lams/internal/geom"
	"lams/internal/mesh"
)

var equilateral = [3]geom.Point{
	{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0.5, Y: math.Sqrt(3) / 2},
}

func TestMetricsEquilateral(t *testing.T) {
	for _, met := range []Metric{EdgeRatio{}, MinAngle{}, AspectRatio{}} {
		got := met.Triangle(equilateral[0], equilateral[1], equilateral[2])
		if math.Abs(got-1) > 1e-12 {
			t.Errorf("%s(equilateral) = %v, want 1", met.Name(), got)
		}
	}
}

func TestMetricsDegenerate(t *testing.T) {
	a, b, c := geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 2, Y: 0}
	for _, met := range []Metric{MinAngle{}, AspectRatio{}} {
		if got := met.Triangle(a, b, c); got != 0 {
			t.Errorf("%s(collinear) = %v, want 0", met.Name(), got)
		}
	}
	// Edge ratio of a collinear "triangle" is still min/max edge length;
	// the degenerate zero-size case is the one that must not divide by 0.
	if got := (EdgeRatio{}).Triangle(a, a, a); got != 0 {
		t.Errorf("EdgeRatio(point) = %v", got)
	}
	if got := (AspectRatio{}).Triangle(a, a, a); got != 0 {
		t.Errorf("AspectRatio(point) = %v", got)
	}
	if got := (MinAngle{}).Triangle(a, a, a); got != 0 {
		t.Errorf("MinAngle(point) = %v", got)
	}
}

func TestEdgeRatioKnown(t *testing.T) {
	// Right isoceles with legs 1: edges 1, 1, sqrt2 -> ratio 1/sqrt2.
	got := (EdgeRatio{}).Triangle(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 0, Y: 1})
	want := 1 / math.Sqrt2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("edge ratio = %v, want %v", got, want)
	}
}

func TestMinAngleKnown(t *testing.T) {
	// Right isoceles: min angle 45 degrees -> 45/60 = 0.75.
	got := (MinAngle{}).Triangle(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 0, Y: 1})
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("min angle = %v, want 0.75", got)
	}
}

func TestMetricsInUnitRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(12))}
	for _, met := range []Metric{EdgeRatio{}, MinAngle{}, AspectRatio{}} {
		met := met
		f := func(ax, ay, bx, by, cx, cy float32) bool {
			q := met.Triangle(
				geom.Point{X: float64(ax), Y: float64(ay)},
				geom.Point{X: float64(bx), Y: float64(by)},
				geom.Point{X: float64(cx), Y: float64(cy)},
			)
			return q >= 0 && q <= 1+1e-9
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", met.Name(), err)
		}
	}
}

// fanMesh builds a regular fan (center + ring) whose triangles are all
// congruent, so every quality is identical and easy to check.
func fanMesh(t *testing.T, n int) *mesh.Mesh {
	t.Helper()
	pts := []geom.Point{{X: 0, Y: 0}}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts = append(pts, geom.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	var tris [][3]int32
	for i := 0; i < n; i++ {
		tris = append(tris, [3]int32{0, int32(1 + i), int32(1 + (i+1)%n)})
	}
	m, err := mesh.New(pts, tris)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVertexAndGlobalQuality(t *testing.T) {
	m := fanMesh(t, 6)
	met := EdgeRatio{}
	tq := TriangleQualities(m, met)
	// Hexagonal fan triangles are equilateral.
	for i, q := range tq {
		if math.Abs(q-1) > 1e-9 {
			t.Errorf("triangle %d quality %v", i, q)
		}
	}
	vq := VertexQualities(m, met)
	for v, q := range vq {
		if math.Abs(q-1) > 1e-9 {
			t.Errorf("vertex %d quality %v", v, q)
		}
		if got := VertexQuality(m, met, int32(v)); math.Abs(got-q) > 1e-12 {
			t.Errorf("VertexQuality(%d) = %v, VertexQualities = %v", v, got, q)
		}
	}
	if g := Global(m, met); math.Abs(g-1) > 1e-9 {
		t.Errorf("global = %v", g)
	}
}

func TestVertexQualityIsTriangleAverage(t *testing.T) {
	m := fanMesh(t, 5) // pentagon fan: not equilateral
	met := EdgeRatio{}
	tq := TriangleQualities(m, met)
	vq := VertexQualities(m, met)
	// Center vertex touches all triangles.
	var want float64
	for _, q := range tq {
		want += q
	}
	want /= float64(len(tq))
	if math.Abs(vq[0]-want) > 1e-12 {
		t.Errorf("center quality %v, want %v", vq[0], want)
	}
	// Ring vertex 1 touches triangles 0 and n-1.
	want = (tq[0] + tq[len(tq)-1]) / 2
	if math.Abs(vq[1]-want) > 1e-12 {
		t.Errorf("ring quality %v, want %v", vq[1], want)
	}
}

func TestGlobalIsVertexAverage(t *testing.T) {
	m := fanMesh(t, 7)
	met := AspectRatio{}
	vq := VertexQualities(m, met)
	var want float64
	for _, q := range vq {
		want += q
	}
	want /= float64(len(vq))
	if got := Global(m, met); math.Abs(got-want) > 1e-12 {
		t.Errorf("global = %v, want %v", got, want)
	}
}

func TestMetricNames(t *testing.T) {
	if (EdgeRatio{}).Name() != "edge-length-ratio" ||
		(MinAngle{}).Name() != "min-angle" ||
		(AspectRatio{}).Name() != "aspect-ratio" {
		t.Error("metric name mismatch")
	}
}
