package quality

import (
	"context"

	"lams/internal/parallel"
)

// One dimension-generic element-range pass: every global / per-vertex
// quality evaluation — triangles or tetrahedra, interface dispatch or the
// SoA fast path — is the same two-stage pipeline: a per-element metric fill
// into s.tri, then a CSR vertex-average pass into s.vert folded by the
// ordered blocked reduction. The dimension-specific pieces are only the
// devirtualized element-range bodies (triRange/triRangeSoA in quality.go,
// tetRange/tetRangeSoA in tet.go); the orchestration lives here once, so
// the 2D and 3D entry points cannot drift apart.

// passKind selects the staged pass's element-range body.
type passKind uint8

const (
	passNone passKind = iota
	passTri
	passTriSoA
	passTet
	passTetSoA
)

// endPass clears the staged descriptor so a parked Scratch does not pin the
// last-measured mesh.
func (s *Scratch) endPass() {
	s.pkind = passNone
	s.pm, s.pmet = nil, nil
	s.ptm, s.ptmt = nil, nil
	s.px, s.py, s.pz = nil, nil, nil
	s.pstart, s.plist = nil, nil
}

// elemRange dispatches elements [lo, hi) to the staged pass's range body.
// The dispatch happens once per chunk, not per element, so the devirtualized
// inner loops run unperturbed.
func (s *Scratch) elemRange(lo, hi int) {
	switch s.pkind {
	case passTri:
		s.triRange(s.pm, s.pmet, lo, hi)
	case passTriSoA:
		s.triRangeSoA(s.pm, s.px, s.py, lo, hi)
	case passTet:
		s.tetRange(s.ptm, s.ptmt, lo, hi)
	case passTetSoA:
		s.tetRangeSoA(s.ptm, s.px, s.py, s.pz, lo, hi)
	}
}

// vertAvgRange fills s.vert for vertices [lo, hi) from the element
// qualities in s.tri and returns their left-to-right quality sum — one
// block of the ordered global reduction. It reads only the staged CSR
// incidence, so the same loop serves both dimensions. The CSR loads are
// hoisted out of the loop.
func (s *Scratch) vertAvgRange(lo, hi int) float64 {
	elemQ, vert := s.tri, s.vert
	start, list := s.pstart, s.plist
	var sum float64
	for v := lo; v < hi; v++ {
		a, b := start[v], start[v+1]
		if a == b {
			vert[v] = 0
			continue
		}
		var q float64
		for _, t := range list[a:b] {
			q += elemQ[t]
		}
		q /= float64(b - a)
		vert[v] = q
		sum += q
	}
	return sum
}

// passSum runs the staged pass's two stages over ne elements and nv
// vertices and returns the blocked sum of the vertex qualities, clearing
// the descriptor on exit. With a scheduler and workers > 1 both stages and
// the reduction run in parallel; the result is bit-identical to the serial
// pass because every per-element value is independent and the reduction
// granularity is fixed (see parallel.OrderedReducer). The bodies handed to
// the scheduler are prebuilt one-time closures over the receiver, so
// steady-state parallel passes allocate nothing.
func (s *Scratch) passSum(ctx context.Context, ne, nv, workers int, sched parallel.Scheduler) (float64, error) {
	defer s.endPass()
	s.tri = grow(s.tri, ne)
	s.vert = grow(s.vert, nv)
	if sched == nil || workers <= 1 {
		s.elemRange(0, ne)
		var total float64
		for b := 0; b < parallel.ReduceBlocks(nv); b++ {
			span := parallel.BlockSpan(nv, b)
			total += s.vertAvgRange(span.Lo, span.Hi)
		}
		return total, nil
	}
	if s.elemBody == nil {
		s.elemBody = func(_ int, c parallel.Chunk) { s.elemRange(c.Lo, c.Hi) }
	}
	if s.avgBody == nil {
		s.avgBody = func(_, _ int, span parallel.Chunk) float64 { return s.vertAvgRange(span.Lo, span.Hi) }
	}
	err := sched.Run(ctx, ne, workers, s.elemBody)
	var total float64
	if err == nil {
		total, err = s.red.Reduce(ctx, sched, nv, workers, s.avgBody)
	}
	return total, err
}
