package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"lams/internal/geom"
)

func TestTriangulateTriangle(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	tn, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tn.Triangles) != 1 {
		t.Fatalf("got %d triangles, want 1", len(tn.Triangles))
	}
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTriangulateSquare(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	tn, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tn.Triangles) != 2 {
		t.Fatalf("got %d triangles, want 2", len(tn.Triangles))
	}
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}); err == nil {
		t.Error("two points should fail")
	}
	if _, err := Triangulate([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 0}}); err == nil {
		t.Error("duplicate points should fail")
	}
}

func TestTriangulateGrid(t *testing.T) {
	// A perfect grid is maximally degenerate (cocircular quads everywhere);
	// the exact predicates must keep the structure consistent.
	var pts []geom.Point
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	tn, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
	// Euler: for n points with h on the convex hull, triangles = 2n-2-h.
	n, h := 64, 28
	if want := 2*n - 2 - h; len(tn.Triangles) != want {
		t.Errorf("grid triangles = %d, want %d", len(tn.Triangles), want)
	}
}

func TestTriangulateCocircular(t *testing.T) {
	// Points on a circle plus center: every triangle has cocircular
	// neighbors.
	pts := []geom.Point{{X: 0, Y: 0}}
	for i := 0; i < 12; i++ {
		a := 2 * math.Pi * float64(i) / 12
		pts = append(pts, geom.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	tn, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tn.Triangles) != 12 {
		t.Errorf("fan should have 12 triangles, got %d", len(tn.Triangles))
	}
}

func TestTriangulateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(500)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		tn, err := Triangulate(pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tn.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(tn.Points) != n {
			t.Fatalf("trial %d: point count changed", trial)
		}
	}
}

func TestTriangulationCoversHull(t *testing.T) {
	// The triangle areas must sum to the convex hull area.
	rng := rand.New(rand.NewSource(8))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	tn, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tv := range tn.Triangles {
		sum += geom.TriangleArea(tn.Points[tv[0]], tn.Points[tv[1]], tn.Points[tv[2]])
	}
	hull := hullArea(pts)
	if math.Abs(sum-hull) > 1e-9*hull {
		t.Errorf("triangle area sum %v != hull area %v", sum, hull)
	}
}

// hullArea computes the convex hull area by the monotone chain algorithm.
func hullArea(pts []geom.Point) float64 {
	sorted := append([]geom.Point(nil), pts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && (sorted[j].X < sorted[j-1].X ||
			(sorted[j].X == sorted[j-1].X && sorted[j].Y < sorted[j-1].Y)); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	build := func(pts []geom.Point) []geom.Point {
		var h []geom.Point
		for _, p := range pts {
			for len(h) >= 2 && geom.Orient2DValue(h[len(h)-2], h[len(h)-1], p) <= 0 {
				h = h[:len(h)-1]
			}
			h = append(h, p)
		}
		return h
	}
	lower := build(sorted)
	upper := build(reversed(sorted))
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return geom.Polygon(hull).Area()
}

func reversed(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[len(pts)-1-i] = p
	}
	return out
}

func TestTriangulateAllPointsUsedOnHullInterior(t *testing.T) {
	// Every input point must be a vertex of some triangle (no point is
	// swallowed), for a generic point set.
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
	}
	tn, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	used := make([]bool, len(pts))
	for _, tv := range tn.Triangles {
		used[tv[0]], used[tv[1]], used[tv[2]] = true, true, true
	}
	for i, u := range used {
		if !u {
			t.Errorf("point %d unused", i)
		}
	}
}

func BenchmarkTriangulate10k(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	pts := make([]geom.Point, 10000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Triangulate(pts); err != nil {
			b.Fatal(err)
		}
	}
}
