// Package delaunay implements an incremental Bowyer–Watson Delaunay
// triangulator for point sets in the plane. It stands in for Shewchuk's
// Triangle [15] in the paper's pipeline: given the boundary and interior
// points of a domain it produces an unstructured triangulation whose vertex
// numbering is the order in which the points were supplied ("ORI", the
// original ordering of the mesh creation algorithm).
//
// Internally points are inserted in Hilbert-curve order so that the
// walk-based point location runs in near-constant amortized time, but the
// triangulation output preserves the caller's point numbering.
package delaunay

import (
	"fmt"
	"sort"

	"lams/internal/geom"
)

// Triangulation is the result of triangulating a point set: a list of
// triangles, each a triple of indices into the input point slice, in
// counterclockwise orientation.
type Triangulation struct {
	Points    []geom.Point
	Triangles [][3]int32
}

const noTri = int32(-1)

// tri is one triangle of the working triangulation. Edge k is the edge
// opposite vertex k, i.e. (v[(k+1)%3], v[(k+2)%3]); adj[k] is the neighbor
// across that edge, or noTri on the hull.
type tri struct {
	v    [3]int32
	adj  [3]int32
	dead bool
}

type triangulator struct {
	pts   []geom.Point // input points + 3 super-triangle points appended
	tris  []tri
	free  []int32 // recycled triangle slots
	last  int32   // most recently created triangle, walk start hint
	cav   []int32 // scratch: cavity triangles
	stack []int32 // scratch: cavity BFS stack
	edges []cavityEdge
}

type cavityEdge struct {
	a, b int32 // boundary edge of the cavity (ccw around cavity)
	out  int32 // triangle outside the cavity across (a,b), or noTri
	nt   int32 // new triangle built on this edge (filled in pass 2)
}

// Triangulate computes the Delaunay triangulation of pts. Duplicate points
// are rejected with an error, as are inputs with fewer than 3 points or with
// all points collinear.
func Triangulate(pts []geom.Point) (*Triangulation, error) {
	if len(pts) < 3 {
		return nil, fmt.Errorf("delaunay: need at least 3 points, got %d", len(pts))
	}
	if dup := findDuplicate(pts); dup >= 0 {
		return nil, fmt.Errorf("delaunay: duplicate point at index %d: %v", dup, pts[dup])
	}

	t := &triangulator{}
	t.init(pts)

	// Insert in Hilbert order for fast walking location.
	order := insertionOrder(pts)
	for _, idx := range order {
		if err := t.insert(int32(idx)); err != nil {
			return nil, err
		}
	}

	return t.extract(), nil
}

func findDuplicate(pts []geom.Point) int {
	seen := make(map[geom.Point]struct{}, len(pts))
	for i, p := range pts {
		if _, ok := seen[p]; ok {
			return i
		}
		seen[p] = struct{}{}
	}
	return -1
}

func insertionOrder(pts []geom.Point) []int {
	keys := geom.HilbertSortKeys(pts, 16)
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	return order
}

// init builds the super-triangle enclosing all points. Its vertices get the
// three indices just past the real points.
func (t *triangulator) init(pts []geom.Point) {
	n := len(pts)
	b := geom.BoundsOf(pts)
	c := b.Center()
	r := b.Width() + b.Height()
	if r == 0 {
		r = 1
	}
	r *= 1e4 // far enough that super-edges never interfere with the hull

	t.pts = make([]geom.Point, n, n+3)
	copy(t.pts, pts)
	t.pts = append(t.pts,
		geom.Point{X: c.X - 3*r, Y: c.Y - r},
		geom.Point{X: c.X + 3*r, Y: c.Y - r},
		geom.Point{X: c.X, Y: c.Y + 3*r},
	)
	s0, s1, s2 := int32(n), int32(n+1), int32(n+2)
	t.tris = append(t.tris, tri{v: [3]int32{s0, s1, s2}, adj: [3]int32{noTri, noTri, noTri}})
	t.last = 0
}

// locate walks from the hint triangle toward p and returns a triangle whose
// closed interior contains p.
func (t *triangulator) locate(p geom.Point) (int32, error) {
	cur := t.last
	if cur < 0 || int(cur) >= len(t.tris) || t.tris[cur].dead {
		cur = t.anyLive()
	}
	// Bounded walk; on a Delaunay triangulation with spatially sorted
	// insertions the walk is short. The bound guards against cycles caused
	// by degenerate input.
	rng := uint32(12345)
	for steps := 0; steps < 4*len(t.tris)+64; steps++ {
		tr := &t.tris[cur]
		// Move across an edge that has p strictly on its outside. The edge
		// probe order rotates pseudo-randomly each step; a fixed order can
		// cycle on co-circular configurations (the classic fix for the
		// straight walk).
		rng = rng*1664525 + 1013904223
		start := int(rng % 3)
		moved := false
		for j := 0; j < 3; j++ {
			k := (start + j) % 3
			va, vb := tr.v[(k+1)%3], tr.v[(k+2)%3]
			if geom.Orient2D(t.pts[va], t.pts[vb], p) == geom.Clockwise {
				if tr.adj[k] == noTri {
					return noTri, fmt.Errorf("delaunay: walked off hull at %v", p)
				}
				cur = tr.adj[k]
				moved = true
				break
			}
		}
		if !moved {
			return cur, nil
		}
	}
	return noTri, fmt.Errorf("delaunay: point location did not terminate at %v", p)
}

func (t *triangulator) anyLive() int32 {
	for i := len(t.tris) - 1; i >= 0; i-- {
		if !t.tris[i].dead {
			return int32(i)
		}
	}
	return noTri
}

// insert adds point pi to the triangulation (Bowyer–Watson).
func (t *triangulator) insert(pi int32) error {
	p := t.pts[pi]
	seed, err := t.locate(p)
	if err != nil {
		return err
	}

	// Grow the cavity: all triangles whose circumcircle strictly contains p.
	t.cav = t.cav[:0]
	t.stack = append(t.stack[:0], seed)
	inCav := map[int32]bool{seed: true}
	for len(t.stack) > 0 {
		cur := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.cav = append(t.cav, cur)
		for _, nb := range t.tris[cur].adj {
			if nb == noTri || inCav[nb] {
				continue
			}
			tr := &t.tris[nb]
			if geom.InCircle(t.pts[tr.v[0]], t.pts[tr.v[1]], t.pts[tr.v[2]], p) == geom.CounterClockwise {
				inCav[nb] = true
				t.stack = append(t.stack, nb)
			}
		}
	}

	// Collect the cavity boundary edges, oriented counterclockwise as seen
	// from inside the cavity.
	t.edges = t.edges[:0]
	for _, ci := range t.cav {
		tr := &t.tris[ci]
		for k := 0; k < 3; k++ {
			nb := tr.adj[k]
			if nb != noTri && inCav[nb] {
				continue
			}
			a := tr.v[(k+1)%3]
			b := tr.v[(k+2)%3]
			t.edges = append(t.edges, cavityEdge{a: a, b: b, out: nb})
		}
	}
	if len(t.edges) < 3 {
		return fmt.Errorf("delaunay: degenerate cavity (%d edges) inserting point %d", len(t.edges), pi)
	}

	// Kill cavity triangles and recycle their slots.
	for _, ci := range t.cav {
		t.tris[ci].dead = true
		t.free = append(t.free, ci)
	}

	// Build the fan of new triangles (p, a, b) and link external adjacency.
	for i := range t.edges {
		e := &t.edges[i]
		nt := t.alloc(tri{v: [3]int32{pi, e.a, e.b}, adj: [3]int32{e.out, noTri, noTri}})
		e.nt = nt
		if e.out != noTri {
			t.linkAcross(e.out, e.a, e.b, nt)
		}
	}
	// Link the fan triangles to each other: triangle on edge (a,b) neighbors
	// the fan triangle whose edge starts at b (across edge opposite vertex a,
	// local index 1... edge 2 is (v0,v1) = (p,a), edge 1 is (v2,v0) = (b,p)).
	next := make(map[int32]int32, len(t.edges)) // a -> fan triangle with edge (a, b)
	for i := range t.edges {
		next[t.edges[i].a] = t.edges[i].nt
	}
	for i := range t.edges {
		e := &t.edges[i]
		// Neighbor across edge (b, p) of e.nt is the fan triangle starting at b.
		nb, ok := next[e.b]
		if !ok {
			return fmt.Errorf("delaunay: cavity boundary not a closed loop at point %d", pi)
		}
		t.tris[e.nt].adj[1] = nb // edge 1 of (p,a,b) is (b,p)
		t.tris[nb].adj[2] = e.nt // edge 2 of (p,b,c) is (p,b)
	}
	t.last = t.edges[0].nt
	return nil
}

// linkAcross sets the adjacency of triangle out across edge (a,b) to nt.
func (t *triangulator) linkAcross(out, a, b, nt int32) {
	tr := &t.tris[out]
	for k := 0; k < 3; k++ {
		va := tr.v[(k+1)%3]
		vb := tr.v[(k+2)%3]
		if (va == a && vb == b) || (va == b && vb == a) {
			tr.adj[k] = nt
			return
		}
	}
}

func (t *triangulator) alloc(tr tri) int32 {
	if n := len(t.free); n > 0 {
		idx := t.free[n-1]
		t.free = t.free[:n-1]
		t.tris[idx] = tr
		return idx
	}
	t.tris = append(t.tris, tr)
	return int32(len(t.tris) - 1)
}

// extract drops dead triangles and triangles incident to the super-triangle
// and returns the final triangulation over the original points.
func (t *triangulator) extract() *Triangulation {
	n := int32(len(t.pts) - 3)
	out := &Triangulation{Points: t.pts[:n]}
	for i := range t.tris {
		tr := &t.tris[i]
		if tr.dead || tr.v[0] >= n || tr.v[1] >= n || tr.v[2] >= n {
			continue
		}
		out.Triangles = append(out.Triangles, tr.v)
	}
	return out
}

// Validate checks structural invariants of the triangulation: all indices in
// range, counterclockwise orientation, no zero-area triangles, and the
// Delaunay empty-circumcircle property against each triangle's edge-adjacent
// opposite vertices.
func (tn *Triangulation) Validate() error {
	n := int32(len(tn.Points))
	type edge struct{ a, b int32 }
	opposite := make(map[edge]int32, 3*len(tn.Triangles))
	for ti, tv := range tn.Triangles {
		for k := 0; k < 3; k++ {
			if tv[k] < 0 || tv[k] >= n {
				return fmt.Errorf("delaunay: triangle %d vertex %d out of range", ti, tv[k])
			}
		}
		a, b, c := tn.Points[tv[0]], tn.Points[tv[1]], tn.Points[tv[2]]
		if geom.Orient2D(a, b, c) != geom.CounterClockwise {
			return fmt.Errorf("delaunay: triangle %d not counterclockwise", ti)
		}
		for k := 0; k < 3; k++ {
			va, vb := tv[(k+1)%3], tv[(k+2)%3]
			opposite[edge{va, vb}] = tv[k]
		}
	}
	// Delaunay check: for each interior edge (a,b) with opposite vertices c
	// and d, d must not lie strictly inside circumcircle(a,b,c).
	for e, c := range opposite {
		d, ok := opposite[edge{e.b, e.a}]
		if !ok {
			continue // hull edge
		}
		if geom.InCircle(tn.Points[e.a], tn.Points[e.b], tn.Points[c], tn.Points[d]) == geom.CounterClockwise {
			return fmt.Errorf("delaunay: edge (%d,%d) violates empty circumcircle", e.a, e.b)
		}
	}
	return nil
}
