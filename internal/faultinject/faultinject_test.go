package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestNilSetNeverFires(t *testing.T) {
	var s *Set
	for i := 0; i < 3; i++ {
		if err := s.Fire("anything"); err != nil {
			t.Fatalf("nil set fired: %v", err)
		}
	}
	if got := s.Hits("anything"); got != 0 {
		t.Fatalf("nil set counted hits: %d", got)
	}
	s.ArmAfter("x", 1) // must not panic
	s.ArmProb("x", 0.5, 1)
	s.Disarm("x")
}

func TestUnarmedPointPasses(t *testing.T) {
	s := New()
	if err := s.Fire("p"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if got := s.Hits("p"); got != 0 {
		// hits are only tracked once the point exists in the map
		t.Logf("hits on unknown point: %d", got)
	}
}

func TestArmAfterFiresOnceOnNthHit(t *testing.T) {
	s := New()
	s.ArmAfter("p", 3)
	for i := 1; i <= 5; i++ {
		err := s.Fire("p")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
	if got := s.Fired("p"); got != 1 {
		t.Fatalf("fired count = %d, want 1", got)
	}
	if got := s.Hits("p"); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
}

func TestArmAfterCountsFromCurrentHit(t *testing.T) {
	s := New()
	s.ArmAfter("p", 1)
	if err := s.Fire("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected, got %v", err)
	}
	// re-arm after some traffic: fires on the next hit, not an absolute index
	_ = s.Fire("p")
	s.ArmAfter("p", 1)
	if err := s.Fire("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-armed point did not fire: %v", err)
	}
}

func TestArmProbDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		s := New()
		s.ArmProb("p", 0.3, seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Fire("p") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.3 over %d hits fired %d times; arming looks broken", len(a), fired)
	}
}

func TestDisarm(t *testing.T) {
	s := New()
	s.ArmAfter("p", 1)
	s.Disarm("p")
	if err := s.Fire("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("snapshot.write=2, journal.append=p0.5:7")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := s.Fire(PointSnapshotWrite); err != nil {
		t.Fatalf("first hit fired early: %v", err)
	}
	if err := s.Fire(PointSnapshotWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("second hit did not fire: %v", err)
	}
	fired := false
	for i := 0; i < 32; i++ {
		if s.Fire(PointJournalAppend) != nil {
			fired = true
		}
	}
	if !fired {
		t.Fatal("p=0.5 never fired in 32 hits")
	}

	if s, err := Parse(""); err != nil || s == nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{"p", "p=", "=3", "p=0", "p=p2", "p=p0.5:x", "p=pnan"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestConcurrentFire(t *testing.T) {
	s := New()
	s.ArmProb("p", 0.1, 99)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.Fire("p")
			}
		}()
	}
	wg.Wait()
	if got := s.Hits("p"); got != 1600 {
		t.Fatalf("hits = %d, want 1600", got)
	}
}
