// Package faultinject provides deterministic, named fault-injection points
// for crash-safety testing.
//
// A Set holds a collection of armed points. Production code calls
// Fire(name) at each point; a nil *Set is a valid receiver and Fire on it
// is a no-op, so instrumented paths pay exactly one nil check when chaos
// is disabled. Points are armed either by count (fire once, on the n-th
// hit) or by seeded probability (fire each hit with probability p, from a
// private deterministic PRNG), so a failing run can be replayed exactly.
//
// Injected failures are reported as errors wrapping ErrInjected; callers
// classify them with errors.Is and treat them as transient.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// ErrInjected is the sentinel wrapped by every error returned from Fire.
var ErrInjected = errors.New("injected fault")

// Named injection points wired through the codebase. A Set accepts any
// string name; these constants are the points production code fires.
const (
	PointSnapshotWrite = "snapshot.write" // lamsd mesh-snapshot write
	PointJournalAppend = "journal.append" // lamsd job-journal append
	PointExchangeSend  = "exchange.send"  // partition halo-exchange send
	PointExchangeRecv  = "exchange.recv"  // partition halo-exchange receive
	PointPoolAcquire   = "pool.acquire"   // lamsd engine-pool acquire
	PointEngineSweep   = "engine.sweep"   // smoothing engine, once per sweep
)

type point struct {
	after int        // fire once when hits reaches this value; 0 = not count-armed
	prob  float64    // per-hit probability; 0 = not probability-armed
	rng   *rand.Rand // private PRNG for prob arming
	hits  int
	fired int
}

// Set is a collection of armed injection points. The zero value is unarmed;
// a nil *Set never fires. All methods are safe for concurrent use.
type Set struct {
	mu     sync.Mutex
	points map[string]*point
}

// New returns an empty, unarmed Set.
func New() *Set { return &Set{points: make(map[string]*point)} }

func (s *Set) pt(name string) *point {
	p := s.points[name]
	if p == nil {
		p = &point{}
		s.points[name] = p
	}
	return p
}

// ArmAfter arms name to fail exactly once, on the n-th Fire (n >= 1).
// Earlier and later hits pass through.
func (s *Set) ArmAfter(name string, n int) {
	if s == nil || n < 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pt(name)
	p.after = p.hits + n
	p.prob = 0
}

// ArmProb arms name to fail on each Fire with probability prob, drawn from
// a deterministic PRNG seeded with seed.
func (s *Set) ArmProb(name string, prob float64, seed int64) {
	if s == nil || prob <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pt(name)
	p.prob = prob
	p.rng = rand.New(rand.NewSource(seed))
	p.after = 0
}

// Disarm removes any arming for name but keeps its hit counters.
func (s *Set) Disarm(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.points[name]; p != nil {
		p.after = 0
		p.prob = 0
		p.rng = nil
	}
}

// Fire records a hit at name and returns a non-nil error (wrapping
// ErrInjected) if the point's arming says this hit fails. A nil receiver
// or an unarmed point returns nil.
func (s *Set) Fire(name string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.points[name]
	if p == nil {
		return nil
	}
	p.hits++
	fire := false
	switch {
	case p.after > 0:
		if p.hits >= p.after {
			fire = true
			p.after = 0 // count arming is one-shot
		}
	case p.prob > 0:
		fire = p.rng.Float64() < p.prob
	}
	if !fire {
		return nil
	}
	p.fired++
	return fmt.Errorf("%w at %q (hit %d)", ErrInjected, name, p.hits)
}

// Hits reports how many times name has been fired at (armed or not).
func (s *Set) Hits(name string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.points[name]; p != nil {
		return p.hits
	}
	return 0
}

// Fired reports how many times name has actually injected a failure.
func (s *Set) Fired(name string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.points[name]; p != nil {
		return p.fired
	}
	return 0
}

// Parse builds a Set from a chaos spec string: comma-separated entries of
// the form "name=N" (fail once on the N-th hit) or "name=pP[:seed]" (fail
// each hit with probability P, PRNG seeded with seed, default 1).
//
//	snapshot.write=3,journal.append=p0.05:42
//
// An empty spec yields an empty (never-firing) Set.
func Parse(spec string) (*Set, error) {
	s := New()
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, arm, ok := strings.Cut(entry, "=")
		if !ok || name == "" || arm == "" {
			return nil, fmt.Errorf("faultinject: bad chaos entry %q (want name=N or name=pP[:seed])", entry)
		}
		if rest, isProb := strings.CutPrefix(arm, "p"); isProb {
			probStr, seedStr, hasSeed := strings.Cut(rest, ":")
			prob, err := strconv.ParseFloat(probStr, 64)
			if err != nil || !(prob > 0 && prob <= 1) {
				return nil, fmt.Errorf("faultinject: bad probability in %q", entry)
			}
			seed := int64(1)
			if hasSeed {
				seed, err = strconv.ParseInt(seedStr, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad seed in %q", entry)
				}
			}
			s.ArmProb(name, prob, seed)
			continue
		}
		n, err := strconv.Atoi(arm)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faultinject: bad hit count in %q", entry)
		}
		s.ArmAfter(name, n)
	}
	return s, nil
}
