package experiments

import (
	"fmt"
	"strings"

	"lams/internal/cache"
	"lams/internal/stats"
)

// NUMARow is one (ordering, cores) line of the NUMA study.
type NUMARow struct {
	Ordering      string
	Cores         int
	Local, Remote int64
	FlatCycles    float64 // penalty with the flat 230-cycle memory cost
	NUMACycles    float64 // penalty with the [9] 175/290 local/remote split
}

// NUMAResult prices memory fetches with the paper's [9] NUMA latencies
// (175 cycles local, 290 remote, page-interleaved homes) instead of the
// flat midpoint, quantifying how much the flat model under- or over-states
// each ordering's penalty as core counts grow.
type NUMAResult struct {
	Mesh string
	Rows []NUMARow
}

// NUMA runs the study on the first configured mesh.
func (s *Suite) NUMA() (*NUMAResult, error) {
	meshName := s.Cfg.Meshes[0]
	out := &NUMAResult{Mesh: meshName}

	flatCfg := s.Cfg.Model.Cache
	numaCfg := flatCfg
	numaCfg.NUMA = &cache.NUMAConfig{Sockets: 4, PageBytes: 4 << 10, LocalCycles: 175, RemoteCycles: 290}

	cores := []int{1, 8, 32}
	for _, ordName := range SerialOrderings {
		for _, p := range cores {
			tb, _, err := s.TraceRun(meshName, ordName, p, 1)
			if err != nil {
				return nil, err
			}
			row := NUMARow{Ordering: ordName, Cores: p}
			for _, cfg := range []cache.Config{flatCfg, numaCfg} {
				sim, err := cache.NewSim(cfg, p)
				if err != nil {
					return nil, err
				}
				if err := sim.RunTrace(tb); err != nil {
					return nil, err
				}
				var pen float64
				var local, remote int64
				for c := 0; c < p; c++ {
					pen += sim.CorePenaltyCycles(c)
					l, r := sim.CoreNUMASplit(c)
					local += l
					remote += r
				}
				if cfg.NUMA == nil {
					row.FlatCycles = pen
				} else {
					row.NUMACycles = pen
					row.Local, row.Remote = local, remote
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (r *NUMAResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — NUMA memory pricing ([9]: 175 local / 290 remote cycles; %s mesh)\n", r.Mesh)
	t := &stats.Table{Header: []string{"ordering", "cores", "local", "remote", "flat cycles", "numa cycles", "numa/flat"}}
	for _, row := range r.Rows {
		ratio := 0.0
		if row.FlatCycles > 0 {
			ratio = row.NUMACycles / row.FlatCycles
		}
		t.AddRow(row.Ordering, row.Cores, row.Local, row.Remote, row.FlatCycles, row.NUMACycles, ratio)
	}
	b.WriteString(t.String())
	b.WriteString("with page-interleaved homes ~3/4 of fetches are remote at any core count;\n")
	b.WriteString("the flat 230-cycle midpoint tracks the split within a few percent\n")
	return b.String()
}
