package experiments

import (
	"fmt"
	"strings"

	"lams/internal/perfmodel"
	"lams/internal/stats"
)

// ---------------------------------------------------------------- Fig 10/12

// ScalingResult holds the modeled scalability study shared by Figures 10,
// 12 and 13: execution times for every (mesh, ordering, core count).
type ScalingResult struct {
	Cores     []int
	Orderings []string
	Meshes    []string
	// Seconds[mesh][ordering][coreIdx] is the modeled execution time.
	Seconds map[string]map[string][]float64
}

// Scaling runs the full sweep. Speedups are relative to the serial ORI time
// of the same mesh, the paper's Speedup(ordering, p) = T_ORI(1)/T_ord(p).
func (s *Suite) Scaling() (*ScalingResult, error) {
	out := &ScalingResult{
		Cores:     s.Cfg.CoreCounts,
		Orderings: SerialOrderings,
		Meshes:    s.Cfg.Meshes,
		Seconds:   map[string]map[string][]float64{},
	}
	for _, name := range s.Cfg.Meshes {
		out.Seconds[name] = map[string][]float64{}
		for _, ordName := range SerialOrderings {
			times := make([]float64, len(s.Cfg.CoreCounts))
			for i, p := range s.Cfg.CoreCounts {
				est, err := s.ModeledTime(name, ordName, p)
				if err != nil {
					return nil, err
				}
				times[i] = est.Seconds
			}
			out.Seconds[name][ordName] = times
		}
	}
	return out, nil
}

// Speedup returns T_ORI(1)/T_ord(p) for one mesh.
func (r *ScalingResult) Speedup(mesh, ordering string, coreIdx int) float64 {
	base := r.Seconds[mesh]["ORI"][0]
	return perfmodel.Speedup(base, r.Seconds[mesh][ordering][coreIdx])
}

// MeanSpeedups returns, per ordering, the mean speedup across meshes at
// each core count — the Figure 12 curves.
func (r *ScalingResult) MeanSpeedups() map[string][]float64 {
	out := map[string][]float64{}
	for _, ord := range r.Orderings {
		curve := make([]float64, len(r.Cores))
		for ci := range r.Cores {
			var sp []float64
			for _, mesh := range r.Meshes {
				sp = append(sp, r.Speedup(mesh, ord, ci))
			}
			curve[ci] = stats.Mean(sp)
		}
		out[ord] = curve
	}
	return out
}

// Gains returns, per baseline ordering (ORI and BFS) and core count, the
// mean RDR gain (T_algo - T_RDR)/T_algo across meshes — the Figure 13 bars.
func (r *ScalingResult) Gains() map[string][]float64 {
	out := map[string][]float64{}
	for _, baseline := range []string{"ORI", "BFS"} {
		curve := make([]float64, len(r.Cores))
		for ci := range r.Cores {
			var gs []float64
			for _, mesh := range r.Meshes {
				gs = append(gs, perfmodel.Gain(r.Seconds[mesh][baseline][ci], r.Seconds[mesh]["RDR"][ci]))
			}
			curve[ci] = stats.Mean(gs)
		}
		out[baseline] = curve
	}
	return out
}

// Fig10String renders the per-mesh speedup tables of Figure 10.
func (r *ScalingResult) Fig10String() string {
	var b strings.Builder
	b.WriteString("Figure 10 — speedup vs serial ORI, per mesh\n")
	for ci, p := range r.Cores {
		fmt.Fprintf(&b, "\n%d core(s):\n", p)
		t := &stats.Table{Header: []string{"mesh", "ORI", "BFS", "RDR"}}
		for _, mesh := range r.Meshes {
			t.AddRow(mesh, r.Speedup(mesh, "ORI", ci), r.Speedup(mesh, "BFS", ci), r.Speedup(mesh, "RDR", ci))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// Fig12String renders the mean-speedup curves of Figure 12.
func (r *ScalingResult) Fig12String() string {
	var b strings.Builder
	b.WriteString("Figure 12 — mean speedup vs T_ORI(1) (paper: RDR > 75 at 32 cores)\n")
	t := &stats.Table{Header: []string{"cores", "ORI", "BFS", "RDR"}}
	mean := r.MeanSpeedups()
	for ci, p := range r.Cores {
		t.AddRow(p, mean["ORI"][ci], mean["BFS"][ci], mean["RDR"][ci])
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig13String renders the RDR gain bars of Figure 13.
func (r *ScalingResult) Fig13String() string {
	var b strings.Builder
	b.WriteString("Figure 13 — RDR gain in execution time (%), mean over meshes (paper: 20-30% vs ORI, 10-30% vs BFS)\n")
	t := &stats.Table{Header: []string{"cores", "vs ORI %", "vs BFS %"}}
	gains := r.Gains()
	for ci, p := range r.Cores {
		t.AddRow(p, 100*gains["ORI"][ci], 100*gains["BFS"][ci])
	}
	b.WriteString(t.String())
	return b.String()
}

func (r *ScalingResult) String() string {
	return r.Fig10String() + "\n" + r.Fig12String() + "\n" + r.Fig13String()
}

// ---------------------------------------------------------------- Fig 11

// Fig11Row is one (mesh, cores) row of Figure 11.
type Fig11Row struct {
	Mesh  string
	Cores int
	// L2Accesses etc. count accesses reaching each memory level (i.e.
	// misses of the level above), aggregated over cores — the quantities
	// plotted in Figure 11.
	L2Accesses, L3Accesses, MemAccesses int64
}

// Fig11Result reproduces Figure 11: the number of L2/L3/memory accesses of
// the ORI ordering as a function of the core count, for the first three
// meshes.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11 runs the access-count scaling study.
func (s *Suite) Fig11() (*Fig11Result, error) {
	out := &Fig11Result{}
	meshes := s.Cfg.Meshes
	if len(meshes) > 3 {
		meshes = meshes[:3] // carabiner, crake, dialog as in the paper
	}
	for _, name := range meshes {
		for _, p := range s.Cfg.CoreCounts {
			est, err := s.ModeledTime(name, "ORI", p)
			if err != nil {
				return nil, err
			}
			row := Fig11Row{Mesh: name, Cores: p, MemAccesses: est.MemAccesses}
			if len(est.Levels) >= 2 {
				row.L2Accesses = est.Levels[1].Accesses
			}
			if len(est.Levels) >= 3 {
				row.L3Accesses = est.Levels[2].Accesses
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11 — accesses per memory level vs cores (ORI; paper: distances shrink with cores)\n")
	t := &stats.Table{Header: []string{"mesh", "cores", "#L2 acc", "#L3 acc", "#mem acc"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mesh, row.Cores, row.L2Accesses, row.L3Accesses, row.MemAccesses)
	}
	b.WriteString(t.String())
	return b.String()
}
