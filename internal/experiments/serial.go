package experiments

import (
	"fmt"
	"strings"
	"time"

	"lams/internal/cache"
	"lams/internal/domains"
	"lams/internal/reuse"
	"lams/internal/smooth"
	"lams/internal/stats"
)

// SerialOrderings are the three orderings of the main evaluation.
var SerialOrderings = []string{"ORI", "BFS", "RDR"}

// ---------------------------------------------------------------- Table 1

// Table1Row compares a generated mesh against the paper's configuration.
type Table1Row struct {
	Label, Name           string
	Verts, Tris           int
	Interior              int
	PaperVerts, PaperTris int
	InitialQuality        float64
	ConvergedIters        int
}

// Table1Result reproduces Table 1 (input mesh configuration).
type Table1Result struct {
	Rows []Table1Row
}

// Table1 generates the nine meshes and reports their configurations.
func (s *Suite) Table1() (*Table1Result, error) {
	out := &Table1Result{}
	for _, name := range s.Cfg.Meshes {
		m, err := s.Mesh(name)
		if err != nil {
			return nil, err
		}
		spec, err := domains.SpecFor(name)
		if err != nil {
			return nil, err
		}
		iters, err := s.ConvergedIters(name)
		if err != nil {
			return nil, err
		}
		res, err := smooth.Run(m.Clone(), smooth.Options{MaxIters: 1, Tol: -1})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table1Row{
			Label: spec.Label, Name: name,
			Verts: m.NumVerts(), Tris: m.NumTris(), Interior: len(m.InteriorVerts),
			PaperVerts: spec.Vertices, PaperTris: spec.Triangles,
			InitialQuality: res.InitialQuality,
			ConvergedIters: iters,
		})
	}
	return out, nil
}

func (r *Table1Result) String() string {
	t := &stats.Table{Header: []string{"label", "mesh", "verts", "tris", "interior", "q0", "iters", "paper verts", "paper tris"}}
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.Name, row.Verts, row.Tris, row.Interior,
			row.InitialQuality, row.ConvergedIters, row.PaperVerts, row.PaperTris)
	}
	return "Table 1 — input mesh configuration (scaled; paper counts for reference)\n" + t.String()
}

// ---------------------------------------------------------------- Figure 1

// Fig1Series is one ordering's row in Figure 1.
type Fig1Series struct {
	Ordering   string
	MeanReuse  float64 // average stack distance (finite accesses)
	L1MissRate float64 // simulated
	ModelTime  float64 // modeled serial execution time, seconds
	Profile    []float64
	Accesses   int
}

// Fig1Result reproduces Figure 1: reuse-distance profiles of the first LMS
// iteration on the ocean mesh under RANDOM, ORI and BFS orderings.
type Fig1Result struct {
	Mesh   string
	Series []Fig1Series
}

// Fig1 runs the Figure 1 study. The paper uses the ocean mesh.
func (s *Suite) Fig1() (*Fig1Result, error) {
	const meshName = "ocean"
	out := &Fig1Result{Mesh: meshName}
	for _, ordName := range []string{"RANDOM", "ORI", "BFS"} {
		stream, err := s.FirstIterBlocks(meshName, ordName)
		if err != nil {
			return nil, err
		}
		dists := reuse.StackDistances(stream)
		sum := reuse.Summarize(dists)

		est, err := s.ModeledTime(meshName, ordName, 1)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, Fig1Series{
			Ordering:   ordName,
			MeanReuse:  sum.Mean,
			L1MissRate: est.Levels[0].MissRate(),
			ModelTime:  est.Seconds,
			Profile:    reuse.Profile(dists, 100),
			Accesses:   len(stream),
		})
	}
	return out, nil
}

func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — reuse distance of the first LMS iteration (%s mesh)\n", r.Mesh)
	t := &stats.Table{Header: []string{"ordering", "avg reuse dist", "L1 miss rate %", "model time s", "accesses"}}
	for _, s := range r.Series {
		t.AddRow(s.Ordering, s.MeanReuse, 100*s.L1MissRate, s.ModelTime, s.Accesses)
	}
	b.WriteString(t.String())
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-7s %s\n", s.Ordering, stats.Sparkline(s.Profile))
	}
	b.WriteString("paper: avg reuse 90k (random) / 4450 (ori) / 2910 (bfs); L1 miss 2.18 / 0.71 / 0.59 %\n")
	return b.String()
}

// ---------------------------------------------------------------- Figure 8

// Fig8Row is one mesh's serial execution times.
type Fig8Row struct {
	Mesh      string
	ModelSecs map[string]float64 // ordering -> modeled serial seconds
	WallSecs  map[string]float64 // ordering -> measured wall seconds on this host
	Iters     int
}

// Fig8Result reproduces Figure 8: serial execution time per mesh for
// ORI/BFS/RDR, both under the Westmere-EX model and as real wall-clock runs
// of the Go smoother on this host.
type Fig8Result struct {
	Rows []Fig8Row
	// MeanSpeedupVsORI / MeanSpeedupVsBFS are the RDR speedup means the
	// paper headlines (1.39 and 1.19).
	ModelSpeedupVsORI, ModelSpeedupVsBFS float64
	WallSpeedupVsORI, WallSpeedupVsBFS   float64
}

// Fig8 runs the serial execution-time comparison.
func (s *Suite) Fig8(measureWall bool) (*Fig8Result, error) {
	out := &Fig8Result{}
	var mORI, mBFS, wORI, wBFS []float64
	for _, name := range s.Cfg.Meshes {
		row := Fig8Row{Mesh: name, ModelSecs: map[string]float64{}, WallSecs: map[string]float64{}}
		iters, err := s.ConvergedIters(name)
		if err != nil {
			return nil, err
		}
		row.Iters = iters
		for _, ordName := range SerialOrderings {
			est, err := s.ModeledTime(name, ordName, 1)
			if err != nil {
				return nil, err
			}
			row.ModelSecs[ordName] = est.Seconds

			if measureWall {
				m, err := s.Reordered(name, ordName)
				if err != nil {
					return nil, err
				}
				clone := m.Clone()
				start := time.Now()
				if _, err := smooth.Run(clone, smooth.Options{MaxIters: iters, Tol: -1}); err != nil {
					return nil, err
				}
				row.WallSecs[ordName] = time.Since(start).Seconds()
			}
		}
		mORI = append(mORI, row.ModelSecs["ORI"]/row.ModelSecs["RDR"])
		mBFS = append(mBFS, row.ModelSecs["BFS"]/row.ModelSecs["RDR"])
		if measureWall {
			wORI = append(wORI, row.WallSecs["ORI"]/row.WallSecs["RDR"])
			wBFS = append(wBFS, row.WallSecs["BFS"]/row.WallSecs["RDR"])
		}
		out.Rows = append(out.Rows, row)
	}
	out.ModelSpeedupVsORI = stats.Mean(mORI)
	out.ModelSpeedupVsBFS = stats.Mean(mBFS)
	out.WallSpeedupVsORI = stats.Mean(wORI)
	out.WallSpeedupVsBFS = stats.Mean(wBFS)
	return out, nil
}

func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8 — serial execution time (seconds)\n")
	t := &stats.Table{Header: []string{"mesh", "iters", "model ORI", "model BFS", "model RDR", "wall ORI", "wall BFS", "wall RDR"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mesh, row.Iters,
			row.ModelSecs["ORI"], row.ModelSecs["BFS"], row.ModelSecs["RDR"],
			row.WallSecs["ORI"], row.WallSecs["BFS"], row.WallSecs["RDR"])
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "RDR mean speedup: model %.2fx vs ORI, %.2fx vs BFS", r.ModelSpeedupVsORI, r.ModelSpeedupVsBFS)
	if r.WallSpeedupVsORI > 0 {
		fmt.Fprintf(&b, "; wall %.2fx vs ORI, %.2fx vs BFS", r.WallSpeedupVsORI, r.WallSpeedupVsBFS)
	}
	b.WriteString("  (paper: 1.39x vs ORI, 1.19x vs BFS)\n")
	return b.String()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Row is one mesh's per-ordering miss rates at one cache level.
type Fig9Row struct {
	Mesh  string
	Rates map[string][3]float64 // ordering -> [L1, L2, L3] miss rates
}

// Fig9Result reproduces Figures 9a–9c: simulated L1/L2/L3 miss rates of the
// serial run per mesh and ordering, plus the paper's headline average
// reductions.
type Fig9Result struct {
	Rows []Fig9Row
	// ReductionVsORI / ReductionVsBFS hold the average relative reduction
	// of RDR misses per level (paper: 25/71/84 % vs ORI, 6.3/51/65 % vs BFS).
	ReductionVsORI, ReductionVsBFS [3]float64
}

// Fig9 runs the serial cache-performance comparison.
func (s *Suite) Fig9() (*Fig9Result, error) {
	out := &Fig9Result{}
	misses := map[string][3]float64{}
	var redORI, redBFS [3][]float64
	for _, name := range s.Cfg.Meshes {
		row := Fig9Row{Mesh: name, Rates: map[string][3]float64{}}
		for _, ordName := range SerialOrderings {
			est, err := s.ModeledTime(name, ordName, 1)
			if err != nil {
				return nil, err
			}
			var rates, miss [3]float64
			for i := 0; i < 3 && i < len(est.Levels); i++ {
				rates[i] = est.Levels[i].MissRate()
				miss[i] = float64(est.Levels[i].Misses)
			}
			row.Rates[ordName] = rates
			misses[ordName] = miss
		}
		for i := 0; i < 3; i++ {
			if misses["ORI"][i] > 0 {
				redORI[i] = append(redORI[i], 1-misses["RDR"][i]/misses["ORI"][i])
			}
			if misses["BFS"][i] > 0 {
				redBFS[i] = append(redBFS[i], 1-misses["RDR"][i]/misses["BFS"][i])
			}
		}
		out.Rows = append(out.Rows, row)
	}
	for i := 0; i < 3; i++ {
		out.ReductionVsORI[i] = stats.Mean(redORI[i])
		out.ReductionVsBFS[i] = stats.Mean(redBFS[i])
	}
	return out, nil
}

func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9 — cache miss rates on one core (%)\n")
	t := &stats.Table{Header: []string{"mesh",
		"L1 ORI", "L1 BFS", "L1 RDR", "L2 ORI", "L2 BFS", "L2 RDR", "L3 ORI", "L3 BFS", "L3 RDR"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mesh,
			100*row.Rates["ORI"][0], 100*row.Rates["BFS"][0], 100*row.Rates["RDR"][0],
			100*row.Rates["ORI"][1], 100*row.Rates["BFS"][1], 100*row.Rates["RDR"][1],
			100*row.Rates["ORI"][2], 100*row.Rates["BFS"][2], 100*row.Rates["RDR"][2])
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "RDR miss reduction vs ORI: L1 %.0f%% L2 %.0f%% L3 %.0f%%  (paper: 25/71/84)\n",
		100*r.ReductionVsORI[0], 100*r.ReductionVsORI[1], 100*r.ReductionVsORI[2])
	fmt.Fprintf(&b, "RDR miss reduction vs BFS: L1 %.0f%% L2 %.0f%% L3 %.0f%%  (paper: 6.3/51/65)\n",
		100*r.ReductionVsBFS[0], 100*r.ReductionVsBFS[1], 100*r.ReductionVsBFS[2])
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row holds one (mesh, ordering) quantile row.
type Table2Row struct {
	Mesh, Ordering string
	Quantiles      []int64 // 50, 75, 90, 100 %
	Accesses       int
}

// Table2Result reproduces Table 2: the distribution of reuse distances of
// the first iteration per mesh and ordering.
type Table2Result struct {
	Qs   []float64
	Rows []Table2Row
}

// Table2 computes the reuse-distance quantiles.
func (s *Suite) Table2() (*Table2Result, error) {
	out := &Table2Result{Qs: []float64{0.50, 0.75, 0.90, 1.00}}
	for _, name := range s.Cfg.Meshes {
		for _, ordName := range SerialOrderings {
			stream, err := s.FirstIterBlocks(name, ordName)
			if err != nil {
				return nil, err
			}
			dists := reuse.StackDistances(stream)
			qs, err := reuse.Quantiles(dists, out.Qs)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Table2Row{
				Mesh: name, Ordering: ordName, Quantiles: qs, Accesses: len(stream),
			})
		}
	}
	return out, nil
}

func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2 — reuse distance quantiles (first iteration, LRU stack distance)\n")
	t := &stats.Table{Header: []string{"mesh", "ordering", "50%", "75%", "90%", "100%", "#accesses"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mesh, row.Ordering, row.Quantiles[0], row.Quantiles[1], row.Quantiles[2], row.Quantiles[3], row.Accesses)
	}
	b.WriteString(t.String())
	b.WriteString("paper shape: ORI 50%≈7-8, BFS 50%=1, RDR 90%≤11 and 100% in the low thousands\n")
	return b.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one (mesh, ordering) row of Table 3.
type Table3Row struct {
	Mesh, Ordering string
	Misses         [3]int64 // simulated L1/L2/L3 misses (compulsory removed)
	Capacity       [3]int64 // estimated max elements fitting each level
}

// Table3Result reproduces Table 3: estimated miss counts and the maximum
// number of elements that fit each cache level, inferred from reuse
// distances exactly as §5.2.3 does.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the miss-estimation study.
func (s *Suite) Table3() (*Table3Result, error) {
	out := &Table3Result{}
	for _, name := range s.Cfg.Meshes {
		for _, ordName := range SerialOrderings {
			stream, err := s.FirstIterBlocks(name, ordName)
			if err != nil {
				return nil, err
			}
			dists := reuse.StackDistances(stream)
			sum := reuse.Summarize(dists)

			est, err := s.ModeledTime(name, ordName, 1)
			if err != nil {
				return nil, err
			}
			row := Table3Row{Mesh: name, Ordering: ordName}
			for i := 0; i < 3 && i < len(est.Levels); i++ {
				// The paper subtracts the compulsory (first-fetch) misses it
				// attributes to external factors; cold accesses are our
				// equivalent. Scale the converged-run misses down to one
				// iteration for comparability with the distance stream.
				iters, err := s.ConvergedIters(name)
				if err != nil {
					return nil, err
				}
				perIter := est.Levels[i].Misses / int64(iters)
				m := perIter - int64(sum.Cold)
				if m < 0 {
					m = 0
				}
				row.Misses[i] = m
				row.Capacity[i] = reuse.EstimateCapacity(dists, m)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 — estimated misses (per iteration, compulsory removed) and max elements fitting cache\n")
	t := &stats.Table{Header: []string{"mesh", "ordering", "L1 miss", "L2 miss", "L3 miss", "cap L1", "cap L2", "cap L3"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mesh, row.Ordering,
			row.Misses[0], row.Misses[1], row.Misses[2],
			row.Capacity[0], row.Capacity[1], row.Capacity[2])
	}
	b.WriteString(t.String())
	b.WriteString("paper shape: RDR has ~0 L3 misses; RDR capacity estimates collapse to a few thousand elements\n")
	return b.String()
}

// ---------------------------------------------------------------- Eq. (2)

// Eq2Result reproduces the §5.2.2 worked example: the additional clock
// cycles Eq. (2) attributes to cache misses on the carabiner mesh.
type Eq2Result struct {
	Mesh    string
	Cycles  map[string]float64
	Levels  map[string][]cache.LevelStats
	MemAccs map[string]int64
}

// Eq2 evaluates the cycle-penalty example.
func (s *Suite) Eq2() (*Eq2Result, error) {
	out := &Eq2Result{
		Mesh:    "carabiner",
		Cycles:  map[string]float64{},
		Levels:  map[string][]cache.LevelStats{},
		MemAccs: map[string]int64{},
	}
	for _, ordName := range SerialOrderings {
		est, err := s.ModeledTime(out.Mesh, ordName, 1)
		if err != nil {
			return nil, err
		}
		out.Cycles[ordName] = est.PenaltyCycles
		out.Levels[ordName] = est.Levels
		out.MemAccs[ordName] = est.MemAccesses
	}
	return out, nil
}

func (r *Eq2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Eq. (2) — cache-miss penalty cycles, %s mesh (paper: ORI 927k, BFS 528k, RDR 210k)\n", r.Mesh)
	t := &stats.Table{Header: []string{"ordering", "penalty cycles", "L1 misses", "L2 misses", "L3 misses", "mem accesses"}}
	for _, ord := range SerialOrderings {
		lv := r.Levels[ord]
		t.AddRow(ord, r.Cycles[ord], lv[0].Misses, lv[1].Misses, lv[2].Misses, r.MemAccs[ord])
	}
	b.WriteString(t.String())
	return b.String()
}
