package experiments

import "testing"

func TestNUMAStudy(t *testing.T) {
	s := tinySuite(t)
	r, err := s.NUMA()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 { // 3 orderings x 3 core counts
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Local+row.Remote == 0 {
			t.Errorf("%s/%d: no memory fetches recorded", row.Ordering, row.Cores)
		}
		if row.NUMACycles <= 0 || row.FlatCycles <= 0 {
			t.Errorf("%s/%d: non-positive penalties", row.Ordering, row.Cores)
		}
		// With 4-way page interleave, roughly 3/4 of fetches are remote.
		frac := float64(row.Remote) / float64(row.Local+row.Remote)
		if frac < 0.4 || frac > 0.95 {
			t.Errorf("%s/%d: remote fraction %.2f implausible", row.Ordering, row.Cores, frac)
		}
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}
