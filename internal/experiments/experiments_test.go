package experiments

import (
	"strings"
	"testing"

	"lams/internal/mesh"
)

// tinySuite is a fast suite over two small meshes shared by the tests.
func tinySuite(t testing.TB) *Suite {
	t.Helper()
	cfg := ConfigForSize(2500)
	cfg.Meshes = []string{"carabiner", "crake"}
	cfg.CoreCounts = []int{1, 2, 4}
	return NewSuite(cfg)
}

func TestSuiteCaching(t *testing.T) {
	s := tinySuite(t)
	a, err := s.Mesh("carabiner")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Mesh("carabiner")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("mesh not cached")
	}
	r1, err := s.Reordered("carabiner", "RDR")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Reordered("carabiner", "RDR")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("reordered mesh not cached")
	}
	ori, err := s.Reordered("carabiner", "ORI")
	if err != nil {
		t.Fatal(err)
	}
	if ori != a {
		t.Error("ORI should be the generated mesh itself")
	}
	if _, err := s.Reordered("carabiner", "NOPE"); err == nil {
		t.Error("unknown ordering accepted")
	}
	d, err := s.OrderTime("carabiner", "RDR")
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("order time not recorded")
	}
}

func TestConvergedIters(t *testing.T) {
	s := tinySuite(t)
	n, err := s.ConvergedIters("crake")
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Errorf("iterations = %d", n)
	}
	n2, _ := s.ConvergedIters("crake")
	if n2 != n {
		t.Error("not cached/deterministic")
	}
}

func TestTable1(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Label != "M1" || r.Rows[0].PaperVerts != 328082 {
		t.Errorf("row 0 = %+v", r.Rows[0])
	}
	if !strings.Contains(r.String(), "carabiner") {
		t.Error("render missing mesh name")
	}
}

func TestFig5(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if r.DFSSpan <= 0 || r.BFSSpan <= 0 {
		t.Errorf("spans = %d, %d", r.DFSSpan, r.BFSSpan)
	}
	// The paper's point: BFS packs the accessed positions tighter.
	if r.BFSSpan > r.DFSSpan {
		t.Errorf("BFS span %d worse than DFS %d", r.BFSSpan, r.DFSSpan)
	}
	if !strings.Contains(r.String(), "Figure 5") {
		t.Error("render header missing")
	}
}

func TestSmallDiskMesh(t *testing.T) {
	pts, tris := SmallDiskMesh(5, 7)
	if len(pts) != 13 {
		t.Fatalf("verts = %d, want 13", len(pts))
	}
	m, err := mesh.New(pts, tris)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Center and inner ring are interior, outer ring is boundary.
	if len(m.InteriorVerts) != 6 {
		t.Errorf("interior = %v", m.InteriorVerts)
	}
}

func TestFig4(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DFSTrace) == 0 || len(r.BFSTrace) == 0 {
		t.Fatal("empty traces")
	}
	if r.BFSSpan >= r.DFSSpan {
		t.Errorf("BFS span %f not tighter than DFS %f", r.BFSSpan, r.DFSSpan)
	}
}

func TestFig6ProfilesRepeat(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Profiles) < 2 {
		t.Fatalf("profiles = %d", len(r.Profiles))
	}
	// The paper's observation: the reuse pattern repeats across iterations.
	if r.Correlation < 0.5 {
		t.Errorf("iteration profiles barely correlate: %v", r.Correlation)
	}
}

func TestFig1Shape(t *testing.T) {
	cfg := ConfigForSize(2500)
	cfg.Meshes = []string{"ocean"}
	s := NewSuite(cfg)
	r, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	byName := map[string]Fig1Series{}
	for _, se := range r.Series {
		byName[se.Ordering] = se
	}
	// Figure 1's ranking: random worst, BFS best.
	if !(byName["BFS"].MeanReuse < byName["ORI"].MeanReuse) {
		t.Errorf("BFS reuse %v not better than ORI %v", byName["BFS"].MeanReuse, byName["ORI"].MeanReuse)
	}
	if !(byName["ORI"].MeanReuse < byName["RANDOM"].MeanReuse) {
		t.Errorf("ORI reuse %v not better than RANDOM %v", byName["ORI"].MeanReuse, byName["RANDOM"].MeanReuse)
	}
}

func TestFig8And9Shape(t *testing.T) {
	s := tinySuite(t)
	r8, err := s.Fig8(false)
	if err != nil {
		t.Fatal(err)
	}
	if r8.ModelSpeedupVsORI <= 1 {
		t.Errorf("RDR model speedup vs ORI = %v, want > 1", r8.ModelSpeedupVsORI)
	}
	if r8.ModelSpeedupVsBFS <= 1 {
		t.Errorf("RDR model speedup vs BFS = %v, want > 1", r8.ModelSpeedupVsBFS)
	}

	r9, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// RDR reduces L1 and L2 misses vs ORI on average.
	if r9.ReductionVsORI[0] <= 0 || r9.ReductionVsORI[1] <= 0 {
		t.Errorf("reductions vs ORI = %v", r9.ReductionVsORI)
	}
}

func TestTable2Shape(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row.Quantiles) != 4 {
			t.Fatalf("quantile count = %d", len(row.Quantiles))
		}
		// Quantiles are monotone.
		for i := 1; i < 4; i++ {
			if row.Quantiles[i] < row.Quantiles[i-1] {
				t.Errorf("%s/%s quantiles not monotone: %v", row.Mesh, row.Ordering, row.Quantiles)
			}
		}
	}
}

func TestScalingShape(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Scaling()
	if err != nil {
		t.Fatal(err)
	}
	mean := r.MeanSpeedups()
	// Speedups grow with cores and RDR dominates ORI at every count.
	for ci := range r.Cores {
		if mean["RDR"][ci] < mean["ORI"][ci] {
			t.Errorf("cores=%d: RDR %v below ORI %v", r.Cores[ci], mean["RDR"][ci], mean["ORI"][ci])
		}
	}
	if mean["ORI"][len(r.Cores)-1] <= mean["ORI"][0] {
		t.Error("no parallel speedup")
	}
	gains := r.Gains()
	if gains["ORI"][0] <= 0 {
		t.Errorf("serial gain vs ORI = %v", gains["ORI"][0])
	}
	for _, out := range []string{r.Fig10String(), r.Fig12String(), r.Fig13String(), r.String()} {
		if out == "" {
			t.Error("empty render")
		}
	}
}

func TestEq2AndTable3(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Eq2()
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Cycles["RDR"] < r.Cycles["ORI"]) {
		t.Errorf("RDR penalty %v not below ORI %v", r.Cycles["RDR"], r.Cycles["ORI"])
	}
	r3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Rows) != 6 {
		t.Fatalf("rows = %d", len(r3.Rows))
	}
}

func TestCost(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Cost()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.OrderWall <= 0 || row.IterWall <= 0 {
			t.Errorf("%s: non-positive timings", row.Mesh)
		}
		if row.BreakEvenIters <= 0 {
			t.Errorf("%s: break-even %v", row.Mesh, row.BreakEvenIters)
		}
	}
}

func TestFig11(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*3 { // 2 meshes x 3 core counts
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.L2Accesses <= 0 {
			t.Errorf("%s/%d: no L2 accesses", row.Mesh, row.Cores)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MeshVerts != 20000 || len(cfg.Meshes) != 9 || cfg.TraceIters != 2 {
		t.Errorf("default config = %+v", cfg)
	}
	s := NewSuite(Config{})
	if s.Cfg.MeshVerts == 0 {
		t.Error("zero config should fall back to defaults")
	}
}
