package experiments

import (
	"strings"
	"testing"
)

func TestFig7Renders(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Renders) != len(s.Cfg.Meshes) {
		t.Fatalf("renders = %d", len(r.Renders))
	}
	for i, render := range r.Renders {
		if !strings.Contains(render, ".") || !strings.Contains(render, "#") {
			t.Errorf("%s: render missing interior or boundary cells", r.Names[i])
		}
	}
	out := r.String()
	for _, name := range s.Cfg.Meshes {
		if !strings.Contains(out, "("+name+")") {
			t.Errorf("render output missing %s", name)
		}
	}
}
