package experiments

import (
	"strings"
	"testing"
)

func TestCPackCloseToRDR(t *testing.T) {
	s := tinySuite(t)
	r, err := s.CPack()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CPackRow{}
	for _, row := range r.Rows {
		byName[row.Ordering] = row
	}
	// RDR should be much closer to the CPACK oracle than to BFS.
	rdr, cpack, bfs := byName["RDR"], byName["CPACK"], byName["BFS"]
	if rdr.MeanReuse > bfs.MeanReuse {
		t.Errorf("RDR reuse %v worse than BFS %v", rdr.MeanReuse, bfs.MeanReuse)
	}
	gapOracle := rdr.MeanReuse - cpack.MeanReuse
	if gapOracle < 0 {
		gapOracle = -gapOracle
	}
	if gapOracle > (bfs.MeanReuse-cpack.MeanReuse)/2 {
		t.Errorf("RDR (%.1f) not close to CPACK oracle (%.1f); BFS at %.1f",
			rdr.MeanReuse, cpack.MeanReuse, bfs.MeanReuse)
	}
	if !strings.Contains(r.String(), "CPACK") {
		t.Error("render missing CPACK")
	}
}

func TestPrefetchHelpsRDRMost(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Prefetch()
	if err != nil {
		t.Fatal(err)
	}
	misses := map[string]map[int]int64{}
	for _, row := range r.Rows {
		if misses[row.Ordering] == nil {
			misses[row.Ordering] = map[int]int64{}
		}
		misses[row.Ordering][row.Degree] = row.L1Misses
	}
	// Prefetching must reduce RDR's misses.
	if misses["RDR"][2] >= misses["RDR"][0] {
		t.Errorf("prefetch did not help RDR: %d -> %d", misses["RDR"][0], misses["RDR"][2])
	}
	// And RDR's relative benefit exceeds ORI's.
	rdrGain := float64(misses["RDR"][0]-misses["RDR"][2]) / float64(misses["RDR"][0])
	oriGain := float64(misses["ORI"][0]-misses["ORI"][2]) / float64(misses["ORI"][0])
	if rdrGain <= oriGain {
		t.Errorf("RDR prefetch gain %.3f not above ORI's %.3f", rdrGain, oriGain)
	}
}

func TestMRCShape(t *testing.T) {
	s := tinySuite(t)
	r, err := s.MRC()
	if err != nil {
		t.Fatal(err)
	}
	for _, ord := range SerialOrderings {
		curve := r.Curves[ord]
		if len(curve) != len(r.Capacities) {
			t.Fatalf("%s: curve length mismatch", ord)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-12 {
				t.Errorf("%s: miss-ratio curve not monotone at %d", ord, i)
			}
		}
	}
	// At mid capacities RDR's curve sits below ORI's.
	mid := len(r.Capacities) / 2
	if r.Curves["RDR"][mid] > r.Curves["ORI"][mid] {
		t.Errorf("RDR MRC %v above ORI %v at capacity %d",
			r.Curves["RDR"][mid], r.Curves["ORI"][mid], r.Capacities[mid])
	}
}

func TestVariantsTransfer(t *testing.T) {
	s := tinySuite(t)
	r, err := s.Variants()
	if err != nil {
		t.Fatal(err)
	}
	penalty := map[string]map[string]float64{}
	for _, row := range r.Rows {
		if penalty[row.Variant] == nil {
			penalty[row.Variant] = map[string]float64{}
		}
		penalty[row.Variant][row.Ordering] = row.PenaltyCycles
	}
	for variant, p := range penalty {
		if p["RDR"] >= p["ORI"] {
			t.Errorf("%s: RDR penalty %v not below ORI %v", variant, p["RDR"], p["ORI"])
		}
	}
}

func TestGaussSeidelStudy(t *testing.T) {
	s := tinySuite(t)
	r, err := s.GaussSeidel()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Jacobi results must be identical across orderings (the §5.1 note) up
	// to summation-order rounding in the global-quality average.
	for _, row := range r.Rows[1:] {
		diff := row.JacobiFinal - r.Rows[0].JacobiFinal
		if diff < 0 {
			diff = -diff
		}
		if row.JacobiIters != r.Rows[0].JacobiIters || diff > 1e-9 {
			t.Errorf("Jacobi results ordering-dependent: %+v vs %+v", row, r.Rows[0])
		}
	}
	// Gauss-Seidel converges at least as fast as Jacobi here.
	for _, row := range r.Rows {
		if row.GSFinal < row.JacobiFinal-1e-9 && row.GSIters >= row.JacobiIters {
			t.Errorf("%s: GS strictly worse than Jacobi", row.Ordering)
		}
	}
}
