// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a function on a Suite returning a
// result struct with a String renderer; cmd/lamsbench and the repository
// benchmarks drive them. The per-experiment index lives in DESIGN.md and the
// paper-vs-measured record in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"lams/internal/reuse"

	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/perfmodel"
	"lams/internal/quality"
	"lams/internal/smooth"
	"lams/internal/trace"
)

// Config scales the experiment suite. The paper's meshes have 300–400k
// vertices; the default here is smaller so the full suite runs in seconds,
// and the -full flag of cmd/lamsbench restores the Table 1 magnitudes.
type Config struct {
	// MeshVerts is the target vertex count per mesh (default 20000).
	MeshVerts int
	// Meshes selects which of the nine meshes to use (default: all).
	Meshes []string
	// TraceIters is the number of smoothing iterations traced for the
	// locality analyses (default 2: one cold + one steady-state; the paper
	// observes the pattern is identical across iterations, Fig. 6).
	TraceIters int
	// Model is the Westmere-EX performance model.
	Model perfmodel.Model
	// CoreCounts are the thread counts of the scalability study.
	CoreCounts []int
	// Schedule is the chunk schedule the parallel traced runs use (default
	// "static", the paper's configuration). Jacobi updates keep results
	// bit-identical across schedules; what changes is which worker touches
	// which vertices — exactly what the NUMA-style per-core trace analyses
	// measure.
	Schedule string
	// CheckEvery measures global quality every CheckEvery-th sweep in the
	// convergence runs (default 1, the paper's loop, which measures after
	// every sweep). The smoothed coordinates are unaffected; only the
	// measurement cadence — and with it the convergence-check granularity —
	// changes. See smooth.Options.CheckEvery.
	CheckEvery int
}

// DefaultConfig returns the configuration used by cmd/lamsbench and the
// benchmarks.
func DefaultConfig() Config {
	return ConfigForSize(20000)
}

// ConfigForSize returns the default configuration at a given mesh size, with
// the cache model scaled to match (see cache.Scaled).
func ConfigForSize(meshVerts int) Config {
	return Config{
		MeshVerts:  meshVerts,
		Meshes:     []string{"carabiner", "crake", "dialog", "lake", "riverflow", "ocean", "stress", "valve", "wrench"},
		TraceIters: 2,
		Model:      perfmodel.ForMeshSize(meshVerts),
		CoreCounts: []int{1, 2, 4, 8, 16, 24, 32},
	}
}

// Suite lazily generates and caches meshes, orderings, traces and
// convergence data shared between experiments.
type Suite struct {
	Cfg Config

	mu         sync.Mutex
	meshes     map[string]*mesh.Mesh
	reordered  map[string]*mesh.Mesh // key: mesh/ordering
	orderTimes map[string]time.Duration
	iterCounts map[string]int // converged iteration counts per mesh
	estimates  map[string]perfmodel.Estimate
}

// NewSuite creates a Suite for the given configuration.
func NewSuite(cfg Config) *Suite {
	if cfg.MeshVerts == 0 {
		cfg = DefaultConfig()
	}
	return &Suite{
		Cfg:        cfg,
		meshes:     make(map[string]*mesh.Mesh),
		reordered:  make(map[string]*mesh.Mesh),
		orderTimes: make(map[string]time.Duration),
		iterCounts: make(map[string]int),
		estimates:  make(map[string]perfmodel.Estimate),
	}
}

// Mesh returns the named generated mesh (cached).
func (s *Suite) Mesh(name string) (*mesh.Mesh, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.meshes[name]; ok {
		return m, nil
	}
	m, err := mesh.Generate(name, s.Cfg.MeshVerts)
	if err != nil {
		return nil, err
	}
	s.meshes[name] = m
	return m, nil
}

// Reordered returns the named mesh relabeled by the named ordering
// (cached). The ORI ordering returns the generated mesh itself.
func (s *Suite) Reordered(meshName, ordName string) (*mesh.Mesh, error) {
	if ordName == "ORI" {
		return s.Mesh(meshName)
	}
	key := meshName + "/" + ordName
	s.mu.Lock()
	if m, ok := s.reordered[key]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()

	base, err := s.Mesh(meshName)
	if err != nil {
		return nil, err
	}
	ord, err := order.ByName(ordName)
	if err != nil {
		return nil, err
	}
	vq := quality.VertexQualities(base, quality.EdgeRatio{})
	start := time.Now()
	perm, err := ord.Compute(base, vq)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", ordName, meshName, err)
	}
	rm, err := base.Renumber(perm)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.reordered[key] = rm
	s.orderTimes[key] = elapsed
	s.mu.Unlock()
	return rm, nil
}

// OrderTime returns how long the cached ordering computation took; it
// forces the ordering to be computed first.
func (s *Suite) OrderTime(meshName, ordName string) (time.Duration, error) {
	if _, err := s.Reordered(meshName, ordName); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.orderTimes[meshName+"/"+ordName], nil
}

// ConvergedIters returns the number of iterations Laplacian smoothing takes
// to converge on the named mesh with the paper's criterion. Jacobi updates
// make the count ordering-independent, matching §5.1's note.
func (s *Suite) ConvergedIters(meshName string) (int, error) {
	s.mu.Lock()
	if n, ok := s.iterCounts[meshName]; ok {
		s.mu.Unlock()
		return n, nil
	}
	s.mu.Unlock()

	m, err := s.Mesh(meshName)
	if err != nil {
		return 0, err
	}
	res, err := smooth.Run(m.Clone(), smooth.Options{CheckEvery: s.Cfg.CheckEvery})
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.iterCounts[meshName] = res.Iterations
	s.mu.Unlock()
	return res.Iterations, nil
}

// TraceRun smooths a clone of (meshName, ordName) with the given worker
// count for iters iterations (Cfg.TraceIters when iters is 0), recording
// the access trace.
func (s *Suite) TraceRun(meshName, ordName string, workers, iters int) (*trace.Buffer, smooth.Result, error) {
	if iters == 0 {
		iters = s.Cfg.TraceIters
	}
	m, err := s.Reordered(meshName, ordName)
	if err != nil {
		return nil, smooth.Result{}, err
	}
	tb := trace.NewBuffer(workers)
	res, err := smooth.Run(m.Clone(), smooth.Options{
		Workers:  workers,
		Schedule: s.Cfg.Schedule,
		MaxIters: iters,
		Tol:      -1,
		Trace:    tb,
	})
	if err != nil {
		return nil, smooth.Result{}, err
	}
	return tb, res, nil
}

// ModeledTime returns the Westmere-EX execution-time estimate for smoothing
// (meshName, ordName) on `workers` cores, extrapolated to the converged
// iteration count (cached). The cache penalty is measured over
// Cfg.TraceIters iterations; the first carries the compulsory misses and
// the rest are steady state, so scaling to the full run is linear in the
// steady-state part.
func (s *Suite) ModeledTime(meshName, ordName string, workers int) (perfmodel.Estimate, error) {
	key := fmt.Sprintf("%s/%s/%d", meshName, ordName, workers)
	s.mu.Lock()
	if est, ok := s.estimates[key]; ok {
		s.mu.Unlock()
		return est, nil
	}
	s.mu.Unlock()

	totalIters, err := s.ConvergedIters(meshName)
	if err != nil {
		return perfmodel.Estimate{}, err
	}
	traced := s.Cfg.TraceIters
	if traced > totalIters {
		traced = totalIters
	}
	tbFull, _, err := s.TraceRun(meshName, ordName, workers, traced)
	if err != nil {
		return perfmodel.Estimate{}, err
	}
	full, err := s.Cfg.Model.Run(tbFull)
	if err != nil {
		return perfmodel.Estimate{}, err
	}
	est := full
	if traced >= 2 && totalIters > traced {
		tbFirst, _, err := s.TraceRun(meshName, ordName, workers, 1)
		if err != nil {
			return perfmodel.Estimate{}, err
		}
		first, err := s.Cfg.Model.Run(tbFirst)
		if err != nil {
			return perfmodel.Estimate{}, err
		}
		est = perfmodel.ScaleEstimate(full, first, traced, totalIters)
	}
	s.mu.Lock()
	s.estimates[key] = est
	s.mu.Unlock()
	return est, nil
}

// FirstIterStream returns the serial first-iteration access stream for
// (meshName, ordName): the stream Figures 1/4 and Table 2 analyze.
func (s *Suite) FirstIterStream(meshName, ordName string) ([]int32, error) {
	tb, _, err := s.TraceRun(meshName, ordName, 1, 1)
	if err != nil {
		return nil, err
	}
	return tb.Core(0), nil
}

// VertsPerLine is the number of vertex records per cache line, the
// granularity of the reuse-distance analyses.
func (s *Suite) VertsPerLine() int { return s.Cfg.Model.Cache.VertsPerLine() }

// FirstIterBlocks returns the first-iteration access stream mapped to cache
// lines — the granularity at which orderings change locality.
func (s *Suite) FirstIterBlocks(meshName, ordName string) ([]int32, error) {
	stream, err := s.FirstIterStream(meshName, ordName)
	if err != nil {
		return nil, err
	}
	return reuse.Blocks(stream, s.VertsPerLine()), nil
}
