package experiments

import (
	"fmt"
	"strings"
)

// Fig7Result reproduces Figure 7: coarse representative renderings of the
// nine test meshes (here as terminal rasters instead of vector figures).
type Fig7Result struct {
	Names   []string
	Renders []string
}

// Fig7 renders every configured mesh.
func (s *Suite) Fig7() (*Fig7Result, error) {
	out := &Fig7Result{}
	for _, name := range s.Cfg.Meshes {
		m, err := s.Mesh(name)
		if err != nil {
			return nil, err
		}
		out.Names = append(out.Names, name)
		out.Renders = append(out.Renders, m.Render(64, 24))
	}
	return out, nil
}

func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 — the test meshes (coarse renderings)\n")
	for i, name := range r.Names {
		fmt.Fprintf(&b, "\n(%s)\n%s", name, r.Renders[i])
	}
	return b.String()
}
