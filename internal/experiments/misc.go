package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/quality"
	"lams/internal/reuse"
	"lams/internal/smooth"
	"lams/internal/stats"
)

// ---------------------------------------------------------------- Figure 4

// Fig4Result reproduces Figure 4: excerpts of the node-visiting traces of
// the smoother under DFS and BFS orderings, showing how BFS packs the
// accessed locations together.
type Fig4Result struct {
	Mesh               string
	DFSTrace, BFSTrace []int32
	DFSSpan, BFSSpan   float64 // mean span of each smoothing step's accesses
}

// Fig4 extracts the trace excerpts (on a small mesh, as in the paper's
// illustration).
func (s *Suite) Fig4() (*Fig4Result, error) {
	meshName := s.Cfg.Meshes[0]
	out := &Fig4Result{Mesh: meshName}
	for _, ordName := range []string{"DFS", "BFS"} {
		streamFull, err := s.FirstIterStream(meshName, ordName)
		if err != nil {
			return nil, err
		}
		m, err := s.Reordered(meshName, ordName)
		if err != nil {
			return nil, err
		}
		span := meanStepSpan(m, streamFull)
		excerpt := streamFull
		if len(excerpt) > 24 {
			mid := len(excerpt) / 2
			excerpt = excerpt[mid : mid+24]
		}
		if ordName == "DFS" {
			out.DFSTrace, out.DFSSpan = excerpt, span
		} else {
			out.BFSTrace, out.BFSSpan = excerpt, span
		}
	}
	return out, nil
}

// meanStepSpan averages, over the interior vertices, the spread
// (max-min position) of the locations touched while smoothing one vertex.
func meanStepSpan(m *mesh.Mesh, _ []int32) float64 {
	var total float64
	n := 0
	for _, v := range m.InteriorVerts {
		lo, hi := v, v
		for _, w := range m.Neighbors(v) {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		total += float64(hi - lo)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — node visiting traces (%s mesh)\n", r.Mesh)
	fmt.Fprintf(&b, "DFS trace: %v\n", r.DFSTrace)
	fmt.Fprintf(&b, "BFS trace: %v\n", r.BFSTrace)
	fmt.Fprintf(&b, "mean per-step access span: DFS %.0f, BFS %.0f (paper: BFS locations are much closer together)\n",
		r.DFSSpan, r.BFSSpan)
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Result reproduces the Figure 5 worked example: on a 13-node synthetic
// mesh, the span of array positions touched when smoothing the worst
// vertex under DFS vs BFS numbering (the paper reports spans 10 vs 7).
type Fig5Result struct {
	DFSSpan, BFSSpan int32
}

// Fig5 builds the small example mesh and measures the spans.
func (s *Suite) Fig5() (*Fig5Result, error) {
	m, err := fig5Mesh()
	if err != nil {
		return nil, err
	}
	vq := quality.VertexQualities(m, quality.EdgeRatio{})
	if len(m.InteriorVerts) == 0 {
		return nil, fmt.Errorf("experiments: fig5 mesh has no interior vertices")
	}
	worst := m.InteriorVerts[0]
	for _, v := range m.InteriorVerts {
		if vq[v] < vq[worst] {
			worst = v
		}
	}
	out := &Fig5Result{}
	for _, ordName := range []string{"DFS", "BFS"} {
		ord, err := order.ByName(ordName)
		if err != nil {
			return nil, err
		}
		perm, err := ord.Compute(m, vq)
		if err != nil {
			return nil, err
		}
		pos := order.Invert(perm)
		lo, hi := pos[worst], pos[worst]
		for _, w := range m.Neighbors(worst) {
			if pos[w] < lo {
				lo = pos[w]
			}
			if pos[w] > hi {
				hi = pos[w]
			}
		}
		if ordName == "DFS" {
			out.DFSSpan = hi - lo + 1
		} else {
			out.BFSSpan = hi - lo + 1
		}
	}
	return out, nil
}

// fig5Mesh builds a 13-vertex mesh: a center, an inner ring of 5 and an
// outer ring of 7, triangulated — the same flavor of small example as the
// paper's Figure 5. The center is nudged off-center so one vertex has
// clearly the worst quality.
func fig5Mesh() (*mesh.Mesh, error) {
	pts, tris := SmallDiskMesh(5, 7)
	return mesh.New(pts, tris)
}

func (r *Fig5Result) String() string {
	return fmt.Sprintf("Figure 5 — access span on the 13-node example: DFS %d, BFS %d (paper: 10 vs 7)\n",
		r.DFSSpan, r.BFSSpan)
}

// ---------------------------------------------------------------- Figure 6

// Fig6Result reproduces Figure 6: the reuse-distance profile of every
// smoothing iteration (carabiner mesh, original ordering), demonstrating
// that the pattern repeats across iterations — the observation RDR builds
// on.
type Fig6Result struct {
	Mesh     string
	Profiles [][]float64 // per iteration, 100-bucket mean stack distances
	Means    []float64   // per-iteration mean distance
	// Correlation is the mean Pearson correlation between consecutive
	// iteration profiles (1 = identical shape).
	Correlation float64
}

// Fig6 traces several iterations and compares their profiles.
func (s *Suite) Fig6() (*Fig6Result, error) {
	const meshName = "carabiner"
	iters, err := s.ConvergedIters(meshName)
	if err != nil {
		return nil, err
	}
	if iters > 8 {
		iters = 8 // the paper's Figure 6 execution has eight iterations
	}
	if iters < 2 {
		iters = 2
	}
	tb, _, err := s.TraceRun(meshName, "ORI", 1, iters)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{Mesh: meshName}
	var prev []float64
	var corrs []float64
	for it := 0; it < tb.Iterations(); it++ {
		stream, err := tb.IterSlice(0, it)
		if err != nil {
			return nil, err
		}
		dists := reuse.StackDistances(reuse.Blocks(stream, s.VertsPerLine()))
		prof := reuse.Profile(dists, 100)
		out.Profiles = append(out.Profiles, prof)
		out.Means = append(out.Means, reuse.Summarize(dists).Mean)
		if prev != nil {
			corrs = append(corrs, pearson(prev, prof))
		}
		prev = prof
	}
	out.Correlation = stats.Mean(corrs)
	return out, nil
}

func pearson(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	ma, mb := stats.Mean(a[:n]), stats.Mean(b[:n])
	var sab, saa, sbb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / (math.Sqrt(saa) * math.Sqrt(sbb))
}

func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — reuse distance across iterations (%s, ORI)\n", r.Mesh)
	for i, prof := range r.Profiles {
		fmt.Fprintf(&b, "iter %d (mean %8.1f): %s\n", i+1, r.Means[i], stats.Sparkline(prof))
	}
	fmt.Fprintf(&b, "mean correlation between consecutive iteration profiles: %.3f (paper: patterns repeat)\n", r.Correlation)
	return b.String()
}

// ---------------------------------------------------------------- §5.4 cost

// CostRow is one mesh's reordering-cost accounting.
type CostRow struct {
	Mesh string
	// OrderWall is the measured wall time of computing RDR.
	OrderWall time.Duration
	// IterWall is the measured wall time of one ORI smoothing iteration.
	IterWall time.Duration
	// ModelGainPerIter is the modeled per-iteration gain of RDR over ORI in
	// seconds, and BreakEvenIters = model iteration cost / gain: the number
	// of smoothing iterations after which reordering pays off (paper: >4).
	ModelGainPerIter float64
	BreakEvenIters   float64
}

// CostResult reproduces the §5.4 discussion of reordering cost.
type CostResult struct {
	Rows []CostRow
}

// Cost measures reordering cost against smoothing gain.
func (s *Suite) Cost() (*CostResult, error) {
	out := &CostResult{}
	for _, name := range s.Cfg.Meshes {
		ow, err := s.OrderTime(name, "RDR")
		if err != nil {
			return nil, err
		}
		m, err := s.Mesh(name)
		if err != nil {
			return nil, err
		}
		clone := m.Clone()
		start := time.Now()
		if _, err := smooth.Run(clone, smooth.Options{MaxIters: 1, Tol: -1}); err != nil {
			return nil, err
		}
		iw := time.Since(start)

		iters, err := s.ConvergedIters(name)
		if err != nil {
			return nil, err
		}
		estORI, err := s.ModeledTime(name, "ORI", 1)
		if err != nil {
			return nil, err
		}
		estRDR, err := s.ModeledTime(name, "RDR", 1)
		if err != nil {
			return nil, err
		}
		gainPerIter := (estORI.Seconds - estRDR.Seconds) / float64(iters)
		iterCost := estORI.Seconds / float64(iters) // reordering ≈ one ORI iteration (§5.4)
		row := CostRow{Mesh: name, OrderWall: ow, IterWall: iw, ModelGainPerIter: gainPerIter}
		if gainPerIter > 0 {
			row.BreakEvenIters = iterCost / gainPerIter
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func (r *CostResult) String() string {
	var b strings.Builder
	b.WriteString("§5.4 — reordering cost (paper: RDR costs ≈ one ORI iteration; pays off beyond ~4 iterations)\n")
	t := &stats.Table{Header: []string{"mesh", "RDR order wall", "1 iter wall", "model gain/iter s", "break-even iters"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mesh, row.OrderWall.String(), row.IterWall.String(), row.ModelGainPerIter, row.BreakEvenIters)
	}
	b.WriteString(t.String())
	return b.String()
}
