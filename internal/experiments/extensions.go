package experiments

import (
	"fmt"
	"strings"

	"lams/internal/cache"
	"lams/internal/reuse"
	"lams/internal/smooth"
	"lams/internal/stats"
	"lams/internal/trace"
)

// Extension experiments beyond the paper's evaluation: the a-posteriori
// CPACK baseline, hardware prefetching, miss-ratio curves, and the
// smoothing variants named in the paper's conclusion.

// ---------------------------------------------------------------- CPACK

// CPackRow is one ordering's line in the CPACK comparison.
type CPackRow struct {
	Ordering      string
	MeanReuse     float64
	Q90           int64
	PenaltyCycles float64
}

// CPackResult compares RDR against the trace-driven consecutive-packing
// ordering it approximates: CPACK is the first-touch packing of the actual
// traversal (an oracle requiring a profiling run), RDR predicts it from
// initial qualities alone.
type CPackResult struct {
	Mesh string
	Rows []CPackRow
}

// CPack runs the comparison on the first configured mesh.
func (s *Suite) CPack() (*CPackResult, error) {
	meshName := s.Cfg.Meshes[0]
	out := &CPackResult{Mesh: meshName}
	for _, ordName := range []string{"ORI", "BFS", "RDR", "CPACK"} {
		stream, err := s.FirstIterBlocks(meshName, ordName)
		if err != nil {
			return nil, err
		}
		dists := reuse.StackDistances(stream)
		sum := reuse.Summarize(dists)
		qs, err := reuse.Quantiles(dists, []float64{0.9})
		if err != nil {
			return nil, err
		}
		est, err := s.ModeledTime(meshName, ordName, 1)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, CPackRow{
			Ordering: ordName, MeanReuse: sum.Mean, Q90: qs[0], PenaltyCycles: est.PenaltyCycles,
		})
	}
	return out, nil
}

func (r *CPackResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — RDR vs trace-driven CPACK (%s mesh)\n", r.Mesh)
	t := &stats.Table{Header: []string{"ordering", "mean RD", "q90", "penalty cycles"}}
	for _, row := range r.Rows {
		t.AddRow(row.Ordering, row.MeanReuse, row.Q90, row.PenaltyCycles)
	}
	b.WriteString(t.String())
	b.WriteString("expectation: RDR approaches the CPACK oracle without needing a profiling run\n")
	return b.String()
}

// ---------------------------------------------------------------- prefetch

// PrefetchRow is one (ordering, degree) line.
type PrefetchRow struct {
	Ordering string
	Degree   int
	L1Misses int64
	Coverage float64
}

// PrefetchResult studies how a next-line prefetcher interacts with the
// orderings: §4.1 argues orderings work *with* the streaming behaviour of
// the memory system, so sequential layouts (RDR) should profit most.
type PrefetchResult struct {
	Mesh string
	Rows []PrefetchRow
}

// Prefetch runs the prefetcher study on the first configured mesh.
func (s *Suite) Prefetch() (*PrefetchResult, error) {
	meshName := s.Cfg.Meshes[0]
	out := &PrefetchResult{Mesh: meshName}
	cfg := s.Cfg.Model.Cache
	for _, ordName := range SerialOrderings {
		tb, _, err := s.TraceRun(meshName, ordName, 1, 1)
		if err != nil {
			return nil, err
		}
		for _, degree := range []int{0, 2} {
			p, err := cache.NewPrefetchSim(cfg, 1, degree)
			if err != nil {
				return nil, err
			}
			for _, v := range tb.Core(0) {
				p.AccessVertex(0, v)
			}
			out.Rows = append(out.Rows, PrefetchRow{
				Ordering: ordName,
				Degree:   degree,
				L1Misses: p.CoreStats(0)[0].Misses,
				Coverage: p.Coverage(),
			})
		}
	}
	return out, nil
}

func (r *PrefetchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — next-line prefetching (%s mesh)\n", r.Mesh)
	t := &stats.Table{Header: []string{"ordering", "degree", "L1 misses", "coverage"}}
	for _, row := range r.Rows {
		t.AddRow(row.Ordering, row.Degree, row.L1Misses, row.Coverage)
	}
	b.WriteString(t.String())
	b.WriteString("expectation: prefetching helps RDR's near-sequential stream the most\n")
	return b.String()
}

// ---------------------------------------------------------------- MRC

// MRCResult holds miss-ratio curves per ordering: miss ratio as a function
// of LRU capacity (in cache lines), the full generalization of the paper's
// three fixed cache levels.
type MRCResult struct {
	Mesh       string
	Capacities []int64
	Curves     map[string][]float64
}

// MRC computes the curves for the first configured mesh.
func (s *Suite) MRC() (*MRCResult, error) {
	meshName := s.Cfg.Meshes[0]
	m, err := s.Mesh(meshName)
	if err != nil {
		return nil, err
	}
	maxLines := int64(m.NumVerts()/s.VertsPerLine()) + 1
	out := &MRCResult{
		Mesh:       meshName,
		Capacities: reuse.CapacitySweep(maxLines, 12),
		Curves:     map[string][]float64{},
	}
	for _, ordName := range SerialOrderings {
		stream, err := s.FirstIterBlocks(meshName, ordName)
		if err != nil {
			return nil, err
		}
		dists := reuse.StackDistances(stream)
		out.Curves[ordName] = reuse.MissRatioCurve(dists, out.Capacities)
	}
	return out, nil
}

func (r *MRCResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — LRU miss-ratio curves (%s mesh; capacity in lines)\n", r.Mesh)
	header := []string{"capacity"}
	header = append(header, SerialOrderings...)
	t := &stats.Table{Header: header}
	for i, c := range r.Capacities {
		row := []interface{}{c}
		for _, ord := range SerialOrderings {
			row = append(row, r.Curves[ord][i])
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	b.WriteString("expectation: RDR's curve drops to the compulsory floor at tiny capacities\n")
	return b.String()
}

// ---------------------------------------------------------------- variants

// VariantRow is one (variant, ordering) line.
type VariantRow struct {
	Variant       string
	Ordering      string
	FinalQuality  float64
	PenaltyCycles float64
}

// VariantsResult checks the paper's conjecture that RDR transfers to LMS
// extensions: each smoothing variant is traced under ORI and RDR layouts
// and its memory penalty compared.
type VariantsResult struct {
	Mesh string
	Rows []VariantRow
}

// Variants runs the variant-transfer study on the first configured mesh.
func (s *Suite) Variants() (*VariantsResult, error) {
	meshName := s.Cfg.Meshes[0]
	out := &VariantsResult{Mesh: meshName}
	cfg := s.Cfg.Model.Cache
	for _, variant := range []string{"smart", "weighted", "constrained"} {
		kern, err := smooth.KernelByName(variant, smooth.KernelConfig{MaxDisplacement: 0.05})
		if err != nil {
			return nil, err
		}
		for _, ordName := range []string{"ORI", "RDR"} {
			m, err := s.Reordered(meshName, ordName)
			if err != nil {
				return nil, err
			}
			tb := trace.NewBuffer(1)
			opt := smooth.Options{Kernel: kern, MaxIters: 2, Tol: -1, Trace: tb}
			res, err := smooth.Run(m.Clone(), opt)
			if err != nil {
				return nil, err
			}
			sim, err := cache.NewSim(cfg, 1)
			if err != nil {
				return nil, err
			}
			if err := sim.RunTrace(tb); err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, VariantRow{
				Variant:       variant,
				Ordering:      ordName,
				FinalQuality:  res.FinalQuality,
				PenaltyCycles: sim.CorePenaltyCycles(0),
			})
		}
	}
	return out, nil
}

func (r *VariantsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — RDR under LMS variants (%s mesh; §6 conjecture)\n", r.Mesh)
	t := &stats.Table{Header: []string{"variant", "ordering", "final quality", "penalty cycles"}}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, row.Ordering, row.FinalQuality, row.PenaltyCycles)
	}
	b.WriteString(t.String())
	b.WriteString("expectation: RDR reduces the penalty for every variant, as the paper conjectures\n")
	return b.String()
}

// ---------------------------------------------------------------- GS study

// GaussSeidelRow is one ordering's line in the update-rule study.
type GaussSeidelRow struct {
	Ordering             string
	JacobiIters, GSIters int
	JacobiFinal, GSFinal float64
}

// GaussSeidelResult contrasts Jacobi updates (ordering-independent results,
// our default, matching the paper's "orderings did not change the number of
// iterations") with in-place Gauss-Seidel updates, where Munson and
// Hovland [19] observed reordering can change convergence.
type GaussSeidelResult struct {
	Mesh string
	Rows []GaussSeidelRow
}

// GaussSeidel runs the update-rule study on the first configured mesh.
func (s *Suite) GaussSeidel() (*GaussSeidelResult, error) {
	meshName := s.Cfg.Meshes[0]
	out := &GaussSeidelResult{Mesh: meshName}
	for _, ordName := range SerialOrderings {
		m, err := s.Reordered(meshName, ordName)
		if err != nil {
			return nil, err
		}
		jac, err := smooth.Run(m.Clone(), smooth.Options{MaxIters: 50})
		if err != nil {
			return nil, err
		}
		gs, err := smooth.Run(m.Clone(), smooth.Options{MaxIters: 50, GaussSeidel: true})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, GaussSeidelRow{
			Ordering:    ordName,
			JacobiIters: jac.Iterations, GSIters: gs.Iterations,
			JacobiFinal: jac.FinalQuality, GSFinal: gs.FinalQuality,
		})
	}
	return out, nil
}

func (r *GaussSeidelResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — Jacobi vs Gauss-Seidel updates per ordering (%s mesh)\n", r.Mesh)
	t := &stats.Table{Header: []string{"ordering", "jacobi iters", "gs iters", "jacobi quality", "gs quality"}}
	for _, row := range r.Rows {
		t.AddRow(row.Ordering, row.JacobiIters, row.GSIters, row.JacobiFinal, row.GSFinal)
	}
	b.WriteString(t.String())
	b.WriteString("Jacobi results are ordering-invariant (§5.1's note); Gauss-Seidel's may drift [19]\n")
	return b.String()
}
