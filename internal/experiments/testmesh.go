package experiments

import (
	"math"

	"lams/internal/geom"
)

// SmallDiskMesh builds a tiny hand-triangulated disk: one center vertex, an
// inner ring of `inner` vertices and an outer ring of `outer` vertices, with
// fan triangles center-to-inner and a strip between the rings. With
// inner=5, outer=7 the mesh has 13 vertices like the paper's Figure 5
// example. The center is displaced so its quality is clearly the worst.
func SmallDiskMesh(inner, outer int) ([]geom.Point, [][3]int32) {
	pts := make([]geom.Point, 0, 1+inner+outer)
	pts = append(pts, geom.Point{X: 0.31, Y: 0.17}) // off-center center vertex
	for i := 0; i < inner; i++ {
		a := 2 * math.Pi * float64(i) / float64(inner)
		pts = append(pts, geom.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	for i := 0; i < outer; i++ {
		a := 2*math.Pi*float64(i)/float64(outer) + 0.2
		pts = append(pts, geom.Point{X: 2 * math.Cos(a), Y: 2 * math.Sin(a)})
	}

	var tris [][3]int32
	ccw := func(a, b, c int32) {
		if geom.Orient2D(pts[a], pts[b], pts[c]) == geom.Clockwise {
			b, c = c, b
		}
		tris = append(tris, [3]int32{a, b, c})
	}
	// Fan center -> inner ring.
	for i := 0; i < inner; i++ {
		a := int32(1 + i)
		b := int32(1 + (i+1)%inner)
		ccw(0, a, b)
	}
	// Strip between rings: advance along whichever ring is "behind" in
	// angle, connecting inner ring vertex ii to outer ring vertex oi.
	angle := func(p geom.Point) float64 { return math.Atan2(p.Y, p.X) }
	unwrap := func(a, ref float64) float64 {
		for a < ref-math.Pi {
			a += 2 * math.Pi
		}
		return a
	}
	ii, oi := 0, 0
	for steps := 0; steps < inner+outer; steps++ {
		iv := int32(1 + ii%inner)
		ov := int32(1 + inner + oi%outer)
		ivn := int32(1 + (ii+1)%inner)
		ovn := int32(1 + inner + (oi+1)%outer)
		ai := unwrap(angle(pts[ivn]), angle(pts[iv]))
		ao := unwrap(angle(pts[ovn]), angle(pts[ov]))
		if (ai <= ao && ii < inner) || oi >= outer {
			ccw(iv, ov, ivn)
			ii++
		} else {
			ccw(iv, ov, ovn)
			oi++
		}
	}
	return pts, tris
}
