// Package domains defines the nine 2D test domains used throughout the
// reproduction, standing in for the nine Triangle-generated meshes of the
// paper's Table 1 (carabiner, crake, dialog, lake, riverflow, ocean, stress,
// valve, wrench). Each domain is a polygonal region, possibly with holes,
// whose silhouette loosely matches its name; what matters for the paper's
// experiments is that the domains yield unstructured triangulations with
// irregular boundaries, holes, and a spread of initial element qualities.
//
// Points(n) produces the point cloud for a mesh of roughly n vertices in
// "generation order": boundary loops first, then interior points from a
// jittered-grid scan in row-major order. This generation order defines the
// ORI (original) vertex numbering, like Triangle's output numbering does in
// the paper.
package domains

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lams/internal/geom"
)

// Domain is one named test domain.
type Domain struct {
	Name   string
	Label  string // M1..M9, as in Table 1
	Region geom.Region
	Seed   int64 // RNG seed for the interior jitter (deterministic meshes)
}

// Spec records the paper's Table 1 configuration for a mesh.
type Spec struct {
	Label     string
	Name      string
	Vertices  int
	Triangles int
}

// Table1 is the paper's input mesh configuration (Table 1).
var Table1 = []Spec{
	{"M1", "carabiner", 328082, 652920},
	{"M2", "crake", 298898, 595638},
	{"M3", "dialog", 306824, 611620},
	{"M4", "lake", 375288, 747676},
	{"M5", "riverflow", 332699, 661615},
	{"M6", "ocean", 392674, 783040},
	{"M7", "stress", 312763, 622868},
	{"M8", "valve", 300985, 599368},
	{"M9", "wrench", 386757, 771097},
}

// Names returns the nine domain names in M1..M9 order.
func Names() []string {
	out := make([]string, len(Table1))
	for i, s := range Table1 {
		out[i] = s.Name
	}
	return out
}

// SpecFor returns the Table 1 spec for the named mesh.
func SpecFor(name string) (Spec, error) {
	for _, s := range Table1 {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("domains: unknown mesh %q", name)
}

// ByName constructs the named domain.
func ByName(name string) (Domain, error) {
	for i, s := range Table1 {
		if s.Name == name {
			return Domain{
				Name:   s.Name,
				Label:  s.Label,
				Region: regionFor(s.Name),
				Seed:   int64(1000 + i),
			}, nil
		}
	}
	return Domain{}, fmt.Errorf("domains: unknown domain %q", name)
}

// All returns the nine domains in M1..M9 order.
func All() []Domain {
	out := make([]Domain, 0, len(Table1))
	for _, s := range Table1 {
		d, err := ByName(s.Name)
		if err != nil {
			panic(err) // unreachable: Table1 names are the source of truth
		}
		out = append(out, d)
	}
	return out
}

// Points returns approximately targetVerts points covering the domain in
// generation (ORI) order: boundary loops first, then interior points.
// The result is deterministic for a given domain and target.
//
// Two properties of Triangle-generated meshes matter to the paper and are
// reproduced here:
//
//   - Element quality varies *smoothly in space*: interior points come from
//     a regular grid deformed by a smooth multi-mode shear warp, so element
//     distortion (and hence edge-length-ratio quality) is locally uniform
//     but varies across the domain at feature scale. Badly-shaped elements
//     cluster in regions instead of being white noise — the structure
//     RDR's quality-guided walk exploits (§4.2).
//   - The generation (ORI) numbering has mediocre locality: Ruppert-style
//     refinement inserts Steiner points from a worst-first priority queue,
//     so creation order follows local badness, not space. Interior points
//     are therefore emitted in decreasing order of local distortion —
//     between RANDOM and BFS in reuse distance, as in Figure 1.
func (d Domain) Points(targetVerts int) []geom.Point {
	if targetVerts < 16 {
		targetVerts = 16
	}
	area := d.Region.Area()
	// A near-regular grid of spacing h places ~area/h^2 interior points.
	h := math.Sqrt(area / float64(targetVerts))

	boundary := dedupe(d.Region.BoundaryPoints(h))
	rng := rand.New(rand.NewSource(d.Seed))
	warp := newWarpField(d.Region.Bounds(), d.Seed)

	b := d.Region.Bounds()
	var pts []geom.Point
	pts = append(pts, boundary...)
	seen := make(map[geom.Point]struct{}, targetVerts)
	for _, p := range pts {
		seen[p] = struct{}{}
	}
	// Keep interior points at least ~0.4h from the sampled boundary via a
	// coarse occupancy grid over the boundary samples.
	guard := newProximityGrid(boundary, 0.45*h)

	type graded struct {
		p geom.Point
		f float64
	}
	var interior []graded
	for y := b.Min.Y + h/2; y <= b.Max.Y; y += h {
		for x := b.Min.X + h/2; x <= b.Max.X; x += h {
			g := geom.Point{X: x, Y: y}
			p := warp.apply(g)
			// A whiff of white jitter keeps the triangulation generic
			// without drowning the smooth distortion signal.
			p.X += (rng.Float64() - 0.5) * 0.04 * h
			p.Y += (rng.Float64() - 0.5) * 0.04 * h
			if !d.Region.Contains(p) || guard.near(p) {
				continue
			}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			interior = append(interior, graded{p: p, f: warp.distortion(g)})
		}
	}
	// Refinement-priority emission: worst (most distorted) regions first.
	sort.SliceStable(interior, func(i, j int) bool { return interior[i].f > interior[j].f })
	for _, g := range interior {
		pts = append(pts, g.p)
	}
	return pts
}

// warpField is a smooth displacement field: a sum of sinusoidal shear modes
// whose wavelengths are fractions of the domain size. Its local gradient —
// the element distortion it induces — varies smoothly across the domain.
type warpField struct {
	modes [3]warpMode
}

// warpMode displaces points along direction (dx, dy) by
// a*sin(kx*x + ky*y + phase).
type warpMode struct {
	kx, ky, dx, dy, a, phase float64
}

func newWarpField(b geom.Rect, seed int64) *warpField {
	rng := rand.New(rand.NewSource(seed ^ 0x3779B97F4A7C15))
	diag := math.Hypot(b.Width(), b.Height())
	if diag == 0 {
		diag = 1
	}
	w := &warpField{}
	// Wavelengths diag/3, diag/5, diag/8; per-mode shear strength c keeps
	// the total |∇d| below ~0.85 so the warp never folds.
	for i, div := range []float64{1.4, 2.2, 3.4} {
		lambda := diag / div
		k := 2 * math.Pi / lambda
		c := 0.30
		dir := 2 * math.Pi * rng.Float64()
		disp := 2 * math.Pi * rng.Float64()
		w.modes[i] = warpMode{
			kx:    k * math.Cos(dir),
			ky:    k * math.Sin(dir),
			dx:    math.Cos(disp),
			dy:    math.Sin(disp),
			a:     c / k,
			phase: 2 * math.Pi * rng.Float64(),
		}
	}
	return w
}

// apply returns the warped position of p.
func (w *warpField) apply(p geom.Point) geom.Point {
	out := p
	for _, m := range w.modes {
		s := m.a * math.Sin(m.kx*p.X+m.ky*p.Y+m.phase)
		out.X += s * m.dx
		out.Y += s * m.dy
	}
	return out
}

// distortion returns the local shear magnitude |∇d| at p, a smooth proxy
// for how badly elements near p are shaped.
func (w *warpField) distortion(p geom.Point) float64 {
	var total float64
	for _, m := range w.modes {
		k := math.Hypot(m.kx, m.ky)
		total += math.Abs(m.a * k * math.Cos(m.kx*p.X+m.ky*p.Y+m.phase))
	}
	return total
}

func dedupe(pts []geom.Point) []geom.Point {
	seen := make(map[geom.Point]struct{}, len(pts))
	out := pts[:0]
	for _, p := range pts {
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	return out
}

// proximityGrid answers "is any seeded point within radius r" queries with a
// uniform hash grid of cell size r.
type proximityGrid struct {
	r     float64
	cells map[[2]int32][]geom.Point
}

func newProximityGrid(pts []geom.Point, r float64) *proximityGrid {
	g := &proximityGrid{r: r, cells: make(map[[2]int32][]geom.Point, len(pts))}
	for _, p := range pts {
		c := g.cell(p)
		g.cells[c] = append(g.cells[c], p)
	}
	return g
}

func (g *proximityGrid) cell(p geom.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / g.r)), int32(math.Floor(p.Y / g.r))}
}

func (g *proximityGrid) near(p geom.Point) bool {
	c := g.cell(p)
	r2 := g.r * g.r
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, q := range g.cells[[2]int32{c[0] + dx, c[1] + dy}] {
				if p.Dist2(q) < r2 {
					return true
				}
			}
		}
	}
	return false
}

// blob returns an irregular star-convex outline: a circle of radius rad
// around c, radially modulated by a few sine harmonics.
func blob(c geom.Point, rad float64, n int, seed int64, roughness float64) geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	const harmonics = 5
	amp := make([]float64, harmonics)
	phase := make([]float64, harmonics)
	for i := range amp {
		amp[i] = roughness * rad * rng.Float64() / float64(i+1)
		phase[i] = 2 * math.Pi * rng.Float64()
	}
	pg := make(geom.Polygon, n)
	for i := range pg {
		a := 2 * math.Pi * float64(i) / float64(n)
		r := rad
		for k := 0; k < harmonics; k++ {
			r += amp[k] * math.Sin(float64(k+2)*a+phase[k])
		}
		pg[i] = geom.Point{X: c.X + r*math.Cos(a), Y: c.Y + r*math.Sin(a)}
	}
	return pg
}

// sinuousBand builds a winding corridor of the given half-width: the top
// edge follows a sine path left to right, the bottom edge returns.
func sinuousBand(length, amp, halfWidth float64, n int) geom.Polygon {
	top := make([]geom.Point, n)
	bot := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		x := t * length
		y := amp * math.Sin(3*math.Pi*t)
		// Normal direction of the centerline.
		dy := amp * 3 * math.Pi * math.Cos(3*math.Pi*t) / length
		nx, ny := -dy, 1.0
		nn := math.Hypot(nx, ny)
		nx, ny = nx/nn*halfWidth, ny/nn*halfWidth
		top[i] = geom.Point{X: x + nx, Y: y + ny}
		bot[i] = geom.Point{X: x - nx, Y: y - ny}
	}
	pg := make(geom.Polygon, 0, 2*n)
	pg = append(pg, bot...)
	for i := n - 1; i >= 0; i-- {
		pg = append(pg, top[i])
	}
	return pg
}

func regionFor(name string) geom.Region {
	switch name {
	case "carabiner":
		// Elongated rounded ring, like a climbing carabiner.
		out := make(geom.Polygon, 0, 96)
		in := make(geom.Polygon, 0, 96)
		for i := 0; i < 96; i++ {
			a := 2 * math.Pi * float64(i) / 96
			// Superellipse-ish oblong.
			out = append(out, geom.Point{X: 1.6 * sgnPow(math.Cos(a), 0.8), Y: 2.6 * sgnPow(math.Sin(a), 0.8)})
			in = append(in, geom.Point{X: 0.95 * sgnPow(math.Cos(a), 0.9), Y: 1.9 * sgnPow(math.Sin(a), 0.9)})
		}
		return geom.Region{Outer: out, Holes: []geom.Polygon{in.Reverse()}}
	case "crake":
		// Bird-ish irregular blob, no holes.
		return geom.Region{Outer: blob(geom.Point{}, 2.0, 128, 42, 0.35)}
	case "dialog":
		// Rounded box with two button cutouts and a text-area cutout.
		return geom.Region{
			Outer: geom.RectPolygon(0, 0, 6, 4),
			Holes: []geom.Polygon{
				geom.RectPolygon(0.5, 2.4, 5.5, 3.5).Reverse(),
				geom.RectPolygon(0.8, 0.5, 2.4, 1.3).Reverse(),
				geom.RectPolygon(3.6, 0.5, 5.2, 1.3).Reverse(),
			},
		}
	case "lake":
		// Irregular lake with two islands.
		return geom.Region{
			Outer: blob(geom.Point{}, 2.4, 160, 77, 0.30),
			Holes: []geom.Polygon{
				blob(geom.Point{X: -0.8, Y: 0.5}, 0.45, 48, 78, 0.25).Reverse(),
				blob(geom.Point{X: 0.9, Y: -0.7}, 0.35, 40, 79, 0.25).Reverse(),
			},
		}
	case "riverflow":
		// Long sinuous corridor.
		return geom.Region{Outer: sinuousBand(10, 1.2, 0.45, 160)}
	case "ocean":
		// Large basin with a ragged coastline and three islands.
		return geom.Region{
			Outer: blob(geom.Point{}, 3.0, 200, 101, 0.22),
			Holes: []geom.Polygon{
				blob(geom.Point{X: 1.1, Y: 0.8}, 0.4, 40, 102, 0.3).Reverse(),
				blob(geom.Point{X: -1.3, Y: -0.4}, 0.5, 44, 103, 0.3).Reverse(),
				blob(geom.Point{X: 0.2, Y: -1.5}, 0.3, 36, 104, 0.3).Reverse(),
			},
		}
	case "stress":
		// Classic stress specimen: plate with three circular holes.
		return geom.Region{
			Outer: geom.RectPolygon(0, 0, 8, 3),
			Holes: []geom.Polygon{
				geom.RegularPolygon(geom.Point{X: 2, Y: 1.5}, 0.6, 48, 0).Reverse(),
				geom.RegularPolygon(geom.Point{X: 4, Y: 1.5}, 0.4, 40, 0).Reverse(),
				geom.RegularPolygon(geom.Point{X: 6, Y: 1.5}, 0.6, 48, 0).Reverse(),
			},
		}
	case "valve":
		// Valve body: disk with an annular seat and a radial slot.
		return geom.Region{
			Outer: blob(geom.Point{}, 2.0, 128, 55, 0.05),
			Holes: []geom.Polygon{
				geom.RegularPolygon(geom.Point{}, 0.8, 64, 0).Reverse(),
				geom.RectPolygon(-0.15, 0.95, 0.15, 1.5).Reverse(),
			},
		}
	case "wrench":
		// Open-end wrench: straight handle into a round head with hex hole.
		return geom.Region{
			Outer: wrenchOutline(),
			Holes: []geom.Polygon{geom.RegularPolygon(geom.Point{X: 8.9, Y: 0}, 0.62, 6, math.Pi/6).Reverse()},
		}
	default:
		panic("domains: regionFor called with unknown name " + name)
	}
}

// sgnPow returns sign(v)*|v|^p, the superellipse shaping function.
func sgnPow(v, p float64) float64 {
	if v < 0 {
		return -math.Pow(-v, p)
	}
	return math.Pow(v, p)
}

// wrenchOutline traces the wrench silhouette counterclockwise: along the
// bottom of the handle, around the far side of the head circle, and back
// along the top of the handle. The head circle (center (8.9, 0), radius 1.4)
// meets the half-width-0.5 handle where sin(a) = 0.5/1.4.
func wrenchOutline() geom.Polygon {
	const (
		cx, r = 8.9, 1.4
		hw    = 0.5
	)
	join := math.Pi - math.Asin(hw/r) // angle of the upper junction
	var pg geom.Polygon
	pg = append(pg, geom.Point{X: 0, Y: -hw}, geom.Point{X: cx + r*math.Cos(join), Y: -hw})
	const arcSteps = 72
	for i := 0; i <= arcSteps; i++ {
		a := -join + 2*join*float64(i)/arcSteps
		pg = append(pg, geom.Point{X: cx + r*math.Cos(a), Y: r * math.Sin(a)})
	}
	pg = append(pg, geom.Point{X: 0, Y: hw})
	return pg
}
