package domains

import (
	"testing"

	"lams/internal/geom"
)

func TestNamesMatchTable1(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("want 9 names, got %d", len(names))
	}
	if names[0] != "carabiner" || names[8] != "wrench" {
		t.Errorf("names order wrong: %v", names)
	}
}

func TestSpecFor(t *testing.T) {
	s, err := SpecFor("ocean")
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "M6" || s.Vertices != 392674 || s.Triangles != 783040 {
		t.Errorf("ocean spec = %+v", s)
	}
	if _, err := SpecFor("nope"); err == nil {
		t.Error("unknown mesh should error")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown domain should error")
	}
}

func TestAllDomainsValid(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			if d.Region.Area() <= 0 {
				t.Fatalf("region area %v", d.Region.Area())
			}
			if len(d.Region.Outer) < 3 {
				t.Fatal("outer polygon too small")
			}
			// Holes must lie inside the outer polygon and wind opposite.
			if d.Region.Outer.SignedArea() <= 0 {
				t.Error("outer polygon should be counterclockwise")
			}
			for i, h := range d.Region.Holes {
				if h.SignedArea() >= 0 {
					t.Errorf("hole %d should be clockwise", i)
				}
				for _, p := range h {
					if !d.Region.Outer.Contains(p) {
						t.Errorf("hole %d vertex %v outside outer polygon", i, p)
						break
					}
				}
			}
		})
	}
}

func TestPointsDeterministic(t *testing.T) {
	d, err := ByName("crake")
	if err != nil {
		t.Fatal(err)
	}
	a := d.Points(2000)
	b := d.Points(2000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestPointsCountNearTarget(t *testing.T) {
	for _, name := range []string{"carabiner", "stress"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const target = 5000
		pts := d.Points(target)
		if len(pts) < target*3/4 || len(pts) > target*3/2 {
			t.Errorf("%s: %d points for target %d", name, len(pts), target)
		}
	}
}

func TestPointsInsideOrOnBoundary(t *testing.T) {
	d, err := ByName("valve")
	if err != nil {
		t.Fatal(err)
	}
	pts := d.Points(3000)
	bp := len(dedupe(d.Region.BoundaryPoints(0))) // just ensure helper exists
	_ = bp
	inside := 0
	for _, p := range pts {
		if d.Region.Contains(p) {
			inside++
		}
	}
	// Interior points are strictly inside; boundary samples sit on the
	// outline where Contains may go either way. At least the interior share
	// must be inside.
	if frac := float64(inside) / float64(len(pts)); frac < 0.7 {
		t.Errorf("only %.0f%% of points inside region", 100*frac)
	}
}

func TestPointsNoDuplicates(t *testing.T) {
	d, err := ByName("dialog")
	if err != nil {
		t.Fatal(err)
	}
	pts := d.Points(3000)
	seen := make(map[geom.Point]bool, len(pts))
	for i, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate point at index %d: %v", i, p)
		}
		seen[p] = true
	}
}

func TestPointsBoundaryFirst(t *testing.T) {
	d, err := ByName("lake")
	if err != nil {
		t.Fatal(err)
	}
	pts := d.Points(2000)
	// The boundary samples (which include the polygon vertices) come first:
	// the first point must be the first outer-polygon vertex.
	if pts[0] != d.Region.Outer[0] {
		t.Errorf("first point %v is not the first boundary vertex %v", pts[0], d.Region.Outer[0])
	}
}

func TestPointsTinyTarget(t *testing.T) {
	d, err := ByName("crake")
	if err != nil {
		t.Fatal(err)
	}
	pts := d.Points(1) // clamped to a sane minimum
	if len(pts) < 3 {
		t.Errorf("too few points: %d", len(pts))
	}
}

func TestWarpFieldSmooth(t *testing.T) {
	d, err := ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	w := newWarpField(d.Region.Bounds(), d.Seed)
	b := d.Region.Bounds()
	// Distortion at nearby points must be close (smoothness), and the warp
	// displacement bounded.
	step := b.Width() / 1000
	p := b.Center()
	q := geom.Point{X: p.X + step, Y: p.Y}
	if diff := w.distortion(p) - w.distortion(q); diff > 0.05 || diff < -0.05 {
		t.Errorf("distortion jumps by %v over %v", diff, step)
	}
	disp := w.apply(p).Sub(p).Norm()
	if disp > b.Width() {
		t.Errorf("displacement %v larger than domain", disp)
	}
}

func TestPointsIncludePolygonVertices(t *testing.T) {
	// Boundary sampling must keep the polygon's own vertices so the domain
	// outline is represented exactly.
	d, err := ByName("stress")
	if err != nil {
		t.Fatal(err)
	}
	pts := d.Points(4000)
	have := make(map[geom.Point]bool, len(pts))
	for _, p := range pts {
		have[p] = true
	}
	for _, v := range d.Region.Outer {
		if !have[v] {
			t.Fatalf("outer vertex %v missing from point cloud", v)
		}
	}
}
