package parallel

import (
	"context"
	"sync/atomic"
)

func init() {
	RegisterScheduler(ScheduleGuided, func() Scheduler { return &Guided{} })
}

// DefaultGuidedMinChunk is the floor on guided chunk sizes. Chunks below it
// would spend more time on the shared cursor than on the work; it also
// bounds how finely the tail of the range is fragmented.
const DefaultGuidedMinChunk = 64

// Guided is the OpenMP schedule(guided) analogue: workers pull chunks from
// a shared atomic cursor, each sized proportionally to the work remaining
// (remaining / workers, floored at MinChunk). Early chunks are large —
// preserving most of the locality a reordering bought — and late chunks
// shrink so no worker is left holding a long tail while the others idle.
//
// The zero value is ready to use. Not safe for concurrent Run calls.
type Guided struct {
	// MinChunk floors the chunk size (default DefaultGuidedMinChunk).
	MinChunk int

	spawner
	cursor atomic.Int64
}

// Name implements Scheduler.
func (g *Guided) Name() string { return ScheduleGuided }

// Run implements Scheduler.
func (g *Guided) Run(ctx context.Context, n, workers int, fn func(worker int, c Chunk)) error {
	if workers <= 1 || n == 0 {
		return runSerial(ctx, n, fn)
	}
	if g.body == nil {
		g.body = g.work
	}
	g.cursor.Store(0)
	return g.launch(ctx, n, workers, fn)
}

// work is one worker's pull loop: size the next chunk from the remaining
// work, claim it by advancing the shared cursor, process it, repeat. The
// size estimate may be stale by the time the cursor advances; the claim is
// still exact (the cursor is the single source of truth) and the final
// chunk is clamped to n.
func (g *Guided) work() {
	defer g.wg.Done()
	w := g.workerID()
	minChunk := g.MinChunk
	if minChunk <= 0 {
		minChunk = DefaultGuidedMinChunk
	}
	for {
		if g.ctx.Err() != nil {
			return
		}
		remaining := g.n - int(g.cursor.Load())
		if remaining <= 0 {
			return
		}
		size := remaining / g.workers
		if size < minChunk {
			size = minChunk
		}
		lo := int(g.cursor.Add(int64(size))) - size
		if lo >= g.n {
			return
		}
		hi := lo + size
		if hi > g.n {
			hi = g.n
		}
		g.fn(w, Chunk{lo, hi})
	}
}
