package parallel

import (
	"context"
	"runtime"
)

// Cold-start setup parallelism. The reorder-once/smooth-many amortization
// divides by the cost of the serial setup stages — spatial-key computation,
// CSR construction, the greedy walk — so the per-element setup passes run
// chunk-parallel through the same scheduler registry as the sweeps. Setup
// passes differ from sweeps in lifecycle (one-shot, not steady-state) and
// in caller (mesh assembly and key generation have no worker knob), so this
// file provides the policy: pick a worker count from GOMAXPROCS and the
// element count, grab a fresh static scheduler, and run. Correctness does
// not depend on the worker count — every setup body writes disjoint,
// position-determined outputs, so the result is deterministic (and equal to
// the serial pass) at any parallelism.

// setupGrain is the minimum number of elements a setup worker must have to
// be worth spawning: below it the fork/join overhead exceeds the work.
const setupGrain = 2048

// SetupWorkers returns the worker count a cold-start setup pass uses for n
// elements: GOMAXPROCS, capped so every worker has at least setupGrain
// elements; always at least 1.
func SetupWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if max := n / setupGrain; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Setup runs fn over [0, n) in contiguous chunks, distributed across
// SetupWorkers(n) workers by a fresh static scheduler (serially, inline,
// when the pass is too small to parallelize). fn must write only outputs
// whose position is determined by the index — under that contract the
// result is bit-identical to the serial pass at every worker count, which
// is what keeps parallel setup invisible to everything downstream.
func Setup(n int, fn func(c Chunk)) {
	workers := SetupWorkers(n)
	if workers <= 1 {
		if n > 0 {
			fn(Chunk{Lo: 0, Hi: n})
		}
		return
	}
	sched, err := SchedulerByName(ScheduleStatic)
	if err != nil {
		// The static schedule registers from this package's init; its
		// absence is a programmer error, not a runtime condition.
		panic(err)
	}
	// A fresh scheduler and the background context: setup passes are
	// one-shot (no scratch worth keeping) and not cancelable mid-build (a
	// half-built CSR is useless, and the passes are short).
	_ = sched.Run(context.Background(), n, workers, func(_ int, c Chunk) { fn(c) })
}
