package parallel

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// TestBlockTiling checks that ReduceBlocks/BlockSpan tile [0, n) exactly:
// spans are contiguous, non-overlapping, full-size except the last, and
// cover every index.
func TestBlockTiling(t *testing.T) {
	for _, n := range []int{0, 1, ReduceBlock - 1, ReduceBlock, ReduceBlock + 1, 3*ReduceBlock + 17, 10 * ReduceBlock} {
		nb := ReduceBlocks(n)
		covered := 0
		for b := 0; b < nb; b++ {
			span := BlockSpan(n, b)
			if span.Lo != covered {
				t.Fatalf("n=%d block %d starts at %d, want %d", n, b, span.Lo, covered)
			}
			if span.Len() <= 0 {
				t.Fatalf("n=%d block %d is empty", n, b)
			}
			if b < nb-1 && span.Len() != ReduceBlock {
				t.Fatalf("n=%d block %d has %d elements, want %d", n, b, span.Len(), ReduceBlock)
			}
			covered = span.Hi
		}
		if covered != n {
			t.Fatalf("n=%d blocks cover [0,%d), want [0,%d)", n, covered, n)
		}
	}
}

// TestReduceMatchesSumBlocked is the determinism contract: for every
// registered schedule and worker count, Reduce over a slice-summing body
// must be bit-identical to SumBlocked — which is itself NOT generally
// bit-identical to a plain left-to-right sum, so the test also pins that
// the two orderings really are tied together by construction rather than
// by accident.
func TestReduceMatchesSumBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 100, ReduceBlock, 5*ReduceBlock + 123, 40 * ReduceBlock} {
		xs := make([]float64, n)
		for i := range xs {
			// Wildly varying magnitudes make float addition order visible.
			xs[i] = rng.NormFloat64() * float64(int64(1)<<uint(rng.Intn(40)))
		}
		want := SumBlocked(xs)
		body := func(_, _ int, span Chunk) float64 {
			var s float64
			for _, x := range xs[span.Lo:span.Hi] {
				s += x
			}
			return s
		}
		var serial OrderedReducer
		got, err := serial.Reduce(context.Background(), nil, n, 1, body)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d serial Reduce = %v, want bit-identical %v", n, got, want)
		}
		for _, schedule := range Schedules() {
			for _, workers := range []int{1, 2, 3, 8, 16} {
				t.Run(fmt.Sprintf("n=%d/%s/workers=%d", n, schedule, workers), func(t *testing.T) {
					sched, err := SchedulerByName(schedule)
					if err != nil {
						t.Fatal(err)
					}
					var r OrderedReducer
					got, err := r.Reduce(context.Background(), sched, n, workers, body)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("Reduce = %v, want bit-identical %v", got, want)
					}
				})
			}
		}
	}
}

// TestReducerReuse drives one reducer through shrinking and growing sizes,
// mixing serial and parallel calls: the sums scratch must resize correctly
// and stale entries must never leak into a total.
func TestReducerReuse(t *testing.T) {
	var r OrderedReducer
	sched, err := SchedulerByName(ScheduleStealing)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{10 * ReduceBlock, 3, 4 * ReduceBlock, 0, ReduceBlock + 1} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i%97) + 0.5
		}
		body := func(_, _ int, span Chunk) float64 {
			var s float64
			for _, x := range xs[span.Lo:span.Hi] {
				s += x
			}
			return s
		}
		for _, workers := range []int{1, 4} {
			got, err := r.Reduce(context.Background(), sched, n, workers, body)
			if err != nil {
				t.Fatal(err)
			}
			if want := SumBlocked(xs); got != want {
				t.Fatalf("n=%d workers=%d: Reduce = %v, want %v", n, workers, got, want)
			}
		}
	}
}

// TestReduceCancellation checks that a canceled context surfaces as
// ctx.Err() and no total is produced.
func TestReduceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sched, err := SchedulerByName(ScheduleStatic)
	if err != nil {
		t.Fatal(err)
	}
	var r OrderedReducer
	_, err = r.Reduce(ctx, sched, 8*ReduceBlock, 4, func(_, _ int, span Chunk) float64 { return 1 })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReduceSteadyStateAllocs pins the reducer's zero-alloc steady state:
// after the first call has grown the sums scratch and prebuilt the run
// body, repeated reductions (serial and parallel) allocate nothing beyond
// what the scheduler itself does.
func TestReduceSteadyStateAllocs(t *testing.T) {
	xs := make([]float64, 20*ReduceBlock)
	for i := range xs {
		xs[i] = float64(i)
	}
	body := func(_, _ int, span Chunk) float64 {
		var s float64
		for _, x := range xs[span.Lo:span.Hi] {
			s += x
		}
		return s
	}
	ctx := context.Background()
	var serial OrderedReducer
	if _, err := serial.Reduce(ctx, nil, len(xs), 1, body); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := serial.Reduce(ctx, nil, len(xs), 1, body); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("serial Reduce: %.0f allocs per steady-state call, want 0", allocs)
	}

	for _, schedule := range Schedules() {
		t.Run(schedule, func(t *testing.T) {
			sched, err := SchedulerByName(schedule)
			if err != nil {
				t.Fatal(err)
			}
			var r OrderedReducer
			if _, err := r.Reduce(ctx, sched, len(xs), 8, body); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := r.Reduce(ctx, sched, len(xs), 8, body); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Errorf("schedule %s: %.0f allocs per steady-state Reduce, want <= 2", schedule, allocs)
			}
		})
	}
}
