package parallel

import "context"

// Ordered reduction: the parallel-sum primitive the quality measurement
// pass is built on.
//
// Floating-point addition is not associative, so a reduction whose partial
// sums follow the scheduler's chunk boundaries is only reproducible when
// the boundaries are — and the dynamic schedules' boundaries depend on
// runtime interleaving (guided sizes chunks off a racing remaining-work
// estimate; stealing splits deques wherever a thief lands). The ordered
// reduction therefore fixes its own granularity: [0, n) is tiled into
// ReduceBlock-sized blocks, the SCHEDULER distributes block indices (any
// schedule, any worker count), each block's partial sum is accumulated
// left-to-right over the block's elements, and the partials are combined
// serially in block order. Every term and every addition order is then a
// function of n alone, so the result is bit-identical to the serial blocked
// sum under every schedule and worker count.

// ReduceBlock is the fixed tile size of ordered reductions. It is a
// granularity constant, not a tuning knob: changing it changes the rounding
// of every blocked sum, so it is fixed for reproducibility. 1024 elements
// (8 KiB of float64) is small enough to give the dynamic schedules blocks
// to balance with and large enough that per-block bookkeeping vanishes.
const ReduceBlock = 1024

// ReduceBlocks returns the number of ReduceBlock-sized blocks tiling [0, n).
func ReduceBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ReduceBlock - 1) / ReduceBlock
}

// BlockSpan returns the element range of block b of the [0, n) tiling.
func BlockSpan(n, b int) Chunk {
	lo := b * ReduceBlock
	hi := lo + ReduceBlock
	if hi > n {
		hi = n
	}
	return Chunk{Lo: lo, Hi: hi}
}

// SumBlocked returns the blocked sum of xs: each ReduceBlock-sized block
// accumulated left-to-right, block partials combined left-to-right. This is
// the exact summation OrderedReducer.Reduce computes when its body sums the
// same elements, so serial callers summing a materialized slice stay
// bit-identical to parallel callers reducing it.
func SumBlocked(xs []float64) float64 {
	var total float64
	for lo := 0; lo < len(xs); lo += ReduceBlock {
		hi := lo + ReduceBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		var s float64
		for _, x := range xs[lo:hi] {
			s += x
		}
		total += s
	}
	return total
}

// OrderedReducer runs deterministic sum reductions over [0, n). It keeps
// the per-block partial-sum scratch and the prebuilt scheduler body across
// calls, so steady-state reductions allocate nothing. Like the schedulers
// it drives, a reducer is single-owner: not safe for concurrent Reduce
// calls. The zero value is ready to use.
type OrderedReducer struct {
	sums []float64
	n    int
	body func(worker, block int, span Chunk) float64
	run  func(worker int, c Chunk)
}

// Reduce tiles [0, n) into ReduceBlock-sized blocks, calls body once per
// block (distributed across workers by sched; serially in block order when
// sched is nil or workers <= 1), and returns the block partial sums
// combined in block order. body receives the block index and its element
// span and must return the block's partial sum accumulated left-to-right;
// it may also write per-element results into caller-owned buffers (block
// spans are disjoint, so no synchronization is needed). The result is
// bit-identical across schedules and worker counts by construction.
//
// On cancellation Reduce returns ctx.Err(); the partial sums are
// incomplete and no total is produced.
func (r *OrderedReducer) Reduce(ctx context.Context, sched Scheduler, n, workers int, body func(worker, block int, span Chunk) float64) (float64, error) {
	nb := ReduceBlocks(n)
	if cap(r.sums) < nb {
		r.sums = make([]float64, nb)
	}
	r.sums = r.sums[:nb]
	r.n, r.body = n, body
	if sched == nil || workers <= 1 {
		for b := 0; b < nb; b++ {
			r.sums[b] = body(0, b, BlockSpan(n, b))
		}
	} else {
		if r.run == nil {
			// Prebuilt once: the steady-state Reduce passes an existing func
			// value to the scheduler and allocates nothing.
			r.run = func(w int, c Chunk) {
				for b := c.Lo; b < c.Hi; b++ {
					r.sums[b] = r.body(w, b, BlockSpan(r.n, b))
				}
			}
		}
		if err := sched.Run(ctx, nb, workers, r.run); err != nil {
			r.body = nil
			return 0, err
		}
	}
	r.body = nil
	var total float64
	for _, s := range r.sums {
		total += s
	}
	return total, nil
}
