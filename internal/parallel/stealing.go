package parallel

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
)

func init() {
	RegisterScheduler(ScheduleStealing, func() Scheduler { return &Stealing{} })
}

// DefaultStealGrain is the floor on the chunk size an owner takes from the
// front of its own range per grab.
const DefaultStealGrain = 64

// Stealing is a contiguous-range work-stealing schedule. Every worker
// starts with the same static chunk the Static schedule would give it, so
// in the balanced case the two behave identically; the difference is what
// happens to stragglers. A worker consumes its own range from the front in
// grain-sized pieces, and a worker that runs dry steals the back half of a
// pseudo-randomly probed victim's remainder. Ranges stay contiguous under
// both operations, so the indices inside every chunk handed to fn are
// consecutive and ascending — the locality a vertex reordering bought
// survives stealing, shrinking only at the steal boundaries.
//
// Each per-worker range is a lock-free deque packed into one uint64
// (lo in the high half, hi in the low half) updated by CAS: the owner
// advances lo, thieves retreat hi. Within a run lo only grows and hi only
// shrinks, so a packed value never repeats and CAS is immune to ABA.
//
// The zero value is ready to use; the span array is retained between runs
// (per-worker scratch reuse). Not safe for concurrent Run calls.
type Stealing struct {
	// Grain floors the owner's per-grab chunk size (default
	// DefaultStealGrain). Tests use Grain 1 to maximize contention.
	Grain int

	spans []stealSpan // one deque per worker, reused across runs

	spawner
	remaining atomic.Int64 // unclaimed indices; workers exit at 0
}

// stealSpan is one worker's range, padded to a cache line so the owner's
// CAS traffic does not false-share with its neighbors'.
type stealSpan struct {
	v atomic.Uint64
	_ [56]byte
}

func packSpan(lo, hi int) uint64     { return uint64(lo)<<32 | uint64(hi) }
func unpackSpan(v uint64) (int, int) { return int(v >> 32), int(v & 0xFFFFFFFF) }

// Name implements Scheduler.
func (s *Stealing) Name() string { return ScheduleStealing }

// Run implements Scheduler. n is limited to what a packed span can index
// (MaxUint32); a larger range errors rather than silently wrapping.
func (s *Stealing) Run(ctx context.Context, n, workers int, fn func(worker int, c Chunk)) error {
	if workers <= 1 || n == 0 {
		return runSerial(ctx, n, fn)
	}
	if uint64(n) > math.MaxUint32 {
		return fmt.Errorf("parallel: stealing schedule supports at most %d indices, got %d", uint64(math.MaxUint32), n)
	}
	if s.body == nil {
		s.body = s.work
	}
	if cap(s.spans) < workers {
		s.spans = make([]stealSpan, workers)
	}
	s.spans = s.spans[:workers]
	for i := range s.spans {
		c := StaticChunk(n, workers, i)
		s.spans[i].v.Store(packSpan(c.Lo, c.Hi))
	}
	s.remaining.Store(int64(n))
	return s.launch(ctx, n, workers, fn)
}

// work is one worker's loop: drain the own range from the front, then probe
// the other workers in a pseudo-random order and steal the back half of the
// first non-empty range found. The loop exits when every index has been
// claimed (claimed work is finished by its claimant before wg.Wait returns)
// or the context is canceled.
func (s *Stealing) work() {
	defer s.wg.Done()
	w := s.workerID()
	grain := s.Grain
	if grain <= 0 {
		grain = DefaultStealGrain
	}
	// Per-worker xorshift state for victim probing; seeding from the worker
	// id keeps the schedule self-contained (results never depend on the
	// probe order, only steal contention does).
	rng := uint64(w)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for s.remaining.Load() > 0 {
		if s.ctx.Err() != nil {
			return
		}
		if c, ok := s.popFront(w, grain); ok {
			s.remaining.Add(-int64(c.Len()))
			s.fn(w, c)
			continue
		}
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		stole := false
		off := int(rng % uint64(s.workers))
		for i := 0; i < s.workers; i++ {
			v := (off + i) % s.workers
			if v == w {
				continue
			}
			if c, ok := s.stealBack(v); ok {
				s.remaining.Add(-int64(c.Len()))
				s.fn(w, c)
				stole = true
				break
			}
		}
		if !stole {
			// Everything left is claimed or contended; yield and re-check.
			runtime.Gosched()
		}
	}
}

// popFront claims a grain-sized chunk off the front of worker w's own
// range: at least grain indices, more while the range is long (an eighth of
// the remainder) so a locality-friendly large chunk is kept when there is
// no balance pressure yet.
func (s *Stealing) popFront(w, grain int) (Chunk, bool) {
	sp := &s.spans[w]
	for {
		packed := sp.v.Load()
		lo, hi := unpackSpan(packed)
		if lo >= hi {
			return Chunk{}, false
		}
		g := grain
		if r := (hi - lo) / 8; r > g {
			g = r
		}
		if g > hi-lo {
			g = hi - lo
		}
		if sp.v.CompareAndSwap(packed, packSpan(lo+g, hi)) {
			return Chunk{lo, lo + g}, true
		}
	}
}

// stealBack claims the back half of victim v's remaining range.
func (s *Stealing) stealBack(v int) (Chunk, bool) {
	sp := &s.spans[v]
	for {
		packed := sp.v.Load()
		lo, hi := unpackSpan(packed)
		avail := hi - lo
		if avail <= 0 {
			return Chunk{}, false
		}
		take := (avail + 1) / 2
		if sp.v.CompareAndSwap(packed, packSpan(lo, hi-take)) {
			return Chunk{hi - take, hi}, true
		}
	}
}
