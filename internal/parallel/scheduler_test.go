package parallel

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// runAndCount runs sched over [0, n) and returns a per-index visit counter
// plus any contract violation observed inside fn (worker id or chunk bounds
// out of range). fn runs on worker goroutines, so violations are collected
// atomically and reported by the caller.
func runAndCount(t *testing.T, sched Scheduler, n, workers int) []int32 {
	t.Helper()
	counts := make([]int32, n)
	var badWorker, badChunk atomic.Int32
	err := sched.Run(context.Background(), n, workers, func(w int, c Chunk) {
		if w < 0 || w >= workers {
			badWorker.Store(int32(w) + 1)
		}
		if c.Lo < 0 || c.Hi > n || c.Lo > c.Hi {
			badChunk.Store(1)
		}
		for i := c.Lo; i < c.Hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w := badWorker.Load(); w != 0 {
		t.Fatalf("worker id %d out of [0, %d)", w-1, workers)
	}
	if badChunk.Load() != 0 {
		t.Fatalf("chunk out of [0, %d) handed to fn", n)
	}
	return counts
}

// TestSchedulersCoverExactlyOnce drives every registered schedule across a
// grid of sizes and worker counts — including n == 0, workers > n, and
// non-dividing counts — and asserts the shared contract: each index handed
// to fn exactly once. The same instance runs the whole grid, so scratch
// reuse across differently-shaped runs is exercised too.
func TestSchedulersCoverExactlyOnce(t *testing.T) {
	shapes := []struct{ n, workers int }{
		{0, 1}, {0, 8}, {1, 1}, {1, 8}, {17, 4}, {64, 64}, {100, 7},
		{1000, 1}, {1000, 3}, {1000, 16}, {37, 64}, {10000, 8},
	}
	for _, name := range Schedules() {
		sched, err := SchedulerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sched.Name() != name {
			t.Fatalf("SchedulerByName(%q).Name() = %q", name, sched.Name())
		}
		for _, shape := range shapes {
			t.Run(fmt.Sprintf("%s/n=%d/workers=%d", name, shape.n, shape.workers), func(t *testing.T) {
				counts := runAndCount(t, sched, shape.n, shape.workers)
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("index %d visited %d times, want exactly 1", i, c)
					}
				}
			})
		}
	}
}

// TestSchedulersTinyGrainCoverage re-runs the coverage check with the
// dynamic schedules tuned to their most contended settings (chunk floor 1),
// where every index is its own handout and the CAS/cursor paths collide
// constantly.
func TestSchedulersTinyGrainCoverage(t *testing.T) {
	scheds := []Scheduler{&Guided{MinChunk: 1}, &Stealing{Grain: 1}}
	for _, sched := range scheds {
		for _, workers := range []int{2, 5, 16} {
			t.Run(fmt.Sprintf("%s/workers=%d", sched.Name(), workers), func(t *testing.T) {
				counts := runAndCount(t, sched, 503, workers)
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("index %d visited %d times", i, c)
					}
				}
			})
		}
	}
}

// TestSchedulersPreCanceled verifies no schedule starts work under an
// already-canceled context.
func TestSchedulersPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Schedules() {
		sched, err := SchedulerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var ran atomic.Int64
		err = sched.Run(ctx, 1000, 4, func(w int, c Chunk) { ran.Add(1) })
		if err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if ran.Load() != 0 {
			t.Errorf("%s: %d chunks ran under a pre-canceled context", name, ran.Load())
		}
	}
}

// TestStaticCancelMidSweep cancels while static worker chunks are
// mid-execution: every chunk that started must run to completion (the
// sweep contract — a chunk is never torn mid-write), Run must still return
// ctx.Err() so the caller knows not to commit, and no goroutine may be
// left behind (Run returning is wg.Wait returning). Under -race this also
// checks the spawner handoff.
func TestStaticCancelMidSweep(t *testing.T) {
	const workers = 8
	s := &Static{}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan int, workers)
	release := make(chan struct{})
	var startedCount, finished int64

	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		errCh <- s.Run(ctx, 8000, workers, func(w int, c Chunk) {
			atomic.AddInt64(&startedCount, 1)
			started <- w
			<-release
			atomic.AddInt64(&finished, 1)
		})
	}()

	// Wait for at least one worker to be mid-chunk, then cancel while it is
	// still blocked, then let every blocked worker finish.
	<-started
	cancel()
	close(release)
	wg.Wait()

	if err := <-errCh; err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if sc, f := atomic.LoadInt64(&startedCount), atomic.LoadInt64(&finished); sc != f {
		t.Errorf("%d chunks started but only %d finished — a started chunk was abandoned mid-sweep", sc, f)
	}
}

// TestSchedulerRegistry covers the registry surface: presentation order,
// fresh single-owner instances, the unknown-name error listing the known
// names, and init-time panics on bad registrations.
func TestSchedulerRegistry(t *testing.T) {
	names := Schedules()
	if len(names) < 3 || names[0] != ScheduleStatic || names[1] != ScheduleGuided || names[2] != ScheduleStealing {
		t.Fatalf("Schedules() = %v, want static, guided, stealing first", names)
	}

	a, err := SchedulerByName(ScheduleStealing)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SchedulerByName(ScheduleStealing)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("SchedulerByName returned a shared instance; instances hold scratch and must be single-owner")
	}

	_, err = SchedulerByName("fifo")
	if err == nil {
		t.Fatal("unknown schedule accepted")
	}
	for _, want := range append([]string{"fifo"}, names...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	mustPanic(t, "empty name", func() { RegisterScheduler("", func() Scheduler { return &Static{} }) })
	mustPanic(t, "nil factory", func() { RegisterScheduler("x", nil) })
	mustPanic(t, "duplicate", func() { RegisterScheduler(ScheduleStatic, func() Scheduler { return &Static{} }) })
}

func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: RegisterScheduler did not panic", label)
		}
	}()
	fn()
}

// TestStaticChunkMatchesSplitChunks pins StaticChunk (the allocation-free
// arithmetic the static and stealing schedules use) to SplitChunks, the
// documented reference.
func TestStaticChunkMatchesSplitChunks(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 9999} {
		for _, parts := range []int{1, 2, 3, 7, 64, 100} {
			chunks := SplitChunks(n, parts)
			for i, c := range chunks {
				if got := StaticChunk(n, parts, i); got != c {
					t.Fatalf("StaticChunk(%d, %d, %d) = %+v, want %+v", n, parts, i, got, c)
				}
			}
		}
	}
}
