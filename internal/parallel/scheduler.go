package parallel

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Scheduler distributes the index range [0, n) of one sweep across worker
// goroutines. Implementations differ in how they trade locality (large
// contiguous chunks, stable worker↔range affinity) against load balance
// (small chunks handed out on demand), but they all share one contract:
//
//   - every index in [0, n) is handed to fn exactly once;
//   - each call receives a contiguous Chunk, so the caller visits the
//     indices inside it in ascending order — a reordered vertex layout keeps
//     its intra-chunk locality under every schedule;
//   - worker ids are in [0, workers) and each id is used by at most one
//     goroutine per Run, so per-worker accumulators need no atomics;
//   - a chunk that has started is never abandoned: on cancellation Run
//     returns ctx.Err() after the started chunks complete, and the caller
//     must not commit the (possibly incomplete) results.
//
// A Scheduler instance keeps reusable per-run scratch (that is how the
// dynamic schedules stay near-zero-alloc in steady state); it is therefore
// not safe for concurrent Run calls. Each engine owns its own instance.
type Scheduler interface {
	// Name returns the registered schedule name.
	Name() string
	// Run executes fn over [0, n) with the given worker count and blocks
	// until the started work completes. It returns ctx.Err() as of
	// completion: non-nil means some indices may not have been processed.
	Run(ctx context.Context, n, workers int, fn func(worker int, c Chunk)) error
}

// The schedule registry. Each schedule registers a factory for itself from
// its defining file's init function, mirroring the ordering registry in
// internal/order: adding a schedule is a one-file change.

var schedulers = struct {
	sync.RWMutex
	factories map[string]func() Scheduler
}{factories: make(map[string]func() Scheduler)}

// scheduleOrder fixes the presentation order of the built-in schedules in
// Schedules: static (the OpenMP-static analogue and default), then the
// dynamic schedules by increasing adaptivity. Later registrations sort
// alphabetically after them.
var scheduleOrder = map[string]int{
	ScheduleStatic: 0, ScheduleGuided: 1, ScheduleStealing: 2,
}

// Built-in schedule names.
const (
	// ScheduleStatic is the default: contiguous equal chunks, one per
	// worker, like OpenMP schedule(static) with compact affinity.
	ScheduleStatic = "static"
	// ScheduleGuided hands out decaying chunk sizes from a shared cursor,
	// like OpenMP schedule(guided).
	ScheduleGuided = "guided"
	// ScheduleStealing gives each worker a contiguous range and lets idle
	// workers steal the back half of a straggler's remainder.
	ScheduleStealing = "stealing"
)

// RegisterScheduler makes the schedule produced by factory available
// through SchedulerByName under the given name. The factory must return a
// fresh instance (instances hold per-run scratch and are single-owner)
// whose Name() equals name. It panics on an empty name or a duplicate
// registration — both programmer errors caught at init time.
func RegisterScheduler(name string, factory func() Scheduler) {
	if name == "" {
		panic("parallel: RegisterScheduler with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("parallel: RegisterScheduler(%q) with nil factory", name))
	}
	schedulers.Lock()
	defer schedulers.Unlock()
	if _, dup := schedulers.factories[name]; dup {
		panic(fmt.Sprintf("parallel: schedule %q registered twice", name))
	}
	schedulers.factories[name] = factory
}

// SchedulerByName returns a fresh instance of the named schedule with
// default parameters. The built-in names are static, guided and stealing;
// RegisterScheduler adds more.
func SchedulerByName(name string) (Scheduler, error) {
	schedulers.RLock()
	factory, ok := schedulers.factories[name]
	schedulers.RUnlock()
	if !ok {
		return nil, fmt.Errorf("parallel: unknown schedule %q (known: %v)", name, Schedules())
	}
	return factory(), nil
}

// Schedules lists the registered schedule names: the built-ins in
// presentation order, then any further registrations alphabetically.
func Schedules() []string {
	schedulers.RLock()
	out := make([]string, 0, len(schedulers.factories))
	for name := range schedulers.factories {
		out = append(out, name)
	}
	schedulers.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		ri, iKnown := scheduleOrder[out[i]]
		rj, jKnown := scheduleOrder[out[j]]
		switch {
		case iKnown && jKnown:
			return ri < rj
		case iKnown:
			return true
		case jKnown:
			return false
		default:
			return out[i] < out[j]
		}
	})
	return out
}

// runSerial is the workers == 1 fast path shared by every schedule: one
// inline chunk, no goroutines, no allocation, identical semantics across
// schedules by construction.
func runSerial(ctx context.Context, n int, fn func(worker int, c Chunk)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n > 0 {
		fn(0, Chunk{0, n})
	}
	return ctx.Err()
}

// spawner is the fan-out scaffolding the scheduler implementations embed:
// the per-run parameters their worker loops read, unique worker-id
// handout, and a prebuilt goroutine body (set once by the embedding
// scheduler) so the steady-state spawn loop passes an existing func value
// and allocates nothing. The embedding scheduler's Run resets its own
// state (cursor, spans, ...) and then calls launch.
type spawner struct {
	ctx     context.Context
	fn      func(worker int, c Chunk)
	n       int
	workers int
	nextID  atomic.Int32
	wg      sync.WaitGroup
	body    func()
}

// workerID hands the calling goroutine its unique id in [0, workers).
func (sp *spawner) workerID() int { return int(sp.nextID.Add(1) - 1) }

// launch publishes the run parameters, spawns workers copies of the
// prebuilt body, and waits for them. The happens-before edges are the
// spawn (parameters are visible to the workers) and wg.Wait (the workers'
// writes are visible to the caller). Returns ctx.Err() as of completion.
func (sp *spawner) launch(ctx context.Context, n, workers int, fn func(worker int, c Chunk)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sp.ctx, sp.fn, sp.n, sp.workers = ctx, fn, n, workers
	sp.nextID.Store(0)
	sp.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go sp.body()
	}
	sp.wg.Wait()
	sp.ctx, sp.fn = nil, nil
	return ctx.Err()
}
