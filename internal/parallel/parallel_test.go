package parallel

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSplitChunksExact(t *testing.T) {
	chunks := SplitChunks(10, 3)
	want := []Chunk{{0, 4}, {4, 7}, {7, 10}}
	for i, c := range chunks {
		if c != want[i] {
			t.Errorf("chunk %d = %+v, want %+v", i, c, want[i])
		}
	}
}

func TestSplitChunksProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(18))}
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 10000)
		p := int(pRaw%64) + 1
		chunks := SplitChunks(n, p)
		if len(chunks) != p {
			return false
		}
		// Chunks tile [0, n) contiguously with sizes differing by <= 1.
		lo := 0
		minLen, maxLen := 1<<30, 0
		for _, c := range chunks {
			if c.Lo != lo || c.Hi < c.Lo {
				return false
			}
			lo = c.Hi
			if c.Len() < minLen {
				minLen = c.Len()
			}
			if c.Len() > maxLen {
				maxLen = c.Len()
			}
		}
		return lo == n && maxLen-minLen <= 1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSplitChunksMoreWorkersThanWork(t *testing.T) {
	chunks := SplitChunks(2, 5)
	total := 0
	for _, c := range chunks {
		total += c.Len()
	}
	if total != 2 {
		t.Errorf("chunks cover %d items", total)
	}
}

func TestSplitChunksClampsParts(t *testing.T) {
	if got := SplitChunks(5, 0); len(got) != 1 || got[0] != (Chunk{0, 5}) {
		t.Errorf("chunks = %v", got)
	}
}

func TestForEachChunkCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int64(0)
	err := ForEachChunkCtx(ctx, SplitChunks(100, 4), func(w int, c Chunk) {
		atomic.AddInt64(&ran, 1)
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d chunks ran under a pre-canceled context", ran)
	}
}

// TestForEachChunkCtxCancelMidSweep cancels while worker chunks are
// mid-execution: every chunk that started must run to completion (the sweep
// contract — a chunk is never torn mid-write), the call must still return
// ctx.Err() so the caller knows not to commit, and no goroutine may be left
// behind. Run under -race this also checks the worker handoff.
func TestForEachChunkCtxCancelMidSweep(t *testing.T) {
	const workers = 8
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan int, workers)
	release := make(chan struct{})
	var startedCount, finished int64

	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		errCh <- ForEachChunkCtx(ctx, SplitChunks(8000, workers), func(w int, c Chunk) {
			atomic.AddInt64(&startedCount, 1)
			started <- w
			<-release
			atomic.AddInt64(&finished, 1)
		})
	}()

	// Wait for at least one worker to be mid-chunk, then cancel while it is
	// still blocked, then let every blocked worker finish.
	<-started
	cancel()
	close(release)
	wg.Wait()

	if err := <-errCh; err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if s, f := atomic.LoadInt64(&startedCount), atomic.LoadInt64(&finished); s != f {
		t.Errorf("%d chunks started but only %d finished — a started chunk was abandoned mid-sweep", s, f)
	}
}

// TestForEachChunkCtxCancelSkipsUnstarted pins one worker, cancels, and
// verifies the engine-facing guarantee that an error return means the chunk
// set may be incomplete: with GOMAXPROCS-free scheduling we cannot force a
// skip deterministically, so assert the weaker invariant that the error is
// reported whenever any chunk was skipped.
func TestForEachChunkCtxCancelSkipsUnstarted(t *testing.T) {
	const workers = 16
	for attempt := 0; attempt < 20; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		gate := make(chan struct{})
		var ran int64
		var wg sync.WaitGroup
		wg.Add(1)
		var err error
		go func() {
			defer wg.Done()
			err = ForEachChunkCtx(ctx, SplitChunks(workers, workers), func(w int, c Chunk) {
				<-gate
				atomic.AddInt64(&ran, 1)
			})
		}()
		cancel()
		close(gate)
		wg.Wait()
		if err == nil {
			t.Fatal("ForEachChunkCtx returned nil after cancellation")
		}
		if atomic.LoadInt64(&ran) < int64(workers) {
			return // observed a skipped chunk, and err was non-nil: contract holds
		}
	}
	t.Skip("scheduler always started every chunk before cancel; skip-path not observed")
}

func TestForEachChunk(t *testing.T) {
	chunks := SplitChunks(1000, 8)
	var sum int64
	ForEachChunk(chunks, func(w int, c Chunk) {
		var local int64
		for i := c.Lo; i < c.Hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum, local)
	})
	if sum != 999*1000/2 {
		t.Errorf("sum = %d", sum)
	}
	// Single chunk runs inline.
	ran := false
	ForEachChunk([]Chunk{{0, 1}}, func(w int, c Chunk) { ran = true })
	if !ran {
		t.Error("single chunk not executed")
	}
}
