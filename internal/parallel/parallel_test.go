package parallel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitChunksExact(t *testing.T) {
	chunks := SplitChunks(10, 3)
	want := []Chunk{{0, 4}, {4, 7}, {7, 10}}
	for i, c := range chunks {
		if c != want[i] {
			t.Errorf("chunk %d = %+v, want %+v", i, c, want[i])
		}
	}
}

func TestSplitChunksProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(18))}
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 10000)
		p := int(pRaw%64) + 1
		chunks := SplitChunks(n, p)
		if len(chunks) != p {
			return false
		}
		// Chunks tile [0, n) contiguously with sizes differing by <= 1.
		lo := 0
		minLen, maxLen := 1<<30, 0
		for _, c := range chunks {
			if c.Lo != lo || c.Hi < c.Lo {
				return false
			}
			lo = c.Hi
			if c.Len() < minLen {
				minLen = c.Len()
			}
			if c.Len() > maxLen {
				maxLen = c.Len()
			}
		}
		return lo == n && maxLen-minLen <= 1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// FuzzSplitChunks is the full property suite for the static partition, run
// by `go test` on its seed corpus and open-ended under `go test -fuzz`:
// exactly parts chunks, contiguous and disjoint, covering [0, n) exactly,
// sizes differing by at most one, empty chunks only as a trailing run (so
// parts > n yields n singletons then parts-n empties), and bit-agreement
// with StaticChunk, the allocation-free arithmetic the schedules use.
func FuzzSplitChunks(f *testing.F) {
	f.Add(10, 3)
	f.Add(0, 1)
	f.Add(2, 5)
	f.Add(5, 0)
	f.Add(5, -3)
	f.Add(7, 7)
	f.Add(10000, 64)
	f.Add(1, 1024)
	f.Fuzz(func(t *testing.T, n, parts int) {
		if n < 0 || n > 1<<20 || parts > 1<<12 {
			t.Skip() // SplitChunks is documented for n >= 0; cap the allocation
		}
		chunks := SplitChunks(n, parts)
		effParts := parts
		if effParts < 1 {
			effParts = 1 // documented clamp
		}
		if len(chunks) != effParts {
			t.Fatalf("SplitChunks(%d, %d) returned %d chunks, want %d", n, parts, len(chunks), effParts)
		}
		lo := 0
		minLen, maxLen := n+1, 0
		emptySeen := false
		for i, c := range chunks {
			if c.Lo != lo || c.Hi < c.Lo || c.Hi > n {
				t.Fatalf("chunk %d = %+v breaks the contiguous tiling at offset %d", i, c, lo)
			}
			if got := StaticChunk(n, effParts, i); got != c {
				t.Fatalf("StaticChunk(%d, %d, %d) = %+v, want %+v", n, effParts, i, got, c)
			}
			if c.Len() == 0 {
				emptySeen = true
			} else if emptySeen {
				t.Fatalf("chunk %d is non-empty after an empty chunk; empties must trail", i)
			}
			lo = c.Hi
			minLen = min(minLen, c.Len())
			maxLen = max(maxLen, c.Len())
		}
		if lo != n {
			t.Fatalf("chunks cover [0, %d), want [0, %d)", lo, n)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("chunk sizes range %d..%d, want spread <= 1", minLen, maxLen)
		}
	})
}

func TestSplitChunksMoreWorkersThanWork(t *testing.T) {
	chunks := SplitChunks(2, 5)
	total := 0
	for _, c := range chunks {
		total += c.Len()
	}
	if total != 2 {
		t.Errorf("chunks cover %d items", total)
	}
}

func TestSplitChunksClampsParts(t *testing.T) {
	if got := SplitChunks(5, 0); len(got) != 1 || got[0] != (Chunk{0, 5}) {
		t.Errorf("chunks = %v", got)
	}
}
