package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSplitChunksExact(t *testing.T) {
	chunks := SplitChunks(10, 3)
	want := []Chunk{{0, 4}, {4, 7}, {7, 10}}
	for i, c := range chunks {
		if c != want[i] {
			t.Errorf("chunk %d = %+v, want %+v", i, c, want[i])
		}
	}
}

func TestSplitChunksProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(18))}
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 10000)
		p := int(pRaw%64) + 1
		chunks := SplitChunks(n, p)
		if len(chunks) != p {
			return false
		}
		// Chunks tile [0, n) contiguously with sizes differing by <= 1.
		lo := 0
		minLen, maxLen := 1<<30, 0
		for _, c := range chunks {
			if c.Lo != lo || c.Hi < c.Lo {
				return false
			}
			lo = c.Hi
			if c.Len() < minLen {
				minLen = c.Len()
			}
			if c.Len() > maxLen {
				maxLen = c.Len()
			}
		}
		return lo == n && maxLen-minLen <= 1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSplitChunksMoreWorkersThanWork(t *testing.T) {
	chunks := SplitChunks(2, 5)
	total := 0
	for _, c := range chunks {
		total += c.Len()
	}
	if total != 2 {
		t.Errorf("chunks cover %d items", total)
	}
}

func TestSplitChunksClampsParts(t *testing.T) {
	if got := SplitChunks(5, 0); len(got) != 1 || got[0] != (Chunk{0, 5}) {
		t.Errorf("chunks = %v", got)
	}
}

func TestForEachChunk(t *testing.T) {
	chunks := SplitChunks(1000, 8)
	var sum int64
	ForEachChunk(chunks, func(w int, c Chunk) {
		var local int64
		for i := c.Lo; i < c.Hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum, local)
	})
	if sum != 999*1000/2 {
		t.Errorf("sum = %d", sum)
	}
	// Single chunk runs inline.
	ran := false
	ForEachChunk([]Chunk{{0, 1}}, func(w int, c Chunk) { ran = true })
	if !ran {
		t.Error("single chunk not executed")
	}
}
