package parallel

import "context"

func init() {
	RegisterScheduler(ScheduleStatic, func() Scheduler { return &Static{} })
}

// Static is the OpenMP schedule(static) analogue and the default schedule:
// [0, n) is split into `workers` contiguous chunks whose sizes differ by at
// most one, and worker w processes chunk w. Maximum locality and zero
// coordination, at the cost of idling workers whose chunk finishes early.
//
// The zero value is ready to use. Not safe for concurrent Run calls.
type Static struct {
	spawner
}

// Name implements Scheduler.
func (s *Static) Name() string { return ScheduleStatic }

// Run implements Scheduler.
func (s *Static) Run(ctx context.Context, n, workers int, fn func(worker int, c Chunk)) error {
	if workers <= 1 || n == 0 {
		return runSerial(ctx, n, fn)
	}
	if s.body == nil {
		s.body = s.work
	}
	return s.launch(ctx, n, workers, fn)
}

// work is one worker's (single) assignment: the chunk with its own id.
func (s *Static) work() {
	defer s.wg.Done()
	w := s.workerID()
	if s.ctx.Err() != nil {
		return
	}
	if c := StaticChunk(s.n, s.workers, w); c.Len() > 0 {
		s.fn(w, c)
	}
}
