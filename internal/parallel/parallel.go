// Package parallel provides the static work partitioning and worker-pool
// helpers that stand in for the paper's OpenMP runtime
// (schedule(static) with KMP_AFFINITY=compact: contiguous chunks of the
// vertex array, one per pinned thread).
package parallel

import (
	"context"
	"sync"
)

// Chunk is a half-open index range [Lo, Hi).
type Chunk struct {
	Lo, Hi int
}

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// SplitChunks partitions [0, n) into parts contiguous chunks whose sizes
// differ by at most one, exactly like OpenMP's schedule(static). When
// parts > n the trailing chunks are empty.
func SplitChunks(n, parts int) []Chunk {
	if parts < 1 {
		parts = 1
	}
	out := make([]Chunk, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = Chunk{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// ForEachChunk runs fn(workerID, chunk) on every chunk concurrently and
// waits for all of them.
func ForEachChunk(chunks []Chunk, fn func(worker int, c Chunk)) {
	_ = ForEachChunkCtx(context.Background(), chunks, fn)
}

// ForEachChunkCtx runs fn(workerID, chunk) on every chunk concurrently and
// waits for the started ones. Chunks whose worker has not begun when ctx is
// canceled are skipped; cancellation within a running chunk is up to fn.
// The returned error is ctx.Err() at completion, so a non-nil error means
// the chunk set may be incomplete and its results must not be committed.
func ForEachChunkCtx(ctx context.Context, chunks []Chunk, fn func(worker int, c Chunk)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(chunks) == 1 {
		fn(0, chunks[0])
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for w, c := range chunks {
		wg.Add(1)
		go func(w int, c Chunk) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			fn(w, c)
		}(w, c)
	}
	wg.Wait()
	return ctx.Err()
}
