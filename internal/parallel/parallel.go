// Package parallel stands in for the paper's OpenMP runtime. The paper's
// experiments run under schedule(static) with KMP_AFFINITY=compact —
// contiguous chunks of the vertex array, one per pinned thread — and that
// remains the default here; the Scheduler registry adds the dynamic
// schedules the paper's NUMA discussion leaves open (guided, work-stealing)
// behind one interface, so the sweep engine can compare locality against
// load balance without changing numerical results (every schedule hands out
// each index exactly once, in contiguous ascending chunks).
package parallel

// Chunk is a half-open index range [Lo, Hi).
type Chunk struct {
	Lo, Hi int
}

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// SplitChunks partitions [0, n) into parts contiguous chunks whose sizes
// differ by at most one, exactly like OpenMP's schedule(static). When
// parts > n the trailing chunks are empty.
func SplitChunks(n, parts int) []Chunk {
	if parts < 1 {
		parts = 1
	}
	out := make([]Chunk, parts)
	for i := range out {
		out[i] = StaticChunk(n, parts, i)
	}
	return out
}

// StaticChunk returns the i-th of the parts chunks SplitChunks(n, parts)
// would produce, without materializing the slice — the static schedule and
// the stealing schedule's initial split compute their bounds through it on
// the allocation-free hot path.
func StaticChunk(n, parts, i int) Chunk {
	base, rem := n/parts, n%parts
	lo := i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return Chunk{Lo: lo, Hi: lo + size}
}
