package parallel

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStealingStress hammers the lock-free deques under -race: many more
// workers than cores, grain 1 (every index is a separate CAS), and repeated
// runs on the same instance so the reused span scratch is re-initialized
// every round. Any lost or double handout fails the exactly-once check; any
// unsynchronized access trips the race detector.
func TestStealingStress(t *testing.T) {
	s := &Stealing{Grain: 1}
	const workers = 16
	for round := 0; round < 30; round++ {
		n := 63 + round*17 // vary shape so the spans re-pack differently each round
		counts := make([]int32, n)
		err := s.Run(context.Background(), n, workers, func(w int, c Chunk) {
			for i := c.Lo; i < c.Hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("round %d: index %d handed out %d times", round, i, c)
			}
		}
	}
}

// TestStealingRangeTooLarge pins the packed-span limit: a range beyond
// what 32-bit span halves can index must error loudly instead of silently
// wrapping and skipping indices.
func TestStealingRangeTooLarge(t *testing.T) {
	if math.MaxInt <= math.MaxUint32 {
		t.Skip("needs 64-bit int to express an out-of-range n")
	}
	var big int64 = math.MaxUint32 + 1 // via a variable: not a constant-overflow on 32-bit builds
	s := &Stealing{}
	err := s.Run(context.Background(), int(big), 2, func(w int, c Chunk) {
		t.Error("fn called for an unrepresentable range")
	})
	if err == nil {
		t.Fatal("range beyond MaxUint32 accepted")
	}
}

// TestStealingCancelMidSweep mirrors TestStaticCancelMidSweep for the
// stealing schedule: workers block inside fn, the context is canceled
// while they are mid-chunk, and then they are released. The contract under
// test: every chunk that started runs to completion (no index is ever torn
// mid-write), nothing is handed out twice even across the cancellation
// boundary, Run still returns ctx.Err() so the caller knows not to commit,
// and no goroutine is left behind (Run returning is wg.Wait returning).
func TestStealingCancelMidSweep(t *testing.T) {
	const workers = 8
	s := &Stealing{Grain: 1} // tiny chunks: cancellation lands between many handouts
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var startedCount, finished int64
	counts := make([]int32, 4096)

	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		errCh <- s.Run(ctx, len(counts), workers, func(w int, c Chunk) {
			atomic.AddInt64(&startedCount, 1)
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			for i := c.Lo; i < c.Hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
			atomic.AddInt64(&finished, 1)
		})
	}()

	<-started
	cancel()
	close(release)
	wg.Wait()

	if err := <-errCh; err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if sc, f := atomic.LoadInt64(&startedCount), atomic.LoadInt64(&finished); sc != f {
		t.Errorf("%d chunks started but only %d finished — a started chunk was abandoned", sc, f)
	}
	processed := 0
	for i, c := range counts {
		switch c {
		case 0: // skipped by cancellation: fine, Run reported the error
		case 1:
			processed++
		default:
			t.Fatalf("index %d handed out %d times across a cancellation", i, c)
		}
	}
	if processed == len(counts) {
		t.Log("cancellation landed after all handouts; exactly-once still verified")
	}
}

// TestStealingCancelStress interleaves cancellation with the steal storm
// repeatedly: a canceler goroutine fires at a random-ish point while 16
// workers fight over grain-1 chunks. Runs under -race this is the
// concurrent-cancellation soak the deque must survive; the invariant is
// only ever exactly-once-or-skipped, never torn or duplicated.
func TestStealingCancelStress(t *testing.T) {
	s := &Stealing{Grain: 1}
	const workers = 16
	for round := 0; round < 25; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		n := 257 + round*13
		counts := make([]int32, n)
		var handed atomic.Int64
		trigger := int64(round * n / 25) // cancel progressively later each round
		go func() {
			for handed.Load() < trigger {
				runtime.Gosched()
			}
			cancel()
		}()
		err := s.Run(ctx, n, workers, func(w int, c Chunk) {
			for i := c.Lo; i < c.Hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
			handed.Add(int64(c.Len()))
		})
		cancel()
		for i, c := range counts {
			if c > 1 {
				t.Fatalf("round %d: index %d handed out %d times", round, i, c)
			}
		}
		if err == nil {
			// Cancellation landed after completion: every index must be in.
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("round %d: err == nil but index %d visited %d times", round, i, c)
				}
			}
		}
	}
}
