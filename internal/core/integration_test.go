package core

import (
	"path/filepath"
	"testing"

	"lams/internal/mesh"
	"lams/internal/quality"
	"lams/internal/smooth"
)

// TestEndToEndPipeline exercises the full user workflow: generate, save to
// Triangle files, reload, reorder with RDR, smooth in parallel, and verify
// the result is a valid improved mesh.
func TestEndToEndPipeline(t *testing.T) {
	m, err := BuildMesh("stress", 2500)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "stress")
	if err := m.SaveFiles(base); err != nil {
		t.Fatal(err)
	}
	loaded, err := mesh.LoadFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVerts() != m.NumVerts() {
		t.Fatal("file round trip changed vertex count")
	}

	re, err := ReorderByName(loaded, "RDR")
	if err != nil {
		t.Fatal(err)
	}
	q0 := quality.Global(re.Mesh, quality.EdgeRatio{})
	res, err := smooth.Run(re.Mesh, smooth.Options{Workers: 3, MaxIters: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalQuality <= q0 {
		t.Errorf("pipeline did not improve quality: %v -> %v", q0, res.FinalQuality)
	}
	if err := re.Mesh.Validate(); err != nil {
		t.Fatal(err)
	}

	// The smoothed mesh still writes and reads cleanly.
	base2 := filepath.Join(t.TempDir(), "smoothed")
	if err := re.Mesh.SaveFiles(base2); err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.LoadFiles(base2); err != nil {
		t.Fatal(err)
	}
}

// TestReorderingsPreserveSmoothingResult pins the central correctness
// property end to end: with Jacobi updates, all orderings produce the same
// smoothed geometry up to floating-point summation order (the neighbor sums
// of Eq. 1 accumulate in renumbered order). Aggregate statistics must agree
// to near machine precision.
func TestReorderingsPreserveSmoothingResult(t *testing.T) {
	m, err := BuildMesh("lake", 2000)
	if err != nil {
		t.Fatal(err)
	}
	type agg struct{ sumX, sumY, q float64 }
	smoothAgg := func(ordName string) agg {
		re, err := ReorderByName(m, ordName)
		if err != nil {
			t.Fatal(err)
		}
		res, err := smooth.Run(re.Mesh, smooth.Options{MaxIters: 6, Tol: -1})
		if err != nil {
			t.Fatal(err)
		}
		var a agg
		for _, p := range re.Mesh.Coords {
			a.sumX += p.X
			a.sumY += p.Y
		}
		a.q = res.FinalQuality
		return a
	}
	ref := smoothAgg("ORI")
	for _, ordName := range []string{"BFS", "RDR", "HILBERT"} {
		got := smoothAgg(ordName)
		if abs(got.sumX-ref.sumX) > 1e-7 || abs(got.sumY-ref.sumY) > 1e-7 {
			t.Errorf("%s: coordinate sums differ: (%v,%v) vs (%v,%v)",
				ordName, got.sumX, got.sumY, ref.sumX, ref.sumY)
		}
		if abs(got.q-ref.q) > 1e-9 {
			t.Errorf("%s: final quality %v != %v", ordName, got.q, ref.q)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
