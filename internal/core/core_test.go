package core

import (
	"testing"

	"lams/internal/order"
)

func TestBuildMesh(t *testing.T) {
	m, err := BuildMesh("wrench", 1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildMesh("nope", 1000); err == nil {
		t.Error("unknown mesh accepted")
	}
}

func TestReorder(t *testing.T) {
	m, err := BuildMesh("valve", 1500)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Reorder(m, order.RDR{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Ordering != "RDR" {
		t.Errorf("ordering name %q", re.Ordering)
	}
	if err := order.ValidatePermutation(re.NewToOld, m.NumVerts()); err != nil {
		t.Fatal(err)
	}
	if err := re.Mesh.Validate(); err != nil {
		t.Fatal(err)
	}
	// The input mesh is untouched: coordinates at position 0 unchanged.
	if re.Mesh == m {
		t.Error("Reorder returned the input mesh")
	}
	// Reordered mesh has the same multiset of coordinates.
	if re.Mesh.NumVerts() != m.NumVerts() || re.Mesh.NumTris() != m.NumTris() {
		t.Error("counts changed")
	}
	// Check placement: new vertex k is old vertex NewToOld[k].
	for k := 0; k < 20; k++ {
		if re.Mesh.Coords[k] != m.Coords[re.NewToOld[k]] {
			t.Fatalf("vertex %d misplaced", k)
		}
	}
}

func TestReorderByName(t *testing.T) {
	m, err := BuildMesh("crake", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReorderByName(m, "BFS"); err != nil {
		t.Error(err)
	}
	if _, err := ReorderByName(m, "NOPE"); err == nil {
		t.Error("unknown ordering accepted")
	}
}

func TestSmoothAndTrace(t *testing.T) {
	m, err := BuildMesh("dialog", 1500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Smooth(m.Clone(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalQuality <= res.InitialQuality {
		t.Error("no improvement")
	}

	res2, tb, err := SmoothTraced(m.Clone(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations != 3 {
		t.Errorf("iterations = %d, want exactly 3", res2.Iterations)
	}
	if tb.NumCores() != 2 {
		t.Errorf("trace cores = %d", tb.NumCores())
	}
	if int64(tb.Total()) != res2.Accesses {
		t.Error("trace/access mismatch")
	}
}
