package core

import (
	"fmt"
	"time"

	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/quality"
)

// BuildTetCube generates the structured unit-cube tetrahedral test mesh
// with roughly targetVerts vertices and the given interior jitter.
func BuildTetCube(targetVerts int, jitter float64) (*mesh.TetMesh, error) {
	return mesh.GenerateTetCubeVerts(targetVerts, jitter)
}

// ReorderedTet is a tetrahedral mesh relabeled by an ordering — the 3D
// sibling of Reordered, with the same bookkeeping.
type ReorderedTet struct {
	// Mesh is the renumbered mesh (the input mesh is unchanged).
	Mesh *mesh.TetMesh
	// Ordering is the name of the ordering applied.
	Ordering string
	// NewToOld maps new vertex index -> input vertex index.
	NewToOld []int32
	// OrderTime is how long computing the permutation took.
	OrderTime time.Duration
}

// ReorderTet computes ord on m (driving it with initial mean-ratio vertex
// qualities, which RDR and quality-rooted BFS require) and returns the
// renumbered mesh. The orderings themselves are the same registry entries
// the 2D path uses — they see the tet mesh through the order.Graph view.
func ReorderTet(m *mesh.TetMesh, ord order.Ordering) (*ReorderedTet, error) {
	vq := quality.TetVertexQualities(m, quality.MeanRatio3{})
	start := time.Now()
	perm, err := ord.Compute(m, vq)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("core: computing %s ordering: %w", ord.Name(), err)
	}
	rm, err := m.Renumber(perm)
	if err != nil {
		return nil, fmt.Errorf("core: applying %s ordering: %w", ord.Name(), err)
	}
	return &ReorderedTet{Mesh: rm, Ordering: ord.Name(), NewToOld: perm, OrderTime: elapsed}, nil
}

// ReorderTetByName is ReorderTet with the ordering looked up by name.
func ReorderTetByName(m *mesh.TetMesh, name string) (*ReorderedTet, error) {
	ord, err := order.ByName(name)
	if err != nil {
		return nil, err
	}
	return ReorderTet(m, ord)
}
