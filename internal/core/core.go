// Package core is the high-level entry point of the library: it wires the
// substrates together into the paper's pipeline — build (or load) a mesh,
// compute initial vertex qualities, apply a locality ordering such as RDR,
// smooth, and analyze locality. Examples and tools that do not need
// fine-grained control use this package; everything it returns is the plain
// data structures of the underlying packages.
package core

import (
	"fmt"
	"time"

	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/quality"
	"lams/internal/smooth"
	"lams/internal/trace"
)

// BuildMesh generates the named test mesh (one of the nine Table 1 domains)
// with roughly targetVerts vertices.
func BuildMesh(name string, targetVerts int) (*mesh.Mesh, error) {
	return mesh.Generate(name, targetVerts)
}

// Reordered is a mesh relabeled by an ordering, with the bookkeeping needed
// to relate it back to the input.
type Reordered struct {
	// Mesh is the renumbered mesh (the input mesh is unchanged).
	Mesh *mesh.Mesh
	// Ordering is the name of the ordering applied.
	Ordering string
	// NewToOld maps new vertex index -> input vertex index.
	NewToOld []int32
	// OrderTime is how long computing the permutation took — the
	// pre-computation cost §5.4 weighs against the smoothing gain.
	OrderTime time.Duration
}

// Reorder computes ord on m (driving it with initial edge-length-ratio
// vertex qualities, which RDR and quality-rooted BFS require) and returns
// the renumbered mesh.
func Reorder(m *mesh.Mesh, ord order.Ordering) (*Reordered, error) {
	met := quality.EdgeRatio{}
	vq := quality.VertexQualities(m, met)
	start := time.Now()
	perm, err := ord.Compute(m, vq)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("core: computing %s ordering: %w", ord.Name(), err)
	}
	rm, err := m.Renumber(perm)
	if err != nil {
		return nil, fmt.Errorf("core: applying %s ordering: %w", ord.Name(), err)
	}
	return &Reordered{Mesh: rm, Ordering: ord.Name(), NewToOld: perm, OrderTime: elapsed}, nil
}

// ReorderByName is Reorder with the ordering looked up by name
// (ORI, RANDOM, BFS, DFS, RDR, RCM, HILBERT, MORTON).
func ReorderByName(m *mesh.Mesh, name string) (*Reordered, error) {
	ord, err := order.ByName(name)
	if err != nil {
		return nil, err
	}
	return Reorder(m, ord)
}

// Smooth runs Laplacian smoothing on m in place with the given worker count
// and default convergence settings.
func Smooth(m *mesh.Mesh, workers int) (smooth.Result, error) {
	return smooth.Run(m, smooth.Options{Workers: workers})
}

// SmoothTraced runs smoothing for exactly maxIters iterations while
// recording the per-worker access trace, returning both. The mesh is
// modified in place.
func SmoothTraced(m *mesh.Mesh, workers, maxIters int) (smooth.Result, *trace.Buffer, error) {
	tb := trace.NewBuffer(workers)
	res, err := smooth.Run(m, smooth.Options{
		Workers:  workers,
		MaxIters: maxIters,
		Tol:      -1, // run all requested iterations even after convergence
		Trace:    tb,
	})
	return res, tb, err
}
