package smooth

import (
	"testing"

	"lams/internal/geom"
)

func TestVariantStrings(t *testing.T) {
	if Plain.String() != "plain" || Smart.String() != "smart" ||
		Weighted.String() != "weighted" || Constrained.String() != "constrained" {
		t.Error("variant names")
	}
}

func TestVariantsImproveQuality(t *testing.T) {
	base := genMesh(t, 1500)
	for _, v := range []Variant{Plain, Smart, Weighted, Constrained} {
		opt := VariantOptions{Variant: v, MaxDisplacement: 0.1}
		opt.MaxIters = 5
		opt.Tol = -1
		m := base.Clone()
		res, err := RunVariant(m, opt)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if res.FinalQuality <= res.InitialQuality {
			t.Errorf("%s: quality %v -> %v", v, res.InitialQuality, res.FinalQuality)
		}
	}
}

func TestSmartNeverDecreasesVertexQuality(t *testing.T) {
	// Smart smoothing must never regress the global quality in an
	// iteration (each accepted move keeps the local vertex quality).
	m := genMesh(t, 1200)
	opt := VariantOptions{Variant: Smart}
	opt.MaxIters = 8
	opt.Tol = -1
	res, err := RunVariant(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	prev := res.InitialQuality
	for i, q := range res.QualityHistory {
		if q < prev-1e-9 {
			t.Errorf("smart variant regressed at iteration %d: %v -> %v", i, prev, q)
		}
		prev = q
	}
}

func TestConstrainedBoundsDisplacement(t *testing.T) {
	m := genMesh(t, 1200)
	before := append([]geom.Point(nil), m.Coords...)
	const maxDisp = 1e-3
	opt := VariantOptions{Variant: Constrained, MaxDisplacement: maxDisp}
	opt.MaxIters = 1
	opt.Tol = -1
	if _, err := RunVariant(m, opt); err != nil {
		t.Fatal(err)
	}
	for v := range m.Coords {
		if d := m.Coords[v].Dist(before[v]); d > maxDisp*(1+1e-12) {
			t.Fatalf("vertex %d moved %v > %v", v, d, maxDisp)
		}
	}
}

func TestVariantErrors(t *testing.T) {
	m := genMesh(t, 600)
	if _, err := RunVariant(m, VariantOptions{Variant: Constrained}); err == nil {
		t.Error("constrained without MaxDisplacement accepted")
	}
}

func TestSmartVariantWorkersInvariant(t *testing.T) {
	// Smart sweeps are serial at any worker count; Workers > 1 only
	// parallelizes the measurement passes, so results are identical.
	serial := genMesh(t, 600)
	optS := VariantOptions{Variant: Smart}
	optS.MaxIters = 3
	optS.Tol = -1
	resS, err := RunVariant(serial, optS)
	if err != nil {
		t.Fatal(err)
	}
	par := genMesh(t, 600)
	optP := optS
	optP.Workers = 2
	resP, err := RunVariant(par, optP)
	if err != nil {
		t.Fatal(err)
	}
	if resP.FinalQuality != resS.FinalQuality || resP.Accesses != resS.Accesses {
		t.Errorf("parallel smart variant differs: %+v vs %+v", resP, resS)
	}
	for v := range serial.Coords {
		if par.Coords[v] != serial.Coords[v] {
			t.Fatalf("vertex %d differs: %v vs %v", v, par.Coords[v], serial.Coords[v])
		}
	}
}

func TestPlainVariantEqualsRun(t *testing.T) {
	a := genMesh(t, 1000)
	b := a.Clone()
	optA := VariantOptions{Variant: Plain}
	optA.MaxIters = 4
	optA.Tol = -1
	if _, err := RunVariant(a, optA); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(b, Options{MaxIters: 4, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	for v := range a.Coords {
		if a.Coords[v] != b.Coords[v] {
			t.Fatal("plain variant diverged from Run")
		}
	}
}

func TestWeightedDiffersFromPlain(t *testing.T) {
	a := genMesh(t, 1000)
	b := a.Clone()
	optW := VariantOptions{Variant: Weighted}
	optW.MaxIters = 2
	optW.Tol = -1
	if _, err := RunVariant(a, optW); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(b, Options{MaxIters: 2, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Coords {
		if a.Coords[v] != b.Coords[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("weighted variant identical to plain")
	}
}
