package smooth

import (
	"context"
	"strings"
	"testing"

	"lams/internal/quality"
	"lams/internal/trace"
)

// TestOptionsValidationMatchesAcrossDims drives the same invalid Options
// through the 2D and 3D entry points and asserts each rejection is
// byte-identical across dimensions — the observable contract of the one
// shared withDefaults/validate path. Dimension-specific inputs (the
// in-place kernels) are spelled per dim but must still produce the same
// message.
func TestOptionsValidationMatchesAcrossDims(t *testing.T) {
	m2 := genMesh(t, 300)
	m3 := genTetMesh(t, 3)
	ctx := context.Background()

	cases := []struct {
		name        string
		opt2, opt3  Options
		partitioned bool // route through RunPartitioned/RunPartitionedTet
		want        string
	}{
		{
			name: "negative-workers",
			opt2: Options{Workers: -2}, opt3: Options{Workers: -2},
			want: "smooth: workers must be >= 1, got -2",
		},
		{
			name: "negative-check-every",
			opt2: Options{CheckEvery: -1}, opt3: Options{CheckEvery: -1},
			want: "smooth: check-every must be >= 1, got -1",
		},
		{
			name: "partitions-on-single-engine",
			opt2: Options{Partitions: 3}, opt3: Options{Partitions: 3},
			want: "smooth: Smoother is a single engine; partitions=3 needs RunPartitioned or a PartitionedSmoother",
		},
		{
			name: "unknown-schedule",
			opt2: Options{Schedule: "zigzag"}, opt3: Options{Schedule: "zigzag"},
			want: "", // no pinned text; equality and the name are asserted below
		},
		{
			name: "undersized-trace-buffer",
			opt2: Options{Workers: 4, Trace: trace.NewBuffer(2)},
			opt3: Options{Workers: 4, Trace: trace.NewBuffer(2)},
			want: "smooth: trace buffer has 2 cores, need 4",
		},
		{
			name:        "partitioned-trace",
			opt2:        Options{Partitions: 2, Trace: trace.NewBuffer(1)},
			opt3:        Options{Partitions: 2, Trace: trace.NewBuffer(1)},
			partitioned: true,
			want:        "smooth: partitioned runs do not support tracing",
		},
		{
			name:        "partitioned-negative-partitions",
			opt2:        Options{Partitions: -1},
			opt3:        Options{Partitions: -1},
			partitioned: true,
			want:        "smooth: partitions must be >= 1, got -1",
		},
		{
			name:        "partitioned-in-place-kernel",
			opt2:        Options{Partitions: 2, Kernel: SmartKernel{}},
			opt3:        Options{Partitions: 2, TetKernel: SmartKernel3{}},
			partitioned: true,
			want:        `smooth: partitioned runs require Jacobi updates; kernel "smart" updates in place`,
		},
		{
			name:        "partitioned-gauss-seidel",
			opt2:        Options{Partitions: 2, GaussSeidel: true},
			opt3:        Options{Partitions: 2, GaussSeidel: true},
			partitioned: true,
			want:        `smooth: partitioned runs require Jacobi updates; kernel "plain" updates in place`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err2, err3 error
			if tc.partitioned {
				_, err2 = RunPartitioned(ctx, m2.Clone(), tc.opt2)
				_, err3 = RunPartitionedTet(ctx, m3.Clone(), tc.opt3)
			} else {
				_, err2 = NewSmoother().Run(ctx, m2.Clone(), tc.opt2)
				_, err3 = NewSmoother().RunTet(ctx, m3.Clone(), tc.opt3)
			}
			if err2 == nil || err3 == nil {
				t.Fatalf("invalid options accepted: 2D err = %v, 3D err = %v", err2, err3)
			}
			if err2.Error() != err3.Error() {
				t.Errorf("error text differs across dims:\n  2D: %v\n  3D: %v", err2, err3)
			}
			if tc.want != "" && err2.Error() != tc.want {
				t.Errorf("error = %q, want %q", err2, tc.want)
			}
			if tc.name == "unknown-schedule" && !strings.Contains(err2.Error(), "zigzag") {
				t.Errorf("unknown-schedule error does not name the schedule: %v", err2)
			}
		})
	}
}

// TestOptionsCrossDimensionRejection pins the guidance each dimension gives
// when handed the other dimension's metric or kernel.
func TestOptionsCrossDimensionRejection(t *testing.T) {
	m2 := genMesh(t, 300)
	m3 := genTetMesh(t, 3)
	ctx := context.Background()

	const want2 = "smooth: options select tetrahedral rules (TetMetric/TetKernel) but the run is 2D; use RunTet"
	for name, opt := range map[string]Options{
		"tet-metric": {TetMetric: quality.MeanRatio3{}},
		"tet-kernel": {TetKernel: PlainKernel3{}},
	} {
		if _, err := NewSmoother().Run(ctx, m2.Clone(), opt); err == nil || err.Error() != want2 {
			t.Errorf("2D run with %s: err = %v, want %q", name, err, want2)
		}
	}

	const want3 = "smooth: options select triangle rules (Metric/Kernel) but the run is tetrahedral; use Run"
	for name, opt := range map[string]Options{
		"tri-metric": {Metric: quality.EdgeRatio{}},
		"tri-kernel": {Kernel: PlainKernel{}},
	} {
		if _, err := NewSmoother().RunTet(ctx, m3.Clone(), opt); err == nil || err.Error() != want3 {
			t.Errorf("3D run with %s: err = %v, want %q", name, err, want3)
		}
	}
}
