package smooth

import (
	"reflect"
	"strings"
	"testing"

	"lams/internal/geom"
)

func registryKernel(t *testing.T, name string, maxDisp float64) Kernel {
	t.Helper()
	k, err := KernelByName(name, KernelConfig{MaxDisplacement: maxDisp})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKernelRegistryNames(t *testing.T) {
	want := []string{"plain", "smart", "weighted", "constrained"}
	if got := KernelNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("KernelNames() = %v, want %v", got, want)
	}
	// One registry serves both dimensions: every name resolves to a kernel
	// pair that reports the name back.
	for _, name := range KernelNames() {
		k2, err := KernelByName(name, KernelConfig{MaxDisplacement: 0.1})
		if err != nil {
			t.Fatalf("2D %s: %v", name, err)
		}
		k3, err := TetKernelByName(name, KernelConfig{MaxDisplacement: 0.1})
		if err != nil {
			t.Fatalf("3D %s: %v", name, err)
		}
		if k2.Name() != name || k3.Name() != name {
			t.Errorf("%s resolves to kernels named %q (2D) and %q (3D)", name, k2.Name(), k3.Name())
		}
		if k2.InPlace() != k3.InPlace() {
			t.Errorf("%s: InPlace disagrees across dims", name)
		}
	}
}

func TestKernelRegistryErrors(t *testing.T) {
	// The same registry row validates both dimensions, so the error text is
	// identical by construction.
	_, err2 := KernelByName("constrained", KernelConfig{})
	_, err3 := TetKernelByName("constrained", KernelConfig{})
	if err2 == nil || err3 == nil {
		t.Fatal("constrained without MaxDisplacement accepted")
	}
	if err2.Error() != err3.Error() {
		t.Errorf("constrained errors differ across dims:\n  2D: %v\n  3D: %v", err2, err3)
	}
	_, err2 = KernelByName("laplacian++", KernelConfig{})
	_, err3 = TetKernelByName("laplacian++", KernelConfig{})
	if err2 == nil || err3 == nil {
		t.Fatal("unknown kernel accepted")
	}
	if err2.Error() != err3.Error() {
		t.Errorf("unknown-kernel errors differ across dims:\n  2D: %v\n  3D: %v", err2, err3)
	}
	for _, name := range KernelNames() {
		if !strings.Contains(err2.Error(), name) {
			t.Errorf("unknown-kernel error does not list %q: %v", name, err2)
		}
	}
}

func TestRegistryKernelsImproveQuality(t *testing.T) {
	base := genMesh(t, 1500)
	for _, name := range KernelNames() {
		m := base.Clone()
		res, err := Run(m, Options{MaxIters: 5, Tol: -1, Kernel: registryKernel(t, name, 0.1)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.FinalQuality <= res.InitialQuality {
			t.Errorf("%s: quality %v -> %v", name, res.InitialQuality, res.FinalQuality)
		}
	}
}

func TestSmartNeverDecreasesVertexQuality(t *testing.T) {
	// Smart smoothing must never regress the global quality in an
	// iteration (each accepted move keeps the local vertex quality).
	m := genMesh(t, 1200)
	res, err := Run(m, Options{MaxIters: 8, Tol: -1, Kernel: registryKernel(t, "smart", 0)})
	if err != nil {
		t.Fatal(err)
	}
	prev := res.InitialQuality
	for i, q := range res.QualityHistory {
		if q < prev-1e-9 {
			t.Errorf("smart kernel regressed at iteration %d: %v -> %v", i, prev, q)
		}
		prev = q
	}
}

func TestConstrainedBoundsDisplacement(t *testing.T) {
	m := genMesh(t, 1200)
	before := append([]geom.Point(nil), m.Coords...)
	const maxDisp = 1e-3
	if _, err := Run(m, Options{MaxIters: 1, Tol: -1, Kernel: registryKernel(t, "constrained", maxDisp)}); err != nil {
		t.Fatal(err)
	}
	for v := range m.Coords {
		if d := m.Coords[v].Dist(before[v]); d > maxDisp*(1+1e-12) {
			t.Fatalf("vertex %d moved %v > %v", v, d, maxDisp)
		}
	}
}

func TestSmartRegistryWorkersInvariant(t *testing.T) {
	// Smart sweeps are serial at any worker count; Workers > 1 only
	// parallelizes the measurement passes, so results are identical.
	serial := genMesh(t, 600)
	resS, err := Run(serial, Options{MaxIters: 3, Tol: -1, Kernel: registryKernel(t, "smart", 0)})
	if err != nil {
		t.Fatal(err)
	}
	par := genMesh(t, 600)
	resP, err := Run(par, Options{MaxIters: 3, Tol: -1, Workers: 2, Kernel: registryKernel(t, "smart", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if resP.FinalQuality != resS.FinalQuality || resP.Accesses != resS.Accesses {
		t.Errorf("parallel smart run differs: %+v vs %+v", resP, resS)
	}
	for v := range serial.Coords {
		if par.Coords[v] != serial.Coords[v] {
			t.Fatalf("vertex %d differs: %v vs %v", v, par.Coords[v], serial.Coords[v])
		}
	}
}

func TestPlainRegistryEqualsRun(t *testing.T) {
	a := genMesh(t, 1000)
	b := a.Clone()
	if _, err := Run(a, Options{MaxIters: 4, Tol: -1, Kernel: registryKernel(t, "plain", 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(b, Options{MaxIters: 4, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	for v := range a.Coords {
		if a.Coords[v] != b.Coords[v] {
			t.Fatal("registry plain kernel diverged from the default Run")
		}
	}
}

func TestWeightedDiffersFromPlain(t *testing.T) {
	a := genMesh(t, 1000)
	b := a.Clone()
	if _, err := Run(a, Options{MaxIters: 2, Tol: -1, Kernel: registryKernel(t, "weighted", 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(b, Options{MaxIters: 2, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Coords {
		if a.Coords[v] != b.Coords[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("weighted kernel identical to plain")
	}
}
