package smooth

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"lams/internal/faultinject"
)

// The checkpoint equivalence harness: run a configuration uninterrupted
// while capturing every checkpoint, then resume a fresh run from each
// captured checkpoint — optionally under different execution axes
// (workers, schedule, partitions) — and require the resumed run's coords,
// Iterations, Accesses, and QualityHistory to be bit-identical to the
// uninterrupted run. This is the golden matrix's bar applied to the
// resume path, including the cells the golden file does not cover:
// in-place kernels, the Gauss-Seidel ablation, CheckEvery > 1, and
// Tol-terminated runs.

type ckptConfig struct {
	dim         int
	kernel      string
	gaussSeidel bool
	schedule    string
	workers     int
	partitions  int
	checkEvery  int
	maxIters    int
	tol         float64
}

func (c ckptConfig) name() string {
	gs := ""
	if c.gaussSeidel {
		gs = "+gs"
	}
	return fmt.Sprintf("dim=%d/kernel=%s%s/schedule=%s/workers=%d/partitions=%d/checkevery=%d",
		c.dim, c.kernel, gs, c.schedule, c.workers, c.partitions, c.checkEvery)
}

func (c ckptConfig) inPlace() bool { return c.gaussSeidel || c.kernel == "smart" }

// ckptRun executes c from a fresh mesh and returns the result plus the
// final flattened coordinates; resume and capture thread through Options.
func ckptRun(t *testing.T, c ckptConfig, resume *Checkpoint, capture func(Checkpoint)) (Result, []float64) {
	t.Helper()
	opt := Options{
		MaxIters: c.maxIters, Tol: c.tol, CheckEvery: c.checkEvery,
		Workers: c.workers, Schedule: c.schedule, Partitions: c.partitions,
		GaussSeidel: c.gaussSeidel,
		Resume:      resume, Checkpoint: capture,
	}
	if c.dim == 2 {
		m := genMesh(t, 500)
		opt.Kernel = goldenKernel2(t, c.kernel)
		res, err := Run(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		coords := make([]float64, 0, 2*len(m.Coords))
		for _, p := range m.Coords {
			coords = append(coords, p.X, p.Y)
		}
		return res, coords
	}
	m := genTetMesh(t, 4)
	opt.TetKernel = goldenKernel3(t, c.kernel)
	res, err := RunTet(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	coords := make([]float64, 0, 3*len(m.Coords))
	for _, p := range m.Coords {
		coords = append(coords, p.X, p.Y, p.Z)
	}
	return res, coords
}

// ckptCompare requires bitwise equality of everything Result reports plus
// the final coordinates.
func ckptCompare(t *testing.T, label string, want, got Result, wantCoords, gotCoords []float64) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Errorf("%s: iterations = %d, want %d", label, got.Iterations, want.Iterations)
	}
	if got.Accesses != want.Accesses {
		t.Errorf("%s: accesses = %d, want %d", label, got.Accesses, want.Accesses)
	}
	if math.Float64bits(got.InitialQuality) != math.Float64bits(want.InitialQuality) {
		t.Errorf("%s: initial quality %v != %v", label, got.InitialQuality, want.InitialQuality)
	}
	if math.Float64bits(got.FinalQuality) != math.Float64bits(want.FinalQuality) {
		t.Errorf("%s: final quality %v != %v", label, got.FinalQuality, want.FinalQuality)
	}
	if len(got.QualityHistory) != len(want.QualityHistory) {
		t.Fatalf("%s: history length %d, want %d", label, len(got.QualityHistory), len(want.QualityHistory))
	}
	for i := range want.QualityHistory {
		if math.Float64bits(got.QualityHistory[i]) != math.Float64bits(want.QualityHistory[i]) {
			t.Fatalf("%s: history[%d] = %v, want %v", label, i, got.QualityHistory[i], want.QualityHistory[i])
		}
	}
	if len(gotCoords) != len(wantCoords) {
		t.Fatalf("%s: %d coords, want %d", label, len(gotCoords), len(wantCoords))
	}
	for i := range wantCoords {
		if math.Float64bits(gotCoords[i]) != math.Float64bits(wantCoords[i]) {
			t.Fatalf("%s: coord[%d] = %v, want %v", label, i, gotCoords[i], wantCoords[i])
		}
	}
}

// crossAxes returns an execution configuration with different workers,
// schedule, and partitioning than c — the axes a checkpoint is allowed to
// migrate across. In-place kernels stay single-engine (the partitioned
// driver rejects them) and flip only the measurement workers.
func crossAxes(c ckptConfig) ckptConfig {
	x := c
	if x.workers == 1 {
		x.workers = 4
	} else {
		x.workers = 1
	}
	if x.inPlace() {
		return x
	}
	if x.schedule == "stealing" {
		x.schedule = "static"
	} else {
		x.schedule = "stealing"
	}
	if x.partitions > 1 {
		x.partitions = 1
	} else {
		x.partitions = 3
	}
	return x
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	execs := []struct {
		schedule   string
		workers    int
		partitions int
	}{
		{"static", 1, 1},
		{"guided", 4, 1},
		{"stealing", 4, 3},
	}
	var cases []ckptConfig
	for _, dim := range []int{2, 3} {
		for _, kernel := range []string{"plain", "smart", "weighted", "constrained"} {
			for _, gs := range []bool{false, true} {
				if gs && kernel != "plain" {
					continue // one Gauss-Seidel ablation cell per dim is enough
				}
				for _, ex := range execs {
					inPlace := gs || kernel == "smart"
					if inPlace && ex.partitions > 1 {
						continue
					}
					for _, ce := range []int{1, 2} {
						cases = append(cases, ckptConfig{
							dim: dim, kernel: kernel, gaussSeidel: gs,
							schedule: ex.schedule, workers: ex.workers, partitions: ex.partitions,
							checkEvery: ce, maxIters: 6, tol: -1,
						})
					}
				}
			}
		}
	}

	for _, c := range cases {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			var cps []Checkpoint
			want, wantCoords := ckptRun(t, c, nil, func(cp Checkpoint) { cps = append(cps, cp) })
			// Tol is disabled, so every measured sweep (every checkEvery-th
			// iteration) emits a checkpoint.
			if wantN := c.maxIters / c.checkEvery; len(cps) != wantN {
				t.Fatalf("captured %d checkpoints, want %d", len(cps), wantN)
			}
			for _, cp := range cps {
				cp := cp
				got, gotCoords := ckptRun(t, c, &cp, nil)
				ckptCompare(t, fmt.Sprintf("resume@%d", cp.Iteration), want, got, wantCoords, gotCoords)

				x := crossAxes(c)
				got, gotCoords = ckptRun(t, x, &cp, nil)
				ckptCompare(t, fmt.Sprintf("resume@%d under %s", cp.Iteration, x.name()), want, got, wantCoords, gotCoords)
			}
		})
	}
}

// TestCheckpointResumeAcrossTolStop pins the interplay of resume with the
// convergence criterion: a Tol-terminated run resumed from any checkpoint
// stops at the same iteration with the same history.
func TestCheckpointResumeAcrossTolStop(t *testing.T) {
	c := ckptConfig{dim: 2, kernel: "plain", schedule: "static", workers: 1, partitions: 1,
		checkEvery: 1, maxIters: 60, tol: 1e-5}
	var cps []Checkpoint
	want, wantCoords := ckptRun(t, c, nil, func(cp Checkpoint) { cps = append(cps, cp) })
	if want.Iterations >= c.maxIters || want.Iterations < 3 {
		t.Fatalf("test wants a Tol stop after a few sweeps, got %d iterations", want.Iterations)
	}
	// The stopping sweep does not emit (the run ended there).
	if len(cps) != want.Iterations-1 {
		t.Fatalf("captured %d checkpoints for %d iterations", len(cps), want.Iterations)
	}
	for _, cp := range cps {
		cp := cp
		got, gotCoords := ckptRun(t, c, &cp, nil)
		ckptCompare(t, fmt.Sprintf("resume@%d", cp.Iteration), want, got, wantCoords, gotCoords)
	}
}

// TestCheckpointJSONRoundTrip pins persistence: a checkpoint serialized
// through encoding/json and resumed from the decoded copy is still
// bit-identical — the property the lamsd job journal relies on.
func TestCheckpointJSONRoundTrip(t *testing.T) {
	c := ckptConfig{dim: 3, kernel: "weighted", schedule: "guided", workers: 4, partitions: 1,
		checkEvery: 1, maxIters: 5, tol: -1}
	var cps []Checkpoint
	want, wantCoords := ckptRun(t, c, nil, func(cp Checkpoint) { cps = append(cps, cp) })
	if len(cps) < 2 {
		t.Fatalf("captured %d checkpoints", len(cps))
	}
	buf, err := json.Marshal(cps[1])
	if err != nil {
		t.Fatal(err)
	}
	var decoded Checkpoint
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	got, gotCoords := ckptRun(t, c, &decoded, nil)
	ckptCompare(t, "resume from decoded checkpoint", want, got, wantCoords, gotCoords)
}

func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	base := ckptConfig{dim: 2, kernel: "plain", schedule: "static", workers: 1, partitions: 1,
		checkEvery: 1, maxIters: 3, tol: -1}
	var cps []Checkpoint
	ckptRun(t, base, nil, func(cp Checkpoint) { cps = append(cps, cp) })
	cp := cps[0]

	m := genMesh(t, 500)
	// Different kernel → different fingerprint.
	if _, err := Run(m, Options{MaxIters: 3, Tol: -1, Kernel: WeightedKernel{}, Resume: &cp}); err == nil {
		t.Error("resume under a different kernel was accepted")
	}
	// Different iteration cap → different trajectory-affecting config.
	if _, err := Run(m, Options{MaxIters: 4, Tol: -1, Resume: &cp}); err == nil {
		t.Error("resume under a different MaxIters was accepted")
	}
	// Different mesh size.
	small := genMesh(t, 200)
	if _, err := Run(small, Options{MaxIters: 3, Tol: -1, Resume: &cp}); err == nil {
		t.Error("resume on a different mesh size was accepted")
	}
	// Corrupted coordinate payload.
	bad := cp
	bad.Coords = bad.Coords[:len(bad.Coords)-2]
	if _, err := Run(m, Options{MaxIters: 3, Tol: -1, Resume: &bad}); err == nil {
		t.Error("resume with truncated coords was accepted")
	}
	// Inconsistent counters.
	bad = cp
	bad.QualityHistory = append(append([]float64(nil), bad.QualityHistory...), 0.5, 0.6, 0.7)
	if _, err := Run(m, Options{MaxIters: 3, Tol: -1, Resume: &bad}); err == nil {
		t.Error("resume with more measurements than sweeps was accepted")
	}
	// The partitioned driver enforces the same fingerprint.
	if _, err := Run(m, Options{MaxIters: 4, Tol: -1, Partitions: 3, Resume: &cp}); err == nil {
		t.Error("partitioned resume under a different MaxIters was accepted")
	}
}

func TestCheckpointEveryCadence(t *testing.T) {
	c := ckptConfig{dim: 2, kernel: "plain", schedule: "static", workers: 1, partitions: 1,
		checkEvery: 1, maxIters: 6, tol: -1}
	var iters []int
	opt := Options{MaxIters: 6, Tol: -1, CheckpointEvery: 2,
		Checkpoint: func(cp Checkpoint) { iters = append(iters, cp.Iteration) }}
	m := genMesh(t, 500)
	if _, err := Run(m, opt); err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 || iters[0] != 2 || iters[1] != 4 || iters[2] != 6 {
		t.Fatalf("CheckpointEvery=2 emitted at %v, want [2 4 6]", iters)
	}
	if _, err := Run(m, Options{CheckpointEvery: -1}); err == nil {
		t.Error("negative CheckpointEvery was accepted")
	}
	_ = c
}

// TestEngineSweepFaultPoint: an injected engine fault aborts the run with
// the partial result intact, and resuming from the last checkpoint
// completes bit-identically to the uninterrupted run — the retry loop
// lamsd runs, in miniature.
func TestEngineSweepFaultPoint(t *testing.T) {
	for _, partitions := range []int{1, 3} {
		t.Run(fmt.Sprintf("partitions=%d", partitions), func(t *testing.T) {
			c := ckptConfig{dim: 2, kernel: "plain", schedule: "static", workers: 2, partitions: partitions,
				checkEvery: 1, maxIters: 5, tol: -1}
			want, wantCoords := ckptRun(t, c, nil, nil)

			fs := faultinject.New()
			fs.ArmAfter(faultinject.PointEngineSweep, 3)
			var cps []Checkpoint
			m := genMesh(t, 500)
			opt := Options{MaxIters: 5, Tol: -1, Workers: 2, Partitions: partitions,
				Faults: fs, Checkpoint: func(cp Checkpoint) { cps = append(cps, cp) }}
			res, err := Run(m, opt)
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			if res.Iterations != 2 {
				t.Fatalf("failed at iteration %d, want 2 (fault armed on 3rd sweep)", res.Iterations)
			}
			if len(cps) == 0 {
				t.Fatal("no checkpoint before the fault")
			}
			got, gotCoords := ckptRun(t, c, &cps[len(cps)-1], nil)
			ckptCompare(t, "resume after injected fault", want, got, wantCoords, gotCoords)
		})
	}
}

// TestExchangeFaultPoints: injected halo-exchange failures abort the
// partitioned run with the injected error instead of deadlocking the
// peers blocked in their receives.
func TestExchangeFaultPoints(t *testing.T) {
	for _, pt := range []string{faultinject.PointExchangeSend, faultinject.PointExchangeRecv} {
		t.Run(pt, func(t *testing.T) {
			fs := faultinject.New()
			fs.ArmAfter(pt, 2)
			m := genMesh(t, 500)
			done := make(chan struct{})
			var res Result
			var err error
			go func() {
				defer close(done)
				res, err = Run(m, Options{MaxIters: 5, Tol: -1, Partitions: 3, Faults: fs})
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("partitioned run deadlocked on injected exchange fault")
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			if res.Iterations < 1 {
				t.Fatalf("iterations = %d; fault should land mid-run", res.Iterations)
			}
		})
	}
}

func TestCheckpointIntervalYoungDaly(t *testing.T) {
	// sqrt(2 · 50ms · 1000s) = 10s of work between checkpoints; at 1ms a
	// sweep that is 10000 sweeps.
	if got := CheckpointInterval(time.Millisecond, 50*time.Millisecond, 1000*time.Second); got != 10000 {
		t.Errorf("interval = %d, want 10000", got)
	}
	// Expensive sweeps relative to checkpoint cost floor at 1.
	if got := CheckpointInterval(time.Hour, time.Millisecond, time.Second); got != 1 {
		t.Errorf("interval = %d, want 1 (floored)", got)
	}
	// Degenerate inputs fall back to every sweep.
	for _, d := range [][3]time.Duration{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if got := CheckpointInterval(d[0], d[1], d[2]); got != 1 {
			t.Errorf("CheckpointInterval(%v) = %d, want 1", d, got)
		}
	}
}

// TestCheckpointCancellationUnaffected: the cancellation contract survives
// the checkpoint insertions — a canceled run still returns ctx.Err() with
// the partial result.
func TestCheckpointCancellationUnaffected(t *testing.T) {
	m := genMesh(t, 500)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := RunContext(ctx, m, Options{MaxIters: 10, Tol: -1,
		Checkpoint: func(Checkpoint) {
			if n++; n == 2 {
				cancel()
			}
		}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
