package smooth

import (
	"context"
	"math"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/quality"
	"lams/internal/trace"
)

func genTetMesh(t testing.TB, cells int) *mesh.TetMesh {
	t.Helper()
	m, err := mesh.GenerateTetCube(cells, cells, cells, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSmoothing3ImprovesQuality(t *testing.T) {
	m := genTetMesh(t, 6)
	res, err := RunTet(m, Options{MaxIters: 10, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 10 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.FinalQuality <= res.InitialQuality {
		t.Errorf("quality did not improve: %v -> %v", res.InitialQuality, res.FinalQuality)
	}
	if len(res.QualityHistory) != 10 {
		t.Errorf("history length %d", len(res.QualityHistory))
	}
}

func TestBoundary3VerticesFixed(t *testing.T) {
	m := genTetMesh(t, 5)
	before := append([]geom.Point3(nil), m.Coords...)
	if _, err := RunTet(m, Options{MaxIters: 3, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < m.NumVerts(); v++ {
		if m.IsBoundary[v] && m.Coords[v] != before[v] {
			t.Fatalf("boundary vertex %d moved", v)
		}
	}
}

func TestJacobi3MatchesEquationOne(t *testing.T) {
	m := genTetMesh(t, 4)
	before := append([]geom.Point3(nil), m.Coords...)
	if _, err := RunTet(m, Options{MaxIters: 1, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	for _, v := range m.InteriorVerts {
		var sx, sy, sz float64
		nbrs := m.Neighbors(v)
		for _, w := range nbrs {
			sx += before[w].X
			sy += before[w].Y
			sz += before[w].Z
		}
		n := float64(len(nbrs))
		want := geom.Point3{X: sx / n, Y: sy / n, Z: sz / n}
		if math.Abs(want.X-m.Coords[v].X) > 1e-12 ||
			math.Abs(want.Y-m.Coords[v].Y) > 1e-12 ||
			math.Abs(want.Z-m.Coords[v].Z) > 1e-12 {
			t.Fatalf("vertex %d at %v, want %v", v, m.Coords[v], want)
		}
	}
}

// TestOrdering3IndependentResult is the 3D analogue of the 2D Jacobi
// regression: reordering the mesh must not change what the smoother
// computes, only where vertices live in memory. Smoothing a renumbered mesh
// and mapping the coordinates back must match smoothing the original to
// floating-point roundoff (renumbering permutes each neighbor sum's
// evaluation order, so exact bitwise equality is reserved for the
// schedule/worker axis, which never changes the layout).
func TestOrdering3IndependentResult(t *testing.T) {
	base := genTetMesh(t, 5)
	ref := base.Clone()
	refRes, err := RunTet(ref, Options{MaxIters: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	vq := quality.TetVertexQualities(base, quality.MeanRatio3{})
	for _, name := range []string{"BFS", "RDR", "HILBERT"} {
		ord, err := order.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := ord.Compute(base, vq)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := base.Renumber(perm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTet(rm, Options{MaxIters: 5, Tol: -1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != refRes.Iterations {
			t.Errorf("%s: %d iterations, want %d", name, res.Iterations, refRes.Iterations)
		}
		for newIdx, oldIdx := range perm {
			got, want := rm.Coords[newIdx], ref.Coords[oldIdx]
			if math.Abs(got.X-want.X) > 1e-12 ||
				math.Abs(got.Y-want.Y) > 1e-12 ||
				math.Abs(got.Z-want.Z) > 1e-12 {
				t.Fatalf("%s: vertex %d (old %d) = %v, want %v", name, newIdx, oldIdx, got, want)
			}
		}
	}
}

func TestGaussSeidel3SerialSweep(t *testing.T) {
	m := genTetMesh(t, 4)
	res, err := RunTet(m, Options{GaussSeidel: true, MaxIters: 3, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalQuality <= res.InitialQuality {
		t.Error("Gauss-Seidel did not improve quality")
	}
	// Workers > 1 parallelizes only the measurement passes; the in-place
	// sweep itself stays serial, so the result is identical.
	m2 := genTetMesh(t, 4)
	res2, err := RunTet(m2, Options{GaussSeidel: true, MaxIters: 3, Tol: -1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalQuality != res.FinalQuality || res2.Accesses != res.Accesses {
		t.Errorf("parallel-measurement Gauss-Seidel differs: %+v vs %+v", res2, res)
	}
}

func TestSmart3IsInPlaceAndMonotone(t *testing.T) {
	m := genTetMesh(t, 4)
	res, err := RunTet(m, Options{TetKernel: SmartKernel3{}, MaxIters: 4, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalQuality < res.InitialQuality {
		t.Errorf("smart smoothing regressed quality: %v -> %v", res.InitialQuality, res.FinalQuality)
	}
	// The smart sweep is serial at any worker count (only measurement
	// parallelizes), so workers must not change the result.
	m2 := genTetMesh(t, 4)
	res2, err := RunTet(m2, Options{TetKernel: SmartKernel3{}, MaxIters: 4, Tol: -1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalQuality != res.FinalQuality || res2.Accesses != res.Accesses {
		t.Errorf("parallel-measurement smart run differs: %+v vs %+v", res2, res)
	}
}

func TestConstrained3BoundsMoves(t *testing.T) {
	const maxD = 1e-4
	m := genTetMesh(t, 4)
	before := append([]geom.Point3(nil), m.Coords...)
	if _, err := RunTet(m, Options{TetKernel: ConstrainedKernel3{MaxDisplacement: maxD}, MaxIters: 1, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	for v := range m.Coords {
		if d := m.Coords[v].Dist(before[v]); d > maxD*(1+1e-12) {
			t.Fatalf("vertex %d moved %v > max displacement %v", v, d, maxD)
		}
	}
}

func TestTrace3Accounting(t *testing.T) {
	m := genTetMesh(t, 4)
	tb := trace.NewBuffer(1)
	res, err := RunTet(m, Options{MaxIters: 2, Tol: -1, Trace: tb})
	if err != nil {
		t.Fatal(err)
	}
	if int64(tb.Total()) != res.Accesses {
		t.Errorf("trace has %d accesses, result says %d", tb.Total(), res.Accesses)
	}
	if tb.Iterations() != 2 {
		t.Errorf("trace iterations = %d", tb.Iterations())
	}
	if _, err := RunTet(m, Options{Workers: 2, Trace: trace.NewBuffer(1)}); err == nil {
		t.Error("undersized trace buffer accepted")
	}
}

func TestRun3Cancellation(t *testing.T) {
	m := genTetMesh(t, 5)
	before := m.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewSmoother().RunTet(ctx, m, Options{MaxIters: 5, Tol: -1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Errorf("iterations = %d after pre-canceled run", res.Iterations)
	}
	for v := range m.Coords {
		if m.Coords[v] != before.Coords[v] {
			t.Fatal("pre-canceled run mutated the mesh")
		}
	}
}
