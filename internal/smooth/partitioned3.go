package smooth

import (
	"context"
	"fmt"
	"sync"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/parallel"
	"lams/internal/partition"
	"lams/internal/quality"
)

// PartitionedSmoother3 is the tetrahedral multi-engine driver: the same
// decomposition, per-sweep barrier, halo exchange, and bit-identity
// contract as the 2D PartitionedSmoother, run over a TetMesh with one
// Smoother3 per partition. The zero value is ready to use; not safe for
// concurrent use.
type PartitionedSmoother3 struct {
	qs        quality.Scratch
	sched     parallel.Scheduler
	schedName string

	// Cached decomposition; see PartitionedSmoother.
	mesh   *mesh.TetMesh
	nv, ne int
	k      int
	pname  string
	layout *partition.Layout
	parts  []*partEngine3
	ex     partition.Exchanger
}

// NewPartitionedSmoother3 returns an empty 3D multi-engine driver.
func NewPartitionedSmoother3() *PartitionedSmoother3 { return &PartitionedSmoother3{} }

// Reset releases the cached decomposition and scratch; see Smoother.Reset.
func (ps *PartitionedSmoother3) Reset() { *ps = PartitionedSmoother3{} }

// CachedMesh returns the mesh whose decomposition the driver currently
// caches, or nil before the first run; see PartitionedSmoother.CachedMesh.
func (ps *PartitionedSmoother3) CachedMesh() *mesh.TetMesh { return ps.mesh }

// partEngine3 is one partition's worker state; the 3D partEngine.
type partEngine3 struct {
	index int
	eng   Smoother3
	local *mesh.TetMesh
	l2g   []int32
	visit []int32
	sIdx  [][]int32
	rIdx  [][]int32
	sBuf  [][]float64

	soa  bool
	next []geom.Point3
	acc  int64
	err  error
}

// RunPartitioned3 smooths the tetrahedral mesh with opt.Partitions
// cooperating engines using a one-shot driver; see RunPartitioned.
func RunPartitioned3(ctx context.Context, m *mesh.TetMesh, opt Options3) (Result, error) {
	return NewPartitionedSmoother3().Run(ctx, m, opt)
}

// Run smooths the tetrahedral mesh in place across the partitions; the
// cancellation contract matches PartitionedSmoother.Run.
func (ps *PartitionedSmoother3) Run(ctx context.Context, m *mesh.TetMesh, opt Options3) (Result, error) {
	opt = opt.withDefaults()
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("smooth: workers must be >= 1, got %d", opt.Workers)
	}
	if opt.CheckEvery < 1 {
		return Result{}, fmt.Errorf("smooth: check-every must be >= 1, got %d", opt.CheckEvery)
	}
	k := opt.Partitions
	if k == 0 {
		k = 1
	}
	if k < 1 {
		return Result{}, fmt.Errorf("smooth: partitions must be >= 1, got %d", opt.Partitions)
	}
	kern := opt.Kernel
	if kern == nil {
		kern = PlainKernel3{}
	}
	if opt.GaussSeidel || kern.InPlace() {
		return Result{}, fmt.Errorf("smooth: partitioned runs require Jacobi updates; kernel %q updates in place", kern.Name())
	}
	if opt.Trace != nil {
		return Result{}, fmt.Errorf("smooth: partitioned runs do not support tracing")
	}
	if err := ps.resolveScheduler(opt.Schedule); err != nil {
		return Result{}, err
	}
	if err := ps.setup(m, k, opt.Partitioner); err != nil {
		return Result{}, err
	}

	// Measurement configuration; see PartitionedSmoother.Run.
	met := opt.Metric
	qworkers, qsched := opt.Workers, ps.sched
	if opt.NoFastPath {
		met = quality.BoxTetMetric(met)
		qworkers, qsched = 1, nil
	}

	soa := !opt.NoFastPath && soaPartKernel3(kern)
	for _, pe := range ps.parts {
		for l, g := range pe.l2g {
			pe.local.Coords[l] = m.Coords[g]
		}
		if err := pe.eng.resolveScheduler(opt.Schedule); err != nil {
			return Result{}, err
		}
		pe.soa = soa
		if soa {
			pe.eng.packCoords(pe.local, true)
			pe.next = nil
		} else {
			pe.next = pe.eng.nextBuffer(len(pe.local.Coords))
		}
	}
	if ce, ok := ps.ex.(*partition.ChanExchanger); ok {
		ce.Reset()
	}

	q0, err := ps.qs.TetGlobalParallel(ctx, m, met, qworkers, qsched)
	if err != nil {
		return Result{}, err
	}
	res := Result{InitialQuality: q0}
	res.FinalQuality = res.InitialQuality
	if opt.Progress != nil {
		opt.Progress(0, q0)
	}
	if opt.MaxIters > 0 {
		res.QualityHistory = make([]float64, 0, opt.MaxIters)
	}
	prevQ := res.InitialQuality

	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if prevQ >= opt.GoalQuality {
			break
		}

		// Phase 1 — sweep; see PartitionedSmoother.Run.
		ps.fanOut(func(pe *partEngine3) {
			pe.acc, pe.err = pe.eng.sweep(ctx, pe.local, kern, false, pe.soa, pe.visit, pe.next, opt)
		})
		firstErr := error(nil)
		for _, pe := range ps.parts {
			res.Accesses += pe.acc
			if pe.err != nil && firstErr == nil {
				firstErr = pe.err
			}
		}
		if firstErr != nil {
			return res, firstErr
		}

		// Phase 2 — publish and halo exchange; see PartitionedSmoother.Run.
		ps.fanOut(func(pe *partEngine3) {
			pe.publish(m)
			pe.err = pe.exchange(ctx, ps.ex)
		})
		res.Iterations++
		for _, pe := range ps.parts {
			if pe.err != nil {
				return res, pe.err
			}
		}

		if res.Iterations%opt.CheckEvery != 0 && iter != opt.MaxIters-1 {
			continue
		}
		q, err := ps.qs.TetGlobalParallel(ctx, m, met, qworkers, qsched)
		if err != nil {
			return res, err
		}
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if opt.Progress != nil {
			opt.Progress(res.Iterations, q)
		}
		if q-prevQ < opt.Tol {
			break
		}
		prevQ = q
	}
	return res, nil
}

// fanOut runs fn on every partition engine concurrently and joins them.
func (ps *PartitionedSmoother3) fanOut(fn func(pe *partEngine3)) {
	if len(ps.parts) == 1 {
		fn(ps.parts[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ps.parts))
	for _, pe := range ps.parts {
		go func(pe *partEngine3) {
			defer wg.Done()
			fn(pe)
		}(pe)
	}
	wg.Wait()
}

// publish copies the partition's owned interior coordinates into their
// (disjoint) global-mesh slots.
func (pe *partEngine3) publish(m *mesh.TetMesh) {
	if pe.soa {
		cx, cy, cz := pe.eng.cx, pe.eng.cy, pe.eng.cz
		for _, l := range pe.visit {
			m.Coords[pe.l2g[l]] = geom.Point3{X: cx[l], Y: cy[l], Z: cz[l]}
		}
		return
	}
	for _, l := range pe.visit {
		m.Coords[pe.l2g[l]] = pe.local.Coords[l]
	}
}

// exchange gathers, trades, and scatters the partition's halo payloads.
func (pe *partEngine3) exchange(ctx context.Context, ex partition.Exchanger) error {
	if len(pe.sBuf) == 0 && len(pe.rIdx) == 0 {
		return nil
	}
	if pe.soa {
		cx, cy, cz := pe.eng.cx, pe.eng.cy, pe.eng.cz
		for i, idx := range pe.sIdx {
			buf := pe.sBuf[i]
			for j, l := range idx {
				buf[3*j], buf[3*j+1], buf[3*j+2] = cx[l], cy[l], cz[l]
			}
		}
	} else {
		for i, idx := range pe.sIdx {
			buf := pe.sBuf[i]
			for j, l := range idx {
				p := pe.local.Coords[l]
				buf[3*j], buf[3*j+1], buf[3*j+2] = p.X, p.Y, p.Z
			}
		}
	}
	incoming, err := ex.Exchange(ctx, pe.index, pe.sBuf)
	if err != nil {
		return err
	}
	if pe.soa {
		cx, cy, cz := pe.eng.cx, pe.eng.cy, pe.eng.cz
		for i, idx := range pe.rIdx {
			buf := incoming[i]
			for j, l := range idx {
				cx[l], cy[l], cz[l] = buf[3*j], buf[3*j+1], buf[3*j+2]
			}
		}
		return nil
	}
	for i, idx := range pe.rIdx {
		buf := incoming[i]
		for j, l := range idx {
			pe.local.Coords[l] = geom.Point3{X: buf[3*j], Y: buf[3*j+1], Z: buf[3*j+2]}
		}
	}
	return nil
}

// soaPartKernel3 reports whether the 3D kernel has a monomorphic SoA
// Jacobi loop; see soaPartKernel.
func soaPartKernel3(kern Kernel3) bool {
	switch kern.(type) {
	case PlainKernel3, WeightedKernel3, ConstrainedKernel3:
		return true
	}
	return false
}

// setup (re)builds the cached decomposition; see PartitionedSmoother.setup.
func (ps *PartitionedSmoother3) setup(m *mesh.TetMesh, k int, pname string) error {
	if pname == "" {
		pname = partition.BFS
	}
	if ps.mesh == m && ps.nv == m.NumVerts() && ps.ne == m.NumTets() && ps.k == k && ps.pname == pname {
		return nil
	}
	layout, err := partition.New(partition.FromTetMesh(m), k, pname)
	if err != nil {
		return fmt.Errorf("smooth: partitioning: %w", err)
	}
	parts := make([]*partEngine3, k)
	for p := range layout.Parts {
		part := &layout.Parts[p]
		local, l2g, err := partition.BuildLocalTet(m, part)
		if err != nil {
			return fmt.Errorf("smooth: partition %d local mesh: %w", p, err)
		}
		pe := &partEngine3{index: p, local: local, l2g: l2g}
		for l, g := range l2g {
			if layout.Owner[g] == int32(p) && !m.IsBoundary[g] {
				pe.visit = append(pe.visit, int32(l))
			}
		}
		pe.sIdx, pe.sBuf = linkLocals(part.Sends, l2g, 3)
		pe.rIdx, _ = linkLocals(part.Recvs, l2g, 0)
		parts[p] = pe
	}
	ps.mesh, ps.nv, ps.ne = m, m.NumVerts(), m.NumTets()
	ps.k, ps.pname = k, pname
	ps.layout, ps.parts = layout, parts
	ps.ex = partition.NewChanExchanger(layout, 3)
	return nil
}

// Layout returns the driver's cached decomposition, or nil before the
// first run.
func (ps *PartitionedSmoother3) Layout() *partition.Layout { return ps.layout }

// resolveScheduler caches the driver's measurement scheduler.
func (ps *PartitionedSmoother3) resolveScheduler(name string) error {
	if name == "" {
		name = parallel.ScheduleStatic
	}
	if ps.sched != nil && ps.schedName == name {
		return nil
	}
	sched, err := parallel.SchedulerByName(name)
	if err != nil {
		return fmt.Errorf("smooth: %w", err)
	}
	ps.sched, ps.schedName = sched, name
	return nil
}
