package smooth

import (
	"context"
	"fmt"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/partition"
	"lams/internal/quality"
	"lams/internal/trace"
)

// This file is the Dim abstraction: everything about a smoothing run that
// actually depends on the spatial dimension — the mesh type, the per-axis
// coordinate mirrors, point pack/unpack, metric and kernel resolution, and
// the per-vertex sweep loop bodies — concentrated in two small value types,
// dim2 and dim3. The generic engine (engine.go) and partitioned driver
// (partitioned.go) are written once against the dimOps constraint and
// instantiated at both.
//
// The performance contract: every per-vertex loop lives INSIDE a dim
// method, whose body is ordinary monomorphic code on a concrete receiver
// (*dim2 or *dim3) — the compiler stencils one copy per instantiation, so
// no interface or dictionary call enters a hot loop. The engine calls dim
// methods only at per-run and per-sweep granularity.

// dimOps is the compile-time plug a dimension provides to the generic
// engine. D is the dimension's state struct (dim2 or dim3); the constraint
// requires pointer receivers so the methods mutate the engine-owned value
// in place without allocation.
type dimOps[D any] interface {
	*D

	// prepare resolves the run's kernel and metric from the unified
	// Options — applying the dimension's defaults, hoisting the smart
	// kernel's nil accept metric, and rejecting options that select the
	// other dimension's rules — and reports whether the sweep updates in
	// place (Gauss-Seidel style).
	prepare(opt *Options) (inPlace bool, err error)
	// kernelName names the resolved kernel for error messages.
	kernelName() string
	// boxMetric wraps the resolved metric so quality passes go through
	// interface dispatch (the NoFastPath ablation).
	boxMetric()
	// soaEligible reports whether the run can operate on the SoA
	// coordinate mirrors: an untraced, un-ablated run of a built-in kernel
	// whose whole sweep has a monomorphic SoA loop in fastpath.go.
	soaEligible(opt *Options) bool
	// jacobiSoA reports whether the resolved kernel has a monomorphic SoA
	// Jacobi loop (the partitioned drivers' eligibility test, with the
	// in-place cases already rejected).
	jacobiSoA() bool
	// release drops the per-run references (mesh, kernel, metric) so a
	// pooled engine does not pin them between runs; scratch stays.
	release()

	// numVerts, interior, boundary and graph expose the mesh topology the
	// engine's traversal and bookkeeping need.
	numVerts() int
	interior() []int32
	boundary() []bool
	graph() order.Graph
	// vertexQualities computes the per-vertex qualities driving the
	// quality-greedy traversal, with the run's metric and measurement
	// configuration.
	vertexQualities(ctx context.Context, qs *quality.Scratch, workers int, sched parallel.Scheduler) ([]float64, error)

	// snapshotCoords returns a fresh axis-interleaved copy of the current
	// coordinates — read from the SoA mirrors when they are authoritative
	// — and restoreCoords writes such a snapshot back into the mesh.
	// Plain float64 copies in both directions, so checkpoint/resume
	// preserves every bit pattern.
	snapshotCoords(soa bool) []float64
	restoreCoords(src []float64)
	// configDetail renders the resolved kernel and metric for the
	// checkpoint fingerprint.
	configDetail() string

	// pack fills the SoA mirrors from the mesh coordinates (sizing the
	// Jacobi next-mirrors when requested); commit writes them back. Plain
	// float64 copies, so every bit pattern survives the round trip.
	pack(jacobi bool)
	commit()
	// ensureNext sizes the AoS Jacobi next-buffer for the current mesh.
	ensureNext()
	// measure returns the global quality of the current coordinates,
	// bit-identical between the SoA and AoS paths.
	measure(ctx context.Context, qs *quality.Scratch, soa bool, workers int, sched parallel.Scheduler) (float64, error)

	// The sweep bodies. In-place sweeps are whole-visit serial loops;
	// Jacobi sweeps are chunk bodies run by the engine's scheduler and
	// committed by commitSoA/commitNext afterwards.
	sweepInPlace(tb *trace.Buffer, visit []int32) int64
	sweepInPlaceSoA(visit []int32) int64
	soaBody(counts []int64, visit []int32) func(worker int, ch parallel.Chunk)
	genericBody(tb *trace.Buffer, counts []int64, visit []int32) func(worker int, ch parallel.Chunk)
	commitSoA(visit []int32)
	commitNext(visit []int32)

	// Partitioned-driver hooks: decomposition input, local-mesh
	// construction, per-sweep publish and halo gather/scatter.
	meshAny() any
	elemCount() int
	axes() int
	partitionInput() partition.Input
	buildLocal(src *D, part *partition.Part) ([]int32, error)
	refreshLocal(src *D, l2g []int32)
	adoptKernel(src *D)
	publish(dst *D, l2g, visit []int32, soa bool)
	gather(idx []int32, buf []float64, soa bool)
	scatter(idx []int32, buf []float64, soa bool)
}

// dim2 is the triangle-mesh dimension: the mesh, the run's resolved kernel
// and metric, the structure-of-arrays coordinate mirrors (cx[i], cy[i] is
// vertex i), and the Jacobi buffers. Fast-path runs pack m.Coords into the
// mirrors at sweep entry and commit back at exit, so the hot loops read and
// write per-axis float64 slices instead of gathering Point structs; see
// fastpath.go. Between pack and commit the mirrors are authoritative and
// m.Coords is stale.
type dim2 struct {
	m    *mesh.Mesh
	kern Kernel
	met  quality.Metric

	cx, cy []float64
	nx, ny []float64
	next   []geom.Point
}

// dim3 is the tetrahedral dimension; see dim2.
type dim3 struct {
	m    *mesh.TetMesh
	kern TetKernel
	met  quality.TetMetric

	cx, cy, cz []float64
	nx, ny, nz []float64
	next       []geom.Point3
}

func (d *dim2) prepare(opt *Options) (bool, error) {
	if opt.TetMetric != nil || opt.TetKernel != nil {
		return false, fmt.Errorf("smooth: options select tetrahedral rules (TetMetric/TetKernel) but the run is 2D; use RunTet")
	}
	kern := opt.Kernel
	if kern == nil {
		kern = PlainKernel{}
	}
	// Resolve SmartKernel's nil-default metric once here instead of on
	// every vertex visit inside Update, so the in-place sweep stops
	// re-branching per vertex.
	if sk, ok := kern.(SmartKernel); ok && sk.Metric == nil {
		kern = SmartKernel{Metric: quality.EdgeRatio{}}
	}
	met := opt.Metric
	if met == nil {
		met = quality.EdgeRatio{}
	}
	d.kern, d.met = kern, met
	return opt.GaussSeidel || kern.InPlace(), nil
}

func (d *dim3) prepare(opt *Options) (bool, error) {
	if opt.Metric != nil || opt.Kernel != nil {
		return false, fmt.Errorf("smooth: options select triangle rules (Metric/Kernel) but the run is tetrahedral; use Run")
	}
	kern := opt.TetKernel
	if kern == nil {
		kern = PlainKernel3{}
	}
	// Resolve SmartKernel3's nil-default metric once per run; see
	// dim2.prepare.
	if sk, ok := kern.(SmartKernel3); ok && sk.Metric == nil {
		kern = SmartKernel3{Metric: quality.MeanRatio3{}}
	}
	met := opt.TetMetric
	if met == nil {
		met = quality.MeanRatio3{}
	}
	d.kern, d.met = kern, met
	return opt.GaussSeidel || kern.InPlace(), nil
}

func (d *dim2) kernelName() string { return d.kern.Name() }
func (d *dim3) kernelName() string { return d.kern.Name() }

func (d *dim2) boxMetric() { d.met = quality.BoxMetric(d.met) }
func (d *dim3) boxMetric() { d.met = quality.BoxTetMetric(d.met) }

// soaEligible: the smart kernel qualifies only with the metric its accept
// test devirtualizes; the Jacobi kernels only without the Gauss-Seidel
// ablation (whose in-place sweep goes through the interface Update).
func (d *dim2) soaEligible(opt *Options) bool {
	if opt.Trace != nil || opt.NoFastPath {
		return false
	}
	switch k := d.kern.(type) {
	case PlainKernel, WeightedKernel, ConstrainedKernel:
		return !opt.GaussSeidel
	case SmartKernel:
		_, ok := k.Metric.(quality.EdgeRatio)
		return ok
	}
	return false
}

func (d *dim3) soaEligible(opt *Options) bool {
	if opt.Trace != nil || opt.NoFastPath {
		return false
	}
	switch k := d.kern.(type) {
	case PlainKernel3, WeightedKernel3, ConstrainedKernel3:
		return !opt.GaussSeidel
	case SmartKernel3:
		_, ok := k.Metric.(quality.MeanRatio3)
		return ok
	}
	return false
}

func (d *dim2) jacobiSoA() bool {
	switch d.kern.(type) {
	case PlainKernel, WeightedKernel, ConstrainedKernel:
		return true
	}
	return false
}

func (d *dim3) jacobiSoA() bool {
	switch d.kern.(type) {
	case PlainKernel3, WeightedKernel3, ConstrainedKernel3:
		return true
	}
	return false
}

func (d *dim2) release() { d.m, d.kern, d.met = nil, nil, nil }
func (d *dim3) release() { d.m, d.kern, d.met = nil, nil, nil }

func (d *dim2) numVerts() int     { return d.m.NumVerts() }
func (d *dim3) numVerts() int     { return d.m.NumVerts() }
func (d *dim2) interior() []int32 { return d.m.InteriorVerts }
func (d *dim3) interior() []int32 { return d.m.InteriorVerts }
func (d *dim2) boundary() []bool  { return d.m.IsBoundary }
func (d *dim3) boundary() []bool  { return d.m.IsBoundary }

// graph exposes the mesh through the Graph view the orderings use; a
// pointer-to-interface conversion, so no allocation.
func (d *dim2) graph() order.Graph { return d.m }
func (d *dim3) graph() order.Graph { return d.m }

func (d *dim2) vertexQualities(ctx context.Context, qs *quality.Scratch, workers int, sched parallel.Scheduler) ([]float64, error) {
	return qs.VertexQualitiesParallel(ctx, d.m, d.met, workers, sched)
}

func (d *dim3) vertexQualities(ctx context.Context, qs *quality.Scratch, workers int, sched parallel.Scheduler) ([]float64, error) {
	return qs.TetVertexQualitiesParallel(ctx, d.m, d.met, workers, sched)
}

func (d *dim2) pack(jacobi bool) {
	n := len(d.m.Coords)
	d.cx, d.cy = growFloats(d.cx, n), growFloats(d.cy, n)
	for i, p := range d.m.Coords {
		d.cx[i], d.cy[i] = p.X, p.Y
	}
	if jacobi {
		d.nx, d.ny = growFloats(d.nx, n), growFloats(d.ny, n)
	}
}

func (d *dim3) pack(jacobi bool) {
	n := len(d.m.Coords)
	d.cx, d.cy, d.cz = growFloats(d.cx, n), growFloats(d.cy, n), growFloats(d.cz, n)
	for i, p := range d.m.Coords {
		d.cx[i], d.cy[i], d.cz[i] = p.X, p.Y, p.Z
	}
	if jacobi {
		d.nx, d.ny, d.nz = growFloats(d.nx, n), growFloats(d.ny, n), growFloats(d.nz, n)
	}
}

func (d *dim2) commit() {
	for i := range d.m.Coords {
		d.m.Coords[i] = geom.Point{X: d.cx[i], Y: d.cy[i]}
	}
}

func (d *dim3) commit() {
	for i := range d.m.Coords {
		d.m.Coords[i] = geom.Point3{X: d.cx[i], Y: d.cy[i], Z: d.cz[i]}
	}
}

func (d *dim2) snapshotCoords(soa bool) []float64 {
	out := make([]float64, 2*len(d.m.Coords))
	if soa {
		for i := range d.m.Coords {
			out[2*i], out[2*i+1] = d.cx[i], d.cy[i]
		}
		return out
	}
	for i, p := range d.m.Coords {
		out[2*i], out[2*i+1] = p.X, p.Y
	}
	return out
}

func (d *dim3) snapshotCoords(soa bool) []float64 {
	out := make([]float64, 3*len(d.m.Coords))
	if soa {
		for i := range d.m.Coords {
			out[3*i], out[3*i+1], out[3*i+2] = d.cx[i], d.cy[i], d.cz[i]
		}
		return out
	}
	for i, p := range d.m.Coords {
		out[3*i], out[3*i+1], out[3*i+2] = p.X, p.Y, p.Z
	}
	return out
}

func (d *dim2) restoreCoords(src []float64) {
	for i := range d.m.Coords {
		d.m.Coords[i] = geom.Point{X: src[2*i], Y: src[2*i+1]}
	}
}

func (d *dim3) restoreCoords(src []float64) {
	for i := range d.m.Coords {
		d.m.Coords[i] = geom.Point3{X: src[3*i], Y: src[3*i+1], Z: src[3*i+2]}
	}
}

// configDetail renders the resolved kernel and metric. The built-in
// kernels and metrics are plain value structs, so %#v is deterministic
// across processes — which is what lets a persisted checkpoint resume
// after a restart.
func (d *dim2) configDetail() string { return fmt.Sprintf("kernel=%#v metric=%#v", d.kern, d.met) }
func (d *dim3) configDetail() string { return fmt.Sprintf("kernel=%#v metric=%#v", d.kern, d.met) }

func (d *dim2) ensureNext() {
	if n := len(d.m.Coords); cap(d.next) < n {
		d.next = make([]geom.Point, n)
	} else {
		d.next = d.next[:n]
	}
}

func (d *dim3) ensureNext() {
	if n := len(d.m.Coords); cap(d.next) < n {
		d.next = make([]geom.Point3, n)
	} else {
		d.next = d.next[:n]
	}
}

// measure: SoA runs with the devirtualized metric measure the mirrors
// directly; SoA runs with any other metric first commit the mirrors so the
// interface-dispatch pass sees current coordinates. Either way the value is
// bit-identical to the non-SoA run's measurement.
func (d *dim2) measure(ctx context.Context, qs *quality.Scratch, soa bool, workers int, sched parallel.Scheduler) (float64, error) {
	if soa {
		if _, ok := d.met.(quality.EdgeRatio); ok {
			return qs.GlobalParallelSoA(ctx, d.m, d.cx, d.cy, workers, sched)
		}
		d.commit()
	}
	return qs.GlobalParallel(ctx, d.m, d.met, workers, sched)
}

func (d *dim3) measure(ctx context.Context, qs *quality.Scratch, soa bool, workers int, sched parallel.Scheduler) (float64, error) {
	if soa {
		if _, ok := d.met.(quality.MeanRatio3); ok {
			return qs.TetGlobalParallelSoA(ctx, d.m, d.cx, d.cy, d.cz, workers, sched)
		}
		d.commit()
	}
	return qs.TetGlobalParallel(ctx, d.m, d.met, workers, sched)
}

func (d *dim2) sweepInPlace(tb *trace.Buffer, visit []int32) int64 {
	m, kern := d.m, d.kern
	var accesses int64
	for _, v := range visit {
		traceTouch(tb, 0, m, v)
		m.Coords[v] = kern.Update(m, v)
		accesses += int64(m.Degree(v)) + 1
	}
	return accesses
}

func (d *dim3) sweepInPlace(tb *trace.Buffer, visit []int32) int64 {
	m, kern := d.m, d.kern
	var accesses int64
	for _, v := range visit {
		traceTouch3(tb, 0, m, v)
		m.Coords[v] = kern.Update(m, v)
		accesses += int64(m.Degree(v)) + 1
	}
	return accesses
}

// sweepInPlaceSoA: only the smart kernel is both in-place and SoA-eligible.
func (d *dim2) sweepInPlaceSoA(visit []int32) int64 {
	return sweepInPlaceSmart(d.m.Tris, d.m.TriStart, d.m.TriList, d.m.AdjStart, d.m.AdjList, d.cx, d.cy, visit)
}

func (d *dim3) sweepInPlaceSoA(visit []int32) int64 {
	return sweepInPlaceSmart3(d.m.Tets, d.m.TetStart, d.m.TetList, d.m.AdjStart, d.m.AdjList, d.cx, d.cy, d.cz, visit)
}

// soaBody selects the monomorphic SoA chunk body for one Jacobi sweep of a
// built-in kernel (see fastpath.go); only called when soaEligible approved
// the kernel. The body allocates once per sweep (the closure), as the
// engine always has.
func (d *dim2) soaBody(counts []int64, visit []int32) func(worker int, ch parallel.Chunk) {
	adjStart, adjList := d.m.AdjStart, d.m.AdjList
	cx, cy, nx, ny := d.cx, d.cy, d.nx, d.ny
	switch k := d.kern.(type) {
	case PlainKernel:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkPlain(adjStart, adjList, cx, cy, nx, ny, visit[ch.Lo:ch.Hi])
		}
	case WeightedKernel:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkWeighted(adjStart, adjList, cx, cy, nx, ny, visit[ch.Lo:ch.Hi])
		}
	case ConstrainedKernel:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkConstrained(adjStart, adjList, cx, cy, nx, ny, visit[ch.Lo:ch.Hi], k.MaxDisplacement)
		}
	}
	panic("smooth: soaBody called with non-fast-path kernel")
}

func (d *dim3) soaBody(counts []int64, visit []int32) func(worker int, ch parallel.Chunk) {
	adjStart, adjList := d.m.AdjStart, d.m.AdjList
	cx, cy, cz, nx, ny, nz := d.cx, d.cy, d.cz, d.nx, d.ny, d.nz
	switch k := d.kern.(type) {
	case PlainKernel3:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkPlain3(adjStart, adjList, cx, cy, cz, nx, ny, nz, visit[ch.Lo:ch.Hi])
		}
	case WeightedKernel3:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkWeighted3(adjStart, adjList, cx, cy, cz, nx, ny, nz, visit[ch.Lo:ch.Hi])
		}
	case ConstrainedKernel3:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkConstrained3(adjStart, adjList, cx, cy, cz, nx, ny, nz, visit[ch.Lo:ch.Hi], k.MaxDisplacement)
		}
	}
	panic("smooth: soaBody called with non-fast-path kernel")
}

// genericBody builds the interface-dispatch chunk body for one Jacobi sweep
// — user kernels, traced runs, and the NoFastPath ablation.
func (d *dim2) genericBody(tb *trace.Buffer, counts []int64, visit []int32) func(worker int, ch parallel.Chunk) {
	m, kern, next := d.m, d.kern, d.next
	return func(w int, ch parallel.Chunk) {
		var acc int64
		for _, v := range visit[ch.Lo:ch.Hi] {
			traceTouch(tb, w, m, v)
			next[v] = kern.Update(m, v)
			acc += int64(m.Degree(v)) + 1
		}
		counts[w] += acc
	}
}

func (d *dim3) genericBody(tb *trace.Buffer, counts []int64, visit []int32) func(worker int, ch parallel.Chunk) {
	m, kern, next := d.m, d.kern, d.next
	return func(w int, ch parallel.Chunk) {
		var acc int64
		for _, v := range visit[ch.Lo:ch.Hi] {
			traceTouch3(tb, w, m, v)
			next[v] = kern.Update(m, v)
			acc += int64(m.Degree(v)) + 1
		}
		counts[w] += acc
	}
}

func (d *dim2) commitSoA(visit []int32) {
	cx, cy, nx, ny := d.cx, d.cy, d.nx, d.ny
	for _, v := range visit {
		cx[v], cy[v] = nx[v], ny[v]
	}
}

func (d *dim3) commitSoA(visit []int32) {
	cx, cy, cz, nx, ny, nz := d.cx, d.cy, d.cz, d.nx, d.ny, d.nz
	for _, v := range visit {
		cx[v], cy[v], cz[v] = nx[v], ny[v], nz[v]
	}
}

func (d *dim2) commitNext(visit []int32) {
	for _, v := range visit {
		d.m.Coords[v] = d.next[v]
	}
}

func (d *dim3) commitNext(visit []int32) {
	for _, v := range visit {
		d.m.Coords[v] = d.next[v]
	}
}

func (d *dim2) meshAny() any   { return d.m }
func (d *dim3) meshAny() any   { return d.m }
func (d *dim2) elemCount() int { return d.m.NumTris() }
func (d *dim3) elemCount() int { return d.m.NumTets() }
func (d *dim2) axes() int      { return 2 }
func (d *dim3) axes() int      { return 3 }

func (d *dim2) partitionInput() partition.Input { return partition.FromMesh(d.m) }
func (d *dim3) partitionInput() partition.Input { return partition.FromTetMesh(d.m) }

// buildLocal constructs this dim's mesh as the halo-carrying local mesh of
// one partition of src's mesh, returning the monotone local-to-global
// vertex map.
func (d *dim2) buildLocal(src *dim2, part *partition.Part) ([]int32, error) {
	local, l2g, err := partition.BuildLocal(src.m, part)
	if err != nil {
		return nil, err
	}
	d.m = local
	return l2g, nil
}

func (d *dim3) buildLocal(src *dim3, part *partition.Part) ([]int32, error) {
	local, l2g, err := partition.BuildLocalTet(src.m, part)
	if err != nil {
		return nil, err
	}
	d.m = local
	return l2g, nil
}

// refreshLocal copies the current global coordinates into the local mesh.
func (d *dim2) refreshLocal(src *dim2, l2g []int32) {
	for l, g := range l2g {
		d.m.Coords[l] = src.m.Coords[g]
	}
}

func (d *dim3) refreshLocal(src *dim3, l2g []int32) {
	for l, g := range l2g {
		d.m.Coords[l] = src.m.Coords[g]
	}
}

// adoptKernel copies the driver's resolved kernel into a partition's local
// dim for the run.
func (d *dim2) adoptKernel(src *dim2) { d.kern = src.kern }
func (d *dim3) adoptKernel(src *dim3) { d.kern = src.kern }

// publish copies the partition's owned interior coordinates into their
// global-mesh slots. Partitions own disjoint vertex sets, so concurrent
// publishes never write the same slot.
func (d *dim2) publish(dst *dim2, l2g, visit []int32, soa bool) {
	if soa {
		cx, cy := d.cx, d.cy
		for _, l := range visit {
			dst.m.Coords[l2g[l]] = geom.Point{X: cx[l], Y: cy[l]}
		}
		return
	}
	for _, l := range visit {
		dst.m.Coords[l2g[l]] = d.m.Coords[l]
	}
}

func (d *dim3) publish(dst *dim3, l2g, visit []int32, soa bool) {
	if soa {
		cx, cy, cz := d.cx, d.cy, d.cz
		for _, l := range visit {
			dst.m.Coords[l2g[l]] = geom.Point3{X: cx[l], Y: cy[l], Z: cz[l]}
		}
		return
	}
	for _, l := range visit {
		dst.m.Coords[l2g[l]] = d.m.Coords[l]
	}
}

// gather packs the listed local coordinates into a halo payload buffer
// (axes() floats per vertex); scatter is its inverse over received
// payloads.
func (d *dim2) gather(idx []int32, buf []float64, soa bool) {
	if soa {
		cx, cy := d.cx, d.cy
		for j, l := range idx {
			buf[2*j], buf[2*j+1] = cx[l], cy[l]
		}
		return
	}
	for j, l := range idx {
		p := d.m.Coords[l]
		buf[2*j], buf[2*j+1] = p.X, p.Y
	}
}

func (d *dim3) gather(idx []int32, buf []float64, soa bool) {
	if soa {
		cx, cy, cz := d.cx, d.cy, d.cz
		for j, l := range idx {
			buf[3*j], buf[3*j+1], buf[3*j+2] = cx[l], cy[l], cz[l]
		}
		return
	}
	for j, l := range idx {
		p := d.m.Coords[l]
		buf[3*j], buf[3*j+1], buf[3*j+2] = p.X, p.Y, p.Z
	}
}

func (d *dim2) scatter(idx []int32, buf []float64, soa bool) {
	if soa {
		cx, cy := d.cx, d.cy
		for j, l := range idx {
			cx[l], cy[l] = buf[2*j], buf[2*j+1]
		}
		return
	}
	for j, l := range idx {
		d.m.Coords[l] = geom.Point{X: buf[2*j], Y: buf[2*j+1]}
	}
}

func (d *dim3) scatter(idx []int32, buf []float64, soa bool) {
	if soa {
		cx, cy, cz := d.cx, d.cy, d.cz
		for j, l := range idx {
			cx[l], cy[l], cz[l] = buf[3*j], buf[3*j+1], buf[3*j+2]
		}
		return
	}
	for j, l := range idx {
		d.m.Coords[l] = geom.Point3{X: buf[3*j], Y: buf[3*j+1], Z: buf[3*j+2]}
	}
}

// traceTouch records the access pattern of one vertex update: the smoothed
// vertex, then each of its neighbors.
func traceTouch(tb *trace.Buffer, core int, m *mesh.Mesh, v int32) {
	if tb == nil {
		return
	}
	tb.Access(core, v)
	for _, w := range m.Neighbors(v) {
		tb.Access(core, w)
	}
}

// traceTouch3 is traceTouch over a tetrahedral mesh.
func traceTouch3(tb *trace.Buffer, core int, m *mesh.TetMesh, v int32) {
	if tb == nil {
		return
	}
	tb.Access(core, v)
	for _, w := range m.Neighbors(v) {
		tb.Access(core, w)
	}
}

// growFloats returns a length-n scratch slice reusing buf's storage when it
// fits; contents are unspecified until written.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
