package smooth

import (
	"fmt"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

// This file implements the smoothing variants the paper's conclusion points
// at ("we expect our new reuse-distance-aware algorithm to outperform
// extensions of Laplacian mesh smoothing as well"): smart Laplacian
// smoothing (move only when local quality improves, the Mesquite default),
// length-weighted Laplacian smoothing, and constrained smoothing in the
// spirit of Parthasarathy and Kodiyalam [13] (bounded displacement). They
// share the traversal machinery of Run, so every ordering applies to them
// unchanged.

// Variant selects the vertex update rule.
type Variant int

const (
	// Plain is Eq. (1): the unweighted neighbor average.
	Plain Variant = iota
	// Smart computes the Eq. (1) position but keeps the move only when it
	// does not decrease the vertex's local quality.
	Smart
	// Weighted averages neighbors with inverse-edge-length weights, pulling
	// vertices toward close neighbors more gently.
	Weighted
	// Constrained is Plain with the displacement clamped to
	// MaxDisplacement.
	Constrained
)

func (v Variant) String() string {
	switch v {
	case Smart:
		return "smart"
	case Weighted:
		return "weighted"
	case Constrained:
		return "constrained"
	default:
		return "plain"
	}
}

// VariantOptions configures RunVariant.
type VariantOptions struct {
	// Options embeds the base smoothing options; GaussSeidel and Trace are
	// honored, Workers must be 1 for Smart (its accept test reads updated
	// local state).
	Options
	Variant Variant
	// MaxDisplacement bounds each per-iteration move for Constrained
	// (required > 0 for that variant).
	MaxDisplacement float64
}

// RunVariant smooths the mesh in place with the selected update rule.
func RunVariant(m *mesh.Mesh, opt VariantOptions) (Result, error) {
	base := opt.Options.withDefaults()
	if opt.Variant == Constrained && opt.MaxDisplacement <= 0 {
		return Result{}, fmt.Errorf("smooth: constrained variant requires MaxDisplacement > 0")
	}
	if opt.Variant == Smart && base.Workers != 1 {
		return Result{}, fmt.Errorf("smooth: smart variant is serial (got %d workers)", base.Workers)
	}
	if opt.Variant == Plain {
		return Run(m, opt.Options)
	}

	visit, err := visitSequence(m, base)
	if err != nil {
		return Result{}, err
	}
	res := Result{InitialQuality: quality.Global(m, base.Metric)}
	res.FinalQuality = res.InitialQuality
	prevQ := res.InitialQuality

	next := make([]geom.Point, len(m.Coords))
	for iter := 0; iter < base.MaxIters; iter++ {
		if prevQ >= base.GoalQuality {
			break
		}
		res.Accesses += sweepVariant(m, visit, next, opt, base)
		if base.Trace != nil {
			base.Trace.EndIteration()
		}
		res.Iterations++
		q := quality.Global(m, base.Metric)
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if q-prevQ < base.Tol {
			break
		}
		prevQ = q
	}
	return res, nil
}

// sweepVariant performs one Jacobi-style iteration with the variant's
// update rule, then commits. Smart runs in place (Gauss–Seidel) because its
// accept test must see the candidate position applied.
func sweepVariant(m *mesh.Mesh, visit []int32, next []geom.Point, opt VariantOptions, base Options) int64 {
	var accesses int64
	switch opt.Variant {
	case Weighted, Constrained:
		for _, v := range visit {
			if base.Trace != nil {
				base.Trace.Access(0, v)
			}
			target := variantTarget(m, v, opt, base)
			next[v] = target
			accesses += int64(m.Degree(v)) + 1
		}
		for _, v := range visit {
			m.Coords[v] = next[v]
		}
	case Smart:
		met := base.Metric
		for _, v := range visit {
			if base.Trace != nil {
				base.Trace.Access(0, v)
			}
			before := quality.VertexQuality(m, met, v)
			old := m.Coords[v]
			m.Coords[v] = variantTarget(m, v, opt, base)
			if quality.VertexQuality(m, met, v) < before {
				m.Coords[v] = old // reject the move
			}
			accesses += int64(m.Degree(v)) + 1
		}
	}
	return accesses
}

// variantTarget computes the candidate position for vertex v.
func variantTarget(m *mesh.Mesh, v int32, opt VariantOptions, base Options) geom.Point {
	nbrs := m.Neighbors(v)
	cur := m.Coords[v]
	var sx, sy, wsum float64
	switch opt.Variant {
	case Weighted:
		for _, w := range nbrs {
			if base.Trace != nil {
				base.Trace.Access(0, w)
			}
			p := m.Coords[w]
			d := cur.Dist(p)
			wt := 1.0
			if d > 0 {
				wt = 1 / d
			}
			sx += wt * p.X
			sy += wt * p.Y
			wsum += wt
		}
		if wsum == 0 {
			return cur
		}
		return geom.Point{X: sx / wsum, Y: sy / wsum}
	default: // Smart and Constrained use the plain Eq. (1) target
		for _, w := range nbrs {
			if base.Trace != nil {
				base.Trace.Access(0, w)
			}
			p := m.Coords[w]
			sx += p.X
			sy += p.Y
		}
		n := float64(len(nbrs))
		target := geom.Point{X: sx / n, Y: sy / n}
		if opt.Variant == Constrained {
			d := target.Sub(cur)
			if norm := d.Norm(); norm > opt.MaxDisplacement {
				target = cur.Add(d.Scale(opt.MaxDisplacement / norm))
			}
		}
		return target
	}
}
