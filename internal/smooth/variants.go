package smooth

import (
	"fmt"

	"lams/internal/mesh"
	"lams/internal/quality"
)

// This file maps the smoothing variants the paper's conclusion points at
// ("we expect our new reuse-distance-aware algorithm to outperform
// extensions of Laplacian mesh smoothing as well") onto the unified sweep
// engine: smart Laplacian smoothing (move only when local quality improves,
// the Mesquite default), length-weighted Laplacian smoothing, and
// constrained smoothing in the spirit of Parthasarathy and Kodiyalam [13]
// (bounded displacement). Each variant is just a Kernel, so every ordering
// and traversal applies to them unchanged.

// Variant selects the vertex update rule.
type Variant int

const (
	// Plain is Eq. (1): the unweighted neighbor average.
	Plain Variant = iota
	// Smart computes the Eq. (1) position but keeps the move only when it
	// does not decrease the vertex's local quality.
	Smart
	// Weighted averages neighbors with inverse-edge-length weights, pulling
	// vertices toward close neighbors more gently.
	Weighted
	// Constrained is Plain with the displacement clamped to
	// MaxDisplacement.
	Constrained
)

func (v Variant) String() string {
	switch v {
	case Smart:
		return "smart"
	case Weighted:
		return "weighted"
	case Constrained:
		return "constrained"
	default:
		return "plain"
	}
}

// KernelForVariant returns the sweep kernel implementing the variant. The
// metric parameterizes Smart's accept test (nil means quality.EdgeRatio{});
// maxDisplacement bounds Constrained's per-sweep moves.
func KernelForVariant(v Variant, met quality.Metric, maxDisplacement float64) (Kernel, error) {
	switch v {
	case Plain:
		return PlainKernel{}, nil
	case Smart:
		return SmartKernel{Metric: met}, nil
	case Weighted:
		return WeightedKernel{}, nil
	case Constrained:
		if maxDisplacement <= 0 {
			return nil, fmt.Errorf("smooth: constrained variant requires MaxDisplacement > 0")
		}
		return ConstrainedKernel{MaxDisplacement: maxDisplacement}, nil
	default:
		return nil, fmt.Errorf("smooth: unknown variant %d", int(v))
	}
}

// VariantOptions configures RunVariant.
type VariantOptions struct {
	// Options embeds the base smoothing options; GaussSeidel and Trace are
	// honored. Smart sweeps run serially at any worker count (the accept
	// test reads updated local state); Workers > 1 parallelizes their
	// quality measurements.
	Options
	Variant Variant
	// MaxDisplacement bounds each per-iteration move for Constrained
	// (required > 0 for that variant).
	MaxDisplacement float64
}

// RunVariant smooths the mesh in place with the selected update rule. It is
// a thin wrapper that resolves the variant to its Kernel and runs the
// engine.
func RunVariant(m *mesh.Mesh, opt VariantOptions) (Result, error) {
	base := opt.Options.withDefaults()
	kern, err := KernelForVariant(opt.Variant, base.Metric, opt.MaxDisplacement)
	if err != nil {
		return Result{}, err
	}
	base.Kernel = kern
	return Run(m, base)
}
