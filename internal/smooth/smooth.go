// Package smooth implements the Laplacian Mesh Smoothing application of the
// paper (Algorithm 1): visit the interior vertices, move each to the average
// of its neighbors (Eq. 1), and iterate until the global quality improves by
// less than the convergence criterion (5e-6 in the paper's evaluation) or an
// iteration cap is hit.
//
// The visit order is the quality-greedy traversal §4.2 describes: the
// smoother starts at the worst-quality vertex and repeatedly moves to the
// worst-quality unprocessed neighbor (restarting from the globally worst
// unprocessed vertex when stuck). This traversal is a property of the
// algorithm, independent of how vertices are numbered in memory — which is
// exactly why the RDR ordering works: it lays vertices out in the order
// this traversal touches them. A plain storage-order sweep is available as
// an ablation.
//
// Coordinate updates are Jacobi-style (all moves within an iteration read
// the previous iteration's coordinates). This makes the numerical result —
// and hence the iteration count — independent of the vertex ordering and of
// the number of cores, matching the paper's observation that "the orderings
// did not change the number of iterations needed". A Gauss–Seidel in-place
// variant is provided for the serial ablation study.
//
// The same Jacobi property underwrites the domain-decomposed driver
// (PartitionedSmoother): one engine per halo-carrying partition,
// synchronized by a per-sweep ghost exchange, with convergence decided on
// the global mesh — bit-identical to the single-engine run at any
// partition count.
//
// The paper's argument is dimension-agnostic, and so is the engine: one
// generic convergence loop (engine.go), one kernel set and registry
// (kernel.go), and one partitioned driver (partitioned.go) are instantiated
// at 2D and 3D through the dim2/dim3 value types (dim.go). Run and
// RunPartitioned smooth triangle meshes; RunTet and RunPartitionedTet
// smooth tetrahedral meshes through the very same code.
package smooth

import (
	"context"
	"fmt"

	"lams/internal/faultinject"
	"lams/internal/mesh"
	"lams/internal/quality"
	"lams/internal/trace"
)

// DefaultTol is the paper's quality convergence criterion (§5.1).
const DefaultTol = 0.000005

// Traversal selects the order in which a sweep visits the interior
// vertices.
type Traversal int

const (
	// QualityGreedy is the paper's LMS traversal (§4.2): worst-quality
	// vertex first, then greedily the worst-quality unprocessed neighbor.
	// The walk is computed once from the initial qualities and reused by
	// every iteration (the paper observes the access pattern repeats
	// across iterations, Figure 6).
	QualityGreedy Traversal = iota
	// StorageOrder sweeps the interior vertices in storage order
	// (ablation).
	StorageOrder
)

func (t Traversal) String() string {
	if t == StorageOrder {
		return "storage-order"
	}
	return "quality-greedy"
}

// Options configures a smoothing run in either dimension. The zero value
// means: the dimension's default metric and kernel, tolerance DefaultTol,
// at most 100 iterations, one worker, quality-greedy traversal, Jacobi
// updates, no tracing.
//
// Metric and Kernel configure triangle-mesh (2D) runs; TetMetric and
// TetKernel configure tetrahedral runs. Setting a field from the other
// dimension is rejected, so a run cannot silently ignore half its
// configuration.
type Options struct {
	// Metric is the quality metric for 2D runs (default
	// quality.EdgeRatio{}).
	Metric quality.Metric
	// TetMetric is the quality metric for tetrahedral runs (default
	// quality.MeanRatio3{}).
	TetMetric quality.TetMetric
	// Tol stops the run when an iteration improves global quality by less
	// than this amount (default DefaultTol). A negative Tol disables the
	// criterion so exactly MaxIters iterations run.
	Tol float64
	// GoalQuality stops the run once global quality reaches it (default 1,
	// i.e. effectively "run to convergence").
	GoalQuality float64
	// MaxIters caps the iteration count (default 100).
	MaxIters int
	// Workers is the number of parallel workers; the visit sequence is
	// statically partitioned into contiguous chunks, one per worker — the
	// OpenMP schedule(static) analogue (default 1).
	Workers int
	// Schedule names the registered chunk schedule that distributes the
	// visit sequence across the workers: "static" (default), "guided",
	// "stealing", or any schedule added via parallel.RegisterScheduler.
	// Jacobi updates make the numerical result bit-identical under every
	// schedule; only the worker↔chunk assignment (and with it locality and
	// balance) changes. Ignored by in-place (Gauss-Seidel style) runs,
	// which are serial.
	Schedule string
	// Traversal selects the visit order (default QualityGreedy).
	Traversal Traversal
	// Kernel is the per-vertex update rule for 2D runs (default
	// PlainKernel{}, Eq. 1).
	Kernel Kernel
	// TetKernel is the per-vertex update rule for tetrahedral runs
	// (default PlainKernel3{}).
	TetKernel TetKernel
	// GaussSeidel selects in-place updates for a Jacobi-style kernel. The
	// in-place sweep is serial at any worker count (the update order is the
	// semantics); Workers > 1 parallelizes the quality measurements.
	GaussSeidel bool
	// CheckEvery measures global quality every CheckEvery-th sweep instead
	// of after every sweep (default 1). Quality measurement costs a full
	// pass over the elements; converged workloads that run many cheap
	// sweeps can amortize it. QualityHistory records only the measured
	// iterations, the convergence criterion (Tol) applies to the
	// improvement since the previous measurement, and the final executed
	// sweep is always measured so FinalQuality stays exact. The smoothed
	// coordinates are unaffected: sweeps never read the measurement.
	CheckEvery int
	// Partitions > 1 decomposes the mesh and runs one engine per
	// partition with per-sweep halo exchange (see PartitionedSmoother);
	// Run/RunContext and RunTet/RunTetContext route such options to the
	// partitioned driver. Jacobi updates make the result bit-identical to
	// the single-engine run at any partition count. 0 or 1 selects the
	// single engine. Partitioned runs reject in-place kernels,
	// GaussSeidel, and Trace.
	Partitions int
	// Partitioner names the registered decomposition strategy for
	// Partitions > 1: "bfs" (default) or "bisect", or any strategy added
	// via partition.Register.
	Partitioner string
	// NoFastPath forces the generic interface-dispatch sweep body and the
	// serial interface-dispatch quality pass, disabling the monomorphic
	// kernel/metric loops and the parallel quality reduction. Results are
	// bit-identical either way (the fast-path equivalence suite pins this);
	// the switch exists for that suite and for before/after benchmarks.
	NoFastPath bool
	// Progress, when non-nil, observes the run's convergence live: it is
	// called serially from the converge loop with the initial measurement
	// (iteration 0) and then after every measured sweep — the same points
	// QualityHistory records. It must be fast and must not smooth the mesh
	// reentrantly; long-running services use it to surface job progress.
	Progress func(iteration int, quality float64)
	// Checkpoint, when non-nil, is called serially from the converge loop
	// with a self-contained snapshot of the run after every
	// CheckpointEvery-th measured sweep that did not end the run. A run
	// resumed from any emitted Checkpoint finishes with bit-identical
	// coordinates, Iterations, Accesses, and QualityHistory to the
	// uninterrupted run. The snapshot owns its memory; the callback may
	// persist it asynchronously.
	Checkpoint func(Checkpoint)
	// CheckpointEvery emits a checkpoint every CheckpointEvery-th measured
	// sweep (default 1, i.e. every measurement; see CheckEvery for the
	// measurement cadence itself). CheckpointInterval computes the
	// Young/Daly optimum from measured sweep and checkpoint costs.
	CheckpointEvery int
	// Resume, when non-nil, restarts the run from the given checkpoint
	// instead of from the mesh's current coordinates: the snapshot's
	// coordinates are restored, the iteration/access counters and quality
	// history continue from their checkpointed values, and the initial
	// measurement is skipped. The checkpoint must have been emitted under
	// the same trajectory-affecting configuration (kernel, metric,
	// tolerances, caps, cadence, traversal — fingerprint-enforced);
	// workers, schedule, and partition count may differ freely.
	Resume *Checkpoint
	// Faults, when non-nil, is consulted at named injection points (one
	// per sweep at faultinject.PointEngineSweep, plus the halo-exchange
	// points on partitioned runs) and aborts the run with the injected
	// error when a point fires. Production runs leave it nil and pay one
	// nil check per sweep.
	Faults *faultinject.Set
	// Trace, when non-nil, records every vertex-array access (the smoothed
	// vertex, then each of its neighbors) on the worker's stream. The
	// buffer must have at least Workers cores.
	Trace *trace.Buffer
}

// withDefaults resolves the dimension-independent defaults. The
// dimension-specific defaults (metric, kernel) resolve in dim2/dim3.prepare
// so both dimensions share this one function.
func (o Options) withDefaults() Options {
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.GoalQuality == 0 {
		o.GoalQuality = 1
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 1
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 1
	}
	return o
}

// validate rejects invalid resolved options with the same errors in both
// dimensions; the partitioned driver has its own tracing and partition-count
// rules. Called after withDefaults.
func (o Options) validate(partitioned bool) error {
	if o.Workers < 1 {
		return fmt.Errorf("smooth: workers must be >= 1, got %d", o.Workers)
	}
	if o.CheckEvery < 1 {
		return fmt.Errorf("smooth: check-every must be >= 1, got %d", o.CheckEvery)
	}
	if o.CheckpointEvery < 1 {
		return fmt.Errorf("smooth: checkpoint-every must be >= 1, got %d", o.CheckpointEvery)
	}
	if partitioned {
		if o.Trace != nil {
			return fmt.Errorf("smooth: partitioned runs do not support tracing")
		}
		return nil
	}
	if o.Partitions > 1 {
		return fmt.Errorf("smooth: Smoother is a single engine; partitions=%d needs RunPartitioned or a PartitionedSmoother", o.Partitions)
	}
	if o.Trace != nil && o.Trace.NumCores() < o.Workers {
		return fmt.Errorf("smooth: trace buffer has %d cores, need %d", o.Trace.NumCores(), o.Workers)
	}
	return nil
}

// Result reports a smoothing run.
type Result struct {
	// Iterations is the number of smoothing sweeps executed.
	Iterations int
	// InitialQuality and FinalQuality are the global qualities before and
	// after the run.
	InitialQuality, FinalQuality float64
	// QualityHistory holds the global quality after each iteration.
	QualityHistory []float64
	// Accesses counts vertex-array accesses performed by the sweeps (each
	// smoothed vertex plus each of its neighbors, per iteration).
	Accesses int64
}

// Run smooths the triangle mesh in place with a one-shot engine and returns
// the run statistics. Callers that smooth repeatedly should hold a Smoother
// (or a PartitionedSmoother) and use its Run method, which reuses the
// scratch buffers across runs.
func Run(m *mesh.Mesh, opt Options) (Result, error) {
	return RunContext(context.Background(), m, opt)
}

// RunContext is Run with cancellation: the context is checked between
// iterations and between worker chunks. Options with Partitions > 1 route
// to the multi-engine partitioned driver.
func RunContext(ctx context.Context, m *mesh.Mesh, opt Options) (Result, error) {
	if opt.Partitions > 1 {
		return RunPartitioned(ctx, m, opt)
	}
	return NewSmoother().Run(ctx, m, opt)
}

// RunTet smooths the tetrahedral mesh in place with a one-shot engine; the
// tetrahedral analogue of Run, executing the same generic engine.
func RunTet(m *mesh.TetMesh, opt Options) (Result, error) {
	return RunTetContext(context.Background(), m, opt)
}

// RunTetContext is RunTet with cancellation; see RunContext.
func RunTetContext(ctx context.Context, m *mesh.TetMesh, opt Options) (Result, error) {
	if opt.Partitions > 1 {
		return RunPartitionedTet(ctx, m, opt)
	}
	return NewSmoother().RunTet(ctx, m, opt)
}
