// Package smooth implements the Laplacian Mesh Smoothing application of the
// paper (Algorithm 1): visit the interior vertices, move each to the average
// of its neighbors (Eq. 1), and iterate until the global edge-length-ratio
// quality improves by less than the convergence criterion (5e-6 in the
// paper's evaluation) or an iteration cap is hit.
//
// The visit order is the quality-greedy traversal §4.2 describes: the
// smoother starts at the worst-quality vertex and repeatedly moves to the
// worst-quality unprocessed neighbor (restarting from the globally worst
// unprocessed vertex when stuck). This traversal is a property of the
// algorithm, independent of how vertices are numbered in memory — which is
// exactly why the RDR ordering works: it lays vertices out in the order
// this traversal touches them. A plain storage-order sweep is available as
// an ablation.
//
// Coordinate updates are Jacobi-style (all moves within an iteration read
// the previous iteration's coordinates). This makes the numerical result —
// and hence the iteration count — independent of the vertex ordering and of
// the number of cores, matching the paper's observation that "the orderings
// did not change the number of iterations needed". A Gauss–Seidel in-place
// variant is provided for the serial ablation study.
package smooth

import (
	"fmt"
	"sync"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/quality"
	"lams/internal/trace"
)

// DefaultTol is the paper's quality convergence criterion (§5.1).
const DefaultTol = 0.000005

// Traversal selects the order in which a sweep visits the interior
// vertices.
type Traversal int

const (
	// QualityGreedy is the paper's LMS traversal (§4.2): worst-quality
	// vertex first, then greedily the worst-quality unprocessed neighbor.
	// The walk is computed once from the initial qualities and reused by
	// every iteration (the paper observes the access pattern repeats
	// across iterations, Figure 6).
	QualityGreedy Traversal = iota
	// StorageOrder sweeps the interior vertices in storage order
	// (ablation).
	StorageOrder
)

func (t Traversal) String() string {
	if t == StorageOrder {
		return "storage-order"
	}
	return "quality-greedy"
}

// Options configures a smoothing run. The zero value means: edge-length
// ratio metric, tolerance DefaultTol, at most 100 iterations, one worker,
// quality-greedy traversal, Jacobi updates, no tracing.
type Options struct {
	// Metric is the quality metric (default quality.EdgeRatio{}).
	Metric quality.Metric
	// Tol stops the run when an iteration improves global quality by less
	// than this amount (default DefaultTol). A negative Tol disables the
	// criterion so exactly MaxIters iterations run.
	Tol float64
	// GoalQuality stops the run once global quality reaches it (default 1,
	// i.e. effectively "run to convergence").
	GoalQuality float64
	// MaxIters caps the iteration count (default 100).
	MaxIters int
	// Workers is the number of parallel workers; the visit sequence is
	// statically partitioned into contiguous chunks, one per worker — the
	// OpenMP schedule(static) analogue (default 1).
	Workers int
	// Traversal selects the visit order (default QualityGreedy).
	Traversal Traversal
	// GaussSeidel selects in-place updates. Only valid with Workers == 1.
	GaussSeidel bool
	// Trace, when non-nil, records every vertex-array access (the smoothed
	// vertex, then each of its neighbors) on the worker's stream. The
	// buffer must have at least Workers cores.
	Trace *trace.Buffer
}

func (o Options) withDefaults() Options {
	if o.Metric == nil {
		o.Metric = quality.EdgeRatio{}
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.GoalQuality == 0 {
		o.GoalQuality = 1
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// Result reports a smoothing run.
type Result struct {
	// Iterations is the number of smoothing sweeps executed.
	Iterations int
	// InitialQuality and FinalQuality are the global qualities before and
	// after the run.
	InitialQuality, FinalQuality float64
	// QualityHistory holds the global quality after each iteration.
	QualityHistory []float64
	// Accesses counts vertex-array accesses performed by the sweeps (each
	// smoothed vertex plus each of its neighbors, per iteration).
	Accesses int64
}

// Run smooths the mesh in place and returns the run statistics.
func Run(m *mesh.Mesh, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("smooth: workers must be >= 1, got %d", opt.Workers)
	}
	if opt.GaussSeidel && opt.Workers != 1 {
		return Result{}, fmt.Errorf("smooth: Gauss-Seidel updates require a single worker")
	}
	if opt.Trace != nil && opt.Trace.NumCores() < opt.Workers {
		return Result{}, fmt.Errorf("smooth: trace buffer has %d cores, need %d", opt.Trace.NumCores(), opt.Workers)
	}

	visit, err := visitSequence(m, opt)
	if err != nil {
		return Result{}, err
	}

	res := Result{InitialQuality: quality.Global(m, opt.Metric)}
	res.FinalQuality = res.InitialQuality
	prevQ := res.InitialQuality

	next := make([]geom.Point, len(m.Coords))
	chunks := parallel.SplitChunks(len(visit), opt.Workers)

	for iter := 0; iter < opt.MaxIters; iter++ {
		if prevQ >= opt.GoalQuality {
			break
		}
		if opt.GaussSeidel {
			res.Accesses += sweepGaussSeidel(m, visit, opt.Trace)
		} else {
			res.Accesses += sweepJacobi(m, visit, next, chunks, opt.Trace)
		}
		if opt.Trace != nil {
			opt.Trace.EndIteration()
		}
		res.Iterations++

		q := quality.Global(m, opt.Metric)
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if q-prevQ < opt.Tol {
			prevQ = q
			break
		}
		prevQ = q
	}
	return res, nil
}

// visitSequence returns the interior vertices in the order the sweeps visit
// them.
func visitSequence(m *mesh.Mesh, opt Options) ([]int32, error) {
	if opt.Traversal == StorageOrder {
		return m.InteriorVerts, nil
	}
	vq := quality.VertexQualities(m, opt.Metric)
	w, err := order.GreedyWalk(m, vq, false)
	if err != nil {
		return nil, fmt.Errorf("smooth: computing traversal: %w", err)
	}
	visit := make([]int32, 0, len(m.InteriorVerts))
	for _, v := range w.Heads {
		if !m.IsBoundary[v] {
			visit = append(visit, v)
		}
	}
	if len(visit) != len(m.InteriorVerts) {
		return nil, fmt.Errorf("smooth: traversal visited %d of %d interior vertices", len(visit), len(m.InteriorVerts))
	}
	return visit, nil
}

// sweepJacobi performs one iteration: workers compute the new position of
// every vertex in their chunk of the visit sequence from the current
// coordinates, then the new positions are committed. Returns the number of
// vertex accesses.
func sweepJacobi(m *mesh.Mesh, visit []int32, next []geom.Point, chunks []parallel.Chunk, tb *trace.Buffer) int64 {
	var accesses int64
	if len(chunks) == 1 {
		accesses = jacobiChunk(m, visit, next, chunks[0], 0, tb)
	} else {
		var wg sync.WaitGroup
		counts := make([]int64, len(chunks))
		for w, ch := range chunks {
			wg.Add(1)
			go func(w int, ch parallel.Chunk) {
				defer wg.Done()
				counts[w] = jacobiChunk(m, visit, next, ch, w, tb)
			}(w, ch)
		}
		wg.Wait()
		for _, c := range counts {
			accesses += c
		}
	}
	for _, v := range visit {
		m.Coords[v] = next[v]
	}
	return accesses
}

func jacobiChunk(m *mesh.Mesh, visit []int32, next []geom.Point, ch parallel.Chunk, core int, tb *trace.Buffer) int64 {
	var accesses int64
	if tb == nil {
		for _, v := range visit[ch.Lo:ch.Hi] {
			nbrs := m.Neighbors(v)
			var sx, sy float64
			for _, w := range nbrs {
				p := m.Coords[w]
				sx += p.X
				sy += p.Y
			}
			inv := 1 / float64(len(nbrs))
			next[v] = geom.Point{X: sx * inv, Y: sy * inv}
			accesses += int64(len(nbrs)) + 1
		}
		return accesses
	}
	for _, v := range visit[ch.Lo:ch.Hi] {
		tb.Access(core, v)
		nbrs := m.Neighbors(v)
		var sx, sy float64
		for _, w := range nbrs {
			tb.Access(core, w)
			p := m.Coords[w]
			sx += p.X
			sy += p.Y
		}
		inv := 1 / float64(len(nbrs))
		next[v] = geom.Point{X: sx * inv, Y: sy * inv}
		accesses += int64(len(nbrs)) + 1
	}
	return accesses
}

// sweepGaussSeidel performs one in-place iteration (serial only).
func sweepGaussSeidel(m *mesh.Mesh, visit []int32, tb *trace.Buffer) int64 {
	var accesses int64
	for _, v := range visit {
		if tb != nil {
			tb.Access(0, v)
		}
		nbrs := m.Neighbors(v)
		var sx, sy float64
		for _, w := range nbrs {
			if tb != nil {
				tb.Access(0, w)
			}
			p := m.Coords[w]
			sx += p.X
			sy += p.Y
		}
		inv := 1 / float64(len(nbrs))
		m.Coords[v] = geom.Point{X: sx * inv, Y: sy * inv}
		accesses += int64(len(nbrs)) + 1
	}
	return accesses
}
