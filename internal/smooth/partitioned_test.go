package smooth

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/parallel"
	"lams/internal/partition"
)

// partitionCounts is the partition-count axis of the partitioned
// equivalence harness: the degenerate single partition, small counts, and
// more partitions than the host has cores.
var partitionCounts = []int{1, 2, 3, 8}

func partResultsEqual(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Errorf("%s: iterations = %d, want %d", label, got.Iterations, want.Iterations)
	}
	if got.Accesses != want.Accesses {
		t.Errorf("%s: accesses = %d, want %d", label, got.Accesses, want.Accesses)
	}
	if got.InitialQuality != want.InitialQuality {
		t.Errorf("%s: initial quality = %v, want bit-identical %v", label, got.InitialQuality, want.InitialQuality)
	}
	if got.FinalQuality != want.FinalQuality {
		t.Errorf("%s: final quality = %v, want bit-identical %v", label, got.FinalQuality, want.FinalQuality)
	}
	if len(got.QualityHistory) != len(want.QualityHistory) {
		t.Fatalf("%s: history length %d, want %d", label, len(got.QualityHistory), len(want.QualityHistory))
	}
	for i := range want.QualityHistory {
		if got.QualityHistory[i] != want.QualityHistory[i] {
			t.Errorf("%s: history[%d] = %v, want bit-identical %v", label, i, got.QualityHistory[i], want.QualityHistory[i])
		}
	}
}

// TestPartitionedEquivalence2D is the domain-decomposition equivalence
// harness: for every registered partitioner, partition count, schedule,
// and worker count, a partitioned run must produce bit-identical
// coordinates — and identical Result accounting (accesses, quality
// history) — to the serial single-engine reference. This is the contract
// that makes partitioned smoothing safe to expose at every layer: the
// decomposition changes where a vertex is computed, never what is
// computed.
func TestPartitionedEquivalence2D(t *testing.T) {
	base := genMesh(t, 2000)
	const iters = 4
	ref := base.Clone()
	refRes, err := Run(ref, Options{MaxIters: iters, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, pname := range partition.Names() {
		for _, k := range partitionCounts {
			for _, schedule := range parallel.Schedules() {
				for _, workers := range scheduleWorkerCounts {
					name := fmt.Sprintf("%s/k=%d/%s/workers=%d", pname, k, schedule, workers)
					t.Run(name, func(t *testing.T) {
						got := base.Clone()
						res, err := RunPartitioned(ctx, got, Options{
							MaxIters:    iters,
							Tol:         -1,
							Workers:     workers,
							Schedule:    schedule,
							Partitions:  k,
							Partitioner: pname,
						})
						if err != nil {
							t.Fatal(err)
						}
						coordsEqual(t, name, got, ref)
						partResultsEqual(t, name, res, refRes)
					})
				}
			}
		}
	}
}

func tetCoordsEqual(t *testing.T, label string, got, want *mesh.TetMesh) {
	t.Helper()
	for i := range want.Coords {
		if got.Coords[i] != want.Coords[i] {
			t.Fatalf("%s: vertex %d differs bit-wise: got %v, want %v", label, i, got.Coords[i], want.Coords[i])
		}
	}
}

// TestPartitionedEquivalence3D is the tetrahedral twin of the 2D harness.
func TestPartitionedEquivalence3D(t *testing.T) {
	base := genTetMesh(t, 7)
	const iters = 4
	ref := base.Clone()
	refRes, err := RunTet(ref, Options{MaxIters: iters, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, pname := range partition.Names() {
		for _, k := range partitionCounts {
			for _, schedule := range parallel.Schedules() {
				for _, workers := range scheduleWorkerCounts {
					name := fmt.Sprintf("%s/k=%d/%s/workers=%d", pname, k, schedule, workers)
					t.Run(name, func(t *testing.T) {
						got := base.Clone()
						res, err := RunPartitionedTet(ctx, got, Options{
							MaxIters:    iters,
							Tol:         -1,
							Workers:     workers,
							Schedule:    schedule,
							Partitions:  k,
							Partitioner: pname,
						})
						if err != nil {
							t.Fatal(err)
						}
						tetCoordsEqual(t, name, got, ref)
						partResultsEqual(t, name, res, refRes)
					})
				}
			}
		}
	}
}

// TestPartitionedConvergenceDecisions runs with the real convergence
// machinery live — default Tol, CheckEvery > 1, a reachable GoalQuality —
// so the partitioned driver's loop must make the exact same stop/measure
// decisions as the single engine, not just the same sweeps.
func TestPartitionedConvergenceDecisions(t *testing.T) {
	base := genMesh(t, 1200)
	ctx := context.Background()
	cases := []Options{
		{MaxIters: 40},                            // default Tol stops the run
		{MaxIters: 25, CheckEvery: 3},             // measurement cadence + final-sweep measure
		{MaxIters: 40, GoalQuality: 0.9, Tol: -1}, // goal-quality stop
		{MaxIters: 7, CheckEvery: 4, Tol: -1},     // cap hits off-cadence
		{MaxIters: 30, Kernel: WeightedKernel{}},  // non-default fast-path kernel
		{MaxIters: 30, Kernel: ConstrainedKernel{MaxDisplacement: 0.001}},
	}
	for i, opt := range cases {
		ref := base.Clone()
		refRes, err := Run(ref, opt)
		if err != nil {
			t.Fatal(err)
		}
		popt := opt
		popt.Partitions, popt.Partitioner = 3, partition.Bisect
		popt.Workers, popt.Schedule = 4, parallel.ScheduleGuided
		got := base.Clone()
		res, err := RunPartitioned(ctx, got, popt)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("case %d", i)
		coordsEqual(t, label, got, ref)
		partResultsEqual(t, label, res, refRes)
	}
}

// sumKernel is a user-supplied (non-fast-path) kernel: the partitioned
// generic interface-dispatch path must be bit-identical too.
type sumKernel struct{}

func (sumKernel) Name() string  { return "test-sum" }
func (sumKernel) InPlace() bool { return false }
func (sumKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	return PlainKernel{}.Update(m, v)
}

// TestPartitionedGenericPathEquivalence pins the interface-dispatch sweep
// path (custom kernels and the NoFastPath ablation) to the single-engine
// result.
func TestPartitionedGenericPathEquivalence(t *testing.T) {
	base := genMesh(t, 1000)
	ctx := context.Background()
	for i, opt := range []Options{
		{MaxIters: 3, Tol: -1, Kernel: sumKernel{}},
		{MaxIters: 3, Tol: -1, NoFastPath: true},
	} {
		ref := base.Clone()
		refRes, err := Run(ref, opt)
		if err != nil {
			t.Fatal(err)
		}
		popt := opt
		popt.Partitions, popt.Workers = 4, 3
		got := base.Clone()
		res, err := RunPartitioned(ctx, got, popt)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("case %d", i)
		coordsEqual(t, label, got, ref)
		partResultsEqual(t, label, res, refRes)
	}
}

// TestPartitionedSmootherReuse drives one driver through the lamsd pool's
// access pattern: repeated runs on the same mesh (decomposition cache
// hits), a partitioner switch, then a different mesh (cache miss). Every
// run must match a fresh single-engine run from the same coordinates.
func TestPartitionedSmootherReuse(t *testing.T) {
	ctx := context.Background()
	ps := NewPartitionedSmoother()
	reused := genMesh(t, 1200)
	fresh := reused.Clone()
	steps := []struct {
		k     int
		pname string
	}{{2, "bfs"}, {2, "bfs"}, {3, "bisect"}, {2, "bfs"}}
	for i, step := range steps {
		opt := Options{MaxIters: 2, Tol: -1, Workers: 3, Partitions: step.k, Partitioner: step.pname}
		res, err := ps.Run(ctx, reused, opt)
		if err != nil {
			t.Fatal(err)
		}
		refRes, err := Run(fresh, Options{MaxIters: 2, Tol: -1})
		if err != nil {
			t.Fatal(err)
		}
		coordsEqual(t, fmt.Sprintf("step %d", i), reused, fresh)
		partResultsEqual(t, fmt.Sprintf("step %d", i), res, refRes)
	}
	// Different mesh through the same driver: the cache must rebuild.
	reused2 := genMesh(t, 700)
	fresh2 := reused2.Clone()
	if _, err := ps.Run(ctx, reused2, Options{MaxIters: 2, Tol: -1, Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(fresh2, Options{MaxIters: 2, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, "second mesh", reused2, fresh2)
}

// TestPartitionedRejections pins the configurations the partitioned driver
// must refuse: in-place updates (whose sequential semantics cannot be
// decomposed), tracing, bad counts, unknown partitioners — and the single
// engine refusing partitioned options.
func TestPartitionedRejections(t *testing.T) {
	m := genMesh(t, 300)
	before := m.Clone()
	ctx := context.Background()
	bad := []Options{
		{MaxIters: 1, GaussSeidel: true, Partitions: 2},
		{MaxIters: 1, Kernel: SmartKernel{}, Partitions: 2},
		{MaxIters: 1, Partitions: 2, Partitioner: "metis"},
		{MaxIters: 1, Partitions: -2},
		{MaxIters: 1, Partitions: 100000},
		{MaxIters: 1, Partitions: 2, Workers: -1},
	}
	for i, opt := range bad {
		if _, err := RunPartitioned(ctx, m, opt); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opt)
		}
	}
	if _, err := NewSmoother().Run(ctx, m, Options{MaxIters: 1, Partitions: 2}); err == nil {
		t.Error("single engine accepted partitions > 1")
	}
	coordsEqual(t, "untouched after rejections", m, before)
}

// trippingExchanger cancels the run's context on its n-th Exchange call,
// simulating a cancellation (deadline, client gone) landing mid-exchange.
type trippingExchanger struct {
	inner  partition.Exchanger
	calls  atomic.Int64
	tripAt int64
	cancel context.CancelFunc
}

func (e *trippingExchanger) Exchange(ctx context.Context, part int, out [][]float64) ([][]float64, error) {
	if e.calls.Add(1) == e.tripAt {
		e.cancel()
		return nil, ctx.Err()
	}
	return e.inner.Exchange(ctx, part, out)
}

// TestPartitionedCancellationMidExchange cancels during the halo exchange
// of a mid-run sweep: the run must return context.Canceled and the global
// mesh must hold exactly the last sweep every partition completed — the
// same state a single-engine run stopped after that many iterations
// produces — never a torn mix.
func TestPartitionedCancellationMidExchange(t *testing.T) {
	const k = 3
	base := genMesh(t, 900)
	for _, tripAt := range []int64{1, k + 2} { // first sweep's exchange, and mid second sweep's
		ctx, cancel := context.WithCancel(context.Background())
		got := base.Clone()
		// Prime the decomposition with a run that stops before its first
		// sweep (GoalQuality below any real quality), then wrap the cached
		// exchanger so the next run trips mid-exchange.
		ps := NewPartitionedSmoother()
		prime, err := ps.Run(ctx, got, Options{GoalQuality: -1, Tol: -1, Partitions: k})
		if err != nil {
			t.Fatal(err)
		}
		if prime.Iterations != 0 {
			t.Fatalf("priming run swept %d times", prime.Iterations)
		}
		ps.p2.ex = &trippingExchanger{inner: ps.p2.ex, tripAt: tripAt, cancel: cancel}
		res, err := ps.Run(ctx, got, Options{MaxIters: 6, Tol: -1, Workers: 2, Partitions: k})
		if err != context.Canceled {
			t.Fatalf("tripAt=%d: err = %v, want context.Canceled", tripAt, err)
		}
		wantIters := 1
		if tripAt > k {
			wantIters = 2
		}
		if res.Iterations != wantIters {
			t.Fatalf("tripAt=%d: iterations = %d, want %d", tripAt, res.Iterations, wantIters)
		}
		ref := base.Clone()
		if _, err := Run(ref, Options{MaxIters: res.Iterations, Tol: -1}); err != nil {
			t.Fatal(err)
		}
		coordsEqual(t, fmt.Sprintf("tripAt=%d", tripAt), got, ref)
		cancel()
	}
}

// TestPartitionedCancellationMidSweep cancels from inside a kernel update
// during the first partitioned sweep: no partition may publish, so the
// mesh must be untouched (the exact contract the single engine and every
// schedule already honor).
func TestPartitionedCancellationMidSweep(t *testing.T) {
	m := genMesh(t, 900)
	before := m.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	kern := concurrentCancelKernel{after: 40, calls: new(atomic.Int64), cancel: cancel}
	res, err := RunPartitioned(ctx, m, Options{
		MaxIters: 10, Tol: -1, Workers: 2, Partitions: 3, Kernel: kern,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Errorf("committed %d iterations after a first-sweep cancellation", res.Iterations)
	}
	coordsEqual(t, "no partial publish", m, before)
}
