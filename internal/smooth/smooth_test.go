package smooth

import (
	"math"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/quality"
	"lams/internal/trace"
)

func genMesh(t testing.TB, n int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Generate("carabiner", n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSmoothingImprovesQuality(t *testing.T) {
	m := genMesh(t, 2000)
	res, err := Run(m, Options{MaxIters: 10, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 10 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.FinalQuality <= res.InitialQuality {
		t.Errorf("quality did not improve: %v -> %v", res.InitialQuality, res.FinalQuality)
	}
	if len(res.QualityHistory) != 10 {
		t.Errorf("history length %d", len(res.QualityHistory))
	}
	// Laplacian smoothing is monotone on these meshes in early iterations.
	for i := 1; i < 3; i++ {
		if res.QualityHistory[i] < res.QualityHistory[i-1]-1e-9 {
			t.Errorf("quality regressed at iteration %d", i)
		}
	}
}

func TestConvergenceCriterion(t *testing.T) {
	m := genMesh(t, 2000)
	res, err := Run(m, Options{MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 500 {
		t.Skip("did not converge within cap; criterion untestable here")
	}
	// The final improvement must be below the default criterion.
	h := res.QualityHistory
	if len(h) >= 2 {
		if d := h[len(h)-1] - h[len(h)-2]; d >= DefaultTol {
			t.Errorf("stopped with improvement %v >= tol", d)
		}
	}
}

func TestBoundaryVerticesFixed(t *testing.T) {
	m := genMesh(t, 1500)
	before := make([]geom.Point, len(m.Coords))
	copy(before, m.Coords)
	if _, err := Run(m, Options{MaxIters: 3, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < m.NumVerts(); v++ {
		if m.IsBoundary[v] && m.Coords[v] != before[v] {
			t.Fatalf("boundary vertex %d moved", v)
		}
	}
}

func TestJacobiMatchesEquationOne(t *testing.T) {
	// After one Jacobi iteration every interior vertex sits at the average
	// of its neighbors' *original* positions (Eq. 1).
	m := genMesh(t, 1000)
	before := append([]geom.Point(nil), m.Coords...)
	if _, err := Run(m, Options{MaxIters: 1, Tol: -1}); err != nil {
		t.Fatal(err)
	}
	for _, v := range m.InteriorVerts {
		var sx, sy float64
		nbrs := m.Neighbors(v)
		for _, w := range nbrs {
			sx += before[w].X
			sy += before[w].Y
		}
		want := geom.Point{X: sx / float64(len(nbrs)), Y: sy / float64(len(nbrs))}
		if math.Abs(want.X-m.Coords[v].X) > 1e-12 || math.Abs(want.Y-m.Coords[v].Y) > 1e-12 {
			t.Fatalf("vertex %d at %v, want %v", v, m.Coords[v], want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Jacobi updates make the result bit-identical for any worker count.
	base := genMesh(t, 2000)
	serial := base.Clone()
	resS, err := Run(serial, Options{MaxIters: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par := base.Clone()
		resP, err := Run(par, Options{MaxIters: 5, Tol: -1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if resP.Iterations != resS.Iterations {
			t.Errorf("workers=%d iterations differ", workers)
		}
		for i := range serial.Coords {
			if serial.Coords[i] != par.Coords[i] {
				t.Fatalf("workers=%d vertex %d differs", workers, i)
			}
		}
		if resP.FinalQuality != resS.FinalQuality {
			t.Errorf("workers=%d final quality differs", workers)
		}
	}
}

func TestOrderingIndependentIterations(t *testing.T) {
	// The paper notes the orderings did not change the number of iterations
	// needed; with Jacobi updates this holds exactly, and the final quality
	// is identical too.
	m := genMesh(t, 2000)
	vq := quality.VertexQualities(m, quality.EdgeRatio{})
	resBase, err := Run(m.Clone(), Options{MaxIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BFS", "RDR", "RANDOM"} {
		ord, err := order.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := ord.Compute(m, vq)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := m.Renumber(perm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(rm, Options{MaxIters: 30})
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != resBase.Iterations {
			t.Errorf("%s: %d iterations, want %d", name, res.Iterations, resBase.Iterations)
		}
		if math.Abs(res.FinalQuality-resBase.FinalQuality) > 1e-9 {
			t.Errorf("%s: final quality %v, want %v", name, res.FinalQuality, resBase.FinalQuality)
		}
	}
}

func TestGaussSeidelSerialSweep(t *testing.T) {
	m := genMesh(t, 800)
	res, err := Run(m, Options{GaussSeidel: true, MaxIters: 3, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalQuality <= res.InitialQuality {
		t.Error("Gauss-Seidel did not improve quality")
	}
	// Workers > 1 parallelizes only the measurement passes; the in-place
	// sweep itself stays serial, so the result is identical.
	m2 := genMesh(t, 800)
	res2, err := Run(m2, Options{GaussSeidel: true, MaxIters: 3, Tol: -1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalQuality != res.FinalQuality || res2.Accesses != res.Accesses {
		t.Errorf("parallel-measurement Gauss-Seidel differs: %+v vs %+v", res2, res)
	}
}

func TestTraceAccounting(t *testing.T) {
	m := genMesh(t, 1000)
	tb := trace.NewBuffer(1)
	res, err := Run(m, Options{MaxIters: 2, Tol: -1, Trace: tb})
	if err != nil {
		t.Fatal(err)
	}
	if int64(tb.Total()) != res.Accesses {
		t.Errorf("trace has %d accesses, result says %d", tb.Total(), res.Accesses)
	}
	if tb.Iterations() != 2 {
		t.Errorf("trace iterations = %d", tb.Iterations())
	}
	// Per iteration: every interior vertex once plus its degree.
	var want int64
	for _, v := range m.InteriorVerts {
		want += int64(m.Degree(v)) + 1
	}
	it0, err := tb.IterSlice(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(it0)) != want {
		t.Errorf("first iteration has %d accesses, want %d", len(it0), want)
	}
}

func TestTraceBufferTooSmall(t *testing.T) {
	m := genMesh(t, 500)
	tb := trace.NewBuffer(1)
	if _, err := Run(m, Options{Workers: 2, Trace: tb}); err == nil {
		t.Error("small trace buffer accepted")
	}
}

func TestStorageOrderTraversal(t *testing.T) {
	// The ablation traversal visits interior vertices in storage order:
	// the traced stream's smoothed-vertex subsequence must be increasing.
	m := genMesh(t, 800)
	tb := trace.NewBuffer(1)
	if _, err := Run(m, Options{MaxIters: 1, Tol: -1, Traversal: StorageOrder, Trace: tb}); err != nil {
		t.Fatal(err)
	}
	stream, err := tb.IterSlice(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the visit sequence: the first access of each step is the
	// smoothed vertex, followed by its neighbors.
	i := 0
	prev := int32(-1)
	for i < len(stream) {
		v := stream[i]
		if v <= prev {
			t.Fatalf("storage-order visit sequence not increasing at %d", v)
		}
		prev = v
		i += m.Degree(v) + 1
	}
}

func TestQualityGreedyTraversalStartsWorst(t *testing.T) {
	m := genMesh(t, 800)
	vq := quality.VertexQualities(m, quality.EdgeRatio{})
	worst := m.InteriorVerts[0]
	for _, v := range m.InteriorVerts {
		if vq[v] < vq[worst] {
			worst = v
		}
	}
	tb := trace.NewBuffer(1)
	if _, err := Run(m.Clone(), Options{MaxIters: 1, Tol: -1, Trace: tb}); err != nil {
		t.Fatal(err)
	}
	if got := tb.Core(0)[0]; got != worst {
		t.Errorf("first smoothed vertex %d, want worst-quality %d", got, worst)
	}
}

func TestOptionsValidation(t *testing.T) {
	m := genMesh(t, 500)
	if _, err := Run(m, Options{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
}

func TestGoalQualityStopsEarly(t *testing.T) {
	m := genMesh(t, 800)
	res, err := Run(m, Options{GoalQuality: 0.01, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Errorf("already-met goal should run 0 iterations, ran %d", res.Iterations)
	}
}

func TestTraversalString(t *testing.T) {
	if QualityGreedy.String() != "quality-greedy" || StorageOrder.String() != "storage-order" {
		t.Error("traversal names wrong")
	}
}
