package smooth

import (
	"context"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/quality"
)

// referenceJacobi is a frozen copy of the pre-refactor sweep path
// (visitSequence + sweepJacobi as they existed before the unified engine),
// kept verbatim so the engine's Jacobi results can be checked bit-for-bit
// against the historical behavior.
func referenceJacobi(t *testing.T, m *mesh.Mesh, iters int) {
	t.Helper()
	vq := quality.VertexQualities(m, quality.EdgeRatio{})
	w, err := order.GreedyWalk(m, vq, false)
	if err != nil {
		t.Fatal(err)
	}
	visit := make([]int32, 0, len(m.InteriorVerts))
	for _, v := range w.Heads {
		if !m.IsBoundary[v] {
			visit = append(visit, v)
		}
	}
	next := make([]geom.Point, len(m.Coords))
	for it := 0; it < iters; it++ {
		for _, v := range visit {
			nbrs := m.Neighbors(v)
			var sx, sy float64
			for _, nb := range nbrs {
				p := m.Coords[nb]
				sx += p.X
				sy += p.Y
			}
			inv := 1 / float64(len(nbrs))
			next[v] = geom.Point{X: sx * inv, Y: sy * inv}
		}
		for _, v := range visit {
			m.Coords[v] = next[v]
		}
	}
}

// referenceGaussSeidel is the frozen pre-refactor in-place sweep.
func referenceGaussSeidel(t *testing.T, m *mesh.Mesh, iters int) {
	t.Helper()
	vq := quality.VertexQualities(m, quality.EdgeRatio{})
	w, err := order.GreedyWalk(m, vq, false)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		for _, v := range w.Heads {
			if m.IsBoundary[v] {
				continue
			}
			nbrs := m.Neighbors(v)
			var sx, sy float64
			for _, nb := range nbrs {
				p := m.Coords[nb]
				sx += p.X
				sy += p.Y
			}
			inv := 1 / float64(len(nbrs))
			m.Coords[v] = geom.Point{X: sx * inv, Y: sy * inv}
		}
	}
}

func coordsEqual(t *testing.T, label string, got, want *mesh.Mesh) {
	t.Helper()
	for i := range want.Coords {
		if got.Coords[i] != want.Coords[i] {
			t.Fatalf("%s: vertex %d differs bit-wise: got %v, want %v", label, i, got.Coords[i], want.Coords[i])
		}
	}
}

func TestEngineJacobiBitIdentical(t *testing.T) {
	base := genMesh(t, 2000)
	const iters = 7

	want := base.Clone()
	referenceJacobi(t, want, iters)

	for _, workers := range []int{1, 3, 8} {
		got := base.Clone()
		if _, err := Run(got, Options{MaxIters: iters, Tol: -1, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		coordsEqual(t, "jacobi", got, want)
	}
}

func TestEngineGaussSeidelBitIdentical(t *testing.T) {
	base := genMesh(t, 1500)
	const iters = 4

	want := base.Clone()
	referenceGaussSeidel(t, want, iters)

	got := base.Clone()
	if _, err := Run(got, Options{MaxIters: iters, Tol: -1, GaussSeidel: true}); err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, "gauss-seidel", got, want)
}

func TestEngineKernelOptionMatchesRegistry(t *testing.T) {
	// A registry-resolved kernel and the directly-constructed kernel struct
	// are two spellings of the same engine invocation and must agree
	// exactly.
	base := genMesh(t, 1200)
	direct := map[string]Kernel{
		"smart":       SmartKernel{},
		"weighted":    WeightedKernel{},
		"constrained": ConstrainedKernel{MaxDisplacement: 0.05},
	}
	for name, kern := range direct {
		viaStruct := base.Clone()
		if _, err := Run(viaStruct, Options{MaxIters: 5, Tol: -1, Kernel: kern}); err != nil {
			t.Fatal(err)
		}
		reg, err := KernelByName(name, KernelConfig{MaxDisplacement: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		viaRegistry := base.Clone()
		if _, err := Run(viaRegistry, Options{MaxIters: 5, Tol: -1, Kernel: reg}); err != nil {
			t.Fatal(err)
		}
		coordsEqual(t, name, viaStruct, viaRegistry)
	}
}

func TestEngineContextAlreadyCanceled(t *testing.T) {
	m := genMesh(t, 1000)
	before := append([]geom.Point(nil), m.Coords...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewSmoother().Run(ctx, m, Options{MaxIters: 10, Tol: -1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Errorf("ran %d iterations under a canceled context", res.Iterations)
	}
	for i := range before {
		if m.Coords[i] != before[i] {
			t.Fatalf("vertex %d moved under a canceled context", i)
		}
	}
}

func TestEngineContextCancelMidRun(t *testing.T) {
	m := genMesh(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	// A kernel that cancels the context partway through the first sweep:
	// the run must stop without committing a partial iteration.
	kern := cancelingKernel{inner: PlainKernel{}, after: 50, calls: &calls, cancel: cancel}
	res, err := NewSmoother().Run(ctx, m, Options{MaxIters: 10, Tol: -1, Kernel: kern})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations > 1 {
		t.Errorf("ran %d iterations after cancellation", res.Iterations)
	}
}

type cancelingKernel struct {
	inner  Kernel
	after  int
	calls  *int
	cancel context.CancelFunc
}

func (k cancelingKernel) Name() string  { return "canceling" }
func (k cancelingKernel) InPlace() bool { return false }

func (k cancelingKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	*k.calls++
	if *k.calls == k.after {
		k.cancel()
	}
	return k.inner.Update(m, v)
}

func TestSmootherReuseMatchesFresh(t *testing.T) {
	// Reusing one Smoother across runs must not change results relative to
	// fresh engines.
	base := genMesh(t, 1500)
	s := NewSmoother()
	ctx := context.Background()
	for run := 0; run < 3; run++ {
		reused := base.Clone()
		fresh := base.Clone()
		resR, err := s.Run(ctx, reused, Options{MaxIters: 4, Tol: -1, Workers: 1 + run})
		if err != nil {
			t.Fatal(err)
		}
		resF, err := Run(fresh, Options{MaxIters: 4, Tol: -1, Workers: 1 + run})
		if err != nil {
			t.Fatal(err)
		}
		coordsEqual(t, "reuse", reused, fresh)
		if resR.Accesses != resF.Accesses || resR.FinalQuality != resF.FinalQuality {
			t.Errorf("run %d: reused engine result differs: %+v vs %+v", run, resR, resF)
		}
	}
}

func TestEngineParallelInPlaceKernelSerialSweep(t *testing.T) {
	// An in-place kernel with Workers > 1 runs its sweep serially and
	// parallelizes only the measurement passes — bit-identical to the
	// single-worker run.
	serial := genMesh(t, 500)
	resS, err := Run(serial, Options{Kernel: SmartKernel{}, MaxIters: 3, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	par := genMesh(t, 500)
	resP, err := Run(par, Options{Workers: 2, Kernel: SmartKernel{}, MaxIters: 3, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, "parallel-measurement smart", par, serial)
	if resP.Accesses != resS.Accesses || resP.FinalQuality != resS.FinalQuality {
		t.Errorf("parallel-measurement smart run differs: %+v vs %+v", resP, resS)
	}
}
