package smooth

import (
	"context"
	"fmt"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/quality"
	"lams/internal/trace"
)

// Smoother is the unified sweep engine. It runs the convergence loop of
// Algorithm 1 with any Kernel, any traversal, and any worker count, and it
// owns the per-run scratch buffers (the visit sequence, the Jacobi
// next-coordinate array, the per-worker access counters) so repeated runs
// reuse them instead of reallocating on the hot path.
//
// A Smoother is not safe for concurrent use; each goroutine that smooths
// should own one. The zero value is ready to use.
type Smoother struct {
	visit  []int32
	next   []geom.Point
	counts []int64
	qs     quality.Scratch

	// Structure-of-arrays mirrors of the coordinate and Jacobi scratch
	// buffers (cx[i], cy[i] is vertex i). Fast-path runs pack m.Coords into
	// them at sweep entry and commit back at exit, so the hot loops read
	// and write per-axis float64 slices instead of gathering Point structs;
	// see fastpath.go. Between pack and commit the mirrors are
	// authoritative and m.Coords is stale.
	cx, cy []float64
	nx, ny []float64

	// sched is the resolved chunk scheduler, cached by name so repeated
	// runs with the same Options.Schedule reuse its per-worker scratch.
	sched     parallel.Scheduler
	schedName string
}

// NewSmoother returns an empty engine whose scratch buffers grow on first
// use and are reused by subsequent runs.
func NewSmoother() *Smoother { return &Smoother{} }

// Reset releases the engine's scratch buffers, returning it to its zero
// state. Long-lived holders (engine pools) call it to stop an engine that
// last smoothed an unusually large mesh from pinning that high-water-mark
// memory forever; the next run re-grows the buffers to fit its mesh.
func (s *Smoother) Reset() { *s = Smoother{} }

// Run smooths the mesh in place and returns the run statistics. The context
// cancels between iterations and between worker chunks: on cancellation the
// mesh holds the coordinates of the last completed sweep, the partial
// Result reflects the work done, and ctx.Err() is returned.
func (s *Smoother) Run(ctx context.Context, m *mesh.Mesh, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("smooth: workers must be >= 1, got %d", opt.Workers)
	}
	if opt.CheckEvery < 1 {
		return Result{}, fmt.Errorf("smooth: check-every must be >= 1, got %d", opt.CheckEvery)
	}
	if opt.Partitions > 1 {
		return Result{}, fmt.Errorf("smooth: Smoother is a single engine; partitions=%d needs RunPartitioned or a PartitionedSmoother", opt.Partitions)
	}
	kern := opt.Kernel
	if kern == nil {
		kern = PlainKernel{}
	}
	// In-place (Gauss-Seidel style) sweeps always run serially — the update
	// order is the semantics — but Workers > 1 is still meaningful: the
	// quality measurements parallelize (bit-identically; see
	// quality.GlobalParallel), which is where in-place runs spend much of
	// their time.
	inPlace := opt.GaussSeidel || kern.InPlace()
	if opt.Trace != nil && opt.Trace.NumCores() < opt.Workers {
		return Result{}, fmt.Errorf("smooth: trace buffer has %d cores, need %d", opt.Trace.NumCores(), opt.Workers)
	}

	if err := s.resolveScheduler(opt.Schedule); err != nil {
		return Result{}, err
	}

	// Measurement configuration: the quality passes run on the same workers
	// and scheduler as the sweep (bit-identical to serial by construction;
	// see quality.GlobalParallel). The NoFastPath ablation forces the
	// legacy serial interface-dispatch pass by boxing the metric and
	// dropping the scheduler.
	met := opt.Metric
	qworkers, qsched := opt.Workers, s.sched
	if opt.NoFastPath {
		met = quality.BoxMetric(met)
		qworkers, qsched = 1, nil
	}

	visit, err := s.visitSequence(ctx, m, opt, met, qworkers, qsched)
	if err != nil {
		return Result{}, err
	}

	// Fast-path runs operate on the SoA mirrors: pack the coordinates now
	// and commit whatever state the mirrors hold on every exit, so the
	// documented contract — the mesh holds the coordinates of the last
	// completed sweep — survives cancellation and errors unchanged.
	soa := s.soaEligible(kern, opt)
	var next []geom.Point
	if soa {
		s.packCoords(m, !inPlace)
		defer s.commitCoords(m)
	} else if !inPlace {
		next = s.nextBuffer(len(m.Coords))
	}

	q0, err := s.measure(ctx, m, met, qworkers, qsched, soa)
	if err != nil {
		return Result{}, err
	}
	res := Result{InitialQuality: q0}
	res.FinalQuality = res.InitialQuality
	if opt.Progress != nil {
		opt.Progress(0, q0)
	}
	if opt.MaxIters > 0 {
		res.QualityHistory = make([]float64, 0, opt.MaxIters)
	}
	prevQ := res.InitialQuality

	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if prevQ >= opt.GoalQuality {
			break
		}
		acc, err := s.sweep(ctx, m, kern, inPlace, soa, visit, next, opt)
		res.Accesses += acc
		if err != nil {
			return res, err
		}
		if opt.Trace != nil {
			opt.Trace.EndIteration()
		}
		res.Iterations++
		if res.Iterations%opt.CheckEvery != 0 && iter != opt.MaxIters-1 {
			continue
		}

		q, err := s.measure(ctx, m, met, qworkers, qsched, soa)
		if err != nil {
			return res, err
		}
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if opt.Progress != nil {
			opt.Progress(res.Iterations, q)
		}
		if q-prevQ < opt.Tol {
			break
		}
		prevQ = q
	}
	return res, nil
}

// soaEligible reports whether the run can operate on the SoA coordinate
// mirrors: an untraced, un-ablated run of a built-in kernel whose whole
// sweep has a monomorphic SoA loop in fastpath.go. The smart kernel
// qualifies only with the metric its accept test devirtualizes; the Jacobi
// kernels only without the Gauss-Seidel ablation (whose in-place sweep goes
// through the interface Update).
func (s *Smoother) soaEligible(kern Kernel, opt Options) bool {
	if opt.Trace != nil || opt.NoFastPath {
		return false
	}
	switch k := kern.(type) {
	case PlainKernel, WeightedKernel, ConstrainedKernel:
		return !opt.GaussSeidel
	case SmartKernel:
		_, ok := k.Metric.(quality.EdgeRatio)
		return ok
	}
	return false
}

// packCoords fills the SoA mirrors from m.Coords (and sizes the Jacobi
// next-buffer mirrors when the run needs them). Plain float64 copies, so
// every bit pattern — NaNs, signed zeros — survives the round trip.
func (s *Smoother) packCoords(m *mesh.Mesh, jacobi bool) {
	n := len(m.Coords)
	s.cx, s.cy = growFloats(s.cx, n), growFloats(s.cy, n)
	for i, p := range m.Coords {
		s.cx[i], s.cy[i] = p.X, p.Y
	}
	if jacobi {
		s.nx, s.ny = growFloats(s.nx, n), growFloats(s.ny, n)
	}
}

// commitCoords writes the SoA mirrors back to m.Coords; the inverse of
// packCoords.
func (s *Smoother) commitCoords(m *mesh.Mesh) {
	for i := range m.Coords {
		m.Coords[i] = geom.Point{X: s.cx[i], Y: s.cy[i]}
	}
}

// measure returns the global quality of the current coordinates. SoA runs
// with the devirtualized metric measure the mirrors directly; SoA runs with
// any other metric first commit the mirrors so the interface-dispatch pass
// sees current coordinates. Either way the value is bit-identical to the
// non-SoA run's measurement.
func (s *Smoother) measure(ctx context.Context, m *mesh.Mesh, met quality.Metric, qworkers int, qsched parallel.Scheduler, soa bool) (float64, error) {
	if soa {
		if _, ok := met.(quality.EdgeRatio); ok {
			return s.qs.GlobalParallelSoA(ctx, m, s.cx, s.cy, qworkers, qsched)
		}
		s.commitCoords(m)
	}
	return s.qs.GlobalParallel(ctx, m, met, qworkers, qsched)
}

// sweep performs one iteration with the given kernel. Jacobi-style kernels
// compute into the next buffer across worker chunks — distributed by the
// resolved scheduler — and commit afterwards; in-place kernels apply each
// update immediately (serial). Returns the number of vertex accesses.
func (s *Smoother) sweep(ctx context.Context, m *mesh.Mesh, kern Kernel, inPlace, soa bool, visit []int32, next []geom.Point, opt Options) (int64, error) {
	tb := opt.Trace
	if inPlace {
		if soa {
			// Only the smart kernel is both in-place and SoA-eligible.
			return sweepInPlaceSmart(m.Tris, m.TriStart, m.TriList, m.AdjStart, m.AdjList, s.cx, s.cy, visit), nil
		}
		var accesses int64
		for _, v := range visit {
			traceTouch(tb, 0, m, v)
			m.Coords[v] = kern.Update(m, v)
			accesses += int64(m.Degree(v)) + 1
		}
		return accesses, nil
	}

	// Dynamic schedules hand a worker many chunks, so the per-worker access
	// counts accumulate (each worker id runs on one goroutine per sweep, so
	// no atomics are needed).
	counts := s.countsBuffer(opt.Workers)
	var body func(worker int, ch parallel.Chunk)
	if soa {
		body = s.sweepBodySoA(m, kern, visit, counts)
	} else {
		body = s.sweepBody(m, kern, visit, next, counts, opt)
	}
	err := s.sched.Run(ctx, len(visit), opt.Workers, body)
	var accesses int64
	for _, c := range counts {
		accesses += c
	}
	if err != nil {
		// Canceled mid-sweep: the next buffer may be incomplete, so do not
		// commit it; the mesh (or its SoA mirror) keeps the previous
		// iteration's coordinates.
		return accesses, err
	}
	if soa {
		cx, cy, nx, ny := s.cx, s.cy, s.nx, s.ny
		for _, v := range visit {
			cx[v], cy[v] = nx[v], ny[v]
		}
		return accesses, nil
	}
	for _, v := range visit {
		m.Coords[v] = next[v]
	}
	return accesses, nil
}

// sweepBodySoA selects the monomorphic SoA chunk body for one Jacobi sweep
// of a built-in kernel (see fastpath.go); only called when soaEligible
// approved the kernel. The body allocates once per sweep (the closure), as
// the engine always has.
func (s *Smoother) sweepBodySoA(m *mesh.Mesh, kern Kernel, visit []int32, counts []int64) func(worker int, ch parallel.Chunk) {
	adjStart, adjList := m.AdjStart, m.AdjList
	cx, cy, nx, ny := s.cx, s.cy, s.nx, s.ny
	switch k := kern.(type) {
	case PlainKernel:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkPlain(adjStart, adjList, cx, cy, nx, ny, visit[ch.Lo:ch.Hi])
		}
	case WeightedKernel:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkWeighted(adjStart, adjList, cx, cy, nx, ny, visit[ch.Lo:ch.Hi])
		}
	case ConstrainedKernel:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkConstrained(adjStart, adjList, cx, cy, nx, ny, visit[ch.Lo:ch.Hi], k.MaxDisplacement)
		}
	}
	panic("smooth: sweepBodySoA called with non-fast-path kernel")
}

// sweepBody builds the generic interface-dispatch chunk body for one Jacobi
// sweep — user kernels, traced runs, and the NoFastPath ablation.
func (s *Smoother) sweepBody(m *mesh.Mesh, kern Kernel, visit []int32, next []geom.Point, counts []int64, opt Options) func(worker int, ch parallel.Chunk) {
	tb := opt.Trace
	return func(w int, ch parallel.Chunk) {
		var acc int64
		for _, v := range visit[ch.Lo:ch.Hi] {
			traceTouch(tb, w, m, v)
			next[v] = kern.Update(m, v)
			acc += int64(m.Degree(v)) + 1
		}
		counts[w] += acc
	}
}

// traceTouch records the access pattern of one vertex update: the smoothed
// vertex, then each of its neighbors.
func traceTouch(tb *trace.Buffer, core int, m *mesh.Mesh, v int32) {
	if tb == nil {
		return
	}
	tb.Access(core, v)
	for _, w := range m.Neighbors(v) {
		tb.Access(core, w)
	}
}

// visitSequence returns the interior vertices in the order the sweeps visit
// them, reusing the engine's visit buffer for the quality-greedy traversal.
// The initial vertex qualities driving the greedy walk are computed with
// the same (parallel or serial) quality configuration as the measurements.
func (s *Smoother) visitSequence(ctx context.Context, m *mesh.Mesh, opt Options, met quality.Metric, qworkers int, qsched parallel.Scheduler) ([]int32, error) {
	if opt.Traversal == StorageOrder {
		return m.InteriorVerts, nil
	}
	vq, err := s.qs.VertexQualitiesParallel(ctx, m, met, qworkers, qsched)
	if err != nil {
		return nil, err
	}
	w, err := order.GreedyWalk(m, vq, false)
	if err != nil {
		return nil, fmt.Errorf("smooth: computing traversal: %w", err)
	}
	s.visit = s.visit[:0]
	for _, v := range w.Heads {
		if !m.IsBoundary[v] {
			s.visit = append(s.visit, v)
		}
	}
	if len(s.visit) != len(m.InteriorVerts) {
		return nil, fmt.Errorf("smooth: traversal visited %d of %d interior vertices", len(s.visit), len(m.InteriorVerts))
	}
	return s.visit, nil
}

// resolveScheduler caches the chunk scheduler for the named schedule (""
// means static). Keeping the instance across runs preserves its per-worker
// scratch, which is what makes the dynamic schedules near-zero-alloc in
// steady state.
func (s *Smoother) resolveScheduler(name string) error {
	if name == "" {
		name = parallel.ScheduleStatic
	}
	if s.sched != nil && s.schedName == name {
		return nil
	}
	sched, err := parallel.SchedulerByName(name)
	if err != nil {
		return fmt.Errorf("smooth: %w", err)
	}
	s.sched, s.schedName = sched, name
	return nil
}

// nextBuffer returns a zeroed-or-stale scratch slice of n points; contents
// are fully overwritten before being read.
func (s *Smoother) nextBuffer(n int) []geom.Point {
	if cap(s.next) < n {
		s.next = make([]geom.Point, n)
	}
	s.next = s.next[:n]
	return s.next
}

// growFloats returns a length-n scratch slice reusing buf's storage when it
// fits; contents are unspecified until written.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// countsBuffer returns a zeroed per-worker access-count slice.
func (s *Smoother) countsBuffer(n int) []int64 {
	if cap(s.counts) < n {
		s.counts = make([]int64, n)
	}
	s.counts = s.counts[:n]
	for i := range s.counts {
		s.counts[i] = 0
	}
	return s.counts
}
