package smooth

import (
	"context"
	"fmt"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/quality"
	"lams/internal/trace"
)

// Smoother is the unified sweep engine. It runs the convergence loop of
// Algorithm 1 with any Kernel, any traversal, and any worker count, and it
// owns the per-run scratch buffers (the visit sequence, the Jacobi
// next-coordinate array, the per-worker access counters) so repeated runs
// reuse them instead of reallocating on the hot path.
//
// A Smoother is not safe for concurrent use; each goroutine that smooths
// should own one. The zero value is ready to use.
type Smoother struct {
	visit  []int32
	next   []geom.Point
	counts []int64
	qs     quality.Scratch

	// sched is the resolved chunk scheduler, cached by name so repeated
	// runs with the same Options.Schedule reuse its per-worker scratch.
	sched     parallel.Scheduler
	schedName string
}

// NewSmoother returns an empty engine whose scratch buffers grow on first
// use and are reused by subsequent runs.
func NewSmoother() *Smoother { return &Smoother{} }

// Reset releases the engine's scratch buffers, returning it to its zero
// state. Long-lived holders (engine pools) call it to stop an engine that
// last smoothed an unusually large mesh from pinning that high-water-mark
// memory forever; the next run re-grows the buffers to fit its mesh.
func (s *Smoother) Reset() { *s = Smoother{} }

// Run smooths the mesh in place and returns the run statistics. The context
// cancels between iterations and between worker chunks: on cancellation the
// mesh holds the coordinates of the last completed sweep, the partial
// Result reflects the work done, and ctx.Err() is returned.
func (s *Smoother) Run(ctx context.Context, m *mesh.Mesh, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("smooth: workers must be >= 1, got %d", opt.Workers)
	}
	if opt.CheckEvery < 1 {
		return Result{}, fmt.Errorf("smooth: check-every must be >= 1, got %d", opt.CheckEvery)
	}
	kern := opt.Kernel
	if kern == nil {
		kern = PlainKernel{}
	}
	inPlace := opt.GaussSeidel || kern.InPlace()
	if inPlace && opt.Workers != 1 {
		return Result{}, fmt.Errorf("smooth: in-place (Gauss-Seidel style) updates require a single worker, got %d", opt.Workers)
	}
	if opt.Trace != nil && opt.Trace.NumCores() < opt.Workers {
		return Result{}, fmt.Errorf("smooth: trace buffer has %d cores, need %d", opt.Trace.NumCores(), opt.Workers)
	}

	if err := s.resolveScheduler(opt.Schedule); err != nil {
		return Result{}, err
	}

	// Measurement configuration: the quality passes run on the same workers
	// and scheduler as the sweep (bit-identical to serial by construction;
	// see quality.GlobalParallel). The NoFastPath ablation forces the
	// legacy serial interface-dispatch pass by boxing the metric and
	// dropping the scheduler.
	met := opt.Metric
	qworkers, qsched := opt.Workers, s.sched
	if opt.NoFastPath {
		met = quality.BoxMetric(met)
		qworkers, qsched = 1, nil
	}

	visit, err := s.visitSequence(ctx, m, opt, met, qworkers, qsched)
	if err != nil {
		return Result{}, err
	}
	var next []geom.Point
	if !inPlace {
		next = s.nextBuffer(len(m.Coords))
	}

	q0, err := s.qs.GlobalParallel(ctx, m, met, qworkers, qsched)
	if err != nil {
		return Result{}, err
	}
	res := Result{InitialQuality: q0}
	res.FinalQuality = res.InitialQuality
	if opt.MaxIters > 0 {
		res.QualityHistory = make([]float64, 0, opt.MaxIters)
	}
	prevQ := res.InitialQuality

	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if prevQ >= opt.GoalQuality {
			break
		}
		acc, err := s.sweep(ctx, m, kern, inPlace, visit, next, opt)
		res.Accesses += acc
		if err != nil {
			return res, err
		}
		if opt.Trace != nil {
			opt.Trace.EndIteration()
		}
		res.Iterations++
		if res.Iterations%opt.CheckEvery != 0 && iter != opt.MaxIters-1 {
			continue
		}

		q, err := s.qs.GlobalParallel(ctx, m, met, qworkers, qsched)
		if err != nil {
			return res, err
		}
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if q-prevQ < opt.Tol {
			break
		}
		prevQ = q
	}
	return res, nil
}

// sweep performs one iteration with the given kernel. Jacobi-style kernels
// compute into the next buffer across worker chunks — distributed by the
// resolved scheduler — and commit afterwards; in-place kernels apply each
// update immediately (serial). Returns the number of vertex accesses.
func (s *Smoother) sweep(ctx context.Context, m *mesh.Mesh, kern Kernel, inPlace bool, visit []int32, next []geom.Point, opt Options) (int64, error) {
	tb := opt.Trace
	if inPlace {
		var accesses int64
		for _, v := range visit {
			traceTouch(tb, 0, m, v)
			m.Coords[v] = kern.Update(m, v)
			accesses += int64(m.Degree(v)) + 1
		}
		return accesses, nil
	}

	// Dynamic schedules hand a worker many chunks, so the per-worker access
	// counts accumulate (each worker id runs on one goroutine per sweep, so
	// no atomics are needed).
	counts := s.countsBuffer(opt.Workers)
	err := s.sched.Run(ctx, len(visit), opt.Workers, s.sweepBody(m, kern, visit, next, counts, opt))
	var accesses int64
	for _, c := range counts {
		accesses += c
	}
	if err != nil {
		// Canceled mid-sweep: the next buffer may be incomplete, so do not
		// commit it; the mesh keeps the previous iteration's coordinates.
		return accesses, err
	}
	for _, v := range visit {
		m.Coords[v] = next[v]
	}
	return accesses, nil
}

// sweepBody selects the chunk body for one Jacobi sweep: a monomorphic
// fast-path loop for the built-in kernels (see fastpath.go), or the generic
// interface-dispatch loop for user kernels, traced runs, and the NoFastPath
// ablation. Either way the body allocates once per sweep (the closure), as
// the engine always has.
func (s *Smoother) sweepBody(m *mesh.Mesh, kern Kernel, visit []int32, next []geom.Point, counts []int64, opt Options) func(worker int, ch parallel.Chunk) {
	if opt.Trace == nil && !opt.NoFastPath {
		adjStart, adjList, coords := m.AdjStart, m.AdjList, m.Coords
		switch k := kern.(type) {
		case PlainKernel:
			return func(w int, ch parallel.Chunk) {
				counts[w] += sweepChunkPlain(adjStart, adjList, coords, next, visit[ch.Lo:ch.Hi])
			}
		case WeightedKernel:
			return func(w int, ch parallel.Chunk) {
				counts[w] += sweepChunkWeighted(adjStart, adjList, coords, next, visit[ch.Lo:ch.Hi])
			}
		case ConstrainedKernel:
			return func(w int, ch parallel.Chunk) {
				counts[w] += sweepChunkConstrained(adjStart, adjList, coords, next, visit[ch.Lo:ch.Hi], k.MaxDisplacement)
			}
		}
	}
	tb := opt.Trace
	return func(w int, ch parallel.Chunk) {
		var acc int64
		for _, v := range visit[ch.Lo:ch.Hi] {
			traceTouch(tb, w, m, v)
			next[v] = kern.Update(m, v)
			acc += int64(m.Degree(v)) + 1
		}
		counts[w] += acc
	}
}

// traceTouch records the access pattern of one vertex update: the smoothed
// vertex, then each of its neighbors.
func traceTouch(tb *trace.Buffer, core int, m *mesh.Mesh, v int32) {
	if tb == nil {
		return
	}
	tb.Access(core, v)
	for _, w := range m.Neighbors(v) {
		tb.Access(core, w)
	}
}

// visitSequence returns the interior vertices in the order the sweeps visit
// them, reusing the engine's visit buffer for the quality-greedy traversal.
// The initial vertex qualities driving the greedy walk are computed with
// the same (parallel or serial) quality configuration as the measurements.
func (s *Smoother) visitSequence(ctx context.Context, m *mesh.Mesh, opt Options, met quality.Metric, qworkers int, qsched parallel.Scheduler) ([]int32, error) {
	if opt.Traversal == StorageOrder {
		return m.InteriorVerts, nil
	}
	vq, err := s.qs.VertexQualitiesParallel(ctx, m, met, qworkers, qsched)
	if err != nil {
		return nil, err
	}
	w, err := order.GreedyWalk(m, vq, false)
	if err != nil {
		return nil, fmt.Errorf("smooth: computing traversal: %w", err)
	}
	s.visit = s.visit[:0]
	for _, v := range w.Heads {
		if !m.IsBoundary[v] {
			s.visit = append(s.visit, v)
		}
	}
	if len(s.visit) != len(m.InteriorVerts) {
		return nil, fmt.Errorf("smooth: traversal visited %d of %d interior vertices", len(s.visit), len(m.InteriorVerts))
	}
	return s.visit, nil
}

// resolveScheduler caches the chunk scheduler for the named schedule (""
// means static). Keeping the instance across runs preserves its per-worker
// scratch, which is what makes the dynamic schedules near-zero-alloc in
// steady state.
func (s *Smoother) resolveScheduler(name string) error {
	if name == "" {
		name = parallel.ScheduleStatic
	}
	if s.sched != nil && s.schedName == name {
		return nil
	}
	sched, err := parallel.SchedulerByName(name)
	if err != nil {
		return fmt.Errorf("smooth: %w", err)
	}
	s.sched, s.schedName = sched, name
	return nil
}

// nextBuffer returns a zeroed-or-stale scratch slice of n points; contents
// are fully overwritten before being read.
func (s *Smoother) nextBuffer(n int) []geom.Point {
	if cap(s.next) < n {
		s.next = make([]geom.Point, n)
	}
	s.next = s.next[:n]
	return s.next
}

// countsBuffer returns a zeroed per-worker access-count slice.
func (s *Smoother) countsBuffer(n int) []int64 {
	if cap(s.counts) < n {
		s.counts = make([]int64, n)
	}
	s.counts = s.counts[:n]
	for i := range s.counts {
		s.counts[i] = 0
	}
	return s.counts
}
