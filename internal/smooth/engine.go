package smooth

import (
	"context"
	"fmt"

	"lams/internal/faultinject"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/quality"
)

// engine is the dimension-generic sweep engine. It runs the convergence
// loop of Algorithm 1 with any kernel, any traversal, and any worker count,
// and it owns the per-run scratch buffers (the visit sequence, the
// per-worker access counters, the quality scratch) so repeated runs reuse
// them instead of reallocating on the hot path. Everything
// dimension-specific — coordinates, kernels, metrics, sweep loop bodies —
// lives in the embedded dim value D, reached through the dimOps constraint
// (see dim.go); the compiler stencils one engine per dimension, so the hot
// loops stay monomorphic.
type engine[D any, PD dimOps[D]] struct {
	d      D
	visit  []int32
	counts []int64
	qs     quality.Scratch

	// sched is the resolved chunk scheduler, cached by name so repeated
	// runs with the same Options.Schedule reuse its per-worker scratch.
	sched     parallel.Scheduler
	schedName string
}

// Smoother is the unified sweep engine for both dimensions: Run smooths a
// triangle mesh, RunTet a tetrahedral mesh, through the same generic
// convergence loop instantiated per dimension.
//
// A Smoother is not safe for concurrent use; each goroutine that smooths
// should own one. The zero value is ready to use.
type Smoother struct {
	e2 engine[dim2, *dim2]
	e3 engine[dim3, *dim3]
}

// NewSmoother returns an empty engine whose scratch buffers grow on first
// use and are reused by subsequent runs.
func NewSmoother() *Smoother { return &Smoother{} }

// Reset releases the engine's scratch buffers, returning it to its zero
// state. Long-lived holders (engine pools) call it to stop an engine that
// last smoothed an unusually large mesh from pinning that high-water-mark
// memory forever; the next run re-grows the buffers to fit its mesh.
func (s *Smoother) Reset() { *s = Smoother{} }

// Run smooths the triangle mesh in place and returns the run statistics.
// The context cancels between iterations and between worker chunks: on
// cancellation the mesh holds the coordinates of the last completed sweep,
// the partial Result reflects the work done, and ctx.Err() is returned.
func (s *Smoother) Run(ctx context.Context, m *mesh.Mesh, opt Options) (Result, error) {
	s.e2.d.m = m
	return s.e2.run(ctx, opt)
}

// RunTet is Run over a tetrahedral mesh; same loop, same contracts.
func (s *Smoother) RunTet(ctx context.Context, m *mesh.TetMesh, opt Options) (Result, error) {
	s.e3.d.m = m
	return s.e3.run(ctx, opt)
}

func (e *engine[D, PD]) run(ctx context.Context, opt Options) (Result, error) {
	d := PD(&e.d)
	opt = opt.withDefaults()
	if err := opt.validate(false); err != nil {
		return Result{}, err
	}
	// In-place (Gauss-Seidel style) sweeps always run serially — the update
	// order is the semantics — but Workers > 1 is still meaningful: the
	// quality measurements parallelize (bit-identically; see
	// quality.GlobalParallel), which is where in-place runs spend much of
	// their time.
	inPlace, err := d.prepare(&opt)
	if err != nil {
		return Result{}, err
	}
	// The engine references the mesh, kernel, and metric only for the
	// duration of the run; drop them on exit so pooled engines do not pin
	// retired meshes.
	defer d.release()

	// Checkpoint/resume: the fingerprint ties a checkpoint to the
	// trajectory-affecting configuration; a resume restores the snapshot's
	// coordinates before the mirrors pack and the traversal computes.
	var fp string
	if opt.Checkpoint != nil || opt.Resume != nil {
		fp = configFingerprint[D, PD](d, &opt)
	}
	if opt.Resume != nil {
		if err := opt.Resume.validateResume(fp, d.axes(), d.numVerts()); err != nil {
			return Result{}, err
		}
		d.restoreCoords(opt.Resume.Coords)
	}

	if err := e.resolveScheduler(opt.Schedule); err != nil {
		return Result{}, err
	}

	// Measurement configuration: the quality passes run on the same workers
	// and scheduler as the sweep (bit-identical to serial by construction;
	// see quality.GlobalParallel). The NoFastPath ablation forces the
	// legacy serial interface-dispatch pass by boxing the metric and
	// dropping the scheduler.
	qworkers, qsched := opt.Workers, e.sched
	if opt.NoFastPath {
		d.boxMetric()
		qworkers, qsched = 1, nil
	}

	// A resumed run replays the checkpointed visit order verbatim. For
	// in-place kernels the order is the semantics, so this is what makes
	// the resume exact; for Jacobi kernels it merely skips recomputing a
	// traversal whose order cannot affect the result anyway.
	var visit []int32
	if opt.Resume != nil && len(opt.Resume.Visit) > 0 {
		visit = opt.Resume.Visit
		if len(visit) != len(d.interior()) {
			return Result{}, fmt.Errorf("smooth: resume checkpoint visits %d vertices, mesh has %d interior", len(visit), len(d.interior()))
		}
	} else {
		visit, err = e.visitSequence(ctx, &opt, qworkers, qsched)
		if err != nil {
			return Result{}, err
		}
	}

	// Fast-path runs operate on the SoA mirrors: pack the coordinates now
	// and commit whatever state the mirrors hold on every exit, so the
	// documented contract — the mesh holds the coordinates of the last
	// completed sweep — survives cancellation and errors unchanged.
	soa := d.soaEligible(&opt)
	if soa {
		d.pack(!inPlace)
		defer d.commit()
	} else if !inPlace {
		d.ensureNext()
	}

	var res Result
	var prevQ float64
	startIter := 0
	if cp := opt.Resume; cp != nil {
		// Continue exactly where the checkpoint left off: counters and
		// history carry over, and the initial measurement is skipped — it
		// already happened, before the first sweep of the original run.
		res = Result{Iterations: cp.Iteration, InitialQuality: cp.InitialQuality, Accesses: cp.Accesses}
		res.QualityHistory = append(make([]float64, 0, max(opt.MaxIters, len(cp.QualityHistory))), cp.QualityHistory...)
		prevQ = cp.InitialQuality
		if n := len(cp.QualityHistory); n > 0 {
			prevQ = cp.QualityHistory[n-1]
		}
		res.FinalQuality = prevQ
		startIter = cp.Iteration
		if opt.Progress != nil {
			opt.Progress(cp.Iteration, prevQ)
		}
	} else {
		q0, err := d.measure(ctx, &e.qs, soa, qworkers, qsched)
		if err != nil {
			return Result{}, err
		}
		res = Result{InitialQuality: q0}
		res.FinalQuality = res.InitialQuality
		if opt.Progress != nil {
			opt.Progress(0, q0)
		}
		if opt.MaxIters > 0 {
			res.QualityHistory = make([]float64, 0, opt.MaxIters)
		}
		prevQ = res.InitialQuality
	}

	sinceCkpt := 0
	for iter := startIter; iter < opt.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if prevQ >= opt.GoalQuality {
			break
		}
		if err := opt.Faults.Fire(faultinject.PointEngineSweep); err != nil {
			return res, err
		}
		acc, err := e.sweep(ctx, inPlace, soa, visit, &opt)
		res.Accesses += acc
		if err != nil {
			return res, err
		}
		if opt.Trace != nil {
			opt.Trace.EndIteration()
		}
		res.Iterations++
		if res.Iterations%opt.CheckEvery != 0 && iter != opt.MaxIters-1 {
			continue
		}

		q, err := d.measure(ctx, &e.qs, soa, qworkers, qsched)
		if err != nil {
			return res, err
		}
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if opt.Progress != nil {
			opt.Progress(res.Iterations, q)
		}
		if q-prevQ < opt.Tol {
			break
		}
		prevQ = q

		// Emit only at measured sweeps that did not end the run: prevQ has
		// just been advanced, so the snapshot's last history entry is the
		// exact prevQ a resumed loop reconstructs.
		if opt.Checkpoint != nil {
			if sinceCkpt++; sinceCkpt >= opt.CheckpointEvery {
				sinceCkpt = 0
				opt.Checkpoint(makeCheckpoint[D, PD](d, fp, &res, visit, soa))
			}
		}
	}
	return res, nil
}

// sweep performs one iteration with the resolved kernel. Jacobi-style
// kernels compute into the next buffer across worker chunks — distributed
// by the resolved scheduler — and commit afterwards; in-place kernels apply
// each update immediately (serial). Returns the number of vertex accesses.
func (e *engine[D, PD]) sweep(ctx context.Context, inPlace, soa bool, visit []int32, opt *Options) (int64, error) {
	d := PD(&e.d)
	if inPlace {
		if soa {
			return d.sweepInPlaceSoA(visit), nil
		}
		return d.sweepInPlace(opt.Trace, visit), nil
	}

	// Dynamic schedules hand a worker many chunks, so the per-worker access
	// counts accumulate (each worker id runs on one goroutine per sweep, so
	// no atomics are needed).
	counts := e.countsBuffer(opt.Workers)
	var body func(worker int, ch parallel.Chunk)
	if soa {
		body = d.soaBody(counts, visit)
	} else {
		body = d.genericBody(opt.Trace, counts, visit)
	}
	err := e.sched.Run(ctx, len(visit), opt.Workers, body)
	var accesses int64
	for _, c := range counts {
		accesses += c
	}
	if err != nil {
		// Canceled mid-sweep: the next buffer may be incomplete, so do not
		// commit it; the mesh (or its SoA mirror) keeps the previous
		// iteration's coordinates.
		return accesses, err
	}
	if soa {
		d.commitSoA(visit)
	} else {
		d.commitNext(visit)
	}
	return accesses, nil
}

// visitSequence returns the interior vertices in the order the sweeps visit
// them, reusing the engine's visit buffer for the quality-greedy traversal.
// The initial vertex qualities driving the greedy walk are computed with
// the same (parallel or serial) quality configuration as the measurements.
func (e *engine[D, PD]) visitSequence(ctx context.Context, opt *Options, qworkers int, qsched parallel.Scheduler) ([]int32, error) {
	d := PD(&e.d)
	if opt.Traversal == StorageOrder {
		return d.interior(), nil
	}
	vq, err := d.vertexQualities(ctx, &e.qs, qworkers, qsched)
	if err != nil {
		return nil, err
	}
	w, err := order.GreedyWalk(d.graph(), vq, false)
	if err != nil {
		return nil, fmt.Errorf("smooth: computing traversal: %w", err)
	}
	e.visit = e.visit[:0]
	boundary := d.boundary()
	for _, v := range w.Heads {
		if !boundary[v] {
			e.visit = append(e.visit, v)
		}
	}
	if len(e.visit) != len(d.interior()) {
		return nil, fmt.Errorf("smooth: traversal visited %d of %d interior vertices", len(e.visit), len(d.interior()))
	}
	return e.visit, nil
}

// resolveScheduler caches the chunk scheduler for the named schedule (""
// means static). Keeping the instance across runs preserves its per-worker
// scratch, which is what makes the dynamic schedules near-zero-alloc in
// steady state.
func (e *engine[D, PD]) resolveScheduler(name string) (err error) {
	e.sched, e.schedName, err = resolveScheduler(e.sched, e.schedName, name)
	return err
}

// resolveScheduler implements the by-name scheduler cache shared by the
// single engine and the partitioned driver.
func resolveScheduler(cur parallel.Scheduler, curName, name string) (parallel.Scheduler, string, error) {
	if name == "" {
		name = parallel.ScheduleStatic
	}
	if cur != nil && curName == name {
		return cur, curName, nil
	}
	sched, err := parallel.SchedulerByName(name)
	if err != nil {
		return cur, curName, fmt.Errorf("smooth: %w", err)
	}
	return sched, name, nil
}

// countsBuffer returns a zeroed per-worker access-count slice.
func (e *engine[D, PD]) countsBuffer(n int) []int64 {
	if cap(e.counts) < n {
		e.counts = make([]int64, n)
	}
	e.counts = e.counts[:n]
	for i := range e.counts {
		e.counts[i] = 0
	}
	return e.counts
}
