package smooth

import (
	"context"
	"fmt"
	"math"
	"testing"

	"lams/internal/geom"
	"lams/internal/parallel"
	"lams/internal/quality"
	"lams/internal/trace"
)

// fastPathWorkerCounts is the worker axis of the fast-path equivalence
// suite: serial, the small powers of two, and an oversubscribed 16.
var fastPathWorkerCounts = []int{1, 2, 4, 8, 16}

// resultsEqual pins the full Result accounting two equivalent runs must
// share: iteration count, access count, and bit-identical quality values
// (initial, final, and the whole measured history).
func resultsEqual(t *testing.T, got, want Result) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Errorf("iterations = %d, want %d", got.Iterations, want.Iterations)
	}
	if got.Accesses != want.Accesses {
		t.Errorf("accesses = %d, want %d (some vertex was skipped or double-visited)", got.Accesses, want.Accesses)
	}
	if got.InitialQuality != want.InitialQuality {
		t.Errorf("initial quality = %v, want bit-identical %v", got.InitialQuality, want.InitialQuality)
	}
	if got.FinalQuality != want.FinalQuality {
		t.Errorf("final quality = %v, want bit-identical %v", got.FinalQuality, want.FinalQuality)
	}
	if len(got.QualityHistory) != len(want.QualityHistory) {
		t.Fatalf("history length = %d, want %d", len(got.QualityHistory), len(want.QualityHistory))
	}
	for i := range want.QualityHistory {
		if got.QualityHistory[i] != want.QualityHistory[i] {
			t.Errorf("history[%d] = %v, want bit-identical %v", i, got.QualityHistory[i], want.QualityHistory[i])
		}
	}
}

// TestFastPathEquivalence is the 2D fast-path equivalence suite: for every
// built-in kernel (including the in-place smart kernel), every built-in
// metric, every registered schedule, both traversals, and workers 1–16, the
// monomorphic fast path — the SoA sweep loops and the parallel quality
// reduction — must produce bit-identical coordinates, accesses, and quality
// values to the NoFastPath reference (interface dispatch, serial
// measurement) run serially. This is the invariant that makes the fast
// paths a pure optimization: there is no input on which the two paths can
// be told apart by results.
func TestFastPathEquivalence(t *testing.T) {
	base := genMesh(t, 1600)
	const iters = 3
	kernels := []Kernel{PlainKernel{}, WeightedKernel{}, ConstrainedKernel{MaxDisplacement: 0.05}, SmartKernel{}}
	metrics := []quality.Metric{quality.EdgeRatio{}, quality.MinAngle{}, quality.AspectRatio{}}

	for _, kern := range kernels {
		for _, met := range metrics {
			for _, traversal := range []Traversal{QualityGreedy, StorageOrder} {
				ref := base.Clone()
				refRes, err := Run(ref, Options{
					MaxIters: iters, Tol: -1, Traversal: traversal,
					Kernel: kern, Metric: met, NoFastPath: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, schedule := range parallel.Schedules() {
					for _, workers := range fastPathWorkerCounts {
						name := fmt.Sprintf("%s/%s/%s/%s/workers=%d", kern.Name(), met.Name(), traversal, schedule, workers)
						t.Run(name, func(t *testing.T) {
							got := base.Clone()
							res, err := Run(got, Options{
								MaxIters: iters, Tol: -1, Traversal: traversal,
								Kernel: kern, Metric: met,
								Workers: workers, Schedule: schedule,
							})
							if err != nil {
								t.Fatal(err)
							}
							coordsEqual(t, name, got, ref)
							resultsEqual(t, res, refRes)
						})
					}
				}
			}
		}
	}
}

// TestFastPathEquivalence3 is the 3D twin of TestFastPathEquivalence.
func TestFastPathEquivalence3(t *testing.T) {
	base := genTetMesh(t, 9)
	const iters = 3
	kernels := []TetKernel{PlainKernel3{}, WeightedKernel3{}, ConstrainedKernel3{MaxDisplacement: 0.02}, SmartKernel3{}}
	metrics := []quality.TetMetric{quality.MeanRatio3{}, quality.EdgeRatio3{}}

	for _, kern := range kernels {
		for _, met := range metrics {
			for _, traversal := range []Traversal{QualityGreedy, StorageOrder} {
				ref := base.Clone()
				refRes, err := RunTet(ref, Options{
					MaxIters: iters, Tol: -1, Traversal: traversal,
					TetKernel: kern, TetMetric: met, NoFastPath: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, schedule := range parallel.Schedules() {
					for _, workers := range fastPathWorkerCounts {
						name := fmt.Sprintf("%s/%s/%s/%s/workers=%d", kern.Name(), met.Name(), traversal, schedule, workers)
						t.Run(name, func(t *testing.T) {
							got := base.Clone()
							res, err := RunTet(got, Options{
								MaxIters: iters, Tol: -1, Traversal: traversal,
								TetKernel: kern, TetMetric: met,
								Workers: workers, Schedule: schedule,
							})
							if err != nil {
								t.Fatal(err)
							}
							coords3Equal(t, name, got, ref)
							resultsEqual(t, res, refRes)
						})
					}
				}
			}
		}
	}
}

// TestFastPathTracedRunsMatch pins that a traced run (which always takes
// the generic body so every access lands on the trace) still produces the
// same results as the untraced fast path.
func TestFastPathTracedRunsMatch(t *testing.T) {
	base := genMesh(t, 1200)
	ref := base.Clone()
	refRes, err := Run(ref, Options{MaxIters: 3, Tol: -1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := base.Clone()
	tb := trace.NewBuffer(4)
	res, err := Run(got, Options{MaxIters: 3, Tol: -1, Workers: 4, Trace: tb})
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, "traced vs fast", got, ref)
	resultsEqual(t, res, refRes)
}

// TestSmartKernelMetricHoist pins the withDefaults hoist: an engine run
// with SmartKernel{} (nil metric, resolved once at setup) must match a run
// with the metric spelled out, in both dimensions.
func TestSmartKernelMetricHoist(t *testing.T) {
	base := genMesh(t, 900)
	implicit := base.Clone()
	resI, err := Run(implicit, Options{MaxIters: 4, Tol: -1, Kernel: SmartKernel{}})
	if err != nil {
		t.Fatal(err)
	}
	explicit := base.Clone()
	resE, err := Run(explicit, Options{MaxIters: 4, Tol: -1, Kernel: SmartKernel{Metric: quality.EdgeRatio{}}})
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, "smart hoist", implicit, explicit)
	resultsEqual(t, resI, resE)

	base3 := genTetMesh(t, 6)
	implicit3 := base3.Clone()
	resI3, err := RunTet(implicit3, Options{MaxIters: 4, Tol: -1, TetKernel: SmartKernel3{}})
	if err != nil {
		t.Fatal(err)
	}
	explicit3 := base3.Clone()
	resE3, err := RunTet(explicit3, Options{MaxIters: 4, Tol: -1, TetKernel: SmartKernel3{Metric: quality.MeanRatio3{}}})
	if err != nil {
		t.Fatal(err)
	}
	coords3Equal(t, "smart hoist 3D", implicit3, explicit3)
	resultsEqual(t, resI3, resE3)
}

// TestSmartGenericAcceptMetricEquivalence pins the generic fallback for
// smart kernels with an accept metric the fast path does not devirtualize:
// the run is SoA-ineligible and goes through the interface Update, and its
// parallel-measurement results must still be bit-identical to the NoFastPath
// serial reference.
func TestSmartGenericAcceptMetricEquivalence(t *testing.T) {
	base := genMesh(t, 900)
	ref := base.Clone()
	refRes, err := Run(ref, Options{
		MaxIters: 3, Tol: -1, Kernel: SmartKernel{Metric: quality.MinAngle{}}, NoFastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := base.Clone()
	res, err := Run(got, Options{
		MaxIters: 3, Tol: -1, Kernel: SmartKernel{Metric: quality.MinAngle{}}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordsEqual(t, "smart generic accept metric", got, ref)
	resultsEqual(t, res, refRes)

	base3 := genTetMesh(t, 5)
	ref3 := base3.Clone()
	refRes3, err := RunTet(ref3, Options{
		MaxIters: 3, Tol: -1, TetKernel: SmartKernel3{Metric: quality.EdgeRatio3{}}, NoFastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got3 := base3.Clone()
	res3, err := RunTet(got3, Options{
		MaxIters: 3, Tol: -1, TetKernel: SmartKernel3{Metric: quality.EdgeRatio3{}}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	coords3Equal(t, "smart generic accept metric 3D", got3, ref3)
	resultsEqual(t, res3, refRes3)
}

// soaSpecials is the set of coordinate values whose bit patterns a plain
// float64 copy must preserve: quiet NaNs (including a payload that a
// comparison-based round trip would lose), both signed zeros, both
// infinities, and denormals.
var soaSpecials = []float64{
	math.NaN(),
	math.Float64frombits(0x7FF8_0000_0000_BEEF), // NaN with payload
	math.Copysign(0, -1),
	0,
	math.Inf(1),
	math.Inf(-1),
	math.SmallestNonzeroFloat64,
	-math.SmallestNonzeroFloat64,
	1.5, -2.25,
}

// TestSoAPackCommitRoundTrip is the SoA pack/commit property test: packing
// m.Coords into the engines' per-axis mirrors and committing back must
// reproduce every coordinate bit-for-bit — including NaNs (which compare
// unequal to themselves, so an arithmetic round trip would pass vacuously or
// fail spuriously), NaN payloads, and the sign of zero.
func TestSoAPackCommitRoundTrip(t *testing.T) {
	m := genMesh(t, 300)
	for i := range m.Coords {
		m.Coords[i].X = soaSpecials[i%len(soaSpecials)]
		m.Coords[i].Y = soaSpecials[(i*3+1)%len(soaSpecials)]
	}
	want := append([]geom.Point(nil), m.Coords...)
	d := dim2{m: m}
	d.pack(true)
	for i := range m.Coords {
		m.Coords[i] = geom.Point{} // commit must fully overwrite
	}
	d.commit()
	for i := range m.Coords {
		if math.Float64bits(m.Coords[i].X) != math.Float64bits(want[i].X) ||
			math.Float64bits(m.Coords[i].Y) != math.Float64bits(want[i].Y) {
			t.Fatalf("vertex %d: round trip %v -> %v", i, want[i], m.Coords[i])
		}
	}

	m3 := genTetMesh(t, 4)
	for i := range m3.Coords {
		m3.Coords[i].X = soaSpecials[i%len(soaSpecials)]
		m3.Coords[i].Y = soaSpecials[(i*3+1)%len(soaSpecials)]
		m3.Coords[i].Z = soaSpecials[(i*7+2)%len(soaSpecials)]
	}
	want3 := append([]geom.Point3(nil), m3.Coords...)
	d3 := dim3{m: m3}
	d3.pack(true)
	for i := range m3.Coords {
		m3.Coords[i] = geom.Point3{}
	}
	d3.commit()
	for i := range m3.Coords {
		if math.Float64bits(m3.Coords[i].X) != math.Float64bits(want3[i].X) ||
			math.Float64bits(m3.Coords[i].Y) != math.Float64bits(want3[i].Y) ||
			math.Float64bits(m3.Coords[i].Z) != math.Float64bits(want3[i].Z) {
			t.Fatalf("vertex %d: round trip %v -> %v", i, want3[i], m3.Coords[i])
		}
	}
}

// TestCheckEverySemantics pins the documented CheckEvery contract: the
// smoothed coordinates are untouched (sweeps never read the measurement),
// the history records only the measured iterations, the final sweep is
// always measured, and the final quality is bit-identical to the
// measure-every-sweep run's.
func TestCheckEverySemantics(t *testing.T) {
	base := genMesh(t, 1200)
	const iters = 10
	ref := base.Clone()
	refRes, err := Run(ref, Options{MaxIters: iters, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 7, 10, 25} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			got := base.Clone()
			res, err := Run(got, Options{MaxIters: iters, Tol: -1, CheckEvery: k, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			coordsEqual(t, "check-every", got, ref)
			if res.Iterations != iters {
				t.Errorf("iterations = %d, want %d", res.Iterations, iters)
			}
			// Measured iterations: every k-th sweep plus the final one.
			wantMeasured := iters / k
			if iters%k != 0 {
				wantMeasured++
			}
			if len(res.QualityHistory) != wantMeasured {
				t.Errorf("history length = %d, want %d", len(res.QualityHistory), wantMeasured)
			}
			if res.FinalQuality != refRes.FinalQuality {
				t.Errorf("final quality = %v, want bit-identical %v", res.FinalQuality, refRes.FinalQuality)
			}
			// Each measured value must equal the every-sweep run's value at
			// the same iteration.
			for i, q := range res.QualityHistory {
				iter := (i + 1) * k
				if iter > iters {
					iter = iters
				}
				if q != refRes.QualityHistory[iter-1] {
					t.Errorf("history[%d] = %v, want bit-identical %v (iteration %d)", i, q, refRes.QualityHistory[iter-1], iter)
				}
			}
		})
	}
}

// TestCheckEverySemantics3 spot-checks the 3D engine's CheckEvery wiring.
func TestCheckEverySemantics3(t *testing.T) {
	base := genTetMesh(t, 6)
	const iters = 7
	ref := base.Clone()
	refRes, err := RunTet(ref, Options{MaxIters: iters, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := base.Clone()
	res, err := RunTet(got, Options{MaxIters: iters, Tol: -1, CheckEvery: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	coords3Equal(t, "check-every 3D", got, ref)
	if len(res.QualityHistory) != 3 { // iterations 3, 6, and the final 7th
		t.Errorf("history length = %d, want 3", len(res.QualityHistory))
	}
	if res.FinalQuality != refRes.FinalQuality {
		t.Errorf("final quality = %v, want bit-identical %v", res.FinalQuality, refRes.FinalQuality)
	}
}

// TestCheckEveryConvergenceStops verifies the tolerance still stops a
// CheckEvery run: the criterion applies to the improvement since the
// previous measurement, so a converged mesh stops at the first measured
// iteration instead of running the full cap.
func TestCheckEveryConvergenceStops(t *testing.T) {
	m := genMesh(t, 800)
	// Converge well past the default criterion first: the CheckEvery run's
	// measured improvement spans 4 sweeps, so the per-sweep improvement must
	// be safely below Tol/4 for the first measurement to stop it.
	if _, err := Run(m, Options{MaxIters: 500, Tol: DefaultTol / 16}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, Options{MaxIters: 50, CheckEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 4 {
		t.Errorf("converged mesh ran %d iterations with CheckEvery=4, want <= 4", res.Iterations)
	}
}

// TestCheckEveryRejectsNegative pins the validation in both engines.
func TestCheckEveryRejectsNegative(t *testing.T) {
	if _, err := Run(genMesh(t, 300), Options{CheckEvery: -2}); err == nil {
		t.Error("2D engine accepted negative CheckEvery")
	}
	if _, err := RunTet(genTetMesh(t, 4), Options{CheckEvery: -2}); err == nil {
		t.Error("3D engine accepted negative CheckEvery")
	}
}

// TestConvergeSteadyStateAllocs pins the steady-state allocation budget of
// the full converge loop WITH the parallel quality reduction: after warmup,
// each Run must stay within one request-scoped allocation per sweep (the
// chunk-body closure) plus the quality-history slice — the parallel
// measurement passes themselves (prebuilt bodies, reducer scratch, spawner
// reuse) must add nothing. The bound is deliberately loose enough for
// -race builds.
func TestConvergeSteadyStateAllocs(t *testing.T) {
	base := genMesh(t, 4000)
	ctx := context.Background()
	const iters = 3
	for _, schedule := range parallel.Schedules() {
		t.Run(schedule, func(t *testing.T) {
			m := base.Clone()
			s := NewSmoother()
			opt := Options{MaxIters: iters, Tol: -1, Traversal: StorageOrder, Workers: 8, Schedule: schedule}
			if _, err := s.Run(ctx, m, opt); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := s.Run(ctx, m, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > float64(2*iters+4) {
				t.Errorf("schedule %s: %.0f allocs per steady-state %d-iteration converge loop, want <= %d",
					schedule, allocs, iters, 2*iters+4)
			}
		})
	}
}

// TestSmartConvergeSteadyStateAllocs pins the smart-kernel (SoA in-place)
// steady-state budget in both dimensions: the SoA pack/commit and the
// monomorphic accept-test sweep reuse the engine mirrors, so a warm Run adds
// nothing beyond the history slice and the measurement pass's per-sweep
// closures — the same budget as the Jacobi engines.
func TestSmartConvergeSteadyStateAllocs(t *testing.T) {
	ctx := context.Background()
	const iters = 3
	t.Run("dim=2", func(t *testing.T) {
		m := genMesh(t, 4000)
		s := NewSmoother()
		opt := Options{MaxIters: iters, Tol: -1, Traversal: StorageOrder, Workers: 8, Kernel: SmartKernel{}}
		if _, err := s.Run(ctx, m, opt); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := s.Run(ctx, m, opt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > float64(2*iters+4) {
			t.Errorf("%.0f allocs per steady-state %d-iteration smart converge loop, want <= %d", allocs, iters, 2*iters+4)
		}
	})
	t.Run("dim=3", func(t *testing.T) {
		m := genTetMesh(t, 8)
		s := NewSmoother()
		opt := Options{MaxIters: iters, Tol: -1, Traversal: StorageOrder, Workers: 8, TetKernel: SmartKernel3{}}
		if _, err := s.RunTet(ctx, m, opt); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := s.RunTet(ctx, m, opt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > float64(2*iters+4) {
			t.Errorf("%.0f allocs per steady-state %d-iteration smart converge loop, want <= %d", allocs, iters, 2*iters+4)
		}
	})
}
