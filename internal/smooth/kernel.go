package smooth

import (
	"fmt"
	"strings"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

// KernelOf is the per-vertex update rule of a smoothing sweep, generic over
// the mesh type M and point type P of a dimension. The engine owns
// everything else — traversal, chunking, tracing, Jacobi buffering and the
// convergence loop — so a new smoothing variant is just a new kernel, and a
// new dimension is just a new (M, P) pair.
type KernelOf[M any, P any] interface {
	// Name identifies the kernel in reports.
	Name() string
	// InPlace reports whether the kernel must observe its own writes within
	// a sweep (Gauss–Seidel style). In-place kernels run serially and the
	// engine commits each Update to the mesh immediately; otherwise updates
	// are buffered and committed together after the sweep (Jacobi style).
	InPlace() bool
	// Update computes the new position of vertex v from the mesh's current
	// coordinates. It must only read coordinates at v and v's neighbors
	// (plus, for in-place kernels, write the vertex's own coordinate).
	Update(m M, v int32) P
}

// Kernel is the triangle-mesh kernel interface (the 2D instantiation).
type Kernel = KernelOf[*mesh.Mesh, geom.Point]

// TetKernel is the tetrahedral-mesh kernel interface (the 3D
// instantiation).
type TetKernel = KernelOf[*mesh.TetMesh, geom.Point3]

// KernelConfig parameterizes the built-in kernels when they are resolved by
// name through the registry. Zero values select the defaults.
type KernelConfig struct {
	// Metric is the smart kernel's 2D accept metric (nil means
	// quality.EdgeRatio{}).
	Metric quality.Metric
	// TetMetric is the smart kernel's 3D accept metric (nil means
	// quality.MeanRatio3{}).
	TetMetric quality.TetMetric
	// MaxDisplacement bounds the constrained kernel's per-sweep moves
	// (required > 0 for that kernel, ignored by the others).
	MaxDisplacement float64
}

// kernelSpec is one registry row: a kernel name and its builders for both
// dimensions. Keeping the two builders in one row is what guarantees the
// 2D and 3D vocabularies — and their validation — can never drift apart.
type kernelSpec struct {
	name  string
	build func(cfg KernelConfig) (Kernel, TetKernel, error)
}

// kernelRegistry lists the built-in kernels in their canonical order.
var kernelRegistry = []kernelSpec{
	{"plain", func(KernelConfig) (Kernel, TetKernel, error) {
		return PlainKernel{}, PlainKernel3{}, nil
	}},
	{"smart", func(cfg KernelConfig) (Kernel, TetKernel, error) {
		return SmartKernel{Metric: cfg.Metric}, SmartKernel3{Metric: cfg.TetMetric}, nil
	}},
	{"weighted", func(KernelConfig) (Kernel, TetKernel, error) {
		return WeightedKernel{}, WeightedKernel3{}, nil
	}},
	{"constrained", func(cfg KernelConfig) (Kernel, TetKernel, error) {
		if cfg.MaxDisplacement <= 0 {
			return nil, nil, fmt.Errorf("smooth: constrained kernel requires MaxDisplacement > 0, got %g", cfg.MaxDisplacement)
		}
		return ConstrainedKernel{MaxDisplacement: cfg.MaxDisplacement},
			ConstrainedKernel3{MaxDisplacement: cfg.MaxDisplacement}, nil
	}},
}

// KernelNames returns the registered kernel names in canonical order. The
// same vocabulary is valid for both dimensions.
func KernelNames() []string {
	names := make([]string, len(kernelRegistry))
	for i, spec := range kernelRegistry {
		names[i] = spec.name
	}
	return names
}

func kernelSpecByName(name string) (*kernelSpec, error) {
	for i := range kernelRegistry {
		if kernelRegistry[i].name == name {
			return &kernelRegistry[i], nil
		}
	}
	return nil, fmt.Errorf("smooth: unknown kernel %q: want %s", name, strings.Join(KernelNames(), ", "))
}

// KernelByName resolves a built-in triangle-mesh kernel from its registry
// name and configuration.
func KernelByName(name string, cfg KernelConfig) (Kernel, error) {
	spec, err := kernelSpecByName(name)
	if err != nil {
		return nil, err
	}
	k, _, err := spec.build(cfg)
	return k, err
}

// TetKernelByName resolves a built-in tetrahedral-mesh kernel from its
// registry name and configuration.
func TetKernelByName(name string, cfg KernelConfig) (TetKernel, error) {
	spec, err := kernelSpecByName(name)
	if err != nil {
		return nil, err
	}
	_, k, err := spec.build(cfg)
	return k, err
}

// KernelsByName resolves both dimensions' kernels from one registry row in
// a single call — one lookup and one validation pass, so a caller serving
// both mesh kinds cannot resolve them inconsistently.
func KernelsByName(name string, cfg KernelConfig) (Kernel, TetKernel, error) {
	spec, err := kernelSpecByName(name)
	if err != nil {
		return nil, nil, err
	}
	return spec.build(cfg)
}

// PlainKernel is Eq. (1): move the vertex to the unweighted average of its
// neighbors. This is the paper's Laplacian smoothing update.
type PlainKernel struct{}

// Name implements Kernel.
func (PlainKernel) Name() string { return "plain" }

// InPlace implements Kernel.
func (PlainKernel) InPlace() bool { return false }

// Update implements Kernel.
func (PlainKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	nbrs := m.Neighbors(v)
	var sx, sy float64
	for _, w := range nbrs {
		p := m.Coords[w]
		sx += p.X
		sy += p.Y
	}
	inv := 1 / float64(len(nbrs))
	return geom.Point{X: sx * inv, Y: sy * inv}
}

// PlainKernel3 is Eq. (1) in 3D: move the vertex to the unweighted average
// of its neighbors.
type PlainKernel3 struct{}

// Name implements TetKernel.
func (PlainKernel3) Name() string { return "plain" }

// InPlace implements TetKernel.
func (PlainKernel3) InPlace() bool { return false }

// Update implements TetKernel.
func (PlainKernel3) Update(m *mesh.TetMesh, v int32) geom.Point3 {
	nbrs := m.Neighbors(v)
	var sx, sy, sz float64
	for _, w := range nbrs {
		p := m.Coords[w]
		sx += p.X
		sy += p.Y
		sz += p.Z
	}
	inv := 1 / float64(len(nbrs))
	return geom.Point3{X: sx * inv, Y: sy * inv, Z: sz * inv}
}

// plainDivTarget is the Eq. (1) target in the division form the smoothing
// variants have always used. It is numerically equivalent to — but not
// bit-identical with — PlainKernel's multiply-by-reciprocal form, so the
// variants keep it to preserve their exact historical results.
func plainDivTarget(m *mesh.Mesh, v int32) geom.Point {
	nbrs := m.Neighbors(v)
	var sx, sy float64
	for _, w := range nbrs {
		p := m.Coords[w]
		sx += p.X
		sy += p.Y
	}
	n := float64(len(nbrs))
	return geom.Point{X: sx / n, Y: sy / n}
}

// plainDivTarget3 is the Eq. (1) target in division form, mirroring the 2D
// variants' historical arithmetic (numerically equivalent to, but not
// bit-identical with, PlainKernel3's multiply-by-reciprocal form).
func plainDivTarget3(m *mesh.TetMesh, v int32) geom.Point3 {
	nbrs := m.Neighbors(v)
	var sx, sy, sz float64
	for _, w := range nbrs {
		p := m.Coords[w]
		sx += p.X
		sy += p.Y
		sz += p.Z
	}
	n := float64(len(nbrs))
	return geom.Point3{X: sx / n, Y: sy / n, Z: sz / n}
}

// SmartKernel computes the Eq. (1) position but keeps the move only when it
// does not decrease the vertex's local quality (the Mesquite default). Its
// accept test must see the candidate applied, so it runs in place (serial).
type SmartKernel struct {
	// Metric is the local quality metric (default quality.EdgeRatio{}).
	Metric quality.Metric
}

// Name implements Kernel.
func (SmartKernel) Name() string { return "smart" }

// InPlace implements Kernel.
func (SmartKernel) InPlace() bool { return true }

// Update implements Kernel. The engine resolves a nil Metric to the default
// once per run (dim2.prepare), so on the engine path the fallback below
// never branches; it remains for direct callers of Update.
func (k SmartKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	met := k.Metric
	if met == nil {
		met = quality.EdgeRatio{}
	}
	before := quality.VertexQuality(m, met, v)
	old := m.Coords[v]
	m.Coords[v] = plainDivTarget(m, v)
	if quality.VertexQuality(m, met, v) < before {
		m.Coords[v] = old // reject the move
	}
	return m.Coords[v]
}

// SmartKernel3 computes the Eq. (1) position but keeps the move only when it
// does not decrease the vertex's local quality. Its accept test must see the
// candidate applied, so it runs in place (serial).
type SmartKernel3 struct {
	// Metric is the local quality metric (default quality.MeanRatio3{}).
	Metric quality.TetMetric
}

// Name implements TetKernel.
func (SmartKernel3) Name() string { return "smart" }

// InPlace implements TetKernel.
func (SmartKernel3) InPlace() bool { return true }

// Update implements TetKernel. The engine resolves a nil Metric to the
// default once per run (dim3.prepare), so on the engine path the fallback
// below never branches; it remains for direct callers of Update.
func (k SmartKernel3) Update(m *mesh.TetMesh, v int32) geom.Point3 {
	met := k.Metric
	if met == nil {
		met = quality.MeanRatio3{}
	}
	before := quality.TetVertexQuality(m, met, v)
	old := m.Coords[v]
	m.Coords[v] = plainDivTarget3(m, v)
	if quality.TetVertexQuality(m, met, v) < before {
		m.Coords[v] = old // reject the move
	}
	return m.Coords[v]
}

// WeightedKernel averages neighbors with inverse-edge-length weights,
// pulling vertices toward close neighbors more gently.
type WeightedKernel struct{}

// Name implements Kernel.
func (WeightedKernel) Name() string { return "weighted" }

// InPlace implements Kernel.
func (WeightedKernel) InPlace() bool { return false }

// Update implements Kernel.
func (WeightedKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	cur := m.Coords[v]
	var sx, sy, wsum float64
	for _, w := range m.Neighbors(v) {
		p := m.Coords[w]
		d := cur.Dist(p)
		wt := 1.0
		if d > 0 {
			wt = 1 / d
		}
		sx += wt * p.X
		sy += wt * p.Y
		wsum += wt
	}
	if wsum == 0 {
		return cur
	}
	return geom.Point{X: sx / wsum, Y: sy / wsum}
}

// WeightedKernel3 averages neighbors with inverse-edge-length weights,
// pulling vertices toward close neighbors more gently.
type WeightedKernel3 struct{}

// Name implements TetKernel.
func (WeightedKernel3) Name() string { return "weighted" }

// InPlace implements TetKernel.
func (WeightedKernel3) InPlace() bool { return false }

// Update implements TetKernel.
func (WeightedKernel3) Update(m *mesh.TetMesh, v int32) geom.Point3 {
	cur := m.Coords[v]
	var sx, sy, sz, wsum float64
	for _, w := range m.Neighbors(v) {
		p := m.Coords[w]
		d := cur.Dist(p)
		wt := 1.0
		if d > 0 {
			wt = 1 / d
		}
		sx += wt * p.X
		sy += wt * p.Y
		sz += wt * p.Z
		wsum += wt
	}
	if wsum == 0 {
		return cur
	}
	return geom.Point3{X: sx / wsum, Y: sy / wsum, Z: sz / wsum}
}

// ConstrainedKernel is the plain update with the per-sweep displacement
// clamped to MaxDisplacement, in the spirit of Parthasarathy and
// Kodiyalam's constrained smoothing.
type ConstrainedKernel struct {
	// MaxDisplacement bounds each per-sweep move (must be > 0).
	MaxDisplacement float64
}

// Name implements Kernel.
func (ConstrainedKernel) Name() string { return "constrained" }

// InPlace implements Kernel.
func (ConstrainedKernel) InPlace() bool { return false }

// Update implements Kernel.
func (k ConstrainedKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	cur := m.Coords[v]
	target := plainDivTarget(m, v)
	d := target.Sub(cur)
	if norm := d.Norm(); norm > k.MaxDisplacement {
		target = cur.Add(d.Scale(k.MaxDisplacement / norm))
	}
	return target
}

// ConstrainedKernel3 is the plain update with the per-sweep displacement
// clamped to MaxDisplacement.
type ConstrainedKernel3 struct {
	// MaxDisplacement bounds each per-sweep move (must be > 0).
	MaxDisplacement float64
}

// Name implements TetKernel.
func (ConstrainedKernel3) Name() string { return "constrained" }

// InPlace implements TetKernel.
func (ConstrainedKernel3) InPlace() bool { return false }

// Update implements TetKernel.
func (k ConstrainedKernel3) Update(m *mesh.TetMesh, v int32) geom.Point3 {
	cur := m.Coords[v]
	target := plainDivTarget3(m, v)
	d := target.Sub(cur)
	if norm := d.Norm(); norm > k.MaxDisplacement {
		target = cur.Add(d.Scale(k.MaxDisplacement / norm))
	}
	return target
}
