package smooth

import (
	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

// Kernel is the per-vertex update rule of a smoothing sweep. The engine owns
// everything else — traversal, chunking, tracing, Jacobi buffering and the
// convergence loop — so a new smoothing variant is just a new Kernel.
type Kernel interface {
	// Name identifies the kernel in reports.
	Name() string
	// InPlace reports whether the kernel must observe its own writes within
	// a sweep (Gauss–Seidel style). In-place kernels run serially and the
	// engine commits each Update to m.Coords immediately; otherwise updates
	// are buffered and committed together after the sweep (Jacobi style).
	InPlace() bool
	// Update computes the new position of vertex v from the mesh's current
	// coordinates. It must only read m.Coords at v and v's neighbors (plus,
	// for in-place kernels, write m.Coords[v]).
	Update(m *mesh.Mesh, v int32) geom.Point
}

// PlainKernel is Eq. (1): move the vertex to the unweighted average of its
// neighbors. This is the paper's Laplacian smoothing update.
type PlainKernel struct{}

// Name implements Kernel.
func (PlainKernel) Name() string { return "plain" }

// InPlace implements Kernel.
func (PlainKernel) InPlace() bool { return false }

// Update implements Kernel.
func (PlainKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	nbrs := m.Neighbors(v)
	var sx, sy float64
	for _, w := range nbrs {
		p := m.Coords[w]
		sx += p.X
		sy += p.Y
	}
	inv := 1 / float64(len(nbrs))
	return geom.Point{X: sx * inv, Y: sy * inv}
}

// plainDivTarget is the Eq. (1) target in the division form the smoothing
// variants have always used. It is numerically equivalent to — but not
// bit-identical with — PlainKernel's multiply-by-reciprocal form, so the
// variants keep it to preserve their exact historical results.
func plainDivTarget(m *mesh.Mesh, v int32) geom.Point {
	nbrs := m.Neighbors(v)
	var sx, sy float64
	for _, w := range nbrs {
		p := m.Coords[w]
		sx += p.X
		sy += p.Y
	}
	n := float64(len(nbrs))
	return geom.Point{X: sx / n, Y: sy / n}
}

// SmartKernel computes the Eq. (1) position but keeps the move only when it
// does not decrease the vertex's local quality (the Mesquite default). Its
// accept test must see the candidate applied, so it runs in place (serial).
type SmartKernel struct {
	// Metric is the local quality metric (default quality.EdgeRatio{}).
	Metric quality.Metric
}

// Name implements Kernel.
func (SmartKernel) Name() string { return "smart" }

// InPlace implements Kernel.
func (SmartKernel) InPlace() bool { return true }

// Update implements Kernel. The engine resolves a nil Metric to the default
// once per run (Options.withDefaults), so on the engine path the fallback
// below never branches; it remains for direct callers of Update.
func (k SmartKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	met := k.Metric
	if met == nil {
		met = quality.EdgeRatio{}
	}
	before := quality.VertexQuality(m, met, v)
	old := m.Coords[v]
	m.Coords[v] = plainDivTarget(m, v)
	if quality.VertexQuality(m, met, v) < before {
		m.Coords[v] = old // reject the move
	}
	return m.Coords[v]
}

// WeightedKernel averages neighbors with inverse-edge-length weights,
// pulling vertices toward close neighbors more gently.
type WeightedKernel struct{}

// Name implements Kernel.
func (WeightedKernel) Name() string { return "weighted" }

// InPlace implements Kernel.
func (WeightedKernel) InPlace() bool { return false }

// Update implements Kernel.
func (WeightedKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	cur := m.Coords[v]
	var sx, sy, wsum float64
	for _, w := range m.Neighbors(v) {
		p := m.Coords[w]
		d := cur.Dist(p)
		wt := 1.0
		if d > 0 {
			wt = 1 / d
		}
		sx += wt * p.X
		sy += wt * p.Y
		wsum += wt
	}
	if wsum == 0 {
		return cur
	}
	return geom.Point{X: sx / wsum, Y: sy / wsum}
}

// ConstrainedKernel is the plain update with the per-sweep displacement
// clamped to MaxDisplacement, in the spirit of Parthasarathy and
// Kodiyalam's constrained smoothing.
type ConstrainedKernel struct {
	// MaxDisplacement bounds each per-sweep move (must be > 0).
	MaxDisplacement float64
}

// Name implements Kernel.
func (ConstrainedKernel) Name() string { return "constrained" }

// InPlace implements Kernel.
func (ConstrainedKernel) InPlace() bool { return false }

// Update implements Kernel.
func (k ConstrainedKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	cur := m.Coords[v]
	target := plainDivTarget(m, v)
	d := target.Sub(cur)
	if norm := d.Norm(); norm > k.MaxDisplacement {
		target = cur.Add(d.Scale(k.MaxDisplacement / norm))
	}
	return target
}
