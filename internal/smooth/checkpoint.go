package smooth

import (
	"fmt"
	"math"
	"time"
)

// Checkpoint is a self-contained snapshot of a smoothing run, emitted by
// Options.Checkpoint after a measured sweep and accepted by Options.Resume.
// It captures everything the convergence loop needs to continue — the
// coordinates, the iteration and access counters, the full quality history,
// and the visit order — so a run restarted from a Checkpoint produces
// coordinates, Iterations, Accesses, and QualityHistory bit-identical to
// the uninterrupted run.
//
// The snapshot is independent of the engine that emitted it: all slices are
// fresh copies (safe to retain or persist asynchronously), and the Config
// fingerprint covers only the trajectory-affecting configuration —
// dimension, kernel, metric, tolerances, iteration caps, measurement
// cadence, traversal — deliberately excluding workers, schedule, and
// partition count, which Jacobi updates make irrelevant to the result. A
// run checkpointed on one engine can therefore resume on a different
// worker count, schedule, or partitioning (including single-engine ↔
// partitioned) without breaking bit-identity.
//
// Checkpoints serialize cleanly through encoding/json: Go's float64
// round-trips exactly, so a persisted-and-reloaded Checkpoint preserves
// bit-identity too.
type Checkpoint struct {
	// Config fingerprints the trajectory-affecting options; Resume rejects
	// a checkpoint whose fingerprint does not match the resuming run.
	Config string `json:"config"`
	// Dim is the spatial dimension (2 or 3).
	Dim int `json:"dim"`
	// Iteration is the number of completed sweeps at the snapshot.
	Iteration int `json:"iteration"`
	// Accesses is the cumulative vertex-access count at the snapshot.
	Accesses int64 `json:"accesses"`
	// InitialQuality is the global quality measured before the first sweep.
	InitialQuality float64 `json:"initial_quality"`
	// QualityHistory holds the measured global qualities so far.
	QualityHistory []float64 `json:"quality_history"`
	// Visit is the traversal order the run used (local to the emitting
	// single engine). In-place (Gauss-Seidel style) resumes replay it
	// verbatim — the update order is the semantics; Jacobi resumes may
	// recompute it, since their results are visit-order-independent.
	// Partitioned checkpoints leave it empty.
	Visit []int32 `json:"visit,omitempty"`
	// Coords is the axis-interleaved coordinate snapshot of every vertex
	// (x,y[,z] per vertex) after Iteration sweeps.
	Coords []float64 `json:"coords"`
}

// validateResume rejects a checkpoint that cannot continue the resuming
// run: a different configuration fingerprint, dimension, or mesh size.
func (cp *Checkpoint) validateResume(fp string, dim, nverts int) error {
	if cp.Config != fp {
		return fmt.Errorf("smooth: resume checkpoint was captured under a different configuration:\n  checkpoint: %s\n  run:        %s", cp.Config, fp)
	}
	if cp.Dim != dim {
		return fmt.Errorf("smooth: resume checkpoint is %dD, run is %dD", cp.Dim, dim)
	}
	if len(cp.Coords) != dim*nverts {
		return fmt.Errorf("smooth: resume checkpoint has %d coordinates, mesh needs %d", len(cp.Coords), dim*nverts)
	}
	if cp.Iteration < 0 || cp.Accesses < 0 {
		return fmt.Errorf("smooth: resume checkpoint has negative counters (iteration %d, accesses %d)", cp.Iteration, cp.Accesses)
	}
	if len(cp.QualityHistory) > cp.Iteration {
		return fmt.Errorf("smooth: resume checkpoint has %d measurements for %d sweeps", len(cp.QualityHistory), cp.Iteration)
	}
	return nil
}

// configFingerprint renders the trajectory-affecting half of the resolved
// options. Workers, schedule, partitions, tracing, and the fast-path
// ablation are excluded on purpose: the engine guarantees bit-identical
// results across all of them, so a checkpoint may resume under any.
func configFingerprint[D any, PD dimOps[D]](d PD, opt *Options) string {
	return fmt.Sprintf("v1 dim=%d verts=%d %s tol=%g goal=%g maxiters=%d checkevery=%d traversal=%s gs=%t",
		d.axes(), d.numVerts(), d.configDetail(),
		opt.Tol, opt.GoalQuality, opt.MaxIters, opt.CheckEvery, opt.Traversal, opt.GaussSeidel)
}

// makeCheckpoint snapshots the run at its current state; every slice is a
// fresh copy, so the callback may hand the value to another goroutine or
// serialize it after the run moves on.
func makeCheckpoint[D any, PD dimOps[D]](d PD, fp string, res *Result, visit []int32, soa bool) Checkpoint {
	cp := Checkpoint{
		Config:         fp,
		Dim:            d.axes(),
		Iteration:      res.Iterations,
		Accesses:       res.Accesses,
		InitialQuality: res.InitialQuality,
		QualityHistory: append([]float64(nil), res.QualityHistory...),
		Coords:         d.snapshotCoords(soa),
	}
	if len(visit) > 0 {
		cp.Visit = append([]int32(nil), visit...)
	}
	return cp
}

// CheckpointInterval returns the Young/Daly optimal checkpoint period,
// τ_opt ≈ sqrt(2·C·MTBF), expressed as a whole number of sweeps (at least
// 1). C is the measured cost of taking one checkpoint, sweepCost the
// measured cost of one smoothing sweep, and mtbf the expected mean time
// between failures of the platform. Callers feed the result to
// Options.CheckpointEvery, replacing a guessed cadence with the
// first-order optimum from the HPC checkpoint-period literature.
func CheckpointInterval(sweepCost, checkpointCost, mtbf time.Duration) int {
	if sweepCost <= 0 || checkpointCost <= 0 || mtbf <= 0 {
		return 1
	}
	tau := math.Sqrt(2 * float64(checkpointCost) * float64(mtbf))
	n := int(math.Round(tau / float64(sweepCost)))
	if n < 1 {
		return 1
	}
	return n
}
