package smooth

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lams/internal/faultinject"
	"lams/internal/mesh"
	"lams/internal/parallel"
	"lams/internal/partition"
	"lams/internal/quality"
)

// partDriver runs the convergence loop across k cooperating engines: the
// mesh is decomposed into k partitions (see internal/partition), each
// partition is smoothed by its own engine on its own goroutine — with its
// own SoA mirrors, scratch, and scheduler — and the engines barrier after
// every Jacobi sweep to exchange halo (ghost) coordinates and publish their
// owned vertices back to the global mesh, where the driver measures quality
// with the same fixed-block ordered reduction the single engine uses. Like
// engine, it is generic over the dimension; PartitionedSmoother is the
// two-dimension facade.
//
// Because Jacobi updates read only the previous sweep's coordinates, and
// each partition's local mesh preserves the global neighbor order (see
// partition.BuildLocal), the run is bit-identical — coordinates, access
// counts, quality history — to the single-engine run at every partition
// count × partitioner × worker count × schedule; the partitioned
// equivalence harness enforces this. In-place updates (the Gauss-Seidel
// ablation and the smart kernel) are inherently sequential across the
// whole mesh and are rejected.
//
// The decomposition (layout, local meshes, exchange wiring) is computed on
// first use and reused while the same mesh is smoothed with the same
// partition configuration — the reorder-once/amortize-many argument one
// level up.
type partDriver[D any, PD dimOps[D]] struct {
	qs        quality.Scratch
	sched     parallel.Scheduler
	schedName string

	// d is the global-mesh dim: the facade stores the run's mesh in it,
	// and prepare resolves the run's kernel and metric into it.
	d D

	// Cached decomposition, valid while (mesh identity, k, partitioner)
	// are unchanged. The mesh pointer plus vertex/element counts identify
	// the topology: smoothing moves coordinates but never edits elements,
	// and any layout of the current topology yields identical results, so
	// coordinate drift cannot invalidate the cache.
	cached any
	nv, ne int
	k      int
	pname  string
	layout *partition.Layout
	parts  []*partUnit[D, PD]
	ex     partition.Exchanger
}

// partUnit is one partition's worker state: its engine (whose dim holds
// the halo-carrying local mesh), index maps, and exchange scratch.
type partUnit[D any, PD dimOps[D]] struct {
	index int
	eng   engine[D, PD]
	l2g   []int32   // local -> global vertex map (monotone)
	visit []int32   // local ids of owned, globally interior vertices
	sIdx  [][]int32 // per send link: local ids of Link.Verts
	rIdx  [][]int32 // per recv link: local ids of Link.Verts
	sBuf  [][]float64

	// Per-run state.
	soa bool
	acc int64
	err error
}

// PartitionedSmoother is the unified multi-engine driver for both
// dimensions: Run decomposes and smooths a triangle mesh, RunTet a
// tetrahedral mesh, each dimension caching its own decomposition. A
// PartitionedSmoother is not safe for concurrent use; the zero value is
// ready to use.
type PartitionedSmoother struct {
	p2 partDriver[dim2, *dim2]
	p3 partDriver[dim3, *dim3]

	// layout is the decomposition built by the most recent run (either
	// dimension); reporting callers (lamsbench) read its Stats.
	layout *partition.Layout
}

// NewPartitionedSmoother returns an empty multi-engine driver whose
// decomposition and scratch grow on first use.
func NewPartitionedSmoother() *PartitionedSmoother { return &PartitionedSmoother{} }

// Reset releases the cached decompositions and scratch; see Smoother.Reset.
func (ps *PartitionedSmoother) Reset() { *ps = PartitionedSmoother{} }

// CachedMesh returns the triangle mesh whose decomposition the driver
// currently caches, or nil. Long-lived holders (engine pools) use it to
// drop decompositions of meshes that no longer exist.
func (ps *PartitionedSmoother) CachedMesh() *mesh.Mesh {
	m, _ := ps.p2.cached.(*mesh.Mesh)
	return m
}

// CachedTetMesh is CachedMesh for the tetrahedral decomposition.
func (ps *PartitionedSmoother) CachedTetMesh() *mesh.TetMesh {
	m, _ := ps.p3.cached.(*mesh.TetMesh)
	return m
}

// Layout returns the decomposition of the most recent run, or nil before
// the first run.
func (ps *PartitionedSmoother) Layout() *partition.Layout { return ps.layout }

// Run smooths the triangle mesh in place across the partitions and returns
// the run statistics. The cancellation contract matches the single
// engine's: on ctx cancellation — mid-sweep or mid-exchange — the global
// mesh holds the coordinates of the last sweep every partition completed.
func (ps *PartitionedSmoother) Run(ctx context.Context, m *mesh.Mesh, opt Options) (Result, error) {
	ps.p2.d.m = m
	res, err := ps.p2.run(ctx, opt)
	if ps.p2.layout != nil {
		ps.layout = ps.p2.layout
	}
	return res, err
}

// RunTet is Run over a tetrahedral mesh; same driver, same contracts.
func (ps *PartitionedSmoother) RunTet(ctx context.Context, m *mesh.TetMesh, opt Options) (Result, error) {
	ps.p3.d.m = m
	res, err := ps.p3.run(ctx, opt)
	if ps.p3.layout != nil {
		ps.layout = ps.p3.layout
	}
	return res, err
}

// RunPartitioned smooths the triangle mesh with opt.Partitions cooperating
// engines using a one-shot driver. Callers that smooth repeatedly should
// hold a PartitionedSmoother, which caches the decomposition across runs.
func RunPartitioned(ctx context.Context, m *mesh.Mesh, opt Options) (Result, error) {
	return NewPartitionedSmoother().Run(ctx, m, opt)
}

// RunPartitionedTet is RunPartitioned over a tetrahedral mesh.
func RunPartitionedTet(ctx context.Context, m *mesh.TetMesh, opt Options) (Result, error) {
	return NewPartitionedSmoother().RunTet(ctx, m, opt)
}

func (ps *partDriver[D, PD]) run(ctx context.Context, opt Options) (Result, error) {
	d := PD(&ps.d)
	opt = opt.withDefaults()
	if err := opt.validate(true); err != nil {
		return Result{}, err
	}
	k := opt.Partitions
	if k == 0 {
		k = 1
	}
	if k < 1 {
		return Result{}, fmt.Errorf("smooth: partitions must be >= 1, got %d", opt.Partitions)
	}
	inPlace, err := d.prepare(&opt)
	if err != nil {
		return Result{}, err
	}
	if inPlace {
		return Result{}, fmt.Errorf("smooth: partitioned runs require Jacobi updates; kernel %q updates in place", d.kernelName())
	}

	// Checkpoint/resume: the fingerprint excludes the partition
	// configuration, so a checkpoint from a single-engine run resumes
	// here (and vice versa) bit-identically — Jacobi updates make the
	// decomposition irrelevant to the result. The restore runs before the
	// per-partition refresh below, so the locals start from the
	// checkpointed coordinates.
	var fp string
	if opt.Checkpoint != nil || opt.Resume != nil {
		fp = configFingerprint[D, PD](d, &opt)
	}
	if opt.Resume != nil {
		if err := opt.Resume.validateResume(fp, d.axes(), d.numVerts()); err != nil {
			return Result{}, err
		}
		d.restoreCoords(opt.Resume.Coords)
	}

	if err := ps.resolveScheduler(opt.Schedule); err != nil {
		return Result{}, err
	}
	if err := ps.setup(k, opt.Partitioner); err != nil {
		return Result{}, err
	}

	// Measurement configuration, exactly as the single engine sets it up:
	// the global quality passes run over the global mesh with the fixed
	// 1024-element reduction blocking, so the measured values are
	// bit-identical at any worker count and schedule.
	qworkers, qsched := opt.Workers, ps.sched
	if opt.NoFastPath {
		d.boxMetric()
		qworkers, qsched = 1, nil
	}

	// Per-run engine preparation: refresh local coordinates from the
	// global mesh, resolve each engine's scheduler, adopt the driver's
	// resolved kernel, and pack the SoA mirrors (or size the generic
	// Jacobi buffer).
	soa := !opt.NoFastPath && d.jacobiSoA()
	for _, pu := range ps.parts {
		ld := PD(&pu.eng.d)
		ld.refreshLocal(&ps.d, pu.l2g)
		if err := pu.eng.resolveScheduler(opt.Schedule); err != nil {
			return Result{}, err
		}
		ld.adoptKernel(&ps.d)
		pu.soa = soa
		if soa {
			ld.pack(true)
		} else {
			ld.ensureNext()
		}
	}
	if ce, ok := ps.ex.(*partition.ChanExchanger); ok {
		ce.Reset()
		ce.Faults = opt.Faults
	}

	var res Result
	var prevQ float64
	startIter := 0
	if cp := opt.Resume; cp != nil {
		// Continue from the checkpoint; see the single engine's resume —
		// counters and history carry over, the initial measurement is
		// skipped. The checkpointed visit order (if any) is ignored:
		// partitioned sweeps derive their per-partition visit lists from
		// the decomposition, and Jacobi results are order-independent.
		res = Result{Iterations: cp.Iteration, InitialQuality: cp.InitialQuality, Accesses: cp.Accesses}
		res.QualityHistory = append(make([]float64, 0, max(opt.MaxIters, len(cp.QualityHistory))), cp.QualityHistory...)
		prevQ = cp.InitialQuality
		if n := len(cp.QualityHistory); n > 0 {
			prevQ = cp.QualityHistory[n-1]
		}
		res.FinalQuality = prevQ
		startIter = cp.Iteration
		if opt.Progress != nil {
			opt.Progress(cp.Iteration, prevQ)
		}
	} else {
		q0, err := d.measure(ctx, &ps.qs, false, qworkers, qsched)
		if err != nil {
			return Result{}, err
		}
		res = Result{InitialQuality: q0}
		res.FinalQuality = res.InitialQuality
		if opt.Progress != nil {
			opt.Progress(0, q0)
		}
		if opt.MaxIters > 0 {
			res.QualityHistory = make([]float64, 0, opt.MaxIters)
		}
		prevQ = res.InitialQuality
	}

	sinceCkpt := 0
	for iter := startIter; iter < opt.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if prevQ >= opt.GoalQuality {
			break
		}
		if err := opt.Faults.Fire(faultinject.PointEngineSweep); err != nil {
			return res, err
		}

		// Phase 1 — sweep: every partition runs one Jacobi sweep over its
		// owned interior vertices. The barrier before publishing is what
		// keeps the global mesh untorn: no partition's sweep-i result
		// becomes visible unless every partition completed sweep i.
		ps.fanOut(func(pu *partUnit[D, PD]) {
			pu.acc, pu.err = pu.eng.sweep(ctx, false, pu.soa, pu.visit, &opt)
		})
		firstErr := error(nil)
		for _, pu := range ps.parts {
			res.Accesses += pu.acc
			if pu.err != nil && firstErr == nil {
				firstErr = pu.err
			}
		}
		if firstErr != nil {
			// Canceled mid-sweep: no partition published, the global mesh
			// still holds the last completed sweep everywhere.
			return res, firstErr
		}

		// Phase 2 — publish and halo exchange: each partition copies its
		// owned coordinates into the (disjoint) global slots, then trades
		// halo payloads with its peers. The publish is unconditional, so
		// even if cancellation interrupts the exchange, the global mesh
		// holds all of sweep i by the time the barrier joins.
		// With fault injection armed, one partition's injected exchange
		// failure must not strand its peers in their blocking receives, so
		// the round gets a cancelable context torn down on first error.
		exCtx, exCancel := ctx, context.CancelFunc(nil)
		if opt.Faults != nil {
			exCtx, exCancel = context.WithCancel(ctx)
		}
		ps.fanOut(func(pu *partUnit[D, PD]) {
			PD(&pu.eng.d).publish(&ps.d, pu.l2g, pu.visit, pu.soa)
			pu.err = pu.exchange(exCtx, ps.ex)
			if pu.err != nil && exCancel != nil {
				exCancel()
			}
		})
		if exCancel != nil {
			exCancel()
		}
		res.Iterations++
		var exErr error
		for _, pu := range ps.parts {
			if pu.err == nil {
				continue
			}
			// Prefer the injected (or otherwise original) error over the
			// context.Canceled its round-teardown induced in the peers.
			if exErr == nil || (errors.Is(exErr, context.Canceled) && !errors.Is(pu.err, context.Canceled)) {
				exErr = pu.err
			}
		}
		if exErr != nil {
			return res, exErr
		}

		if res.Iterations%opt.CheckEvery != 0 && iter != opt.MaxIters-1 {
			continue
		}
		q, err := d.measure(ctx, &ps.qs, false, qworkers, qsched)
		if err != nil {
			return res, err
		}
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if opt.Progress != nil {
			opt.Progress(res.Iterations, q)
		}
		if q-prevQ < opt.Tol {
			break
		}
		prevQ = q

		// Emit after the publish barrier and the measurement: the global
		// mesh holds every partition's sweep-i coordinates, so the
		// snapshot reads it directly (soa=false — the mirrors are local to
		// the partition engines).
		if opt.Checkpoint != nil {
			if sinceCkpt++; sinceCkpt >= opt.CheckpointEvery {
				sinceCkpt = 0
				opt.Checkpoint(makeCheckpoint[D, PD](d, fp, &res, nil, false))
			}
		}
	}
	return res, nil
}

// fanOut runs fn on every partition engine concurrently and joins them —
// the per-phase barrier of the driver loop.
func (ps *partDriver[D, PD]) fanOut(fn func(pu *partUnit[D, PD])) {
	if len(ps.parts) == 1 {
		fn(ps.parts[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ps.parts))
	for _, pu := range ps.parts {
		go func(pu *partUnit[D, PD]) {
			defer wg.Done()
			fn(pu)
		}(pu)
	}
	wg.Wait()
}

// exchange gathers the partition's outbound halo payloads, trades them
// through the exchanger, and scatters the received coordinates over the
// partition's ghost slots.
func (pu *partUnit[D, PD]) exchange(ctx context.Context, ex partition.Exchanger) error {
	if len(pu.sBuf) == 0 && len(pu.rIdx) == 0 {
		return nil
	}
	d := PD(&pu.eng.d)
	for i, idx := range pu.sIdx {
		d.gather(idx, pu.sBuf[i], pu.soa)
	}
	incoming, err := ex.Exchange(ctx, pu.index, pu.sBuf)
	if err != nil {
		return err
	}
	for i, idx := range pu.rIdx {
		d.scatter(idx, incoming[i], pu.soa)
	}
	return nil
}

// setup (re)builds the cached decomposition when the mesh identity or the
// partition configuration changed since the previous run.
func (ps *partDriver[D, PD]) setup(k int, pname string) error {
	d := PD(&ps.d)
	if pname == "" {
		pname = partition.BFS
	}
	if ps.cached == d.meshAny() && ps.nv == d.numVerts() && ps.ne == d.elemCount() && ps.k == k && ps.pname == pname {
		return nil
	}
	layout, err := partition.New(d.partitionInput(), k, pname)
	if err != nil {
		return fmt.Errorf("smooth: partitioning: %w", err)
	}
	boundary := d.boundary()
	parts := make([]*partUnit[D, PD], k)
	for p := range layout.Parts {
		part := &layout.Parts[p]
		pu := &partUnit[D, PD]{index: p}
		l2g, err := PD(&pu.eng.d).buildLocal(&ps.d, part)
		if err != nil {
			return fmt.Errorf("smooth: partition %d local mesh: %w", p, err)
		}
		pu.l2g = l2g
		for l, g := range l2g {
			if layout.Owner[g] == int32(p) && !boundary[g] {
				pu.visit = append(pu.visit, int32(l))
			}
		}
		pu.sIdx, pu.sBuf = linkLocals(part.Sends, l2g, d.axes())
		pu.rIdx, _ = linkLocals(part.Recvs, l2g, 0)
		parts[p] = pu
	}
	ps.cached, ps.nv, ps.ne = d.meshAny(), d.numVerts(), d.elemCount()
	ps.k, ps.pname = k, pname
	ps.layout, ps.parts = layout, parts
	ps.ex = partition.NewChanExchanger(layout, d.axes())
	return nil
}

// linkLocals maps each link's global vertex list to local indices via
// binary search over the monotone l2g map, and sizes a payload buffer of
// dim floats per vertex (dim 0 skips the buffers — receive payloads are
// owned by the exchanger).
func linkLocals(links []partition.Link, l2g []int32, dim int) ([][]int32, [][]float64) {
	idx := make([][]int32, len(links))
	var bufs [][]float64
	if dim > 0 {
		bufs = make([][]float64, len(links))
	}
	for i, lk := range links {
		loc := make([]int32, len(lk.Verts))
		for j, g := range lk.Verts {
			loc[j] = int32(sort.Search(len(l2g), func(x int) bool { return l2g[x] >= g }))
		}
		idx[i] = loc
		if dim > 0 {
			bufs[i] = make([]float64, dim*len(lk.Verts))
		}
	}
	return idx, bufs
}

// resolveScheduler caches the driver's measurement scheduler; see
// engine.resolveScheduler.
func (ps *partDriver[D, PD]) resolveScheduler(name string) (err error) {
	ps.sched, ps.schedName, err = resolveScheduler(ps.sched, ps.schedName, name)
	return err
}
