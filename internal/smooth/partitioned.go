package smooth

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/parallel"
	"lams/internal/partition"
	"lams/internal/quality"
)

// PartitionedSmoother runs the convergence loop across k cooperating
// engines: the mesh is decomposed into k partitions (see
// internal/partition), each partition is smoothed by its own Smoother on
// its own goroutine — with its own SoA mirrors, scratch, and scheduler —
// and the engines barrier after every Jacobi sweep to exchange halo
// (ghost) coordinates and publish their owned vertices back to the global
// mesh, where the driver measures quality with the same fixed-block
// ordered reduction the single engine uses.
//
// Because Jacobi updates read only the previous sweep's coordinates, and
// each partition's local mesh preserves the global neighbor order (see
// partition.BuildLocal), the run is bit-identical — coordinates, access
// counts, quality history — to the single-engine run at every partition
// count × partitioner × worker count × schedule; the partitioned
// equivalence harness enforces this. In-place updates (the Gauss-Seidel
// ablation and the smart kernel) are inherently sequential across the
// whole mesh and are rejected.
//
// The decomposition (layout, local meshes, exchange wiring) is computed on
// first use and reused while the same mesh is smoothed with the same
// partition configuration — the reorder-once/amortize-many argument one
// level up. A PartitionedSmoother is not safe for concurrent use; the zero
// value is ready to use.
type PartitionedSmoother struct {
	qs        quality.Scratch
	sched     parallel.Scheduler
	schedName string

	// Cached decomposition, valid while (mesh identity, k, partitioner)
	// are unchanged. The mesh pointer plus vertex/element counts identify
	// the topology: smoothing moves coordinates but never edits elements,
	// and any layout of the current topology yields identical results, so
	// coordinate drift cannot invalidate the cache.
	mesh   *mesh.Mesh
	nv, ne int
	k      int
	pname  string
	layout *partition.Layout
	parts  []*partEngine
	ex     partition.Exchanger
}

// NewPartitionedSmoother returns an empty multi-engine driver whose
// decomposition and scratch grow on first use.
func NewPartitionedSmoother() *PartitionedSmoother { return &PartitionedSmoother{} }

// Reset releases the cached decomposition and scratch; see Smoother.Reset.
func (ps *PartitionedSmoother) Reset() { *ps = PartitionedSmoother{} }

// CachedMesh returns the mesh whose decomposition the driver currently
// caches, or nil before the first run. Long-lived holders (engine pools)
// use it to drop decompositions of meshes that no longer exist.
func (ps *PartitionedSmoother) CachedMesh() *mesh.Mesh { return ps.mesh }

// partEngine is one partition's worker state: its engine, local mesh,
// index maps, and exchange scratch.
type partEngine struct {
	index int
	eng   Smoother
	local *mesh.Mesh
	l2g   []int32   // local -> global vertex map (monotone)
	visit []int32   // local ids of owned, globally interior vertices
	sIdx  [][]int32 // per send link: local ids of Link.Verts
	rIdx  [][]int32 // per recv link: local ids of Link.Verts
	sBuf  [][]float64

	// Per-run state.
	soa  bool
	next []geom.Point
	acc  int64
	err  error
}

// RunPartitioned smooths the mesh with opt.Partitions cooperating engines
// using a one-shot driver. Callers that smooth repeatedly should hold a
// PartitionedSmoother, which caches the decomposition across runs.
func RunPartitioned(ctx context.Context, m *mesh.Mesh, opt Options) (Result, error) {
	return NewPartitionedSmoother().Run(ctx, m, opt)
}

// Run smooths the mesh in place across the partitions and returns the run
// statistics. The cancellation contract matches the single engine's: on
// ctx cancellation — mid-sweep or mid-exchange — the global mesh holds the
// coordinates of the last sweep every partition completed.
func (ps *PartitionedSmoother) Run(ctx context.Context, m *mesh.Mesh, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("smooth: workers must be >= 1, got %d", opt.Workers)
	}
	if opt.CheckEvery < 1 {
		return Result{}, fmt.Errorf("smooth: check-every must be >= 1, got %d", opt.CheckEvery)
	}
	k := opt.Partitions
	if k == 0 {
		k = 1
	}
	if k < 1 {
		return Result{}, fmt.Errorf("smooth: partitions must be >= 1, got %d", opt.Partitions)
	}
	kern := opt.Kernel
	if kern == nil {
		kern = PlainKernel{}
	}
	if opt.GaussSeidel || kern.InPlace() {
		return Result{}, fmt.Errorf("smooth: partitioned runs require Jacobi updates; kernel %q updates in place", kern.Name())
	}
	if opt.Trace != nil {
		return Result{}, fmt.Errorf("smooth: partitioned runs do not support tracing")
	}
	if err := ps.resolveScheduler(opt.Schedule); err != nil {
		return Result{}, err
	}
	if err := ps.setup(m, k, opt.Partitioner); err != nil {
		return Result{}, err
	}

	// Measurement configuration, exactly as the single engine sets it up:
	// the global quality passes run over the global mesh with the fixed
	// 1024-element reduction blocking, so the measured values are
	// bit-identical at any worker count and schedule.
	met := opt.Metric
	qworkers, qsched := opt.Workers, ps.sched
	if opt.NoFastPath {
		met = quality.BoxMetric(met)
		qworkers, qsched = 1, nil
	}

	// Per-run engine preparation: refresh local coordinates from the
	// global mesh, resolve each engine's scheduler, and pack the SoA
	// mirrors (or size the generic Jacobi buffer).
	soa := !opt.NoFastPath && soaPartKernel(kern)
	for _, pe := range ps.parts {
		for l, g := range pe.l2g {
			pe.local.Coords[l] = m.Coords[g]
		}
		if err := pe.eng.resolveScheduler(opt.Schedule); err != nil {
			return Result{}, err
		}
		pe.soa = soa
		if soa {
			pe.eng.packCoords(pe.local, true)
			pe.next = nil
		} else {
			pe.next = pe.eng.nextBuffer(len(pe.local.Coords))
		}
	}
	if ce, ok := ps.ex.(*partition.ChanExchanger); ok {
		ce.Reset()
	}

	q0, err := ps.qs.GlobalParallel(ctx, m, met, qworkers, qsched)
	if err != nil {
		return Result{}, err
	}
	res := Result{InitialQuality: q0}
	res.FinalQuality = res.InitialQuality
	if opt.Progress != nil {
		opt.Progress(0, q0)
	}
	if opt.MaxIters > 0 {
		res.QualityHistory = make([]float64, 0, opt.MaxIters)
	}
	prevQ := res.InitialQuality

	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if prevQ >= opt.GoalQuality {
			break
		}

		// Phase 1 — sweep: every partition runs one Jacobi sweep over its
		// owned interior vertices. The barrier before publishing is what
		// keeps the global mesh untorn: no partition's sweep-i result
		// becomes visible unless every partition completed sweep i.
		ps.fanOut(func(pe *partEngine) {
			pe.acc, pe.err = pe.eng.sweep(ctx, pe.local, kern, false, pe.soa, pe.visit, pe.next, opt)
		})
		firstErr := error(nil)
		for _, pe := range ps.parts {
			res.Accesses += pe.acc
			if pe.err != nil && firstErr == nil {
				firstErr = pe.err
			}
		}
		if firstErr != nil {
			// Canceled mid-sweep: no partition published, the global mesh
			// still holds the last completed sweep everywhere.
			return res, firstErr
		}

		// Phase 2 — publish and halo exchange: each partition copies its
		// owned coordinates into the (disjoint) global slots, then trades
		// halo payloads with its peers. The publish is unconditional, so
		// even if cancellation interrupts the exchange, the global mesh
		// holds all of sweep i by the time the barrier joins.
		ps.fanOut(func(pe *partEngine) {
			pe.publish(m)
			pe.err = pe.exchange(ctx, ps.ex)
		})
		res.Iterations++
		for _, pe := range ps.parts {
			if pe.err != nil {
				return res, pe.err
			}
		}

		if res.Iterations%opt.CheckEvery != 0 && iter != opt.MaxIters-1 {
			continue
		}
		q, err := ps.qs.GlobalParallel(ctx, m, met, qworkers, qsched)
		if err != nil {
			return res, err
		}
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if opt.Progress != nil {
			opt.Progress(res.Iterations, q)
		}
		if q-prevQ < opt.Tol {
			break
		}
		prevQ = q
	}
	return res, nil
}

// fanOut runs fn on every partition engine concurrently and joins them —
// the per-phase barrier of the driver loop.
func (ps *PartitionedSmoother) fanOut(fn func(pe *partEngine)) {
	if len(ps.parts) == 1 {
		fn(ps.parts[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ps.parts))
	for _, pe := range ps.parts {
		go func(pe *partEngine) {
			defer wg.Done()
			fn(pe)
		}(pe)
	}
	wg.Wait()
}

// publish copies the partition's owned interior coordinates into their
// global-mesh slots. Partitions own disjoint vertex sets, so concurrent
// publishes never write the same slot.
func (pe *partEngine) publish(m *mesh.Mesh) {
	if pe.soa {
		cx, cy := pe.eng.cx, pe.eng.cy
		for _, l := range pe.visit {
			m.Coords[pe.l2g[l]] = geom.Point{X: cx[l], Y: cy[l]}
		}
		return
	}
	for _, l := range pe.visit {
		m.Coords[pe.l2g[l]] = pe.local.Coords[l]
	}
}

// exchange gathers the partition's outbound halo payloads, trades them
// through the exchanger, and scatters the received coordinates over the
// partition's ghost slots.
func (pe *partEngine) exchange(ctx context.Context, ex partition.Exchanger) error {
	if len(pe.sBuf) == 0 && len(pe.rIdx) == 0 {
		return nil
	}
	if pe.soa {
		cx, cy := pe.eng.cx, pe.eng.cy
		for i, idx := range pe.sIdx {
			buf := pe.sBuf[i]
			for j, l := range idx {
				buf[2*j], buf[2*j+1] = cx[l], cy[l]
			}
		}
	} else {
		for i, idx := range pe.sIdx {
			buf := pe.sBuf[i]
			for j, l := range idx {
				p := pe.local.Coords[l]
				buf[2*j], buf[2*j+1] = p.X, p.Y
			}
		}
	}
	incoming, err := ex.Exchange(ctx, pe.index, pe.sBuf)
	if err != nil {
		return err
	}
	if pe.soa {
		cx, cy := pe.eng.cx, pe.eng.cy
		for i, idx := range pe.rIdx {
			buf := incoming[i]
			for j, l := range idx {
				cx[l], cy[l] = buf[2*j], buf[2*j+1]
			}
		}
		return nil
	}
	for i, idx := range pe.rIdx {
		buf := incoming[i]
		for j, l := range idx {
			pe.local.Coords[l] = geom.Point{X: buf[2*j], Y: buf[2*j+1]}
		}
	}
	return nil
}

// soaPartKernel reports whether the kernel has a monomorphic SoA Jacobi
// loop (fastpath.go); the partitioned analogue of Smoother.soaEligible
// with the in-place cases already rejected.
func soaPartKernel(kern Kernel) bool {
	switch kern.(type) {
	case PlainKernel, WeightedKernel, ConstrainedKernel:
		return true
	}
	return false
}

// setup (re)builds the cached decomposition when the mesh identity or the
// partition configuration changed since the previous run.
func (ps *PartitionedSmoother) setup(m *mesh.Mesh, k int, pname string) error {
	if pname == "" {
		pname = partition.BFS
	}
	if ps.mesh == m && ps.nv == m.NumVerts() && ps.ne == m.NumTris() && ps.k == k && ps.pname == pname {
		return nil
	}
	layout, err := partition.New(partition.FromMesh(m), k, pname)
	if err != nil {
		return fmt.Errorf("smooth: partitioning: %w", err)
	}
	parts := make([]*partEngine, k)
	for p := range layout.Parts {
		part := &layout.Parts[p]
		local, l2g, err := partition.BuildLocal(m, part)
		if err != nil {
			return fmt.Errorf("smooth: partition %d local mesh: %w", p, err)
		}
		pe := &partEngine{index: p, local: local, l2g: l2g}
		for l, g := range l2g {
			if layout.Owner[g] == int32(p) && !m.IsBoundary[g] {
				pe.visit = append(pe.visit, int32(l))
			}
		}
		pe.sIdx, pe.sBuf = linkLocals(part.Sends, l2g, 2)
		pe.rIdx, _ = linkLocals(part.Recvs, l2g, 0)
		parts[p] = pe
	}
	ps.mesh, ps.nv, ps.ne = m, m.NumVerts(), m.NumTris()
	ps.k, ps.pname = k, pname
	ps.layout, ps.parts = layout, parts
	ps.ex = partition.NewChanExchanger(layout, 2)
	return nil
}

// linkLocals maps each link's global vertex list to local indices via
// binary search over the monotone l2g map, and sizes a payload buffer of
// dim floats per vertex (dim 0 skips the buffers — receive payloads are
// owned by the exchanger).
func linkLocals(links []partition.Link, l2g []int32, dim int) ([][]int32, [][]float64) {
	idx := make([][]int32, len(links))
	var bufs [][]float64
	if dim > 0 {
		bufs = make([][]float64, len(links))
	}
	for i, lk := range links {
		loc := make([]int32, len(lk.Verts))
		for j, g := range lk.Verts {
			loc[j] = int32(sort.Search(len(l2g), func(x int) bool { return l2g[x] >= g }))
		}
		idx[i] = loc
		if dim > 0 {
			bufs[i] = make([]float64, dim*len(lk.Verts))
		}
	}
	return idx, bufs
}

// Layout returns the driver's cached decomposition, or nil before the
// first run; reporting callers (lamsbench) read its Stats.
func (ps *PartitionedSmoother) Layout() *partition.Layout { return ps.layout }

// resolveScheduler caches the driver's measurement scheduler; see
// Smoother.resolveScheduler.
func (ps *PartitionedSmoother) resolveScheduler(name string) error {
	if name == "" {
		name = parallel.ScheduleStatic
	}
	if ps.sched != nil && ps.schedName == name {
		return nil
	}
	sched, err := parallel.SchedulerByName(name)
	if err != nil {
		return fmt.Errorf("smooth: %w", err)
	}
	ps.sched, ps.schedName = sched, name
	return nil
}
