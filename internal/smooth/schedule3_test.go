package smooth

import (
	"context"
	"fmt"
	"testing"

	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/quality"
)

func coords3Equal(t *testing.T, label string, got, want *mesh.TetMesh) {
	t.Helper()
	for v := range want.Coords {
		if got.Coords[v] != want.Coords[v] {
			t.Fatalf("%s: vertex %d = %v, want bit-identical %v", label, v, got.Coords[v], want.Coords[v])
		}
	}
}

// TestSchedule3Equivalence is the 3D acceptance harness, mirroring
// TestScheduleEquivalence: for every registered schedule, every worker
// count, and both traversals, a multi-iteration Jacobi run over the cube
// tet mesh must produce bit-identical coordinates — and identical Result
// accounting — to the serial static reference. The schedulers only decide
// which worker computes a vertex, never what it computes, and that contract
// is dimension-blind.
func TestSchedule3Equivalence(t *testing.T) {
	base := genTetMesh(t, 8)
	const iters = 5

	for _, traversal := range []Traversal{QualityGreedy, StorageOrder} {
		ref := base.Clone()
		refRes, err := RunTet(ref, Options{MaxIters: iters, Tol: -1, Traversal: traversal})
		if err != nil {
			t.Fatal(err)
		}
		for _, schedule := range parallel.Schedules() {
			for _, workers := range scheduleWorkerCounts {
				name := fmt.Sprintf("%s/%s/workers=%d", traversal, schedule, workers)
				t.Run(name, func(t *testing.T) {
					got := base.Clone()
					res, err := RunTet(got, Options{
						MaxIters:  iters,
						Tol:       -1,
						Traversal: traversal,
						Workers:   workers,
						Schedule:  schedule,
					})
					if err != nil {
						t.Fatal(err)
					}
					coords3Equal(t, name, got, ref)
					if res.Iterations != refRes.Iterations {
						t.Errorf("iterations = %d, want %d", res.Iterations, refRes.Iterations)
					}
					if res.Accesses != refRes.Accesses {
						t.Errorf("accesses = %d, want %d (some vertex was skipped or double-visited)",
							res.Accesses, refRes.Accesses)
					}
					if res.FinalQuality != refRes.FinalQuality {
						t.Errorf("final quality = %v, want bit-identical %v", res.FinalQuality, refRes.FinalQuality)
					}
				})
			}
		}
	}
}

// TestSchedule3EquivalenceReordered runs the full ordering x schedule grid:
// a BFS- or RDR-reordered cube must smooth to bit-identical coordinates
// under every schedule and worker count — the reordered layouts are exactly
// the meshes the paper's pipeline hands the parallel smoother.
func TestSchedule3EquivalenceReordered(t *testing.T) {
	base := genTetMesh(t, 7)
	vq := quality.TetVertexQualities(base, quality.MeanRatio3{})
	for _, ordName := range []string{"BFS", "RDR"} {
		ord, err := order.ByName(ordName)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := ord.Compute(base, vq)
		if err != nil {
			t.Fatal(err)
		}
		reordered, err := base.Renumber(perm)
		if err != nil {
			t.Fatal(err)
		}
		ref := reordered.Clone()
		refRes, err := RunTet(ref, Options{MaxIters: 4, Tol: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, schedule := range parallel.Schedules() {
			for _, workers := range scheduleWorkerCounts {
				name := fmt.Sprintf("%s/%s/workers=%d", ordName, schedule, workers)
				t.Run(name, func(t *testing.T) {
					got := reordered.Clone()
					res, err := RunTet(got, Options{MaxIters: 4, Tol: -1, Workers: workers, Schedule: schedule})
					if err != nil {
						t.Fatal(err)
					}
					coords3Equal(t, name, got, ref)
					if res.FinalQuality != refRes.FinalQuality {
						t.Errorf("final quality = %v, want bit-identical %v", res.FinalQuality, refRes.FinalQuality)
					}
				})
			}
		}
	}
}

// TestSchedule3TinyMeshes pushes degenerate shapes through every schedule:
// the 2x2x2 cube has exactly one interior vertex, far fewer than the worker
// counts, so most chunks are empty — the exactly-once contract must hold.
func TestSchedule3TinyMeshes(t *testing.T) {
	for _, cells := range []int{2, 3} {
		base, err := mesh.GenerateTetCube(cells, cells, cells, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		ref := base.Clone()
		refRes, err := RunTet(ref, Options{MaxIters: 3, Tol: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, schedule := range parallel.Schedules() {
			for _, workers := range []int{3, 16} {
				t.Run(fmt.Sprintf("cells=%d/%s/workers=%d", cells, schedule, workers), func(t *testing.T) {
					got := base.Clone()
					res, err := RunTet(got, Options{MaxIters: 3, Tol: -1, Workers: workers, Schedule: schedule})
					if err != nil {
						t.Fatal(err)
					}
					coords3Equal(t, schedule, got, ref)
					if res.Accesses != refRes.Accesses {
						t.Errorf("accesses = %d, want %d", res.Accesses, refRes.Accesses)
					}
				})
			}
		}
	}
}

// TestSmoother3ScheduleSwitch reuses one 3D engine across schedules and
// checks each run still matches a fresh engine bit-for-bit, mirroring
// TestSmootherScheduleSwitch.
func TestSmoother3ScheduleSwitch(t *testing.T) {
	base := genTetMesh(t, 6)
	s := NewSmoother()
	ctx := context.Background()
	sequence := append(parallel.Schedules(), parallel.Schedules()...)
	for i, schedule := range sequence {
		reused := base.Clone()
		fresh := base.Clone()
		opt := Options{MaxIters: 3, Tol: -1, Workers: 4, Schedule: schedule}
		if _, err := s.RunTet(ctx, reused, opt); err != nil {
			t.Fatal(err)
		}
		if _, err := RunTet(fresh, opt); err != nil {
			t.Fatal(err)
		}
		coords3Equal(t, fmt.Sprintf("switch %d (%s)", i, schedule), reused, fresh)
	}
}

// TestSchedule3UnknownName verifies the 3D engine rejects an unregistered
// schedule up front and leaves the mesh untouched.
func TestSchedule3UnknownName(t *testing.T) {
	m := genTetMesh(t, 3)
	before := m.Clone()
	if _, err := RunTet(m, Options{MaxIters: 2, Tol: -1, Workers: 2, Schedule: "round-robin"}); err == nil {
		t.Fatal("unknown schedule accepted")
	}
	coords3Equal(t, "untouched", m, before)
}
