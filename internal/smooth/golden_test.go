package smooth

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The golden-hash regression pins the engine's numerical output — committed
// coordinates, quality history, access counts, iteration count — for a fixed
// matrix of dim × kernel × schedule × workers × partitions configurations.
// The hashes in testdata/golden_hashes.json were captured from the
// pre-unification twin engines (Smoother/Smoother3 before the
// dimension-generic refactor); the unified engine must reproduce every one
// of them bitwise. Regenerate with GOLDEN_UPDATE=1 only when an intentional
// numerical change is being made, and say so in the commit.

const (
	goldenIters  = 4
	goldenVerts2 = 1200 // carabiner target vertex count
	goldenCells3 = 5    // tet cube cells per axis
	goldenMaxD   = 0.05 // constrained kernel displacement clamp
)

var goldenFile = filepath.Join("testdata", "golden_hashes.json")

type goldenCase struct {
	Dim        int
	Kernel     string
	Schedule   string
	Workers    int
	Partitions int
}

func (c goldenCase) name() string {
	return fmt.Sprintf("dim=%d/kernel=%s/schedule=%s/workers=%d/partitions=%d",
		c.Dim, c.Kernel, c.Schedule, c.Workers, c.Partitions)
}

// goldenMatrix enumerates the seed matrix. The smart kernel updates in
// place, which partitioned runs reject, so its partitions>1 cells are
// omitted rather than recorded as errors.
func goldenMatrix() []goldenCase {
	var cases []goldenCase
	for _, dim := range []int{2, 3} {
		for _, kernel := range []string{"plain", "smart", "weighted", "constrained"} {
			for _, schedule := range []string{"static", "guided", "stealing"} {
				for _, workers := range []int{1, 4} {
					for _, partitions := range []int{1, 3} {
						if kernel == "smart" && partitions > 1 {
							continue
						}
						cases = append(cases, goldenCase{dim, kernel, schedule, workers, partitions})
					}
				}
			}
		}
	}
	return cases
}

func goldenHashF64(h hash.Hash64, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.Write(b[:])
}

func goldenHashI64(h hash.Hash64, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func goldenKernel2(t *testing.T, name string) Kernel {
	t.Helper()
	k, err := KernelByName(name, KernelConfig{MaxDisplacement: goldenMaxD})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func goldenKernel3(t *testing.T, name string) TetKernel {
	t.Helper()
	k, err := TetKernelByName(name, KernelConfig{MaxDisplacement: goldenMaxD})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// goldenRun executes one matrix cell from a fresh mesh and folds the
// complete numerical outcome into one 64-bit FNV-1a hash.
func goldenRun(t *testing.T, c goldenCase) uint64 {
	t.Helper()
	return goldenRunOpts(t, c, nil)
}

// goldenRunOpts is goldenRun with an options mutator, so the resume axis
// can thread Checkpoint/Resume through the very same cell executions.
func goldenRunOpts(t *testing.T, c goldenCase, mod func(*Options)) uint64 {
	t.Helper()
	h := fnv.New64a()
	var res Result
	if c.Dim == 2 {
		m := genMesh(t, goldenVerts2)
		opt := Options{
			MaxIters: goldenIters, Tol: -1,
			Workers: c.Workers, Schedule: c.Schedule,
			Kernel: goldenKernel2(t, c.Kernel), Partitions: c.Partitions,
		}
		if mod != nil {
			mod(&opt)
		}
		var err error
		res, err = Run(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Coords {
			goldenHashF64(h, p.X)
			goldenHashF64(h, p.Y)
		}
	} else {
		m := genTetMesh(t, goldenCells3)
		opt := Options{
			MaxIters: goldenIters, Tol: -1,
			Workers: c.Workers, Schedule: c.Schedule,
			TetKernel: goldenKernel3(t, c.Kernel), Partitions: c.Partitions,
		}
		if mod != nil {
			mod(&opt)
		}
		var err error
		res, err = RunTet(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Coords {
			goldenHashF64(h, p.X)
			goldenHashF64(h, p.Y)
			goldenHashF64(h, p.Z)
		}
	}
	for _, q := range res.QualityHistory {
		goldenHashF64(h, q)
	}
	goldenHashF64(h, res.InitialQuality)
	goldenHashF64(h, res.FinalQuality)
	goldenHashI64(h, int64(res.Iterations))
	goldenHashI64(h, res.Accesses)
	return h.Sum64()
}

type goldenRecord struct {
	Iters  int               `json:"iters"`
	Mesh2  string            `json:"mesh2"`
	Mesh3  string            `json:"mesh3"`
	Hashes map[string]string `json:"hashes"`
}

func TestGoldenHashes(t *testing.T) {
	cases := goldenMatrix()

	if os.Getenv("GOLDEN_UPDATE") != "" {
		rec := goldenRecord{
			Iters:  goldenIters,
			Mesh2:  fmt.Sprintf("carabiner/%d", goldenVerts2),
			Mesh3:  fmt.Sprintf("cube/%d", goldenCells3),
			Hashes: make(map[string]string, len(cases)),
		}
		for _, c := range cases {
			rec.Hashes[c.name()] = fmt.Sprintf("%016x", goldenRun(t, c))
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(rec.Hashes), goldenFile)
		return
	}

	buf, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading golden hashes (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	var rec goldenRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Iters != goldenIters {
		t.Fatalf("golden file captured %d iterations, test runs %d", rec.Iters, goldenIters)
	}
	if len(rec.Hashes) != len(cases) {
		t.Errorf("golden file has %d hashes, matrix has %d cases", len(rec.Hashes), len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			want, ok := rec.Hashes[c.name()]
			if !ok {
				t.Fatalf("no golden hash for %s", c.name())
			}
			if got := fmt.Sprintf("%016x", goldenRun(t, c)); got != want {
				t.Errorf("hash = %s, want %s (numerical output drifted from the pre-unification engines)", got, want)
			}
		})
	}
}

// TestGoldenResumeAxis is the resume axis of the golden matrix: every cell
// is run once capturing its checkpoints, then re-run resumed from each
// checkpoint, and every resumed run must land on the cell's committed
// golden hash — interrupt-and-resume is bitwise invisible at any
// checkpoint of any cell. No new hashes are recorded; the pre-resume
// hashes are the contract.
func TestGoldenResumeAxis(t *testing.T) {
	if os.Getenv("GOLDEN_UPDATE") != "" {
		t.Skip("golden update run")
	}
	buf, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading golden hashes (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	var rec goldenRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenMatrix() {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			want, ok := rec.Hashes[c.name()]
			if !ok {
				t.Fatalf("no golden hash for %s", c.name())
			}
			var cps []Checkpoint
			got := fmt.Sprintf("%016x", goldenRunOpts(t, c, func(o *Options) {
				o.Checkpoint = func(cp Checkpoint) { cps = append(cps, cp) }
			}))
			if got != want {
				t.Fatalf("checkpointed run hash = %s, want %s (emitting checkpoints must not perturb the run)", got, want)
			}
			// Tol is disabled and CheckEvery is 1, so every sweep emits.
			if len(cps) != goldenIters {
				t.Fatalf("captured %d checkpoints, want %d", len(cps), goldenIters)
			}
			for _, cp := range cps {
				cp := cp
				if got := fmt.Sprintf("%016x", goldenRunOpts(t, c, func(o *Options) {
					o.Resume = &cp
				})); got != want {
					t.Errorf("resume from iteration %d: hash = %s, want %s", cp.Iteration, got, want)
				}
			}
		})
	}
}
