package smooth

import (
	"context"
	"fmt"
	"testing"

	"lams/internal/mesh"
)

// convergedBenchCells is the cells-per-axis of the 3D converge-loop
// benchmark cube: 40^3 cells (68921 vertices, 384000 tets), the 3D
// acceptance workload mirroring BenchmarkRunConverged's 2D mesh.
const convergedBenchCells = 40

// BenchmarkRunConverged3 is the 3D twin of BenchmarkRunConverged: the full
// sweep+measure convergence loop on the jittered Kuhn-split cube, across
// worker counts and both engine paths (iface = interface dispatch + serial
// measurement, fast = monomorphic loops + parallel ordered reduction). The
// per-iteration mean-ratio pass over the tets is even more expensive
// relative to the sweep than in 2D (six tets per interior vertex, a cbrt
// per tet), so this is where the parallel measurement pays most.
// BenchmarkRunSmart3 is the 3D twin of BenchmarkRunSmart: the smart-kernel
// accept test recomputes the mean-ratio of every incident tet twice per
// vertex visit, so the monomorphic SoA evaluation dominates the fast path's
// win here.
func BenchmarkRunSmart3(b *testing.B) {
	base, err := mesh.GenerateTetCube(16, 16, 16, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, path := range []struct {
		name   string
		noFast bool
	}{{"iface", true}, {"fast", false}} {
		b.Run(fmt.Sprintf("path=%s", path.name), func(b *testing.B) {
			m := base.Clone()
			s := NewSmoother()
			opt := Options{
				MaxIters: 4, Tol: -1, Traversal: StorageOrder,
				TetKernel: SmartKernel3{}, NoFastPath: path.noFast,
			}
			if _, err := s.RunTet(ctx, m, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.RunTet(ctx, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRunConverged3(b *testing.B) {
	base, err := mesh.GenerateTetCube(convergedBenchCells, convergedBenchCells, convergedBenchCells, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, path := range []struct {
		name   string
		noFast bool
	}{{"iface", true}, {"fast", false}} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("path=%s/workers=%d", path.name, workers), func(b *testing.B) {
				m := base.Clone()
				s := NewSmoother()
				opt := Options{
					MaxIters: 10, Tol: -1, Traversal: StorageOrder,
					Workers: workers, NoFastPath: path.noFast,
				}
				if _, err := s.RunTet(ctx, m, opt); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.RunTet(ctx, m, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
