package smooth

import (
	"math"

	"lams/internal/geom"
)

// Monomorphic sweep loops for the built-in kernels, operating on the
// engines' structure-of-arrays coordinate mirrors. The generic sweep body
// pays an interface dispatch per vertex (kern.Update), which blocks inlining
// of the ~10-flop Laplacian update and forces the mesh's CSR base pointers
// to be reloaded on every call. These specializations inline the whole
// update into one loop over the chunk: the AdjStart bounds are read once per
// vertex, the adjacency is walked as a direct sub-slice, and — with the
// coordinates split into per-axis float64 slices — the inner gather loop is
// plain unit-stride-indexed loads the compiler can bounds-check-eliminate
// and vectorize, instead of struct loads.
//
// Every loop replays its kernel's Update arithmetic operation-for-operation
// (the same additions in the same order, the same reciprocal-vs-division
// form), so the committed coordinates are bit-identical to the interface
// path — the property the fast-path equivalence suite pins. The access
// accounting ((degree + 1) per vertex) is identical too.
//
// The mesh parameters come in as the raw CSR arrays rather than the mesh so
// the 2D and 3D engines share the shape; each function returns the chunk's
// or sweep's access count.

// sweepChunkPlain is PlainKernel.Update inlined over a chunk.
func sweepChunkPlain(adjStart, adjList []int32, x, y, nx, ny []float64, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy float64
		for _, w := range adjList[lo:hi] {
			sx += x[w]
			sy += y[w]
		}
		inv := 1 / float64(hi-lo)
		nx[v] = sx * inv
		ny[v] = sy * inv
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkWeighted is WeightedKernel.Update inlined over a chunk.
func sweepChunkWeighted(adjStart, adjList []int32, x, y, nx, ny []float64, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		cx, cy := x[v], y[v]
		var sx, sy, wsum float64
		for _, w := range adjList[lo:hi] {
			px, py := x[w], y[w]
			d := math.Hypot(cx-px, cy-py)
			wt := 1.0
			if d > 0 {
				wt = 1 / d
			}
			sx += wt * px
			sy += wt * py
			wsum += wt
		}
		if wsum == 0 {
			nx[v], ny[v] = cx, cy
		} else {
			nx[v], ny[v] = sx/wsum, sy/wsum
		}
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkConstrained is ConstrainedKernel.Update inlined over a chunk
// (note the division form of the Eq. (1) target, matching plainDivTarget).
func sweepChunkConstrained(adjStart, adjList []int32, x, y, nx, ny []float64, visit []int32, maxDisplacement float64) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy float64
		for _, w := range adjList[lo:hi] {
			sx += x[w]
			sy += y[w]
		}
		n := float64(hi - lo)
		tx, ty := sx/n, sy/n
		cx, cy := x[v], y[v]
		dx, dy := tx-cx, ty-cy
		if norm := math.Hypot(dx, dy); norm > maxDisplacement {
			s := maxDisplacement / norm
			tx, ty = cx+s*dx, cy+s*dy
		}
		nx[v], ny[v] = tx, ty
		acc += int64(hi-lo) + 1
	}
	return acc
}

// vertexQualityER is quality.VertexQuality with the EdgeRatio metric,
// replayed over the SoA mirrors: the same per-triangle EdgeRatio.Triangle
// arithmetic in incidence order, the same average. It is the smart kernel's
// accept test without the two interface dispatches (metric and kernel) the
// generic path pays per incident triangle.
func vertexQualityER(tris [][3]int32, triStart, triList []int32, x, y []float64, v int32) float64 {
	a, b := triStart[v], triStart[v+1]
	if a == b {
		return 0
	}
	var s float64
	for _, t := range triList[a:b] {
		tv := tris[t]
		pa := geom.Point{X: x[tv[0]], Y: y[tv[0]]}
		pb := geom.Point{X: x[tv[1]], Y: y[tv[1]]}
		pc := geom.Point{X: x[tv[2]], Y: y[tv[2]]}
		e0 := pa.Dist(pb)
		e1 := pb.Dist(pc)
		e2 := pc.Dist(pa)
		lo := math.Min(e0, math.Min(e1, e2))
		hi := math.Max(e0, math.Max(e1, e2))
		q := 0.0
		if hi != 0 {
			q = lo / hi
		}
		s += q
	}
	return s / float64(b-a)
}

// sweepInPlaceSmart is SmartKernel.Update (with the EdgeRatio metric)
// inlined over the whole visit sequence: quality before, Eq. (1) target in
// division form, quality after with the candidate applied, revert on
// decrease. In-place semantics require the serial full-sweep loop rather
// than a chunk body.
func sweepInPlaceSmart(tris [][3]int32, triStart, triList, adjStart, adjList []int32, x, y []float64, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		before := vertexQualityER(tris, triStart, triList, x, y, v)
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy float64
		for _, w := range adjList[lo:hi] {
			sx += x[w]
			sy += y[w]
		}
		n := float64(hi - lo)
		oldX, oldY := x[v], y[v]
		x[v], y[v] = sx/n, sy/n
		if vertexQualityER(tris, triStart, triList, x, y, v) < before {
			x[v], y[v] = oldX, oldY // reject the move
		}
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkPlain3 is PlainKernel3.Update inlined over a chunk.
func sweepChunkPlain3(adjStart, adjList []int32, x, y, z, nx, ny, nz []float64, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy, sz float64
		for _, w := range adjList[lo:hi] {
			sx += x[w]
			sy += y[w]
			sz += z[w]
		}
		inv := 1 / float64(hi-lo)
		nx[v] = sx * inv
		ny[v] = sy * inv
		nz[v] = sz * inv
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkWeighted3 is WeightedKernel3.Update inlined over a chunk.
func sweepChunkWeighted3(adjStart, adjList []int32, x, y, z, nx, ny, nz []float64, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		cur := geom.Point3{X: x[v], Y: y[v], Z: z[v]}
		var sx, sy, sz, wsum float64
		for _, w := range adjList[lo:hi] {
			p := geom.Point3{X: x[w], Y: y[w], Z: z[w]}
			d := cur.Dist(p)
			wt := 1.0
			if d > 0 {
				wt = 1 / d
			}
			sx += wt * p.X
			sy += wt * p.Y
			sz += wt * p.Z
			wsum += wt
		}
		if wsum == 0 {
			nx[v], ny[v], nz[v] = cur.X, cur.Y, cur.Z
		} else {
			nx[v], ny[v], nz[v] = sx/wsum, sy/wsum, sz/wsum
		}
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkConstrained3 is ConstrainedKernel3.Update inlined over a chunk.
func sweepChunkConstrained3(adjStart, adjList []int32, x, y, z, nx, ny, nz []float64, visit []int32, maxDisplacement float64) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy, sz float64
		for _, w := range adjList[lo:hi] {
			sx += x[w]
			sy += y[w]
			sz += z[w]
		}
		n := float64(hi - lo)
		target := geom.Point3{X: sx / n, Y: sy / n, Z: sz / n}
		cur := geom.Point3{X: x[v], Y: y[v], Z: z[v]}
		d := target.Sub(cur)
		if norm := d.Norm(); norm > maxDisplacement {
			target = cur.Add(d.Scale(maxDisplacement / norm))
		}
		nx[v], ny[v], nz[v] = target.X, target.Y, target.Z
		acc += int64(hi-lo) + 1
	}
	return acc
}

// tetQualityMR3 is quality.TetVertexQuality with the MeanRatio3 metric,
// replayed over the SoA mirrors; the 3D twin of vertexQualityER (and the
// same devirtualized MeanRatio3 body quality.Scratch's tetRange uses).
func tetQualityMR3(tets [][4]int32, tetStart, tetList []int32, x, y, z []float64, v int32) float64 {
	a, b := tetStart[v], tetStart[v+1]
	if a == b {
		return 0
	}
	var s float64
	for _, t := range tetList[a:b] {
		tv := tets[t]
		pa := geom.Point3{X: x[tv[0]], Y: y[tv[0]], Z: z[tv[0]]}
		pb := geom.Point3{X: x[tv[1]], Y: y[tv[1]], Z: z[tv[1]]}
		pc := geom.Point3{X: x[tv[2]], Y: y[tv[2]], Z: z[tv[2]]}
		pd := geom.Point3{X: x[tv[3]], Y: y[tv[3]], Z: z[tv[3]]}
		q := 0.0
		if vol6 := geom.Orient3DValue(pa, pb, pc, pd); vol6 > 0 {
			ss := pa.Dist2(pb) + pa.Dist2(pc) + pa.Dist2(pd) + pb.Dist2(pc) + pb.Dist2(pd) + pc.Dist2(pd)
			if ss != 0 {
				// vol6 is 6V, so 3V = vol6/2 (matching MeanRatio3.Tet).
				q = 12 * math.Cbrt((vol6/2)*(vol6/2)) / ss
			}
		}
		s += q
	}
	return s / float64(b-a)
}

// sweepInPlaceSmart3 is SmartKernel3.Update (with the MeanRatio3 metric)
// inlined over the whole visit sequence; the 3D twin of sweepInPlaceSmart.
func sweepInPlaceSmart3(tets [][4]int32, tetStart, tetList, adjStart, adjList []int32, x, y, z []float64, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		before := tetQualityMR3(tets, tetStart, tetList, x, y, z, v)
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy, sz float64
		for _, w := range adjList[lo:hi] {
			sx += x[w]
			sy += y[w]
			sz += z[w]
		}
		n := float64(hi - lo)
		oldX, oldY, oldZ := x[v], y[v], z[v]
		x[v], y[v], z[v] = sx/n, sy/n, sz/n
		if tetQualityMR3(tets, tetStart, tetList, x, y, z, v) < before {
			x[v], y[v], z[v] = oldX, oldY, oldZ // reject the move
		}
		acc += int64(hi-lo) + 1
	}
	return acc
}
