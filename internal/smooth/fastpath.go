package smooth

import "lams/internal/geom"

// Monomorphic sweep loops for the built-in Jacobi kernels. The generic
// sweep body pays an interface dispatch per vertex (kern.Update), which
// blocks inlining of the ~10-flop Laplacian update and forces the mesh's
// CSR base pointers to be reloaded on every call. These specializations
// inline the whole update into one loop over the chunk: the AdjStart
// bounds are read once per vertex, the adjacency is walked as a direct
// sub-slice, and the coordinate arrays stay in registers.
//
// Every loop replays its kernel's Update arithmetic operation-for-operation
// (the same additions in the same order, the same reciprocal-vs-division
// form), so the committed coordinates are bit-identical to the interface
// path — the property the fast-path equivalence suite pins. The access
// accounting ((degree + 1) per vertex) is identical too.
//
// The mesh parameters come in as the raw CSR arrays rather than the mesh so
// the 2D and 3D engines share the shape; each function returns the chunk's
// access count.

// sweepChunkPlain is PlainKernel.Update inlined over a chunk.
func sweepChunkPlain(adjStart, adjList []int32, coords, next []geom.Point, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy float64
		for _, w := range adjList[lo:hi] {
			p := coords[w]
			sx += p.X
			sy += p.Y
		}
		inv := 1 / float64(hi-lo)
		next[v] = geom.Point{X: sx * inv, Y: sy * inv}
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkWeighted is WeightedKernel.Update inlined over a chunk.
func sweepChunkWeighted(adjStart, adjList []int32, coords, next []geom.Point, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		cur := coords[v]
		var sx, sy, wsum float64
		for _, w := range adjList[lo:hi] {
			p := coords[w]
			d := cur.Dist(p)
			wt := 1.0
			if d > 0 {
				wt = 1 / d
			}
			sx += wt * p.X
			sy += wt * p.Y
			wsum += wt
		}
		if wsum == 0 {
			next[v] = cur
		} else {
			next[v] = geom.Point{X: sx / wsum, Y: sy / wsum}
		}
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkConstrained is ConstrainedKernel.Update inlined over a chunk
// (note the division form of the Eq. (1) target, matching plainDivTarget).
func sweepChunkConstrained(adjStart, adjList []int32, coords, next []geom.Point, visit []int32, maxDisplacement float64) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy float64
		for _, w := range adjList[lo:hi] {
			p := coords[w]
			sx += p.X
			sy += p.Y
		}
		n := float64(hi - lo)
		target := geom.Point{X: sx / n, Y: sy / n}
		cur := coords[v]
		d := target.Sub(cur)
		if norm := d.Norm(); norm > maxDisplacement {
			target = cur.Add(d.Scale(maxDisplacement / norm))
		}
		next[v] = target
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkPlain3 is PlainKernel3.Update inlined over a chunk.
func sweepChunkPlain3(adjStart, adjList []int32, coords, next []geom.Point3, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy, sz float64
		for _, w := range adjList[lo:hi] {
			p := coords[w]
			sx += p.X
			sy += p.Y
			sz += p.Z
		}
		inv := 1 / float64(hi-lo)
		next[v] = geom.Point3{X: sx * inv, Y: sy * inv, Z: sz * inv}
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkWeighted3 is WeightedKernel3.Update inlined over a chunk.
func sweepChunkWeighted3(adjStart, adjList []int32, coords, next []geom.Point3, visit []int32) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		cur := coords[v]
		var sx, sy, sz, wsum float64
		for _, w := range adjList[lo:hi] {
			p := coords[w]
			d := cur.Dist(p)
			wt := 1.0
			if d > 0 {
				wt = 1 / d
			}
			sx += wt * p.X
			sy += wt * p.Y
			sz += wt * p.Z
			wsum += wt
		}
		if wsum == 0 {
			next[v] = cur
		} else {
			next[v] = geom.Point3{X: sx / wsum, Y: sy / wsum, Z: sz / wsum}
		}
		acc += int64(hi-lo) + 1
	}
	return acc
}

// sweepChunkConstrained3 is ConstrainedKernel3.Update inlined over a chunk.
func sweepChunkConstrained3(adjStart, adjList []int32, coords, next []geom.Point3, visit []int32, maxDisplacement float64) int64 {
	var acc int64
	for _, v := range visit {
		lo, hi := adjStart[v], adjStart[v+1]
		var sx, sy, sz float64
		for _, w := range adjList[lo:hi] {
			p := coords[w]
			sx += p.X
			sy += p.Y
			sz += p.Z
		}
		n := float64(hi - lo)
		target := geom.Point3{X: sx / n, Y: sy / n, Z: sz / n}
		cur := coords[v]
		d := target.Sub(cur)
		if norm := d.Norm(); norm > maxDisplacement {
			target = cur.Add(d.Scale(maxDisplacement / norm))
		}
		next[v] = target
		acc += int64(hi-lo) + 1
	}
	return acc
}
