package smooth

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/parallel"
)

// scheduleWorkerCounts is the worker-count axis of the equivalence harness:
// serial, the small powers of two, and an oversubscribed 16 (more workers
// than the host has cores, so dynamic schedules interleave heavily).
var scheduleWorkerCounts = []int{1, 2, 4, 8, 16}

// TestScheduleEquivalence is the cross-schedule equivalence harness: for
// every registered schedule, every worker count, and both traversals, a
// multi-iteration Jacobi run must produce bit-identical coordinates — and
// identical Result accounting — to the serial static reference. This is the
// guarantee that lets lamsd expose ?schedule= at all: dynamic scheduling
// can change which worker computes a vertex, never what it computes,
// because every schedule hands out each visit index exactly once and the
// Jacobi commit is a serial pass over the same next buffer.
func TestScheduleEquivalence(t *testing.T) {
	base := genMesh(t, 3000)
	const iters = 5

	for _, traversal := range []Traversal{QualityGreedy, StorageOrder} {
		ref := base.Clone()
		refRes, err := Run(ref, Options{MaxIters: iters, Tol: -1, Traversal: traversal})
		if err != nil {
			t.Fatal(err)
		}
		for _, schedule := range parallel.Schedules() {
			for _, workers := range scheduleWorkerCounts {
				name := fmt.Sprintf("%s/%s/workers=%d", traversal, schedule, workers)
				t.Run(name, func(t *testing.T) {
					got := base.Clone()
					res, err := Run(got, Options{
						MaxIters:  iters,
						Tol:       -1,
						Traversal: traversal,
						Workers:   workers,
						Schedule:  schedule,
					})
					if err != nil {
						t.Fatal(err)
					}
					coordsEqual(t, name, got, ref)
					if res.Iterations != refRes.Iterations {
						t.Errorf("iterations = %d, want %d", res.Iterations, refRes.Iterations)
					}
					if res.Accesses != refRes.Accesses {
						t.Errorf("accesses = %d, want %d (some vertex was skipped or double-visited)",
							res.Accesses, refRes.Accesses)
					}
					if res.FinalQuality != refRes.FinalQuality {
						t.Errorf("final quality = %v, want bit-identical %v", res.FinalQuality, refRes.FinalQuality)
					}
				})
			}
		}
	}
}

// TestScheduleEquivalenceTinyMeshes pushes the degenerate shapes through
// every schedule: fewer interior vertices than workers, a single interior
// vertex, and worker counts that do not divide the visit count. The static
// split leaves empty trailing chunks and the stealing deques start empty —
// the exactly-once contract must hold regardless.
func TestScheduleEquivalenceTinyMeshes(t *testing.T) {
	for _, verts := range []int{40, 120} {
		base := genMesh(t, verts)
		ref := base.Clone()
		refRes, err := Run(ref, Options{MaxIters: 3, Tol: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, schedule := range parallel.Schedules() {
			for _, workers := range []int{3, 16} {
				t.Run(fmt.Sprintf("verts=%d/%s/workers=%d", verts, schedule, workers), func(t *testing.T) {
					got := base.Clone()
					res, err := Run(got, Options{MaxIters: 3, Tol: -1, Workers: workers, Schedule: schedule})
					if err != nil {
						t.Fatal(err)
					}
					coordsEqual(t, schedule, got, ref)
					if res.Accesses != refRes.Accesses {
						t.Errorf("accesses = %d, want %d", res.Accesses, refRes.Accesses)
					}
				})
			}
		}
	}
}

// TestSmootherScheduleSwitch reuses one engine across schedules — the lamsd
// pool does exactly this when a client varies ?schedule= — and checks each
// run still matches a fresh engine bit-for-bit: switching schedules must
// re-resolve the scheduler without leaking the previous one's scratch into
// the results.
func TestSmootherScheduleSwitch(t *testing.T) {
	base := genMesh(t, 1500)
	s := NewSmoother()
	ctx := context.Background()
	sequence := append(parallel.Schedules(), parallel.Schedules()...)
	for i, schedule := range sequence {
		reused := base.Clone()
		fresh := base.Clone()
		opt := Options{MaxIters: 3, Tol: -1, Workers: 4, Schedule: schedule}
		if _, err := s.Run(ctx, reused, opt); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(fresh, opt); err != nil {
			t.Fatal(err)
		}
		coordsEqual(t, fmt.Sprintf("switch %d (%s)", i, schedule), reused, fresh)
	}
}

// TestScheduleUnknownName verifies the engine rejects an unregistered
// schedule up front, naming the registered ones, and leaves the mesh
// untouched.
func TestScheduleUnknownName(t *testing.T) {
	m := genMesh(t, 300)
	before := m.Clone()
	_, err := Run(m, Options{MaxIters: 2, Tol: -1, Workers: 2, Schedule: "round-robin"})
	if err == nil {
		t.Fatal("unknown schedule accepted")
	}
	for _, want := range []string{"round-robin", "static", "guided", "stealing"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	coordsEqual(t, "untouched", m, before)
}

// TestScheduleCancellationNoPartialCommit cancels mid-sweep under each
// dynamic schedule: the run must return ctx.Err() and the mesh must hold
// the last completed sweep, never a torn one (the same contract the static
// path already honors).
func TestScheduleCancellationNoPartialCommit(t *testing.T) {
	for _, schedule := range parallel.Schedules() {
		t.Run(schedule, func(t *testing.T) {
			m := genMesh(t, 1000)
			before := m.Clone()
			ctx, cancel := context.WithCancel(context.Background())
			kern := concurrentCancelKernel{after: 50, calls: new(atomic.Int64), cancel: cancel}
			res, err := NewSmoother().Run(ctx, m, Options{
				MaxIters: 10, Tol: -1, Workers: 4, Schedule: schedule, Kernel: kern,
			})
			if err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res.Iterations != 0 {
				t.Errorf("committed %d iterations after a first-sweep cancellation", res.Iterations)
			}
			coordsEqual(t, "no partial commit", m, before)
		})
	}
}

// concurrentCancelKernel cancels the context after a fixed number of
// updates, like engine_test.go's cancelingKernel, but with an atomic
// counter: these tests run it under Workers > 1, where every schedule
// calls Update from several goroutines at once (Add returns each count
// exactly once, so the cancel fires exactly once too).
type concurrentCancelKernel struct {
	after  int64
	calls  *atomic.Int64
	cancel context.CancelFunc
}

func (k concurrentCancelKernel) Name() string  { return "concurrent-cancel" }
func (k concurrentCancelKernel) InPlace() bool { return false }

func (k concurrentCancelKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	if k.calls.Add(1) == k.after {
		k.cancel()
	}
	return PlainKernel{}.Update(m, v)
}

// TestScheduleSteadyStateAllocs pins the near-zero-alloc property the
// schedules promise: after warmup, a storage-order sweep stays within the
// handful of request-scoped allocations (the sweep closure, the quality
// history) for every schedule — the scheduler's own machinery (goroutine
// fan-out, deques, cursors) must come from reused scratch. The bound is
// deliberately loose enough for -race builds; BenchmarkSweepSchedules
// reports the exact steady-state numbers.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	base := genMesh(t, 4000)
	ctx := context.Background()
	for _, schedule := range parallel.Schedules() {
		t.Run(schedule, func(t *testing.T) {
			m := base.Clone()
			s := NewSmoother()
			opt := Options{MaxIters: 1, Tol: -1, Traversal: StorageOrder, Workers: 8, Schedule: schedule}
			if _, err := s.Run(ctx, m, opt); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := s.Run(ctx, m, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 8 {
				t.Errorf("schedule %s: %.0f allocs per steady-state sweep, want <= 8", schedule, allocs)
			}
		})
	}
}
