package smooth

import (
	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

// Kernel3 is the per-vertex update rule of a 3D smoothing sweep — the
// tetrahedral counterpart of Kernel. The engine owns everything else
// (traversal, chunking, tracing, Jacobi buffering, convergence), so the 3D
// smoothing variants are these four kernels and nothing more.
type Kernel3 interface {
	// Name identifies the kernel in reports.
	Name() string
	// InPlace reports whether the kernel must observe its own writes within
	// a sweep (Gauss–Seidel style); see Kernel.InPlace.
	InPlace() bool
	// Update computes the new position of vertex v from the mesh's current
	// coordinates. It must only read m.Coords at v and v's neighbors (plus,
	// for in-place kernels, write m.Coords[v]).
	Update(m *mesh.TetMesh, v int32) geom.Point3
}

// PlainKernel3 is Eq. (1) in 3D: move the vertex to the unweighted average
// of its neighbors.
type PlainKernel3 struct{}

// Name implements Kernel3.
func (PlainKernel3) Name() string { return "plain" }

// InPlace implements Kernel3.
func (PlainKernel3) InPlace() bool { return false }

// Update implements Kernel3.
func (PlainKernel3) Update(m *mesh.TetMesh, v int32) geom.Point3 {
	nbrs := m.Neighbors(v)
	var sx, sy, sz float64
	for _, w := range nbrs {
		p := m.Coords[w]
		sx += p.X
		sy += p.Y
		sz += p.Z
	}
	inv := 1 / float64(len(nbrs))
	return geom.Point3{X: sx * inv, Y: sy * inv, Z: sz * inv}
}

// plainDivTarget3 is the Eq. (1) target in division form, mirroring the 2D
// variants' historical arithmetic (numerically equivalent to, but not
// bit-identical with, PlainKernel3's multiply-by-reciprocal form).
func plainDivTarget3(m *mesh.TetMesh, v int32) geom.Point3 {
	nbrs := m.Neighbors(v)
	var sx, sy, sz float64
	for _, w := range nbrs {
		p := m.Coords[w]
		sx += p.X
		sy += p.Y
		sz += p.Z
	}
	n := float64(len(nbrs))
	return geom.Point3{X: sx / n, Y: sy / n, Z: sz / n}
}

// SmartKernel3 computes the Eq. (1) position but keeps the move only when it
// does not decrease the vertex's local quality. Its accept test must see the
// candidate applied, so it runs in place (serial).
type SmartKernel3 struct {
	// Metric is the local quality metric (default quality.MeanRatio3{}).
	Metric quality.TetMetric
}

// Name implements Kernel3.
func (SmartKernel3) Name() string { return "smart" }

// InPlace implements Kernel3.
func (SmartKernel3) InPlace() bool { return true }

// Update implements Kernel3. The engine resolves a nil Metric to the
// default once per run (Options3.withDefaults), so on the engine path the
// fallback below never branches; it remains for direct callers of Update.
func (k SmartKernel3) Update(m *mesh.TetMesh, v int32) geom.Point3 {
	met := k.Metric
	if met == nil {
		met = quality.MeanRatio3{}
	}
	before := quality.TetVertexQuality(m, met, v)
	old := m.Coords[v]
	m.Coords[v] = plainDivTarget3(m, v)
	if quality.TetVertexQuality(m, met, v) < before {
		m.Coords[v] = old // reject the move
	}
	return m.Coords[v]
}

// WeightedKernel3 averages neighbors with inverse-edge-length weights,
// pulling vertices toward close neighbors more gently.
type WeightedKernel3 struct{}

// Name implements Kernel3.
func (WeightedKernel3) Name() string { return "weighted" }

// InPlace implements Kernel3.
func (WeightedKernel3) InPlace() bool { return false }

// Update implements Kernel3.
func (WeightedKernel3) Update(m *mesh.TetMesh, v int32) geom.Point3 {
	cur := m.Coords[v]
	var sx, sy, sz, wsum float64
	for _, w := range m.Neighbors(v) {
		p := m.Coords[w]
		d := cur.Dist(p)
		wt := 1.0
		if d > 0 {
			wt = 1 / d
		}
		sx += wt * p.X
		sy += wt * p.Y
		sz += wt * p.Z
		wsum += wt
	}
	if wsum == 0 {
		return cur
	}
	return geom.Point3{X: sx / wsum, Y: sy / wsum, Z: sz / wsum}
}

// ConstrainedKernel3 is the plain update with the per-sweep displacement
// clamped to MaxDisplacement.
type ConstrainedKernel3 struct {
	// MaxDisplacement bounds each per-sweep move (must be > 0).
	MaxDisplacement float64
}

// Name implements Kernel3.
func (ConstrainedKernel3) Name() string { return "constrained" }

// InPlace implements Kernel3.
func (ConstrainedKernel3) InPlace() bool { return false }

// Update implements Kernel3.
func (k ConstrainedKernel3) Update(m *mesh.TetMesh, v int32) geom.Point3 {
	cur := m.Coords[v]
	target := plainDivTarget3(m, v)
	d := target.Sub(cur)
	if norm := d.Norm(); norm > k.MaxDisplacement {
		target = cur.Add(d.Scale(k.MaxDisplacement / norm))
	}
	return target
}
