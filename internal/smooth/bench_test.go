package smooth

import (
	"context"
	"fmt"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/quality"
)

// benchMeshVerts is the mid-size mesh the sweep benchmarks run on — large
// enough that memory layout matters, small enough for quick iteration.
const benchMeshVerts = 20000

func benchMesh(b *testing.B) *mesh.Mesh {
	b.Helper()
	m, err := mesh.Generate("carabiner", benchMeshVerts)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkSweepPerOrdering measures one storage-order Jacobi sweep of the
// unified engine per vertex ordering: ns/op exposes each layout's locality,
// and allocs/op shows the engine's steady-state buffer reuse (the visit and
// next arrays are allocated once per Smoother, not once per run).
func BenchmarkSweepPerOrdering(b *testing.B) {
	base := benchMesh(b)
	vq := quality.VertexQualities(base, quality.EdgeRatio{})
	ctx := context.Background()
	for _, name := range []string{"ORI", "RANDOM", "BFS", "RCM", "HILBERT", "RDR"} {
		ord, err := order.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		perm, err := ord.Compute(base, vq)
		if err != nil {
			b.Fatal(err)
		}
		rm, err := base.Renumber(perm)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			m := rm.Clone()
			s := NewSmoother()
			opt := Options{MaxIters: 1, Tol: -1, Traversal: StorageOrder}
			if _, err := s.Run(ctx, m, opt); err != nil { // warm the buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(ctx, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepWorkers measures the parallel Jacobi sweep at several
// worker counts on the RDR-ordered mesh.
func BenchmarkSweepWorkers(b *testing.B) {
	base := benchMesh(b)
	vq := quality.VertexQualities(base, quality.EdgeRatio{})
	ord, err := order.ByName("RDR")
	if err != nil {
		b.Fatal(err)
	}
	perm, err := ord.Compute(base, vq)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := base.Renumber(perm)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := rm.Clone()
			s := NewSmoother()
			opt := Options{MaxIters: 1, Tol: -1, Traversal: StorageOrder, Workers: workers}
			if _, err := s.Run(ctx, m, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(ctx, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// skewedBenchKernel models the irregular meshes the schedules exist for:
// the vertices in the leading hot fraction of the array cost ~16x a plain
// update (think a refinement region packed together by a locality
// ordering). Under the static schedule the workers owning the hot chunks
// straggle while the rest idle; guided and stealing redistribute the tail.
// The kernel stays Jacobi-pure, so results remain bit-identical — only the
// load profile is skewed.
type skewedBenchKernel struct {
	hot   int32
	inner PlainKernel
}

func (k skewedBenchKernel) Name() string  { return "skewed" }
func (k skewedBenchKernel) InPlace() bool { return false }

func (k skewedBenchKernel) Update(m *mesh.Mesh, v int32) geom.Point {
	p := k.inner.Update(m, v)
	if v < k.hot {
		for i := 0; i < 15; i++ {
			p = k.inner.Update(m, v)
		}
	}
	return p
}

// BenchmarkSweepSchedules compares the registered chunk schedules across
// worker counts on two workloads: uniform (every vertex costs the same —
// static's best case, any scheduling overhead shows up directly) and skewed
// (a 16x-hot leading quarter — static straggles and the dynamic schedules'
// balance pays). ns/op is the locality-vs-balance tradeoff as a measured
// number; allocs/op is the steady-state scratch-reuse guarantee (engine and
// scheduler buffers were grown by the warmup run, so every schedule must
// stay within the few request-scoped allocations).
func BenchmarkSweepSchedules(b *testing.B) {
	base := benchMesh(b)
	ctx := context.Background()
	workloads := []struct {
		name string
		kern Kernel
	}{
		{"uniform", PlainKernel{}},
		{"skewed", skewedBenchKernel{hot: int32(len(base.Coords) / 4)}},
	}
	for _, wl := range workloads {
		for _, schedule := range parallel.Schedules() {
			for _, workers := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/workers=%d", wl.name, schedule, workers), func(b *testing.B) {
					m := base.Clone()
					s := NewSmoother()
					opt := Options{
						MaxIters: 1, Tol: -1, Traversal: StorageOrder,
						Workers: workers, Schedule: schedule, Kernel: wl.kern,
					}
					if _, err := s.Run(ctx, m, opt); err != nil { // warm engine + scheduler scratch
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := s.Run(ctx, m, opt); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// convergedBenchVerts is the 512x512-grid-equivalent mesh size of the full
// converge-loop benchmark (the acceptance workload of the measurement
// parallelization): large enough that the per-iteration quality pass is a
// real fraction of the sweep, matching the paper's mesh magnitudes.
const convergedBenchVerts = 262144

// BenchmarkRunConverged measures the FULL convergence loop — sweep plus
// global quality measurement per iteration, the whole of Algorithm 1 — not
// just one sweep, across worker counts and both engine paths: the generic
// interface-dispatch path with the serial measurement pass (iface, the
// pre-fast-path baseline), and the monomorphic kernel/metric loops with the
// parallel ordered quality reduction (fast). The iface/fast gap at high
// worker counts is the Amdahl bottleneck the measurement parallelization
// removes; results are bit-identical between all cells by construction.
func BenchmarkRunConverged(b *testing.B) {
	base, err := mesh.Generate("carabiner", convergedBenchVerts)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, path := range []struct {
		name   string
		noFast bool
	}{{"iface", true}, {"fast", false}} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("path=%s/workers=%d", path.name, workers), func(b *testing.B) {
				m := base.Clone()
				s := NewSmoother()
				opt := Options{
					MaxIters: 10, Tol: -1, Traversal: StorageOrder,
					Workers: workers, NoFastPath: path.noFast,
				}
				if _, err := s.Run(ctx, m, opt); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Run(ctx, m, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRunSmart measures the smart-kernel convergence loop on both
// engine paths: iface is the generic in-place sweep (an interface dispatch
// into SmartKernel.Update, which itself dispatches the metric per incident
// triangle) with the serial measurement pass; fast is the monomorphic SoA
// accept-test sweep with the parallel reduction. The sweep is serial either
// way (in-place semantics), so the gap is pure devirtualization plus the
// measurement parallelism.
func BenchmarkRunSmart(b *testing.B) {
	base := benchMesh(b)
	ctx := context.Background()
	for _, path := range []struct {
		name   string
		noFast bool
	}{{"iface", true}, {"fast", false}} {
		b.Run(fmt.Sprintf("path=%s", path.name), func(b *testing.B) {
			m := base.Clone()
			s := NewSmoother()
			opt := Options{
				MaxIters: 4, Tol: -1, Traversal: StorageOrder,
				Kernel: SmartKernel{}, NoFastPath: path.noFast,
			}
			if _, err := s.Run(ctx, m, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(ctx, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepKernels measures one sweep per update kernel, all through
// the same engine path.
func BenchmarkSweepKernels(b *testing.B) {
	base := benchMesh(b)
	kernels := []Kernel{PlainKernel{}, SmartKernel{}, WeightedKernel{}, ConstrainedKernel{MaxDisplacement: 0.05}}
	ctx := context.Background()
	for _, kern := range kernels {
		b.Run(kern.Name(), func(b *testing.B) {
			m := base.Clone()
			s := NewSmoother()
			opt := Options{MaxIters: 1, Tol: -1, Traversal: StorageOrder, Kernel: kern}
			if _, err := s.Run(ctx, m, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(ctx, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSmootherFreshVsReused quantifies the scratch-buffer win: a fresh
// engine per run reallocates the next-coordinate array every time, a held
// Smoother does not.
func BenchmarkSmootherFreshVsReused(b *testing.B) {
	base := benchMesh(b)
	ctx := context.Background()
	opt := Options{MaxIters: 1, Tol: -1, Traversal: StorageOrder}
	b.Run("fresh", func(b *testing.B) {
		m := base.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := NewSmoother().Run(ctx, m, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		m := base.Clone()
		s := NewSmoother()
		if _, err := s.Run(ctx, m, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(ctx, m, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
