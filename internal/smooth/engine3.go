package smooth

import (
	"context"
	"fmt"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/quality"
	"lams/internal/trace"
)

// Options3 configures a 3D smoothing run. The zero value means: mean-ratio
// metric, tolerance DefaultTol, at most 100 iterations, one worker,
// quality-greedy traversal, Jacobi updates, no tracing — the same defaults
// as the 2D Options, with the metric swapped for its tetrahedral
// counterpart. The shared fields carry the exact semantics documented on
// Options.
type Options3 struct {
	// Metric is the tet quality metric (default quality.MeanRatio3{}).
	Metric quality.TetMetric
	// Tol stops the run when an iteration improves global quality by less
	// than this amount (default DefaultTol); negative disables the criterion.
	Tol float64
	// GoalQuality stops the run once global quality reaches it (default 1).
	GoalQuality float64
	// MaxIters caps the iteration count (default 100).
	MaxIters int
	// Workers is the number of parallel workers (default 1).
	Workers int
	// Schedule names the registered chunk schedule distributing the visit
	// sequence across workers; see Options.Schedule. Jacobi updates make the
	// numerical result bit-identical under every schedule.
	Schedule string
	// Traversal selects the visit order (default QualityGreedy).
	Traversal Traversal
	// Kernel is the per-vertex update rule (default PlainKernel3{}).
	Kernel Kernel3
	// GaussSeidel selects in-place updates for a Jacobi-style kernel. The
	// in-place sweep is serial at any worker count; Workers > 1
	// parallelizes the quality measurements.
	GaussSeidel bool
	// CheckEvery measures global quality every CheckEvery-th sweep instead
	// of after every sweep (default 1); see Options.CheckEvery.
	CheckEvery int
	// Partitions > 1 decomposes the mesh and runs one engine per
	// partition with per-sweep halo exchange; see Options.Partitions.
	Partitions int
	// Partitioner names the decomposition strategy; see Options.Partitioner.
	Partitioner string
	// NoFastPath forces the generic interface-dispatch sweep body and the
	// serial interface-dispatch quality pass; see Options.NoFastPath.
	NoFastPath bool
	// Progress, when non-nil, observes the measured iterations live; see
	// Options.Progress.
	Progress func(iteration int, quality float64)
	// Trace, when non-nil, records every vertex-array access on the
	// worker's stream; the buffer must have at least Workers cores.
	Trace *trace.Buffer
}

func (o Options3) withDefaults() Options3 {
	if o.Metric == nil {
		o.Metric = quality.MeanRatio3{}
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.GoalQuality == 0 {
		o.GoalQuality = 1
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 1
	}
	// Resolve SmartKernel3's nil-default metric once here instead of on
	// every vertex visit inside Update; see Options.withDefaults.
	if sk, ok := o.Kernel.(SmartKernel3); ok && sk.Metric == nil {
		o.Kernel = SmartKernel3{Metric: quality.MeanRatio3{}}
	}
	return o
}

// Smoother3 is the tetrahedral sweep engine: the same convergence loop,
// Jacobi buffering, chunk scheduling, and tracing as the 2D Smoother, run
// over a TetMesh with a Kernel3. It owns reusable scratch buffers exactly
// like its 2D sibling; the zero value is ready to use and not safe for
// concurrent use.
type Smoother3 struct {
	visit  []int32
	next   []geom.Point3
	counts []int64
	qs     quality.Scratch

	// Structure-of-arrays mirrors of the coordinate and Jacobi scratch
	// buffers; see the Smoother fields of the same names.
	cx, cy, cz []float64
	nx, ny, nz []float64

	sched     parallel.Scheduler
	schedName string
}

// NewSmoother3 returns an empty 3D engine whose scratch buffers grow on
// first use and are reused by subsequent runs.
func NewSmoother3() *Smoother3 { return &Smoother3{} }

// Reset releases the engine's scratch buffers, returning it to its zero
// state; see Smoother.Reset.
func (s *Smoother3) Reset() { *s = Smoother3{} }

// Run smooths the tetrahedral mesh in place and returns the run statistics.
// The context cancels between iterations and between worker chunks with the
// same no-torn-sweep guarantee as the 2D engine.
func (s *Smoother3) Run(ctx context.Context, m *mesh.TetMesh, opt Options3) (Result, error) {
	opt = opt.withDefaults()
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("smooth: workers must be >= 1, got %d", opt.Workers)
	}
	if opt.CheckEvery < 1 {
		return Result{}, fmt.Errorf("smooth: check-every must be >= 1, got %d", opt.CheckEvery)
	}
	if opt.Partitions > 1 {
		return Result{}, fmt.Errorf("smooth: Smoother3 is a single engine; partitions=%d needs RunPartitioned3 or a PartitionedSmoother3", opt.Partitions)
	}
	kern := opt.Kernel
	if kern == nil {
		kern = PlainKernel3{}
	}
	// In-place sweeps run serially regardless of Workers; see Smoother.Run.
	inPlace := opt.GaussSeidel || kern.InPlace()
	if opt.Trace != nil && opt.Trace.NumCores() < opt.Workers {
		return Result{}, fmt.Errorf("smooth: trace buffer has %d cores, need %d", opt.Trace.NumCores(), opt.Workers)
	}

	if err := s.resolveScheduler(opt.Schedule); err != nil {
		return Result{}, err
	}

	// Measurement configuration; see Smoother.Run.
	met := opt.Metric
	qworkers, qsched := opt.Workers, s.sched
	if opt.NoFastPath {
		met = quality.BoxTetMetric(met)
		qworkers, qsched = 1, nil
	}

	visit, err := s.visitSequence(ctx, m, opt, met, qworkers, qsched)
	if err != nil {
		return Result{}, err
	}

	// SoA pack/commit bracket; see Smoother.Run.
	soa := s.soaEligible(kern, opt)
	var next []geom.Point3
	if soa {
		s.packCoords(m, !inPlace)
		defer s.commitCoords(m)
	} else if !inPlace {
		next = s.nextBuffer(len(m.Coords))
	}

	q0, err := s.measure(ctx, m, met, qworkers, qsched, soa)
	if err != nil {
		return Result{}, err
	}
	res := Result{InitialQuality: q0}
	res.FinalQuality = res.InitialQuality
	if opt.Progress != nil {
		opt.Progress(0, q0)
	}
	if opt.MaxIters > 0 {
		res.QualityHistory = make([]float64, 0, opt.MaxIters)
	}
	prevQ := res.InitialQuality

	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if prevQ >= opt.GoalQuality {
			break
		}
		acc, err := s.sweep(ctx, m, kern, inPlace, soa, visit, next, opt)
		res.Accesses += acc
		if err != nil {
			return res, err
		}
		if opt.Trace != nil {
			opt.Trace.EndIteration()
		}
		res.Iterations++
		if res.Iterations%opt.CheckEvery != 0 && iter != opt.MaxIters-1 {
			continue
		}

		q, err := s.measure(ctx, m, met, qworkers, qsched, soa)
		if err != nil {
			return res, err
		}
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if opt.Progress != nil {
			opt.Progress(res.Iterations, q)
		}
		if q-prevQ < opt.Tol {
			break
		}
		prevQ = q
	}
	return res, nil
}

// soaEligible reports whether the run can operate on the SoA coordinate
// mirrors; the 3D twin of Smoother.soaEligible (the smart kernel qualifies
// with the MeanRatio3 accept metric).
func (s *Smoother3) soaEligible(kern Kernel3, opt Options3) bool {
	if opt.Trace != nil || opt.NoFastPath {
		return false
	}
	switch k := kern.(type) {
	case PlainKernel3, WeightedKernel3, ConstrainedKernel3:
		return !opt.GaussSeidel
	case SmartKernel3:
		_, ok := k.Metric.(quality.MeanRatio3)
		return ok
	}
	return false
}

// packCoords fills the SoA mirrors from m.Coords; see Smoother.packCoords.
func (s *Smoother3) packCoords(m *mesh.TetMesh, jacobi bool) {
	n := len(m.Coords)
	s.cx, s.cy, s.cz = growFloats(s.cx, n), growFloats(s.cy, n), growFloats(s.cz, n)
	for i, p := range m.Coords {
		s.cx[i], s.cy[i], s.cz[i] = p.X, p.Y, p.Z
	}
	if jacobi {
		s.nx, s.ny, s.nz = growFloats(s.nx, n), growFloats(s.ny, n), growFloats(s.nz, n)
	}
}

// commitCoords writes the SoA mirrors back to m.Coords; the inverse of
// packCoords.
func (s *Smoother3) commitCoords(m *mesh.TetMesh) {
	for i := range m.Coords {
		m.Coords[i] = geom.Point3{X: s.cx[i], Y: s.cy[i], Z: s.cz[i]}
	}
}

// measure returns the global quality of the current coordinates; see
// Smoother.measure (the SoA pass devirtualizes MeanRatio3 in 3D).
func (s *Smoother3) measure(ctx context.Context, m *mesh.TetMesh, met quality.TetMetric, qworkers int, qsched parallel.Scheduler, soa bool) (float64, error) {
	if soa {
		if _, ok := met.(quality.MeanRatio3); ok {
			return s.qs.TetGlobalParallelSoA(ctx, m, s.cx, s.cy, s.cz, qworkers, qsched)
		}
		s.commitCoords(m)
	}
	return s.qs.TetGlobalParallel(ctx, m, met, qworkers, qsched)
}

// sweep performs one iteration with the given kernel; see Smoother.sweep —
// the structure (Jacobi next-buffer, scheduler-distributed chunks, serial
// commit, cancellation without partial commit) is identical.
func (s *Smoother3) sweep(ctx context.Context, m *mesh.TetMesh, kern Kernel3, inPlace, soa bool, visit []int32, next []geom.Point3, opt Options3) (int64, error) {
	tb := opt.Trace
	if inPlace {
		if soa {
			// Only the smart kernel is both in-place and SoA-eligible.
			return sweepInPlaceSmart3(m.Tets, m.TetStart, m.TetList, m.AdjStart, m.AdjList, s.cx, s.cy, s.cz, visit), nil
		}
		var accesses int64
		for _, v := range visit {
			traceTouch3(tb, 0, m, v)
			m.Coords[v] = kern.Update(m, v)
			accesses += int64(m.Degree(v)) + 1
		}
		return accesses, nil
	}

	counts := s.countsBuffer(opt.Workers)
	var body func(worker int, ch parallel.Chunk)
	if soa {
		body = s.sweepBodySoA(m, kern, visit, counts)
	} else {
		body = s.sweepBody(m, kern, visit, next, counts, opt)
	}
	err := s.sched.Run(ctx, len(visit), opt.Workers, body)
	var accesses int64
	for _, c := range counts {
		accesses += c
	}
	if err != nil {
		// Canceled mid-sweep: do not commit the possibly-incomplete buffer.
		return accesses, err
	}
	if soa {
		cx, cy, cz, nx, ny, nz := s.cx, s.cy, s.cz, s.nx, s.ny, s.nz
		for _, v := range visit {
			cx[v], cy[v], cz[v] = nx[v], ny[v], nz[v]
		}
		return accesses, nil
	}
	for _, v := range visit {
		m.Coords[v] = next[v]
	}
	return accesses, nil
}

// sweepBodySoA selects the monomorphic SoA chunk body for one 3D Jacobi
// sweep; see Smoother.sweepBodySoA.
func (s *Smoother3) sweepBodySoA(m *mesh.TetMesh, kern Kernel3, visit []int32, counts []int64) func(worker int, ch parallel.Chunk) {
	adjStart, adjList := m.AdjStart, m.AdjList
	cx, cy, cz, nx, ny, nz := s.cx, s.cy, s.cz, s.nx, s.ny, s.nz
	switch k := kern.(type) {
	case PlainKernel3:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkPlain3(adjStart, adjList, cx, cy, cz, nx, ny, nz, visit[ch.Lo:ch.Hi])
		}
	case WeightedKernel3:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkWeighted3(adjStart, adjList, cx, cy, cz, nx, ny, nz, visit[ch.Lo:ch.Hi])
		}
	case ConstrainedKernel3:
		return func(w int, ch parallel.Chunk) {
			counts[w] += sweepChunkConstrained3(adjStart, adjList, cx, cy, cz, nx, ny, nz, visit[ch.Lo:ch.Hi], k.MaxDisplacement)
		}
	}
	panic("smooth: sweepBodySoA called with non-fast-path kernel")
}

// sweepBody builds the generic interface-dispatch chunk body for one 3D
// Jacobi sweep; see Smoother.sweepBody.
func (s *Smoother3) sweepBody(m *mesh.TetMesh, kern Kernel3, visit []int32, next []geom.Point3, counts []int64, opt Options3) func(worker int, ch parallel.Chunk) {
	tb := opt.Trace
	return func(w int, ch parallel.Chunk) {
		var acc int64
		for _, v := range visit[ch.Lo:ch.Hi] {
			traceTouch3(tb, w, m, v)
			next[v] = kern.Update(m, v)
			acc += int64(m.Degree(v)) + 1
		}
		counts[w] += acc
	}
}

// traceTouch3 records the access pattern of one vertex update: the smoothed
// vertex, then each of its neighbors.
func traceTouch3(tb *trace.Buffer, core int, m *mesh.TetMesh, v int32) {
	if tb == nil {
		return
	}
	tb.Access(core, v)
	for _, w := range m.Neighbors(v) {
		tb.Access(core, w)
	}
}

// visitSequence returns the interior vertices in visit order. The
// quality-greedy traversal runs order.GreedyWalk over the tet mesh through
// the same Graph view the orderings use; the initial vertex qualities are
// computed with the same (parallel or serial) quality configuration as the
// measurements.
func (s *Smoother3) visitSequence(ctx context.Context, m *mesh.TetMesh, opt Options3, met quality.TetMetric, qworkers int, qsched parallel.Scheduler) ([]int32, error) {
	if opt.Traversal == StorageOrder {
		return m.InteriorVerts, nil
	}
	vq, err := s.qs.TetVertexQualitiesParallel(ctx, m, met, qworkers, qsched)
	if err != nil {
		return nil, err
	}
	w, err := order.GreedyWalk(m, vq, false)
	if err != nil {
		return nil, fmt.Errorf("smooth: computing traversal: %w", err)
	}
	s.visit = s.visit[:0]
	for _, v := range w.Heads {
		if !m.IsBoundary[v] {
			s.visit = append(s.visit, v)
		}
	}
	if len(s.visit) != len(m.InteriorVerts) {
		return nil, fmt.Errorf("smooth: traversal visited %d of %d interior vertices", len(s.visit), len(m.InteriorVerts))
	}
	return s.visit, nil
}

// resolveScheduler caches the chunk scheduler for the named schedule; see
// Smoother.resolveScheduler.
func (s *Smoother3) resolveScheduler(name string) error {
	if name == "" {
		name = parallel.ScheduleStatic
	}
	if s.sched != nil && s.schedName == name {
		return nil
	}
	sched, err := parallel.SchedulerByName(name)
	if err != nil {
		return fmt.Errorf("smooth: %w", err)
	}
	s.sched, s.schedName = sched, name
	return nil
}

// nextBuffer returns a zeroed-or-stale scratch slice of n points; contents
// are fully overwritten before being read.
func (s *Smoother3) nextBuffer(n int) []geom.Point3 {
	if cap(s.next) < n {
		s.next = make([]geom.Point3, n)
	}
	s.next = s.next[:n]
	return s.next
}

// countsBuffer returns a zeroed per-worker access-count slice.
func (s *Smoother3) countsBuffer(n int) []int64 {
	if cap(s.counts) < n {
		s.counts = make([]int64, n)
	}
	s.counts = s.counts[:n]
	for i := range s.counts {
		s.counts[i] = 0
	}
	return s.counts
}

// Run3 smooths the tetrahedral mesh in place with a one-shot engine.
// Callers that smooth repeatedly should hold a Smoother3 (or a
// PartitionedSmoother3) and use its Run method, which reuses the scratch
// buffers across runs.
func Run3(m *mesh.TetMesh, opt Options3) (Result, error) {
	return RunContext3(context.Background(), m, opt)
}

// RunContext3 is Run3 with cancellation. Options with Partitions > 1 route
// to the multi-engine partitioned driver.
func RunContext3(ctx context.Context, m *mesh.TetMesh, opt Options3) (Result, error) {
	if opt.Partitions > 1 {
		return RunPartitioned3(ctx, m, opt)
	}
	return NewSmoother3().Run(ctx, m, opt)
}
