package smooth

import (
	"context"
	"fmt"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/parallel"
	"lams/internal/quality"
	"lams/internal/trace"
)

// Options3 configures a 3D smoothing run. The zero value means: mean-ratio
// metric, tolerance DefaultTol, at most 100 iterations, one worker,
// quality-greedy traversal, Jacobi updates, no tracing — the same defaults
// as the 2D Options, with the metric swapped for its tetrahedral
// counterpart. The shared fields carry the exact semantics documented on
// Options.
type Options3 struct {
	// Metric is the tet quality metric (default quality.MeanRatio3{}).
	Metric quality.TetMetric
	// Tol stops the run when an iteration improves global quality by less
	// than this amount (default DefaultTol); negative disables the criterion.
	Tol float64
	// GoalQuality stops the run once global quality reaches it (default 1).
	GoalQuality float64
	// MaxIters caps the iteration count (default 100).
	MaxIters int
	// Workers is the number of parallel workers (default 1).
	Workers int
	// Schedule names the registered chunk schedule distributing the visit
	// sequence across workers; see Options.Schedule. Jacobi updates make the
	// numerical result bit-identical under every schedule.
	Schedule string
	// Traversal selects the visit order (default QualityGreedy).
	Traversal Traversal
	// Kernel is the per-vertex update rule (default PlainKernel3{}).
	Kernel Kernel3
	// GaussSeidel selects in-place updates for a Jacobi-style kernel. Only
	// valid with Workers == 1.
	GaussSeidel bool
	// CheckEvery measures global quality every CheckEvery-th sweep instead
	// of after every sweep (default 1); see Options.CheckEvery.
	CheckEvery int
	// NoFastPath forces the generic interface-dispatch sweep body and the
	// serial interface-dispatch quality pass; see Options.NoFastPath.
	NoFastPath bool
	// Trace, when non-nil, records every vertex-array access on the
	// worker's stream; the buffer must have at least Workers cores.
	Trace *trace.Buffer
}

func (o Options3) withDefaults() Options3 {
	if o.Metric == nil {
		o.Metric = quality.MeanRatio3{}
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.GoalQuality == 0 {
		o.GoalQuality = 1
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 1
	}
	// Resolve SmartKernel3's nil-default metric once here instead of on
	// every vertex visit inside Update; see Options.withDefaults.
	if sk, ok := o.Kernel.(SmartKernel3); ok && sk.Metric == nil {
		o.Kernel = SmartKernel3{Metric: quality.MeanRatio3{}}
	}
	return o
}

// Smoother3 is the tetrahedral sweep engine: the same convergence loop,
// Jacobi buffering, chunk scheduling, and tracing as the 2D Smoother, run
// over a TetMesh with a Kernel3. It owns reusable scratch buffers exactly
// like its 2D sibling; the zero value is ready to use and not safe for
// concurrent use.
type Smoother3 struct {
	visit  []int32
	next   []geom.Point3
	counts []int64
	qs     quality.Scratch

	sched     parallel.Scheduler
	schedName string
}

// NewSmoother3 returns an empty 3D engine whose scratch buffers grow on
// first use and are reused by subsequent runs.
func NewSmoother3() *Smoother3 { return &Smoother3{} }

// Reset releases the engine's scratch buffers, returning it to its zero
// state; see Smoother.Reset.
func (s *Smoother3) Reset() { *s = Smoother3{} }

// Run smooths the tetrahedral mesh in place and returns the run statistics.
// The context cancels between iterations and between worker chunks with the
// same no-torn-sweep guarantee as the 2D engine.
func (s *Smoother3) Run(ctx context.Context, m *mesh.TetMesh, opt Options3) (Result, error) {
	opt = opt.withDefaults()
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("smooth: workers must be >= 1, got %d", opt.Workers)
	}
	if opt.CheckEvery < 1 {
		return Result{}, fmt.Errorf("smooth: check-every must be >= 1, got %d", opt.CheckEvery)
	}
	kern := opt.Kernel
	if kern == nil {
		kern = PlainKernel3{}
	}
	inPlace := opt.GaussSeidel || kern.InPlace()
	if inPlace && opt.Workers != 1 {
		return Result{}, fmt.Errorf("smooth: in-place (Gauss-Seidel style) updates require a single worker, got %d", opt.Workers)
	}
	if opt.Trace != nil && opt.Trace.NumCores() < opt.Workers {
		return Result{}, fmt.Errorf("smooth: trace buffer has %d cores, need %d", opt.Trace.NumCores(), opt.Workers)
	}

	if err := s.resolveScheduler(opt.Schedule); err != nil {
		return Result{}, err
	}

	// Measurement configuration; see Smoother.Run.
	met := opt.Metric
	qworkers, qsched := opt.Workers, s.sched
	if opt.NoFastPath {
		met = quality.BoxTetMetric(met)
		qworkers, qsched = 1, nil
	}

	visit, err := s.visitSequence(ctx, m, opt, met, qworkers, qsched)
	if err != nil {
		return Result{}, err
	}
	var next []geom.Point3
	if !inPlace {
		next = s.nextBuffer(len(m.Coords))
	}

	q0, err := s.qs.TetGlobalParallel(ctx, m, met, qworkers, qsched)
	if err != nil {
		return Result{}, err
	}
	res := Result{InitialQuality: q0}
	res.FinalQuality = res.InitialQuality
	if opt.MaxIters > 0 {
		res.QualityHistory = make([]float64, 0, opt.MaxIters)
	}
	prevQ := res.InitialQuality

	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if prevQ >= opt.GoalQuality {
			break
		}
		acc, err := s.sweep(ctx, m, kern, inPlace, visit, next, opt)
		res.Accesses += acc
		if err != nil {
			return res, err
		}
		if opt.Trace != nil {
			opt.Trace.EndIteration()
		}
		res.Iterations++
		if res.Iterations%opt.CheckEvery != 0 && iter != opt.MaxIters-1 {
			continue
		}

		q, err := s.qs.TetGlobalParallel(ctx, m, met, qworkers, qsched)
		if err != nil {
			return res, err
		}
		res.QualityHistory = append(res.QualityHistory, q)
		res.FinalQuality = q
		if q-prevQ < opt.Tol {
			break
		}
		prevQ = q
	}
	return res, nil
}

// sweep performs one iteration with the given kernel; see Smoother.sweep —
// the structure (Jacobi next-buffer, scheduler-distributed chunks, serial
// commit, cancellation without partial commit) is identical.
func (s *Smoother3) sweep(ctx context.Context, m *mesh.TetMesh, kern Kernel3, inPlace bool, visit []int32, next []geom.Point3, opt Options3) (int64, error) {
	tb := opt.Trace
	if inPlace {
		var accesses int64
		for _, v := range visit {
			traceTouch3(tb, 0, m, v)
			m.Coords[v] = kern.Update(m, v)
			accesses += int64(m.Degree(v)) + 1
		}
		return accesses, nil
	}

	counts := s.countsBuffer(opt.Workers)
	err := s.sched.Run(ctx, len(visit), opt.Workers, s.sweepBody(m, kern, visit, next, counts, opt))
	var accesses int64
	for _, c := range counts {
		accesses += c
	}
	if err != nil {
		// Canceled mid-sweep: do not commit the possibly-incomplete buffer.
		return accesses, err
	}
	for _, v := range visit {
		m.Coords[v] = next[v]
	}
	return accesses, nil
}

// sweepBody selects the chunk body for one 3D Jacobi sweep; see
// Smoother.sweepBody.
func (s *Smoother3) sweepBody(m *mesh.TetMesh, kern Kernel3, visit []int32, next []geom.Point3, counts []int64, opt Options3) func(worker int, ch parallel.Chunk) {
	if opt.Trace == nil && !opt.NoFastPath {
		adjStart, adjList, coords := m.AdjStart, m.AdjList, m.Coords
		switch k := kern.(type) {
		case PlainKernel3:
			return func(w int, ch parallel.Chunk) {
				counts[w] += sweepChunkPlain3(adjStart, adjList, coords, next, visit[ch.Lo:ch.Hi])
			}
		case WeightedKernel3:
			return func(w int, ch parallel.Chunk) {
				counts[w] += sweepChunkWeighted3(adjStart, adjList, coords, next, visit[ch.Lo:ch.Hi])
			}
		case ConstrainedKernel3:
			return func(w int, ch parallel.Chunk) {
				counts[w] += sweepChunkConstrained3(adjStart, adjList, coords, next, visit[ch.Lo:ch.Hi], k.MaxDisplacement)
			}
		}
	}
	tb := opt.Trace
	return func(w int, ch parallel.Chunk) {
		var acc int64
		for _, v := range visit[ch.Lo:ch.Hi] {
			traceTouch3(tb, w, m, v)
			next[v] = kern.Update(m, v)
			acc += int64(m.Degree(v)) + 1
		}
		counts[w] += acc
	}
}

// traceTouch3 records the access pattern of one vertex update: the smoothed
// vertex, then each of its neighbors.
func traceTouch3(tb *trace.Buffer, core int, m *mesh.TetMesh, v int32) {
	if tb == nil {
		return
	}
	tb.Access(core, v)
	for _, w := range m.Neighbors(v) {
		tb.Access(core, w)
	}
}

// visitSequence returns the interior vertices in visit order. The
// quality-greedy traversal runs order.GreedyWalk over the tet mesh through
// the same Graph view the orderings use; the initial vertex qualities are
// computed with the same (parallel or serial) quality configuration as the
// measurements.
func (s *Smoother3) visitSequence(ctx context.Context, m *mesh.TetMesh, opt Options3, met quality.TetMetric, qworkers int, qsched parallel.Scheduler) ([]int32, error) {
	if opt.Traversal == StorageOrder {
		return m.InteriorVerts, nil
	}
	vq, err := s.qs.TetVertexQualitiesParallel(ctx, m, met, qworkers, qsched)
	if err != nil {
		return nil, err
	}
	w, err := order.GreedyWalk(m, vq, false)
	if err != nil {
		return nil, fmt.Errorf("smooth: computing traversal: %w", err)
	}
	s.visit = s.visit[:0]
	for _, v := range w.Heads {
		if !m.IsBoundary[v] {
			s.visit = append(s.visit, v)
		}
	}
	if len(s.visit) != len(m.InteriorVerts) {
		return nil, fmt.Errorf("smooth: traversal visited %d of %d interior vertices", len(s.visit), len(m.InteriorVerts))
	}
	return s.visit, nil
}

// resolveScheduler caches the chunk scheduler for the named schedule; see
// Smoother.resolveScheduler.
func (s *Smoother3) resolveScheduler(name string) error {
	if name == "" {
		name = parallel.ScheduleStatic
	}
	if s.sched != nil && s.schedName == name {
		return nil
	}
	sched, err := parallel.SchedulerByName(name)
	if err != nil {
		return fmt.Errorf("smooth: %w", err)
	}
	s.sched, s.schedName = sched, name
	return nil
}

// nextBuffer returns a zeroed-or-stale scratch slice of n points; contents
// are fully overwritten before being read.
func (s *Smoother3) nextBuffer(n int) []geom.Point3 {
	if cap(s.next) < n {
		s.next = make([]geom.Point3, n)
	}
	s.next = s.next[:n]
	return s.next
}

// countsBuffer returns a zeroed per-worker access-count slice.
func (s *Smoother3) countsBuffer(n int) []int64 {
	if cap(s.counts) < n {
		s.counts = make([]int64, n)
	}
	s.counts = s.counts[:n]
	for i := range s.counts {
		s.counts[i] = 0
	}
	return s.counts
}

// Run3 smooths the tetrahedral mesh in place with a one-shot engine.
// Callers that smooth repeatedly should hold a Smoother3 and use its Run
// method, which reuses the scratch buffers across runs.
func Run3(m *mesh.TetMesh, opt Options3) (Result, error) {
	return NewSmoother3().Run(context.Background(), m, opt)
}

// RunContext3 is Run3 with cancellation.
func RunContext3(ctx context.Context, m *mesh.TetMesh, opt Options3) (Result, error) {
	return NewSmoother3().Run(ctx, m, opt)
}
