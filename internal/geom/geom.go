// Package geom provides the 2D geometry kernel used by the mesh generator
// and the mesh quality metrics: points, vectors, orientation and in-circle
// predicates, bounding boxes, polygons and point-in-polygon tests.
//
// The predicates use floating-point filters with an error-bound fallback in
// the style of Shewchuk's adaptive predicates: the fast float64 expression is
// trusted only when its magnitude exceeds a conservative rounding-error
// bound; otherwise the computation is repeated in exact big.Rat arithmetic.
package geom

import (
	"fmt"
	"math"
	"math/big"
)

// Point is a point (or vector) in the plane.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s*p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p x q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	d := p.Sub(q)
	return d.X*d.X + d.Y*d.Y
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Lerp returns the linear interpolation (1-t)*p + t*q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point { return Lerp(p, q, 0.5) }

// Orientation classifies the turn a->b->c.
type Orientation int

// Possible orientations of an ordered point triple.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
)

func (o Orientation) String() string {
	switch o {
	case Clockwise:
		return "clockwise"
	case CounterClockwise:
		return "counterclockwise"
	default:
		return "collinear"
	}
}

// epsilon used in the floating-point filters. 2^-52.
const macheps = 2.220446049250313e-16

// orient2dFilterCoeff bounds the rounding error of the fast orientation
// determinant: |err| <= coeff * (|detLeft| + |detRight|).
// The constant follows Shewchuk's ccwerrboundA = (3 + 16*eps)*eps.
var orient2dFilterCoeff = (3.0 + 16.0*macheps) * macheps

// Orient2D returns the orientation of the triple (a, b, c):
// CounterClockwise when c lies to the left of the directed line a->b,
// Clockwise when to the right, Collinear when exactly on it.
// A floating-point filter decides when the fast path is trustworthy; the
// slow path evaluates the determinant exactly with rational arithmetic.
func Orient2D(a, b, c Point) Orientation {
	detLeft := (a.X - c.X) * (b.Y - c.Y)
	detRight := (a.Y - c.Y) * (b.X - c.X)
	det := detLeft - detRight

	var detSum float64
	switch {
	case detLeft > 0:
		if detRight <= 0 {
			return signOf(det)
		}
		detSum = detLeft + detRight
	case detLeft < 0:
		if detRight >= 0 {
			return signOf(det)
		}
		detSum = -detLeft - detRight
	default:
		return signOf(det)
	}
	errBound := orient2dFilterCoeff * detSum
	if det >= errBound || -det >= errBound {
		return signOf(det)
	}
	return orient2DExact(a, b, c)
}

// Orient2DValue returns twice the signed area of triangle abc (positive when
// counterclockwise). It is the raw determinant without the exact fallback and
// is intended for area/quality computations, not topological decisions.
func Orient2DValue(a, b, c Point) float64 {
	return (a.X-c.X)*(b.Y-c.Y) - (a.Y-c.Y)*(b.X-c.X)
}

func signOf(v float64) Orientation {
	switch {
	case v > 0:
		return CounterClockwise
	case v < 0:
		return Clockwise
	default:
		return Collinear
	}
}

func orient2DExact(a, b, c Point) Orientation {
	ax, ay := new(big.Rat).SetFloat64(a.X), new(big.Rat).SetFloat64(a.Y)
	bx, by := new(big.Rat).SetFloat64(b.X), new(big.Rat).SetFloat64(b.Y)
	cx, cy := new(big.Rat).SetFloat64(c.X), new(big.Rat).SetFloat64(c.Y)

	l := new(big.Rat).Mul(new(big.Rat).Sub(ax, cx), new(big.Rat).Sub(by, cy))
	r := new(big.Rat).Mul(new(big.Rat).Sub(ay, cy), new(big.Rat).Sub(bx, cx))
	return Orientation(l.Cmp(r))
}

// inCircleFilterCoeff follows Shewchuk's iccerrboundA = (10 + 96*eps)*eps.
var inCircleFilterCoeff = (10.0 + 96.0*macheps) * macheps

// InCircle reports whether point d lies strictly inside the circumcircle of
// the counterclockwise-oriented triangle (a, b, c). It returns
// CounterClockwise when d is inside, Clockwise when outside, and Collinear
// when d is exactly on the circle. The caller must pass (a, b, c) in
// counterclockwise order; with clockwise input the sign flips.
func InCircle(a, b, c, d Point) Orientation {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y

	bdxcdy, cdxbdy := bdx*cdy, cdx*bdy
	alift := adx*adx + ady*ady

	cdxady, adxcdy := cdx*ady, adx*cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy, bdxady := adx*bdy, bdx*ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*alift +
		(math.Abs(cdxady)+math.Abs(adxcdy))*blift +
		(math.Abs(adxbdy)+math.Abs(bdxady))*clift
	errBound := inCircleFilterCoeff * permanent
	if det > errBound || -det > errBound {
		return signOf(det)
	}
	return inCircleExact(a, b, c, d)
}

func inCircleExact(a, b, c, d Point) Orientation {
	rat := func(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) }
	sub := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Sub(x, y) }
	mul := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Mul(x, y) }
	add := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Add(x, y) }

	dx, dy := rat(d.X), rat(d.Y)
	adx, ady := sub(rat(a.X), dx), sub(rat(a.Y), dy)
	bdx, bdy := sub(rat(b.X), dx), sub(rat(b.Y), dy)
	cdx, cdy := sub(rat(c.X), dx), sub(rat(c.Y), dy)

	alift := add(mul(adx, adx), mul(ady, ady))
	blift := add(mul(bdx, bdx), mul(bdy, bdy))
	clift := add(mul(cdx, cdx), mul(cdy, cdy))

	t1 := mul(alift, sub(mul(bdx, cdy), mul(cdx, bdy)))
	t2 := mul(blift, sub(mul(cdx, ady), mul(adx, cdy)))
	t3 := mul(clift, sub(mul(adx, bdy), mul(bdx, ady)))

	det := add(add(t1, t2), t3)
	return Orientation(det.Sign())
}

// Circumcenter returns the circumcenter of triangle (a, b, c) and true, or a
// zero Point and false when the triangle is degenerate (collinear vertices).
func Circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * ((a.X-c.X)*(b.Y-c.Y) - (a.Y-c.Y)*(b.X-c.X))
	if d == 0 {
		return Point{}, false
	}
	al := a.Dist2(c)
	bl := b.Dist2(c)
	ux := c.X + (al*(b.Y-c.Y)-bl*(a.Y-c.Y))/d
	uy := c.Y + (bl*(a.X-c.X)-al*(b.X-c.X))/d
	return Point{ux, uy}, true
}

// TriangleArea returns the (positive) area of triangle abc.
func TriangleArea(a, b, c Point) float64 {
	return math.Abs(Orient2DValue(a, b, c)) / 2
}

// Centroid returns the centroid of triangle abc.
func Centroid(a, b, c Point) Point {
	return Point{(a.X + b.X + c.X) / 3, (a.Y + b.Y + c.Y) / 3}
}

// Rect is an axis-aligned bounding box.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns a rectangle that Extend can grow from.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// Extend grows r to include p.
func (r *Rect) Extend(p Point) {
	r.Min.X = math.Min(r.Min.X, p.X)
	r.Min.Y = math.Min(r.Min.Y, p.Y)
	r.Max.X = math.Max(r.Max.X, p.X)
	r.Max.Y = math.Max(r.Max.Y, p.Y)
}

// Width returns the x extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the y extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of r.
func (r Rect) Center() Point { return Midpoint(r.Min, r.Max) }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// BoundsOf returns the bounding box of pts. It returns the empty rect when
// pts is empty.
func BoundsOf(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r.Extend(p)
	}
	return r
}
