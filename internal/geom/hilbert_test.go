package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHilbertIndexBijective(t *testing.T) {
	const order = 4 // 16x16 grid
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			d := HilbertIndex(x, y, order)
			if d >= 256 {
				t.Fatalf("index %d out of range for order %d", d, order)
			}
			if seen[d] {
				t.Fatalf("duplicate index %d at (%d,%d)", d, x, y)
			}
			seen[d] = true
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert indices map to 4-adjacent cells: invert the curve
	// by scanning the grid once.
	const order = 5
	side := uint32(1) << order
	cells := make([][2]uint32, side*side)
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			cells[HilbertIndex(x, y, order)] = [2]uint32{x, y}
		}
	}
	for i := 1; i < len(cells); i++ {
		dx := int(cells[i][0]) - int(cells[i-1][0])
		dy := int(cells[i][1]) - int(cells[i-1][1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("cells %d and %d not adjacent: %v -> %v", i-1, i, cells[i-1], cells[i])
		}
	}
}

func TestMortonIndex(t *testing.T) {
	if got := MortonIndex(0, 0); got != 0 {
		t.Errorf("Morton(0,0) = %d", got)
	}
	if got := MortonIndex(1, 0); got != 1 {
		t.Errorf("Morton(1,0) = %d", got)
	}
	if got := MortonIndex(0, 1); got != 2 {
		t.Errorf("Morton(0,1) = %d", got)
	}
	if got := MortonIndex(3, 3); got != 15 {
		t.Errorf("Morton(3,3) = %d", got)
	}
}

func TestMortonBijective(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(4))}
	f := func(x1, y1, x2, y2 uint16) bool {
		same := x1 == x2 && y1 == y2
		return (MortonIndex(uint32(x1), uint32(y1)) == MortonIndex(uint32(x2), uint32(y2))) == same
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHilbertSortKeys(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {0.1, 0.1}, {0.9, 0.9}}
	keys := HilbertSortKeys(pts, 8)
	if len(keys) != 4 {
		t.Fatalf("len = %d", len(keys))
	}
	// Nearby points should have closer keys than far points.
	d01 := absDiff(keys[0], keys[2]) // (0,0) vs (0.1,0.1)
	d03 := absDiff(keys[0], keys[1]) // (0,0) vs (1,1)
	if d01 >= d03 {
		t.Errorf("near pair key distance %d >= far pair %d", d01, d03)
	}
	if got := HilbertSortKeys(nil, 8); len(got) != 0 {
		t.Error("nil input should give empty keys")
	}
	// Degenerate: all points identical (zero-size bounds) must not panic.
	same := []Point{{2, 3}, {2, 3}}
	k := HilbertSortKeys(same, 8)
	if k[0] != k[1] {
		t.Error("identical points should share a key")
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// hilbertRecursiveRef is a structurally independent reference for
// HilbertIndex: the textbook xy2d quadrant recursion written as explicit
// per-quadrant coordinate transforms, instead of the iterative fold the
// production code uses. Agreement between the two locks the key computation
// the 3D Hilbert keys build on.
func hilbertRecursiveRef(x, y uint32, order uint) uint64 {
	if order == 0 {
		return 0
	}
	s := uint32(1) << (order - 1)
	rx, ry := x/s, y/s
	x, y = x%s, y%s
	cell := uint64(s) * uint64(s)
	switch {
	case rx == 0 && ry == 0: // lower-left: transpose
		return 0*cell + hilbertRecursiveRef(y, x, order-1)
	case rx == 0 && ry == 1: // upper-left: identity
		return 1*cell + hilbertRecursiveRef(x, y, order-1)
	case rx == 1 && ry == 1: // upper-right: identity
		return 2*cell + hilbertRecursiveRef(x, y, order-1)
	default: // lower-right: anti-transpose
		return 3*cell + hilbertRecursiveRef(s-1-y, s-1-x, order-1)
	}
}

// TestHilbertIndexMatchesReference compares HilbertIndex against the
// recursive reference exhaustively for orders 1-6 (up to a 64x64 grid).
func TestHilbertIndexMatchesReference(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		side := uint32(1) << order
		for x := uint32(0); x < side; x++ {
			for y := uint32(0); y < side; y++ {
				got := HilbertIndex(x, y, order)
				want := hilbertRecursiveRef(x, y, order)
				if got != want {
					t.Fatalf("order %d: HilbertIndex(%d,%d) = %d, reference = %d", order, x, y, got, want)
				}
			}
		}
	}
}

// TestHilbertIndexBijectiveAllOrders extends the bijectivity check to every
// order the reference comparison covers: each cell maps to a distinct index
// in [0, 4^order).
func TestHilbertIndexBijectiveAllOrders(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		side := uint32(1) << order
		seen := make([]bool, int(side)*int(side))
		for x := uint32(0); x < side; x++ {
			for y := uint32(0); y < side; y++ {
				d := HilbertIndex(x, y, order)
				if d >= uint64(len(seen)) {
					t.Fatalf("order %d: index %d of (%d,%d) out of range", order, d, x, y)
				}
				if seen[d] {
					t.Fatalf("order %d: index %d hit twice (at (%d,%d))", order, d, x, y)
				}
				seen[d] = true
			}
		}
	}
}
