package geom

import "lams/internal/parallel"

// HilbertIndex3 returns the index of cell (x, y, z) along a 3D Hilbert curve
// of the given order (the curve fills a 2^order cube per axis). All three
// coordinates must be < 2^order. It implements Skilling's transpose
// algorithm ("Programming the Hilbert curve", AIP 2004), the standard
// n-dimensional generalization of the 2D rotate-and-flip recurrence
// HilbertIndex uses.
func HilbertIndex3(x, y, z uint32, order uint) uint64 {
	X := [3]uint32{x, y, z}

	// Inverse undo: strip the rotations the curve applies at each level.
	for q := uint32(1) << (order - 1); q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if X[i]&q != 0 {
				X[0] ^= p
			} else {
				t := (X[0] ^ X[i]) & p
				X[0] ^= t
				X[i] ^= t
			}
		}
	}

	// Gray encode.
	for i := 1; i < 3; i++ {
		X[i] ^= X[i-1]
	}
	var t uint32
	for q := uint32(1) << (order - 1); q > 1; q >>= 1 {
		if X[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		X[i] ^= t
	}

	// X now holds the index in transposed form: bit b of axis i is bit
	// 3*b + (2-i) of the index. Interleave most-significant first.
	var d uint64
	for b := int(order) - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			d = d<<1 | uint64((X[i]>>uint(b))&1)
		}
	}
	return d
}

// MortonIndex3 returns the Z-order (Morton) index of cell (x, y, z) by
// interleaving the low 21 bits of each coordinate.
func MortonIndex3(x, y, z uint32) uint64 {
	return spread21(x) | spread21(y)<<1 | spread21(z)<<2
}

// spread21 spaces the low 21 bits of v three apart (bit k moves to bit 3k).
func spread21(v uint32) uint64 {
	x := uint64(v) & 0x1FFFFF
	x = (x | x<<32) & 0x001F00000000FFFF
	x = (x | x<<16) & 0x001F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// HilbertSortKeys3 maps points into a 2^order grid over their bounding box
// and returns the 3D Hilbert index of each point, mirroring HilbertSortKeys.
// Ties are possible when points share a grid cell; callers sort by
// (key, index) for determinism.
func HilbertSortKeys3(pts []Point3, order uint) []uint64 {
	return curveKeys3(pts, order, func(gx, gy, gz uint32) uint64 {
		return HilbertIndex3(gx, gy, gz, order)
	})
}

// MortonSortKeys3 maps points into a 2^order grid over their bounding box
// and returns the Morton index of each point.
func MortonSortKeys3(pts []Point3, order uint) []uint64 {
	return curveKeys3(pts, order, func(gx, gy, gz uint32) uint64 {
		return MortonIndex3(gx, gy, gz)
	})
}

func curveKeys3(pts []Point3, order uint, index func(gx, gy, gz uint32) uint64) []uint64 {
	keys := make([]uint64, len(pts))
	if len(pts) == 0 {
		return keys
	}
	b := BoundsOf3(pts)
	w, h, d := b.Width(), b.Height(), b.Depth()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	if d == 0 {
		d = 1
	}
	side := float64(uint32(1)<<order - 1)
	// Keys are independent per point; chunk-parallel with deterministic
	// output, as in the 2D pass.
	parallel.Setup(len(pts), func(c parallel.Chunk) {
		for i := c.Lo; i < c.Hi; i++ {
			p := pts[i]
			gx := uint32((p.X - b.Min.X) / w * side)
			gy := uint32((p.Y - b.Min.Y) / h * side)
			gz := uint32((p.Z - b.Min.Z) / d * side)
			keys[i] = index(gx, gy, gz)
		}
	})
	return keys
}

// MortonSortKeys maps 2D points into a 2^order grid over their bounding box
// and returns the Morton index of each point — the 2D companion of
// HilbertSortKeys, hoisted here so mesh types can expose both curve keys
// behind one interface.
func MortonSortKeys(pts []Point, order uint) []uint64 {
	keys := make([]uint64, len(pts))
	if len(pts) == 0 {
		return keys
	}
	b := BoundsOf(pts)
	w, h := b.Width(), b.Height()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	side := float64(uint32(1)<<order - 1)
	parallel.Setup(len(pts), func(c parallel.Chunk) {
		for i := c.Lo; i < c.Hi; i++ {
			p := pts[i]
			gx := uint32((p.X - b.Min.X) / w * side)
			gy := uint32((p.Y - b.Min.Y) / h * side)
			keys[i] = MortonIndex(gx, gy)
		}
	})
	return keys
}
