package geom

import "lams/internal/parallel"

// HilbertIndex returns the index of cell (x, y) along a Hilbert curve of the
// given order (the curve fills a 2^order x 2^order grid). Both coordinates
// must be < 2^order.
func HilbertIndex(x, y uint32, order uint) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// MortonIndex returns the Z-order (Morton) index of cell (x, y) by
// interleaving the low 16 bits of x and y.
func MortonIndex(x, y uint32) uint64 {
	return interleave16(x) | interleave16(y)<<1
}

func interleave16(v uint32) uint64 {
	x := uint64(v & 0xFFFF)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// HilbertSortKeys maps points into a 2^order grid over their bounding box and
// returns the Hilbert index of each point. Ties are possible when points
// share a grid cell; callers sort by (key, index) for determinism.
func HilbertSortKeys(pts []Point, order uint) []uint64 {
	keys := make([]uint64, len(pts))
	if len(pts) == 0 {
		return keys
	}
	b := BoundsOf(pts)
	w, h := b.Width(), b.Height()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	side := float64(uint32(1)<<order - 1)
	// Each key depends only on its own point and the (already computed)
	// bounds, so the loop chunk-parallelizes with deterministic output.
	parallel.Setup(len(pts), func(c parallel.Chunk) {
		for i := c.Lo; i < c.Hi; i++ {
			p := pts[i]
			gx := uint32((p.X - b.Min.X) / w * side)
			gy := uint32((p.Y - b.Min.Y) / h * side)
			keys[i] = HilbertIndex(gx, gy, order)
		}
	})
	return keys
}
