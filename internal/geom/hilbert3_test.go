package geom

import (
	"sort"
	"testing"
)

// TestHilbertIndex3Bijective checks that every cell of the 2^order cube maps
// to a distinct index in [0, 8^order) for orders 1-4 (exhaustive).
func TestHilbertIndex3Bijective(t *testing.T) {
	for order := uint(1); order <= 4; order++ {
		side := uint32(1) << order
		total := int(side) * int(side) * int(side)
		seen := make([]bool, total)
		for z := uint32(0); z < side; z++ {
			for y := uint32(0); y < side; y++ {
				for x := uint32(0); x < side; x++ {
					d := HilbertIndex3(x, y, z, order)
					if d >= uint64(total) {
						t.Fatalf("order %d: index %d of cell (%d,%d,%d) out of range [0,%d)", order, d, x, y, z, total)
					}
					if seen[d] {
						t.Fatalf("order %d: index %d hit twice (at cell (%d,%d,%d))", order, d, x, y, z)
					}
					seen[d] = true
				}
			}
		}
	}
}

// TestHilbertIndex3Continuity is the defining property of a Hilbert curve:
// cells at consecutive indices are face neighbors (they differ by exactly 1
// in exactly one axis). Checked exhaustively for orders 1-4.
func TestHilbertIndex3Continuity(t *testing.T) {
	type cell struct {
		d       uint64
		x, y, z uint32
	}
	for order := uint(1); order <= 4; order++ {
		side := uint32(1) << order
		cells := make([]cell, 0, int(side)*int(side)*int(side))
		for z := uint32(0); z < side; z++ {
			for y := uint32(0); y < side; y++ {
				for x := uint32(0); x < side; x++ {
					cells = append(cells, cell{HilbertIndex3(x, y, z, order), x, y, z})
				}
			}
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].d < cells[j].d })
		abs := func(a, b uint32) uint32 {
			if a > b {
				return a - b
			}
			return b - a
		}
		for i := 1; i < len(cells); i++ {
			p, q := cells[i-1], cells[i]
			if abs(p.x, q.x)+abs(p.y, q.y)+abs(p.z, q.z) != 1 {
				t.Fatalf("order %d: steps %d->%d jump from (%d,%d,%d) to (%d,%d,%d)",
					order, p.d, q.d, p.x, p.y, p.z, q.x, q.y, q.z)
			}
		}
	}
}

// mortonNaive3 is the obvious bit loop MortonIndex3's magic-mask form must
// match.
func mortonNaive3(x, y, z uint32) uint64 {
	var d uint64
	for b := uint(0); b < 21; b++ {
		d |= uint64(x>>b&1) << (3 * b)
		d |= uint64(y>>b&1) << (3*b + 1)
		d |= uint64(z>>b&1) << (3*b + 2)
	}
	return d
}

func TestMortonIndex3MatchesNaive(t *testing.T) {
	cases := [][3]uint32{
		{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		{0x1FFFFF, 0x1FFFFF, 0x1FFFFF},
		{0x15555, 0xAAAA, 0x1F0F0},
		{12345, 54321, 99999},
	}
	next := uint64(7)
	for i := 0; i < 100; i++ {
		next = next*6364136223846793005 + 1442695040888963407
		cases = append(cases, [3]uint32{
			uint32(next) & 0x1FFFFF,
			uint32(next>>21) & 0x1FFFFF,
			uint32(next>>42) & 0x1FFFFF,
		})
	}
	for _, c := range cases {
		if got, want := MortonIndex3(c[0], c[1], c[2]), mortonNaive3(c[0], c[1], c[2]); got != want {
			t.Errorf("MortonIndex3(%d,%d,%d) = %#x, want %#x", c[0], c[1], c[2], got, want)
		}
	}
}

// TestSortKeys3GridMapping pins the normalization: corners of the bounding
// box land on the extreme grid cells, and degenerate (flat) extents do not
// divide by zero.
func TestSortKeys3GridMapping(t *testing.T) {
	pts := []Point3{{0, 0, 0}, {1, 2, 4}, {0.5, 1, 2}}
	hk := HilbertSortKeys3(pts, 4)
	mk := MortonSortKeys3(pts, 4)
	if len(hk) != 3 || len(mk) != 3 {
		t.Fatalf("key lengths %d, %d", len(hk), len(mk))
	}
	if hk[0] != HilbertIndex3(0, 0, 0, 4) {
		t.Errorf("min corner key = %d", hk[0])
	}
	if hk[1] != HilbertIndex3(15, 15, 15, 4) {
		t.Errorf("max corner key = %d, want %d", hk[1], HilbertIndex3(15, 15, 15, 4))
	}
	if mk[1] != MortonIndex3(15, 15, 15) {
		t.Errorf("max corner morton = %d", mk[1])
	}
	// All points share a plane: the z extent is zero, handled by the guard.
	flat := []Point3{{0, 0, 1}, {1, 0, 1}, {0, 1, 1}}
	_ = HilbertSortKeys3(flat, 4)
	_ = MortonSortKeys3(flat, 4)
	if got := HilbertSortKeys3(nil, 4); len(got) != 0 {
		t.Error("nil points should give no keys")
	}
}

// TestMortonSortKeys2DMatchesLegacy pins the hoisted 2D Morton key helper to
// the exact arithmetic the MORTON ordering historically inlined, so the
// ordering-layer refactor cannot drift the permutation.
func TestMortonSortKeys2DMatchesLegacy(t *testing.T) {
	pts := []Point{{0.1, 0.9}, {3.7, -2.2}, {1.5, 0.5}, {-1, 4}}
	b := BoundsOf(pts)
	w, h := b.Width(), b.Height()
	got := MortonSortKeys(pts, 16)
	for i, p := range pts {
		gx := uint32((p.X - b.Min.X) / w * 65535)
		gy := uint32((p.Y - b.Min.Y) / h * 65535)
		if want := MortonIndex(gx, gy); got[i] != want {
			t.Errorf("point %d: key %d, want %d", i, got[i], want)
		}
	}
}
