package geom

import (
	"fmt"
	"math"
	"math/big"
)

// This file is the 3D half of the geometry kernel: points, the Orient3D
// predicate (floating-point filter + exact big.Rat fallback, mirroring
// Orient2D), tetrahedron volume, and axis-aligned boxes. It follows the same
// conventions as the 2D half so the mesh and quality layers can treat the two
// dimensions symmetrically.

// Point3 is a point (or vector) in space.
type Point3 struct {
	X, Y, Z float64
}

// Add returns p + q.
func (p Point3) Add(q Point3) Point3 { return Point3{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q.
func (p Point3) Sub(q Point3) Point3 { return Point3{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns s*p.
func (p Point3) Scale(s float64) Point3 { return Point3{s * p.X, s * p.Y, s * p.Z} }

// Dot returns the dot product p·q.
func (p Point3) Dot(q Point3) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Cross returns the cross product p × q.
func (p Point3) Cross(q Point3) Point3 {
	return Point3{
		X: p.Y*q.Z - p.Z*q.Y,
		Y: p.Z*q.X - p.X*q.Z,
		Z: p.X*q.Y - p.Y*q.X,
	}
}

// Norm returns the Euclidean length of p.
func (p Point3) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func (p Point3) Dist(q Point3) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point3) Dist2(q Point3) float64 {
	d := p.Sub(q)
	return d.Dot(d)
}

// String implements fmt.Stringer.
func (p Point3) String() string { return fmt.Sprintf("(%g, %g, %g)", p.X, p.Y, p.Z) }

// Lerp3 returns the linear interpolation (1-t)*p + t*q.
func Lerp3(p, q Point3, t float64) Point3 {
	return Point3{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y), p.Z + t*(q.Z-p.Z)}
}

// Midpoint3 returns the midpoint of p and q.
func Midpoint3(p, q Point3) Point3 { return Lerp3(p, q, 0.5) }

// orient3dFilterCoeff bounds the rounding error of the fast 3D orientation
// determinant, following Shewchuk's o3derrboundA = (7 + 56*eps)*eps.
var orient3dFilterCoeff = (7.0 + 56.0*macheps) * macheps

// Orient3D returns the orientation of the tetrahedron (a, b, c, d), in
// Shewchuk's convention: CounterClockwise (positive) when d lies below the
// plane through a, b, c — "below" meaning the side from which a, b, c appear
// in clockwise order — Clockwise when above it, and Collinear when the four
// points are exactly coplanar. A floating-point filter decides when the fast
// path is trustworthy; the slow path evaluates the determinant exactly with
// rational arithmetic, mirroring Orient2D.
func Orient3D(a, b, c, d Point3) Orientation {
	adx, ady, adz := a.X-d.X, a.Y-d.Y, a.Z-d.Z
	bdx, bdy, bdz := b.X-d.X, b.Y-d.Y, b.Z-d.Z
	cdx, cdy, cdz := c.X-d.X, c.Y-d.Y, c.Z-d.Z

	bdxcdy, cdxbdy := bdx*cdy, cdx*bdy
	cdxady, adxcdy := cdx*ady, adx*cdy
	adxbdy, bdxady := adx*bdy, bdx*ady

	det := adz*(bdxcdy-cdxbdy) + bdz*(cdxady-adxcdy) + cdz*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*math.Abs(adz) +
		(math.Abs(cdxady)+math.Abs(adxcdy))*math.Abs(bdz) +
		(math.Abs(adxbdy)+math.Abs(bdxady))*math.Abs(cdz)
	errBound := orient3dFilterCoeff * permanent
	if det > errBound || -det > errBound {
		return signOf(det)
	}
	return orient3DExact(a, b, c, d)
}

// Orient3DValue returns six times the signed volume of tetrahedron (a, b, c,
// d) (positive when positively oriented). It is the raw determinant without
// the exact fallback and is intended for volume/quality computations, not
// topological decisions.
func Orient3DValue(a, b, c, d Point3) float64 {
	adx, ady, adz := a.X-d.X, a.Y-d.Y, a.Z-d.Z
	bdx, bdy, bdz := b.X-d.X, b.Y-d.Y, b.Z-d.Z
	cdx, cdy, cdz := c.X-d.X, c.Y-d.Y, c.Z-d.Z
	return adz*(bdx*cdy-cdx*bdy) + bdz*(cdx*ady-adx*cdy) + cdz*(adx*bdy-bdx*ady)
}

func orient3DExact(a, b, c, d Point3) Orientation {
	rat := func(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) }
	sub := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Sub(x, y) }
	mul := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Mul(x, y) }
	add := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Add(x, y) }

	dx, dy, dz := rat(d.X), rat(d.Y), rat(d.Z)
	adx, ady, adz := sub(rat(a.X), dx), sub(rat(a.Y), dy), sub(rat(a.Z), dz)
	bdx, bdy, bdz := sub(rat(b.X), dx), sub(rat(b.Y), dy), sub(rat(b.Z), dz)
	cdx, cdy, cdz := sub(rat(c.X), dx), sub(rat(c.Y), dy), sub(rat(c.Z), dz)

	t1 := mul(adz, sub(mul(bdx, cdy), mul(cdx, bdy)))
	t2 := mul(bdz, sub(mul(cdx, ady), mul(adx, cdy)))
	t3 := mul(cdz, sub(mul(adx, bdy), mul(bdx, ady)))

	det := add(add(t1, t2), t3)
	return Orientation(det.Sign())
}

// TetVolume returns the (positive) volume of tetrahedron (a, b, c, d).
func TetVolume(a, b, c, d Point3) float64 {
	return math.Abs(Orient3DValue(a, b, c, d)) / 6
}

// SignedTetVolume returns the signed volume of tetrahedron (a, b, c, d):
// positive when the tetrahedron is positively oriented (Orient3D counter-
// clockwise), negative when inverted.
func SignedTetVolume(a, b, c, d Point3) float64 {
	return Orient3DValue(a, b, c, d) / 6
}

// Centroid3 returns the centroid of tetrahedron (a, b, c, d).
func Centroid3(a, b, c, d Point3) Point3 {
	return Point3{
		X: (a.X + b.X + c.X + d.X) / 4,
		Y: (a.Y + b.Y + c.Y + d.Y) / 4,
		Z: (a.Z + b.Z + c.Z + d.Z) / 4,
	}
}

// Box is an axis-aligned bounding box in space.
type Box struct {
	Min, Max Point3
}

// EmptyBox returns a box that Extend can grow from.
func EmptyBox() Box {
	inf := math.Inf(1)
	return Box{Min: Point3{inf, inf, inf}, Max: Point3{-inf, -inf, -inf}}
}

// Extend grows b to include p.
func (b *Box) Extend(p Point3) {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
}

// Width returns the x extent of b.
func (b Box) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the y extent of b.
func (b Box) Height() float64 { return b.Max.Y - b.Min.Y }

// Depth returns the z extent of b.
func (b Box) Depth() float64 { return b.Max.Z - b.Min.Z }

// Center returns the midpoint of b.
func (b Box) Center() Point3 { return Midpoint3(b.Min, b.Max) }

// Contains reports whether p lies inside or on the boundary of b.
func (b Box) Contains(p Point3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// BoundsOf3 returns the bounding box of pts. It returns the empty box when
// pts is empty.
func BoundsOf3(pts []Point3) Box {
	b := EmptyBox()
	for _, p := range pts {
		b.Extend(p)
	}
	return b
}
