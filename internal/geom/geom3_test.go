package geom

import (
	"math"
	"testing"
)

func TestPoint3Ops(t *testing.T) {
	p := Point3{1, 2, 3}
	q := Point3{4, 6, 8}
	if got := p.Add(q); got != (Point3{5, 8, 11}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point3{3, 4, 5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 4+12+24 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Point3{1, 0, 0}).Cross(Point3{0, 1, 0}); got != (Point3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Point3{3, 4, 12}).Norm(); got != 13 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist2(q); got != 9+16+25 {
		t.Errorf("Dist2 = %v", got)
	}
	if got := Midpoint3(p, q); got != (Point3{2.5, 4, 5.5}) {
		t.Errorf("Midpoint3 = %v", got)
	}
}

func TestOrient3DBasic(t *testing.T) {
	a := Point3{0, 0, 0}
	b := Point3{1, 0, 0}
	c := Point3{0, 1, 0}
	up := Point3{0, 0, 1}
	down := Point3{0, 0, -1}
	on := Point3{0.25, 0.25, 0}

	// Positive orientation: a, b, c counterclockwise as seen from d.
	if got := Orient3D(a, b, c, down); got != CounterClockwise {
		t.Errorf("Orient3D below plane = %v, want counterclockwise", got)
	}
	if got := Orient3D(a, b, c, up); got != Clockwise {
		t.Errorf("Orient3D above plane = %v, want clockwise", got)
	}
	if got := Orient3D(a, b, c, on); got != Collinear {
		t.Errorf("Orient3D coplanar = %v, want collinear", got)
	}
	// Sign must agree with the raw determinant away from degeneracy.
	if v := Orient3DValue(a, b, c, down); v <= 0 {
		t.Errorf("Orient3DValue = %v, want > 0", v)
	}
}

// TestOrient3DExactFallback drives the predicate into the region where the
// float64 determinant is drowned by rounding error: a point displaced off a
// plane by less than the filter can certify must still be classified by the
// exact path, and truly coplanar points must come back Collinear even when
// built from awkward coordinates.
func TestOrient3DExactFallback(t *testing.T) {
	a := Point3{1e6, 1e6, 1e6}
	b := Point3{1e6 + 1, 1e6, 1e6}
	c := Point3{1e6, 1e6 + 1, 1e6}
	// Exactly coplanar with awkward magnitudes.
	d := Point3{1e6 + 0.5, 1e6 + 0.25, 1e6}
	if got := Orient3D(a, b, c, d); got != Collinear {
		t.Errorf("coplanar at large offset = %v, want collinear", got)
	}
	// Displace by one ulp of 1e6: far below the naive error bound, so only
	// the exact path can decide the sign. The displacement is downward in z,
	// which makes (a, b, c, d) positively oriented.
	ulp := math.Nextafter(1e6, 2e6) - 1e6
	dBelow := Point3{1e6 + 0.5, 1e6 + 0.25, 1e6 - ulp}
	if got := Orient3D(a, b, c, dBelow); got != CounterClockwise {
		t.Errorf("one-ulp below plane = %v, want counterclockwise", got)
	}
	dAbove := Point3{1e6 + 0.5, 1e6 + 0.25, 1e6 + ulp}
	if got := Orient3D(a, b, c, dAbove); got != Clockwise {
		t.Errorf("one-ulp above plane = %v, want clockwise", got)
	}
}

func TestOrient3DMatchesExactRandom(t *testing.T) {
	// Pseudo-random but deterministic triples: the filtered predicate must
	// always agree with the pure big.Rat evaluation.
	next := uint64(1)
	rnd := func() float64 {
		next = next*6364136223846793005 + 1442695040888963407
		return float64(int64(next>>11)) / float64(1<<52)
	}
	for i := 0; i < 200; i++ {
		a := Point3{rnd(), rnd(), rnd()}
		b := Point3{rnd(), rnd(), rnd()}
		c := Point3{rnd(), rnd(), rnd()}
		d := Point3{rnd(), rnd(), rnd()}
		if got, want := Orient3D(a, b, c, d), orient3DExact(a, b, c, d); got != want {
			t.Fatalf("case %d: Orient3D = %v, exact = %v", i, got, want)
		}
	}
}

func TestTetVolume(t *testing.T) {
	a := Point3{0, 0, 0}
	b := Point3{1, 0, 0}
	c := Point3{0, 1, 0}
	d := Point3{0, 0, 1}
	if got := TetVolume(a, b, c, d); math.Abs(got-1.0/6) > 1e-15 {
		t.Errorf("unit corner tet volume = %v, want 1/6", got)
	}
	// Signed volume flips with orientation and is zero for degenerate tets.
	if SignedTetVolume(a, b, c, d) >= 0 {
		t.Error("unit corner tet (a,b,c,d) should be negatively oriented (d above ccw abc)")
	}
	if SignedTetVolume(a, c, b, d) <= 0 {
		t.Error("swapping two vertices must flip the signed volume")
	}
	if got := TetVolume(a, b, c, Point3{0.3, 0.4, 0}); got != 0 {
		t.Errorf("flat tet volume = %v, want 0", got)
	}
	if got := Centroid3(a, b, c, d); got != (Point3{0.25, 0.25, 0.25}) {
		t.Errorf("Centroid3 = %v", got)
	}
}

func TestBox(t *testing.T) {
	b := BoundsOf3([]Point3{{1, 2, 3}, {-1, 5, 0}, {0, 0, 7}})
	if b.Min != (Point3{-1, 0, 0}) || b.Max != (Point3{1, 5, 7}) {
		t.Errorf("bounds = %+v", b)
	}
	if b.Width() != 2 || b.Height() != 5 || b.Depth() != 7 {
		t.Errorf("extents = %v %v %v", b.Width(), b.Height(), b.Depth())
	}
	if !b.Contains(Point3{0, 1, 1}) || b.Contains(Point3{2, 0, 0}) {
		t.Error("Contains misclassifies")
	}
	e := EmptyBox()
	if e.Contains(Point3{0, 0, 0}) {
		t.Error("empty box contains a point")
	}
	if got := BoundsOf3(nil); !math.IsInf(got.Min.X, 1) {
		t.Error("BoundsOf3(nil) is not empty")
	}
}
