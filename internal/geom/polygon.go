package geom

import "math"

// Polygon is a simple closed polygon given by its vertices in order.
// The closing edge from the last vertex back to the first is implicit.
type Polygon []Point

// SignedArea returns the signed area of the polygon: positive when the
// vertices wind counterclockwise.
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	var s float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		s += p.Cross(q)
	}
	return s / 2
}

// Area returns the absolute area of the polygon.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Perimeter returns the total edge length of the polygon.
func (pg Polygon) Perimeter() float64 {
	var s float64
	for i, p := range pg {
		s += p.Dist(pg[(i+1)%len(pg)])
	}
	return s
}

// Bounds returns the bounding box of the polygon.
func (pg Polygon) Bounds() Rect { return BoundsOf(pg) }

// Contains reports whether p lies strictly inside the polygon, using the
// even-odd ray-crossing rule. Points exactly on an edge may be classified
// either way; the mesh generator keeps interior sample points away from the
// boundary so this ambiguity never matters there.
func (pg Polygon) Contains(p Point) bool {
	inside := false
	n := len(pg)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pg[i], pg[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Reverse returns a copy of the polygon with the opposite winding.
func (pg Polygon) Reverse() Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[len(pg)-1-i] = p
	}
	return out
}

// Sample returns points placed along the polygon boundary with spacing
// approximately h, including the polygon vertices themselves. Each edge is
// subdivided into ceil(len/h) equal segments.
func (pg Polygon) Sample(h float64) []Point {
	if h <= 0 || len(pg) == 0 {
		return append([]Point(nil), pg...)
	}
	var out []Point
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		out = append(out, p)
		segs := int(math.Ceil(p.Dist(q) / h))
		for k := 1; k < segs; k++ {
			out = append(out, Lerp(p, q, float64(k)/float64(segs)))
		}
	}
	return out
}

// Region is a polygonal region with optional holes: a point is inside the
// region when it is inside the outer polygon and outside every hole.
type Region struct {
	Outer Polygon
	Holes []Polygon
}

// Contains reports whether p lies inside the region.
func (r Region) Contains(p Point) bool {
	if !r.Outer.Contains(p) {
		return false
	}
	for _, h := range r.Holes {
		if h.Contains(p) {
			return false
		}
	}
	return true
}

// Bounds returns the bounding box of the outer polygon.
func (r Region) Bounds() Rect { return r.Outer.Bounds() }

// Area returns the outer area minus the hole areas.
func (r Region) Area() float64 {
	a := r.Outer.Area()
	for _, h := range r.Holes {
		a -= h.Area()
	}
	return a
}

// BoundaryPoints samples every boundary loop (outer and holes) with spacing
// approximately h.
func (r Region) BoundaryPoints(h float64) []Point {
	out := r.Outer.Sample(h)
	for _, hole := range r.Holes {
		out = append(out, hole.Sample(h)...)
	}
	return out
}

// RegularPolygon returns an n-gon centered at c with circumradius rad,
// starting at angle phase, counterclockwise.
func RegularPolygon(c Point, rad float64, n int, phase float64) Polygon {
	pg := make(Polygon, n)
	for i := range pg {
		a := phase + 2*math.Pi*float64(i)/float64(n)
		pg[i] = Point{c.X + rad*math.Cos(a), c.Y + rad*math.Sin(a)}
	}
	return pg
}

// RectPolygon returns the rectangle [x0,x1]x[y0,y1] as a counterclockwise
// polygon.
func RectPolygon(x0, y0, x1, y1 float64) Polygon {
	return Polygon{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}
}
