package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Errorf("Cross = %v", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Errorf("Dist self = %v", got)
	}
	if got := (Point{0, 0}).Dist2(Point{3, 4}); got != 25 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestLerpMidpoint(t *testing.T) {
	a, b := Point{0, 0}, Point{2, 4}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := Midpoint(a, b); got != (Point{1, 2}) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestOrient2DBasic(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	cases := []struct {
		c    Point
		want Orientation
	}{
		{Point{0, 1}, CounterClockwise},
		{Point{0, -1}, Clockwise},
		{Point{2, 0}, Collinear},
		{Point{-5, 0}, Collinear},
		{Point{0.5, 1e-9}, CounterClockwise},
	}
	for _, tc := range cases {
		if got := Orient2D(a, b, tc.c); got != tc.want {
			t.Errorf("Orient2D(%v,%v,%v) = %v, want %v", a, b, tc.c, got, tc.want)
		}
	}
}

func TestOrient2DExactFallback(t *testing.T) {
	// Points nearly collinear: the float determinant is in the rounding
	// noise, forcing the exact path. The third point is constructed exactly
	// on the line through a and b, then nudged by one ulp.
	a := Point{0, 0}
	b := Point{1e-20, 1e-20} // direction (1,1), tiny magnitude
	c := Point{3, 3}
	if got := Orient2D(a, b, c); got != Collinear {
		t.Errorf("exactly collinear points classified %v", got)
	}
	c2 := Point{3, math.Nextafter(3, 4)}
	if got := Orient2D(a, b, c2); got != CounterClockwise {
		t.Errorf("one-ulp-left point classified %v", got)
	}
	c3 := Point{3, math.Nextafter(3, 2)}
	if got := Orient2D(a, b, c3); got != Clockwise {
		t.Errorf("one-ulp-right point classified %v", got)
	}
}

func TestOrient2DAntisymmetry(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		return Orient2D(a, b, c) == -Orient2D(b, a, c)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOrient2DRotationInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		o1 := Orient2D(a, b, c)
		o2 := Orient2D(b, c, a)
		o3 := Orient2D(c, a, b)
		return o1 == o2 && o2 == o3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInCircleBasic(t *testing.T) {
	// Unit circle through three points; CCW order.
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	if got := InCircle(a, b, c, Point{0, 0}); got != CounterClockwise {
		t.Errorf("center not inside: %v", got)
	}
	if got := InCircle(a, b, c, Point{2, 2}); got != Clockwise {
		t.Errorf("far point not outside: %v", got)
	}
	if got := InCircle(a, b, c, Point{0, -1}); got != Collinear {
		t.Errorf("cocircular point not on circle: %v", got)
	}
}

func TestInCircleNearBoundary(t *testing.T) {
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	in := Point{0, -1 + 1e-12}
	out := Point{0, -1 - 1e-12}
	if got := InCircle(a, b, c, in); got != CounterClockwise {
		t.Errorf("just-inside point: %v", got)
	}
	if got := InCircle(a, b, c, out); got != Clockwise {
		t.Errorf("just-outside point: %v", got)
	}
}

func TestCircumcenter(t *testing.T) {
	cc, ok := Circumcenter(Point{1, 0}, Point{0, 1}, Point{-1, 0})
	if !ok {
		t.Fatal("degenerate reported for valid triangle")
	}
	if math.Abs(cc.X) > 1e-12 || math.Abs(cc.Y) > 1e-12 {
		t.Errorf("circumcenter = %v, want origin", cc)
	}
	if _, ok := Circumcenter(Point{0, 0}, Point{1, 1}, Point{2, 2}); ok {
		t.Error("collinear points should report degenerate")
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		cc, ok := Circumcenter(a, b, c)
		if !ok {
			return true // degenerate input
		}
		da, db, dc := cc.Dist(a), cc.Dist(b), cc.Dist(c)
		scale := 1 + da
		return math.Abs(da-db) < 1e-9*scale && math.Abs(da-dc) < 1e-9*scale
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTriangleAreaCentroid(t *testing.T) {
	a, b, c := Point{0, 0}, Point{4, 0}, Point{0, 3}
	if got := TriangleArea(a, b, c); got != 6 {
		t.Errorf("area = %v", got)
	}
	if got := TriangleArea(a, c, b); got != 6 {
		t.Errorf("area orientation-dependent: %v", got)
	}
	cen := Centroid(a, b, c)
	if math.Abs(cen.X-4.0/3) > 1e-15 || math.Abs(cen.Y-1) > 1e-15 {
		t.Errorf("centroid = %v", cen)
	}
}

func TestRect(t *testing.T) {
	r := EmptyRect()
	r.Extend(Point{1, 2})
	r.Extend(Point{-1, 5})
	if r.Min != (Point{-1, 2}) || r.Max != (Point{1, 5}) {
		t.Fatalf("rect = %+v", r)
	}
	if r.Width() != 2 || r.Height() != 3 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if r.Center() != (Point{0, 3.5}) {
		t.Errorf("center = %v", r.Center())
	}
	if !r.Contains(Point{0, 3}) || r.Contains(Point{2, 3}) {
		t.Error("Contains wrong")
	}
	if b := BoundsOf(nil); b.Contains(Point{0, 0}) {
		t.Error("empty bounds should contain nothing")
	}
}

func TestOrientationString(t *testing.T) {
	if Clockwise.String() != "clockwise" || CounterClockwise.String() != "counterclockwise" || Collinear.String() != "collinear" {
		t.Error("Orientation.String mismatch")
	}
}
