package geom

import (
	"math"
	"testing"
)

func unitSquare() Polygon { return RectPolygon(0, 0, 1, 1) }

func TestPolygonArea(t *testing.T) {
	sq := unitSquare()
	if got := sq.SignedArea(); got != 1 {
		t.Errorf("ccw signed area = %v", got)
	}
	if got := sq.Reverse().SignedArea(); got != -1 {
		t.Errorf("cw signed area = %v", got)
	}
	if got := sq.Area(); got != 1 {
		t.Errorf("area = %v", got)
	}
	if got := (Polygon{{0, 0}, {1, 1}}).SignedArea(); got != 0 {
		t.Errorf("degenerate polygon area = %v", got)
	}
}

func TestPolygonPerimeter(t *testing.T) {
	if got := unitSquare().Perimeter(); got != 4 {
		t.Errorf("perimeter = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := unitSquare()
	if !sq.Contains(Point{0.5, 0.5}) {
		t.Error("center should be inside")
	}
	for _, p := range []Point{{-0.1, 0.5}, {1.1, 0.5}, {0.5, -0.1}, {0.5, 1.1}} {
		if sq.Contains(p) {
			t.Errorf("%v should be outside", p)
		}
	}
	// Concave polygon: an L-shape.
	l := Polygon{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}}
	if !l.Contains(Point{0.5, 1.5}) {
		t.Error("L-shape arm should be inside")
	}
	if l.Contains(Point{1.5, 1.5}) {
		t.Error("L-shape notch should be outside")
	}
}

func TestPolygonSample(t *testing.T) {
	sq := unitSquare()
	pts := sq.Sample(0.25)
	// Each unit edge splits into 4 segments: 4 vertices + 3 interior points
	// per edge = 16 points.
	if len(pts) != 16 {
		t.Errorf("sampled %d points, want 16", len(pts))
	}
	// All sampled points lie on the boundary (x or y is 0 or 1).
	for _, p := range pts {
		onX := p.X == 0 || p.X == 1
		onY := p.Y == 0 || p.Y == 1
		if !onX && !onY {
			t.Errorf("sample %v not on boundary", p)
		}
	}
	if got := sq.Sample(0); len(got) != 4 {
		t.Errorf("h=0 should return vertices, got %d", len(got))
	}
}

func TestRegion(t *testing.T) {
	r := Region{
		Outer: RectPolygon(0, 0, 4, 4),
		Holes: []Polygon{RectPolygon(1, 1, 2, 2).Reverse()},
	}
	if !r.Contains(Point{3, 3}) {
		t.Error("point in region should be inside")
	}
	if r.Contains(Point{1.5, 1.5}) {
		t.Error("point in hole should be outside")
	}
	if r.Contains(Point{5, 5}) {
		t.Error("point outside outer should be outside")
	}
	if got := r.Area(); got != 15 {
		t.Errorf("area = %v, want 15", got)
	}
	if got := r.Bounds(); got.Min != (Point{0, 0}) || got.Max != (Point{4, 4}) {
		t.Errorf("bounds = %+v", got)
	}
	bp := r.BoundaryPoints(0.5)
	if len(bp) == 0 {
		t.Fatal("no boundary points")
	}
	nHole := 0
	for _, p := range bp {
		if p.X >= 1 && p.X <= 2 && p.Y >= 1 && p.Y <= 2 {
			nHole++
		}
	}
	if nHole == 0 {
		t.Error("hole boundary not sampled")
	}
}

func TestRegularPolygon(t *testing.T) {
	hex := RegularPolygon(Point{1, 1}, 2, 6, 0)
	if len(hex) != 6 {
		t.Fatalf("len = %d", len(hex))
	}
	for _, p := range hex {
		if math.Abs(p.Dist(Point{1, 1})-2) > 1e-12 {
			t.Errorf("vertex %v not at radius 2", p)
		}
	}
	if hex.SignedArea() <= 0 {
		t.Error("regular polygon should be counterclockwise")
	}
	// Hexagon area = 3*sqrt(3)/2 * r^2.
	want := 3 * math.Sqrt(3) / 2 * 4
	if math.Abs(hex.Area()-want) > 1e-9 {
		t.Errorf("area = %v, want %v", hex.Area(), want)
	}
}
