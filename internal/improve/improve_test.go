package improve

import (
	"math"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

// skinnyQuad builds a 60-degree rhombus split along its *long* diagonal:
// flipping to the short diagonal turns two ratio-0.58 triangles into two
// equilateral ones.
func skinnyQuad(t *testing.T) *mesh.Mesh {
	t.Helper()
	h := math.Sqrt(3) / 2
	pts := []geom.Point{
		{X: 0, Y: 0},
		{X: 1, Y: 0},
		{X: 1.5, Y: h},
		{X: 0.5, Y: h},
	}
	m, err := mesh.New(pts, [][3]int32{{0, 1, 2}, {0, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSwapEdgesFixesSkinnyQuad(t *testing.T) {
	m := skinnyQuad(t)
	out, res, err := SwapEdges(m, quality.EdgeRatio{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 1 {
		t.Errorf("flips = %d, want 1", res.Flips)
	}
	if res.FinalQuality <= res.InitialQuality {
		t.Errorf("quality %v -> %v", res.InitialQuality, res.FinalQuality)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// The new diagonal is (1,3): both triangles contain vertices 1 and 3.
	for i, tv := range out.Tris {
		has1, has3 := false, false
		for _, v := range tv {
			if v == 1 {
				has1 = true
			}
			if v == 3 {
				has3 = true
			}
		}
		if !has1 || !has3 {
			t.Errorf("triangle %d = %v does not use the flipped diagonal", i, tv)
		}
	}
}

func TestSwapEdgesIdempotentOnGoodMesh(t *testing.T) {
	// An equilateral fan admits no improving flips.
	pts := []geom.Point{{X: 0, Y: 0}}
	for i := 0; i < 6; i++ {
		a := 2 * math.Pi * float64(i) / 6
		pts = append(pts, geom.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	var tris [][3]int32
	for i := 0; i < 6; i++ {
		tris = append(tris, [3]int32{0, int32(1 + i), int32(1 + (i+1)%6)})
	}
	m, err := mesh.New(pts, tris)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := SwapEdges(m, quality.EdgeRatio{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Errorf("flips on an optimal mesh: %d", res.Flips)
	}
}

func TestSwapEdgesOnGeneratedMesh(t *testing.T) {
	m, err := mesh.Generate("stress", 1500)
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := SwapEdges(m, quality.EdgeRatio{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumTris() != m.NumTris() || out.NumVerts() != m.NumVerts() {
		t.Error("swapping changed mesh cardinality")
	}
	if res.FinalQuality < res.InitialQuality {
		t.Errorf("global quality regressed: %v -> %v", res.InitialQuality, res.FinalQuality)
	}
	// The input mesh is untouched.
	if &m.Tris[0] == &out.Tris[0] {
		t.Error("SwapEdges shares triangle storage with input")
	}
}

func TestUntangleFixesInversion(t *testing.T) {
	// A fan whose center is dragged outside the ring: several triangles
	// invert; untangling pulls the center back.
	pts := []geom.Point{{X: 3, Y: 0}} // center far outside
	for i := 0; i < 6; i++ {
		a := 2 * math.Pi * float64(i) / 6
		pts = append(pts, geom.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	var tris [][3]int32
	for i := 0; i < 6; i++ {
		tris = append(tris, [3]int32{0, int32(1 + i), int32(1 + (i+1)%6)})
	}
	// Build with the *intended* connectivity: orientations computed as if
	// the center were at the origin, so some triangles are inverted now.
	m, err := mesh.New(pts, tris)
	if err != nil {
		t.Fatal(err)
	}
	if countInverted(m) == 0 {
		t.Fatal("test mesh is not tangled")
	}
	res := Untangle(m, 20)
	if res.InvertedBefore == 0 {
		t.Fatal("inversion not detected")
	}
	if res.InvertedAfter != 0 {
		t.Errorf("still %d inverted after untangling", res.InvertedAfter)
	}
	// The center moved to the ring centroid (the origin).
	if m.Coords[0].Norm() > 1e-9 {
		t.Errorf("center at %v, want origin", m.Coords[0])
	}
}

func TestUntangleNoopOnValidMesh(t *testing.T) {
	m, err := mesh.Generate("crake", 800)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]geom.Point(nil), m.Coords...)
	res := Untangle(m, 5)
	if res.InvertedBefore != 0 || res.InvertedAfter != 0 {
		t.Errorf("generated mesh reported tangled: %+v", res)
	}
	for v := range m.Coords {
		if m.Coords[v] != before[v] {
			t.Fatal("untangle moved vertices of a valid mesh")
		}
	}
}
