package improve

import (
	"math"
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

// skinnyQuad builds a 60-degree rhombus split along its *long* diagonal:
// flipping to the short diagonal turns two ratio-0.58 triangles into two
// equilateral ones.
func skinnyQuad(t *testing.T) *mesh.Mesh {
	t.Helper()
	h := math.Sqrt(3) / 2
	pts := []geom.Point{
		{X: 0, Y: 0},
		{X: 1, Y: 0},
		{X: 1.5, Y: h},
		{X: 0.5, Y: h},
	}
	m, err := mesh.New(pts, [][3]int32{{0, 1, 2}, {0, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSwapEdgesFixesSkinnyQuad(t *testing.T) {
	m := skinnyQuad(t)
	out, res, err := SwapEdges(m, quality.EdgeRatio{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 1 {
		t.Errorf("flips = %d, want 1", res.Flips)
	}
	if res.FinalQuality <= res.InitialQuality {
		t.Errorf("quality %v -> %v", res.InitialQuality, res.FinalQuality)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// The new diagonal is (1,3): both triangles contain vertices 1 and 3.
	for i, tv := range out.Tris {
		has1, has3 := false, false
		for _, v := range tv {
			if v == 1 {
				has1 = true
			}
			if v == 3 {
				has3 = true
			}
		}
		if !has1 || !has3 {
			t.Errorf("triangle %d = %v does not use the flipped diagonal", i, tv)
		}
	}
}

func TestSwapEdgesIdempotentOnGoodMesh(t *testing.T) {
	// An equilateral fan admits no improving flips.
	pts := []geom.Point{{X: 0, Y: 0}}
	for i := 0; i < 6; i++ {
		a := 2 * math.Pi * float64(i) / 6
		pts = append(pts, geom.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	var tris [][3]int32
	for i := 0; i < 6; i++ {
		tris = append(tris, [3]int32{0, int32(1 + i), int32(1 + (i+1)%6)})
	}
	m, err := mesh.New(pts, tris)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := SwapEdges(m, quality.EdgeRatio{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Errorf("flips on an optimal mesh: %d", res.Flips)
	}
}

func TestSwapEdgesOnGeneratedMesh(t *testing.T) {
	m, err := mesh.Generate("stress", 1500)
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := SwapEdges(m, quality.EdgeRatio{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumTris() != m.NumTris() || out.NumVerts() != m.NumVerts() {
		t.Error("swapping changed mesh cardinality")
	}
	if res.FinalQuality < res.InitialQuality {
		t.Errorf("global quality regressed: %v -> %v", res.InitialQuality, res.FinalQuality)
	}
	// The input mesh is untouched.
	if &m.Tris[0] == &out.Tris[0] {
		t.Error("SwapEdges shares triangle storage with input")
	}
}

func TestUntangleFixesInversion(t *testing.T) {
	// A fan whose center is dragged outside the ring: several triangles
	// invert; untangling pulls the center back.
	pts := []geom.Point{{X: 3, Y: 0}} // center far outside
	for i := 0; i < 6; i++ {
		a := 2 * math.Pi * float64(i) / 6
		pts = append(pts, geom.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	var tris [][3]int32
	for i := 0; i < 6; i++ {
		tris = append(tris, [3]int32{0, int32(1 + i), int32(1 + (i+1)%6)})
	}
	// Build with the *intended* connectivity: orientations computed as if
	// the center were at the origin, so some triangles are inverted now.
	m, err := mesh.New(pts, tris)
	if err != nil {
		t.Fatal(err)
	}
	if countInverted(m) == 0 {
		t.Fatal("test mesh is not tangled")
	}
	res := Untangle(m, 20)
	if res.InvertedBefore == 0 {
		t.Fatal("inversion not detected")
	}
	if res.InvertedAfter != 0 {
		t.Errorf("still %d inverted after untangling", res.InvertedAfter)
	}
	// The center moved to the ring centroid (the origin).
	if m.Coords[0].Norm() > 1e-9 {
		t.Errorf("center at %v, want origin", m.Coords[0])
	}
}

func TestUntangleNoopOnValidMesh(t *testing.T) {
	m, err := mesh.Generate("crake", 800)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]geom.Point(nil), m.Coords...)
	res := Untangle(m, 5)
	if res.InvertedBefore != 0 || res.InvertedAfter != 0 {
		t.Errorf("generated mesh reported tangled: %+v", res)
	}
	for v := range m.Coords {
		if m.Coords[v] != before[v] {
			t.Fatal("untangle moved vertices of a valid mesh")
		}
	}
}

// TestSwapEdgesRejectsCollinearQuad is the regression test for the convexity
// predicate: quad a-c-b-d whose corner a lies exactly on the line c-d. The
// flip would create the zero-area triangle (c,d,a), and EdgeRatio — which
// only sees edge lengths and is nonzero for collinear points — scores the
// flip as an improvement over the skinny input triangles. The old test
// (Orient2D(c,d,a) == Orient2D(c,d,b)) let it through because Collinear
// differs from CounterClockwise; strictly-opposite-sides must reject it.
func TestSwapEdgesRejectsCollinearQuad(t *testing.T) {
	pts := []geom.Point{
		{X: 1, Y: 0},    // 0: a, on the segment c-d
		{X: 1, Y: 0.05}, // 1: b
		{X: 0, Y: 0},    // 2: c
		{X: 2, Y: 0},    // 3: d
	}
	m, err := mesh.New(pts, [][3]int32{{0, 1, 2}, {1, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Confirm the trap is armed: the flip would raise the minimum EdgeRatio,
	// so only the convexity test stands between it and a degenerate triangle.
	met := quality.EdgeRatio{}
	oldMin := math.Min(met.Triangle(pts[0], pts[1], pts[2]), met.Triangle(pts[0], pts[1], pts[3]))
	newMin := math.Min(met.Triangle(pts[2], pts[3], pts[0]), met.Triangle(pts[2], pts[3], pts[1]))
	if newMin <= oldMin {
		t.Fatalf("fixture broken: flip would not look like an improvement (%v <= %v)", newMin, oldMin)
	}
	out, res, err := SwapEdges(m, met, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Errorf("flipped %d edges across a collinear quad corner", res.Flips)
	}
	for i, tv := range out.Tris {
		if geom.Orient2D(out.Coords[tv[0]], out.Coords[tv[1]], out.Coords[tv[2]]) != geom.CounterClockwise {
			t.Errorf("triangle %d = %v is degenerate or inverted after swapping", i, tv)
		}
	}
}

// TestUntangleDeterministic is the regression test for the map-iteration
// nondeterminism: several adjacent interior vertices are dragged far outside
// the mesh so Untangle must move an interconnected set in place, where the
// commit order changes the intermediate (and potentially final) coordinates.
// Every run on an identical tangle must produce identical coordinates.
func TestUntangleDeterministic(t *testing.T) {
	tangle := func() *mesh.Mesh {
		m, err := mesh.Generate("crake", 600)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.InteriorVerts) < 8 {
			t.Fatal("fixture has too few interior vertices")
		}
		// Drag a vertex and its interior neighbors far away, so the bad set
		// is adjacent (moves observe each other's in-place commits).
		seed := m.InteriorVerts[len(m.InteriorVerts)/2]
		dragged := []int32{seed}
		for _, w := range m.Neighbors(seed) {
			if !m.IsBoundary[w] {
				dragged = append(dragged, w)
			}
		}
		for i, v := range dragged {
			m.Coords[v] = geom.Point{X: 50 + float64(i), Y: 40 - float64(i)}
		}
		return m
	}

	ref := tangle()
	refRes := Untangle(ref, 25)
	if refRes.InvertedBefore == 0 {
		t.Fatal("fixture is not tangled")
	}
	for run := 0; run < 5; run++ {
		m := tangle()
		res := Untangle(m, 25)
		if res != refRes {
			t.Fatalf("run %d: result %+v differs from %+v", run, res, refRes)
		}
		for v := range m.Coords {
			if m.Coords[v] != ref.Coords[v] {
				t.Fatalf("run %d: vertex %d = %v, want bit-identical %v", run, v, m.Coords[v], ref.Coords[v])
			}
		}
	}
}
