// Package improve implements the local mesh improvement operations the
// paper's conclusion names as natural companions of reordered smoothing:
// edge swapping (Freitag and Ollivier [5]) and optimization-based untangling
// (Freitag and Plassmann [6]). Both operate on the same mesh structure the
// smoother uses, so the locality orderings apply to them unchanged.
package improve

import (
	"fmt"
	"sort"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

// SwapResult reports an edge-swapping pass.
type SwapResult struct {
	// Passes is the number of sweeps over the edges performed.
	Passes int
	// Flips is the total number of edges flipped.
	Flips int
	// InitialQuality and FinalQuality are global mesh qualities.
	InitialQuality, FinalQuality float64
}

// SwapEdges improves the mesh by flipping interior edges whenever the flip
// raises the minimum quality of the two incident triangles (the standard
// local improvement criterion of [5]). It sweeps until no edge flips or
// maxPasses is reached and returns a new mesh; the input is unchanged.
func SwapEdges(m *mesh.Mesh, met quality.Metric, maxPasses int) (*mesh.Mesh, SwapResult, error) {
	if met == nil {
		met = quality.EdgeRatio{}
	}
	if maxPasses < 1 {
		maxPasses = 1
	}
	res := SwapResult{InitialQuality: quality.Global(m, met)}

	tris := append([][3]int32(nil), m.Tris...)
	coords := m.Coords

	for pass := 0; pass < maxPasses; pass++ {
		res.Passes++
		flips := 0

		// Edge -> incident triangles, rebuilt each pass.
		type edge struct{ a, b int32 }
		norm := func(a, b int32) edge {
			if a > b {
				a, b = b, a
			}
			return edge{a, b}
		}
		incident := make(map[edge][]int32, 3*len(tris))
		for ti, tv := range tris {
			for k := 0; k < 3; k++ {
				e := norm(tv[k], tv[(k+1)%3])
				incident[e] = append(incident[e], int32(ti))
			}
		}
		// Deterministic sweep order.
		edges := make([]edge, 0, len(incident))
		for e, ts := range incident {
			if len(ts) == 2 {
				edges = append(edges, e)
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].a != edges[j].a {
				return edges[i].a < edges[j].a
			}
			return edges[i].b < edges[j].b
		})

		flipped := make(map[int32]bool) // triangles consumed this pass
		for _, e := range edges {
			ts := incident[e]
			t1, t2 := ts[0], ts[1]
			if flipped[t1] || flipped[t2] {
				continue
			}
			c, ok := oppositeVertex(tris[t1], e.a, e.b)
			if !ok {
				continue
			}
			d, ok := oppositeVertex(tris[t2], e.a, e.b)
			if !ok {
				continue
			}
			// The flip replaces (a,b,c)+(a,b,d) with (c,d,a)+(c,d,b). It is
			// valid only when the quad a-c-b-d is strictly convex: a and b
			// must lie strictly on opposite sides of the new diagonal c-d. A
			// collinear endpoint would make one new triangle zero-area — and
			// EdgeRatio, which only sees edge lengths, would still score it
			// as an improvement — so Collinear is rejected, not treated as
			// "different from the other side".
			oa := geom.Orient2D(coords[c], coords[d], coords[e.a])
			ob := geom.Orient2D(coords[c], coords[d], coords[e.b])
			if oa == geom.Collinear || ob == geom.Collinear || oa == ob {
				continue
			}
			oldMin := min2(triQuality(coords, met, e.a, e.b, c), triQuality(coords, met, e.a, e.b, d))
			newMin := min2(triQuality(coords, met, c, d, e.a), triQuality(coords, met, c, d, e.b))
			if newMin <= oldMin {
				continue
			}
			tris[t1] = orient(coords, c, d, e.a)
			tris[t2] = orient(coords, c, d, e.b)
			flipped[t1], flipped[t2] = true, true
			flips++
		}
		res.Flips += flips
		if flips == 0 {
			break
		}
	}

	out, err := mesh.New(append([]geom.Point(nil), coords...), tris)
	if err != nil {
		return nil, res, fmt.Errorf("improve: rebuilding after swaps: %w", err)
	}
	res.FinalQuality = quality.Global(out, met)
	return out, res, nil
}

func oppositeVertex(t [3]int32, a, b int32) (int32, bool) {
	for _, v := range t {
		if v != a && v != b {
			return v, true
		}
	}
	return 0, false
}

func triQuality(coords []geom.Point, met quality.Metric, a, b, c int32) float64 {
	return met.Triangle(coords[a], coords[b], coords[c])
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// orient returns the triangle (a, b, c) with counterclockwise winding.
func orient(coords []geom.Point, a, b, c int32) [3]int32 {
	if geom.Orient2D(coords[a], coords[b], coords[c]) == geom.Clockwise {
		b, c = c, b
	}
	return [3]int32{a, b, c}
}

// UntangleResult reports an untangling run.
type UntangleResult struct {
	// InvertedBefore and InvertedAfter count triangles with non-positive
	// area before and after.
	InvertedBefore, InvertedAfter int
	// Iterations is the number of corrective sweeps performed.
	Iterations int
}

// Untangle repairs inverted (non-counterclockwise) triangles by moving each
// interior vertex incident to an inverted triangle toward the centroid of
// its neighbors — the Laplacian step restricted to tangled neighborhoods,
// the simplest member of the local untangling family of [6]. The mesh is
// modified in place.
func Untangle(m *mesh.Mesh, maxIters int) UntangleResult {
	if maxIters < 1 {
		maxIters = 1
	}
	res := UntangleResult{InvertedBefore: countInverted(m)}
	res.InvertedAfter = res.InvertedBefore
	for it := 0; it < maxIters && res.InvertedAfter > 0; it++ {
		res.Iterations++
		// Vertices touching an inverted triangle.
		bad := make(map[int32]bool)
		for _, tv := range m.Tris {
			if geom.Orient2D(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]]) != geom.CounterClockwise {
				bad[tv[0]], bad[tv[1]], bad[tv[2]] = true, true, true
			}
		}
		// Commit the moves in ascending vertex order: the updates are applied
		// in place, so later moves read earlier ones — iterating the map
		// directly would make the result depend on Go's randomized map order,
		// run to run, in a repo whose schedulers guarantee bit-identical
		// sweeps.
		vs := make([]int32, 0, len(bad))
		for v := range bad {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		moved := false
		for _, v := range vs {
			if m.IsBoundary[v] {
				continue
			}
			nbrs := m.Neighbors(v)
			var sx, sy float64
			for _, w := range nbrs {
				sx += m.Coords[w].X
				sy += m.Coords[w].Y
			}
			n := float64(len(nbrs))
			target := geom.Point{X: sx / n, Y: sy / n}
			if target != m.Coords[v] {
				m.Coords[v] = target
				moved = true
			}
		}
		res.InvertedAfter = countInverted(m)
		if !moved {
			break
		}
	}
	return res
}

func countInverted(m *mesh.Mesh) int {
	n := 0
	for _, tv := range m.Tris {
		if geom.Orient2D(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]]) != geom.CounterClockwise {
			n++
		}
	}
	return n
}
