package cache

// Next-line prefetching. §4.1 of the paper argues that orderings work
// because "when a node is selected, the node is streamed to the cache along
// with its neighboring nodes": hardware prefetchers reward sequential line
// access, which is exactly the pattern RDR produces. PrefetchSim wraps a Sim
// with an N-line sequential tagged prefetcher per core: on every demand
// access to line L, lines L+1..L+Degree are installed into the hierarchy
// without being counted as demand accesses; prefetched lines that are later
// demanded count as prefetch hits.
type PrefetchSim struct {
	*Sim
	// Degree is the number of lines fetched ahead (0 disables).
	Degree int

	// PrefetchIssued counts prefetch fills; PrefetchUseful counts demand
	// accesses that hit a line brought in by the prefetcher.
	PrefetchIssued, PrefetchUseful int64

	// prefetched tracks lines installed by the prefetcher and not yet
	// demanded, per core.
	prefetched []map[uint64]struct{}
	// lastLine is the previous demand line per core, used to detect
	// ascending streams (tagged prefetch: only prefetch on +1 strides).
	lastLine []uint64
	hasLast  []bool
}

// NewPrefetchSim builds a prefetching simulator over the same configuration.
func NewPrefetchSim(cfg Config, cores, degree int) (*PrefetchSim, error) {
	sim, err := NewSim(cfg, cores)
	if err != nil {
		return nil, err
	}
	p := &PrefetchSim{
		Sim:        sim,
		Degree:     degree,
		prefetched: make([]map[uint64]struct{}, cores),
		lastLine:   make([]uint64, cores),
		hasLast:    make([]bool, cores),
	}
	for c := range p.prefetched {
		p.prefetched[c] = make(map[uint64]struct{})
	}
	return p, nil
}

// AccessLine performs a demand access and, on an ascending stride, installs
// the next Degree lines.
func (p *PrefetchSim) AccessLine(core int, line uint64) {
	if _, ok := p.prefetched[core][line]; ok {
		p.PrefetchUseful++
		delete(p.prefetched[core], line)
	}
	p.Sim.AccessLine(core, line)

	if p.Degree > 0 && p.hasLast[core] && line == p.lastLine[core]+1 {
		for d := 1; d <= p.Degree; d++ {
			next := line + uint64(d)
			p.fill(core, next)
			p.prefetched[core][next] = struct{}{}
			p.PrefetchIssued++
		}
	}
	p.lastLine[core] = line
	p.hasLast[core] = true
}

// fill installs a line into the hierarchy without demand accounting.
func (p *PrefetchSim) fill(core int, line uint64) {
	socket := core / p.cfg.CoresPerSocket
	for i := range p.cfg.Levels {
		var lv *level
		if pi := p.privateIdx[i]; pi >= 0 {
			lv = p.private[core][pi]
		} else {
			lv = p.shared[socket][p.sharedIdx[i]]
		}
		if lv.access(line) {
			return // already resident below this level
		}
	}
}

// AccessVertex is the prefetching analogue of Sim.AccessVertex.
func (p *PrefetchSim) AccessVertex(core int, v int32) {
	stride := p.cfg.VertexStrideBytes
	lo := uint64(int64(v)*stride) / uint64(p.cfg.LineBytes)
	hi := uint64(int64(v)*stride+stride-1) / uint64(p.cfg.LineBytes)
	for line := lo; line <= hi; line++ {
		p.AccessLine(core, line)
	}
}

// Coverage returns the fraction of issued prefetches that were later
// demanded (0 when none were issued).
func (p *PrefetchSim) Coverage() float64 {
	if p.PrefetchIssued == 0 {
		return 0
	}
	return float64(p.PrefetchUseful) / float64(p.PrefetchIssued)
}
