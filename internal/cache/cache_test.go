package cache

import (
	"testing"

	"lams/internal/trace"
)

// tinyConfig is a two-level hierarchy small enough to reason about exactly:
// L1 = 2 sets x 2 ways, L2 = 4 sets x 2 ways (shared), 64-byte lines.
func tinyConfig() Config {
	return Config{
		LineBytes:      64,
		CoresPerSocket: 2,
		Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 4 * 64, Assoc: 2, LatencyCycles: 4},
			{Name: "L2", SizeBytes: 8 * 64, Assoc: 2, Shared: true, LatencyCycles: 10},
		},
		MemLatencyCycles:  100,
		VertexStrideBytes: 64,
	}
}

func TestLRUHitMiss(t *testing.T) {
	sim, err := NewSim(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two lines in the same set (set = line % 2): lines 0 and 2.
	sim.AccessLine(0, 0) // miss
	sim.AccessLine(0, 0) // hit
	sim.AccessLine(0, 2) // miss
	sim.AccessLine(0, 0) // hit (2-way holds both)
	st := sim.CoreStats(0)
	if st[0].Accesses != 4 || st[0].Misses != 2 {
		t.Errorf("L1 = %+v", st[0])
	}
}

func TestLRUEviction(t *testing.T) {
	sim, err := NewSim(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Three lines mapping to set 0 of the 2-way L1: 0, 2, 4.
	sim.AccessLine(0, 0) // miss
	sim.AccessLine(0, 2) // miss
	sim.AccessLine(0, 4) // miss, evicts 0 (LRU)
	sim.AccessLine(0, 0) // miss again: 0 was evicted
	sim.AccessLine(0, 4) // hit: 4 still resident
	st := sim.CoreStats(0)
	if st[0].Misses != 4 {
		t.Errorf("L1 misses = %d, want 4", st[0].Misses)
	}
	if st[0].Accesses != 5 {
		t.Errorf("L1 accesses = %d", st[0].Accesses)
	}
}

func TestL1HitDoesNotTouchL2(t *testing.T) {
	sim, err := NewSim(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessLine(0, 0)
	sim.AccessLine(0, 0)
	st := sim.CoreStats(0)
	if st[1].Accesses != 1 {
		t.Errorf("L2 accesses = %d, want 1 (only the L1 miss)", st[1].Accesses)
	}
}

func TestSharedL3AcrossSocket(t *testing.T) {
	// Two cores on the same socket share L2 (the shared level of
	// tinyConfig): core 1 hits the line core 0 fetched.
	sim, err := NewSim(tinyConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessLine(0, 0) // core 0: L1 miss, L2 miss, memory
	sim.AccessLine(1, 0) // core 1: L1 miss, L2 HIT (shared)
	st0 := sim.CoreStats(0)
	st1 := sim.CoreStats(1)
	if st0[1].Misses != 1 {
		t.Errorf("core 0 L2 misses = %d", st0[1].Misses)
	}
	if st1[1].Misses != 0 {
		t.Errorf("core 1 L2 misses = %d, want 0 (shared hit)", st1[1].Misses)
	}
	if sim.MemAccesses() != 1 {
		t.Errorf("memory accesses = %d", sim.MemAccesses())
	}
}

func TestSeparateSockets(t *testing.T) {
	// Cores 0 and 2 are on different sockets (2 cores/socket): no sharing.
	sim, err := NewSim(tinyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessLine(0, 0)
	sim.AccessLine(2, 0)
	if sim.MemAccesses() != 2 {
		t.Errorf("memory accesses = %d, want 2 (no cross-socket sharing)", sim.MemAccesses())
	}
}

func TestPrivateL1PerCore(t *testing.T) {
	sim, err := NewSim(tinyConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessLine(0, 0)
	sim.AccessLine(1, 0)
	st1 := sim.CoreStats(1)
	if st1[0].Misses != 1 {
		t.Errorf("core 1 should miss its private L1, got %+v", st1[0])
	}
}

func TestAccessVertexStride(t *testing.T) {
	cfg := tinyConfig()
	cfg.VertexStrideBytes = 16 // 4 vertices per line
	sim, err := NewSim(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessVertex(0, 0) // line 0: miss
	sim.AccessVertex(0, 1) // line 0: hit
	sim.AccessVertex(0, 3) // line 0: hit
	sim.AccessVertex(0, 4) // line 1: miss
	st := sim.CoreStats(0)
	if st[0].Misses != 2 || st[0].Accesses != 4 {
		t.Errorf("L1 = %+v", st[0])
	}
}

func TestAccessVertexStraddle(t *testing.T) {
	cfg := tinyConfig()
	cfg.VertexStrideBytes = 66 // paper's node estimate: straddles lines
	sim, err := NewSim(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessVertex(0, 1) // bytes 66..131 -> lines 1 and 2: two accesses
	st := sim.CoreStats(0)
	if st[0].Accesses != 2 {
		t.Errorf("straddling record should touch 2 lines, got %d", st[0].Accesses)
	}
}

func TestRunTraceMapping(t *testing.T) {
	sim, err := NewSim(tinyConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tb := trace.NewBuffer(2)
	tb.Access(0, 0)
	tb.Access(1, 1)
	tb.Access(0, 0)
	if err := sim.RunTrace(tb); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st[0].Accesses != 3 {
		t.Errorf("total L1 accesses = %d", st[0].Accesses)
	}
	// Too many trace cores errors.
	tb3 := trace.NewBuffer(3)
	if err := sim.RunTrace(tb3); err == nil {
		t.Error("oversized trace accepted")
	}
}

func TestPenaltyCycles(t *testing.T) {
	cfg := tinyConfig()
	stats := []LevelStats{
		{Name: "L1", Accesses: 100, Misses: 10},
		{Name: "L2", Accesses: 10, Misses: 4},
	}
	// 10 L1 misses cost the L2 latency (10 cycles); 4 memory accesses cost
	// 100 cycles each.
	got := PenaltyCycles(cfg, stats, 4)
	if got != 10*10+4*100 {
		t.Errorf("penalty = %v", got)
	}
}

func TestCorePenaltyCycles(t *testing.T) {
	sim, err := NewSim(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessLine(0, 0) // L1 miss (10cy) + L2 miss -> memory (100cy)
	if got := sim.CorePenaltyCycles(0); got != 110 {
		t.Errorf("penalty = %v, want 110", got)
	}
}

func TestWestmereConfig(t *testing.T) {
	cfg := Westmere()
	if len(cfg.Levels) != 3 {
		t.Fatal("want 3 levels")
	}
	if cfg.Levels[0].SizeBytes != 32<<10 || cfg.Levels[1].SizeBytes != 256<<10 || cfg.Levels[2].SizeBytes != 24<<20 {
		t.Error("level sizes wrong")
	}
	if !cfg.Levels[2].Shared || cfg.Levels[0].Shared {
		t.Error("sharing flags wrong")
	}
	if cfg.CoresPerSocket != 8 {
		t.Error("cores per socket wrong")
	}
	if cfg.VertsPerLine() != 4 {
		t.Errorf("verts per line = %d", cfg.VertsPerLine())
	}
}

func TestScaledConfig(t *testing.T) {
	cfg := Scaled(32808) // one tenth of the paper's carabiner
	full := Westmere()
	for i := range cfg.Levels {
		if cfg.Levels[i].SizeBytes >= full.Levels[i].SizeBytes {
			t.Errorf("level %d not scaled down", i)
		}
		if cfg.Levels[i].Assoc != full.Levels[i].Assoc {
			t.Errorf("level %d associativity changed", i)
		}
		if cfg.Levels[i].SizeBytes < 2*cfg.LineBytes*int64(cfg.Levels[i].Assoc) {
			t.Errorf("level %d below floor", i)
		}
	}
	// L3 capacity in elements stays slightly above the mesh size
	// (paper ratio 372k/328k), so a full sweep fits.
	l3Elems := cfg.Levels[2].SizeBytes / cfg.VertexStrideBytes
	if l3Elems < 32808 {
		t.Errorf("scaled L3 holds %d elements for a 32808-vertex mesh", l3Elems)
	}
	// At paper scale or above, scaling is a no-op.
	if got := Scaled(400000); got.Levels[2].SizeBytes != full.Levels[2].SizeBytes {
		t.Error("paper-scale config should be unscaled")
	}
	if got := Scaled(0); got.Levels[0].SizeBytes != full.Levels[0].SizeBytes {
		t.Error("zero mesh size should be unscaled")
	}
}

func TestNewSimErrors(t *testing.T) {
	if _, err := NewSim(tinyConfig(), 0); err == nil {
		t.Error("zero cores accepted")
	}
	bad := tinyConfig()
	bad.LineBytes = 0
	if _, err := NewSim(bad, 1); err == nil {
		t.Error("zero line bytes accepted")
	}
}

func TestLevelStatsString(t *testing.T) {
	s := LevelStats{Name: "L1", Accesses: 100, Misses: 5}
	if s.MissRate() != 0.05 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
	if s.String() == "" {
		t.Error("empty string")
	}
	var zero LevelStats
	if zero.MissRate() != 0 {
		t.Error("zero stats miss rate should be 0")
	}
}

func TestInclusiveFill(t *testing.T) {
	// After a miss chain, the line is resident at every level: a re-access
	// after evicting it from L1 must hit L2.
	sim, err := NewSim(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessLine(0, 0) // fill L1+L2
	sim.AccessLine(0, 2) // set 0
	sim.AccessLine(0, 4) // set 0: evicts 0 from L1
	sim.AccessLine(0, 0) // L1 miss, must hit L2
	st := sim.CoreStats(0)
	if st[1].Misses != 3 {
		t.Errorf("L2 misses = %d, want 3 (lines 0, 2, 4 once each)", st[1].Misses)
	}
}
