package cache

import "testing"

func TestPrefetchSequentialStream(t *testing.T) {
	p, err := NewPrefetchSim(tinyConfig(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A purely sequential stream: after the second access establishes the
	// stride, later lines arrive via prefetch.
	for line := uint64(0); line < 8; line++ {
		p.AccessLine(0, line)
	}
	if p.PrefetchIssued == 0 {
		t.Fatal("no prefetches issued on a sequential stream")
	}
	if p.PrefetchUseful == 0 {
		t.Fatal("no prefetch was useful")
	}
	if p.Coverage() <= 0 || p.Coverage() > 1 {
		t.Errorf("coverage = %v", p.Coverage())
	}
	// Demand misses must be fewer than without prefetching.
	base, err := NewSim(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for line := uint64(0); line < 8; line++ {
		base.AccessLine(0, line)
	}
	if p.CoreStats(0)[0].Misses >= base.CoreStats(0)[0].Misses {
		t.Errorf("prefetching did not reduce misses: %d vs %d",
			p.CoreStats(0)[0].Misses, base.CoreStats(0)[0].Misses)
	}
}

func TestPrefetchRandomStreamIsNeutral(t *testing.T) {
	p, err := NewPrefetchSim(tinyConfig(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Strided (non +1) accesses never trigger the tagged prefetcher.
	for i := 0; i < 16; i++ {
		p.AccessLine(0, uint64(i*3))
	}
	if p.PrefetchIssued != 0 {
		t.Errorf("prefetches issued on a stride-3 stream: %d", p.PrefetchIssued)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	p, err := NewPrefetchSim(tinyConfig(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for line := uint64(0); line < 8; line++ {
		p.AccessLine(0, line)
	}
	if p.PrefetchIssued != 0 {
		t.Error("degree-0 prefetcher issued prefetches")
	}
	if p.Coverage() != 0 {
		t.Error("coverage should be 0 with no prefetches")
	}
}

func TestPrefetchAccessVertex(t *testing.T) {
	cfg := tinyConfig()
	cfg.VertexStrideBytes = 16
	p, err := NewPrefetchSim(cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 32; v++ {
		p.AccessVertex(0, v)
	}
	// Sequential vertex sweep -> sequential lines -> prefetches fire.
	if p.PrefetchIssued == 0 {
		t.Error("no prefetches on sequential vertex sweep")
	}
}
