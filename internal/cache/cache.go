// Package cache simulates the memory hierarchy of the paper's evaluation
// platform — the Intel Westmere-EX of Figure 2: per-core 32 KB L1 and
// 256 KB L2, a 24 MB L3 shared by the eight cores of a socket, four sockets,
// inclusive, LRU, 64-byte lines — and the Eq. (2) cycle-penalty model
//
//	(m1·c2 + m1·m2·c3 + m1·m2·m3·cm) · #accesses.
//
// It stands in for the PAPI hardware counters the paper reads: the simulator
// consumes the very access traces the instrumented smoother emits and
// reports per-level access/miss counters per core and aggregated.
package cache

import (
	"fmt"

	"lams/internal/trace"
)

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int64
	Assoc     int
	// Shared marks the level as shared by all cores of a socket (the L3);
	// unshared levels are private per core.
	Shared bool
	// LatencyCycles is the cost of fetching from this level after a miss in
	// the previous level (the c2/c3 constants of Eq. 2).
	LatencyCycles float64
}

// Config describes a cache hierarchy and its host topology.
type Config struct {
	LineBytes      int64
	Levels         []LevelConfig // ordered L1, L2, L3, ...
	CoresPerSocket int
	// MemLatencyCycles is the cost of a fetch from main memory (cm).
	MemLatencyCycles float64
	// NUMA optionally refines memory latency: [9] reports 175–290 cycles
	// depending on whether the line's home socket matches the requesting
	// core's. When nil, every memory fetch costs MemLatencyCycles.
	NUMA *NUMAConfig
	// VertexStrideBytes is the size of one vertex record in the data array.
	// The smoothing kernel reads each vertex's coordinate pair (16 bytes),
	// so several consecutive records share a cache line — the spatial
	// locality channel through which orderings act (§4.1). The paper's full
	// 66-byte node estimate is available as an ablation. Records that
	// straddle a line boundary touch both lines.
	VertexStrideBytes int64
}

// VertsPerLine returns how many vertex records share one cache line (at
// least 1).
func (c Config) VertsPerLine() int {
	if c.VertexStrideBytes <= 0 || c.LineBytes <= 0 {
		return 1
	}
	n := c.LineBytes / c.VertexStrideBytes
	if n < 1 {
		n = 1
	}
	return int(n)
}

// NUMAConfig models socket-local vs remote memory access costs. Lines are
// assigned home sockets by interleaving PageBytes-sized chunks round-robin
// across Sockets (the default policy of the paper's Linux platform).
type NUMAConfig struct {
	Sockets                   int
	PageBytes                 int64
	LocalCycles, RemoteCycles float64
}

// homeSocket returns the socket owning the page containing the line.
func (n *NUMAConfig) homeSocket(line uint64, lineBytes int64) int {
	if n.Sockets <= 1 || n.PageBytes <= 0 {
		return 0
	}
	page := line * uint64(lineBytes) / uint64(n.PageBytes)
	return int(page % uint64(n.Sockets))
}

// WestmereNUMA returns the Westmere configuration with the [9] NUMA latency
// split: 175 cycles to local memory, 290 to a remote socket's, 4 KB page
// interleave over the four sockets.
func WestmereNUMA() Config {
	cfg := Westmere()
	cfg.NUMA = &NUMAConfig{Sockets: 4, PageBytes: 4 << 10, LocalCycles: 175, RemoteCycles: 290}
	return cfg
}

// Westmere returns the configuration of the paper's platform (§5.1, [9]):
// L1 32 KB private (4 cycles), L2 256 KB private (10 cycles), L3 24 MB
// shared per 8-core socket (38–170 cycles, midpoint-ish 60), memory 175–290
// cycles (230). Latency of a level is the cost paid on a miss in the level
// above, matching Eq. (2).
func Westmere() Config {
	return Config{
		LineBytes:      64,
		CoresPerSocket: 8,
		Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, LatencyCycles: 4},
			{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LatencyCycles: 10},
			{Name: "L3", SizeBytes: 24 << 20, Assoc: 24, Shared: true, LatencyCycles: 60},
		},
		MemLatencyCycles:  230,
		VertexStrideBytes: 16,
	}
}

// Paper capacity ratios: §5.2.3 estimates that roughly 496 / 3,970 /
// 372,000 mesh elements fit the L1 / L2 / L3 of the 328,082-vertex
// carabiner run. Scaled preserves these capacity-to-mesh-size ratios at
// other mesh scales.
const (
	paperVerts  = 328082
	paperL1Elem = 496
	paperL2Elem = 3970
	paperL3Elem = 372000
)

// Scaled returns the Westmere configuration with cache capacities scaled so
// that each level holds the same *fraction of the mesh* as on the paper's
// platform and inputs. Running the paper's 300–400k-vertex meshes against
// the true 24 MB L3 needs no scaling, but the default experiment meshes are
// ~20x smaller; without scaling, every level past L1 would be cold and the
// orderings indistinguishable. Associativity and line size are preserved;
// capacities are floored at two sets per level.
func Scaled(meshVerts int) Config {
	cfg := Westmere()
	if meshVerts <= 0 || meshVerts >= paperVerts {
		return cfg
	}
	for i, elems := range []float64{paperL1Elem, paperL2Elem, paperL3Elem} {
		lv := &cfg.Levels[i]
		frac := elems / paperVerts
		bytes := int64(frac*float64(meshVerts)) * cfg.VertexStrideBytes
		setBytes := cfg.LineBytes * int64(lv.Assoc)
		sets := (bytes + setBytes - 1) / setBytes
		if sets < 2 {
			sets = 2
		}
		lv.SizeBytes = sets * setBytes
	}
	return cfg
}

// set is one associativity set: a tag list kept in LRU order (front = MRU).
type set struct {
	tags []uint64
}

// access looks tag up in the set; on hit it moves the tag to the front and
// returns true, on miss it inserts the tag (evicting the LRU way) and
// returns false.
func (s *set) access(tag uint64, assoc int) bool {
	for i, t := range s.tags {
		if t == tag {
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag
			return true
		}
	}
	if len(s.tags) < assoc {
		s.tags = append(s.tags, 0)
	}
	copy(s.tags[1:], s.tags)
	s.tags[0] = tag
	return false
}

// level is one instantiated cache (one core's private level, or one
// socket's shared level).
type level struct {
	cfg  LevelConfig
	sets []set
}

func newLevel(cfg LevelConfig, lineBytes int64) *level {
	nSets := cfg.SizeBytes / (lineBytes * int64(cfg.Assoc))
	if nSets < 1 {
		nSets = 1
	}
	return &level{cfg: cfg, sets: make([]set, nSets)}
}

func (l *level) access(line uint64) bool {
	idx := line % uint64(len(l.sets))
	return l.sets[idx].access(line, l.cfg.Assoc)
}

// LevelStats counts accesses and misses at one level.
type LevelStats struct {
	Name             string
	Accesses, Misses int64
}

// MissRate returns Misses/Accesses (0 when there were no accesses).
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

func (s LevelStats) String() string {
	return fmt.Sprintf("%s: %d/%d (%.3f%%)", s.Name, s.Misses, s.Accesses, 100*s.MissRate())
}

// Sim simulates a hierarchy for a fixed number of cores.
type Sim struct {
	cfg     Config
	cores   int
	private [][]*level // [core][privateLevelIdx]
	shared  [][]*level // [socket][sharedLevelIdx]
	// levelKind[i] = private index or shared index of config level i.
	privateIdx, sharedIdx []int
	stats                 [][]LevelStats // [core][configLevelIdx]
	memAccesses           []int64        // per core
	memLocal, memRemote   []int64        // per core, NUMA split (when configured)
}

// NewSim builds a simulator for the given core count. Cores fill sockets
// compactly (cores 0..7 on socket 0, ...), the KMP_AFFINITY=compact pinning
// of §5.1.
func NewSim(cfg Config, cores int) (*Sim, error) {
	if cores < 1 {
		return nil, fmt.Errorf("cache: need at least one core")
	}
	if cfg.LineBytes <= 0 || cfg.CoresPerSocket <= 0 {
		return nil, fmt.Errorf("cache: invalid config: line=%d cores/socket=%d", cfg.LineBytes, cfg.CoresPerSocket)
	}
	s := &Sim{cfg: cfg, cores: cores}
	nSockets := (cores + cfg.CoresPerSocket - 1) / cfg.CoresPerSocket
	s.privateIdx = make([]int, len(cfg.Levels))
	s.sharedIdx = make([]int, len(cfg.Levels))
	var nPriv, nShared int
	for i, lc := range cfg.Levels {
		if lc.Shared {
			s.sharedIdx[i] = nShared
			s.privateIdx[i] = -1
			nShared++
		} else {
			s.privateIdx[i] = nPriv
			s.sharedIdx[i] = -1
			nPriv++
		}
	}
	s.private = make([][]*level, cores)
	s.stats = make([][]LevelStats, cores)
	s.memAccesses = make([]int64, cores)
	s.memLocal = make([]int64, cores)
	s.memRemote = make([]int64, cores)
	for c := 0; c < cores; c++ {
		s.stats[c] = make([]LevelStats, len(cfg.Levels))
		for i, lc := range cfg.Levels {
			s.stats[c][i].Name = lc.Name
			if !lc.Shared {
				s.private[c] = append(s.private[c], newLevel(lc, cfg.LineBytes))
			}
		}
	}
	s.shared = make([][]*level, nSockets)
	for sk := 0; sk < nSockets; sk++ {
		for _, lc := range cfg.Levels {
			if lc.Shared {
				s.shared[sk] = append(s.shared[sk], newLevel(lc, cfg.LineBytes))
			}
		}
	}
	return s, nil
}

// AccessLine sends one cache-line access from core through the hierarchy:
// each level is consulted until one hits; lower levels allocate the line on
// the way (inclusive fill). Stats are attributed to the issuing core.
func (s *Sim) AccessLine(core int, line uint64) {
	socket := core / s.cfg.CoresPerSocket
	for i := range s.cfg.Levels {
		var lv *level
		if pi := s.privateIdx[i]; pi >= 0 {
			lv = s.private[core][pi]
		} else {
			lv = s.shared[socket][s.sharedIdx[i]]
		}
		st := &s.stats[core][i]
		st.Accesses++
		if lv.access(line) {
			return
		}
		st.Misses++
	}
	s.memAccesses[core]++
	if n := s.cfg.NUMA; n != nil {
		if n.homeSocket(line, s.cfg.LineBytes) == socket {
			s.memLocal[core]++
		} else {
			s.memRemote[core]++
		}
	}
}

// AccessVertex sends an access to vertex record v (placed at
// v*VertexStrideBytes) from core, touching every line the record overlaps.
func (s *Sim) AccessVertex(core int, v int32) {
	stride := s.cfg.VertexStrideBytes
	lo := uint64(int64(v)*stride) / uint64(s.cfg.LineBytes)
	hi := uint64(int64(v)*stride+stride-1) / uint64(s.cfg.LineBytes)
	for line := lo; line <= hi; line++ {
		s.AccessLine(core, line)
	}
}

// RunTrace replays a trace buffer: core c of the buffer maps to simulator
// core c. Per-core streams are interleaved round-robin one access at a time,
// approximating concurrent execution on the shared levels.
func (s *Sim) RunTrace(tb *trace.Buffer) error {
	if tb.NumCores() > s.cores {
		return fmt.Errorf("cache: trace has %d cores, simulator has %d", tb.NumCores(), s.cores)
	}
	streams := make([][]int32, tb.NumCores())
	for c := range streams {
		streams[c] = tb.Core(c)
	}
	for {
		done := true
		for c := range streams {
			if len(streams[c]) == 0 {
				continue
			}
			done = false
			s.AccessVertex(c, streams[c][0])
			streams[c] = streams[c][1:]
		}
		if done {
			return nil
		}
	}
}

// CoreStats returns the per-level counters attributed to one core.
func (s *Sim) CoreStats(core int) []LevelStats {
	return append([]LevelStats(nil), s.stats[core]...)
}

// Stats returns the per-level counters summed over all cores.
func (s *Sim) Stats() []LevelStats {
	out := make([]LevelStats, len(s.cfg.Levels))
	for i, lc := range s.cfg.Levels {
		out[i].Name = lc.Name
	}
	for c := 0; c < s.cores; c++ {
		for i := range out {
			out[i].Accesses += s.stats[c][i].Accesses
			out[i].Misses += s.stats[c][i].Misses
		}
	}
	return out
}

// MemAccesses returns the number of main-memory fetches (misses in the last
// cache level), summed over cores.
func (s *Sim) MemAccesses() int64 {
	var n int64
	for _, m := range s.memAccesses {
		n += m
	}
	return n
}

// CoreMemAccesses returns one core's main-memory fetch count.
func (s *Sim) CoreMemAccesses(core int) int64 { return s.memAccesses[core] }

// PenaltyCycles evaluates Eq. (2) on absolute counters: every miss at level
// i costs the latency of level i+1 (or memory for the last level). stats
// must be ordered like cfg.Levels; memAccesses is the last level's misses.
func PenaltyCycles(cfg Config, stats []LevelStats, memAccesses int64) float64 {
	var cycles float64
	for i, st := range stats {
		if i+1 < len(cfg.Levels) {
			cycles += float64(st.Misses) * cfg.Levels[i+1].LatencyCycles
		}
	}
	cycles += float64(memAccesses) * cfg.MemLatencyCycles
	return cycles
}

// CorePenaltyCycles evaluates Eq. (2) for a single core. With a NUMA
// configuration, memory fetches are priced by home-socket locality instead
// of the flat MemLatencyCycles.
func (s *Sim) CorePenaltyCycles(core int) float64 {
	if n := s.cfg.NUMA; n != nil {
		var cycles float64
		for i, st := range s.stats[core] {
			if i+1 < len(s.cfg.Levels) {
				cycles += float64(st.Misses) * s.cfg.Levels[i+1].LatencyCycles
			}
		}
		cycles += float64(s.memLocal[core])*n.LocalCycles + float64(s.memRemote[core])*n.RemoteCycles
		return cycles
	}
	return PenaltyCycles(s.cfg, s.stats[core], s.memAccesses[core])
}

// CoreNUMASplit returns one core's local and remote memory fetch counts
// (both zero unless the configuration has NUMA enabled).
func (s *Sim) CoreNUMASplit(core int) (local, remote int64) {
	return s.memLocal[core], s.memRemote[core]
}
