package cache

import "testing"

func TestNUMAHomeSocket(t *testing.T) {
	n := &NUMAConfig{Sockets: 4, PageBytes: 4 << 10}
	// 64 lines per 4KB page: lines 0..63 -> socket 0, 64..127 -> socket 1.
	if got := n.homeSocket(0, 64); got != 0 {
		t.Errorf("line 0 home = %d", got)
	}
	if got := n.homeSocket(63, 64); got != 0 {
		t.Errorf("line 63 home = %d", got)
	}
	if got := n.homeSocket(64, 64); got != 1 {
		t.Errorf("line 64 home = %d", got)
	}
	if got := n.homeSocket(64*4, 64); got != 0 {
		t.Errorf("interleave wrap: line 256 home = %d", got)
	}
	degenerate := &NUMAConfig{Sockets: 1, PageBytes: 4096}
	if degenerate.homeSocket(999, 64) != 0 {
		t.Error("single socket must own everything")
	}
}

func TestNUMAPenaltySplit(t *testing.T) {
	cfg := tinyConfig()
	cfg.NUMA = &NUMAConfig{Sockets: 2, PageBytes: 64, LocalCycles: 100, RemoteCycles: 300}
	sim, err := NewSim(cfg, 2) // cores 0,1 on socket 0 (2 cores/socket)
	if err != nil {
		t.Fatal(err)
	}
	// Line 0 -> page 0 -> socket 0 (local for core 0).
	// Line 1 -> page 1 -> socket 1 (remote for core 0).
	sim.AccessLine(0, 0)
	sim.AccessLine(0, 1)
	local, remote := sim.CoreNUMASplit(0)
	if local != 1 || remote != 1 {
		t.Fatalf("split = %d local, %d remote", local, remote)
	}
	// Penalty: two L1 misses (10cy each to L2), two L2 misses ->
	// one local (100) + one remote (300) memory fetch.
	want := 2*10.0 + 100 + 300
	if got := sim.CorePenaltyCycles(0); got != want {
		t.Errorf("penalty = %v, want %v", got, want)
	}
}

func TestWestmereNUMA(t *testing.T) {
	cfg := WestmereNUMA()
	if cfg.NUMA == nil || cfg.NUMA.Sockets != 4 {
		t.Fatal("NUMA config missing")
	}
	if cfg.NUMA.LocalCycles != 175 || cfg.NUMA.RemoteCycles != 290 {
		t.Error("latencies do not match [9]")
	}
}

func TestNUMASplitZeroWithoutConfig(t *testing.T) {
	sim, err := NewSim(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.AccessLine(0, 0)
	if l, r := sim.CoreNUMASplit(0); l != 0 || r != 0 {
		t.Errorf("split = %d, %d without NUMA config", l, r)
	}
}
