package reuse

import "math/rand"

// SampledStackDistances estimates the stack-distance distribution by
// measuring only a random subset of accesses, the standard trick for
// full-scale traces where the exact O(n log n) pass is too slow (the
// paper's own "verbose run" analyzes 15M+ accesses). For each sampled
// access, the exact distance is computed by scanning backward to the
// previous access of the same element and counting distinct elements in
// between; unsampled accesses still advance the scan state.
//
// rate is the sampling probability in (0, 1]; seed makes runs reproducible.
// The returned slice contains only the sampled distances (Cold entries for
// sampled first touches).
func SampledStackDistances(stream []int32, rate float64, seed int64) []int64 {
	if rate >= 1 {
		return StackDistances(stream)
	}
	if rate <= 0 || len(stream) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))

	// lastPos[v] = last access index of v; for sampled accesses we walk the
	// window [lastPos[v]+1, i) and count distinct elements with a hash set.
	lastPos := make(map[int32]int, 1024)
	out := make([]int64, 0, int(float64(len(stream))*rate)+16)
	seen := make(map[int32]struct{}, 256)

	for i, v := range stream {
		if rng.Float64() < rate {
			if lp, ok := lastPos[v]; ok {
				for k := range seen {
					delete(seen, k)
				}
				for j := lp + 1; j < i; j++ {
					if stream[j] != v {
						seen[stream[j]] = struct{}{}
					}
				}
				out = append(out, int64(len(seen)))
			} else {
				out = append(out, Cold)
			}
		}
		lastPos[v] = i
	}
	return out
}
