package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMissRatioCurveKnown(t *testing.T) {
	// Cyclic sweep over 10 elements, 3 rounds: first 10 accesses are cold,
	// the remaining 20 have distance 9. MRC: capacity <= 9 misses
	// everything; capacity 10 misses only the 10 cold accesses.
	var stream []int32
	for r := 0; r < 3; r++ {
		for i := int32(0); i < 10; i++ {
			stream = append(stream, i)
		}
	}
	d := StackDistances(stream)
	mrc := MissRatioCurve(d, []int64{1, 9, 10, 100})
	if mrc[0] != 1 || mrc[1] != 1 {
		t.Errorf("small-capacity miss ratio = %v, %v, want 1", mrc[0], mrc[1])
	}
	if want := 10.0 / 30.0; mrc[2] != want || mrc[3] != want {
		t.Errorf("large-capacity miss ratio = %v, %v, want %v", mrc[2], mrc[3], want)
	}
}

func TestMissRatioCurveMonotone(t *testing.T) {
	// Property: the MRC is non-increasing in capacity (LRU inclusion).
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20))}
	f := func(raw []uint8) bool {
		stream := make([]int32, len(raw))
		for i, r := range raw {
			stream[i] = int32(r % 32)
		}
		d := StackDistances(stream)
		caps := []int64{1, 2, 4, 8, 16, 32, 64}
		mrc := MissRatioCurve(d, caps)
		for i := 1; i < len(mrc); i++ {
			if mrc[i] > mrc[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMissRatioCurveMatchesMissModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	stream := make([]int32, 3000)
	for i := range stream {
		stream[i] = int32(rng.Intn(100))
	}
	d := StackDistances(stream)
	for _, c := range []int64{4, 16, 64} {
		mrc := MissRatioCurve(d, []int64{c})
		total, _ := (MissModel{CapacityElements: c}).Misses(d)
		if want := float64(total) / float64(len(d)); mrc[0] != want {
			t.Errorf("capacity %d: MRC %v != miss model %v", c, mrc[0], want)
		}
	}
}

func TestMissRatioCurveEmpty(t *testing.T) {
	mrc := MissRatioCurve(nil, []int64{1, 2})
	if mrc[0] != 0 || mrc[1] != 0 {
		t.Error("empty stream should give zero curve")
	}
}

func TestCapacitySweep(t *testing.T) {
	s := CapacitySweep(1000, 10)
	if len(s) != 10 {
		t.Fatalf("points = %d", len(s))
	}
	if s[0] != 1 || s[len(s)-1] != 1000 {
		t.Errorf("endpoints = %d, %d", s[0], s[len(s)-1])
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("sweep not strictly increasing at %d", i)
		}
	}
	if got := CapacitySweep(1, 5); len(got) != 2 {
		t.Errorf("degenerate sweep = %v", got)
	}
}
