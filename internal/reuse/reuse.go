// Package reuse implements the reuse-distance analysis of §3.1 and §5.2.3:
// exact LRU stack distances (number of *distinct* elements touched between
// two consecutive accesses to the same element, computed with a Fenwick tree
// in O(n log n)), plain time distances (number of accesses in between),
// quantiles, per-timestep profiles (Figures 1 and 6), and the first-order
// cache-miss model the paper uses to interpret its PAPI measurements.
package reuse

import (
	"fmt"
	"math"
	"sort"
)

// Cold marks a first-touch access in a distance slice.
const Cold = int64(-1)

// Blocks maps a stream of vertex storage positions to the stream of memory
// blocks (cache lines) they live in, with vertsPerLine consecutive vertex
// records per line. This is the granularity at which orderings change
// locality: the traversal (and hence the vertex-identity stream) is fixed
// by the algorithm, but which vertices share a line is decided by the
// ordering (§4.1: a node "is streamed to the cache along with its
// neighboring nodes, as many as can fit in a cache line").
func Blocks(stream []int32, vertsPerLine int) []int32 {
	if vertsPerLine < 1 {
		vertsPerLine = 1
	}
	out := make([]int32, len(stream))
	for i, v := range stream {
		out[i] = v / int32(vertsPerLine)
	}
	return out
}

// StackDistances returns, for each access in the stream, the LRU stack
// distance: the number of distinct elements accessed since the previous
// access to the same element, or Cold for a first touch.
func StackDistances(stream []int32) []int64 {
	out := make([]int64, len(stream))
	last := make(map[int32]int32, 1024) // element -> last access position (1-based)
	fw := newFenwick(len(stream) + 1)
	for i, v := range stream {
		pos := int32(i + 1)
		if lp, ok := last[v]; ok {
			// Distinct elements since lp: marked positions in (lp, pos).
			out[i] = int64(fw.prefixSum(int(pos)-1) - fw.prefixSum(int(lp)))
			fw.add(int(lp), -1)
		} else {
			out[i] = Cold
		}
		fw.add(int(pos), 1)
		last[v] = pos
	}
	return out
}

// TimeDistances returns, for each access, the number of accesses since the
// previous access to the same element (not necessarily distinct), or Cold
// for a first touch.
func TimeDistances(stream []int32) []int64 {
	out := make([]int64, len(stream))
	last := make(map[int32]int, 1024)
	for i, v := range stream {
		if lp, ok := last[v]; ok {
			out[i] = int64(i - lp - 1)
		} else {
			out[i] = Cold
		}
		last[v] = i
	}
	return out
}

// fenwick is a binary indexed tree over 1..n.
type fenwick struct {
	tree []int32
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int32, n+1)} }

func (f *fenwick) add(i int, delta int32) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

func (f *fenwick) prefixSum(i int) int32 {
	var s int32
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Summary aggregates a distance slice.
type Summary struct {
	Accesses int     // total accesses
	Cold     int     // first-touch accesses
	Mean     float64 // mean over finite distances
	Max      int64   // maximum finite distance
}

// Summarize computes aggregate statistics of a distance slice.
func Summarize(dists []int64) Summary {
	s := Summary{Accesses: len(dists)}
	var sum float64
	n := 0
	for _, d := range dists {
		if d == Cold {
			s.Cold++
			continue
		}
		sum += float64(d)
		n++
		if d > s.Max {
			s.Max = d
		}
	}
	if n > 0 {
		s.Mean = sum / float64(n)
	}
	return s
}

// Quantiles returns, for each q in qs (0 < q <= 1), the smallest finite
// distance value such that at least a proportion q of the finite distances
// lie at or below it — the paper's Table 2 definition. Cold accesses are
// excluded. Returns an error when there are no finite distances.
func Quantiles(dists []int64, qs []float64) ([]int64, error) {
	finite := make([]int64, 0, len(dists))
	for _, d := range dists {
		if d != Cold {
			finite = append(finite, d)
		}
	}
	if len(finite) == 0 {
		return nil, fmt.Errorf("reuse: no finite distances")
	}
	sort.Slice(finite, func(i, j int) bool { return finite[i] < finite[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		if q <= 0 || q > 1 {
			return nil, fmt.Errorf("reuse: quantile %g out of (0,1]", q)
		}
		idx := int(math.Ceil(q*float64(len(finite)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = finite[idx]
	}
	return out, nil
}

// Profile averages distances over nBuckets equal time buckets, the series
// plotted in Figures 1 and 6 (there, 100 buckets of ~20k accesses each).
// Cold accesses are skipped; empty buckets yield 0.
func Profile(dists []int64, nBuckets int) []float64 {
	if nBuckets < 1 || len(dists) == 0 {
		return nil
	}
	if nBuckets > len(dists) {
		nBuckets = len(dists)
	}
	out := make([]float64, nBuckets)
	for b := 0; b < nBuckets; b++ {
		lo := b * len(dists) / nBuckets
		hi := (b + 1) * len(dists) / nBuckets
		var sum float64
		n := 0
		for _, d := range dists[lo:hi] {
			if d == Cold {
				continue
			}
			sum += float64(d)
			n++
		}
		if n > 0 {
			out[b] = sum / float64(n)
		}
	}
	return out
}

// MissModel is the first-order cache model of §3.1: with an LRU cache
// holding capacity elements, an access misses exactly when its stack
// distance exceeds the capacity (cold accesses always miss).
type MissModel struct {
	// CapacityElements is the number of mesh elements that fit the cache
	// level (cache bytes / element bytes).
	CapacityElements int64
}

// Misses counts the accesses that miss: cold accesses plus accesses whose
// stack distance is at least the capacity.
func (mm MissModel) Misses(dists []int64) (total, cold int64) {
	for _, d := range dists {
		if d == Cold {
			total++
			cold++
			continue
		}
		if d >= mm.CapacityElements {
			total++
		}
	}
	return total, cold
}

// EstimateCapacity inverts the model as §5.2.3 does for Table 3: assuming
// the observed missCount misses are the accesses with the largest reuse
// distances, the cache capacity (in elements) is the smallest distance among
// those missing accesses. Cold accesses are excluded (the paper subtracts
// compulsory misses first). Returns 0 when missCount is not in (0, len].
func EstimateCapacity(dists []int64, missCount int64) int64 {
	finite := make([]int64, 0, len(dists))
	for _, d := range dists {
		if d != Cold {
			finite = append(finite, d)
		}
	}
	if missCount <= 0 || missCount > int64(len(finite)) {
		return 0
	}
	sort.Slice(finite, func(i, j int) bool { return finite[i] > finite[j] })
	return finite[missCount-1]
}
