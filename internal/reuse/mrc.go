package reuse

import (
	"math"
	"sort"
)

// MissRatioCurve computes the LRU miss-ratio curve from a distance slice:
// for each capacity c (in elements), the fraction of accesses that miss an
// LRU cache of that capacity under the §3.1 model (stack distance >= c, or
// cold). Because LRU stack distances fully determine misses at every
// capacity simultaneously, one pass over the histogram yields the whole
// curve — the classic Mattson et al. construction the reuse-distance
// literature (Beyls and D'Hollander [1]) builds on.
//
// The returned curve has len(capacities) entries aligned with the input.
func MissRatioCurve(dists []int64, capacities []int64) []float64 {
	out := make([]float64, len(capacities))
	if len(dists) == 0 {
		return out
	}
	// Sort a copy of the finite distances; cold accesses miss at every
	// capacity.
	finite := make([]int64, 0, len(dists))
	cold := 0
	for _, d := range dists {
		if d == Cold {
			cold++
			continue
		}
		finite = append(finite, d)
	}
	sort.Slice(finite, func(i, j int) bool { return finite[i] < finite[j] })
	total := float64(len(dists))
	for i, c := range capacities {
		// Misses: finite distances >= c, plus all cold accesses.
		idx := sort.Search(len(finite), func(k int) bool { return finite[k] >= c })
		out[i] = (float64(len(finite)-idx) + float64(cold)) / total
	}
	return out
}

// CapacitySweep returns a geometric capacity ladder from 1 to max,
// suitable as the x-axis of a miss-ratio curve.
func CapacitySweep(max int64, points int) []int64 {
	if points < 2 || max < 2 {
		return []int64{1, max}
	}
	out := make([]int64, 0, points)
	ratio := float64(max)
	step := math.Pow(ratio, 1/float64(points-1))
	v := 1.0
	var prev int64
	for i := 0; i < points; i++ {
		c := int64(v + 0.5)
		if c <= prev {
			c = prev + 1
		}
		out = append(out, c)
		prev = c
		v *= step
	}
	out[len(out)-1] = max
	return out
}
