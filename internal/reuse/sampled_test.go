package reuse

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampledMatchesExactDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	stream := make([]int32, 20000)
	for i := range stream {
		stream[i] = int32(rng.Intn(500))
	}
	exact := Summarize(StackDistances(stream))
	sampled := SampledStackDistances(stream, 0.1, 7)
	if len(sampled) == 0 {
		t.Fatal("no samples")
	}
	// The sample count is near rate*n.
	if n := float64(len(sampled)); n < 1000 || n > 3000 {
		t.Errorf("sample count %v for rate 0.1 of 20000", n)
	}
	est := Summarize(sampled)
	// Means agree within 10%.
	if math.Abs(est.Mean-exact.Mean) > 0.1*exact.Mean {
		t.Errorf("sampled mean %v vs exact %v", est.Mean, exact.Mean)
	}
}

func TestSampledExactnessPerSample(t *testing.T) {
	// With rate 1 the sampled path must defer to the exact one.
	stream := []int32{0, 1, 2, 0, 1, 1}
	a := StackDistances(stream)
	b := SampledStackDistances(stream, 1, 1)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("access %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSampledSmallStreamCorrect(t *testing.T) {
	// Every sampled distance must equal the exact distance at that access:
	// verify by sampling a tiny stream many times with different seeds and
	// cross-checking against the exact values via value containment.
	stream := []int32{3, 1, 3, 2, 1, 3}
	exact := StackDistances(stream) // [C, C, 1, C, 2, 2]
	for seed := int64(0); seed < 20; seed++ {
		got := SampledStackDistances(stream, 0.5, seed)
		// Each sampled value must appear in the exact multiset.
		counts := map[int64]int{}
		for _, d := range exact {
			counts[d]++
		}
		for _, d := range got {
			if counts[d] == 0 {
				t.Fatalf("seed %d: sampled distance %d not in exact set", seed, d)
			}
			counts[d]--
		}
	}
}

func TestSampledEdgeCases(t *testing.T) {
	if got := SampledStackDistances(nil, 0.5, 1); got != nil {
		t.Error("empty stream")
	}
	if got := SampledStackDistances([]int32{1, 2}, 0, 1); got != nil {
		t.Error("zero rate should sample nothing")
	}
}
