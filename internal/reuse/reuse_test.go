package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStackDistancesKnown(t *testing.T) {
	// Stream a b c a b b: distances Cold Cold Cold 2 2 0.
	stream := []int32{0, 1, 2, 0, 1, 1}
	want := []int64{Cold, Cold, Cold, 2, 2, 0}
	got := StackDistances(stream)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("access %d: distance %d, want %d", i, got[i], want[i])
		}
	}
}

func TestStackDistancesRepeats(t *testing.T) {
	// Repeated accesses to one element always have distance 0 after the
	// first.
	got := StackDistances([]int32{5, 5, 5, 5})
	if got[0] != Cold || got[1] != 0 || got[3] != 0 {
		t.Errorf("distances = %v", got)
	}
}

func TestStackVsTimeDistances(t *testing.T) {
	// Stream a b b a: stack distance of final a is 1 (only b between),
	// time distance is 2 (two accesses between).
	stream := []int32{0, 1, 1, 0}
	sd := StackDistances(stream)
	td := TimeDistances(stream)
	if sd[3] != 1 {
		t.Errorf("stack = %d, want 1", sd[3])
	}
	if td[3] != 2 {
		t.Errorf("time = %d, want 2", td[3])
	}
}

func TestStackDistanceCyclic(t *testing.T) {
	// Cyclic sweep over n elements: every non-cold access has distance n-1.
	const n = 50
	var stream []int32
	for rep := 0; rep < 4; rep++ {
		for i := int32(0); i < n; i++ {
			stream = append(stream, i)
		}
	}
	d := StackDistances(stream)
	for i := n; i < len(d); i++ {
		if d[i] != n-1 {
			t.Fatalf("access %d: distance %d, want %d", i, d[i], n-1)
		}
	}
}

func TestStackDistanceBounded(t *testing.T) {
	// Property: distance is always < number of distinct elements, and Cold
	// appears exactly once per element.
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(14))}
	f := func(raw []uint8) bool {
		stream := make([]int32, len(raw))
		distinct := map[int32]bool{}
		for i, r := range raw {
			stream[i] = int32(r % 16)
			distinct[stream[i]] = true
		}
		d := StackDistances(stream)
		cold := 0
		for _, v := range d {
			if v == Cold {
				cold++
				continue
			}
			if v < 0 || v >= int64(len(distinct)) {
				return false
			}
		}
		return cold == len(distinct)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTimeGEStack(t *testing.T) {
	// Time distance always dominates stack distance.
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(15))}
	f := func(raw []uint8) bool {
		stream := make([]int32, len(raw))
		for i, r := range raw {
			stream[i] = int32(r % 8)
		}
		sd := StackDistances(stream)
		td := TimeDistances(stream)
		for i := range sd {
			if (sd[i] == Cold) != (td[i] == Cold) {
				return false
			}
			if sd[i] != Cold && td[i] < sd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{Cold, 2, 4, Cold, 6})
	if s.Accesses != 5 || s.Cold != 2 || s.Mean != 4 || s.Max != 6 {
		t.Errorf("summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.Mean != 0 || empty.Max != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestQuantiles(t *testing.T) {
	dists := []int64{Cold, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	qs, err := Quantiles(dists, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 5 || qs[1] != 10 {
		t.Errorf("quantiles = %v", qs)
	}
	if _, err := Quantiles([]int64{Cold}, []float64{0.5}); err == nil {
		t.Error("all-cold stream accepted")
	}
	if _, err := Quantiles(dists, []float64{1.5}); err == nil {
		t.Error("out-of-range quantile accepted")
	}
	if _, err := Quantiles(dists, []float64{0}); err == nil {
		t.Error("zero quantile accepted")
	}
}

func TestProfile(t *testing.T) {
	dists := []int64{1, 1, 3, 3, Cold, 5}
	p := Profile(dists, 3)
	if len(p) != 3 {
		t.Fatalf("profile length %d", len(p))
	}
	if p[0] != 1 || p[1] != 3 || p[2] != 5 {
		t.Errorf("profile = %v", p)
	}
	if got := Profile(nil, 10); got != nil {
		t.Error("empty profile should be nil")
	}
	if got := Profile(dists, 0); got != nil {
		t.Error("zero buckets should be nil")
	}
	// More buckets than accesses clamps.
	if got := Profile([]int64{1, 2}, 10); len(got) != 2 {
		t.Errorf("clamped profile length %d", len(got))
	}
}

func TestMissModel(t *testing.T) {
	mm := MissModel{CapacityElements: 4}
	dists := []int64{Cold, 1, 4, 5, 3}
	total, cold := mm.Misses(dists)
	// Misses: the cold access plus distances 4 and 5 (>= capacity).
	if total != 3 || cold != 1 {
		t.Errorf("misses = %d cold = %d", total, cold)
	}
}

func TestEstimateCapacity(t *testing.T) {
	dists := []int64{Cold, 10, 20, 30, 40}
	// One miss -> the largest distance 40 missed -> capacity 40.
	if got := EstimateCapacity(dists, 1); got != 40 {
		t.Errorf("capacity(1 miss) = %d", got)
	}
	// Two misses -> 30.
	if got := EstimateCapacity(dists, 2); got != 30 {
		t.Errorf("capacity(2 misses) = %d", got)
	}
	if got := EstimateCapacity(dists, 0); got != 0 {
		t.Errorf("capacity(0) = %d", got)
	}
	if got := EstimateCapacity(dists, 100); got != 0 {
		t.Errorf("capacity(too many) = %d", got)
	}
}

func TestMissModelInverseProperty(t *testing.T) {
	// For a random stream, counting misses with capacity C and then
	// estimating the capacity from that miss count must give a value <= C
	// consistent with the model (the smallest missing distance).
	rng := rand.New(rand.NewSource(16))
	stream := make([]int32, 4000)
	for i := range stream {
		stream[i] = int32(rng.Intn(200))
	}
	d := StackDistances(stream)
	for _, c := range []int64{5, 20, 80} {
		mm := MissModel{CapacityElements: c}
		total, cold := mm.Misses(d)
		est := EstimateCapacity(d, total-cold)
		if est < c {
			t.Errorf("capacity %d: estimate %d below true capacity", c, est)
		}
	}
}

func TestBlocks(t *testing.T) {
	stream := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8}
	b := Blocks(stream, 4)
	want := []int32{0, 0, 0, 0, 1, 1, 1, 1, 2}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("block[%d] = %d, want %d", i, b[i], want[i])
		}
	}
	// vertsPerLine < 1 clamps to identity.
	id := Blocks(stream, 0)
	for i := range stream {
		if id[i] != stream[i] {
			t.Error("clamped Blocks should be identity")
		}
	}
}

func BenchmarkStackDistances(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	stream := make([]int32, 100000)
	for i := range stream {
		stream[i] = int32(rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StackDistances(stream)
	}
}
