// Package trace records the data-access traces of the smoothing algorithm:
// the sequence of vertex-array locations each core touches, which is the
// input to the reuse-distance analyzer and the cache simulator (the paper's
// "verbose run noting the data locations being addressed", §5.2.3).
package trace

import "fmt"

// Buffer collects one access stream per core, with iteration boundaries.
type Buffer struct {
	cores    [][]int32
	iterEnds [][]int // per core, cumulative stream length at each iteration end
}

// NewBuffer returns a Buffer for the given number of cores.
func NewBuffer(cores int) *Buffer {
	if cores < 1 {
		cores = 1
	}
	return &Buffer{
		cores:    make([][]int32, cores),
		iterEnds: make([][]int, cores),
	}
}

// NumCores returns the number of per-core streams.
func (b *Buffer) NumCores() int { return len(b.cores) }

// Access appends one access to core's stream. Distinct cores may call
// Access concurrently; a single core's stream must be appended serially.
func (b *Buffer) Access(core int, v int32) {
	b.cores[core] = append(b.cores[core], v)
}

// EndIteration marks an iteration boundary on every core's stream. It must
// be called from the coordinating goroutine, between iterations.
func (b *Buffer) EndIteration() {
	for c := range b.cores {
		b.iterEnds[c] = append(b.iterEnds[c], len(b.cores[c]))
	}
}

// Core returns core c's full access stream (shared slice; do not modify).
func (b *Buffer) Core(c int) []int32 { return b.cores[c] }

// Iterations returns the number of completed iterations recorded.
func (b *Buffer) Iterations() int {
	if len(b.iterEnds) == 0 {
		return 0
	}
	return len(b.iterEnds[0])
}

// IterSlice returns core c's accesses during iteration it (0-based).
func (b *Buffer) IterSlice(c, it int) ([]int32, error) {
	ends := b.iterEnds[c]
	if it < 0 || it >= len(ends) {
		return nil, fmt.Errorf("trace: iteration %d out of range [0,%d)", it, len(ends))
	}
	lo := 0
	if it > 0 {
		lo = ends[it-1]
	}
	return b.cores[c][lo:ends[it]], nil
}

// Total returns the total number of recorded accesses across all cores.
func (b *Buffer) Total() int {
	n := 0
	for _, s := range b.cores {
		n += len(s)
	}
	return n
}

// Merged concatenates the per-core streams in core order. For a single-core
// run this is simply the stream itself.
func (b *Buffer) Merged() []int32 {
	if len(b.cores) == 1 {
		return b.cores[0]
	}
	out := make([]int32, 0, b.Total())
	for _, s := range b.cores {
		out = append(out, s...)
	}
	return out
}

// Reset drops all recorded accesses, keeping capacity.
func (b *Buffer) Reset() {
	for c := range b.cores {
		b.cores[c] = b.cores[c][:0]
		b.iterEnds[c] = b.iterEnds[c][:0]
	}
}
