package trace

import "testing"

func TestBufferBasics(t *testing.T) {
	b := NewBuffer(2)
	if b.NumCores() != 2 {
		t.Fatalf("cores = %d", b.NumCores())
	}
	b.Access(0, 10)
	b.Access(0, 11)
	b.Access(1, 20)
	b.EndIteration()
	b.Access(0, 12)
	b.EndIteration()

	if b.Total() != 4 {
		t.Errorf("total = %d", b.Total())
	}
	if b.Iterations() != 2 {
		t.Errorf("iterations = %d", b.Iterations())
	}
	if got := b.Core(0); len(got) != 3 || got[0] != 10 {
		t.Errorf("core 0 = %v", got)
	}

	it0, err := b.IterSlice(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(it0) != 2 || it0[1] != 11 {
		t.Errorf("iter 0 core 0 = %v", it0)
	}
	it1, err := b.IterSlice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(it1) != 1 || it1[0] != 12 {
		t.Errorf("iter 1 core 0 = %v", it1)
	}
	it0c1, err := b.IterSlice(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(it0c1) != 1 || it0c1[0] != 20 {
		t.Errorf("iter 0 core 1 = %v", it0c1)
	}
}

func TestIterSliceErrors(t *testing.T) {
	b := NewBuffer(1)
	b.Access(0, 1)
	b.EndIteration()
	if _, err := b.IterSlice(0, 1); err == nil {
		t.Error("out-of-range iteration accepted")
	}
	if _, err := b.IterSlice(0, -1); err == nil {
		t.Error("negative iteration accepted")
	}
}

func TestMerged(t *testing.T) {
	b := NewBuffer(2)
	b.Access(0, 1)
	b.Access(1, 2)
	b.Access(0, 3)
	m := b.Merged()
	if len(m) != 3 || m[0] != 1 || m[1] != 3 || m[2] != 2 {
		t.Errorf("merged = %v", m)
	}
	// Single-core merged is the stream itself (no copy).
	s := NewBuffer(1)
	s.Access(0, 7)
	if got := s.Merged(); len(got) != 1 || got[0] != 7 {
		t.Errorf("single merged = %v", got)
	}
}

func TestReset(t *testing.T) {
	b := NewBuffer(1)
	b.Access(0, 1)
	b.EndIteration()
	b.Reset()
	if b.Total() != 0 || b.Iterations() != 0 {
		t.Error("reset did not clear")
	}
}

func TestZeroCoresClamped(t *testing.T) {
	b := NewBuffer(0)
	if b.NumCores() != 1 {
		t.Errorf("cores = %d, want clamp to 1", b.NumCores())
	}
}
