package order

import (
	"fmt"
)

// RDR is the paper's Reuse Distance Reducing ordering (Algorithm 2).
//
// The ordering lays vertices out in the order the quality-greedy smoothing
// traversal first touches them (see GreedyWalk): interior vertices are
// seeded in increasing order of initial quality; each processed vertex
// appends its unordered neighbors sorted by increasing quality, then the
// walk moves to the worst-quality unprocessed neighbor. Under this layout
// the smoother's access stream becomes nearly sequential in memory, which
// is what collapses the reuse distances (§4.2).
//
// SortDescending reverses the quality comparisons (ablation: does
// "worst-first" matter, or only the walk-matching grouping?).
type RDR struct {
	SortDescending bool
}

// Name implements Ordering.
func (r RDR) Name() string {
	if r.SortDescending {
		return "RDR-DESC"
	}
	return "RDR"
}

// Compute implements Ordering. It is Algorithm 2 verbatim via GreedyWalk;
// the only addition is a final sweep appending vertices the walk never
// reached (possible for boundary vertices in components without interior
// vertices), so the result is always a complete permutation.
func (r RDR) Compute(g Graph, vq []float64) ([]int32, error) {
	if vq == nil {
		return nil, fmt.Errorf("order: RDR requires initial vertex qualities")
	}
	w, err := GreedyWalk(g, vq, r.SortDescending)
	if err != nil {
		return nil, err
	}
	vnew := w.Appends
	seen := make([]bool, g.NumVerts())
	for _, v := range vnew {
		seen[v] = true
	}
	for v := int32(0); v < int32(g.NumVerts()); v++ {
		if !seen[v] {
			vnew = append(vnew, v)
		}
	}
	return vnew, nil
}

func init() {
	Register("RDR", func() Ordering { return RDR{} })
	Register("RDR-DESC", func() Ordering { return RDR{SortDescending: true} })
}
