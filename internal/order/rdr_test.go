package order

import (
	"testing"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

func TestRDRTheorem1(t *testing.T) {
	// Theorem 1: Algorithm 2 orders every element of the mesh exactly once.
	m, vq := testMesh(t)
	perm, err := RDR{}.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(perm, m.NumVerts()); err != nil {
		t.Fatal(err)
	}
}

func TestRDRRequiresQualities(t *testing.T) {
	m, _ := testMesh(t)
	if _, err := (RDR{}).Compute(m, nil); err == nil {
		t.Error("nil qualities accepted")
	}
	if _, err := (RDR{}).Compute(m, []float64{1, 2}); err == nil {
		t.Error("short qualities accepted")
	}
}

func TestRDRStartsAtWorstInterior(t *testing.T) {
	m, vq := testMesh(t)
	perm, err := RDR{}.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	worst := m.InteriorVerts[0]
	for _, v := range m.InteriorVerts {
		if vq[v] < vq[worst] {
			worst = v
		}
	}
	if perm[0] != worst {
		t.Errorf("first ordered vertex %d (q=%.4f), want worst interior %d (q=%.4f)",
			perm[0], vq[perm[0]], worst, vq[worst])
	}
}

func TestRDRDeterministic(t *testing.T) {
	m, vq := testMesh(t)
	a, _ := RDR{}.Compute(m, vq)
	b, _ := RDR{}.Compute(m, vq)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RDR not deterministic")
		}
	}
}

func TestRDRDescendingDiffers(t *testing.T) {
	m, vq := testMesh(t)
	asc, _ := RDR{}.Compute(m, vq)
	desc, err := RDR{SortDescending: true}.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(desc, m.NumVerts()); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range asc {
		if asc[i] != desc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("descending RDR identical to ascending")
	}
	if (RDR{SortDescending: true}).Name() != "RDR-DESC" || (RDR{}).Name() != "RDR" {
		t.Error("RDR names wrong")
	}
}

func TestGreedyWalkCoversInterior(t *testing.T) {
	m, vq := testMesh(t)
	w, err := GreedyWalk(m, vq, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]int)
	for _, h := range w.Heads {
		seen[h]++
	}
	for _, v := range m.InteriorVerts {
		if seen[v] != 1 {
			t.Fatalf("interior vertex %d processed %d times", v, seen[v])
		}
	}
	// No head is processed twice.
	for h, n := range seen {
		if n != 1 {
			t.Fatalf("vertex %d processed %d times", h, n)
		}
	}
	// Appends are unique.
	ap := make(map[int32]bool)
	for _, v := range w.Appends {
		if ap[v] {
			t.Fatalf("vertex %d appended twice", v)
		}
		ap[v] = true
	}
}

func TestGreedyWalkBadInput(t *testing.T) {
	m, _ := testMesh(t)
	if _, err := GreedyWalk(m, []float64{0}, false); err == nil {
		t.Error("short qualities accepted")
	}
}

func TestRDRWalkHeadsFollowQualityGreedily(t *testing.T) {
	// First head is the worst interior vertex; the second head is its
	// worst-quality unprocessed neighbor.
	m, vq := testMesh(t)
	w, err := GreedyWalk(m, vq, false)
	if err != nil {
		t.Fatal(err)
	}
	h0 := w.Heads[0]
	var want int32 = -1
	for _, u := range m.Neighbors(h0) {
		if want == -1 || vq[u] < vq[want] || (vq[u] == vq[want] && u < want) {
			want = u
		}
	}
	if w.Heads[1] != want {
		t.Errorf("second head %d, want worst neighbor %d", w.Heads[1], want)
	}
}

func TestRDRCompletionSweepOnBoundaryOnlyComponent(t *testing.T) {
	// A mesh with no interior vertices (single triangle) exercises the
	// completion sweep: RDR must still return a full permutation.
	m := singleTriangle(t)
	vq := quality.VertexQualities(m, quality.EdgeRatio{})
	perm, err := RDR{}.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(perm, 3); err != nil {
		t.Fatal(err)
	}
}

func singleTriangle(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := mesh.New(
		[]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}},
		[][3]int32{{0, 1, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
