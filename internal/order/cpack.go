package order

import (
	"fmt"
)

// CPack is the consecutive-packing data reordering of Ding and Kennedy, the
// trace-driven baseline of Strout and Hovland [18]: given an access trace of
// the computation, place data elements in memory in first-touch order. It
// is the a-posteriori "oracle" that RDR approximates a priori — RDR predicts
// the smoother's first-touch order from initial qualities instead of
// recording it.
//
// Trace supplies the access trace; when nil, CPack instruments the
// quality-greedy smoothing traversal itself (one virtual iteration), which
// makes it exactly the first-touch packing of the paper's LMS.
type CPack struct {
	Trace []int32
}

// Name implements Ordering.
func (CPack) Name() string { return "CPACK" }

// Compute implements Ordering.
func (c CPack) Compute(g Graph, vq []float64) ([]int32, error) {
	tr := c.Trace
	if tr == nil {
		if vq == nil {
			return nil, fmt.Errorf("order: CPACK without an explicit trace requires vertex qualities")
		}
		w, err := GreedyWalk(g, vq, false)
		if err != nil {
			return nil, err
		}
		// Reconstruct the smoother's access stream: each interior head is
		// touched, then its neighbors.
		for _, h := range w.Heads {
			if g.OnBoundary(h) {
				continue
			}
			tr = append(tr, h)
			tr = append(tr, g.Neighbors(h)...)
		}
	}

	nv := g.NumVerts()
	perm := make([]int32, 0, nv)
	seen := make([]bool, nv)
	for _, v := range tr {
		if v < 0 || int(v) >= nv {
			return nil, fmt.Errorf("order: CPACK trace references vertex %d outside [0,%d)", v, nv)
		}
		if !seen[v] {
			seen[v] = true
			perm = append(perm, v)
		}
	}
	// Untouched vertices keep their relative order at the end.
	for v := int32(0); v < int32(nv); v++ {
		if !seen[v] {
			perm = append(perm, v)
		}
	}
	return perm, nil
}

func init() {
	Register("CPACK", func() Ordering { return CPack{} })
}
