package order

import (
	"testing"
)

func TestCPackExplicitTrace(t *testing.T) {
	m, _ := testMesh(t)
	// A trace touching a few vertices, with repeats.
	tr := []int32{5, 3, 5, 7, 3, 1}
	perm, err := CPack{Trace: tr}.Compute(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(perm, m.NumVerts()); err != nil {
		t.Fatal(err)
	}
	// First-touch order: 5, 3, 7, 1 lead the permutation.
	want := []int32{5, 3, 7, 1}
	for i, w := range want {
		if perm[i] != w {
			t.Errorf("position %d = %d, want %d", i, perm[i], w)
		}
	}
}

func TestCPackFromWalk(t *testing.T) {
	m, vq := testMesh(t)
	perm, err := CPack{}.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(perm, m.NumVerts()); err != nil {
		t.Fatal(err)
	}
	// CPACK from the greedy walk is the first-touch packing of the same
	// traversal RDR predicts: the two permutations must agree closely. RDR
	// appends each head's *sorted* neighbor block, CPACK records raw touch
	// order, so allow local divergence but demand strong prefix agreement
	// in the first positions.
	rdr, err := RDR{}.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != rdr[0] {
		t.Errorf("first vertex differs: CPACK %d vs RDR %d", perm[0], rdr[0])
	}
	// Positional distance between the two layouts is small on average.
	posR := Invert(rdr)
	posC := Invert(perm)
	var total float64
	for v := 0; v < m.NumVerts(); v++ {
		d := float64(posR[v] - posC[v])
		if d < 0 {
			d = -d
		}
		total += d
	}
	if avg := total / float64(m.NumVerts()); avg > float64(m.NumVerts())/10 {
		t.Errorf("average positional distance RDR vs CPACK = %.1f (of %d)", avg, m.NumVerts())
	}
}

func TestCPackErrors(t *testing.T) {
	m, _ := testMesh(t)
	if _, err := (CPack{}).Compute(m, nil); err == nil {
		t.Error("no trace and no qualities accepted")
	}
	if _, err := (CPack{Trace: []int32{-1}}).Compute(m, nil); err == nil {
		t.Error("out-of-range trace vertex accepted")
	}
	if (CPack{}).Name() != "CPACK" {
		t.Error("name")
	}
}
