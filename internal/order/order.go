// Package order implements the vertex orderings studied in the paper:
//
//   - ORI: the original generation ordering (identity permutation);
//   - RANDOM: a uniformly random shuffle (Figure 1's worst case);
//   - DFS and BFS: depth- and breadth-first traversals, BFS being the
//     state-of-the-art reordering of Strout and Hovland [18];
//   - RDR: the paper's contribution (Algorithm 2), a reuse-distance-reducing
//     ordering driven by initial vertex qualities;
//   - RCM: reverse Cuthill–McKee, the classic bandwidth-reducing ordering;
//   - HILBERT and MORTON: space-filling-curve orderings as in Sastry et
//     al. [14].
//
// An ordering computes a newToOld permutation: position k of the result
// holds the index (in the input mesh) of the vertex that should be stored
// k-th. mesh.Renumber applies it.
//
// Orderings traverse the Graph adjacency abstraction (see graph.go), not a
// concrete mesh type: any vertex structure with CSR adjacency and a
// boundary/interior partition — the 2D triangular mesh and the 3D
// tetrahedral mesh alike — reorders through the same registry.
package order

import (
	"fmt"
	"math/rand"
	"sort"
)

// Ordering computes a vertex permutation for a mesh.
type Ordering interface {
	// Name identifies the ordering in reports (upper-case, as in the paper).
	Name() string
	// Compute returns the newToOld permutation for the graph's vertices.
	// vertexQuality holds the initial per-vertex qualities; orderings that
	// do not use quality may ignore it (and accept nil).
	Compute(g Graph, vertexQuality []float64) ([]int32, error)
}

// Original is the identity ordering: the mesh keeps its generation order.
type Original struct{}

// Name implements Ordering.
func (Original) Name() string { return "ORI" }

// Compute implements Ordering.
func (Original) Compute(g Graph, _ []float64) ([]int32, error) {
	perm := make([]int32, g.NumVerts())
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm, nil
}

// Random shuffles the vertices uniformly, the locality worst case of Fig. 1a.
type Random struct {
	Seed int64
}

// Name implements Ordering.
func (Random) Name() string { return "RANDOM" }

// Compute implements Ordering.
func (r Random) Compute(g Graph, _ []float64) ([]int32, error) {
	perm := make([]int32, g.NumVerts())
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm, nil
}

// BFS is the breadth-first ordering of Strout and Hovland [18]. The
// traversal starts from Root (or, when WorstQualityRoot is set, from the
// vertex with the lowest initial quality) and restarts from the first
// unvisited vertex for each further connected component.
type BFS struct {
	Root             int32
	WorstQualityRoot bool
}

// Name implements Ordering.
func (b BFS) Name() string {
	if b.WorstQualityRoot {
		return "BFS-WORST"
	}
	return "BFS"
}

// Compute implements Ordering.
func (b BFS) Compute(g Graph, vq []float64) ([]int32, error) {
	nv := g.NumVerts()
	root := b.Root
	if b.WorstQualityRoot {
		if vq == nil {
			return nil, fmt.Errorf("order: BFS with WorstQualityRoot requires vertex qualities")
		}
		root = argminQuality(vq)
	}
	if root < 0 || int(root) >= nv {
		return nil, fmt.Errorf("order: BFS root %d out of range [0,%d)", root, nv)
	}
	visited := make([]bool, nv)
	perm := make([]int32, 0, nv)
	queue := make([]int32, 0, nv)

	enqueue := func(v int32) {
		if !visited[v] {
			visited[v] = true
			queue = append(queue, v)
		}
	}
	enqueue(root)
	next := int32(0)
	for len(perm) < nv {
		if len(queue) == 0 {
			for visited[next] {
				next++
			}
			enqueue(next)
		}
		v := queue[0]
		queue = queue[1:]
		perm = append(perm, v)
		for _, w := range g.Neighbors(v) {
			enqueue(w)
		}
	}
	return perm, nil
}

// DFS orders vertices by a depth-first traversal from Root.
type DFS struct {
	Root int32
}

// Name implements Ordering.
func (DFS) Name() string { return "DFS" }

// Compute implements Ordering.
func (d DFS) Compute(g Graph, _ []float64) ([]int32, error) {
	nv := g.NumVerts()
	if d.Root < 0 || int(d.Root) >= nv {
		return nil, fmt.Errorf("order: DFS root %d out of range [0,%d)", d.Root, nv)
	}
	visited := make([]bool, nv)
	perm := make([]int32, 0, nv)
	stack := make([]int32, 0, 64)

	start := d.Root
	next := int32(0)
	for len(perm) < nv {
		if len(stack) == 0 {
			for visited[start] {
				start = next
				next++
			}
			visited[start] = true
			stack = append(stack, start)
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		perm = append(perm, v)
		// Push neighbors in reverse so the lowest-index neighbor is visited
		// first, matching the usual recursive DFS order.
		nbrs := g.Neighbors(v)
		for i := len(nbrs) - 1; i >= 0; i-- {
			w := nbrs[i]
			if !visited[w] {
				visited[w] = true
				stack = append(stack, w)
			}
		}
	}
	return perm, nil
}

// RCM is the reverse Cuthill–McKee ordering: BFS with neighbors visited in
// increasing-degree order, reversed at the end.
type RCM struct{}

// Name implements Ordering.
func (RCM) Name() string { return "RCM" }

// Compute implements Ordering.
func (RCM) Compute(g Graph, _ []float64) ([]int32, error) {
	nv := g.NumVerts()
	visited := make([]bool, nv)
	perm := make([]int32, 0, nv)
	queue := make([]int32, 0, nv)
	var scratch []int32

	next := int32(0)
	for len(perm) < nv {
		if len(queue) == 0 {
			for visited[next] {
				next++
			}
			// Start each component from a minimum-degree vertex reachable
			// from `next`'s component; min-degree of the whole remainder is
			// a cheap, standard peripheral heuristic.
			start := minDegreeInComponent(g, next, visited)
			visited[start] = true
			queue = append(queue, start)
		}
		v := queue[0]
		queue = queue[1:]
		perm = append(perm, v)
		scratch = scratch[:0]
		for _, w := range g.Neighbors(v) {
			if !visited[w] {
				visited[w] = true
				scratch = append(scratch, w)
			}
		}
		sort.Slice(scratch, func(i, j int) bool {
			di, dj := g.Degree(scratch[i]), g.Degree(scratch[j])
			if di != dj {
				return di < dj
			}
			return scratch[i] < scratch[j]
		})
		queue = append(queue, scratch...)
	}
	// Reverse.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}

func minDegreeInComponent(g Graph, seed int32, visited []bool) int32 {
	seen := map[int32]bool{seed: true}
	stack := []int32{seed}
	best := seed
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.Degree(v) < g.Degree(best) || (g.Degree(v) == g.Degree(best) && v < best) {
			best = v
		}
		for _, w := range g.Neighbors(v) {
			if !visited[w] && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return best
}

// curveBits is the per-axis grid resolution of the space-filling-curve
// orderings: 2^16 cells per axis, as the 2D orderings have always used.
const curveBits = 16

// Hilbert orders vertices along a Hilbert space-filling curve over their
// coordinates (Sastry et al. [14]). It requires a Graph that also implements
// Spatial.
type Hilbert struct{}

// Name implements Ordering.
func (Hilbert) Name() string { return "HILBERT" }

// Compute implements Ordering.
func (Hilbert) Compute(g Graph, _ []float64) ([]int32, error) {
	sp, ok := g.(Spatial)
	if !ok {
		return nil, fmt.Errorf("order: HILBERT requires vertex coordinates (graph does not implement Spatial)")
	}
	return curveOrder(g.NumVerts(), sp.HilbertKeys(curveBits))
}

// Morton orders vertices along a Z-order (Morton) curve. It requires a Graph
// that also implements Spatial.
type Morton struct{}

// Name implements Ordering.
func (Morton) Name() string { return "MORTON" }

// Compute implements Ordering.
func (Morton) Compute(g Graph, _ []float64) ([]int32, error) {
	sp, ok := g.(Spatial)
	if !ok {
		return nil, fmt.Errorf("order: MORTON requires vertex coordinates (graph does not implement Spatial)")
	}
	return curveOrder(g.NumVerts(), sp.MortonKeys(curveBits))
}

func curveOrder(nv int, keys []uint64) ([]int32, error) {
	if len(keys) != nv {
		return nil, fmt.Errorf("order: curve produced %d keys for %d vertices", len(keys), nv)
	}
	perm := make([]int32, nv)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := keys[perm[a]], keys[perm[b]]
		if ka != kb {
			return ka < kb
		}
		return perm[a] < perm[b]
	})
	return perm, nil
}

// Reversed wraps another ordering and reverses its result, as in the
// reversed-BFS variant Munson and Hovland [19] found effective.
type Reversed struct {
	Inner Ordering
}

// Name implements Ordering.
func (r Reversed) Name() string { return "R" + r.Inner.Name() }

// Compute implements Ordering.
func (r Reversed) Compute(g Graph, vq []float64) ([]int32, error) {
	perm, err := r.Inner.Compute(g, vq)
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}

func argminQuality(vq []float64) int32 {
	best := 0
	for i, q := range vq {
		if q < vq[best] {
			best = i
		}
	}
	return int32(best)
}

// ValidatePermutation checks that perm is a permutation of 0..n-1.
func ValidatePermutation(perm []int32, n int) error {
	if len(perm) != n {
		return fmt.Errorf("order: permutation length %d != %d", len(perm), n)
	}
	seen := make([]bool, n)
	for pos, v := range perm {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("order: entry %d at position %d out of range", v, pos)
		}
		if seen[v] {
			return fmt.Errorf("order: vertex %d appears twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Invert returns the inverse permutation: out[perm[i]] = i.
func Invert(perm []int32) []int32 {
	out := make([]int32, len(perm))
	for i, v := range perm {
		out[v] = int32(i)
	}
	return out
}

func init() {
	Register("ORI", func() Ordering { return Original{} })
	Register("RANDOM", func() Ordering { return Random{Seed: 1} })
	Register("BFS", func() Ordering { return BFS{} })
	Register("BFS-WORST", func() Ordering { return BFS{WorstQualityRoot: true} })
	Register("DFS", func() Ordering { return DFS{} })
	Register("RCM", func() Ordering { return RCM{} })
	Register("HILBERT", func() Ordering { return Hilbert{} })
	Register("MORTON", func() Ordering { return Morton{} })
}
