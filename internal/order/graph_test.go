package order

import (
	"testing"

	"lams/internal/mesh"
)

// TestEveryOrderingPermutesTetMesh is the payoff of the Graph abstraction:
// every registered ordering — including the quality-driven RDR family and
// the coordinate-driven curve orderings — must produce a valid permutation
// of a tetrahedral mesh with no 3D-specific code in this package.
func TestEveryOrderingPermutesTetMesh(t *testing.T) {
	tm, err := mesh.GenerateTetCube(4, 3, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic qualities (any deterministic values do for traversal seeding).
	vq := make([]float64, tm.NumVerts())
	for i := range vq {
		vq[i] = float64((i*2654435761)%1000) / 1000
	}
	for _, name := range Names() {
		ord, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := ord.Compute(tm, vq)
		if err != nil {
			t.Fatalf("%s over tet mesh: %v", name, err)
		}
		if err := ValidatePermutation(perm, tm.NumVerts()); err != nil {
			t.Errorf("%s over tet mesh: %v", name, err)
		}
	}
}

// TestGreedyWalkCoversTetInterior mirrors the 2D walk-coverage guarantee on
// the 3D mesh: the quality-greedy traversal processes every interior vertex
// exactly once.
func TestGreedyWalkCoversTetInterior(t *testing.T) {
	tm, err := mesh.GenerateTetCube(3, 3, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	vq := make([]float64, tm.NumVerts())
	for i := range vq {
		vq[i] = float64((i*7919)%977) / 977
	}
	w, err := GreedyWalk(tm, vq, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]int)
	for _, v := range w.Heads {
		seen[v]++
	}
	for _, v := range tm.InteriorVerts {
		if seen[v] != 1 {
			t.Errorf("interior vertex %d processed %d times", v, seen[v])
		}
	}
}

// TestCurveOrderingsRequireSpatial pins the error path: a Graph without
// coordinates cannot be curve-ordered.
func TestCurveOrderingsRequireSpatial(t *testing.T) {
	g := pureGraph{n: 4}
	if _, err := (Hilbert{}).Compute(g, nil); err == nil {
		t.Error("HILBERT accepted a graph without coordinates")
	}
	if _, err := (Morton{}).Compute(g, nil); err == nil {
		t.Error("MORTON accepted a graph without coordinates")
	}
	// Adjacency-only orderings must still work on it.
	perm, err := BFS{}.Compute(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(perm, 4); err != nil {
		t.Error(err)
	}
}

// pureGraph is a path graph with no geometry: 0-1-2-...-(n-1).
type pureGraph struct{ n int }

func (g pureGraph) NumVerts() int { return g.n }

func (g pureGraph) Neighbors(v int32) []int32 {
	switch {
	case g.n == 1:
		return nil
	case v == 0:
		return []int32{1}
	case int(v) == g.n-1:
		return []int32{v - 1}
	default:
		return []int32{v - 1, v + 1}
	}
}

func (g pureGraph) Degree(v int32) int { return len(g.Neighbors(v)) }

func (g pureGraph) Interior() []int32 {
	var out []int32
	for v := int32(1); int(v) < g.n-1; v++ {
		out = append(out, v)
	}
	return out
}

func (g pureGraph) OnBoundary(v int32) bool { return v == 0 || int(v) == g.n-1 }
