package order

import (
	"fmt"
	"sort"
)

// Walk is the result of the quality-greedy traversal that both the paper's
// Laplacian smoother (§4.2) and the RDR ordering (Algorithm 2) follow.
//
// Heads is the sequence of vertices the traversal processes: starting from
// the worst-quality interior vertex, it repeatedly moves to the
// worst-quality unprocessed neighbor, restarting from the globally
// worst-quality unprocessed interior vertex when it gets stuck. Every
// interior vertex appears exactly once (boundary vertices may also appear,
// when the walk steps onto them).
//
// Appends is the order vertices are first *touched* (appended to Vnew in
// Algorithm 2): each processed head appends its not-yet-appended neighbors
// sorted by increasing quality. This is the RDR permutation, modulo the
// final completion sweep.
type Walk struct {
	Heads   []int32
	Appends []int32
}

// GreedyWalk runs Algorithm 2's traversal over the graph with the given
// initial vertex qualities. When descending is true the quality comparisons
// are reversed (best-first; an ablation).
func GreedyWalk(g Graph, vq []float64, descending bool) (Walk, error) {
	nv := g.NumVerts()
	if len(vq) != nv {
		return Walk{}, fmt.Errorf("order: quality slice length %d != vertex count %d", len(vq), nv)
	}
	// less orders vertices by quality with an index tie-break — a total
	// order, so every comparison sort of a vertex set produces the same
	// sequence. The closure is built once per walk and shared by the seed
	// sort and the per-head neighbor sorts.
	less := func(a, b int32) bool {
		if vq[a] != vq[b] {
			if descending {
				return vq[a] > vq[b]
			}
			return vq[a] < vq[b]
		}
		return a < b // deterministic tie-break
	}

	// Line 6: interior vertices sorted by increasing quality.
	seeds := append([]int32(nil), g.Interior()...)
	sort.Slice(seeds, func(i, j int) bool { return less(seeds[i], seeds[j]) })

	w := Walk{
		Heads:   make([]int32, 0, nv),
		Appends: make([]int32, 0, nv),
	}
	processed := make([]bool, nv) // line 3
	sorted := make([]bool, nv)    // line 4
	var l []int32
	neighborsOf := func(v int32) []int32 { // lines 13/23
		l = l[:0]
		for _, u := range g.Neighbors(v) {
			if !processed[u] {
				l = append(l, u)
			}
		}
		// The walk sorts one neighbor list per processed head, and mesh
		// degrees are small (~6 in 2D, ~14 in 3D) — at that size the
		// sort.Slice call this used to make costs more in its per-call
		// allocations (the closure and the interface header) than the sort
		// itself. An insertion sort over the reused buffer allocates
		// nothing, and less is a total order, so the output sequence is
		// unchanged.
		for i := 1; i < len(l); i++ {
			u := l[i]
			j := i - 1
			for j >= 0 && less(u, l[j]) {
				l[j+1] = l[j]
				j--
			}
			l[j+1] = u
		}
		return l
	}

	for _, i := range seeds {
		if processed[i] { // line 7
			continue
		}
		if !sorted[i] { // lines 8-11
			w.Appends = append(w.Appends, i)
			sorted[i] = true
		}
		processed[i] = true // line 12
		w.Heads = append(w.Heads, i)
		l = neighborsOf(i)
		for len(l) > 0 { // line 14
			for _, u := range l { // lines 15-21
				if !sorted[u] {
					w.Appends = append(w.Appends, u)
					sorted[u] = true
				}
			}
			head := l[0]
			processed[head] = true // line 22
			w.Heads = append(w.Heads, head)
			l = neighborsOf(head)
		}
	}
	return w, nil
}
