package order

import (
	"fmt"
	"sort"
	"sync"
)

// The ordering registry. Each ordering registers a factory for itself from
// its defining file's init function, so adding an ordering is a one-file
// change: implement Ordering, call Register. ByName and Names are driven
// entirely by the registry — there is no central switch to extend.

var registry = struct {
	sync.RWMutex
	factories map[string]func() Ordering
}{factories: make(map[string]func() Ordering)}

// reportOrder fixes the presentation order of the paper's orderings in
// Names (the order the evaluation tables use). Orderings registered beyond
// this list sort alphabetically after it.
var reportOrder = map[string]int{
	"ORI": 0, "RANDOM": 1, "BFS": 2, "DFS": 3, "RDR": 4,
	"RCM": 5, "HILBERT": 6, "MORTON": 7, "CPACK": 8,
}

// Register makes the ordering produced by factory available through ByName
// under the given name. The factory must return an ordering with default
// parameters whose Name() equals name. Register panics on an empty name or
// a duplicate registration — both are programmer errors caught at init time.
func Register(name string, factory func() Ordering) {
	if name == "" {
		panic("order: Register with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("order: Register(%q) with nil factory", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("order: ordering %q registered twice", name))
	}
	registry.factories[name] = factory
}

// ByName returns the named ordering with default parameters. The built-in
// names (case sensitive, as used in reports) are ORI, RANDOM, BFS, DFS,
// RDR, RCM, HILBERT, MORTON and CPACK, plus the parameterized variants
// BFS-WORST (BFS rooted at the worst-quality vertex) and RDR-DESC (RDR
// with reversed quality comparisons); Register adds more.
func ByName(name string) (Ordering, error) {
	registry.RLock()
	factory, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("order: unknown ordering %q (known: %v)", name, Names())
	}
	return factory(), nil
}

// Names lists the registered orderings: the paper's nine in report order,
// then any further registrations alphabetically.
func Names() []string {
	registry.RLock()
	out := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		out = append(out, name)
	}
	registry.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		ri, iKnown := reportOrder[out[i]]
		rj, jKnown := reportOrder[out[j]]
		switch {
		case iKnown && jKnown:
			return ri < rj
		case iKnown:
			return true
		case jKnown:
			return false
		default:
			return out[i] < out[j]
		}
	})
	return out
}
