package order

import (
	"reflect"
	"sync"
	"testing"
)

func TestRegistryNamesReportOrder(t *testing.T) {
	want := []string{"ORI", "RANDOM", "BFS", "DFS", "RDR", "RCM", "HILBERT", "MORTON", "CPACK"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least the paper's nine", got)
	}
	if !reflect.DeepEqual(got[:len(want)], want) {
		t.Errorf("Names() = %v, want prefix %v", got, want)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range Names() {
		ord, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if ord.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, ord.Name())
		}
	}
}

// TestRegistryVariantEntries covers the parameterized registry entries:
// BFS-WORST must root its traversal at the worst-quality vertex, and
// RDR-DESC must be a valid permutation distinct from RDR.
func TestRegistryVariantEntries(t *testing.T) {
	m, vq := testMesh(t)

	ord, err := ByName("BFS-WORST")
	if err != nil {
		t.Fatal(err)
	}
	perm, err := ord.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(perm, m.NumVerts()); err != nil {
		t.Fatal(err)
	}
	worst := argminQuality(vq)
	if perm[0] != worst {
		t.Errorf("BFS-WORST starts at %d, want worst-quality vertex %d", perm[0], worst)
	}
	if _, err := ord.Compute(m, nil); err == nil {
		t.Error("BFS-WORST without qualities should error")
	}

	desc, err := ByName("RDR-DESC")
	if err != nil {
		t.Fatal(err)
	}
	dp, err := desc.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(dp, m.NumVerts()); err != nil {
		t.Fatal(err)
	}
	rdr, err := ByName("RDR")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := rdr.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range rp {
		if rp[i] != dp[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("RDR-DESC produced the same permutation as RDR")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	for _, name := range []string{"", "rdr", "NOPE", "BFS "} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) did not fail", name)
		}
	}
}

func TestRegistryEveryOrderingPermutes(t *testing.T) {
	m, vq := testMesh(t)
	for _, name := range Names() {
		ord, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := ord.Compute(m, vq)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ValidatePermutation(perm, m.NumVerts()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRegisterRejectsBadRegistrations(t *testing.T) {
	mustPanic := func(label string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", label)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", func() Ordering { return Original{} }) })
	mustPanic("nil factory", func() { Register("X-NIL", nil) })
	mustPanic("duplicate", func() { Register("ORI", func() Ordering { return Original{} }) })
}

// stubOrdering is a registry-extension fixture: an identity ordering under
// a custom name.
type stubOrdering struct{ name string }

func (s stubOrdering) Name() string { return s.name }

func (s stubOrdering) Compute(g Graph, _ []float64) ([]int32, error) {
	return Original{}.Compute(g, nil)
}

// registerStubOnce guards the test registration so repeated in-process runs
// (go test -count=2, -cpu lists) do not trip Register's duplicate panic.
var registerStubOnce sync.Once

func TestRegisterExtends(t *testing.T) {
	// A new registration is immediately visible through ByName and sorts
	// after the paper's nine in Names.
	const name = "ZZZ-STUB"
	registerStubOnce.Do(func() {
		Register(name, func() Ordering { return stubOrdering{name: name} })
	})
	ord, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if ord.Name() != name {
		t.Errorf("registered ordering Name() = %q", ord.Name())
	}
	names := Names()
	if names[len(names)-1] != name {
		t.Errorf("extra ordering should sort last: %v", names)
	}
}
