package order

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
)

// testMesh builds a small generated mesh shared by the ordering tests.
func testMesh(t testing.TB) (*mesh.Mesh, []float64) {
	t.Helper()
	m, err := mesh.Generate("crake", 1200)
	if err != nil {
		t.Fatal(err)
	}
	return m, quality.VertexQualities(m, quality.EdgeRatio{})
}

// gridMesh builds a deterministic structured mesh for exact-order tests.
func gridMesh(t testing.TB, nx, ny int) *mesh.Mesh {
	t.Helper()
	pts := make([]geom.Point, 0, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	var tris [][3]int32
	at := func(x, y int) int32 { return int32(y*nx + x) }
	for y := 0; y+1 < ny; y++ {
		for x := 0; x+1 < nx; x++ {
			tris = append(tris, [3]int32{at(x, y), at(x+1, y), at(x, y+1)})
			tris = append(tris, [3]int32{at(x+1, y), at(x+1, y+1), at(x, y+1)})
		}
	}
	m, err := mesh.New(pts, tris)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllOrderingsAreValidPermutations(t *testing.T) {
	m, vq := testMesh(t)
	for _, name := range Names() {
		ord, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := ord.Compute(m, vq)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ValidatePermutation(perm, m.NumVerts()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestOriginalIsIdentity(t *testing.T) {
	m, _ := testMesh(t)
	perm, err := Original{}.Compute(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range perm {
		if int32(i) != v {
			t.Fatalf("position %d holds %d", i, v)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	m, _ := testMesh(t)
	a, _ := Random{Seed: 5}.Compute(m, nil)
	b, _ := Random{Seed: 5}.Compute(m, nil)
	c, _ := Random{Seed: 6}.Compute(m, nil)
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
	}
	if !same {
		t.Error("same seed gave different shuffles")
	}
	if !diff {
		t.Error("different seeds gave identical shuffles")
	}
}

func TestBFSLevelOrder(t *testing.T) {
	// On a path-of-triangles grid, BFS from vertex 0 orders vertices by
	// graph distance from 0.
	m := gridMesh(t, 10, 3)
	perm, err := BFS{}.Compute(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist := bfsDistances(m, 0)
	for i := 1; i < len(perm); i++ {
		if dist[perm[i]] < dist[perm[i-1]] {
			t.Fatalf("BFS order not by level at position %d", i)
		}
	}
	if perm[0] != 0 {
		t.Error("BFS must start at the root")
	}
}

func bfsDistances(m *mesh.Mesh, root int32) []int {
	dist := make([]int, m.NumVerts())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int32{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range m.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func TestBFSWorstQualityRoot(t *testing.T) {
	m, vq := testMesh(t)
	perm, err := BFS{WorstQualityRoot: true}.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	worst := argminQuality(vq)
	if perm[0] != worst {
		t.Errorf("root = %d, worst = %d", perm[0], worst)
	}
	if _, err := (BFS{WorstQualityRoot: true}).Compute(m, nil); err == nil {
		t.Error("missing qualities should error")
	}
	if _, err := (BFS{Root: -1}).Compute(m, nil); err == nil {
		t.Error("bad root should error")
	}
}

func TestDFSDepthFirst(t *testing.T) {
	m := gridMesh(t, 6, 6)
	perm, err := DFS{}.Compute(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(perm, m.NumVerts()); err != nil {
		t.Fatal(err)
	}
	if perm[0] != 0 {
		t.Error("DFS must start at root 0")
	}
	// Second visited vertex is the lowest-index neighbor of the root.
	if perm[1] != m.Neighbors(0)[0] {
		t.Errorf("DFS second vertex = %d, want %d", perm[1], m.Neighbors(0)[0])
	}
	if _, err := (DFS{Root: 1 << 30}).Compute(m, nil); err == nil {
		t.Error("bad root should error")
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	m, vq := testMesh(t)
	rcm, err := RCM{}.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	random, _ := Random{Seed: 3}.Compute(m, nil)
	if bw := bandwidth(m, rcm); bw >= bandwidth(m, random) {
		t.Errorf("RCM bandwidth %d not better than random %d", bw, bandwidth(m, random))
	}
}

// bandwidth computes the maximum |pos(u)-pos(v)| over mesh edges under the
// newToOld permutation.
func bandwidth(m *mesh.Mesh, newToOld []int32) int32 {
	pos := Invert(newToOld)
	var bw int32
	for v := int32(0); v < int32(m.NumVerts()); v++ {
		for _, w := range m.Neighbors(v) {
			d := pos[v] - pos[w]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

func TestSpaceFillingCurvesImproveLocality(t *testing.T) {
	m, vq := testMesh(t)
	random, _ := Random{Seed: 4}.Compute(m, nil)
	for _, name := range []string{"HILBERT", "MORTON"} {
		ord, _ := ByName(name)
		perm, err := ord.Compute(m, vq)
		if err != nil {
			t.Fatal(err)
		}
		if avgEdgeSpan(m, perm) >= avgEdgeSpan(m, random) {
			t.Errorf("%s does not beat random edge span", name)
		}
	}
}

func avgEdgeSpan(m *mesh.Mesh, newToOld []int32) float64 {
	pos := Invert(newToOld)
	var total float64
	var n int
	for v := int32(0); v < int32(m.NumVerts()); v++ {
		for _, w := range m.Neighbors(v) {
			if w > v {
				total += math.Abs(float64(pos[v] - pos[w]))
				n++
			}
		}
	}
	return total / float64(n)
}

func TestReversed(t *testing.T) {
	m, vq := testMesh(t)
	inner := BFS{}
	rev := Reversed{Inner: inner}
	if rev.Name() != "RBFS" {
		t.Errorf("name = %s", rev.Name())
	}
	a, err := inner.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rev.Compute(m, vq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[len(b)-1-i] {
			t.Fatal("Reversed is not the reverse of its inner ordering")
		}
	}
}

func TestInvertProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(13))}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		p32 := make([]int32, n)
		for i, v := range perm {
			p32[i] = int32(v)
		}
		inv := Invert(p32)
		for i, v := range p32 {
			if inv[v] != int32(i) {
				return false
			}
		}
		return ValidatePermutation(inv, n) == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestValidatePermutationErrors(t *testing.T) {
	if err := ValidatePermutation([]int32{0, 1}, 3); err == nil {
		t.Error("short permutation accepted")
	}
	if err := ValidatePermutation([]int32{0, 1, 1}, 3); err == nil {
		t.Error("duplicate accepted")
	}
	if err := ValidatePermutation([]int32{0, 1, 5}, 3); err == nil {
		t.Error("out of range accepted")
	}
	if err := ValidatePermutation([]int32{2, 0, 1}, 3); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("FOO"); err == nil {
		t.Error("unknown ordering accepted")
	}
	for _, n := range Names() {
		ord, err := ByName(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if ord.Name() != n && !(n == "RANDOM" && ord.Name() == "RANDOM") {
			t.Errorf("ByName(%q).Name() = %q", n, ord.Name())
		}
	}
}
