package order

// Graph is the adjacency view the orderings traverse: a CSR vertex
// neighborhood structure plus the boundary/interior partition. Both
// *mesh.Mesh (2D triangles) and *mesh.TetMesh (3D tetrahedra) implement it,
// which is what makes every registered ordering dimension-agnostic — the
// traversals only ever see vertices and edges, never elements.
type Graph interface {
	// NumVerts returns the number of vertices.
	NumVerts() int
	// Neighbors returns the sorted, unique adjacency list of vertex v as a
	// shared sub-slice; callers must not modify it.
	Neighbors(v int32) []int32
	// Degree returns the number of neighbors of vertex v.
	Degree(v int32) int
	// Interior returns the non-boundary vertices in storage order.
	Interior() []int32
	// OnBoundary reports whether vertex v lies on the mesh boundary.
	OnBoundary(v int32) bool
}

// Spatial is the optional coordinate view of a Graph: space-filling-curve
// keys over the vertex positions. The curve orderings (HILBERT, MORTON)
// require it and fail on graphs without geometry; every other ordering works
// from adjacency alone.
type Spatial interface {
	// HilbertKeys returns a Hilbert curve key per vertex on a
	// 2^bits-per-axis grid over the vertex bounds.
	HilbertKeys(bits uint) []uint64
	// MortonKeys returns a Z-order curve key per vertex on the same grid.
	MortonKeys(bits uint) []uint64
}
