package order

import (
	"testing"

	"lams/internal/mesh"
	"lams/internal/quality"
)

// BenchmarkGreedyWalk measures the quality-greedy traversal — the largest
// serial stage of a cold-start run (every smooth with the QualityGreedy
// traversal and every RDR reorder pays it once per mesh). The hot loop is
// the per-head neighbor sort; this benchmark is the before/after evidence
// for replacing the sort.Slice closures with the alloc-free insertion sort.
func BenchmarkGreedyWalk(b *testing.B) {
	m, err := mesh.Generate("carabiner", 20000)
	if err != nil {
		b.Fatal(err)
	}
	vq := quality.VertexQualities(m, quality.EdgeRatio{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyWalk(m, vq, false); err != nil {
			b.Fatal(err)
		}
	}
}
