package perfmodel

import (
	"testing"

	"lams/internal/cache"
	"lams/internal/trace"
)

func TestPlacement(t *testing.T) {
	m := Default()
	m.Pinning = Compact
	n, mapping := m.placement(10)
	if n != 10 {
		t.Errorf("compact cores = %d", n)
	}
	for i, c := range mapping {
		if c != i {
			t.Errorf("compact mapping[%d] = %d", i, c)
		}
	}

	m.Pinning = Scatter
	_, mapping = m.placement(8)
	// Threads 0..3 land on sockets 0..3 (cores 0, 8, 16, 24); threads 4..7
	// are the second core of each socket.
	want := []int{0, 8, 16, 24, 1, 9, 17, 25}
	for i, c := range mapping {
		if c != want[i] {
			t.Errorf("scatter mapping[%d] = %d, want %d", i, c, want[i])
		}
	}
}

func TestSpeedupGain(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("speedup")
	}
	if Speedup(10, 0) != 0 {
		t.Error("zero-time speedup")
	}
	if Gain(10, 8) != 0.2 {
		t.Error("gain")
	}
	if Gain(0, 8) != 0 {
		t.Error("zero-base gain")
	}
}

func TestRunBasic(t *testing.T) {
	mdl := Default()
	mdl.Cache = cache.Scaled(100)
	tb := trace.NewBuffer(1)
	for i := int32(0); i < 100; i++ {
		tb.Access(0, i%10)
	}
	est, err := mdl.Run(tb)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cores != 1 || est.Seconds <= 0 {
		t.Errorf("estimate = %+v", est)
	}
	if est.BaseCycles != mdl.ComputeCyclesPerAccess*100 {
		t.Errorf("base cycles = %v", est.BaseCycles)
	}
	if len(est.Levels) != 3 {
		t.Errorf("levels = %d", len(est.Levels))
	}
}

func TestRunMoreCoresFaster(t *testing.T) {
	mdl := Default()
	mdl.Cache = cache.Scaled(4000)
	// Same total work split over 1 vs 4 cores as contiguous chunks, the
	// static partitioning the smoother uses.
	mk := func(p int) *trace.Buffer {
		tb := trace.NewBuffer(p)
		perCore := 40000 / p
		for c := 0; c < p; c++ {
			for i := 0; i < perCore; i++ {
				v := int32((c*perCore + i) % 4000)
				tb.Access(c, v)
			}
		}
		return tb
	}
	e1, err := mdl.Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	e4, err := mdl.Run(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if e4.Seconds >= e1.Seconds {
		t.Errorf("4 cores (%v) not faster than 1 (%v)", e4.Seconds, e1.Seconds)
	}
	if e4.Seconds > e1.Seconds/2 {
		t.Errorf("4 cores only %.2fx faster", e1.Seconds/e4.Seconds)
	}
}

func TestScaleEstimate(t *testing.T) {
	first := Estimate{Seconds: 1, BaseCycles: 10, PenaltyCycles: 5,
		Levels:         []cache.LevelStats{{Name: "L1", Accesses: 100, Misses: 10}},
		PerCoreSeconds: []float64{1}}
	full := Estimate{Seconds: 3, BaseCycles: 30, PenaltyCycles: 9,
		Levels:      []cache.LevelStats{{Name: "L1", Accesses: 300, Misses: 14}},
		MemAccesses: 8, PerCoreSeconds: []float64{3}}
	// Traced 3 iterations (1 cold + 2 steady), want 5 total:
	// steady-state part scales by (5-1)/(3-1) = 2.
	got := ScaleEstimate(full, first, 3, 5)
	if got.Seconds != 1+(3-1)*2 {
		t.Errorf("seconds = %v", got.Seconds)
	}
	if got.PenaltyCycles != 5+(9-5)*2 {
		t.Errorf("penalty = %v", got.PenaltyCycles)
	}
	if got.Levels[0].Misses != 10+(14-10)*2 {
		t.Errorf("L1 misses = %d", got.Levels[0].Misses)
	}
	// No-op cases.
	if got := ScaleEstimate(full, first, 1, 5); got.Seconds != full.Seconds {
		t.Error("tracedIters<2 should be a no-op")
	}
	if got := ScaleEstimate(full, first, 3, 3); got.Seconds != full.Seconds {
		t.Error("totalIters<=traced should be a no-op")
	}
}

func TestValidate(t *testing.T) {
	mdl := Default()
	if err := mdl.Validate(); err != nil {
		t.Error(err)
	}
	bad := mdl
	bad.ComputeCyclesPerAccess = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero work accepted")
	}
	bad = mdl
	bad.FrequencyHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero frequency accepted")
	}
	bad = mdl
	bad.Cache.Levels = nil
	if err := bad.Validate(); err == nil {
		t.Error("no levels accepted")
	}
}

func TestForMeshSize(t *testing.T) {
	m := ForMeshSize(10000)
	if m.Cache.Levels[2].SizeBytes >= cache.Westmere().Levels[2].SizeBytes {
		t.Error("cache not scaled")
	}
}

func TestPinningString(t *testing.T) {
	if Compact.String() != "compact" || Scatter.String() != "scatter" {
		t.Error("pinning names")
	}
}
