// Package perfmodel estimates Laplacian-mesh-smoothing execution times on
// the paper's 32-core Westmere-EX from simulated cache behaviour, standing
// in for wall-clock measurements this single-core host cannot produce.
//
// The model is the paper's own Eq. (2) on top of a constant-work base:
//
//	cycles(core) = W·accesses(core) + m1·c2 + m1·m2·c3 + m1·m2·m3·cm
//	T(p)         = max over cores of cycles(core) / frequency
//
// where the miss terms come from replaying the per-core access traces
// through the cache simulator. Superlinear low-core-count speedups emerge
// exactly as §5.3 hypothesizes: additional cores contribute additional
// private caches (and, under scatter pinning, additional L3 sockets), so
// per-core working sets fit closer caches.
package perfmodel

import (
	"fmt"

	"lams/internal/cache"
	"lams/internal/trace"
)

// Pinning places threads on cores.
type Pinning int

const (
	// Compact fills sockets one at a time (KMP_AFFINITY=compact, §5.1).
	Compact Pinning = iota
	// Scatter round-robins threads across sockets, the placement §5.3
	// suspects behind the superlinear 1-to-4-core speedups.
	Scatter
)

func (p Pinning) String() string {
	if p == Scatter {
		return "scatter"
	}
	return "compact"
}

// Model holds the machine parameters.
type Model struct {
	Cache cache.Config
	// ComputeCyclesPerAccess is the base work W per vertex-array access
	// (arithmetic, index math, quality bookkeeping).
	ComputeCyclesPerAccess float64
	// FrequencyHz converts cycles to seconds (Xeon E7-8837: 2.67 GHz).
	FrequencyHz float64
	Pinning     Pinning
}

// Default returns the Westmere-EX model used by the experiments. W is
// calibrated in EXPERIMENTS.md so that the memory-penalty share of the
// serial ORI runtime matches the share implied by the paper's Figure 8
// ratios.
func Default() Model {
	return Model{
		Cache:                  cache.Westmere(),
		ComputeCyclesPerAccess: 35,
		FrequencyHz:            2.67e9,
		Pinning:                Scatter,
	}
}

// ForMeshSize returns the default model with cache capacities scaled to the
// experiment mesh size (see cache.Scaled).
func ForMeshSize(meshVerts int) Model {
	m := Default()
	m.Cache = cache.Scaled(meshVerts)
	return m
}

// Estimate reports one modeled run.
type Estimate struct {
	Cores         int
	Seconds       float64
	BaseCycles    float64
	PenaltyCycles float64
	// Levels aggregates the per-level counters over all cores.
	Levels []cache.LevelStats
	// MemAccesses is the number of main-memory fetches.
	MemAccesses int64
	// PerCoreSeconds is each core's modeled time; Seconds is their max.
	PerCoreSeconds []float64
}

// Run replays the traced execution through the cache simulator and returns
// the modeled execution time. The trace's core count is the thread count p.
func (mdl Model) Run(tb *trace.Buffer) (Estimate, error) {
	p := tb.NumCores()
	simCores, mapping := mdl.placement(p)
	sim, err := cache.NewSim(mdl.Cache, simCores)
	if err != nil {
		return Estimate{}, err
	}

	// Interleave the per-core streams round-robin through the hierarchy.
	streams := make([][]int32, p)
	for c := 0; c < p; c++ {
		streams[c] = tb.Core(c)
	}
	for {
		done := true
		for c := 0; c < p; c++ {
			if len(streams[c]) == 0 {
				continue
			}
			done = false
			sim.AccessVertex(mapping[c], streams[c][0])
			streams[c] = streams[c][1:]
		}
		if done {
			break
		}
	}

	est := Estimate{Cores: p, PerCoreSeconds: make([]float64, p)}
	agg := make([]cache.LevelStats, len(mdl.Cache.Levels))
	for i, lc := range mdl.Cache.Levels {
		agg[i].Name = lc.Name
	}
	for c := 0; c < p; c++ {
		sc := mapping[c]
		base := mdl.ComputeCyclesPerAccess * float64(len(tb.Core(c)))
		pen := sim.CorePenaltyCycles(sc)
		secs := (base + pen) / mdl.FrequencyHz
		est.PerCoreSeconds[c] = secs
		if secs > est.Seconds {
			est.Seconds = secs
		}
		est.BaseCycles += base
		est.PenaltyCycles += pen
		for i, st := range sim.CoreStats(sc) {
			agg[i].Accesses += st.Accesses
			agg[i].Misses += st.Misses
		}
		est.MemAccesses += sim.CoreMemAccesses(sc)
	}
	est.Levels = agg
	return est, nil
}

// placement maps thread t (0..p-1) to a simulator core id according to the
// pinning policy, and returns the number of simulator cores to instantiate.
func (mdl Model) placement(p int) (simCores int, mapping []int) {
	cps := mdl.Cache.CoresPerSocket
	mapping = make([]int, p)
	if mdl.Pinning == Compact {
		for t := range mapping {
			mapping[t] = t
		}
		return p, mapping
	}
	// Scatter over 4 sockets (the Westmere-EX machine).
	const sockets = 4
	maxCore := 0
	for t := range mapping {
		mapping[t] = (t%sockets)*cps + t/sockets
		if mapping[t] > maxCore {
			maxCore = mapping[t]
		}
	}
	return maxCore + 1, mapping
}

// Speedup returns tBase/t, the paper's Speedup(ordering, p) =
// T_ORI(1)/T_ordering(p) when tBase is the serial ORI time.
func Speedup(tBase, t float64) float64 {
	if t == 0 {
		return 0
	}
	return tBase / t
}

// Gain returns (tAlgo-tRDR)/tAlgo, the Figure 13 relative gain.
func Gain(tAlgo, tRDR float64) float64 {
	if tAlgo == 0 {
		return 0
	}
	return (tAlgo - tRDR) / tAlgo
}

// ScaleEstimate linearly extrapolates an estimate measured over tracedIters
// smoothing iterations to totalIters iterations: the first traced iteration
// carries the compulsory misses, later iterations are steady-state, so the
// steady-state part is scaled by (totalIters-1)/(tracedIters-1). It returns
// the input unchanged when tracedIters < 2 or totalIters <= tracedIters.
func ScaleEstimate(full, firstIterOnly Estimate, tracedIters, totalIters int) Estimate {
	if tracedIters < 2 || totalIters <= tracedIters {
		return full
	}
	factor := float64(totalIters-1) / float64(tracedIters-1)
	out := full
	scale := func(first, fullV float64) float64 { return first + (fullV-first)*factor }
	out.Seconds = scale(firstIterOnly.Seconds, full.Seconds)
	out.BaseCycles = scale(firstIterOnly.BaseCycles, full.BaseCycles)
	out.PenaltyCycles = scale(firstIterOnly.PenaltyCycles, full.PenaltyCycles)
	out.PerCoreSeconds = append([]float64(nil), full.PerCoreSeconds...)
	for i := range out.PerCoreSeconds {
		var f float64
		if i < len(firstIterOnly.PerCoreSeconds) {
			f = firstIterOnly.PerCoreSeconds[i]
		}
		out.PerCoreSeconds[i] = scale(f, full.PerCoreSeconds[i])
	}
	out.Levels = append([]cache.LevelStats(nil), full.Levels...)
	for i := range out.Levels {
		var f cache.LevelStats
		if i < len(firstIterOnly.Levels) {
			f = firstIterOnly.Levels[i]
		}
		out.Levels[i].Accesses = f.Accesses + int64(float64(full.Levels[i].Accesses-f.Accesses)*factor)
		out.Levels[i].Misses = f.Misses + int64(float64(full.Levels[i].Misses-f.Misses)*factor)
	}
	var fm int64 = firstIterOnly.MemAccesses
	out.MemAccesses = fm + int64(float64(full.MemAccesses-fm)*factor)
	return out
}

// Validate sanity-checks the model parameters.
func (mdl Model) Validate() error {
	if mdl.ComputeCyclesPerAccess <= 0 {
		return fmt.Errorf("perfmodel: ComputeCyclesPerAccess must be positive")
	}
	if mdl.FrequencyHz <= 0 {
		return fmt.Errorf("perfmodel: FrequencyHz must be positive")
	}
	if len(mdl.Cache.Levels) == 0 {
		return fmt.Errorf("perfmodel: cache config has no levels")
	}
	return nil
}
