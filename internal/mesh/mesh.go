// Package mesh provides the triangular mesh data structure at the heart of
// the reproduction: a packed vertex array, a triangle array, CSR vertex
// adjacency, and boundary/interior classification. The vertex storage order
// is exactly what the paper's orderings permute; Renumber applies an
// ordering to produce a new mesh whose storage layout follows it.
package mesh

import (
	"fmt"
	"sort"

	"lams/internal/delaunay"
	"lams/internal/geom"
)

// Mesh is a 2D triangular mesh. Vertices are identified by their position in
// the storage arrays; all per-vertex slices are indexed the same way.
type Mesh struct {
	// Coords holds the vertex positions in storage order.
	Coords []geom.Point
	// Tris holds the triangles as CCW triples of vertex indices.
	Tris [][3]int32
	// AdjStart/AdjList is the CSR vertex-to-vertex adjacency:
	// the neighbors of v are AdjList[AdjStart[v]:AdjStart[v+1]].
	AdjStart []int32
	AdjList  []int32
	// IsBoundary marks vertices incident to a boundary edge (an edge used by
	// exactly one triangle).
	IsBoundary []bool
	// InteriorVerts lists the non-boundary vertices in storage order; these
	// are the vertices Laplacian smoothing moves.
	InteriorVerts []int32
	// TriStart/TriList is the CSR vertex-to-triangle incidence:
	// the triangles attached to v are TriList[TriStart[v]:TriStart[v+1]].
	TriStart []int32
	TriList  []int32
}

// NumVerts returns the number of vertices.
func (m *Mesh) NumVerts() int { return len(m.Coords) }

// NumTris returns the number of triangles.
func (m *Mesh) NumTris() int { return len(m.Tris) }

// Neighbors returns the adjacency list of vertex v as a shared sub-slice;
// callers must not modify it.
func (m *Mesh) Neighbors(v int32) []int32 {
	return m.AdjList[m.AdjStart[v]:m.AdjStart[v+1]]
}

// Degree returns the number of neighbors of vertex v.
func (m *Mesh) Degree(v int32) int {
	return int(m.AdjStart[v+1] - m.AdjStart[v])
}

// Interior returns the interior (non-boundary) vertices in storage order,
// implementing the ordering layer's adjacency view (order.Graph).
func (m *Mesh) Interior() []int32 { return m.InteriorVerts }

// OnBoundary reports whether vertex v lies on the mesh boundary,
// implementing the ordering layer's adjacency view (order.Graph).
func (m *Mesh) OnBoundary(v int32) bool { return m.IsBoundary[v] }

// HilbertKeys returns the Hilbert curve key of every vertex on a
// 2^bits-per-axis grid over the mesh bounds, implementing the ordering
// layer's spatial view (order.Spatial).
func (m *Mesh) HilbertKeys(bits uint) []uint64 {
	return geom.HilbertSortKeys(m.Coords, bits)
}

// MortonKeys returns the Z-order curve key of every vertex, implementing
// the ordering layer's spatial view (order.Spatial).
func (m *Mesh) MortonKeys(bits uint) []uint64 {
	return geom.MortonSortKeys(m.Coords, bits)
}

// New assembles a mesh from vertices and triangles: it builds the CSR
// adjacency, classifies boundary vertices, and validates index ranges.
func New(coords []geom.Point, tris [][3]int32) (*Mesh, error) {
	m := &Mesh{Coords: coords, Tris: tris}
	if err := m.build(); err != nil {
		return nil, err
	}
	return m, nil
}

// FromTriangulation converts a Delaunay triangulation into a mesh, keeping
// only triangles whose centroid satisfies keep (pass nil to keep all). This
// is how domain holes and concavities are carved out of the convex-hull
// triangulation. Vertices left without any triangle are compacted away,
// preserving the relative (generation) order of the survivors.
func FromTriangulation(t *delaunay.Triangulation, keep func(centroid geom.Point) bool) (*Mesh, error) {
	var kept [][3]int32
	used := make([]bool, len(t.Points))
	for _, tv := range t.Triangles {
		if keep != nil {
			c := geom.Centroid(t.Points[tv[0]], t.Points[tv[1]], t.Points[tv[2]])
			if !keep(c) {
				continue
			}
		}
		kept = append(kept, tv)
		used[tv[0]], used[tv[1]], used[tv[2]] = true, true, true
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("mesh: no triangles kept")
	}

	// Compact vertices, preserving generation order.
	remap := make([]int32, len(t.Points))
	coords := make([]geom.Point, 0, len(t.Points))
	for i, u := range used {
		if !u {
			remap[i] = -1
			continue
		}
		remap[i] = int32(len(coords))
		coords = append(coords, t.Points[i])
	}
	for i := range kept {
		for k := 0; k < 3; k++ {
			kept[i][k] = remap[kept[i][k]]
		}
	}
	return New(coords, kept)
}

func (m *Mesh) build() error {
	nv := int32(len(m.Coords))
	for ti, tv := range m.Tris {
		for k := 0; k < 3; k++ {
			if tv[k] < 0 || tv[k] >= nv {
				return fmt.Errorf("mesh: triangle %d vertex index %d out of range [0,%d)", ti, tv[k], nv)
			}
		}
		if tv[0] == tv[1] || tv[1] == tv[2] || tv[0] == tv[2] {
			return fmt.Errorf("mesh: triangle %d has repeated vertices %v", ti, tv)
		}
	}

	// Count undirected edges per vertex via the triangle edges; each
	// undirected edge appears once or twice among triangle edges, so build
	// directed adjacency then dedupe per vertex.
	deg := make([]int32, nv+1)
	for _, tv := range m.Tris {
		for k := 0; k < 3; k++ {
			deg[tv[k]+1] += 2 // each vertex gains two directed edges per triangle
		}
	}
	start := make([]int32, nv+1)
	for i := int32(0); i < nv; i++ {
		start[i+1] = start[i] + deg[i+1]
	}
	fill := make([]int32, nv)
	adj := make([]int32, start[nv])
	for _, tv := range m.Tris {
		for k := 0; k < 3; k++ {
			v := tv[k]
			adj[start[v]+fill[v]] = tv[(k+1)%3]
			adj[start[v]+fill[v]+1] = tv[(k+2)%3]
			fill[v] += 2
		}
	}

	// Sort and dedupe each vertex's neighbor list (chunk-parallel over
	// vertices), then compact into CSR form.
	m.AdjStart, m.AdjList = sortDedupeAdj(nv, start, fill, adj)

	// Vertex -> triangle incidence.
	tdeg := make([]int32, nv+1)
	for _, tv := range m.Tris {
		tdeg[tv[0]+1]++
		tdeg[tv[1]+1]++
		tdeg[tv[2]+1]++
	}
	m.TriStart = make([]int32, nv+1)
	for i := int32(0); i < nv; i++ {
		m.TriStart[i+1] = m.TriStart[i] + tdeg[i+1]
	}
	m.TriList = make([]int32, m.TriStart[nv])
	tfill := make([]int32, nv)
	for ti, tv := range m.Tris {
		for k := 0; k < 3; k++ {
			v := tv[k]
			m.TriList[m.TriStart[v]+tfill[v]] = int32(ti)
			tfill[v]++
		}
	}

	m.classifyBoundary()
	return nil
}

// VertTris returns the triangles incident to vertex v as a shared sub-slice;
// callers must not modify it.
func (m *Mesh) VertTris(v int32) []int32 {
	return m.TriList[m.TriStart[v]:m.TriStart[v+1]]
}

// classifyBoundary finds edges used by exactly one triangle and marks their
// endpoints as boundary vertices, then collects the interior vertex list.
func (m *Mesh) classifyBoundary() {
	type edge struct{ a, b int32 }
	count := make(map[edge]int8, 3*len(m.Tris))
	norm := func(a, b int32) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	for _, tv := range m.Tris {
		count[norm(tv[0], tv[1])]++
		count[norm(tv[1], tv[2])]++
		count[norm(tv[2], tv[0])]++
	}
	m.IsBoundary = make([]bool, len(m.Coords))
	for e, c := range count {
		if c == 1 {
			m.IsBoundary[e.a] = true
			m.IsBoundary[e.b] = true
		}
	}
	// Isolated vertices (none here after compaction, but keep the invariant
	// that every vertex is boundary or interior) are treated as boundary.
	for v := range m.IsBoundary {
		if m.Degree(int32(v)) == 0 {
			m.IsBoundary[v] = true
		}
	}
	m.InteriorVerts = m.InteriorVerts[:0]
	for v := int32(0); v < int32(len(m.Coords)); v++ {
		if !m.IsBoundary[v] {
			m.InteriorVerts = append(m.InteriorVerts, v)
		}
	}
}

// Renumber returns a new mesh whose vertex k is the receiver's vertex
// newToOld[k]: applying an ordering's output (the sequence of old indices in
// their new storage order) relabels the mesh exactly as the paper's
// Algorithm 2 returns Vnew. The receiver is unchanged.
func (m *Mesh) Renumber(newToOld []int32) (*Mesh, error) {
	nv := len(m.Coords)
	if len(newToOld) != nv {
		return nil, fmt.Errorf("mesh: permutation length %d != vertex count %d", len(newToOld), nv)
	}
	oldToNew := make([]int32, nv)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for newIdx, oldIdx := range newToOld {
		if oldIdx < 0 || int(oldIdx) >= nv {
			return nil, fmt.Errorf("mesh: permutation entry %d out of range", oldIdx)
		}
		if oldToNew[oldIdx] != -1 {
			return nil, fmt.Errorf("mesh: permutation repeats vertex %d", oldIdx)
		}
		oldToNew[oldIdx] = int32(newIdx)
	}

	coords := make([]geom.Point, nv)
	for newIdx, oldIdx := range newToOld {
		coords[newIdx] = m.Coords[oldIdx]
	}
	tris := make([][3]int32, len(m.Tris))
	for i, tv := range m.Tris {
		tris[i] = [3]int32{oldToNew[tv[0]], oldToNew[tv[1]], oldToNew[tv[2]]}
	}
	return New(coords, tris)
}

// Clone returns a deep copy of the mesh.
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{
		Coords:        append([]geom.Point(nil), m.Coords...),
		Tris:          append([][3]int32(nil), m.Tris...),
		AdjStart:      append([]int32(nil), m.AdjStart...),
		AdjList:       append([]int32(nil), m.AdjList...),
		IsBoundary:    append([]bool(nil), m.IsBoundary...),
		InteriorVerts: append([]int32(nil), m.InteriorVerts...),
		TriStart:      append([]int32(nil), m.TriStart...),
		TriList:       append([]int32(nil), m.TriList...),
	}
	return c
}

// Validate checks the structural invariants: CSR shape, symmetric adjacency,
// triangle indices in range, every triangle edge present in the adjacency,
// and the boundary/interior partition.
func (m *Mesh) Validate() error {
	nv := int32(len(m.Coords))
	if len(m.AdjStart) != int(nv)+1 {
		return fmt.Errorf("mesh: AdjStart length %d != nv+1", len(m.AdjStart))
	}
	for v := int32(0); v < nv; v++ {
		if m.AdjStart[v] > m.AdjStart[v+1] {
			return fmt.Errorf("mesh: AdjStart not monotone at %d", v)
		}
		prev := int32(-1)
		for _, w := range m.Neighbors(v) {
			if w < 0 || w >= nv {
				return fmt.Errorf("mesh: neighbor %d of %d out of range", w, v)
			}
			if w == v {
				return fmt.Errorf("mesh: self loop at %d", v)
			}
			if w <= prev {
				return fmt.Errorf("mesh: adjacency of %d not sorted/unique", v)
			}
			prev = w
			if !m.hasNeighbor(w, v) {
				return fmt.Errorf("mesh: adjacency not symmetric: %d->%d", v, w)
			}
		}
	}
	for ti, tv := range m.Tris {
		for k := 0; k < 3; k++ {
			a, b := tv[k], tv[(k+1)%3]
			if !m.hasNeighbor(a, b) {
				return fmt.Errorf("mesh: triangle %d edge (%d,%d) missing from adjacency", ti, a, b)
			}
		}
	}
	nInterior := 0
	for v := int32(0); v < nv; v++ {
		if !m.IsBoundary[v] {
			nInterior++
		}
	}
	if nInterior != len(m.InteriorVerts) {
		return fmt.Errorf("mesh: interior list length %d != %d non-boundary vertices", len(m.InteriorVerts), nInterior)
	}
	for i := 1; i < len(m.InteriorVerts); i++ {
		if m.InteriorVerts[i-1] >= m.InteriorVerts[i] {
			return fmt.Errorf("mesh: interior list not in storage order at %d", i)
		}
	}
	return nil
}

func (m *Mesh) hasNeighbor(v, w int32) bool {
	lst := m.Neighbors(v)
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= w })
	return i < len(lst) && lst[i] == w
}

// Stats summarizes a mesh. The JSON field names are part of the lamsd HTTP
// API (mesh summaries in upload/list/get responses).
type Stats struct {
	Verts     int     `json:"verts"`
	Tris      int     `json:"tris"`
	Interior  int     `json:"interior"`
	Boundary  int     `json:"boundary"`
	MinDegree int     `json:"min_degree"`
	MaxDegree int     `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`
}

// Summary computes mesh statistics.
func (m *Mesh) Summary() Stats {
	s := Stats{Verts: m.NumVerts(), Tris: m.NumTris(), Interior: len(m.InteriorVerts)}
	s.Boundary = s.Verts - s.Interior
	s.MinDegree = 1 << 30
	for v := int32(0); v < int32(s.Verts); v++ {
		d := m.Degree(v)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		s.AvgDegree += float64(d)
	}
	if s.Verts > 0 {
		s.AvgDegree /= float64(s.Verts)
	} else {
		s.MinDegree = 0
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("verts=%d tris=%d interior=%d boundary=%d degree[min=%d avg=%.2f max=%d]",
		s.Verts, s.Tris, s.Interior, s.Boundary, s.MinDegree, s.AvgDegree, s.MaxDegree)
}
