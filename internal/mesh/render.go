package mesh

import (
	"strings"

	"lams/internal/geom"
)

// Render rasterizes the mesh onto a character grid — the terminal analogue
// of the paper's Figure 7, which shows "coarser but representative versions"
// of the nine meshes. Cells covered by any triangle are filled; boundary
// cells (adjacent to an uncovered cell) are drawn darker.
func (m *Mesh) Render(width, height int) string {
	if width < 2 || height < 2 || m.NumTris() == 0 {
		return ""
	}
	b := geom.BoundsOf(m.Coords)
	w, h := b.Width(), b.Height()
	if w == 0 || h == 0 {
		return ""
	}
	// Preserve aspect ratio in character cells (terminal cells are ~2x
	// taller than wide).
	covered := make([][]bool, height)
	for i := range covered {
		covered[i] = make([]bool, width)
	}

	toCell := func(p geom.Point) (int, int) {
		cx := int((p.X - b.Min.X) / w * float64(width-1))
		cy := int((p.Y - b.Min.Y) / h * float64(height-1))
		return cx, cy
	}
	// Rasterize each triangle by sampling its bounding box at cell centers.
	for _, tv := range m.Tris {
		p0, p1, p2 := m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]]
		x0, y0 := toCell(p0)
		x1, y1 := toCell(p1)
		x2, y2 := toCell(p2)
		minX, maxX := min3i(x0, x1, x2), max3i(x0, x1, x2)
		minY, maxY := min3i(y0, y1, y2), max3i(y0, y1, y2)
		for cy := minY; cy <= maxY; cy++ {
			for cx := minX; cx <= maxX; cx++ {
				// Cell center in mesh coordinates.
				p := geom.Point{
					X: b.Min.X + (float64(cx)+0.5)/float64(width)*w,
					Y: b.Min.Y + (float64(cy)+0.5)/float64(height)*h,
				}
				if inTriangle(p, p0, p1, p2) {
					covered[cy][cx] = true
				}
			}
		}
		// Vertices always mark their cells so thin features survive.
		covered[y0][x0] = true
		covered[y1][x1] = true
		covered[y2][x2] = true
	}

	var sb strings.Builder
	for cy := height - 1; cy >= 0; cy-- { // y grows upward
		for cx := 0; cx < width; cx++ {
			switch {
			case !covered[cy][cx]:
				sb.WriteByte(' ')
			case isEdgeCell(covered, cx, cy):
				sb.WriteByte('#')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func inTriangle(p, a, b, c geom.Point) bool {
	d1 := geom.Orient2DValue(a, b, p)
	d2 := geom.Orient2DValue(b, c, p)
	d3 := geom.Orient2DValue(c, a, p)
	neg := d1 < 0 || d2 < 0 || d3 < 0
	pos := d1 > 0 || d2 > 0 || d3 > 0
	return !(neg && pos)
}

func isEdgeCell(covered [][]bool, x, y int) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			ny, nx := y+dy, x+dx
			if ny < 0 || ny >= len(covered) || nx < 0 || nx >= len(covered[0]) {
				return true
			}
			if !covered[ny][nx] {
				return true
			}
		}
	}
	return false
}

func min3i(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max3i(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
