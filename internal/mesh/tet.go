package mesh

import (
	"fmt"
	"sort"

	"lams/internal/geom"
)

// TetMesh is a 3D tetrahedral mesh — the volume counterpart of Mesh. The
// storage layout follows the same contract: vertices are identified by their
// position in the storage arrays, all per-vertex slices are indexed the same
// way, and Renumber applies an ordering by permuting that storage order. The
// CSR adjacency and interior/boundary partition have the same shape as the
// 2D mesh's, which is what lets the ordering and smoothing layers treat both
// meshes through one adjacency abstraction.
type TetMesh struct {
	// Coords holds the vertex positions in storage order.
	Coords []geom.Point3
	// Tets holds the tetrahedra as positively-oriented quadruples of vertex
	// indices (geom.Orient3D(a, b, c, d) counterclockwise).
	Tets [][4]int32
	// AdjStart/AdjList is the CSR vertex-to-vertex adjacency:
	// the neighbors of v are AdjList[AdjStart[v]:AdjStart[v+1]].
	AdjStart []int32
	AdjList  []int32
	// IsBoundary marks vertices incident to a boundary face (a triangular
	// face used by exactly one tetrahedron).
	IsBoundary []bool
	// InteriorVerts lists the non-boundary vertices in storage order; these
	// are the vertices Laplacian smoothing moves.
	InteriorVerts []int32
	// TetStart/TetList is the CSR vertex-to-tetrahedron incidence:
	// the tets attached to v are TetList[TetStart[v]:TetStart[v+1]].
	TetStart []int32
	TetList  []int32
}

// NumVerts returns the number of vertices.
func (m *TetMesh) NumVerts() int { return len(m.Coords) }

// NumTets returns the number of tetrahedra.
func (m *TetMesh) NumTets() int { return len(m.Tets) }

// Neighbors returns the adjacency list of vertex v as a shared sub-slice;
// callers must not modify it.
func (m *TetMesh) Neighbors(v int32) []int32 {
	return m.AdjList[m.AdjStart[v]:m.AdjStart[v+1]]
}

// Degree returns the number of neighbors of vertex v.
func (m *TetMesh) Degree(v int32) int {
	return int(m.AdjStart[v+1] - m.AdjStart[v])
}

// VertTets returns the tetrahedra incident to vertex v as a shared
// sub-slice; callers must not modify it.
func (m *TetMesh) VertTets(v int32) []int32 {
	return m.TetList[m.TetStart[v]:m.TetStart[v+1]]
}

// Interior returns the interior (non-boundary) vertices in storage order,
// implementing the ordering layer's adjacency view.
func (m *TetMesh) Interior() []int32 { return m.InteriorVerts }

// OnBoundary reports whether vertex v lies on the mesh boundary,
// implementing the ordering layer's adjacency view.
func (m *TetMesh) OnBoundary(v int32) bool { return m.IsBoundary[v] }

// HilbertKeys returns the 3D Hilbert curve key of every vertex on a
// 2^bits-per-axis grid over the mesh bounds, implementing the ordering
// layer's spatial view.
func (m *TetMesh) HilbertKeys(bits uint) []uint64 {
	return geom.HilbertSortKeys3(m.Coords, bits)
}

// MortonKeys returns the Z-order curve key of every vertex, implementing the
// ordering layer's spatial view.
func (m *TetMesh) MortonKeys(bits uint) []uint64 {
	return geom.MortonSortKeys3(m.Coords, bits)
}

// NewTet assembles a tetrahedral mesh from vertices and tets: it builds the
// CSR adjacency and vertex-tet incidence, classifies boundary vertices via
// faces used by exactly one tet, and validates index ranges.
func NewTet(coords []geom.Point3, tets [][4]int32) (*TetMesh, error) {
	m := &TetMesh{Coords: coords, Tets: tets}
	if err := m.build(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *TetMesh) build() error {
	nv := int32(len(m.Coords))
	for ti, tv := range m.Tets {
		for k := 0; k < 4; k++ {
			if tv[k] < 0 || tv[k] >= nv {
				return fmt.Errorf("mesh: tet %d vertex index %d out of range [0,%d)", ti, tv[k], nv)
			}
			for j := k + 1; j < 4; j++ {
				if tv[k] == tv[j] {
					return fmt.Errorf("mesh: tet %d has repeated vertices %v", ti, tv)
				}
			}
		}
	}

	// Each vertex of a tet gains three directed edges (to the other three
	// vertices); build directed adjacency then sort and dedupe per vertex,
	// exactly as the 2D build does.
	deg := make([]int32, nv+1)
	for _, tv := range m.Tets {
		for k := 0; k < 4; k++ {
			deg[tv[k]+1] += 3
		}
	}
	start := make([]int32, nv+1)
	for i := int32(0); i < nv; i++ {
		start[i+1] = start[i] + deg[i+1]
	}
	fill := make([]int32, nv)
	adj := make([]int32, start[nv])
	for _, tv := range m.Tets {
		for k := 0; k < 4; k++ {
			v := tv[k]
			adj[start[v]+fill[v]] = tv[(k+1)%4]
			adj[start[v]+fill[v]+1] = tv[(k+2)%4]
			adj[start[v]+fill[v]+2] = tv[(k+3)%4]
			fill[v] += 3
		}
	}

	m.AdjStart, m.AdjList = sortDedupeAdj(nv, start, fill, adj)

	// Vertex -> tet incidence.
	tdeg := make([]int32, nv+1)
	for _, tv := range m.Tets {
		for k := 0; k < 4; k++ {
			tdeg[tv[k]+1]++
		}
	}
	m.TetStart = make([]int32, nv+1)
	for i := int32(0); i < nv; i++ {
		m.TetStart[i+1] = m.TetStart[i] + tdeg[i+1]
	}
	m.TetList = make([]int32, m.TetStart[nv])
	tfill := make([]int32, nv)
	for ti, tv := range m.Tets {
		for k := 0; k < 4; k++ {
			v := tv[k]
			m.TetList[m.TetStart[v]+tfill[v]] = int32(ti)
			tfill[v]++
		}
	}

	m.classifyBoundary()
	return nil
}

// tetFaces lists the four triangular faces of a tet by local vertex index.
var tetFaces = [4][3]int{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}}

// classifyBoundary finds triangular faces used by exactly one tet and marks
// their corners as boundary vertices, then collects the interior vertex
// list — the 3D analogue of the 2D edge-count classification.
func (m *TetMesh) classifyBoundary() {
	type face struct{ a, b, c int32 }
	norm := func(a, b, c int32) face {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return face{a, b, c}
	}
	count := make(map[face]int8, 4*len(m.Tets))
	for _, tv := range m.Tets {
		for _, f := range tetFaces {
			count[norm(tv[f[0]], tv[f[1]], tv[f[2]])]++
		}
	}
	m.IsBoundary = make([]bool, len(m.Coords))
	for f, c := range count {
		if c == 1 {
			m.IsBoundary[f.a] = true
			m.IsBoundary[f.b] = true
			m.IsBoundary[f.c] = true
		}
	}
	// Isolated vertices keep the invariant that every vertex is boundary or
	// interior.
	for v := range m.IsBoundary {
		if m.Degree(int32(v)) == 0 {
			m.IsBoundary[v] = true
		}
	}
	m.InteriorVerts = m.InteriorVerts[:0]
	for v := int32(0); v < int32(len(m.Coords)); v++ {
		if !m.IsBoundary[v] {
			m.InteriorVerts = append(m.InteriorVerts, v)
		}
	}
}

// Renumber returns a new mesh whose vertex k is the receiver's vertex
// newToOld[k], exactly as Mesh.Renumber relabels the 2D mesh. The receiver
// is unchanged.
func (m *TetMesh) Renumber(newToOld []int32) (*TetMesh, error) {
	nv := len(m.Coords)
	if len(newToOld) != nv {
		return nil, fmt.Errorf("mesh: permutation length %d != vertex count %d", len(newToOld), nv)
	}
	oldToNew := make([]int32, nv)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for newIdx, oldIdx := range newToOld {
		if oldIdx < 0 || int(oldIdx) >= nv {
			return nil, fmt.Errorf("mesh: permutation entry %d out of range", oldIdx)
		}
		if oldToNew[oldIdx] != -1 {
			return nil, fmt.Errorf("mesh: permutation repeats vertex %d", oldIdx)
		}
		oldToNew[oldIdx] = int32(newIdx)
	}

	coords := make([]geom.Point3, nv)
	for newIdx, oldIdx := range newToOld {
		coords[newIdx] = m.Coords[oldIdx]
	}
	tets := make([][4]int32, len(m.Tets))
	for i, tv := range m.Tets {
		tets[i] = [4]int32{oldToNew[tv[0]], oldToNew[tv[1]], oldToNew[tv[2]], oldToNew[tv[3]]}
	}
	return NewTet(coords, tets)
}

// Clone returns a deep copy of the mesh.
func (m *TetMesh) Clone() *TetMesh {
	return &TetMesh{
		Coords:        append([]geom.Point3(nil), m.Coords...),
		Tets:          append([][4]int32(nil), m.Tets...),
		AdjStart:      append([]int32(nil), m.AdjStart...),
		AdjList:       append([]int32(nil), m.AdjList...),
		IsBoundary:    append([]bool(nil), m.IsBoundary...),
		InteriorVerts: append([]int32(nil), m.InteriorVerts...),
		TetStart:      append([]int32(nil), m.TetStart...),
		TetList:       append([]int32(nil), m.TetList...),
	}
}

// Validate checks the structural invariants: CSR shape, symmetric adjacency,
// tet indices in range, every tet edge present in the adjacency, and the
// boundary/interior partition.
func (m *TetMesh) Validate() error {
	nv := int32(len(m.Coords))
	if len(m.AdjStart) != int(nv)+1 {
		return fmt.Errorf("mesh: AdjStart length %d != nv+1", len(m.AdjStart))
	}
	for v := int32(0); v < nv; v++ {
		if m.AdjStart[v] > m.AdjStart[v+1] {
			return fmt.Errorf("mesh: AdjStart not monotone at %d", v)
		}
		prev := int32(-1)
		for _, w := range m.Neighbors(v) {
			if w < 0 || w >= nv {
				return fmt.Errorf("mesh: neighbor %d of %d out of range", w, v)
			}
			if w == v {
				return fmt.Errorf("mesh: self loop at %d", v)
			}
			if w <= prev {
				return fmt.Errorf("mesh: adjacency of %d not sorted/unique", v)
			}
			prev = w
			if !m.hasNeighbor(w, v) {
				return fmt.Errorf("mesh: adjacency not symmetric: %d->%d", v, w)
			}
		}
	}
	for ti, tv := range m.Tets {
		for k := 0; k < 4; k++ {
			for j := k + 1; j < 4; j++ {
				if !m.hasNeighbor(tv[k], tv[j]) {
					return fmt.Errorf("mesh: tet %d edge (%d,%d) missing from adjacency", ti, tv[k], tv[j])
				}
			}
		}
	}
	nInterior := 0
	for v := int32(0); v < nv; v++ {
		if !m.IsBoundary[v] {
			nInterior++
		}
	}
	if nInterior != len(m.InteriorVerts) {
		return fmt.Errorf("mesh: interior list length %d != %d non-boundary vertices", len(m.InteriorVerts), nInterior)
	}
	for i := 1; i < len(m.InteriorVerts); i++ {
		if m.InteriorVerts[i-1] >= m.InteriorVerts[i] {
			return fmt.Errorf("mesh: interior list not in storage order at %d", i)
		}
	}
	return nil
}

func (m *TetMesh) hasNeighbor(v, w int32) bool {
	lst := m.Neighbors(v)
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= w })
	return i < len(lst) && lst[i] == w
}

// TetStats summarizes a tetrahedral mesh. The JSON field names are part of
// the lamsd HTTP API (mesh summaries for dim=3 meshes).
type TetStats struct {
	Verts     int     `json:"verts"`
	Tets      int     `json:"tets"`
	Interior  int     `json:"interior"`
	Boundary  int     `json:"boundary"`
	MinDegree int     `json:"min_degree"`
	MaxDegree int     `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`
}

// Summary computes mesh statistics.
func (m *TetMesh) Summary() TetStats {
	s := TetStats{Verts: m.NumVerts(), Tets: m.NumTets(), Interior: len(m.InteriorVerts)}
	s.Boundary = s.Verts - s.Interior
	s.MinDegree = 1 << 30
	for v := int32(0); v < int32(s.Verts); v++ {
		d := m.Degree(v)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		s.AvgDegree += float64(d)
	}
	if s.Verts > 0 {
		s.AvgDegree /= float64(s.Verts)
	} else {
		s.MinDegree = 0
	}
	return s
}

func (s TetStats) String() string {
	return fmt.Sprintf("verts=%d tets=%d interior=%d boundary=%d degree[min=%d avg=%.2f max=%d]",
		s.Verts, s.Tets, s.Interior, s.Boundary, s.MinDegree, s.AvgDegree, s.MaxDegree)
}
