package mesh

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"

	"lams/internal/geom"
)

// Tetrahedral-mesh I/O in TetGen's .node/.ele text format — the dim=3
// sibling of the Triangle codec in io.go, built on the same hardened
// streaming scanner (header count caps before allocation, duplicate-index
// and range checks, finite-coordinate validation).

// WriteNode writes the vertex section in TetGen's .node text format
// (1-based indices, dimension 3, boundary markers).
func (m *TetMesh) WriteNode(node io.Writer) error {
	bw := bufio.NewWriter(node)
	fmt.Fprintf(bw, "%d 3 0 1\n", m.NumVerts())
	for i, p := range m.Coords {
		marker := 0
		if m.IsBoundary[i] {
			marker = 1
		}
		fmt.Fprintf(bw, "%d %.17g %.17g %.17g %d\n", i+1, p.X, p.Y, p.Z, marker)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mesh: writing nodes: %w", err)
	}
	return nil
}

// WriteEle writes the tetrahedron section in TetGen's .ele text format
// (4 nodes per element).
func (m *TetMesh) WriteEle(ele io.Writer) error {
	be := bufio.NewWriter(ele)
	fmt.Fprintf(be, "%d 4 0\n", m.NumTets())
	for i, tv := range m.Tets {
		fmt.Fprintf(be, "%d %d %d %d %d\n", i+1, tv[0]+1, tv[1]+1, tv[2]+1, tv[3]+1)
	}
	if err := be.Flush(); err != nil {
		return fmt.Errorf("mesh: writing elements: %w", err)
	}
	return nil
}

// WriteNodeEle writes the mesh in TetGen's .node/.ele text format.
func (m *TetMesh) WriteNodeEle(node, ele io.Writer) error {
	if err := m.WriteNode(node); err != nil {
		return err
	}
	return m.WriteEle(ele)
}

// ReadNode3 parses a TetGen .node stream (dimension 3) into vertex
// coordinates, with the same strictness as the 2D ReadNode: plausible header
// counts, every vertex index exactly once and in range, finite coordinates,
// errors naming the offending line. maxVerts (when > 0) rejects larger
// headers with ErrMeshTooLarge before anything count-sized is allocated.
func ReadNode3(node io.Reader, maxVerts int) ([]geom.Point3, error) {
	ns := newScanner(node)
	fields, err := nextFields(ns)
	if err != nil {
		return nil, fmt.Errorf("mesh: .node header: %w", err)
	}
	if len(fields) < 2 {
		return nil, fmt.Errorf("mesh: .node header: want >=2 fields (#verts dim), got %d", len(fields))
	}
	nv, err := parseCount(fields[0], "vertex count", maxVerts)
	if err != nil {
		return nil, fmt.Errorf("mesh: .node header: %w", err)
	}
	dim, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("mesh: .node header dimension %q: %w", fields[1], err)
	}
	if dim != 3 {
		return nil, fmt.Errorf("mesh: ReadNode3 wants dim=3 .node files, got dim=%d", dim)
	}
	if nv == 0 {
		return nil, fmt.Errorf("mesh: .node header declares zero vertices")
	}

	coords := make([]geom.Point3, nv)
	seen := make([]bool, nv)
	for i := 0; i < nv; i++ {
		f, err := nextFields(ns)
		if err != nil {
			return nil, fmt.Errorf("mesh: .node truncated after %d of %d vertices: %w", i, nv, err)
		}
		if len(f) < 4 {
			return nil, fmt.Errorf("mesh: .node line %d: want >=4 fields (index x y z), got %d", i+2, len(f))
		}
		idx, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mesh: .node line %d index %q: %w", i+2, f[0], err)
		}
		if idx < 1 || idx > nv {
			return nil, fmt.Errorf("mesh: .node line %d: vertex index %d out of range [1,%d]", i+2, idx, nv)
		}
		if seen[idx-1] {
			return nil, fmt.Errorf("mesh: .node line %d: duplicate vertex index %d", i+2, idx)
		}
		seen[idx-1] = true
		var xyz [3]float64
		for k := 0; k < 3; k++ {
			v, err := parseCoord(f[k+1])
			if err != nil {
				return nil, fmt.Errorf("mesh: .node line %d coordinate %d: %w", i+2, k+1, err)
			}
			xyz[k] = v
		}
		coords[idx-1] = geom.Point3{X: xyz[0], Y: xyz[1], Z: xyz[2]}
	}
	return coords, nil
}

// ReadTetEle parses a TetGen .ele stream into tetrahedra over numVerts
// vertices (0-based output indices), hardened exactly like the 2D ReadEle.
// maxTets (when > 0) rejects larger headers with ErrMeshTooLarge before
// allocation.
func ReadTetEle(ele io.Reader, numVerts, maxTets int) ([][4]int32, error) {
	es := newScanner(ele)
	fields, err := nextFields(es)
	if err != nil {
		return nil, fmt.Errorf("mesh: .ele header: %w", err)
	}
	nt, err := parseCount(fields[0], "tet count", maxTets)
	if err != nil {
		return nil, fmt.Errorf("mesh: .ele header: %w", err)
	}
	if len(fields) > 1 {
		if per, err := strconv.Atoi(fields[1]); err == nil && per != 4 {
			return nil, fmt.Errorf("mesh: only 4-node elements supported, got %d", per)
		}
	}
	if nt == 0 {
		return nil, fmt.Errorf("mesh: .ele header declares zero tets")
	}

	tets := make([][4]int32, nt)
	seen := make([]bool, nt)
	for i := 0; i < nt; i++ {
		f, err := nextFields(es)
		if err != nil {
			return nil, fmt.Errorf("mesh: .ele truncated after %d of %d tets: %w", i, nt, err)
		}
		if len(f) < 5 {
			return nil, fmt.Errorf("mesh: .ele line %d: want >=5 fields (index v1 v2 v3 v4), got %d", i+2, len(f))
		}
		idx, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mesh: .ele line %d index %q: %w", i+2, f[0], err)
		}
		if idx < 1 || idx > nt {
			return nil, fmt.Errorf("mesh: .ele line %d: tet index %d out of range [1,%d]", i+2, idx, nt)
		}
		if seen[idx-1] {
			return nil, fmt.Errorf("mesh: .ele line %d: duplicate tet index %d", i+2, idx)
		}
		seen[idx-1] = true
		var tv [4]int32
		for k := 0; k < 4; k++ {
			v, err := strconv.Atoi(f[k+1])
			if err != nil {
				return nil, fmt.Errorf("mesh: .ele line %d vertex %d %q: %w", i+2, k+1, f[k+1], err)
			}
			if v < 1 || v > numVerts {
				return nil, fmt.Errorf("mesh: .ele line %d: vertex index %d out of range [1,%d]", i+2, v, numVerts)
			}
			tv[k] = int32(v - 1)
		}
		tets[idx-1] = tv
	}
	return tets, nil
}

// ReadTetNodeEle parses a tetrahedral mesh from TetGen .node/.ele streams.
// The node stream is consumed fully before the ele stream is touched, so
// sequential sources work without buffering.
func ReadTetNodeEle(node, ele io.Reader) (*TetMesh, error) {
	coords, err := ReadNode3(node, 0)
	if err != nil {
		return nil, err
	}
	tets, err := ReadTetEle(ele, len(coords), 0)
	if err != nil {
		return nil, err
	}
	return NewTet(coords, tets)
}

// SaveFiles writes base.node and base.ele.
func (m *TetMesh) SaveFiles(base string) error {
	nf, err := os.Create(base + ".node")
	if err != nil {
		return err
	}
	defer nf.Close()
	ef, err := os.Create(base + ".ele")
	if err != nil {
		return err
	}
	defer ef.Close()
	return m.WriteNodeEle(nf, ef)
}

// LoadTetFiles reads base.node and base.ele.
func LoadTetFiles(base string) (*TetMesh, error) {
	nf, err := os.Open(base + ".node")
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(base + ".ele")
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return ReadTetNodeEle(nf, ef)
}
