package mesh

import "testing"

// BenchmarkMeshBuild measures cold-start mesh assembly — CSR adjacency
// (per-vertex sort + dedupe), vertex→element incidence, and boundary
// classification — in both dimensions. This is the "build" column of the
// lamsbench setup report; the per-vertex sort/dedupe pass runs
// chunk-parallel with deterministic output.
func BenchmarkMeshBuild(b *testing.B) {
	b.Run("dim=2", func(b *testing.B) {
		m, err := Generate("carabiner", 20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := New(m.Coords, m.Tris); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dim=3", func(b *testing.B) {
		m, err := GenerateTetCube(14, 14, 14, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := NewTet(m.Coords, m.Tets); err != nil {
				b.Fatal(err)
			}
		}
	})
}
