package mesh

import (
	"sort"

	"lams/internal/parallel"
)

// sortDedupeAdj turns the directed-edge scatter (per-vertex segments of adj,
// segment v spanning start[v]..start[v]+fill[v]) into compact CSR adjacency:
// each vertex's neighbor list sorted ascending with duplicates removed. Both
// mesh builds (triangles and tets) share it.
//
// The pass is embarrassingly parallel over vertices — each vertex's sort and
// dedupe touches only its own segment — so it runs through parallel.Setup in
// two chunk-parallel passes separated by a serial prefix sum: pass one sorts
// and dedupes each segment in place (recording the unique count), pass two
// copies the compacted prefixes into the final list. Output is
// position-determined, hence deterministic and identical to the serial
// build at any worker count.
func sortDedupeAdj(nv int32, start, fill, adj []int32) (adjStart, adjList []int32) {
	ucount := make([]int32, nv)
	parallel.Setup(int(nv), func(c parallel.Chunk) {
		for v := int32(c.Lo); v < int32(c.Hi); v++ {
			lst := adj[start[v] : start[v]+fill[v]]
			// Degrees are small (~6 in 2D, ~14 in 3D): insertion sort beats
			// sort.Slice and allocates nothing. Fall back to sort.Slice for
			// the occasional high-degree vertex.
			if len(lst) <= 32 {
				for i := 1; i < len(lst); i++ {
					x := lst[i]
					j := i - 1
					for j >= 0 && x < lst[j] {
						lst[j+1] = lst[j]
						j--
					}
					lst[j+1] = x
				}
			} else {
				sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
			}
			// Dedupe in place at the head of the segment.
			n := int32(0)
			var prev int32 = -1
			for _, w := range lst {
				if w != prev {
					lst[n] = w
					n++
					prev = w
				}
			}
			ucount[v] = n
		}
	})

	adjStart = make([]int32, nv+1)
	for v := int32(0); v < nv; v++ {
		adjStart[v+1] = adjStart[v] + ucount[v]
	}
	adjList = make([]int32, adjStart[nv])
	parallel.Setup(int(nv), func(c parallel.Chunk) {
		for v := int32(c.Lo); v < int32(c.Hi); v++ {
			copy(adjList[adjStart[v]:adjStart[v+1]], adj[start[v]:start[v]+ucount[v]])
		}
	})
	return adjStart, adjList
}
