package mesh

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	m, err := Generate("carabiner", 2000)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Render(48, 20)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("render has %d lines, want 20", len(lines))
	}
	for i, l := range lines {
		if len(l) != 48 {
			t.Fatalf("line %d width %d, want 48", i, len(l))
		}
	}
	filled := strings.Count(s, ".") + strings.Count(s, "#")
	if filled == 0 {
		t.Fatal("render is empty")
	}
	// The carabiner is a ring: its bounding-box center must be empty (the
	// hole) while plenty of cells are filled.
	mid := lines[10]
	if mid[24] != ' ' {
		t.Errorf("carabiner hole not visible at center: %q", string(mid[24]))
	}
	if !strings.Contains(s, "#") {
		t.Error("no boundary cells drawn")
	}
}

func TestRenderDegenerate(t *testing.T) {
	m := twoTriangleMesh(t)
	if got := m.Render(1, 1); got != "" {
		t.Error("degenerate size should render empty")
	}
	if got := m.Render(10, 5); got == "" {
		t.Error("valid render empty")
	}
}
