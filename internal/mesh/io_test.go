package mesh

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestNodeEleRoundTrip(t *testing.T) {
	m, err := Generate("dialog", 1000)
	if err != nil {
		t.Fatal(err)
	}
	var node, ele bytes.Buffer
	if err := m.WriteNodeEle(&node, &ele); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadNodeEle(&node, &ele)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVerts() != m.NumVerts() || m2.NumTris() != m.NumTris() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			m2.NumVerts(), m2.NumTris(), m.NumVerts(), m.NumTris())
	}
	for i := range m.Coords {
		if m.Coords[i] != m2.Coords[i] {
			t.Fatalf("vertex %d changed: %v vs %v", i, m.Coords[i], m2.Coords[i])
		}
	}
	for i := range m.Tris {
		if m.Tris[i] != m2.Tris[i] {
			t.Fatalf("triangle %d changed", i)
		}
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadNodeEleComments(t *testing.T) {
	node := `# a comment
3 2 0 1

1 0.0 0.0 1
2 1.0 0.0 1
# another comment
3 0.0 1.0 1
`
	ele := `1 3 0
1 1 2 3
`
	m, err := ReadNodeEle(strings.NewReader(node), strings.NewReader(ele))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVerts() != 3 || m.NumTris() != 1 {
		t.Fatalf("counts %d/%d", m.NumVerts(), m.NumTris())
	}
}

func TestReadNodeEleErrors(t *testing.T) {
	cases := []struct{ node, ele, name string }{
		{"", "", "empty"},
		{"3 3 0 1\n1 0 0 0\n2 1 0 0\n3 0 1 0\n", "1 3 0\n1 1 2 3\n", "bad dim"},
		{"3 2 0 1\n1 0 0 0\n", "1 3 0\n1 1 2 3\n", "truncated nodes"},
		{"3 2 0 1\n1 0 0 0\n2 1 0 0\n9 0 1 0\n", "1 3 0\n1 1 2 3\n", "index out of range"},
		{"3 2 0 1\n1 0 0 0\n2 1 0 0\n3 0 1 0\n", "1 4 0\n1 1 2 3 4\n", "quad elements"},
	}
	for _, c := range cases {
		if _, err := ReadNodeEle(strings.NewReader(c.node), strings.NewReader(c.ele)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSaveLoadFiles(t *testing.T) {
	m, err := Generate("crake", 600)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "crake")
	if err := m.SaveFiles(base); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVerts() != m.NumVerts() {
		t.Error("vertex count changed through files")
	}
	if _, err := LoadFiles(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing files should error")
	}
}
