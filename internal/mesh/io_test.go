package mesh

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestNodeEleRoundTrip(t *testing.T) {
	m, err := Generate("dialog", 1000)
	if err != nil {
		t.Fatal(err)
	}
	var node, ele bytes.Buffer
	if err := m.WriteNodeEle(&node, &ele); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadNodeEle(&node, &ele)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVerts() != m.NumVerts() || m2.NumTris() != m.NumTris() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			m2.NumVerts(), m2.NumTris(), m.NumVerts(), m.NumTris())
	}
	for i := range m.Coords {
		if m.Coords[i] != m2.Coords[i] {
			t.Fatalf("vertex %d changed: %v vs %v", i, m.Coords[i], m2.Coords[i])
		}
	}
	for i := range m.Tris {
		if m.Tris[i] != m2.Tris[i] {
			t.Fatalf("triangle %d changed", i)
		}
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadNodeEleComments(t *testing.T) {
	node := `# a comment
3 2 0 1

1 0.0 0.0 1
2 1.0 0.0 1
# another comment
3 0.0 1.0 1
`
	ele := `1 3 0
1 1 2 3
`
	m, err := ReadNodeEle(strings.NewReader(node), strings.NewReader(ele))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVerts() != 3 || m.NumTris() != 1 {
		t.Fatalf("counts %d/%d", m.NumVerts(), m.NumTris())
	}
}

func TestReadNodeEleErrors(t *testing.T) {
	cases := []struct{ node, ele, name string }{
		{"", "", "empty"},
		{"3 3 0 1\n1 0 0 0\n2 1 0 0\n3 0 1 0\n", "1 3 0\n1 1 2 3\n", "bad dim"},
		{"3 2 0 1\n1 0 0 0\n", "1 3 0\n1 1 2 3\n", "truncated nodes"},
		{"3 2 0 1\n1 0 0 0\n2 1 0 0\n9 0 1 0\n", "1 3 0\n1 1 2 3\n", "index out of range"},
		{"3 2 0 1\n1 0 0 0\n2 1 0 0\n3 0 1 0\n", "1 4 0\n1 1 2 3 4\n", "quad elements"},
	}
	for _, c := range cases {
		if _, err := ReadNodeEle(strings.NewReader(c.node), strings.NewReader(c.ele)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestReadNodeEleMalformed exercises the hardened codec on hostile input:
// every case must come back as a descriptive error containing the fragment,
// never a panic, an OOM-sized allocation, or a silently mis-parsed mesh.
func TestReadNodeEleMalformed(t *testing.T) {
	goodNode := "3 2 0 1\n1 0 0 1\n2 1 0 1\n3 0 1 1\n"
	cases := []struct{ name, node, ele, frag string }{
		{"negative vertex count", "-1 2 0 1\n", "1 3 0\n1 1 2 3\n", "negative"},
		{"implausible vertex count", "999999999999 2 0 1\n", "1 3 0\n1 1 2 3\n", "limit"},
		{"zero vertices", "0 2 0 1\n", "1 3 0\n1 1 2 3\n", "zero vertices"},
		{"garbage header", "three 2 0 1\n", "1 3 0\n1 1 2 3\n", "vertex count"},
		{"duplicate node index", "3 2 0 1\n1 0 0 1\n1 1 0 1\n3 0 1 1\n", "1 3 0\n1 1 2 3\n", "duplicate vertex index"},
		{"non-finite coordinate", "3 2 0 1\n1 NaN 0 1\n2 1 0 1\n3 0 1 1\n", "1 3 0\n1 1 2 3\n", "not finite"},
		{"truncated nodes", "3 2 0 1\n1 0 0 1\n", "1 3 0\n1 1 2 3\n", "truncated after 1 of 3"},
		{"truncated elements", goodNode, "2 3 0\n1 1 2 3\n", "truncated after 1 of 2"},
		{"negative triangle count", goodNode, "-5 3 0\n", "negative"},
		{"zero triangles", goodNode, "0 3 0\n", "zero triangles"},
		{"duplicate triangle id", "4 2 0 1\n1 0 0 1\n2 1 0 1\n3 0 1 1\n4 1 1 0\n", "2 3 0\n1 1 2 3\n1 1 2 4\n", "duplicate triangle"},
		{"vertex ref out of range", goodNode, "1 3 0\n1 1 2 7\n", "out of range [1,3]"},
		{"vertex ref zero", goodNode, "1 3 0\n1 0 2 3\n", "out of range [1,3]"},
		{"triangle id out of range", goodNode, "1 3 0\n9 1 2 3\n", "out of range [1,1]"},
		{"repeated vertices in triangle", goodNode, "1 3 0\n1 1 1 2\n", "repeated vertices"},
	}
	for _, c := range cases {
		_, err := ReadNodeEle(strings.NewReader(c.node), strings.NewReader(c.ele))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

// TestReadEleOrderIndependence checks that .ele lines keyed by explicit
// triangle ids land in id order even when the file lists them shuffled.
func TestReadEleOrderIndependence(t *testing.T) {
	tris, err := ReadEle(strings.NewReader("2 3 0\n2 2 3 4\n1 1 2 3\n"), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tris[0] != [3]int32{0, 1, 2} || tris[1] != [3]int32{1, 2, 3} {
		t.Fatalf("shuffled ids mis-assembled: %v", tris)
	}
}

// TestReadNodeEleCallerLimits checks the pre-allocation size caps: a header
// declaring more entities than the caller allows fails with ErrMeshTooLarge
// before any count-sized slice is allocated.
func TestReadNodeEleCallerLimits(t *testing.T) {
	_, err := ReadNode(strings.NewReader("1000000 2 0 1\n"), 100)
	if !errors.Is(err, ErrMeshTooLarge) {
		t.Errorf("ReadNode over caller limit: err = %v, want ErrMeshTooLarge", err)
	}
	_, err = ReadEle(strings.NewReader("1000000 3 0\n"), 100, 400)
	if !errors.Is(err, ErrMeshTooLarge) {
		t.Errorf("ReadEle over caller limit: err = %v, want ErrMeshTooLarge", err)
	}
	// Within the limit, parsing proceeds to the real (truncation) error.
	_, err = ReadNode(strings.NewReader("50 2 0 1\n"), 100)
	if err == nil || errors.Is(err, ErrMeshTooLarge) {
		t.Errorf("ReadNode under limit: err = %v, want a truncation error", err)
	}
}

func TestSaveLoadFiles(t *testing.T) {
	m, err := Generate("crake", 600)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "crake")
	if err := m.SaveFiles(base); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVerts() != m.NumVerts() {
		t.Error("vertex count changed through files")
	}
	if _, err := LoadFiles(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing files should error")
	}
}
