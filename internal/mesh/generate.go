package mesh

import (
	"fmt"

	"lams/internal/delaunay"
	"lams/internal/domains"
)

// Generate builds the named test mesh at roughly targetVerts vertices:
// sample the domain (boundary first, then jittered-grid interior — the ORI
// generation order), Delaunay-triangulate, and carve triangles outside the
// region. This is the Triangle [15] substitute pipeline.
func Generate(name string, targetVerts int) (*Mesh, error) {
	d, err := domains.ByName(name)
	if err != nil {
		return nil, err
	}
	pts := d.Points(targetVerts)
	if len(pts) < 3 {
		return nil, fmt.Errorf("mesh: domain %q produced only %d points", name, len(pts))
	}
	t, err := delaunay.Triangulate(pts)
	if err != nil {
		return nil, fmt.Errorf("mesh: triangulating %q: %w", name, err)
	}
	m, err := FromTriangulation(t, d.Region.Contains)
	if err != nil {
		return nil, fmt.Errorf("mesh: carving %q: %w", name, err)
	}
	return m, nil
}

// GenerateAll builds all nine Table 1 meshes at the given target size.
func GenerateAll(targetVerts int) (map[string]*Mesh, error) {
	out := make(map[string]*Mesh, len(domains.Table1))
	for _, name := range domains.Names() {
		m, err := Generate(name, targetVerts)
		if err != nil {
			return nil, err
		}
		out[name] = m
	}
	return out, nil
}
