package mesh

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"lams/internal/geom"
)

// singleTet is the smallest valid tet mesh: four vertices, one tetrahedron,
// every vertex on the boundary.
func singleTet(t *testing.T) *TetMesh {
	t.Helper()
	coords := []geom.Point3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1}}
	m, err := NewTet(coords, [][4]int32{{0, 2, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSingleTetStructure(t *testing.T) {
	m := singleTet(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumVerts() != 4 || m.NumTets() != 1 {
		t.Fatalf("counts = %d verts, %d tets", m.NumVerts(), m.NumTets())
	}
	for v := int32(0); v < 4; v++ {
		if m.Degree(v) != 3 {
			t.Errorf("vertex %d degree = %d, want 3", v, m.Degree(v))
		}
		if !m.IsBoundary[v] {
			t.Errorf("vertex %d of a single tet must be boundary", v)
		}
		if len(m.VertTets(v)) != 1 || m.VertTets(v)[0] != 0 {
			t.Errorf("vertex %d incidence = %v", v, m.VertTets(v))
		}
	}
	if len(m.InteriorVerts) != 0 {
		t.Errorf("interior = %v, want empty", m.InteriorVerts)
	}
}

func TestNewTetRejectsBadInput(t *testing.T) {
	coords := []geom.Point3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1}}
	if _, err := NewTet(coords, [][4]int32{{0, 1, 2, 4}}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := NewTet(coords, [][4]int32{{0, 1, 2, 2}}); err == nil {
		t.Error("repeated vertex accepted")
	}
}

func TestGenerateTetCube(t *testing.T) {
	m, err := GenerateTetCube(3, 4, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.NumVerts(), 4*5*6; got != want {
		t.Errorf("verts = %d, want %d", got, want)
	}
	if got, want := m.NumTets(), 6*3*4*5; got != want {
		t.Errorf("tets = %d, want %d", got, want)
	}
	// Exactly the strict interior of the grid is interior: the boundary
	// faces of the cube are each used by one tet.
	if got, want := len(m.InteriorVerts), 2*3*4; got != want {
		t.Errorf("interior = %d, want %d", got, want)
	}
	// Every tet is positively oriented and has nonzero volume.
	for i, tv := range m.Tets {
		if geom.Orient3D(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]], m.Coords[tv[3]]) != geom.CounterClockwise {
			t.Fatalf("tet %d not positively oriented", i)
		}
	}
	// The subdivision tiles the cube: volumes sum to 1.
	var vol float64
	for _, tv := range m.Tets {
		vol += geom.TetVolume(m.Coords[tv[0]], m.Coords[tv[1]], m.Coords[tv[2]], m.Coords[tv[3]])
	}
	if vol < 0.999999 || vol > 1.000001 {
		t.Errorf("total volume = %v, want 1", vol)
	}
}

func TestGenerateTetCubeDeterministic(t *testing.T) {
	a, err := GenerateTetCube(4, 4, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTetCube(4, 4, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Coords {
		if a.Coords[v] != b.Coords[v] {
			t.Fatalf("vertex %d differs between identical generations", v)
		}
	}
}

func TestGenerateTetCubeRejectsBadParams(t *testing.T) {
	if _, err := GenerateTetCube(0, 1, 1, 0); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := GenerateTetCube(1, 1, 1, 0.5); err == nil {
		t.Error("jitter 0.5 accepted")
	}
}

func TestGenerateTetCubeVertsTargets(t *testing.T) {
	m, err := GenerateTetCubeVerts(1500, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVerts() > 1500 || m.NumVerts() < 500 {
		t.Errorf("verts = %d, want close to but not above 1500", m.NumVerts())
	}
}

func TestTetRenumberRoundTrip(t *testing.T) {
	m, err := GenerateTetCube(3, 3, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	nv := m.NumVerts()
	// Reverse the storage order.
	perm := make([]int32, nv)
	for i := range perm {
		perm[i] = int32(nv - 1 - i)
	}
	rm, err := m.Renumber(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Validate(); err != nil {
		t.Fatal(err)
	}
	for newIdx, oldIdx := range perm {
		if rm.Coords[newIdx] != m.Coords[oldIdx] {
			t.Fatalf("coordinate of new vertex %d does not match old vertex %d", newIdx, oldIdx)
		}
		if rm.IsBoundary[newIdx] != m.IsBoundary[oldIdx] {
			t.Fatalf("boundary flag of new vertex %d does not match old vertex %d", newIdx, oldIdx)
		}
	}
	if rm.NumTets() != m.NumTets() {
		t.Error("renumbering changed the tet count")
	}
	// Renumbering back restores the original.
	back, err := rm.Renumber(perm)
	if err != nil {
		t.Fatal(err)
	}
	for v := range m.Coords {
		if back.Coords[v] != m.Coords[v] {
			t.Fatal("double reversal did not restore the mesh")
		}
	}
}

func TestTetRenumberRejectsBadPermutations(t *testing.T) {
	m := singleTet(t)
	if _, err := m.Renumber([]int32{0, 1, 2}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := m.Renumber([]int32{0, 1, 2, 2}); err == nil {
		t.Error("repeated entry accepted")
	}
	if _, err := m.Renumber([]int32{0, 1, 2, 4}); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestTetCloneIsDeep(t *testing.T) {
	m := singleTet(t)
	c := m.Clone()
	c.Coords[0] = geom.Point3{X: 9, Y: 9, Z: 9}
	c.Tets[0][0] = 3
	if m.Coords[0] == c.Coords[0] || m.Tets[0][0] == c.Tets[0][0] {
		t.Error("clone shares storage with the original")
	}
}

func TestTetSummary(t *testing.T) {
	m, err := GenerateTetCube(2, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s.Verts != 27 || s.Tets != 48 || s.Interior != 1 || s.Boundary != 26 {
		t.Errorf("summary = %+v", s)
	}
	if s.MinDegree <= 0 || s.MaxDegree < s.MinDegree || s.AvgDegree <= 0 {
		t.Errorf("degree stats = %+v", s)
	}
	if !strings.Contains(s.String(), "tets=48") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTetNodeEleRoundTrip(t *testing.T) {
	m, err := GenerateTetCube(3, 2, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var node, ele bytes.Buffer
	if err := m.WriteNodeEle(&node, &ele); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTetNodeEle(&node, &ele)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVerts() != m.NumVerts() || got.NumTets() != m.NumTets() {
		t.Fatalf("round trip changed counts: %d/%d -> %d/%d",
			m.NumVerts(), m.NumTets(), got.NumVerts(), got.NumTets())
	}
	for v := range m.Coords {
		if got.Coords[v] != m.Coords[v] {
			t.Fatalf("vertex %d coordinates drifted through the codec", v)
		}
	}
	for i := range m.Tets {
		if got.Tets[i] != m.Tets[i] {
			t.Fatalf("tet %d drifted through the codec", i)
		}
	}
}

func TestTetSaveLoadFiles(t *testing.T) {
	m, err := GenerateTetCube(2, 2, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "cube")
	if err := m.SaveFiles(base); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTetFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVerts() != m.NumVerts() || got.NumTets() != m.NumTets() {
		t.Error("file round trip changed counts")
	}
}

func TestReadNode3Malformed(t *testing.T) {
	cases := map[string]string{
		"2D header":        "3 2 0 1\n1 0 0 0\n2 1 0 0\n3 0 1 0\n",
		"zero verts":       "0 3 0 1\n",
		"truncated":        "2 3 0 1\n1 0 0 0 0\n",
		"few fields":       "1 3 0 1\n1 0 0\n",
		"dup index":        "2 3 0 1\n1 0 0 0 0\n1 1 1 1 0\n",
		"index range":      "1 3 0 1\n7 0 0 0 0\n",
		"non-finite coord": "1 3 0 1\n1 0 NaN 0 0\n",
	}
	for name, in := range cases {
		if _, err := ReadNode3(strings.NewReader(in), 0); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := ReadNode3(strings.NewReader("100 3 0 1\n"), 10); !errors.Is(err, ErrMeshTooLarge) {
		t.Errorf("oversize header error = %v, want ErrMeshTooLarge", err)
	}
}

func TestReadTetEleMalformed(t *testing.T) {
	cases := map[string]string{
		"3-node elements": "1 3 0\n1 1 2 3\n",
		"zero tets":       "0 4 0\n",
		"truncated":       "2 4 0\n1 1 2 3 4\n",
		"few fields":      "1 4 0\n1 1 2 3\n",
		"dup index":       "2 4 0\n1 1 2 3 4\n1 1 2 3 4\n",
		"vertex range":    "1 4 0\n1 1 2 3 9\n",
	}
	for name, in := range cases {
		if _, err := ReadTetEle(strings.NewReader(in), 4, 0); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := ReadTetEle(strings.NewReader("100 4 0\n"), 4, 10); !errors.Is(err, ErrMeshTooLarge) {
		t.Errorf("oversize header error = %v, want ErrMeshTooLarge", err)
	}
}
