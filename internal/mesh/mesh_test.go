package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lams/internal/delaunay"
	"lams/internal/domains"
	"lams/internal/geom"
)

// twoTriangleMesh is a square split along the diagonal: vertices 0..3,
// triangles (0,1,2) and (0,2,3). All vertices are boundary.
func twoTriangleMesh(t *testing.T) *Mesh {
	t.Helper()
	m, err := New(
		[]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}},
		[][3]int32{{0, 1, 2}, {0, 2, 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// diskMesh returns a fan around a center vertex: center 0, ring 1..n.
func diskMesh(t *testing.T, n int) *Mesh {
	t.Helper()
	pts := []geom.Point{{X: 0, Y: 0}}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts = append(pts, geom.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	var tris [][3]int32
	for i := 0; i < n; i++ {
		tris = append(tris, [3]int32{0, int32(1 + i), int32(1 + (i+1)%n)})
	}
	m, err := New(pts, tris)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildAdjacency(t *testing.T) {
	m := twoTriangleMesh(t)
	if m.NumVerts() != 4 || m.NumTris() != 2 {
		t.Fatalf("counts: %d verts, %d tris", m.NumVerts(), m.NumTris())
	}
	wantDeg := []int{3, 2, 3, 2}
	for v, want := range wantDeg {
		if got := m.Degree(int32(v)); got != want {
			t.Errorf("degree(%d) = %d, want %d", v, got, want)
		}
	}
	// Vertex 0's neighbors are 1, 2, 3 sorted.
	n0 := m.Neighbors(0)
	if len(n0) != 3 || n0[0] != 1 || n0[1] != 2 || n0[2] != 3 {
		t.Errorf("neighbors(0) = %v", n0)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestVertTris(t *testing.T) {
	m := twoTriangleMesh(t)
	if got := m.VertTris(0); len(got) != 2 {
		t.Errorf("vertex 0 should touch 2 triangles, got %v", got)
	}
	if got := m.VertTris(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("vertex 1 triangles = %v", got)
	}
}

func TestBoundaryClassification(t *testing.T) {
	m := twoTriangleMesh(t)
	for v := 0; v < 4; v++ {
		if !m.IsBoundary[v] {
			t.Errorf("vertex %d should be boundary", v)
		}
	}
	if len(m.InteriorVerts) != 0 {
		t.Errorf("interior = %v", m.InteriorVerts)
	}

	d := diskMesh(t, 6)
	if d.IsBoundary[0] {
		t.Error("disk center should be interior")
	}
	for v := 1; v <= 6; v++ {
		if !d.IsBoundary[v] {
			t.Errorf("ring vertex %d should be boundary", v)
		}
	}
	if len(d.InteriorVerts) != 1 || d.InteriorVerts[0] != 0 {
		t.Errorf("interior = %v", d.InteriorVerts)
	}
}

func TestNewErrors(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	if _, err := New(pts, [][3]int32{{0, 1, 5}}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := New(pts, [][3]int32{{0, 1, 1}}); err == nil {
		t.Error("repeated vertex should fail")
	}
	if _, err := New(pts, [][3]int32{{-1, 1, 2}}); err == nil {
		t.Error("negative index should fail")
	}
}

func TestRenumberIdentityAndReverse(t *testing.T) {
	m := diskMesh(t, 6)
	id := []int32{0, 1, 2, 3, 4, 5, 6}
	r, err := m.Renumber(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Coords {
		if r.Coords[i] != m.Coords[i] {
			t.Fatalf("identity renumber moved vertex %d", i)
		}
	}

	rev := []int32{6, 5, 4, 3, 2, 1, 0}
	r2, err := m.Renumber(rev)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Validate(); err != nil {
		t.Fatal(err)
	}
	// New vertex 0 is old vertex 6.
	if r2.Coords[0] != m.Coords[6] {
		t.Error("reverse renumber wrong placement")
	}
	// The interior vertex (old 0) is now at position 6.
	if len(r2.InteriorVerts) != 1 || r2.InteriorVerts[0] != 6 {
		t.Errorf("interior after reverse = %v", r2.InteriorVerts)
	}
	// Degrees are preserved under relabeling.
	if r2.Degree(6) != m.Degree(0) {
		t.Error("degree not preserved")
	}
}

func TestRenumberErrors(t *testing.T) {
	m := twoTriangleMesh(t)
	if _, err := m.Renumber([]int32{0, 1, 2}); err == nil {
		t.Error("short permutation should fail")
	}
	if _, err := m.Renumber([]int32{0, 1, 2, 2}); err == nil {
		t.Error("repeated entry should fail")
	}
	if _, err := m.Renumber([]int32{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range entry should fail")
	}
}

func TestRenumberPreservesStructure(t *testing.T) {
	// Property: any permutation of any generated mesh keeps vertex count,
	// triangle count, interior count and total degree.
	m, err := Generate("crake", 800)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cfg := &quick.Config{MaxCount: 10, Rand: rng}
	f := func(seed int64) bool {
		perm := rand.New(rand.NewSource(seed)).Perm(m.NumVerts())
		p32 := make([]int32, len(perm))
		for i, v := range perm {
			p32[i] = int32(v)
		}
		r, err := m.Renumber(p32)
		if err != nil {
			return false
		}
		if r.NumVerts() != m.NumVerts() || r.NumTris() != m.NumTris() {
			return false
		}
		if len(r.InteriorVerts) != len(m.InteriorVerts) {
			return false
		}
		if len(r.AdjList) != len(m.AdjList) {
			return false
		}
		return r.Validate() == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	m := diskMesh(t, 5)
	c := m.Clone()
	c.Coords[0] = geom.Point{X: 99, Y: 99}
	if m.Coords[0] == c.Coords[0] {
		t.Error("clone shares coordinate storage")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFromTriangulationCarving(t *testing.T) {
	// Triangulate a square grid and carve out the left half.
	var pts []geom.Point
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	tn, err := delaunay.Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromTriangulation(tn, func(c geom.Point) bool { return c.X > 2.5 })
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Only vertices with x >= 2 survive (they belong to kept triangles).
	for _, p := range m.Coords {
		if p.X < 2 {
			t.Errorf("vertex %v should have been carved away", p)
		}
	}
	if m.NumVerts() >= len(pts) {
		t.Error("carving should drop vertices")
	}
	// Empty carve errors.
	if _, err := FromTriangulation(tn, func(geom.Point) bool { return false }); err == nil {
		t.Error("carving everything should fail")
	}
}

func TestGenerateAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ms, err := GenerateAll(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 9 {
		t.Fatalf("got %d meshes", len(ms))
	}
	for name, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(m.InteriorVerts) == 0 {
			t.Errorf("%s: no interior vertices", name)
		}
		s := m.Summary()
		if s.MinDegree < 2 {
			t.Errorf("%s: min degree %d", name, s.MinDegree)
		}
	}
}

// TestGenerateTilesDomainArea is the 2D analogue of TestGenerateTetCube's
// volume check: every Table-1 generator must produce a triangulation that
// tiles its domain polygon — triangle areas summing to the region's area.
// Carving trims triangles whose centroid falls outside the (possibly
// concave, holed) region, so slivers along curved boundaries are lost; the
// tolerance is relative and absorbs that, while still catching a generator
// gone stale (dropped triangles, wrong region, degenerate carving).
func TestGenerateTilesDomainArea(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range domains.Names() {
		d, err := domains.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Generate(name, 1500)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var area float64
		for _, tri := range m.Tris {
			area += geom.TriangleArea(m.Coords[tri[0]], m.Coords[tri[1]], m.Coords[tri[2]])
		}
		want := d.Region.Area()
		if want <= 0 {
			t.Fatalf("%s: region area %v", name, want)
		}
		if rel := math.Abs(area-want) / want; rel > 0.05 {
			t.Errorf("%s: triangles tile %v of the domain's %v area (off by %.1f%%)",
				name, area, want, 100*rel)
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 100); err == nil {
		t.Error("unknown mesh should fail")
	}
}

func TestSummaryString(t *testing.T) {
	m := twoTriangleMesh(t)
	s := m.Summary()
	if s.Verts != 4 || s.Tris != 2 || s.Boundary != 4 || s.Interior != 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}
