package mesh

import (
	"fmt"
	"math/rand"

	"lams/internal/geom"
)

// kuhnPaths lists the six monotone corner paths 000 -> 111 of a cube, each
// naming the two intermediate corners by bitmask (bit 0 = x, bit 1 = y,
// bit 2 = z). Every grid cell splits into the six Kuhn tetrahedra
// (c000, cA, cB, c111); because each tet shares the main diagonal and the
// split of every cell face depends only on the face's own corner bits, the
// subdivision is conforming across neighboring cells.
var kuhnPaths = [6][2]int{
	{0b001, 0b011}, // x then y
	{0b001, 0b101}, // x then z
	{0b010, 0b011}, // y then x
	{0b010, 0b110}, // y then z
	{0b100, 0b101}, // z then x
	{0b100, 0b110}, // z then y
}

// GenerateTetCube builds a structured tetrahedral mesh of the unit cube:
// an (nx+1)x(ny+1)x(nz+1) vertex grid whose cells are each split into six
// Kuhn tetrahedra. Interior vertices are displaced by a deterministic jitter
// of up to jitter*h per axis (h the local grid spacing; pass 0 for the
// regular grid), which gives the smoother something to do — exactly the role
// the jittered-grid interior plays in the 2D generator. Vertices are laid
// out in x-fastest generation order; this is the mesh's ORI ordering.
func GenerateTetCube(nx, ny, nz int, jitter float64) (*TetMesh, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("mesh: cube cells %dx%dx%d: all dimensions must be >= 1", nx, ny, nz)
	}
	if jitter < 0 || jitter >= 0.5 {
		return nil, fmt.Errorf("mesh: jitter %g out of range [0, 0.5)", jitter)
	}
	vx, vy, vz := nx+1, ny+1, nz+1
	vid := func(i, j, k int) int32 {
		return int32((k*vy+j)*vx + i)
	}
	hx, hy, hz := 1.0/float64(nx), 1.0/float64(ny), 1.0/float64(nz)

	rng := rand.New(rand.NewSource(1))
	coords := make([]geom.Point3, 0, vx*vy*vz)
	for k := 0; k < vz; k++ {
		for j := 0; j < vy; j++ {
			for i := 0; i < vx; i++ {
				p := geom.Point3{X: float64(i) * hx, Y: float64(j) * hy, Z: float64(k) * hz}
				if jitter > 0 && i > 0 && i < nx && j > 0 && j < ny && k > 0 && k < nz {
					p.X += (2*rng.Float64() - 1) * jitter * hx
					p.Y += (2*rng.Float64() - 1) * jitter * hy
					p.Z += (2*rng.Float64() - 1) * jitter * hz
				}
				coords = append(coords, p)
			}
		}
	}

	tets := make([][4]int32, 0, 6*nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				corner := func(bits int) int32 {
					return vid(i+(bits&1), j+(bits>>1&1), k+(bits>>2&1))
				}
				for _, path := range kuhnPaths {
					tv := [4]int32{corner(0), corner(path[0]), corner(path[1]), corner(0b111)}
					// Orient positively so downstream volume/quality code can
					// rely on the sign convention.
					if geom.Orient3D(coords[tv[0]], coords[tv[1]], coords[tv[2]], coords[tv[3]]) == geom.Clockwise {
						tv[1], tv[2] = tv[2], tv[1]
					}
					tets = append(tets, tv)
				}
			}
		}
	}
	return NewTet(coords, tets)
}

// GenerateTetCubeVerts builds the jittered unit-cube tet mesh sized to
// roughly targetVerts vertices (equal cell counts per axis). It is the 3D
// counterpart of Generate's targetVerts contract, used by the service layer.
func GenerateTetCubeVerts(targetVerts int, jitter float64) (*TetMesh, error) {
	if targetVerts < 8 {
		targetVerts = 8
	}
	n := 1
	for (n+2)*(n+2)*(n+2) <= targetVerts {
		n++
	}
	return GenerateTetCube(n, n, n, jitter)
}
