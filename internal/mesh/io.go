package mesh

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"lams/internal/geom"
)

// WriteNodeEle writes the mesh in Shewchuk Triangle's .node/.ele text format
// (1-based indices, boundary markers), the format the paper's meshes were
// distributed in.
func (m *Mesh) WriteNodeEle(node, ele io.Writer) error {
	bw := bufio.NewWriter(node)
	fmt.Fprintf(bw, "%d 2 0 1\n", m.NumVerts())
	for i, p := range m.Coords {
		marker := 0
		if m.IsBoundary[i] {
			marker = 1
		}
		fmt.Fprintf(bw, "%d %.17g %.17g %d\n", i+1, p.X, p.Y, marker)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mesh: writing nodes: %w", err)
	}
	be := bufio.NewWriter(ele)
	fmt.Fprintf(be, "%d 3 0\n", m.NumTris())
	for i, tv := range m.Tris {
		fmt.Fprintf(be, "%d %d %d %d\n", i+1, tv[0]+1, tv[1]+1, tv[2]+1)
	}
	if err := be.Flush(); err != nil {
		return fmt.Errorf("mesh: writing elements: %w", err)
	}
	return nil
}

// ReadNodeEle parses a mesh from Triangle .node/.ele streams.
func ReadNodeEle(node, ele io.Reader) (*Mesh, error) {
	ns := bufio.NewScanner(node)
	ns.Buffer(make([]byte, 1<<20), 1<<20)
	fields, err := nextFields(ns)
	if err != nil {
		return nil, fmt.Errorf("mesh: .node header: %w", err)
	}
	var nv, dim, nattr, marker int
	if _, err := fmt.Sscan(strings.Join(fields, " "), &nv, &dim, &nattr, &marker); err != nil {
		return nil, fmt.Errorf("mesh: .node header: %w", err)
	}
	if dim != 2 {
		return nil, fmt.Errorf("mesh: only 2D .node files supported, got dim=%d", dim)
	}
	coords := make([]geom.Point, nv)
	for i := 0; i < nv; i++ {
		f, err := nextFields(ns)
		if err != nil {
			return nil, fmt.Errorf("mesh: .node line %d: %w", i+2, err)
		}
		if len(f) < 3 {
			return nil, fmt.Errorf("mesh: .node line %d: want >=3 fields, got %d", i+2, len(f))
		}
		var idx int
		var x, y float64
		if _, err := fmt.Sscan(f[0], &idx); err != nil {
			return nil, fmt.Errorf("mesh: .node line %d index: %w", i+2, err)
		}
		if _, err := fmt.Sscan(f[1], &x); err != nil {
			return nil, fmt.Errorf("mesh: .node line %d x: %w", i+2, err)
		}
		if _, err := fmt.Sscan(f[2], &y); err != nil {
			return nil, fmt.Errorf("mesh: .node line %d y: %w", i+2, err)
		}
		if idx < 1 || idx > nv {
			return nil, fmt.Errorf("mesh: .node line %d: index %d out of range", i+2, idx)
		}
		coords[idx-1] = geom.Point{X: x, Y: y}
	}

	es := bufio.NewScanner(ele)
	es.Buffer(make([]byte, 1<<20), 1<<20)
	fields, err = nextFields(es)
	if err != nil {
		return nil, fmt.Errorf("mesh: .ele header: %w", err)
	}
	var nt, per int
	if _, err := fmt.Sscan(fields[0], &nt); err != nil {
		return nil, fmt.Errorf("mesh: .ele header: %w", err)
	}
	if len(fields) > 1 {
		if _, err := fmt.Sscan(fields[1], &per); err == nil && per != 3 {
			return nil, fmt.Errorf("mesh: only 3-node elements supported, got %d", per)
		}
	}
	tris := make([][3]int32, nt)
	for i := 0; i < nt; i++ {
		f, err := nextFields(es)
		if err != nil {
			return nil, fmt.Errorf("mesh: .ele line %d: %w", i+2, err)
		}
		if len(f) < 4 {
			return nil, fmt.Errorf("mesh: .ele line %d: want >=4 fields, got %d", i+2, len(f))
		}
		var idx, a, b, c int
		for k, dst := range []*int{&idx, &a, &b, &c} {
			if _, err := fmt.Sscan(f[k], dst); err != nil {
				return nil, fmt.Errorf("mesh: .ele line %d field %d: %w", i+2, k, err)
			}
		}
		tris[i] = [3]int32{int32(a - 1), int32(b - 1), int32(c - 1)}
	}
	return New(coords, tris)
}

func nextFields(s *bufio.Scanner) ([]string, error) {
	for s.Scan() {
		line := strings.TrimSpace(s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Fields(line), nil
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// SaveFiles writes base.node and base.ele.
func (m *Mesh) SaveFiles(base string) error {
	nf, err := os.Create(base + ".node")
	if err != nil {
		return err
	}
	defer nf.Close()
	ef, err := os.Create(base + ".ele")
	if err != nil {
		return err
	}
	defer ef.Close()
	return m.WriteNodeEle(nf, ef)
}

// LoadFiles reads base.node and base.ele.
func LoadFiles(base string) (*Mesh, error) {
	nf, err := os.Open(base + ".node")
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(base + ".ele")
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return ReadNodeEle(nf, ef)
}
