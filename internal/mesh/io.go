package mesh

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"lams/internal/geom"
)

// maxEntities bounds the vertex and triangle counts a Triangle-format header
// may declare. Beyond it the header is treated as corrupt rather than as an
// instruction to allocate hundreds of gigabytes — important now that the
// codec parses untrusted HTTP uploads, not just local files.
const maxEntities = 1 << 27 // ~134M; the paper's largest mesh is ~17M verts

// ErrMeshTooLarge marks a header count beyond the caller's limit (or
// maxEntities). It is wrapped, so test with errors.Is; servers map it to
// 413. The check runs before any count-sized allocation, so a tiny hostile
// body cannot force a huge one.
var ErrMeshTooLarge = errors.New("mesh size limit exceeded")

// WriteNode writes the vertex section in Shewchuk Triangle's .node text
// format (1-based indices, boundary markers).
func (m *Mesh) WriteNode(node io.Writer) error {
	bw := bufio.NewWriter(node)
	fmt.Fprintf(bw, "%d 2 0 1\n", m.NumVerts())
	for i, p := range m.Coords {
		marker := 0
		if m.IsBoundary[i] {
			marker = 1
		}
		fmt.Fprintf(bw, "%d %.17g %.17g %d\n", i+1, p.X, p.Y, marker)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mesh: writing nodes: %w", err)
	}
	return nil
}

// WriteEle writes the triangle section in Triangle's .ele text format.
func (m *Mesh) WriteEle(ele io.Writer) error {
	be := bufio.NewWriter(ele)
	fmt.Fprintf(be, "%d 3 0\n", m.NumTris())
	for i, tv := range m.Tris {
		fmt.Fprintf(be, "%d %d %d %d\n", i+1, tv[0]+1, tv[1]+1, tv[2]+1)
	}
	if err := be.Flush(); err != nil {
		return fmt.Errorf("mesh: writing elements: %w", err)
	}
	return nil
}

// WriteNodeEle writes the mesh in Triangle's .node/.ele text format, the
// format the paper's meshes were distributed in.
func (m *Mesh) WriteNodeEle(node, ele io.Writer) error {
	if err := m.WriteNode(node); err != nil {
		return err
	}
	return m.WriteEle(ele)
}

// ReadNode parses a Triangle .node stream into vertex coordinates. It
// validates the input strictly enough to face untrusted uploads: the header
// counts must be plausible, every vertex index must appear exactly once and
// in range, and coordinates must be finite numbers. Errors name the
// offending line. maxVerts (when > 0) rejects larger headers with
// ErrMeshTooLarge before anything count-sized is allocated.
func ReadNode(node io.Reader, maxVerts int) ([]geom.Point, error) {
	ns := newScanner(node)
	fields, err := nextFields(ns)
	if err != nil {
		return nil, fmt.Errorf("mesh: .node header: %w", err)
	}
	if len(fields) < 2 {
		return nil, fmt.Errorf("mesh: .node header: want >=2 fields (#verts dim), got %d", len(fields))
	}
	nv, err := parseCount(fields[0], "vertex count", maxVerts)
	if err != nil {
		return nil, fmt.Errorf("mesh: .node header: %w", err)
	}
	dim, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("mesh: .node header dimension %q: %w", fields[1], err)
	}
	if dim != 2 {
		return nil, fmt.Errorf("mesh: only 2D .node files supported, got dim=%d", dim)
	}
	if nv == 0 {
		return nil, fmt.Errorf("mesh: .node header declares zero vertices")
	}

	coords := make([]geom.Point, nv)
	seen := make([]bool, nv)
	for i := 0; i < nv; i++ {
		f, err := nextFields(ns)
		if err != nil {
			return nil, fmt.Errorf("mesh: .node truncated after %d of %d vertices: %w", i, nv, err)
		}
		if len(f) < 3 {
			return nil, fmt.Errorf("mesh: .node line %d: want >=3 fields (index x y), got %d", i+2, len(f))
		}
		idx, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mesh: .node line %d index %q: %w", i+2, f[0], err)
		}
		if idx < 1 || idx > nv {
			return nil, fmt.Errorf("mesh: .node line %d: vertex index %d out of range [1,%d]", i+2, idx, nv)
		}
		if seen[idx-1] {
			return nil, fmt.Errorf("mesh: .node line %d: duplicate vertex index %d", i+2, idx)
		}
		seen[idx-1] = true
		x, err := parseCoord(f[1])
		if err != nil {
			return nil, fmt.Errorf("mesh: .node line %d x: %w", i+2, err)
		}
		y, err := parseCoord(f[2])
		if err != nil {
			return nil, fmt.Errorf("mesh: .node line %d y: %w", i+2, err)
		}
		coords[idx-1] = geom.Point{X: x, Y: y}
	}
	return coords, nil
}

// ReadEle parses a Triangle .ele stream into triangles over numVerts
// vertices (0-based output indices). Like ReadNode it is hardened against
// malformed input: truncated files, duplicate triangle ids, and vertex
// references outside [1, numVerts] all return descriptive errors instead of
// panicking or silently mis-parsing. maxTris (when > 0) rejects larger
// headers with ErrMeshTooLarge before allocation.
func ReadEle(ele io.Reader, numVerts, maxTris int) ([][3]int32, error) {
	es := newScanner(ele)
	fields, err := nextFields(es)
	if err != nil {
		return nil, fmt.Errorf("mesh: .ele header: %w", err)
	}
	nt, err := parseCount(fields[0], "triangle count", maxTris)
	if err != nil {
		return nil, fmt.Errorf("mesh: .ele header: %w", err)
	}
	if len(fields) > 1 {
		if per, err := strconv.Atoi(fields[1]); err == nil && per != 3 {
			return nil, fmt.Errorf("mesh: only 3-node elements supported, got %d", per)
		}
	}
	if nt == 0 {
		return nil, fmt.Errorf("mesh: .ele header declares zero triangles")
	}

	tris := make([][3]int32, nt)
	seen := make([]bool, nt)
	for i := 0; i < nt; i++ {
		f, err := nextFields(es)
		if err != nil {
			return nil, fmt.Errorf("mesh: .ele truncated after %d of %d triangles: %w", i, nt, err)
		}
		if len(f) < 4 {
			return nil, fmt.Errorf("mesh: .ele line %d: want >=4 fields (index v1 v2 v3), got %d", i+2, len(f))
		}
		idx, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mesh: .ele line %d index %q: %w", i+2, f[0], err)
		}
		if idx < 1 || idx > nt {
			return nil, fmt.Errorf("mesh: .ele line %d: triangle index %d out of range [1,%d]", i+2, idx, nt)
		}
		if seen[idx-1] {
			return nil, fmt.Errorf("mesh: .ele line %d: duplicate triangle index %d", i+2, idx)
		}
		seen[idx-1] = true
		var tv [3]int32
		for k := 0; k < 3; k++ {
			v, err := strconv.Atoi(f[k+1])
			if err != nil {
				return nil, fmt.Errorf("mesh: .ele line %d vertex %d %q: %w", i+2, k+1, f[k+1], err)
			}
			if v < 1 || v > numVerts {
				return nil, fmt.Errorf("mesh: .ele line %d: vertex index %d out of range [1,%d]", i+2, v, numVerts)
			}
			tv[k] = int32(v - 1)
		}
		tris[idx-1] = tv
	}
	return tris, nil
}

// ReadNodeEle parses a mesh from Triangle .node/.ele streams. The node
// stream is consumed fully before the ele stream is touched, so sequential
// sources (multipart HTTP uploads, tar entries) work without buffering.
func ReadNodeEle(node, ele io.Reader) (*Mesh, error) {
	coords, err := ReadNode(node, 0)
	if err != nil {
		return nil, err
	}
	tris, err := ReadEle(ele, len(coords), 0)
	if err != nil {
		return nil, err
	}
	return New(coords, tris)
}

func newScanner(r io.Reader) *bufio.Scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<20), 1<<20)
	return s
}

func parseCount(field, what string, max int) (int, error) {
	n, err := strconv.Atoi(field)
	if err != nil {
		return 0, fmt.Errorf("%s %q: %w", what, field, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("%s %d is negative", what, n)
	}
	limit := maxEntities
	if max > 0 && max < limit {
		limit = max
	}
	if n > limit {
		return 0, fmt.Errorf("%s %d exceeds the %d limit: %w", what, n, limit, ErrMeshTooLarge)
	}
	return n, nil
}

func parseCoord(field string) (float64, error) {
	v, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("coordinate %q is not finite", field)
	}
	return v, nil
}

func nextFields(s *bufio.Scanner) ([]string, error) {
	for s.Scan() {
		line := strings.TrimSpace(s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Fields(line), nil
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// SaveFiles writes base.node and base.ele.
func (m *Mesh) SaveFiles(base string) error {
	nf, err := os.Create(base + ".node")
	if err != nil {
		return err
	}
	defer nf.Close()
	ef, err := os.Create(base + ".ele")
	if err != nil {
		return err
	}
	defer ef.Close()
	return m.WriteNodeEle(nf, ef)
}

// LoadFiles reads base.node and base.ele.
func LoadFiles(base string) (*Mesh, error) {
	nf, err := os.Open(base + ".node")
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(base + ".ele")
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return ReadNodeEle(nf, ef)
}
