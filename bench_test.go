// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one benchmark per artifact, plus the ablation benches called out in
// DESIGN.md §5. Benchmarks report the headline quantities of each artifact
// as custom metrics so `go test -bench=.` output doubles as a compact
// reproduction record.
package lams_test

import (
	"sync"
	"testing"

	"lams/internal/cache"
	"lams/internal/core"
	"lams/internal/experiments"
	"lams/internal/improve"
	"lams/internal/order"
	"lams/internal/quality"
	"lams/internal/reuse"
	"lams/internal/smooth"
	"lams/internal/trace"
)

// benchVerts keeps the benchmark meshes small enough that the full suite
// runs in minutes on one core; cmd/lamsbench -full restores paper scale.
const benchVerts = 8000

var (
	suiteOnce sync.Once
	suiteVal  *experiments.Suite
)

// benchSuite returns a shared experiment suite over three representative
// meshes (building all nine for every benchmark would dominate run time).
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := experiments.ConfigForSize(benchVerts)
		cfg.Meshes = []string{"carabiner", "crake", "ocean"}
		cfg.CoreCounts = []int{1, 2, 4, 8, 16, 24, 32}
		suiteVal = experiments.NewSuite(cfg)
	})
	return suiteVal
}

// BenchmarkTable1MeshGeneration regenerates Table 1: the mesh generation
// pipeline (domain sampling, Delaunay triangulation, carving).
func BenchmarkTable1MeshGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := core.BuildMesh("carabiner", benchVerts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.NumVerts()), "verts")
		b.ReportMetric(float64(m.NumTris()), "tris")
	}
}

// BenchmarkFig1ReuseProfiles regenerates Figure 1: reuse-distance analysis
// of the first smoothing iteration under RANDOM/ORI/BFS.
func BenchmarkFig1ReuseProfiles(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		for _, se := range r.Series {
			if se.Ordering == "BFS" {
				b.ReportMetric(se.MeanReuse, "bfs-mean-reuse")
			}
		}
	}
}

// BenchmarkFig6IterationProfile regenerates Figure 6: per-iteration reuse
// profiles and their cross-iteration correlation.
func BenchmarkFig6IterationProfile(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Correlation, "iter-correlation")
	}
}

// BenchmarkFig8SerialSmoothing regenerates Figure 8 with real wall-clock
// runs of the smoother on this host: one sub-benchmark per ordering, so the
// reported ns/op ARE the Figure 8 bars.
func BenchmarkFig8SerialSmoothing(b *testing.B) {
	m, err := core.BuildMesh("carabiner", benchVerts)
	if err != nil {
		b.Fatal(err)
	}
	for _, ordName := range []string{"ORI", "BFS", "RDR"} {
		re, err := core.ReorderByName(m, ordName)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ordName, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clone := re.Mesh.Clone()
				res, err := smooth.Run(clone, smooth.Options{MaxIters: 8, Tol: -1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalQuality, "quality")
			}
		})
	}
}

// BenchmarkFig9CacheSim regenerates Figures 9a-c: the simulated cache miss
// rates of the serial run, reporting the RDR miss reductions.
func BenchmarkFig9CacheSim(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.ReductionVsORI[1], "L2-reduction-vs-ORI-%")
		b.ReportMetric(100*r.ReductionVsBFS[1], "L2-reduction-vs-BFS-%")
	}
}

// BenchmarkTable2Quantiles regenerates Table 2: reuse-distance quantiles of
// the first iteration for all meshes and orderings.
func BenchmarkTable2Quantiles(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Mesh == "carabiner" && row.Ordering == "RDR" {
				b.ReportMetric(float64(row.Quantiles[2]), "rdr-q90")
			}
		}
	}
}

// BenchmarkTable3MissEstimation regenerates Table 3: per-level miss counts
// and inferred cache capacities.
func BenchmarkTable3MissEstimation(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEq2PenaltyCycles regenerates the §5.2.2 Eq. (2) worked example.
func BenchmarkEq2PenaltyCycles(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Eq2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cycles["ORI"]/r.Cycles["RDR"], "ori-over-rdr")
	}
}

// BenchmarkFig10to13Scaling regenerates the scalability study behind
// Figures 10, 12 and 13 (1..32 modeled cores, three orderings).
func BenchmarkFig10to13Scaling(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Scaling()
		if err != nil {
			b.Fatal(err)
		}
		mean := r.MeanSpeedups()
		last := len(r.Cores) - 1
		b.ReportMetric(mean["RDR"][last], "rdr-speedup-32c")
		b.ReportMetric(100*r.Gains()["ORI"][last], "gain-vs-ori-32c-%")
	}
}

// BenchmarkFig11AccessCounts regenerates Figure 11: accesses per memory
// level as a function of core count.
func BenchmarkFig11AccessCounts(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostReordering regenerates the §5.4 reordering-cost analysis.
func BenchmarkCostReordering(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Cost()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].BreakEvenIters, "break-even-iters")
	}
}

// ---------------------------------------------------------------- ablations

// benchMeshAndQuality builds the shared ablation inputs.
func benchMeshAndQuality(b *testing.B) (*experiments.Suite, []float64) {
	s := benchSuite(b)
	m, err := s.Mesh("carabiner")
	if err != nil {
		b.Fatal(err)
	}
	return s, quality.VertexQualities(m, quality.EdgeRatio{})
}

// penaltyFor runs the full pipeline (order, renumber, trace one iteration,
// simulate) and returns the Eq. (2) penalty cycles for an ordering.
func penaltyFor(b *testing.B, s *experiments.Suite, ord order.Ordering, cfg cache.Config) float64 {
	b.Helper()
	m, err := s.Mesh("carabiner")
	if err != nil {
		b.Fatal(err)
	}
	re, err := core.Reorder(m, ord)
	if err != nil {
		b.Fatal(err)
	}
	_, tb, err := core.SmoothTraced(re.Mesh.Clone(), 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := cache.NewSim(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.RunTrace(tb); err != nil {
		b.Fatal(err)
	}
	return sim.CorePenaltyCycles(0)
}

// BenchmarkAblationRDRSeed compares RDR's worst-first seed sweep against the
// best-first variant (DESIGN.md §5: does "worst-first" matter, or only the
// walk-matching grouping?).
func BenchmarkAblationRDRSeed(b *testing.B) {
	s := benchSuite(b)
	cfg := cache.Scaled(benchVerts)
	for i := 0; i < b.N; i++ {
		asc := penaltyFor(b, s, order.RDR{}, cfg)
		desc := penaltyFor(b, s, order.RDR{SortDescending: true}, cfg)
		b.ReportMetric(desc/asc, "desc-over-asc-penalty")
	}
}

// BenchmarkAblationRDRMetric drives RDR with min-angle instead of
// edge-length-ratio quality.
func BenchmarkAblationRDRMetric(b *testing.B) {
	s := benchSuite(b)
	m, err := s.Mesh("carabiner")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cache.Scaled(benchVerts)
	for i := 0; i < b.N; i++ {
		var penalties []float64
		for _, met := range []quality.Metric{quality.EdgeRatio{}, quality.MinAngle{}} {
			vq := quality.VertexQualities(m, met)
			perm, err := (order.RDR{}).Compute(m, vq)
			if err != nil {
				b.Fatal(err)
			}
			rm, err := m.Renumber(perm)
			if err != nil {
				b.Fatal(err)
			}
			_, tb, err := core.SmoothTraced(rm, 1, 2)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := cache.NewSim(cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.RunTrace(tb); err != nil {
				b.Fatal(err)
			}
			penalties = append(penalties, sim.CorePenaltyCycles(0))
		}
		b.ReportMetric(penalties[1]/penalties[0], "minangle-over-edgeratio")
	}
}

// BenchmarkAblationBFSRoot compares BFS rooted at vertex 0 against BFS
// rooted at the worst-quality vertex.
func BenchmarkAblationBFSRoot(b *testing.B) {
	s := benchSuite(b)
	cfg := cache.Scaled(benchVerts)
	for i := 0; i < b.N; i++ {
		zero := penaltyFor(b, s, order.BFS{}, cfg)
		worst := penaltyFor(b, s, order.BFS{WorstQualityRoot: true}, cfg)
		b.ReportMetric(worst/zero, "worstroot-over-zeroroot")
	}
}

// BenchmarkAblationStride varies the vertex record size: 16 B (coordinate
// pair, 4 records/line), 32 B, and the paper's 66 B estimate (straddling).
func BenchmarkAblationStride(b *testing.B) {
	s := benchSuite(b)
	for _, stride := range []int64{16, 32, 66} {
		stride := stride
		b.Run(map[int64]string{16: "16B", 32: "32B", 66: "66B"}[stride], func(b *testing.B) {
			cfg := cache.Scaled(benchVerts)
			cfg.VertexStrideBytes = stride
			for i := 0; i < b.N; i++ {
				ori := penaltyFor(b, s, order.Original{}, cfg)
				rdr := penaltyFor(b, s, order.RDR{}, cfg)
				b.ReportMetric(ori/rdr, "ori-over-rdr-penalty")
			}
		})
	}
}

// BenchmarkAblationAssoc compares the real 8/8/24-way hierarchy against a
// direct-mapped and a fully-associative variant (the §3.1 theoretical
// model assumes full associativity).
func BenchmarkAblationAssoc(b *testing.B) {
	s := benchSuite(b)
	for _, mode := range []string{"direct", "real", "full"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			cfg := cache.Scaled(benchVerts)
			for li := range cfg.Levels {
				lv := &cfg.Levels[li]
				switch mode {
				case "direct":
					lv.Assoc = 1
				case "full":
					lv.Assoc = int(lv.SizeBytes / cfg.LineBytes)
				}
			}
			for i := 0; i < b.N; i++ {
				rdr := penaltyFor(b, s, order.RDR{}, cfg)
				b.ReportMetric(rdr/1e6, "rdr-penalty-Mcycles")
			}
		})
	}
}

// BenchmarkAblationTraversal compares the paper's quality-greedy traversal
// against a plain storage-order sweep under the RDR layout.
func BenchmarkAblationTraversal(b *testing.B) {
	s := benchSuite(b)
	m, err := s.Reordered("carabiner", "RDR")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cache.Scaled(benchVerts)
	for _, trav := range []smooth.Traversal{smooth.QualityGreedy, smooth.StorageOrder} {
		trav := trav
		b.Run(trav.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tb := trace.NewBuffer(1)
				if _, err := smooth.Run(m.Clone(), smooth.Options{
					MaxIters: 2, Tol: -1, Traversal: trav, Trace: tb,
				}); err != nil {
					b.Fatal(err)
				}
				sim, err := cache.NewSim(cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.RunTrace(tb); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(sim.CorePenaltyCycles(0)/1e6, "penalty-Mcycles")
			}
		})
	}
}

// BenchmarkExtensionCPack regenerates the CPACK-oracle comparison: how
// close RDR's a-priori layout comes to the trace-driven first-touch packing.
func BenchmarkExtensionCPack(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.CPack()
		if err != nil {
			b.Fatal(err)
		}
		var rdr, cpack float64
		for _, row := range r.Rows {
			switch row.Ordering {
			case "RDR":
				rdr = row.MeanReuse
			case "CPACK":
				cpack = row.MeanReuse
			}
		}
		b.ReportMetric(rdr/cpack, "rdr-over-oracle-reuse")
	}
}

// BenchmarkExtensionPrefetch regenerates the next-line prefetcher study.
func BenchmarkExtensionPrefetch(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Prefetch()
		if err != nil {
			b.Fatal(err)
		}
		var rdrOff, rdrOn int64
		for _, row := range r.Rows {
			if row.Ordering == "RDR" {
				if row.Degree == 0 {
					rdrOff = row.L1Misses
				} else {
					rdrOn = row.L1Misses
				}
			}
		}
		b.ReportMetric(100*float64(rdrOff-rdrOn)/float64(rdrOff), "rdr-miss-cut-%")
	}
}

// BenchmarkExtensionMRC regenerates the miss-ratio-curve sweep.
func BenchmarkExtensionMRC(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.MRC(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionVariants regenerates the §6-conjecture study (RDR under
// smart/weighted/constrained smoothing).
func BenchmarkExtensionVariants(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Variants()
		if err != nil {
			b.Fatal(err)
		}
		var ori, rdr float64
		for _, row := range r.Rows {
			if row.Variant == "smart" {
				if row.Ordering == "ORI" {
					ori = row.PenaltyCycles
				} else {
					rdr = row.PenaltyCycles
				}
			}
		}
		b.ReportMetric(ori/rdr, "smart-ori-over-rdr")
	}
}

// BenchmarkImproveSwapEdges measures the edge-swapping pass.
func BenchmarkImproveSwapEdges(b *testing.B) {
	s := benchSuite(b)
	m, err := s.Mesh("carabiner")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := improve.SwapEdges(m, quality.EdgeRatio{}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrderingsCompute measures the pure reordering cost (§5.4) of
// each ordering, excluding smoothing.
func BenchmarkOrderingsCompute(b *testing.B) {
	m, err := core.BuildMesh("carabiner", benchVerts)
	if err != nil {
		b.Fatal(err)
	}
	vq := quality.VertexQualities(m, quality.EdgeRatio{})
	for _, name := range order.Names() {
		ord, err := order.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ord.Compute(m, vq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReuseDistanceAnalyzer measures the Fenwick-tree stack-distance
// computation on a real trace.
func BenchmarkReuseDistanceAnalyzer(b *testing.B) {
	s := benchSuite(b)
	stream, err := s.FirstIterStream("carabiner", "ORI")
	if err != nil {
		b.Fatal(err)
	}
	blocks := reuse.Blocks(stream, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reuse.StackDistances(blocks)
	}
}

// BenchmarkParallelSmoothing measures real wall-clock smoothing at several
// goroutine counts (on this host; the paper-scale 32-core curve is modeled
// by BenchmarkFig10to13Scaling).
func BenchmarkParallelSmoothing(b *testing.B) {
	m, err := core.BuildMesh("ocean", benchVerts)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(map[int]string{1: "1worker", 2: "2workers", 4: "4workers"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := smooth.Run(m.Clone(), smooth.Options{
					MaxIters: 4, Tol: -1, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
