// Package lams is a from-scratch Go reproduction of "Locality-Aware
// Laplacian Mesh Smoothing" (Aupy, Park, Raghavan; ICPP 2016,
// arXiv:1606.00803).
//
// The library lives under internal/: the RDR reordering and its baselines
// (internal/order), the Laplacian smoother (internal/smooth), the mesh data
// structures and generator substrates (internal/mesh, internal/delaunay,
// internal/domains, internal/geom), and the locality-analysis machinery
// (internal/trace, internal/reuse, internal/cache, internal/perfmodel).
// internal/core is the high-level facade; internal/experiments regenerates
// every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each paper artifact; the
// cmd/lamsbench binary prints them as reports.
package lams
