// Package lams is a from-scratch Go reproduction of "Locality-Aware
// Laplacian Mesh Smoothing" (Aupy, Park, Raghavan; ICPP 2016,
// arXiv:1606.00803).
//
// The public API lives in pkg/lams: the build → order → smooth → analyze
// pipeline with functional options and context cancellation, over both 2D
// triangular meshes (the paper's nine Table 1 domains) and 3D tetrahedral
// meshes (the structured cube generator, TetGen-format I/O). The
// implementation lives under internal/: the RDR reordering and its
// baselines behind a self-registering registry (internal/order) — the
// orderings traverse a dimension-agnostic adjacency abstraction
// (order.Graph/order.Spatial), so the same registry entries reorder
// triangles and tetrahedra — the dimension-generic smoothing core
// (internal/smooth: one engine, generic over a dim2/dim3 coordinate
// abstraction, serves both mesh kinds through Smoother.Run and
// Smoother.RunTet — one convergence loop, one kernel registry resolving
// both dimensions' kernels from the same rows, one Jacobi/tracing
// structure — whose hot state is packed into structure-of-arrays
// coordinate mirrors feeding monomorphic fast-path loops for the built-in
// kernels, including the smart kernel's inlined accept test, with a
// CheckEvery measurement cadence), the quality metrics whose global
// measurement runs one generic two-stage element pass chunk-parallel
// through a fixed-block ordered reduction — bit-identical to the serial
// pass at every worker count and schedule (internal/quality,
// parallel.OrderedReducer) — the chunk schedulers that distribute each
// sweep across workers — static (the paper's OpenMP configuration, the
// default), guided, and lock-free work-stealing, all bit-identical in
// results and selectable per run in
// either dimension (internal/parallel), the mesh data structures and
// generator substrates (internal/mesh, internal/delaunay,
// internal/domains, internal/geom — including the Orient3D predicate and
// 3D Hilbert/Morton keys; CSR adjacency construction and curve-key
// computation run chunk-parallel through the same scheduler registry, so
// cold-start setup scales with the sweeps), and the locality-analysis
// machinery
// (internal/trace, internal/reuse, internal/cache, internal/perfmodel).
// internal/core is the thin facade pkg/lams delegates to;
// internal/experiments regenerates every table and figure of the paper's
// evaluation.
//
// pkg/lamsd turns the library into a long-running HTTP service (served by
// cmd/lamsd): uploaded meshes and warm smoothing engines stay resident
// between requests, so the paper's reorder-once / smooth-many amortization
// argument holds across a request stream, and the pooled hot path performs
// no per-request engine allocation.
//
// See README.md for a package tour, a quickstart through the public API,
// and a curl walkthrough of the service. The benchmarks in bench_test.go
// regenerate each paper artifact; the cmd/lamsbench binary prints them as
// reports.
package lams
