// Command lamsd serves the lams smoothing pipeline over HTTP: upload or
// generate a mesh, reorder it with any registered ordering (RDR by
// default), smooth it through a pool of warm engines — synchronously or as
// polled async jobs — and fetch locality analyses; the paper's
// preprocess-once / smooth-many amortization argument as a long-running
// service. With -data-dir, resident meshes survive restarts: they are
// snapshotted atomically on a timer and at graceful shutdown, and restored
// at boot. Accepted async jobs are journaled before they are acknowledged,
// so a crash or an expired -drain-timeout loses no acknowledged work — the
// next boot replays the journal and resumes each interrupted job from its
// last checkpoint. -chaos arms deterministic fault injection for drills.
//
// Usage:
//
//	lamsd -addr :8080 -max-concurrent 4 -data-dir /var/lib/lamsd
//
// See pkg/lamsd for the endpoint reference and README.md ("Running the
// service") for a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lams/internal/faultinject"
	"lams/pkg/lamsd"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrent smooth requests (0 = GOMAXPROCS, capped at 8)")
		maxMeshes     = flag.Int("max-meshes", 64, "max resident meshes")
		maxVerts      = flag.Int("max-verts", 4_000_000, "max vertices per mesh")
		maxWorkers    = flag.Int("max-workers", 0, "max smoothing workers per request (0 = GOMAXPROCS)")
		defTimeout    = flag.Duration("default-timeout", 60*time.Second, "default per-request deadline")
		maxTimeout    = flag.Duration("max-timeout", 10*time.Minute, "maximum per-request deadline (?timeout is clamped to this)")

		dataDir      = flag.String("data-dir", "", "directory for durable mesh snapshots (empty = in-memory only)")
		snapEvery    = flag.Duration("snapshot-every", 5*time.Minute, "periodic snapshot interval (with -data-dir)")
		jobTTL       = flag.Duration("job-ttl", 15*time.Minute, "how long finished async jobs stay fetchable")
		maxJobs      = flag.Int("max-jobs", 256, "max resident async jobs (running + retained)")
		tenantRPS    = flag.Float64("tenant-rps", 0, "per-tenant request rate limit in requests/second (0 = unlimited)")
		tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant rate-limit burst (0 = 2×rps)")
		tenantMeshes = flag.Int("tenant-max-meshes", 0, "max resident meshes per tenant (0 = unlimited)")
		tenantJobs   = flag.Int("tenant-max-jobs", 16, "max in-flight async jobs per tenant (negative = unlimited)")

		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long running async jobs may finish at shutdown before being interrupted (with -data-dir, interrupted jobs resume at the next boot)")
		chaos        = flag.String("chaos", "", "fault-injection spec for crash testing, e.g. snapshot.write=3,engine.sweep=p0.01:7 (never use in production)")
	)
	flag.Parse()

	opts := []lamsd.Option{
		lamsd.WithMaxConcurrentSmooths(*maxConcurrent),
		lamsd.WithMaxMeshes(*maxMeshes),
		lamsd.WithMaxMeshVerts(*maxVerts),
		lamsd.WithMaxWorkers(*maxWorkers),
		lamsd.WithTimeouts(*defTimeout, *maxTimeout),
		lamsd.WithPersistence(*dataDir, *snapEvery),
		lamsd.WithJobRetention(*jobTTL, *maxJobs),
		lamsd.WithTenantQuotas(*tenantRPS, *tenantBurst, *tenantMeshes, *tenantJobs),
		lamsd.WithDrainTimeout(*drainTimeout),
	}
	if *chaos != "" {
		fs, err := faultinject.Parse(*chaos)
		if err != nil {
			log.Fatalf("lamsd: -chaos: %v", err)
		}
		log.Printf("lamsd: FAULT INJECTION ARMED (-chaos %q) — crash testing only", *chaos)
		opts = append(opts, lamsd.WithFaultInjection(fs))
	}

	srv, err := lamsd.Open(opts...)
	if err != nil {
		log.Fatalf("lamsd: %v", err)
	}
	srv.PublishExpvar("lamsd")

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// No WriteTimeout: per-request work is already bounded by the
		// deadline middleware (-max-timeout), and large mesh exports may
		// legitimately stream for a while.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("lamsd listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatalf("lamsd: %v", err)
	case <-ctx.Done():
		log.Printf("lamsd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("lamsd: shutdown: %v", err)
		}
		// Drain async jobs and write the final snapshot only after the
		// listener stops accepting work.
		if err := srv.Close(); err != nil {
			log.Printf("lamsd: close: %v", err)
		}
	}
}
