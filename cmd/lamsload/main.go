// Command lamsload drives a lamsd server with a mixed workload — mesh
// creation and deletion, reorders, pooled smooths, locality analyses, and
// summary reads — at a target request rate, and reports the latency
// distribution (p50/p90/p99), achieved throughput, and error counts as
// JSON. It is the service-level counterpart of the library benchmarks: the
// numbers include HTTP, the deadline middleware, the tenant layer, and
// engine-pool queueing, not just the sweep kernels.
//
// Point it at a running server:
//
//	lamsload -addr http://localhost:8080 -rate 50 -duration 10s
//
// or let it host one in-process (the CI smoke does this; no daemon needed):
//
//	lamsload -self -rate 50 -duration 10s > BENCH_lamsd.json
//
// The generator is open-loop: requests are issued on a fixed tick whether
// or not earlier ones have finished, so a server that cannot keep up shows
// as dropped ticks and a widening tail, not a silently slower workload.
//
// With -chaos-restart N (requires -self) the in-process server is torn down
// and rebooted N times mid-load against a durable data dir: part of the
// smooth traffic becomes async jobs, and the report gains a "chaos" object
// counting acknowledged jobs that were recovered (reached a terminal state,
// resuming across restarts from their journaled checkpoints) versus lost.
// A lost acknowledged job is a durability bug and fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lams/pkg/lamsd"
)

type opResult struct {
	op  string
	dur time.Duration
	err bool
}

type opStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

type report struct {
	Addr          string             `json:"addr"`
	TargetRPS     float64            `json:"target_rps"`
	DurationS     float64            `json:"duration_s"`
	Concurrency   int                `json:"concurrency"`
	Meshes        int                `json:"meshes"`
	TargetVerts   int                `json:"target_verts"`
	Requests      int                `json:"requests"`
	Errors        int                `json:"errors"`
	Dropped       int                `json:"dropped"`
	ThroughputRPS float64            `json:"throughput_rps"`
	LatencyMS     opStats            `json:"latency_ms"`
	Ops           map[string]opStats `json:"ops"`
	Chaos         *chaosStats        `json:"chaos,omitempty"`
}

// chaosStats summarizes a -chaos-restart run. JobsAcked counts async
// submissions the server acknowledged with 202 (and therefore journaled);
// each must reach a terminal state despite the restarts — JobsDone +
// JobsFailed are the recovered outcomes, JobsLost is the durability
// violations (unknown to the rebooted server, or never terminal). Retried
// and Resumed aggregate the server's jobs_retried / jobs_resumed counters
// across all restarts.
type chaosStats struct {
	Restarts    int   `json:"restarts"`
	JobsAcked   int   `json:"jobs_acked"`
	JobsDone    int   `json:"jobs_done"`
	JobsFailed  int   `json:"jobs_failed"`
	JobsLost    int   `json:"jobs_lost"`
	JobsRetried int64 `json:"jobs_retried"`
	JobsResumed int64 `json:"jobs_resumed"`
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "base URL of the lamsd server to drive")
		self        = flag.Bool("self", false, "host an in-process lamsd server instead of dialing -addr")
		rate        = flag.Float64("rate", 50, "target request rate (requests/second)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = flag.Int("concurrency", 8, "max in-flight requests")
		meshes      = flag.Int("meshes", 4, "resident meshes to create before the run")
		verts       = flag.Int("verts", 2000, "target vertex count per mesh")
		domain      = flag.String("domain", "carabiner", "domain to generate the working meshes from")
		seed        = flag.Int64("seed", 1, "PRNG seed for the op mix")
		tenant      = flag.String("tenant", "", "X-Tenant header to send (empty = none)")
		chaosN      = flag.Int("chaos-restart", 0, "restart the in-process server N times mid-load (requires -self) and report lost vs recovered acknowledged jobs")
	)
	flag.Parse()
	if *rate <= 0 || *concurrency < 1 || *meshes < 1 {
		log.Fatal("lamsload: -rate, -concurrency, and -meshes must be positive")
	}
	if *chaosN > 0 && !*self {
		log.Fatal("lamsload: -chaos-restart requires -self (it reboots the in-process server)")
	}

	base := strings.TrimRight(*addr, "/")
	var harness *chaosHarness
	if *self {
		var handler http.Handler
		if *chaosN > 0 {
			var err error
			if harness, err = newChaosHarness(*chaosN); err != nil {
				log.Fatalf("lamsload: chaos: %v", err)
			}
			defer harness.cleanup()
			handler = harness
		} else {
			handler = lamsd.New().Handler()
		}
		ts := httptest.NewServer(handler)
		defer ts.Close()
		base = ts.URL
	}
	client := &http.Client{Timeout: 60 * time.Second}
	ld := &loader{base: base, client: client, tenant: *tenant, verts: *verts, domain: *domain}
	if harness != nil {
		ld.jobs = newJobTracker()
	}

	ids, err := ld.setup(*meshes)
	if err != nil {
		log.Fatalf("lamsload: setup: %v", err)
	}
	ld.ids = ids

	// Open-loop generation: one token per tick into a buffer the size of
	// the worker pool; a full buffer means the server is behind and the
	// tick is counted as dropped rather than queued without bound.
	ticks := make(chan struct{}, *concurrency)
	results := make(chan opResult, 4**concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		// Per-worker PRNGs: deterministic under -seed, no lock contention.
		rng := rand.New(rand.NewSource(*seed + int64(w)))
		go func() {
			defer wg.Done()
			for range ticks {
				results <- ld.step(rng)
			}
		}()
	}

	var all []opResult
	collected := make(chan struct{})
	go func() {
		for r := range results {
			all = append(all, r)
		}
		close(collected)
	}()

	var restartsDone chan struct{}
	var pollStop chan struct{}
	if harness != nil {
		restartsDone = make(chan struct{})
		go func() {
			defer close(restartsDone)
			harness.schedule(*duration)
		}()
		// Observe job completions as they happen: a job that finishes and is
		// then forgotten by a restart (terminal journal records are not
		// replayed) must count as recovered, not lost.
		pollStop = make(chan struct{})
		go ld.pollJobsLoop(pollStop)
	}

	dropped := 0
	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	deadline := time.After(*duration)
	start := time.Now()
loop:
	for {
		select {
		case <-ticker.C:
			select {
			case ticks <- struct{}{}:
			default:
				dropped++
			}
		case <-deadline:
			break loop
		}
	}
	ticker.Stop()
	close(ticks)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	<-collected

	rep := summarize(all, *rate, elapsed, dropped)
	rep.Addr = base
	rep.Concurrency = *concurrency
	rep.Meshes = *meshes
	rep.TargetVerts = *verts
	if harness != nil {
		<-restartsDone
		close(pollStop)
		rep.Chaos = ld.resolveChaos(harness)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("lamsload: %v", err)
	}
	switch {
	case rep.Chaos != nil:
		// Restart windows make some op failures expected; the chaos pass/fail
		// criterion is durability alone.
		if rep.Chaos.JobsLost > 0 {
			log.Printf("lamsload: %d acknowledged jobs lost across %d restarts",
				rep.Chaos.JobsLost, rep.Chaos.Restarts)
			os.Exit(1)
		}
	case rep.Errors > 0:
		os.Exit(1)
	}
}

func summarize(all []opResult, rate float64, elapsed time.Duration, dropped int) report {
	rep := report{
		TargetRPS: rate,
		DurationS: elapsed.Seconds(),
		Requests:  len(all),
		Dropped:   dropped,
		Ops:       make(map[string]opStats),
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	}
	byOp := make(map[string][]opResult)
	for _, r := range all {
		if r.err {
			rep.Errors++
		}
		byOp[r.op] = append(byOp[r.op], r)
	}
	rep.LatencyMS = statsOf(all)
	for op, rs := range byOp {
		rep.Ops[op] = statsOf(rs)
	}
	return rep
}

func statsOf(rs []opResult) opStats {
	st := opStats{Count: len(rs)}
	if len(rs) == 0 {
		return st
	}
	durs := make([]float64, 0, len(rs))
	for _, r := range rs {
		if r.err {
			st.Errors++
		}
		durs = append(durs, float64(r.dur)/float64(time.Millisecond))
	}
	sort.Float64s(durs)
	pct := func(p float64) float64 {
		i := int(p * float64(len(durs)-1))
		return durs[i]
	}
	st.P50MS, st.P90MS, st.P99MS = pct(0.50), pct(0.90), pct(0.99)
	return st
}

// loader holds the target server and the working-set mesh ids.
type loader struct {
	base   string
	client *http.Client
	tenant string
	verts  int
	domain string
	ids    []string
	// jobs is non-nil in chaos mode: part of the smooth traffic goes async
	// and every acknowledged job id is tracked to a terminal state.
	jobs *jobTracker
}

// setup creates the resident working set the mixed ops run against.
func (ld *loader) setup(n int) ([]string, error) {
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, status, err := ld.createMesh()
		if err != nil {
			return nil, err
		}
		if status != http.StatusCreated {
			return nil, fmt.Errorf("creating mesh: status %d", status)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// step runs one operation from the mix and times it. The weights lean on
// smooth — the hot path the pool exists for — with reorders, analyses,
// reads, and full create/delete churn keeping every subsystem in play.
func (ld *loader) step(rng *rand.Rand) opResult {
	id := ld.ids[rng.Intn(len(ld.ids))]
	roll := rng.Float64()
	start := time.Now()
	var (
		op     string
		status int
		err    error
	)
	switch {
	case ld.jobs != nil && roll < 0.20:
		// Chaos mode: a slice of the smooth traffic becomes async jobs long
		// enough for a restart to catch them mid-run.
		op = "smooth_async"
		status, err = ld.smoothAsync(id)
	case roll < 0.50:
		op = "smooth"
		status, err = ld.do("POST", "/v1/meshes/"+id+"/smooth",
			`{"workers":1,"max_iters":2,"tol":-1}`)
	case roll < 0.65:
		op = "reorder"
		status, err = ld.do("POST", "/v1/meshes/"+id+"/reorder", `{"ordering":"RDR"}`)
	case roll < 0.75:
		op = "analyze"
		status, err = ld.do("GET", "/v1/meshes/"+id+"/analyze?iters=1", "")
	case roll < 0.90:
		op = "get"
		status, err = ld.do("GET", "/v1/meshes/"+id, "")
	default:
		// Create-and-delete churn: exercises store admission, quota
		// accounting, and the delete path's engine-cache eviction.
		op = "churn"
		var newID string
		newID, status, err = ld.createMesh()
		if err == nil && status == http.StatusCreated {
			status, err = ld.do("DELETE", "/v1/meshes/"+newID, "")
		}
	}
	ok := err == nil && status >= 200 && status < 300
	return opResult{op: op, dur: time.Since(start), err: !ok}
}

func (ld *loader) createMesh() (id string, status int, err error) {
	body := fmt.Sprintf(`{"domain":%q,"target_verts":%d}`, ld.domain, ld.verts)
	req, err := http.NewRequest("POST", ld.base+"/v1/meshes", strings.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if ld.tenant != "" {
		req.Header.Set("X-Tenant", ld.tenant)
	}
	resp, err := ld.client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", resp.StatusCode, err
	}
	return out.ID, resp.StatusCode, nil
}

// --- chaos mode: restarts, job tracking, durability accounting ---

// smoothAsync submits an async smoothing job — sized to take long enough
// that restarts catch jobs mid-run — and tracks its id once the server
// acknowledges it with 202 (i.e. once the accept record is journaled).
func (ld *loader) smoothAsync(id string) (int, error) {
	req, err := http.NewRequest("POST", ld.base+"/v1/meshes/"+id+"/smooth?async=1&timeout=5m",
		strings.NewReader(`{"workers":1,"max_iters":1500,"tol":-1,"check_every":10}`))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if ld.tenant != "" {
		req.Header.Set("X-Tenant", ld.tenant)
	}
	resp, err := ld.client.Do(req)
	if err != nil {
		return 0, err
	}
	var out struct {
		ID string `json:"id"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		if decErr != nil || out.ID == "" {
			return resp.StatusCode, fmt.Errorf("202 without a job id")
		}
		ld.jobs.ack(out.ID)
	}
	return resp.StatusCode, nil
}

// pollJobs marks any tracked job the server currently reports terminal.
// Transport errors and the 503s of a restart window are ignored — the next
// tick retries.
func (ld *loader) pollJobs() {
	for _, id := range ld.jobs.pending() {
		req, err := http.NewRequest("GET", ld.base+"/v1/jobs/"+id, nil)
		if err != nil {
			continue
		}
		if ld.tenant != "" {
			req.Header.Set("X-Tenant", ld.tenant)
		}
		resp, err := ld.client.Do(req)
		if err != nil {
			continue
		}
		var info struct {
			State string `json:"state"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if decErr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		switch info.State {
		case "done", "failed", "canceled":
			ld.jobs.resolve(id, info.State)
		}
	}
}

func (ld *loader) pollJobsLoop(stop <-chan struct{}) {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			ld.pollJobs()
		}
	}
}

// resolveChaos waits (bounded) for every acknowledged job to reach a
// terminal state after the final reboot, then folds in the server-side
// retry/resume counters. Whatever never resolves is lost — the bug this
// harness exists to catch.
func (ld *loader) resolveChaos(h *chaosHarness) *chaosStats {
	deadline := time.Now().Add(60 * time.Second)
	for len(ld.jobs.pending()) > 0 && time.Now().Before(deadline) {
		ld.pollJobs()
		time.Sleep(100 * time.Millisecond)
	}
	acked, done, failed := ld.jobs.tally()
	st := &chaosStats{
		Restarts:   h.restarts,
		JobsAcked:  acked,
		JobsDone:   done,
		JobsFailed: failed,
		JobsLost:   acked - done - failed,
	}
	st.JobsRetried, st.JobsResumed = h.counters()
	return st
}

// jobTracker records every acknowledged async job id and the terminal state
// it was eventually observed in ("" = not yet).
type jobTracker struct {
	mu    sync.Mutex
	state map[string]string
}

func newJobTracker() *jobTracker { return &jobTracker{state: make(map[string]string)} }

func (jt *jobTracker) ack(id string) {
	jt.mu.Lock()
	if _, ok := jt.state[id]; !ok {
		jt.state[id] = ""
	}
	jt.mu.Unlock()
}

func (jt *jobTracker) resolve(id, terminal string) {
	jt.mu.Lock()
	if st, ok := jt.state[id]; ok && st == "" {
		jt.state[id] = terminal
	}
	jt.mu.Unlock()
}

func (jt *jobTracker) pending() []string {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	ids := make([]string, 0, len(jt.state))
	for id, st := range jt.state {
		if st == "" {
			ids = append(ids, id)
		}
	}
	return ids
}

func (jt *jobTracker) tally() (acked, done, failed int) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	for _, st := range jt.state {
		acked++
		switch st {
		case "done":
			done++
		case "":
			// never reached a terminal state: lost
		default:
			failed++
		}
	}
	return
}

// chaosHarness hosts the in-process durable server behind a swappable
// pointer so it can be torn down and rebooted mid-load, the way a crashing
// process behind a load balancer would look to clients.
type chaosHarness struct {
	dir      string
	restarts int

	srv atomic.Pointer[lamsd.Server]

	mu      sync.Mutex // serializes restarts and counter accumulation
	retried int64
	resumed int64
}

func newChaosHarness(restarts int) (*chaosHarness, error) {
	dir, err := os.MkdirTemp("", "lamsload-chaos-*")
	if err != nil {
		return nil, err
	}
	ch := &chaosHarness{dir: dir, restarts: restarts}
	if err := ch.open(); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return ch, nil
}

func (ch *chaosHarness) open() error {
	srv, err := lamsd.Open(
		lamsd.WithPersistence(ch.dir, time.Hour),
		lamsd.WithDrainTimeout(0), // restarts must interrupt jobs, not drain them
	)
	if err != nil {
		return err
	}
	ch.srv.Store(srv)
	return nil
}

// ServeHTTP proxies to the current server instance; during the reboot gap
// requests see 503, and the load workers count them as failed ops.
func (ch *chaosHarness) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if srv := ch.srv.Load(); srv != nil {
		srv.ServeHTTP(w, r)
		return
	}
	http.Error(w, `{"error":"server restarting"}`, http.StatusServiceUnavailable)
}

// schedule spaces the restarts evenly across the load window.
func (ch *chaosHarness) schedule(duration time.Duration) {
	interval := duration / time.Duration(ch.restarts+1)
	for i := 0; i < ch.restarts; i++ {
		time.Sleep(interval)
		if err := ch.restart(); err != nil {
			log.Printf("lamsload: chaos restart %d: %v", i+1, err)
			return
		}
	}
}

func (ch *chaosHarness) restart() error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	srv := ch.srv.Swap(nil)
	if srv == nil {
		return fmt.Errorf("no live server to restart")
	}
	retried, resumed := scrapeJobCounters(srv)
	ch.retried += retried
	ch.resumed += resumed
	if err := srv.Close(); err != nil {
		log.Printf("lamsload: chaos close: %v", err)
	}
	return ch.open()
}

// counters returns the jobs_retried / jobs_resumed totals accumulated
// across every instance, including the live one.
func (ch *chaosHarness) counters() (retried, resumed int64) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	retried, resumed = ch.retried, ch.resumed
	if srv := ch.srv.Load(); srv != nil {
		r, rs := scrapeJobCounters(srv)
		retried += r
		resumed += rs
	}
	return
}

func (ch *chaosHarness) cleanup() {
	if srv := ch.srv.Swap(nil); srv != nil {
		_ = srv.Close()
	}
	os.RemoveAll(ch.dir)
}

// scrapeJobCounters reads an instance's /metrics expvar map directly (no
// listener needed — instances come and go).
func scrapeJobCounters(srv *lamsd.Server) (retried, resumed int64) {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		return 0, 0
	}
	if v, ok := m["jobs_retried"].(float64); ok {
		retried = int64(v)
	}
	if v, ok := m["jobs_resumed"].(float64); ok {
		resumed = int64(v)
	}
	return
}

func (ld *loader) do(method, path, body string) (int, error) {
	var rdr io.Reader
	if body != "" {
		rdr = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, ld.base+path, rdr)
	if err != nil {
		return 0, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if ld.tenant != "" {
		req.Header.Set("X-Tenant", ld.tenant)
	}
	resp, err := ld.client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
