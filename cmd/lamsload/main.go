// Command lamsload drives a lamsd server with a mixed workload — mesh
// creation and deletion, reorders, pooled smooths, locality analyses, and
// summary reads — at a target request rate, and reports the latency
// distribution (p50/p90/p99), achieved throughput, and error counts as
// JSON. It is the service-level counterpart of the library benchmarks: the
// numbers include HTTP, the deadline middleware, the tenant layer, and
// engine-pool queueing, not just the sweep kernels.
//
// Point it at a running server:
//
//	lamsload -addr http://localhost:8080 -rate 50 -duration 10s
//
// or let it host one in-process (the CI smoke does this; no daemon needed):
//
//	lamsload -self -rate 50 -duration 10s > BENCH_lamsd.json
//
// The generator is open-loop: requests are issued on a fixed tick whether
// or not earlier ones have finished, so a server that cannot keep up shows
// as dropped ticks and a widening tail, not a silently slower workload.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"lams/pkg/lamsd"
)

type opResult struct {
	op  string
	dur time.Duration
	err bool
}

type opStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

type report struct {
	Addr          string             `json:"addr"`
	TargetRPS     float64            `json:"target_rps"`
	DurationS     float64            `json:"duration_s"`
	Concurrency   int                `json:"concurrency"`
	Meshes        int                `json:"meshes"`
	TargetVerts   int                `json:"target_verts"`
	Requests      int                `json:"requests"`
	Errors        int                `json:"errors"`
	Dropped       int                `json:"dropped"`
	ThroughputRPS float64            `json:"throughput_rps"`
	LatencyMS     opStats            `json:"latency_ms"`
	Ops           map[string]opStats `json:"ops"`
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "base URL of the lamsd server to drive")
		self        = flag.Bool("self", false, "host an in-process lamsd server instead of dialing -addr")
		rate        = flag.Float64("rate", 50, "target request rate (requests/second)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = flag.Int("concurrency", 8, "max in-flight requests")
		meshes      = flag.Int("meshes", 4, "resident meshes to create before the run")
		verts       = flag.Int("verts", 2000, "target vertex count per mesh")
		domain      = flag.String("domain", "carabiner", "domain to generate the working meshes from")
		seed        = flag.Int64("seed", 1, "PRNG seed for the op mix")
		tenant      = flag.String("tenant", "", "X-Tenant header to send (empty = none)")
	)
	flag.Parse()
	if *rate <= 0 || *concurrency < 1 || *meshes < 1 {
		log.Fatal("lamsload: -rate, -concurrency, and -meshes must be positive")
	}

	base := strings.TrimRight(*addr, "/")
	if *self {
		ts := httptest.NewServer(lamsd.New().Handler())
		defer ts.Close()
		base = ts.URL
	}
	client := &http.Client{Timeout: 60 * time.Second}
	ld := &loader{base: base, client: client, tenant: *tenant, verts: *verts, domain: *domain}

	ids, err := ld.setup(*meshes)
	if err != nil {
		log.Fatalf("lamsload: setup: %v", err)
	}
	ld.ids = ids

	// Open-loop generation: one token per tick into a buffer the size of
	// the worker pool; a full buffer means the server is behind and the
	// tick is counted as dropped rather than queued without bound.
	ticks := make(chan struct{}, *concurrency)
	results := make(chan opResult, 4**concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		// Per-worker PRNGs: deterministic under -seed, no lock contention.
		rng := rand.New(rand.NewSource(*seed + int64(w)))
		go func() {
			defer wg.Done()
			for range ticks {
				results <- ld.step(rng)
			}
		}()
	}

	var all []opResult
	collected := make(chan struct{})
	go func() {
		for r := range results {
			all = append(all, r)
		}
		close(collected)
	}()

	dropped := 0
	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	deadline := time.After(*duration)
	start := time.Now()
loop:
	for {
		select {
		case <-ticker.C:
			select {
			case ticks <- struct{}{}:
			default:
				dropped++
			}
		case <-deadline:
			break loop
		}
	}
	ticker.Stop()
	close(ticks)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	<-collected

	rep := summarize(all, *rate, elapsed, dropped)
	rep.Addr = base
	rep.Concurrency = *concurrency
	rep.Meshes = *meshes
	rep.TargetVerts = *verts
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("lamsload: %v", err)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

func summarize(all []opResult, rate float64, elapsed time.Duration, dropped int) report {
	rep := report{
		TargetRPS: rate,
		DurationS: elapsed.Seconds(),
		Requests:  len(all),
		Dropped:   dropped,
		Ops:       make(map[string]opStats),
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	}
	byOp := make(map[string][]opResult)
	for _, r := range all {
		if r.err {
			rep.Errors++
		}
		byOp[r.op] = append(byOp[r.op], r)
	}
	rep.LatencyMS = statsOf(all)
	for op, rs := range byOp {
		rep.Ops[op] = statsOf(rs)
	}
	return rep
}

func statsOf(rs []opResult) opStats {
	st := opStats{Count: len(rs)}
	if len(rs) == 0 {
		return st
	}
	durs := make([]float64, 0, len(rs))
	for _, r := range rs {
		if r.err {
			st.Errors++
		}
		durs = append(durs, float64(r.dur)/float64(time.Millisecond))
	}
	sort.Float64s(durs)
	pct := func(p float64) float64 {
		i := int(p * float64(len(durs)-1))
		return durs[i]
	}
	st.P50MS, st.P90MS, st.P99MS = pct(0.50), pct(0.90), pct(0.99)
	return st
}

// loader holds the target server and the working-set mesh ids.
type loader struct {
	base   string
	client *http.Client
	tenant string
	verts  int
	domain string
	ids    []string
}

// setup creates the resident working set the mixed ops run against.
func (ld *loader) setup(n int) ([]string, error) {
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, status, err := ld.createMesh()
		if err != nil {
			return nil, err
		}
		if status != http.StatusCreated {
			return nil, fmt.Errorf("creating mesh: status %d", status)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// step runs one operation from the mix and times it. The weights lean on
// smooth — the hot path the pool exists for — with reorders, analyses,
// reads, and full create/delete churn keeping every subsystem in play.
func (ld *loader) step(rng *rand.Rand) opResult {
	id := ld.ids[rng.Intn(len(ld.ids))]
	roll := rng.Float64()
	start := time.Now()
	var (
		op     string
		status int
		err    error
	)
	switch {
	case roll < 0.50:
		op = "smooth"
		status, err = ld.do("POST", "/v1/meshes/"+id+"/smooth",
			`{"workers":1,"max_iters":2,"tol":-1}`)
	case roll < 0.65:
		op = "reorder"
		status, err = ld.do("POST", "/v1/meshes/"+id+"/reorder", `{"ordering":"RDR"}`)
	case roll < 0.75:
		op = "analyze"
		status, err = ld.do("GET", "/v1/meshes/"+id+"/analyze?iters=1", "")
	case roll < 0.90:
		op = "get"
		status, err = ld.do("GET", "/v1/meshes/"+id, "")
	default:
		// Create-and-delete churn: exercises store admission, quota
		// accounting, and the delete path's engine-cache eviction.
		op = "churn"
		var newID string
		newID, status, err = ld.createMesh()
		if err == nil && status == http.StatusCreated {
			status, err = ld.do("DELETE", "/v1/meshes/"+newID, "")
		}
	}
	ok := err == nil && status >= 200 && status < 300
	return opResult{op: op, dur: time.Since(start), err: !ok}
}

func (ld *loader) createMesh() (id string, status int, err error) {
	body := fmt.Sprintf(`{"domain":%q,"target_verts":%d}`, ld.domain, ld.verts)
	req, err := http.NewRequest("POST", ld.base+"/v1/meshes", strings.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if ld.tenant != "" {
		req.Header.Set("X-Tenant", ld.tenant)
	}
	resp, err := ld.client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", resp.StatusCode, err
	}
	return out.ID, resp.StatusCode, nil
}

func (ld *loader) do(method, path, body string) (int, error) {
	var rdr io.Reader
	if body != "" {
		rdr = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, ld.base+path, rdr)
	if err != nil {
		return 0, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if ld.tenant != "" {
		req.Header.Set("X-Tenant", ld.tenant)
	}
	resp, err := ld.client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
