// Command lamsbench regenerates the tables and figures of "Locality-Aware
// Laplacian Mesh Smoothing" (Aupy, Park, Raghavan; ICPP 2016). Each paper
// artifact has an experiment id; -exp all runs the full evaluation.
//
// Usage:
//
//	lamsbench [-exp id] [-verts n] [-full] [-meshes a,b,c] [-nowall] [-schedule static|guided|stealing] [-checkevery k]
//	lamsbench -json FILE [-schedule s] [-benchverts n] [-benchcells n] [-checkevery k] [-partitions k [-partitioner bfs|bisect]]
//
// Either mode takes -cpuprofile FILE and -memprofile FILE to write pprof
// CPU and heap profiles of the run.
//
// Experiment ids: table1, fig1, fig4, fig5, fig6, fig8, fig9, table2,
// table3, eq2, fig10, fig11, fig12, fig13, cost, all.
//
// With -json, lamsbench skips the experiments and runs the converge-loop
// benchmark instead (full sweep+measure loops across dimensions, worker
// counts, and the interface/fast engine paths, plus cold-start setup-phase
// timings), writing machine-readable results to FILE; see BENCH_smooth.json
// at the repository root for the committed baseline. Adding -partitions k
// (k > 1) appends a domain-decomposition section: layout statistics and
// decomposition cost for both benchmark meshes, plus interleaved timings of
// the single-engine converge loop against the k-partition multi-engine run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lams/internal/experiments"
	"lams/internal/parallel"
	"lams/internal/partition"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (table1, fig1, fig4, fig5, fig6, fig7, fig8, fig9, table2, table3, eq2, fig10, fig11, fig12, fig13, cost, cpack, prefetch, mrc, variants, gs, all)")
		verts      = flag.Int("verts", 20000, "target vertices per mesh")
		full       = flag.Bool("full", false, "use the paper's full mesh sizes (~330k vertices; slow)")
		meshes     = flag.String("meshes", "", "comma-separated mesh subset (default: all nine)")
		nowall     = flag.Bool("nowall", false, "skip wall-clock measurements in fig8")
		schedule   = flag.String("schedule", "", "chunk schedule for the parallel traced runs: "+strings.Join(parallel.Schedules(), ", ")+" (default static)")
		checkevery = flag.Int("checkevery", 1, "measure global quality every k-th sweep of the convergence runs (default 1: every sweep)")
		jsonOut    = flag.String("json", "", "run the converge-loop benchmark instead of the experiments and write machine-readable results to FILE")
		benchVerts = flag.Int("benchverts", 262144, "target 2D mesh vertices for the -json benchmark (default: the 512x512-grid magnitude)")
		benchCells = flag.Int("benchcells", 40, "cells per axis of the 3D cube for the -json benchmark (default 40, i.e. 40^3)")
		partitions = flag.Int("partitions", 0, "with -json: also benchmark the k-partition multi-engine smoother against the single engine (0 skips the section)")
		partnr     = flag.String("partitioner", "", "decomposition strategy for -partitions: "+strings.Join(partition.Names(), ", ")+" (default bfs)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to FILE")
		memprofile = flag.String("memprofile", "", "write a heap profile to FILE at exit")
	)
	flag.Parse()

	if *full {
		*verts = 330000
	}
	if *schedule != "" {
		if _, err := parallel.SchedulerByName(*schedule); err != nil {
			fmt.Fprintln(os.Stderr, "lamsbench:", err)
			os.Exit(2)
		}
	}
	if *checkevery < 1 {
		fmt.Fprintf(os.Stderr, "lamsbench: -checkevery %d: want >= 1\n", *checkevery)
		os.Exit(2)
	}
	if *partitions < 0 || (*partitions != 0 && *partitions < 2) {
		fmt.Fprintf(os.Stderr, "lamsbench: -partitions %d: want >= 2 (or 0 to skip the section)\n", *partitions)
		os.Exit(2)
	}
	pname := *partnr
	if pname == "" {
		pname = partition.BFS
	}
	if _, err := partition.ByName(pname); err != nil {
		fmt.Fprintln(os.Stderr, "lamsbench:", err)
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lamsbench:", err)
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "lamsbench:", err)
		stopProfiles()
		os.Exit(1)
	}
	if *jsonOut != "" {
		if err := runBenchJSON(*jsonOut, *schedule, *benchVerts, *benchCells, *checkevery, *partitions, pname); err != nil {
			fail(err)
		}
		stopProfiles()
		return
	}
	cfg := experiments.ConfigForSize(*verts)
	if *meshes != "" {
		cfg.Meshes = strings.Split(*meshes, ",")
	}
	cfg.Schedule = *schedule
	cfg.CheckEvery = *checkevery
	s := experiments.NewSuite(cfg)

	if err := run(s, *exp, !*nowall); err != nil {
		fail(err)
	}
	stopProfiles()
}

// startProfiles starts a CPU profile and/or arranges a heap profile per the
// flag values ("" disables either). The returned func stops the CPU profile
// and writes the heap snapshot; it must run before every process exit so the
// profile files are complete even on error paths.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lamsbench: heap profile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lamsbench: heap profile:", err)
		}
	}, nil
}

func run(s *experiments.Suite, exp string, wall bool) error {
	type experiment struct {
		id string
		fn func() (fmt.Stringer, error)
	}
	wrap := func(f func() (fmt.Stringer, error)) func() (fmt.Stringer, error) { return f }
	var scaling *experiments.ScalingResult
	getScaling := func() (*experiments.ScalingResult, error) {
		if scaling != nil {
			return scaling, nil
		}
		var err error
		scaling, err = s.Scaling()
		return scaling, err
	}

	all := []experiment{
		{"table1", wrap(func() (fmt.Stringer, error) { return s.Table1() })},
		{"fig1", wrap(func() (fmt.Stringer, error) { return s.Fig1() })},
		{"fig4", wrap(func() (fmt.Stringer, error) { return s.Fig4() })},
		{"fig5", wrap(func() (fmt.Stringer, error) { return s.Fig5() })},
		{"fig6", wrap(func() (fmt.Stringer, error) { return s.Fig6() })},
		{"fig7", wrap(func() (fmt.Stringer, error) { return s.Fig7() })},
		{"fig8", wrap(func() (fmt.Stringer, error) { return s.Fig8(wall) })},
		{"fig9", wrap(func() (fmt.Stringer, error) { return s.Fig9() })},
		{"table2", wrap(func() (fmt.Stringer, error) { return s.Table2() })},
		{"table3", wrap(func() (fmt.Stringer, error) { return s.Table3() })},
		{"eq2", wrap(func() (fmt.Stringer, error) { return s.Eq2() })},
		{"fig10", wrap(func() (fmt.Stringer, error) {
			r, err := getScaling()
			if err != nil {
				return nil, err
			}
			return stringer(r.Fig10String()), nil
		})},
		{"fig11", wrap(func() (fmt.Stringer, error) { return s.Fig11() })},
		{"fig12", wrap(func() (fmt.Stringer, error) {
			r, err := getScaling()
			if err != nil {
				return nil, err
			}
			return stringer(r.Fig12String()), nil
		})},
		{"fig13", wrap(func() (fmt.Stringer, error) {
			r, err := getScaling()
			if err != nil {
				return nil, err
			}
			return stringer(r.Fig13String()), nil
		})},
		{"cost", wrap(func() (fmt.Stringer, error) { return s.Cost() })},
		{"cpack", wrap(func() (fmt.Stringer, error) { return s.CPack() })},
		{"prefetch", wrap(func() (fmt.Stringer, error) { return s.Prefetch() })},
		{"mrc", wrap(func() (fmt.Stringer, error) { return s.MRC() })},
		{"variants", wrap(func() (fmt.Stringer, error) { return s.Variants() })},
		{"gs", wrap(func() (fmt.Stringer, error) { return s.GaussSeidel() })},
		{"numa", wrap(func() (fmt.Stringer, error) { return s.NUMA() })},
	}

	selected := all
	if exp != "all" {
		selected = nil
		for _, e := range all {
			if e.id == exp {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("unknown experiment %q", exp)
		}
	}
	for _, e := range selected {
		start := time.Now()
		r, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.id, time.Since(start).Seconds(), r)
	}
	return nil
}

type stringer string

func (s stringer) String() string { return string(s) }
