package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/partition"
	"lams/internal/quality"
	"lams/internal/smooth"
)

// The -json benchmark: the full converge loop (sweep + global quality
// measurement per iteration) across dimensions, worker counts, and both
// engine paths, written as machine-readable JSON. The committed
// BENCH_smooth.json at the repository root is this report from the
// CI-class container — its iface entries are the baseline the fast-path
// speedups are measured against; CI regenerates and uploads the report on
// every run so the quality trajectory is never empty again.
//
// The two paths of one (dim, workers) cell are timed in interleaved reps —
// iface op, fast op, iface op, ... — so a shared-CPU frequency or quota
// shift during the run degrades both paths alike instead of poisoning the
// comparison.
//
// The report also carries a "setup" section: cold-start phase timings
// (mesh build, CSR construction, Hilbert key sort, greedy walk) so the
// one-time ordering cost the paper amortizes (§5.3) has a measured
// trajectory next to the steady-state sweep numbers.

// benchIters is the converge-loop length of each benchmark op. Tol is
// disabled, so every op executes exactly this many sweeps plus
// benchIters+1 global quality measurements.
const benchIters = 10

// benchResult is one benchmark cell.
type benchResult struct {
	Name     string `json:"name"`
	Dim      int    `json:"dim"`
	Mesh     string `json:"mesh"`
	Verts    int    `json:"verts"`
	Interior int    `json:"interior"`
	// Elements is the metric-pass element count: triangles (dim 2) or
	// tetrahedra (dim 3).
	Elements   int    `json:"elements"`
	Workers    int    `json:"workers"`
	Schedule   string `json:"schedule"`
	Path       string `json:"path"` // "iface" (baseline) or "fast"
	CheckEvery int    `json:"check_every"`
	Iterations int    `json:"iterations"`
	Reps       int    `json:"reps"`
	// NsPerOp is the best (minimum) wall-clock of one converge loop.
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	MeanNsPerOp float64 `json:"mean_ns_per_op"`
	// QualityTrajectory is the measured global quality after each measured
	// iteration (the Result.QualityHistory of one op); bit-identical across
	// every cell of the same dimension and check_every by construction.
	QualityTrajectory []float64 `json:"quality_trajectory"`
}

// setupResult is one cold-start phase timing: the work a smoothing service
// does once per mesh before any sweep can run. build is the full mesh
// synthesis, csr is the adjacency/incidence CSR construction alone (rebuild
// from the already-synthesized vertex and element arrays — the part the
// parallel setup passes accelerate), key_sort is the Hilbert key computation
// plus the curve-order index sort, and greedy_walk is the quality-greedy
// traversal that seeds the RDR ordering and the smoother's visit sequence.
type setupResult struct {
	Name    string `json:"name"`
	Dim     int    `json:"dim"`
	Phase   string `json:"phase"`
	Verts   int    `json:"verts"`
	Reps    int    `json:"reps"`
	NsPerOp int64  `json:"ns_per_op"` // best (minimum) rep
}

// partitionLayoutResult describes one dimension's decomposition in the
// partition section: the layout statistics (partition sizes, ghost
// fraction, exchange volumes) plus the one-time decomposition cost, the
// domain-decomposition analogue of the setup section's cold-start phases.
type partitionLayoutResult struct {
	Name string `json:"name"`
	Dim  int    `json:"dim"`
	Mesh string `json:"mesh"`
	// DecomposeNs is the best (minimum) wall-clock of partitioning the mesh
	// and building every partition's local mesh and exchange lists.
	DecomposeNs int64           `json:"decompose_ns"`
	Stats       partition.Stats `json:"stats"`
}

// partitionSection is the -partitions report section: the decomposition
// config, per-dimension layout statistics, and the converge-loop timing
// cells (paths "single" and "partitioned") appended to the main results.
type partitionSection struct {
	Partitions  int                     `json:"partitions"`
	Partitioner string                  `json:"partitioner"`
	Layouts     []partitionLayoutResult `json:"layouts"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Generated  time.Time     `json:"generated"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Setup      []setupResult `json:"setup"`
	// Partition is present when the benchmark ran with -partitions > 1.
	Partition *partitionSection `json:"partition,omitempty"`
	Results   []benchResult     `json:"results"`
}

// pathTiming accumulates one path's interleaved reps.
type pathTiming struct {
	reps         int
	best         int64
	total        time.Duration
	allocs, size uint64
}

func (p *pathTiming) add(d time.Duration, allocs, size uint64) {
	p.reps++
	p.total += d
	if p.best == 0 || d.Nanoseconds() < p.best {
		p.best = d.Nanoseconds()
	}
	p.allocs += allocs
	p.size += size
}

func (p *pathTiming) fill(r *benchResult) {
	r.Reps = p.reps
	r.NsPerOp = p.best
	r.MeanNsPerOp = float64(p.total.Nanoseconds()) / float64(p.reps)
	r.AllocsPerOp = p.allocs / uint64(p.reps)
	r.BytesPerOp = p.size / uint64(p.reps)
}

// setupReps is how many times each cold-start phase runs; the best rep is
// reported (the phases are deterministic, so the minimum is the
// least-noise estimate).
const setupReps = 3

func timeSetup(fn func() error) (int64, error) {
	best := int64(0)
	for rep := 0; rep < setupReps; rep++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// benchSetup times the cold-start pipeline on both benchmark meshes: full
// mesh synthesis (build), the CSR adjacency/incidence construction alone
// (csr — New on the already-synthesized arrays, the part the parallel setup
// passes accelerate), Hilbert key computation plus the curve-order sort
// (key_sort), and the quality-greedy traversal (greedy_walk).
func benchSetup(rep *benchReport, m2 *mesh.Mesh, m3 *mesh.TetMesh, verts2, cells3 int) error {
	add := func(dim int, phase string, verts int, fn func() error) error {
		ns, err := timeSetup(fn)
		if err != nil {
			return fmt.Errorf("setup %s (dim %d): %w", phase, dim, err)
		}
		s := setupResult{
			Name: fmt.Sprintf("Setup/dim=%d/phase=%s", dim, phase),
			Dim:  dim, Phase: phase, Verts: verts, Reps: setupReps, NsPerOp: ns,
		}
		rep.Setup = append(rep.Setup, s)
		fmt.Fprintf(os.Stderr, "%-44s %12d ns/op\n", s.Name, s.NsPerOp)
		return nil
	}

	hilbert := order.Hilbert{}
	vq2 := quality.VertexQualities(m2, quality.EdgeRatio{})
	phases2 := []struct {
		phase string
		fn    func() error
	}{
		{"build", func() error { _, err := mesh.Generate("carabiner", verts2); return err }},
		{"csr", func() error { _, err := mesh.New(m2.Coords, m2.Tris); return err }},
		{"key_sort", func() error { _, err := hilbert.Compute(m2, nil); return err }},
		{"greedy_walk", func() error { _, err := order.GreedyWalk(m2, vq2, false); return err }},
	}
	for _, p := range phases2 {
		if err := add(2, p.phase, m2.NumVerts(), p.fn); err != nil {
			return err
		}
	}

	vq3 := quality.TetVertexQualities(m3, quality.MeanRatio3{})
	phases3 := []struct {
		phase string
		fn    func() error
	}{
		{"build", func() error { _, err := mesh.GenerateTetCube(cells3, cells3, cells3, 0.3); return err }},
		{"csr", func() error { _, err := mesh.NewTet(m3.Coords, m3.Tets); return err }},
		{"key_sort", func() error { _, err := hilbert.Compute(m3, nil); return err }},
		{"greedy_walk", func() error { _, err := order.GreedyWalk(m3, vq3, false); return err }},
	}
	for _, p := range phases3 {
		if err := add(3, p.phase, m3.NumVerts(), p.fn); err != nil {
			return err
		}
	}
	return nil
}

// timeOp times one op, including its allocation deltas.
func timeOp(op func() error) (time.Duration, uint64, uint64, error) {
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	err := op()
	d := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	return d, ms1.Mallocs - ms0.Mallocs, ms1.TotalAlloc - ms0.TotalAlloc, err
}

// benchPair runs the iface and fast ops of one (dim, workers) cell in
// interleaved reps and returns their timings.
func benchPair(opIface, opFast func() error) (iface, fast pathTiming, err error) {
	const (
		minTime = 4 * time.Second
		maxReps = 5
	)
	var total time.Duration
	for rep := 0; rep < maxReps && (rep < 2 || total < minTime); rep++ {
		d, allocs, size, e := timeOp(opIface)
		if e != nil {
			return iface, fast, e
		}
		iface.add(d, allocs, size)
		total += d
		if d, allocs, size, e = timeOp(opFast); e != nil {
			return iface, fast, e
		}
		fast.add(d, allocs, size)
		total += d
	}
	return iface, fast, nil
}

// runBenchJSON runs the converge benchmark and writes the report to path.
func runBenchJSON(path, schedule string, verts2, cells3, checkEvery, partitions int, partitioner string) error {
	m2, err := mesh.Generate("carabiner", verts2)
	if err != nil {
		return fmt.Errorf("generating 2D bench mesh: %w", err)
	}
	m3, err := mesh.GenerateTetCube(cells3, cells3, cells3, 0.3)
	if err != nil {
		return fmt.Errorf("generating 3D bench mesh: %w", err)
	}
	if schedule == "" {
		schedule = "static"
	}

	rep := benchReport{
		Generated:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if err := benchSetup(&rep, m2, m3, verts2, cells3); err != nil {
		return err
	}
	ctx := context.Background()

	for _, workers := range []int{1, 4, 8} {
		// 2D cell: one engine and mesh per path, interleaved reps.
		optI := smooth.Options{
			MaxIters: benchIters, Tol: -1, Traversal: smooth.StorageOrder,
			Workers: workers, Schedule: schedule, NoFastPath: true, CheckEvery: checkEvery,
		}
		optF := optI
		optF.NoFastPath = false
		engI, engF := smooth.NewSmoother(), smooth.NewSmoother()
		meshI, meshF := m2.Clone(), m2.Clone()
		warm, err := engF.Run(ctx, meshF.Clone(), optF)
		if err != nil {
			return err
		}
		if _, err := engI.Run(ctx, meshI.Clone(), optI); err != nil {
			return err
		}
		ti, tf, err := benchPair(
			func() error { _, err := engI.Run(ctx, meshI, optI); return err },
			func() error { _, err := engF.Run(ctx, meshF, optF); return err },
		)
		if err != nil {
			return err
		}
		base := benchResult{
			Dim: 2, Mesh: "carabiner", Verts: m2.NumVerts(), Interior: len(m2.InteriorVerts),
			Elements: m2.NumTris(), Workers: workers, Schedule: schedule,
			CheckEvery: checkEvery, Iterations: warm.Iterations,
			QualityTrajectory: warm.QualityHistory,
		}
		rep.Results = append(rep.Results, cell(base, "iface", ti), cell(base, "fast", tf))
		report(os.Stderr, rep.Results[len(rep.Results)-2:])

		// 3D cell.
		optI3 := smooth.Options{
			MaxIters: benchIters, Tol: -1, Traversal: smooth.StorageOrder,
			Workers: workers, Schedule: schedule, NoFastPath: true, CheckEvery: checkEvery,
		}
		optF3 := optI3
		optF3.NoFastPath = false
		engI3, engF3 := smooth.NewSmoother(), smooth.NewSmoother()
		meshI3, meshF3 := m3.Clone(), m3.Clone()
		warm3, err := engF3.RunTet(ctx, meshF3.Clone(), optF3)
		if err != nil {
			return err
		}
		if _, err := engI3.RunTet(ctx, meshI3.Clone(), optI3); err != nil {
			return err
		}
		ti3, tf3, err := benchPair(
			func() error { _, err := engI3.RunTet(ctx, meshI3, optI3); return err },
			func() error { _, err := engF3.RunTet(ctx, meshF3, optF3); return err },
		)
		if err != nil {
			return err
		}
		base3 := benchResult{
			Dim: 3, Mesh: "cube", Verts: m3.NumVerts(), Interior: len(m3.InteriorVerts),
			Elements: m3.NumTets(), Workers: workers, Schedule: schedule,
			CheckEvery: checkEvery, Iterations: warm3.Iterations,
			QualityTrajectory: warm3.QualityHistory,
		}
		rep.Results = append(rep.Results, cell(base3, "iface", ti3), cell(base3, "fast", tf3))
		report(os.Stderr, rep.Results[len(rep.Results)-2:])
	}

	if partitions > 1 {
		if err := benchPartitions(ctx, &rep, m2, m3, partitions, partitioner, schedule, checkEvery); err != nil {
			return err
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// benchPartitions runs the -partitions section: decomposition cost and
// layout statistics for both benchmark meshes, plus interleaved
// converge-loop timings of the single-engine run against the partitioned
// multi-engine run (paths "single" and "partitioned"; Jacobi updates make
// their results bit-identical, so the cells measure pure execution-layout
// cost — halo exchange and barrier overhead against per-partition
// locality).
func benchPartitions(ctx context.Context, rep *benchReport, m2 *mesh.Mesh, m3 *mesh.TetMesh, k int, pname, schedule string, checkEvery int) error {
	sec := &partitionSection{Partitions: k, Partitioner: pname}
	rep.Partition = sec

	addLayout := func(dim int, meshName string, in partition.Input, decompose func() error) error {
		ns, err := timeSetup(decompose)
		if err != nil {
			return fmt.Errorf("partitioning (dim %d): %w", dim, err)
		}
		l, err := partition.New(in, k, pname)
		if err != nil {
			return err
		}
		lr := partitionLayoutResult{
			Name: fmt.Sprintf("Partition/dim=%d/k=%d/%s", dim, k, pname),
			Dim:  dim, Mesh: meshName, DecomposeNs: ns, Stats: l.Stats(),
		}
		sec.Layouts = append(sec.Layouts, lr)
		fmt.Fprintf(os.Stderr, "%-44s %12d ns/op  ghosts %.4f\n", lr.Name, lr.DecomposeNs, lr.Stats.GhostFraction)
		return nil
	}
	if err := addLayout(2, "carabiner", partition.FromMesh(m2), func() error {
		l, err := partition.New(partition.FromMesh(m2), k, pname)
		if err != nil {
			return err
		}
		for p := range l.Parts {
			if _, _, err := partition.BuildLocal(m2, &l.Parts[p]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := addLayout(3, "cube", partition.FromTetMesh(m3), func() error {
		l, err := partition.New(partition.FromTetMesh(m3), k, pname)
		if err != nil {
			return err
		}
		for p := range l.Parts {
			if _, _, err := partition.BuildLocalTet(m3, &l.Parts[p]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Match the main loop's workers=4 cells so single/partitioned timings
	// are directly comparable to the iface/fast pairs.
	const workers = 4

	// 2D cell: single engine vs partitioned driver, interleaved reps.
	optS := smooth.Options{
		MaxIters: benchIters, Tol: -1, Traversal: smooth.StorageOrder,
		Workers: workers, Schedule: schedule, CheckEvery: checkEvery,
	}
	optP := optS
	optP.Partitions, optP.Partitioner = k, pname
	engS, engP := smooth.NewSmoother(), smooth.NewPartitionedSmoother()
	meshS, meshP := m2.Clone(), m2.Clone()
	warm, err := engS.Run(ctx, meshS.Clone(), optS)
	if err != nil {
		return err
	}
	if _, err := engP.Run(ctx, meshP.Clone(), optP); err != nil {
		return err
	}
	ts, tp, err := benchPair(
		func() error { _, err := engS.Run(ctx, meshS, optS); return err },
		func() error { _, err := engP.Run(ctx, meshP, optP); return err },
	)
	if err != nil {
		return err
	}
	base := benchResult{
		Dim: 2, Mesh: "carabiner", Verts: m2.NumVerts(), Interior: len(m2.InteriorVerts),
		Elements: m2.NumTris(), Workers: workers, Schedule: schedule,
		CheckEvery: checkEvery, Iterations: warm.Iterations,
		QualityTrajectory: warm.QualityHistory,
	}
	rep.Results = append(rep.Results, cell(base, "single", ts), cell(base, "partitioned", tp))
	report(os.Stderr, rep.Results[len(rep.Results)-2:])

	// 3D cell.
	optS3 := smooth.Options{
		MaxIters: benchIters, Tol: -1, Traversal: smooth.StorageOrder,
		Workers: workers, Schedule: schedule, CheckEvery: checkEvery,
	}
	optP3 := optS3
	optP3.Partitions, optP3.Partitioner = k, pname
	engS3, engP3 := smooth.NewSmoother(), smooth.NewPartitionedSmoother()
	meshS3, meshP3 := m3.Clone(), m3.Clone()
	warm3, err := engS3.RunTet(ctx, meshS3.Clone(), optS3)
	if err != nil {
		return err
	}
	if _, err := engP3.RunTet(ctx, meshP3.Clone(), optP3); err != nil {
		return err
	}
	ts3, tp3, err := benchPair(
		func() error { _, err := engS3.RunTet(ctx, meshS3, optS3); return err },
		func() error { _, err := engP3.RunTet(ctx, meshP3, optP3); return err },
	)
	if err != nil {
		return err
	}
	base3 := benchResult{
		Dim: 3, Mesh: "cube", Verts: m3.NumVerts(), Interior: len(m3.InteriorVerts),
		Elements: m3.NumTets(), Workers: workers, Schedule: schedule,
		CheckEvery: checkEvery, Iterations: warm3.Iterations,
		QualityTrajectory: warm3.QualityHistory,
	}
	rep.Results = append(rep.Results, cell(base3, "single", ts3), cell(base3, "partitioned", tp3))
	report(os.Stderr, rep.Results[len(rep.Results)-2:])
	return nil
}

// cell stamps one path's timings onto a copy of the cell's shared fields.
func cell(base benchResult, path string, t pathTiming) benchResult {
	base.Path = path
	base.Name = fmt.Sprintf("RunConverged/dim=%d/path=%s/workers=%d", base.Dim, path, base.Workers)
	t.fill(&base)
	return base
}

func report(w *os.File, cells []benchResult) {
	for _, r := range cells {
		fmt.Fprintf(w, "%-44s %12d ns/op  %6d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
}
