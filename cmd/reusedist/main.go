// Command reusedist performs the paper's §5.2.3 locality analysis on one
// mesh: it traces the smoother's accesses under a chosen ordering, computes
// reuse-distance quantiles at cache-line granularity, and simulates the
// Westmere-EX cache hierarchy over the trace.
//
// Usage:
//
//	reusedist [-mesh carabiner] [-verts 20000] [-order RDR] [-iters 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"lams/internal/stats"
	"lams/pkg/lams"
)

func main() {
	var (
		meshName = flag.String("mesh", "carabiner", "mesh name")
		verts    = flag.Int("verts", 20000, "target vertices")
		ordNames = flag.String("order", "ORI,BFS,RDR", "comma-separated orderings")
		iters    = flag.Int("iters", 1, "iterations to trace")
	)
	flag.Parse()
	ctx := context.Background()

	m, err := lams.GenerateMesh(*meshName, *verts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s\n\n", *meshName, m.Summary())

	t := &stats.Table{Header: []string{"ordering", "mean RD", "q50", "q75", "q90", "max", "L1 miss%", "L2 miss%", "L3 miss%", "penalty cycles"}}
	for _, ordName := range strings.Split(*ordNames, ",") {
		ordName = strings.TrimSpace(ordName)
		if ordName == "" {
			continue
		}
		re, err := lams.Reorder(m, ordName)
		if err != nil {
			fatal(err)
		}
		rep, err := lams.AnalyzeLocality(ctx, re.Mesh, lams.WithAnalysisIterations(*iters))
		if err != nil {
			fatal(err)
		}
		t.AddRow(ordName, rep.MeanReuseDistance, rep.ReuseQ50, rep.ReuseQ75, rep.ReuseQ90, rep.MaxReuseDistance,
			100*rep.MissRates[0], 100*rep.MissRates[1], 100*rep.MissRates[2],
			rep.PenaltyCycles)
	}
	fmt.Print(t.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reusedist:", err)
	os.Exit(1)
}
