// Command reusedist performs the paper's §5.2.3 locality analysis on one
// mesh: it traces the smoother's accesses under a chosen ordering, computes
// reuse-distance quantiles at cache-line granularity, and simulates the
// Westmere-EX cache hierarchy over the trace.
//
// Usage:
//
//	reusedist [-mesh carabiner] [-verts 20000] [-order RDR] [-iters 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"lams/internal/cache"
	"lams/internal/core"
	"lams/internal/order"
	"lams/internal/reuse"
	"lams/internal/stats"
)

func main() {
	var (
		meshName = flag.String("mesh", "carabiner", "mesh name")
		verts    = flag.Int("verts", 20000, "target vertices")
		ordNames = flag.String("order", "ORI,BFS,RDR", "comma-separated orderings")
		iters    = flag.Int("iters", 1, "iterations to trace")
	)
	flag.Parse()

	m, err := core.BuildMesh(*meshName, *verts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s\n\n", *meshName, m.Summary())

	cfg := cache.Scaled(m.NumVerts())
	t := &stats.Table{Header: []string{"ordering", "mean RD", "q50", "q75", "q90", "max", "L1 miss%", "L2 miss%", "L3 miss%", "penalty cycles"}}
	for _, ordName := range splitList(*ordNames) {
		ord, err := order.ByName(ordName)
		if err != nil {
			fatal(err)
		}
		re, err := core.Reorder(m, ord)
		if err != nil {
			fatal(err)
		}
		_, tb, err := core.SmoothTraced(re.Mesh, 1, *iters)
		if err != nil {
			fatal(err)
		}
		blocks := reuse.Blocks(tb.Core(0), cfg.VertsPerLine())
		dists := reuse.StackDistances(blocks)
		sum := reuse.Summarize(dists)
		qs, err := reuse.Quantiles(dists, []float64{0.5, 0.75, 0.9, 1})
		if err != nil {
			fatal(err)
		}

		sim, err := cache.NewSim(cfg, 1)
		if err != nil {
			fatal(err)
		}
		if err := sim.RunTrace(tb); err != nil {
			fatal(err)
		}
		st := sim.Stats()
		t.AddRow(ordName, sum.Mean, qs[0], qs[1], qs[2], qs[3],
			100*st[0].MissRate(), 100*st[1].MissRate(), 100*st[2].MissRate(),
			sim.CorePenaltyCycles(0))
	}
	fmt.Print(t.String())
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reusedist:", err)
	os.Exit(1)
}
