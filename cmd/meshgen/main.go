// Command meshgen generates the nine test meshes in Triangle .node/.ele
// format, the pipeline the paper drives with Shewchuk's Triangle.
//
// Usage:
//
//	meshgen [-verts n] [-out dir] [-mesh name] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lams/pkg/lams"
)

func main() {
	var (
		verts    = flag.Int("verts", 20000, "target vertices per mesh")
		out      = flag.String("out", ".", "output directory")
		name     = flag.String("mesh", "", "single mesh to generate (default: all nine)")
		validate = flag.Bool("validate", true, "validate structural invariants")
	)
	flag.Parse()

	names := lams.Domains()
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		m, err := lams.GenerateMesh(n, *verts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: %s: %v\n", n, err)
			os.Exit(1)
		}
		if *validate {
			if err := m.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "meshgen: %s failed validation: %v\n", n, err)
				os.Exit(1)
			}
		}
		base := filepath.Join(*out, n)
		if err := m.SaveFiles(base); err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: writing %s: %v\n", base, err)
			os.Exit(1)
		}
		q := lams.GlobalQuality(m, nil)
		fmt.Printf("%-10s %s quality=%.4f -> %s.node/.ele\n", n, m.Summary(), q, base)
	}
}
