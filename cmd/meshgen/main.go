// Command meshgen generates the nine test meshes in Triangle .node/.ele
// format, the pipeline the paper drives with Shewchuk's Triangle — or, with
// -dim 3, the structured cube tetrahedral mesh in TetGen format.
//
// Usage:
//
//	meshgen [-verts n] [-out dir] [-domain name] [-validate] [-dim 2|3] [-jitter j]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lams/pkg/lams"
)

func main() {
	var (
		verts    = flag.Int("verts", 20000, "target vertices per mesh")
		out      = flag.String("out", ".", "output directory")
		name     = flag.String("mesh", "", "single mesh to generate (default: all nine); synonym for -domain")
		domain   = flag.String("domain", "", "single Table-1 domain to generate (default: all nine); takes precedence over -mesh")
		validate = flag.Bool("validate", true, "validate structural invariants")
		dim      = flag.Int("dim", 2, "mesh dimension: 2 (triangle domains) or 3 (cube tet mesh)")
		jitter   = flag.Float64("jitter", 0.3, "interior jitter fraction for -dim 3 (0 keeps the regular grid)")
	)
	flag.Parse()

	if *dim == 3 {
		m, err := lams.GenerateTetCubeVerts(*verts, *jitter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: cube: %v\n", err)
			os.Exit(1)
		}
		if *validate {
			if err := m.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "meshgen: cube failed validation: %v\n", err)
				os.Exit(1)
			}
		}
		base := filepath.Join(*out, "cube")
		if err := m.SaveFiles(base); err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: writing %s: %v\n", base, err)
			os.Exit(1)
		}
		q := lams.TetGlobalQuality(m, nil)
		fmt.Printf("%-10s %s quality=%.4f -> %s.node/.ele\n", "cube", m.Summary(), q, base)
		return
	}
	if *dim != 2 {
		fmt.Fprintf(os.Stderr, "meshgen: -dim %d: want 2 or 3\n", *dim)
		os.Exit(1)
	}

	names := lams.Domains()
	if *domain != "" {
		*name = *domain
	}
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		m, err := lams.GenerateMesh(n, *verts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: %s: %v\n", n, err)
			os.Exit(1)
		}
		if *validate {
			if err := m.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "meshgen: %s failed validation: %v\n", n, err)
				os.Exit(1)
			}
		}
		base := filepath.Join(*out, n)
		if err := m.SaveFiles(base); err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: writing %s: %v\n", base, err)
			os.Exit(1)
		}
		q := lams.GlobalQuality(m, nil)
		fmt.Printf("%-10s %s quality=%.4f -> %s.node/.ele\n", n, m.Summary(), q, base)
	}
}
