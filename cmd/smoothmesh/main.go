// Command smoothmesh runs Laplacian mesh smoothing on a Triangle-format
// mesh with a chosen vertex ordering, reporting quality and timing — the
// end-user workflow of the paper. Ctrl-C cancels cleanly between sweeps.
//
// Usage:
//
//	smoothmesh -in base [-order RDR] [-workers 1] [-iters 0] [-tol 5e-6] [-out base2]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"lams/pkg/lams"
)

func main() {
	var (
		in      = flag.String("in", "", "input mesh base path (reads base.node and base.ele)")
		ordName = flag.String("order", "RDR", "vertex ordering: "+strings.Join(lams.Orderings(), ", "))
		workers = flag.Int("workers", 1, "parallel workers")
		iters   = flag.Int("iters", 0, "max iterations (0 = until convergence)")
		tol     = flag.Float64("tol", lams.DefaultTol, "convergence criterion")
		out     = flag.String("out", "", "write smoothed mesh to this base path")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "smoothmesh: -in is required")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	m, err := lams.LoadMesh(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %s\n", *in, m.Summary())

	re, err := lams.Reorder(m, *ordName)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("applied %s ordering in %v\n", re.Ordering, re.OrderTime.Round(time.Microsecond))

	opts := []lams.SmoothOption{lams.WithWorkers(*workers), lams.WithTolerance(*tol)}
	if *iters > 0 {
		opts = append(opts, lams.WithMaxIterations(*iters))
	}
	start := time.Now()
	res, err := lams.Smooth(ctx, re.Mesh, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("smoothed in %v: %d iterations, quality %.6f -> %.6f (%d accesses)\n",
		time.Since(start).Round(time.Millisecond), res.Iterations,
		res.InitialQuality, res.FinalQuality, res.Accesses)

	if *out != "" {
		if err := re.Mesh.SaveFiles(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s.node/.ele\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smoothmesh:", err)
	os.Exit(1)
}
