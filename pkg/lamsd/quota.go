package lamsd

import (
	"context"
	"math"
	"sync"
	"time"
)

// tenantKey is the context key carrying the request's resolved tenant name.
type tenantKeyType struct{}

var tenantKey tenantKeyType

// tenantFrom returns the tenant name the quota middleware attached to the
// request context, or DefaultTenant for contexts that never passed through
// it (direct executeSmooth calls in tests).
func tenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey).(string); ok {
		return t
	}
	return DefaultTenant
}

// DefaultTenant is the tenant key assumed when a request carries no
// X-Tenant header.
const DefaultTenant = "default"

// validTenant reports whether name is an acceptable X-Tenant key: 1–64
// characters from [A-Za-z0-9._-]. Keeping the charset tight bounds the
// cardinality abuse surface (each distinct tenant allocates a bucket and a
// metrics entry).
func validTenant(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantQuotas is the per-tenant admission layer: a token-bucket request
// limiter plus resident-mesh and in-flight-job caps, all keyed by the
// X-Tenant header. The zero limits mean unlimited; see Config.
type tenantQuotas struct {
	rps       float64 // request tokens per second; <= 0 disables rate limiting
	burst     float64 // bucket capacity
	maxMeshes int     // resident meshes per tenant; <= 0 disables
	maxJobs   int     // in-flight async jobs per tenant; <= 0 disables

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// tenantState is one tenant's bucket and gauges.
type tenantState struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	jobs   int // in-flight async jobs
}

func newTenantQuotas(cfg Config) *tenantQuotas {
	return &tenantQuotas{
		rps:       cfg.TenantRPS,
		burst:     float64(cfg.TenantBurst),
		maxMeshes: cfg.TenantMaxMeshes,
		maxJobs:   cfg.TenantMaxJobs,
		tenants:   make(map[string]*tenantState),
	}
}

func (q *tenantQuotas) state(tenant string) *tenantState {
	q.mu.Lock()
	defer q.mu.Unlock()
	ts := q.tenants[tenant]
	if ts == nil {
		ts = &tenantState{tokens: q.burst, last: time.Now()}
		q.tenants[tenant] = ts
	}
	return ts
}

// Allow spends one request token from the tenant's bucket. When the bucket
// is empty it returns false and how long until the next token accrues (the
// Retry-After value).
func (q *tenantQuotas) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q.rps <= 0 {
		return true, 0
	}
	ts := q.state(tenant)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	now := time.Now()
	ts.tokens = math.Min(q.burst, ts.tokens+now.Sub(ts.last).Seconds()*q.rps)
	ts.last = now
	if ts.tokens >= 1 {
		ts.tokens--
		return true, 0
	}
	need := (1 - ts.tokens) / q.rps
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// AcquireJob claims an in-flight async-job slot for the tenant, reporting
// false when the tenant is at its cap. Balanced by ReleaseJob when the job
// finishes (whatever its outcome).
func (q *tenantQuotas) AcquireJob(tenant string) bool {
	if q.maxJobs <= 0 {
		return true
	}
	ts := q.state(tenant)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.jobs >= q.maxJobs {
		return false
	}
	ts.jobs++
	return true
}

// forceAcquireJob claims an in-flight job slot unconditionally. Journal
// replay uses it for jobs admitted before the restart: their admission
// already happened, so the cap must not silently drop them — the tenant may
// transiently exceed its cap until the resumed jobs drain.
func (q *tenantQuotas) forceAcquireJob(tenant string) {
	if q.maxJobs <= 0 {
		return
	}
	ts := q.state(tenant)
	ts.mu.Lock()
	ts.jobs++
	ts.mu.Unlock()
}

// ReleaseJob returns an in-flight job slot claimed by AcquireJob.
func (q *tenantQuotas) ReleaseJob(tenant string) {
	if q.maxJobs <= 0 {
		return
	}
	ts := q.state(tenant)
	ts.mu.Lock()
	if ts.jobs > 0 {
		ts.jobs--
	}
	ts.mu.Unlock()
}

// InFlightJobs returns the tenant's current in-flight job count.
func (q *tenantQuotas) InFlightJobs(tenant string) int {
	if q.maxJobs <= 0 {
		return 0
	}
	ts := q.state(tenant)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.jobs
}
