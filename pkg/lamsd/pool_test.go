package lamsd

import (
	"context"
	"sync"
	"testing"
	"time"

	"lams/pkg/lams"
)

// TestServerPoolConcurrentCheckout hammers the pool from many goroutines,
// each smoothing its own mesh clone with a checked-out engine. Run under
// -race this is the engine-handoff safety test: an engine must never be
// visible to two smooths at once.
func TestServerPoolConcurrentCheckout(t *testing.T) {
	const (
		capacity   = 4
		goroutines = 16
		runs       = 5
	)
	p := newEnginePool(capacity, nil)
	base, err := lams.GenerateMesh("carabiner", 1200)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := engineKey{Kernel: "plain", Workers: 1 + g%2}
			m := base.Clone()
			for i := 0; i < runs; i++ {
				eng, err := p.Acquire(ctx, key)
				if err != nil {
					t.Errorf("goroutine %d: acquire: %v", g, err)
					return
				}
				_, err = eng.Smooth(ctx, m,
					lams.WithWorkers(key.Workers),
					lams.WithMaxIterations(1),
					lams.WithTolerance(-1))
				p.Release(key, eng)
				if err != nil {
					t.Errorf("goroutine %d: smooth: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := p.Stats()
	if st.InUse != 0 || st.Queued != 0 {
		t.Errorf("pool not drained: %+v", st)
	}
	if st.Hits+st.Misses != goroutines*runs {
		t.Errorf("checkouts = %d, want %d", st.Hits+st.Misses, goroutines*runs)
	}
	// Retention is bounded globally by the concurrency capacity, however
	// many keys are in play.
	if st.Idle > capacity {
		t.Errorf("idle engines %d exceed the retention bound %d", st.Idle, capacity)
	}
	// With 16 goroutines over 4 slots, most checkouts must find a warm engine.
	if st.Misses > goroutines*runs/2 {
		t.Errorf("misses = %d of %d: pool is not reusing engines", st.Misses, goroutines*runs)
	}
}

// TestServerPoolQueueHonorsDeadline checks the request-queue contract: a
// caller waiting for a concurrency slot gives up when its context expires,
// without consuming a slot.
func TestServerPoolQueueHonorsDeadline(t *testing.T) {
	p := newEnginePool(1, nil)
	key := engineKey{Kernel: "plain", Workers: 1}
	eng, err := p.Acquire(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx, key); err != context.DeadlineExceeded {
		t.Errorf("queued acquire err = %v, want context.DeadlineExceeded", err)
	}

	p.Release(key, eng)
	st := p.Stats()
	if st.InUse != 0 || st.Queued != 0 {
		t.Errorf("pool state after timed-out queue wait: %+v", st)
	}

	// The slot freed by Release is immediately usable.
	eng, err = p.Acquire(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(key, eng)
}

// TestServerPoolKeyedReuse verifies engines come back for their own
// (kernel × workers) key: a hit on the same key, a miss on a new one.
func TestServerPoolKeyedReuse(t *testing.T) {
	p := newEnginePool(2, nil)
	ctx := context.Background()
	a := engineKey{Kernel: "plain", Workers: 1}
	b := engineKey{Kernel: "smart", Workers: 1}

	eng, err := p.Acquire(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(a, eng)
	if eng, err = p.Acquire(ctx, a); err != nil {
		t.Fatal(err)
	}
	p.Release(a, eng)
	if eng, err = p.Acquire(ctx, b); err != nil {
		t.Fatal(err)
	}
	p.Release(b, eng)

	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", st.Hits, st.Misses)
	}
}

func TestServerPoolTrim(t *testing.T) {
	p := newEnginePool(2, nil)
	ctx := context.Background()
	key := engineKey{Kernel: "plain", Workers: 1}
	eng, err := p.Acquire(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(key, eng)
	if st := p.Stats(); st.Idle != 1 {
		t.Fatalf("idle = %d before trim", st.Idle)
	}
	p.Trim()
	if st := p.Stats(); st.Idle != 0 {
		t.Errorf("idle = %d after trim", st.Idle)
	}
	// The pool still works after a trim.
	if eng, err = p.Acquire(ctx, key); err != nil {
		t.Fatal(err)
	}
	p.Release(key, eng)
}
