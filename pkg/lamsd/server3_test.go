package lamsd

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// createCubeMesh generates a dim=3 cube mesh through the HTTP API.
func createCubeMesh(t *testing.T, baseURL string, verts int) meshInfo {
	t.Helper()
	resp, data := doJSON(t, http.MethodPost, baseURL+"/v1/meshes",
		map[string]any{"domain": "cube", "dim": 3, "target_verts": verts})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create cube: status %d: %s", resp.StatusCode, data)
	}
	var info meshInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestServerTetLifecycle drives the full 3D pipeline over HTTP: generate a
// cube tet mesh, reorder it with BFS, smooth it through the pooled engine,
// analyze its locality, and export it in TetGen format.
func TestServerTetLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	info := createCubeMesh(t, ts.URL, 800)
	if info.Dim != 3 || info.Ordering != "ORI" {
		t.Fatalf("malformed create response: %+v", info)
	}
	verts, tets := summaryCounts(t, info)
	if verts == 0 || tets == 0 {
		t.Fatalf("empty cube summary: %+v", info.Summary)
	}

	// Reorder with BFS.
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/reorder",
		map[string]any{"ordering": "BFS"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reorder: status %d: %s", resp.StatusCode, data)
	}

	// Smooth through the pool, parallel, under a non-default schedule.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?schedule=guided",
		map[string]any{"workers": 2, "max_iters": 4, "tol": -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("smooth: status %d: %s", resp.StatusCode, data)
	}
	var sm smoothResponse
	if err := json.Unmarshal(data, &sm); err != nil {
		t.Fatal(err)
	}
	if sm.Iterations != 4 || sm.Schedule != "guided" || sm.Kernel != "plain" {
		t.Errorf("smooth response %+v", sm)
	}
	if sm.FinalQuality <= sm.InitialQuality {
		t.Errorf("smoothing did not improve quality: %v -> %v", sm.InitialQuality, sm.FinalQuality)
	}

	// The summary now reports the improved quality under the 3D default
	// metric.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", resp.StatusCode)
	}
	var got meshInfo
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Quality != sm.FinalQuality {
		t.Errorf("cached quality %v != smooth final %v", got.Quality, sm.FinalQuality)
	}
	if got.SmoothRuns != 1 || got.Ordering != "BFS" {
		t.Errorf("bookkeeping %+v", got)
	}

	// Analyze the 3D access stream.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID+"/analyze?iters=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, data)
	}
	var rep analyzeResponse
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accesses <= 0 || rep.MeanReuseDistance <= 0 || rep.Ordering != "BFS" {
		t.Errorf("degenerate analyze response %+v", rep)
	}

	// Export both TetGen parts: the .node header declares dimension 3, the
	// .ele header 4-node elements.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID+"/export?part=node", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(strings.SplitN(string(data), "\n", 2)[0], " 3 ") {
		t.Fatalf("node export: status %d, header %.40q", resp.StatusCode, data)
	}
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID+"/export?part=ele", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(strings.SplitN(string(data), "\n", 2)[0], " 4 ") {
		t.Fatalf("ele export: status %d, header %.40q", resp.StatusCode, data)
	}

	// Evict.
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/meshes/"+info.ID, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: status %d", resp.StatusCode)
	}
}

// TestServerTetSmoothKernelsAndMetrics covers the 3D kernel and metric
// resolution plus the validation paths.
func TestServerTetSmoothKernelsAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	info := createCubeMesh(t, ts.URL, 400)

	for _, body := range []map[string]any{
		{"kernel": "smart", "max_iters": 2, "tol": -1},
		{"kernel": "weighted", "max_iters": 2, "tol": -1, "workers": 2},
		{"kernel": "constrained", "max_displacement": 0.01, "max_iters": 2, "tol": -1},
		{"metric": "edge-ratio", "max_iters": 2, "tol": -1},
		{"metric": "mean-ratio", "max_iters": 2, "tol": -1},
	} {
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("smooth %v: status %d: %s", body, resp.StatusCode, data)
		}
	}

	// 2D-only metric names are rejected for tets.
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth",
		map[string]any{"metric": "min-angle"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("min-angle on a tet mesh: status %d, want 400", resp.StatusCode)
	}
	// Constrained still validates its displacement.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth",
		map[string]any{"kernel": "constrained"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("constrained without displacement: status %d, want 400", resp.StatusCode)
	}
}

// TestServerTetGenerateValidation pins the create-time validation for 3D
// requests.
func TestServerTetGenerateValidation(t *testing.T) {
	_, ts := newTestServer(t, WithMaxMeshVerts(5000))
	cases := []map[string]any{
		{"domain": "carabiner", "dim": 3},               // not a 3D domain
		{"domain": "cube", "dim": 4},                    // bad dim
		{"domain": "cube", "dim": 3, "jitter": 0.7},     // jitter out of range
		{"domain": "cube", "dim": 3, "target_verts": 0}, // falls back to default 10k > cap -> 413
	}
	for i, body := range cases {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes", body)
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("case %d (%v): status %d, want 4xx", i, body, resp.StatusCode)
		}
	}
	// An explicit jitter of 0 means the regular grid, not the 0.3 default.
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes",
		map[string]any{"domain": "cube", "dim": 3, "target_verts": 300, "jitter": 0})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("explicit jitter 0: status %d", resp.StatusCode)
	}
	// The 2D path is untouched by a dim=2 that is explicit.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes",
		map[string]any{"domain": "carabiner", "dim": 2, "target_verts": 500})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("explicit dim=2: status %d", resp.StatusCode)
	}
	// /v1/domains advertises the 3D domain list.
	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/domains", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "domains_3d") {
		t.Errorf("domains: status %d, body %s", resp.StatusCode, data)
	}
}
