package lamsd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"runtime"
	"slices"
	"strings"
	"testing"

	"lams/pkg/lams"
)

// newTestServer boots a Server behind httptest with small limits so the
// capacity paths are reachable.
func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// Runs before ts.Close (LIFO): cancels and drains any async jobs the
	// test left running so they cannot outlive it.
	t.Cleanup(func() { _ = s.Close() })
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func createDomainMesh(t *testing.T, baseURL, domain string, verts int) meshInfo {
	t.Helper()
	resp, data := doJSON(t, http.MethodPost, baseURL+"/v1/meshes",
		map[string]any{"domain": domain, "target_verts": verts})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create mesh: status %d: %s", resp.StatusCode, data)
	}
	var info meshInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// summaryCounts extracts the topological counts from a decoded meshInfo
// summary (a JSON object once round-tripped: Summary is declared any so it
// can carry 2D or 3D stats). elems is the triangle count for dim=2 records
// and the tet count for dim=3.
func summaryCounts(t *testing.T, info meshInfo) (verts, elems int) {
	t.Helper()
	m, ok := info.Summary.(map[string]any)
	if !ok {
		t.Fatalf("summary is %T, want a JSON object: %+v", info.Summary, info)
	}
	v, _ := m["verts"].(float64)
	if tr, ok := m["tris"].(float64); ok {
		return int(v), int(tr)
	}
	te, _ := m["tets"].(float64)
	return int(v), int(te)
}

func TestServerHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status string    `json:"status"`
		Meshes int       `json:"meshes"`
		Pool   PoolStats `json:"pool"`
	}
	if err := json.Unmarshal(data, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Pool.Capacity < 1 {
		t.Errorf("malformed health: %s", data)
	}

	resp, data = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatalf("metrics is not a JSON object: %v\n%s", err, data)
	}
	for _, key := range []string{"requests", "smooth_runs", "pool", "meshes_resident", "uptime_seconds"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("metrics missing %q: %s", key, data)
		}
	}
}

func TestServerOrderingsAndDomains(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/orderings", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("orderings status %d", resp.StatusCode)
	}
	var ords struct {
		Orderings []string `json:"orderings"`
		Default   string   `json:"default"`
	}
	if err := json.Unmarshal(data, &ords); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"RDR": false, "RDR-DESC": false, "BFS-WORST": false}
	for _, name := range ords.Orderings {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("orderings missing %s: %v", name, ords.Orderings)
		}
	}
	if ords.Default != "RDR" {
		t.Errorf("default ordering %q", ords.Default)
	}

	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/domains", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("domains status %d", resp.StatusCode)
	}
	if !bytes.Contains(data, []byte("carabiner")) {
		t.Errorf("domains missing carabiner: %s", data)
	}
}

func TestServerMeshLifecycle(t *testing.T) {
	_, ts := newTestServer(t, WithMaxMeshes(2))
	info := createDomainMesh(t, ts.URL, "carabiner", 1200)
	infoVerts, _ := summaryCounts(t, info)
	if info.ID == "" || infoVerts == 0 || info.Ordering != "ORI" {
		t.Fatalf("malformed create response: %+v", info)
	}

	// Get and list see the mesh.
	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d: %s", resp.StatusCode, data)
	}
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(info.ID)) {
		t.Fatalf("list status %d: %s", resp.StatusCode, data)
	}

	// Export streams a parseable .node.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID+"/export?part=node", nil)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(data), fmt.Sprintf("%d 2", infoVerts)) {
		t.Fatalf("export: status %d, body %.40s", resp.StatusCode, data)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID+"/export?part=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus export part: status %d", resp.StatusCode)
	}

	// Capacity: a second mesh fits, a third is refused.
	createDomainMesh(t, ts.URL, "crake", 800)
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes", map[string]any{"domain": "crake", "target_verts": 800})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Errorf("over-capacity create: status %d, want 507", resp.StatusCode)
	}

	// Delete, then 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/meshes/"+info.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp2.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete: status %d", resp.StatusCode)
	}

	// Error cases on create.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes", map[string]any{"domain": "not-a-domain"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown domain: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes", map[string]any{"domain": "crake", "target_verts": 100_000_000})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized generate: status %d", resp.StatusCode)
	}
}

// multipartMesh encodes a mesh as the multipart body the upload endpoint
// streams: a "node" part then an "ele" part.
func multipartMesh(t *testing.T, m *lams.Mesh) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	nw, err := mw.CreateFormFile("node", "m.node")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteNode(nw); err != nil {
		t.Fatal(err)
	}
	ew, err := mw.CreateFormFile("ele", "m.ele")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteEle(ew); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

func TestServerUploadMultipart(t *testing.T) {
	_, ts := newTestServer(t)
	m, err := lams.GenerateMesh("wrench", 900)
	if err != nil {
		t.Fatal(err)
	}
	body, ct := multipartMesh(t, m)
	resp, err := http.Post(ts.URL+"/v1/meshes", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, data)
	}
	var info meshInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if v, tr := summaryCounts(t, info); v != m.NumVerts() || tr != m.NumTris() {
		t.Errorf("upload round trip changed counts: %+v vs %d/%d", info.Summary, m.NumVerts(), m.NumTris())
	}
	if info.Name != "upload" {
		t.Errorf("name %q", info.Name)
	}
}

func TestServerUploadRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t)

	post := func(buf *bytes.Buffer, ct string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/meshes", ct, buf)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// A truncated .node: the hardened codec turns it into a 400, not a hang
	// or a panic.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	nw, _ := mw.CreateFormFile("node", "m.node")
	fmt.Fprint(nw, "5 2 0 1\n1 0 0 1\n")
	ew, _ := mw.CreateFormFile("ele", "m.ele")
	fmt.Fprint(ew, "1 3 0\n1 1 2 3\n")
	mw.Close()
	if got := post(&buf, mw.FormDataContentType()); got != http.StatusBadRequest {
		t.Errorf("truncated node upload: status %d, want 400", got)
	}

	// Out-of-range vertex reference in the .ele part.
	buf.Reset()
	mw = multipart.NewWriter(&buf)
	nw, _ = mw.CreateFormFile("node", "m.node")
	fmt.Fprint(nw, "3 2 0 1\n1 0 0 1\n2 1 0 1\n3 0 1 1\n")
	ew, _ = mw.CreateFormFile("ele", "m.ele")
	fmt.Fprint(ew, "1 3 0\n1 1 2 9\n")
	mw.Close()
	if got := post(&buf, mw.FormDataContentType()); got != http.StatusBadRequest {
		t.Errorf("out-of-range ele upload: status %d, want 400", got)
	}

	// Parts in the wrong order.
	buf.Reset()
	mw = multipart.NewWriter(&buf)
	ew, _ = mw.CreateFormFile("ele", "m.ele")
	fmt.Fprint(ew, "1 3 0\n1 1 2 3\n")
	mw.Close()
	if got := post(&buf, mw.FormDataContentType()); got != http.StatusBadRequest {
		t.Errorf("wrong part order: status %d, want 400", got)
	}

	// Unsupported content type.
	buf.Reset()
	buf.WriteString("not a mesh")
	if got := post(&buf, "text/plain"); got != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain upload: status %d, want 415", got)
	}

	// A tiny body whose header declares a huge mesh: rejected with 413
	// before the codec allocates anything count-sized.
	buf.Reset()
	mw = multipart.NewWriter(&buf)
	nw, _ = mw.CreateFormFile("node", "m.node")
	fmt.Fprint(nw, "99999999 2 0 1\n")
	mw.Close()
	if got := post(&buf, mw.FormDataContentType()); got != http.StatusRequestEntityTooLarge {
		t.Errorf("huge-header upload: status %d, want 413", got)
	}
}

func TestServerReorder(t *testing.T) {
	_, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "carabiner", 1500)
	infoVerts, _ := summaryCounts(t, info)

	for _, ordering := range []string{"RDR", "BFS-WORST", "RDR-DESC"} {
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/reorder",
			map[string]any{"ordering": ordering})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", ordering, resp.StatusCode, data)
		}
		resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID, nil)
		var got meshInfo
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.Ordering != ordering {
			t.Errorf("stored ordering %q after reorder to %s", got.Ordering, ordering)
		}
		if gotVerts, _ := summaryCounts(t, got); gotVerts != infoVerts {
			t.Errorf("%s: reorder changed vertex count", ordering)
		}
	}

	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/reorder",
		map[string]any{"ordering": "NOPE"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown ordering: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/missing/reorder",
		map[string]any{"ordering": "RDR"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("reorder of missing mesh: status %d", resp.StatusCode)
	}
}

func TestServerSmooth(t *testing.T) {
	_, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "carabiner", 1500)

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth",
		map[string]any{"workers": 2, "max_iters": 5, "tol": -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("smooth status %d: %s", resp.StatusCode, data)
	}
	var sr smoothResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Iterations != 5 || sr.FinalQuality <= sr.InitialQuality {
		t.Errorf("malformed smooth result: %+v", sr)
	}
	if sr.Pool.Capacity < 1 {
		t.Errorf("missing pool stats: %+v", sr.Pool)
	}

	// An empty body selects the defaults and runs to convergence.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default smooth status %d: %s", resp.StatusCode, data)
	}

	// Every kernel works end to end.
	for _, body := range []map[string]any{
		{"kernel": "smart", "max_iters": 2, "tol": -1},
		{"kernel": "smart", "metric": "min-angle", "max_iters": 2, "tol": -1},
		{"kernel": "weighted", "max_iters": 2, "tol": -1},
		{"kernel": "constrained", "max_displacement": 0.05, "max_iters": 2, "tol": -1},
	} {
		resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth", body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%v: status %d: %s", body, resp.StatusCode, data)
		}
	}

	// Validation errors.
	for _, c := range []struct {
		body map[string]any
		want int
	}{
		{map[string]any{"kernel": "bogus"}, http.StatusBadRequest},
		{map[string]any{"workers": -3}, http.StatusBadRequest},
		{map[string]any{"workers": 10_000}, http.StatusBadRequest},
		// In-place updates with workers > 1 are valid: the sweep runs
		// serially and only the measurements parallelize.
		{map[string]any{"gauss_seidel": true, "workers": 4, "max_iters": 2}, http.StatusOK},
		{map[string]any{"kernel": "constrained"}, http.StatusBadRequest},
		{map[string]any{"metric": "bogus"}, http.StatusBadRequest},
		{map[string]any{"max_iters": -1}, http.StatusBadRequest},
		{map[string]any{"no_such_field": 1}, http.StatusBadRequest},
	} {
		resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%v: status %d, want %d (%s)", c.body, resp.StatusCode, c.want, data)
		}
	}

	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/missing/smooth", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("smooth of missing mesh: status %d", resp.StatusCode)
	}
}

// TestServerSmoothCheckEvery covers the measurement-cadence surface of the
// smooth endpoint: check_every thins the measured history (the engine's
// quality trajectory) without changing the iteration count or the final
// quality, the response echoes the effective cadence (default 1), and a
// negative value is a 400 before any work happens.
func TestServerSmoothCheckEvery(t *testing.T) {
	_, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "carabiner", 1500)

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth",
		map[string]any{"workers": 2, "max_iters": 6, "tol": -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("smooth status %d: %s", resp.StatusCode, data)
	}
	var ref smoothResponse
	if err := json.Unmarshal(data, &ref); err != nil {
		t.Fatal(err)
	}
	if ref.CheckEvery != 1 {
		t.Errorf("default check_every = %d, want 1", ref.CheckEvery)
	}

	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth",
		map[string]any{"workers": 2, "max_iters": 6, "tol": -1, "check_every": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check_every smooth status %d: %s", resp.StatusCode, data)
	}
	var sr smoothResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.CheckEvery != 3 {
		t.Errorf("check_every = %d, want 3", sr.CheckEvery)
	}
	if sr.Iterations != 6 {
		t.Errorf("iterations = %d, want 6 (cadence must not change the sweep count)", sr.Iterations)
	}

	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth",
		map[string]any{"check_every": -2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative check_every: status %d, want 400 (%s)", resp.StatusCode, data)
	}
}

// TestServerSmoothSchedules covers the chunk-schedule surface of the
// smooth endpoint: the /v1/schedules discovery route, ?schedule= and the
// body field (query wins), the 400 for an unregistered name carrying the
// registered list, and the per-schedule run counters in /metrics.
func TestServerSmoothSchedules(t *testing.T) {
	_, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "carabiner", 1500)
	smoothURL := ts.URL + "/v1/meshes/" + info.ID + "/smooth"

	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/schedules", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedules status %d", resp.StatusCode)
	}
	var sched struct {
		Schedules []string `json:"schedules"`
		Default   string   `json:"default"`
	}
	if err := json.Unmarshal(data, &sched); err != nil {
		t.Fatal(err)
	}
	if sched.Default != "static" {
		t.Errorf("default schedule = %q", sched.Default)
	}
	for _, want := range []string{"static", "guided", "stealing"} {
		if !slices.Contains(sched.Schedules, want) {
			t.Errorf("schedules %v missing %q", sched.Schedules, want)
		}
	}

	smoothWith := func(url string, body map[string]any) smoothResponse {
		t.Helper()
		resp, data := doJSON(t, http.MethodPost, url, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("smooth status %d: %s", resp.StatusCode, data)
		}
		var sr smoothResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	// ?schedule=guided succeeds and is echoed in the response.
	sr := smoothWith(smoothURL+"?schedule=guided", map[string]any{"workers": 4, "max_iters": 3, "tol": -1})
	if sr.Schedule != "guided" || sr.Iterations != 3 {
		t.Errorf("guided smooth = %+v", sr)
	}
	// The body field works; the default is static; the query overrides the body.
	if sr := smoothWith(smoothURL, map[string]any{"schedule": "stealing", "workers": 4, "max_iters": 2, "tol": -1}); sr.Schedule != "stealing" {
		t.Errorf("body schedule ignored: %+v", sr)
	}
	if sr := smoothWith(smoothURL, map[string]any{"workers": 2, "max_iters": 1, "tol": -1}); sr.Schedule != "static" {
		t.Errorf("default schedule = %q, want static", sr.Schedule)
	}
	if sr := smoothWith(smoothURL+"?schedule=stealing", map[string]any{"schedule": "guided", "workers": 2, "max_iters": 1, "tol": -1}); sr.Schedule != "stealing" {
		t.Errorf("query did not override body: %+v", sr)
	}

	// An unknown schedule is a 400 naming the registered schedules.
	resp, data = doJSON(t, http.MethodPost, smoothURL+"?schedule=round-robin", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown schedule: status %d, want 400 (%s)", resp.StatusCode, data)
	}
	for _, want := range []string{"round-robin", "static", "guided", "stealing"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("400 body %s does not mention %q", data, want)
		}
	}

	// Per-schedule counters: 1 guided, 2 stealing, 1 static so far.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var vars struct {
		BySchedule map[string]int64 `json:"smooth_runs_by_schedule"`
	}
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatal(err)
	}
	if vars.BySchedule["guided"] != 1 || vars.BySchedule["stealing"] != 2 || vars.BySchedule["static"] != 1 {
		t.Errorf("smooth_runs_by_schedule = %v, want guided:1 stealing:2 static:1", vars.BySchedule)
	}
}

func TestServerSmoothDeadline(t *testing.T) {
	_, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "carabiner", 1500)

	// A 1ns budget expires before the pool checkout; the request must come
	// back as 504, not hang in the queue.
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?timeout=1ns", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("deadline smooth: status %d, want 504 (%s)", resp.StatusCode, data)
	}

	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?timeout=banana", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid timeout: status %d, want 400", resp.StatusCode)
	}

	// Reorder honors the deadline too: the ordering is computed off-lock on
	// a clone and the expired context wins the race, leaving the stored
	// mesh untouched.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/reorder?timeout=1ns",
		map[string]any{"ordering": "RDR"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("deadline reorder: status %d, want 504 (%s)", resp.StatusCode, data)
	}
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID, nil)
	var after meshInfo
	if err := json.Unmarshal(data, &after); err != nil {
		t.Fatal(err)
	}
	if after.Ordering != "ORI" {
		t.Errorf("timed-out reorder was committed: ordering %q", after.Ordering)
	}
}

func TestServerAnalyze(t *testing.T) {
	_, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "carabiner", 1500)
	if resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/reorder",
		map[string]any{"ordering": "RDR"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("reorder: %d %s", resp.StatusCode, data)
	}

	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID+"/analyze?iters=2&workers=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", resp.StatusCode, data)
	}
	var ar analyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Iterations != 2 || ar.Accesses == 0 || len(ar.MissRates) != 3 || ar.Ordering != "RDR" {
		t.Errorf("malformed analyze response: %+v", ar)
	}

	// Analysis must not mutate the stored mesh (it traces a clone).
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID, nil)
	var after meshInfo
	if err := json.Unmarshal(data, &after); err != nil {
		t.Fatal(err)
	}
	if after.SmoothRuns != 0 {
		t.Errorf("analyze counted as a smooth run: %+v", after)
	}

	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/"+info.ID+"/analyze?iters=99", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("iters out of range: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/meshes/missing/analyze", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("analyze of missing mesh: status %d", resp.StatusCode)
	}
}

// bytesPerRun measures heap bytes allocated per call of fn.
func bytesPerRun(runs int, fn func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / uint64(runs)
}

// TestServerPooledSmoothSteadyState is the acceptance assertion for the
// engine pool: once an engine is warm, a smooth request through the pooled
// path performs no per-request engine allocation. The engine's scratch
// buffers for this mesh are ~64 KiB (next-coordinate array alone is
// NumVerts × 16 B); steady state must allocate only request-scoped
// small objects, orders of magnitude below one buffer.
func TestServerPooledSmoothSteadyState(t *testing.T) {
	s := New(WithMaxConcurrentSmooths(2))
	m, err := lams.GenerateMesh("carabiner", 4000)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.store.Add(m, "carabiner", DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	tol := -1.0
	// Storage-order traversal isolates the engine's own allocation behavior:
	// the quality-greedy walk recomputes an O(n) traversal per run by design
	// (a documented precomputation, not engine scratch).
	req := smoothRequest{Workers: 1, MaxIters: 2, Tol: &tol, StorageOrder: true}
	ctx := context.Background()

	if _, err := s.runSmooth(ctx, rec, req); err != nil { // grow the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.runSmooth(ctx, rec, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Errorf("pooled smooth: %.0f allocs/request, want request-scoped constants only", allocs)
	}
	bytesPer := bytesPerRun(50, func() {
		if _, err := s.runSmooth(ctx, rec, req); err != nil {
			t.Fatal(err)
		}
	})
	if limit := uint64(16 << 10); bytesPer > limit {
		t.Errorf("pooled smooth allocates %d B/request, want < %d (engine buffers for this mesh are ~64 KiB — reuse is broken)",
			bytesPer, limit)
	}

	st := s.pool.Stats()
	if st.Misses != 1 {
		t.Errorf("pool misses = %d, want exactly 1 (the warmup checkout)", st.Misses)
	}
	if st.Hits < 70 {
		t.Errorf("pool hits = %d, want every post-warmup request", st.Hits)
	}
}

// BenchmarkServerPooledSmooth keeps the pooled hot path visible in the CI
// bench smoke: allocs/op is the number to watch.
func BenchmarkServerPooledSmooth(b *testing.B) {
	s := New(WithMaxConcurrentSmooths(2))
	m, err := lams.GenerateMesh("carabiner", 20000)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := s.store.Add(m, "carabiner", DefaultTenant)
	if err != nil {
		b.Fatal(err)
	}
	tol := -1.0
	req := smoothRequest{Workers: 1, MaxIters: 1, Tol: &tol, StorageOrder: true}
	ctx := context.Background()
	if _, err := s.runSmooth(ctx, rec, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.runSmooth(ctx, rec, req); err != nil {
			b.Fatal(err)
		}
	}
}
