package lamsd

import (
	"expvar"
)

// metrics holds the service counters as expvar values. The vars live in a
// private expvar.Map rather than the process-global expvar registry so that
// many Servers can coexist (httptest spins several up per test binary);
// cmd/lamsd publishes the map globally once via Server.PublishExpvar.
type metrics struct {
	vars *expvar.Map

	requests          *expvar.Map // per-route request counts
	errors            *expvar.Map // per-route non-2xx response counts
	smoothRuns        *expvar.Int
	smoothBySchedule  *expvar.Map // completed smooth runs per chunk schedule
	smoothPartitioned *expvar.Int // completed smooth runs with partitions > 1
	smoothIterations  *expvar.Int
	smoothAccesses    *expvar.Int
	reorders          *expvar.Int
	analyses          *expvar.Int
	uploads           *expvar.Int
}

func newMetrics() *metrics {
	m := &metrics{
		vars:              new(expvar.Map).Init(),
		requests:          new(expvar.Map).Init(),
		errors:            new(expvar.Map).Init(),
		smoothRuns:        new(expvar.Int),
		smoothBySchedule:  new(expvar.Map).Init(),
		smoothPartitioned: new(expvar.Int),
		smoothIterations:  new(expvar.Int),
		smoothAccesses:    new(expvar.Int),
		reorders:          new(expvar.Int),
		analyses:          new(expvar.Int),
		uploads:           new(expvar.Int),
	}
	m.vars.Set("requests", m.requests)
	m.vars.Set("errors", m.errors)
	m.vars.Set("smooth_runs", m.smoothRuns)
	m.vars.Set("smooth_runs_by_schedule", m.smoothBySchedule)
	m.vars.Set("smooth_runs_partitioned", m.smoothPartitioned)
	m.vars.Set("smooth_iterations", m.smoothIterations)
	m.vars.Set("smooth_vertex_accesses", m.smoothAccesses)
	m.vars.Set("reorders", m.reorders)
	m.vars.Set("analyses", m.analyses)
	m.vars.Set("uploads", m.uploads)
	return m
}

// PublishExpvar mounts the server's metrics map into the process-global
// expvar registry under the given name (conventionally "lamsd"), making it
// visible to the standard /debug/vars endpoint alongside memstats. It
// panics if the name is already taken, exactly like expvar.Publish; call it
// at most once per process.
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, s.metrics.vars)
}
