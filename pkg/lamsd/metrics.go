package lamsd

import (
	"expvar"
	"sync"
)

// metrics holds the service counters as expvar values. The vars live in a
// private expvar.Map rather than the process-global expvar registry so that
// many Servers can coexist (httptest spins several up per test binary);
// cmd/lamsd publishes the map globally once via Server.PublishExpvar.
type metrics struct {
	vars *expvar.Map

	requests          *expvar.Map // per-route request counts
	errors            *expvar.Map // per-route non-2xx response counts
	smoothRuns        *expvar.Int
	smoothBySchedule  *expvar.Map // completed smooth runs per chunk schedule
	smoothPartitioned *expvar.Int // completed smooth runs with partitions > 1
	smoothIterations  *expvar.Int
	smoothAccesses    *expvar.Int
	reorders          *expvar.Int
	analyses          *expvar.Int
	uploads           *expvar.Int

	jobsSubmitted *expvar.Int // async jobs accepted
	jobsCompleted *expvar.Int // async jobs that finished successfully
	jobsFailed    *expvar.Int // async jobs that errored (incl. deadline)
	jobsCanceled  *expvar.Int // async jobs canceled via DELETE
	jobsRetried   *expvar.Int // transient job failures retried with backoff
	jobsResumed   *expvar.Int // jobs re-enqueued from the journal at boot
	throttled     *expvar.Int // requests rejected 429 by the rate limiter
	snapshots     *expvar.Int // mesh-store snapshots written
	snapshotErrs  *expvar.Int // snapshot attempts that failed
	restored      *expvar.Int // meshes restored from the snapshot at boot

	// tenants holds one sub-map per X-Tenant key seen (requests and
	// throttled counts); tenant names are validated and length-bounded
	// before they reach here, which bounds the cardinality.
	tenants   *expvar.Map
	tenantsMu sync.Mutex
}

func newMetrics() *metrics {
	m := &metrics{
		vars:              new(expvar.Map).Init(),
		requests:          new(expvar.Map).Init(),
		errors:            new(expvar.Map).Init(),
		smoothRuns:        new(expvar.Int),
		smoothBySchedule:  new(expvar.Map).Init(),
		smoothPartitioned: new(expvar.Int),
		smoothIterations:  new(expvar.Int),
		smoothAccesses:    new(expvar.Int),
		reorders:          new(expvar.Int),
		analyses:          new(expvar.Int),
		uploads:           new(expvar.Int),
		jobsSubmitted:     new(expvar.Int),
		jobsCompleted:     new(expvar.Int),
		jobsFailed:        new(expvar.Int),
		jobsCanceled:      new(expvar.Int),
		jobsRetried:       new(expvar.Int),
		jobsResumed:       new(expvar.Int),
		throttled:         new(expvar.Int),
		snapshots:         new(expvar.Int),
		snapshotErrs:      new(expvar.Int),
		restored:          new(expvar.Int),
		tenants:           new(expvar.Map).Init(),
	}
	m.vars.Set("requests", m.requests)
	m.vars.Set("errors", m.errors)
	m.vars.Set("smooth_runs", m.smoothRuns)
	m.vars.Set("smooth_runs_by_schedule", m.smoothBySchedule)
	m.vars.Set("smooth_runs_partitioned", m.smoothPartitioned)
	m.vars.Set("smooth_iterations", m.smoothIterations)
	m.vars.Set("smooth_vertex_accesses", m.smoothAccesses)
	m.vars.Set("reorders", m.reorders)
	m.vars.Set("analyses", m.analyses)
	m.vars.Set("uploads", m.uploads)
	m.vars.Set("jobs_submitted", m.jobsSubmitted)
	m.vars.Set("jobs_completed", m.jobsCompleted)
	m.vars.Set("jobs_failed", m.jobsFailed)
	m.vars.Set("jobs_canceled", m.jobsCanceled)
	m.vars.Set("jobs_retried", m.jobsRetried)
	m.vars.Set("jobs_resumed", m.jobsResumed)
	m.vars.Set("requests_throttled", m.throttled)
	m.vars.Set("snapshots", m.snapshots)
	m.vars.Set("snapshot_errors", m.snapshotErrs)
	m.vars.Set("meshes_restored", m.restored)
	m.vars.Set("tenants", m.tenants)
	return m
}

// tenantCounter bumps the named per-tenant counter, creating the tenant's
// sub-map on first sight.
func (m *metrics) tenantCounter(tenant, name string) {
	m.tenantsMu.Lock()
	sub, _ := m.tenants.Get(tenant).(*expvar.Map)
	if sub == nil {
		sub = new(expvar.Map).Init()
		m.tenants.Set(tenant, sub)
	}
	m.tenantsMu.Unlock()
	sub.Add(name, 1)
}

// PublishExpvar mounts the server's metrics map into the process-global
// expvar registry under the given name (conventionally "lamsd"), making it
// visible to the standard /debug/vars endpoint alongside memstats. It
// panics if the name is already taken, exactly like expvar.Publish; call it
// at most once per process.
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, s.metrics.vars)
}
