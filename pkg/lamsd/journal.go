package lamsd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lams/internal/faultinject"
	"lams/pkg/lams"
)

// The job journal is the write-ahead log that makes async smooth jobs
// survive a crash. Every accepted job appends an "accept" record — with the
// full original smoothRequest, so the job can be re-planned from scratch on
// a later boot — before the 202 goes out; retries and terminal outcomes
// append their own records. Each append is fsynced, so the journal's tail
// is at most one torn line behind reality, and replay simply stops at the
// first incomplete or unparsable line: every record before it was written
// whole.
//
// Replay at Open computes the set of jobs that were accepted but never
// reached a terminal record — exactly the jobs a crash interrupted — and
// re-enqueues them, resuming from the job's persisted engine checkpoint
// (job-<id>.ckpt, written atomically on every checkpoint emission) when one
// survived. The journal is then compacted down to those pending accepts, so
// it never grows beyond the interrupted work plus the records since boot.
const (
	journalName = "jobs.journal"
	journalTmp  = "jobs.journal.tmp"
)

type journalOp string

const (
	opAccept   journalOp = "accept"
	opRetry    journalOp = "retry"
	opDone     journalOp = "done"
	opFailed   journalOp = "failed"
	opCanceled journalOp = "canceled"
)

// journalRecord is one JSONL line of the job journal. Accept records carry
// the submission (tenant, mesh, budget, and the request body to re-plan
// from); the other ops reference the job by id.
type journalRecord struct {
	Op        journalOp      `json:"op"`
	Job       string         `json:"job"`
	Seq       uint64         `json:"seq,omitempty"`
	Tenant    string         `json:"tenant,omitempty"`
	MeshID    string         `json:"mesh_id,omitempty"`
	MaxIters  int            `json:"max_iters,omitempty"`
	TimeoutNS int64          `json:"timeout_ns,omitempty"`
	Created   time.Time      `json:"created,omitempty"`
	Request   *smoothRequest `json:"request,omitempty"`
	Attempt   int            `json:"attempt,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// pendingJob is a journaled job with no terminal record: accepted work a
// crash (or unclean shutdown) interrupted, to be re-enqueued at Open.
type pendingJob struct {
	id       string
	seq      uint64
	tenant   string
	meshID   string
	maxIters int
	timeout  time.Duration
	created  time.Time
	request  smoothRequest
	attempts int
}

// jobJournal is the append side of the log. A nil *jobJournal (in-memory
// servers) accepts and discards every append, so callers never branch on
// durability.
type jobJournal struct {
	dir    string
	faults *faultinject.Set

	mu sync.Mutex
	f  *os.File
}

func openJobJournal(dir string, faults *faultinject.Set) (*jobJournal, error) {
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lamsd: opening job journal: %w", err)
	}
	return &jobJournal{dir: dir, faults: faults, f: f}, nil
}

// append writes one record and syncs it to disk. The record is durable —
// it will be seen by the next replay — if and only if append returns nil.
func (j *jobJournal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	if err := j.faults.Fire(faultinject.PointJournalAppend); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("lamsd: journal: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("lamsd: journal closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("lamsd: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("lamsd: journal: %w", err)
	}
	return nil
}

func (j *jobJournal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// replayJournal reads the journal and folds it into the pending set: jobs
// with an accept record but no terminal record, in acceptance order. A torn
// final line — the signature of a crash mid-append — ends the replay
// cleanly; everything before it is intact by the fsync-per-append contract.
// Returns the pending jobs and the highest job sequence number seen.
func replayJournal(dir string) ([]pendingJob, uint64, error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("lamsd: replaying job journal: %w", err)
	}
	defer f.Close()

	var (
		maxSeq  uint64
		order   []string
		pending = make(map[string]*pendingJob)
	)
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			// io.EOF with a partial line is the torn tail of a crashed
			// append; any other error means the tail is unreadable. Either
			// way the complete records already folded stand.
			if err == io.EOF {
				break
			}
			return nil, 0, fmt.Errorf("lamsd: replaying job journal: %w", err)
		}
		var rec journalRecord
		if json.Unmarshal([]byte(strings.TrimSuffix(line, "\n")), &rec) != nil {
			break // torn or corrupt line: stop at the last good record
		}
		switch rec.Op {
		case opAccept:
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
			if _, ok := pending[rec.Job]; !ok {
				order = append(order, rec.Job)
			}
			pj := &pendingJob{
				id:       rec.Job,
				seq:      rec.Seq,
				tenant:   rec.Tenant,
				meshID:   rec.MeshID,
				maxIters: rec.MaxIters,
				timeout:  time.Duration(rec.TimeoutNS),
				created:  rec.Created,
				attempts: rec.Attempt,
			}
			if rec.Request != nil {
				pj.request = *rec.Request
			}
			pending[rec.Job] = pj
		case opRetry:
			if pj := pending[rec.Job]; pj != nil {
				pj.attempts = rec.Attempt
			}
		case opDone, opFailed, opCanceled:
			delete(pending, rec.Job)
		}
	}

	out := make([]pendingJob, 0, len(pending))
	for _, id := range order {
		if pj := pending[id]; pj != nil {
			out = append(out, *pj)
		}
	}
	return out, maxSeq, nil
}

// compactJournal rewrites the journal to exactly the pending accepts (each
// carrying its accumulated attempt count), atomically. Open runs it after
// replay so the journal restarts from the interrupted work instead of
// accreting the full history of every boot.
func compactJournal(dir string, pending []pendingJob) error {
	tmp := filepath.Join(dir, journalTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lamsd: compacting job journal: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	defer f.Close()

	bw := bufio.NewWriter(f)
	for _, pj := range pending {
		rec := journalRecord{
			Op:        opAccept,
			Job:       pj.id,
			Seq:       pj.seq,
			Tenant:    pj.tenant,
			MeshID:    pj.meshID,
			MaxIters:  pj.maxIters,
			TimeoutNS: int64(pj.timeout),
			Created:   pj.created,
			Request:   &pj.request,
			Attempt:   pj.attempts,
		}
		if err := writeJSONLine(bw, rec); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("lamsd: compacting job journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("lamsd: compacting job journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lamsd: compacting job journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, journalName)); err != nil {
		return fmt.Errorf("lamsd: compacting job journal: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// --- per-job engine checkpoints ---

// jobCheckpointPath is the durable home of a job's latest engine
// checkpoint: one JSON file, replaced atomically on every emission and
// removed when the job reaches a terminal state.
func jobCheckpointPath(dir, id string) string {
	return filepath.Join(dir, "job-"+id+".ckpt")
}

// writeJobCheckpoint persists cp atomically (temp file + fsync + rename).
// JSON round-trips float64 exactly, so a resume from the reloaded
// checkpoint stays bit-identical to one from the in-memory original.
func writeJobCheckpoint(dir, id string, cp *lams.Checkpoint) error {
	b, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("lamsd: job checkpoint: %w", err)
	}
	path := jobCheckpointPath(dir, id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lamsd: job checkpoint: %w", err)
	}
	defer os.Remove(tmp)
	defer f.Close()
	if _, err := f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("lamsd: job checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("lamsd: job checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lamsd: job checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("lamsd: job checkpoint: %w", err)
	}
	return nil
}

// loadJobCheckpoint returns the job's persisted checkpoint, or nil when none
// exists or it does not parse — a missing checkpoint only means the job
// replays from its beginning, so corruption degrades to a full re-run, never
// a failed boot.
func loadJobCheckpoint(dir, id string) *lams.Checkpoint {
	b, err := os.ReadFile(jobCheckpointPath(dir, id))
	if err != nil {
		return nil
	}
	var cp lams.Checkpoint
	if json.Unmarshal(b, &cp) != nil {
		return nil
	}
	return &cp
}

func removeJobCheckpoint(dir, id string) {
	_ = os.Remove(jobCheckpointPath(dir, id))
	_ = os.Remove(jobCheckpointPath(dir, id) + ".tmp")
}
